// Seeded violation for rule `nolint-audit` — a suppression that names no
// check and gives no reason is unreviewable. NOT part of any build target.

int seeded_violation() {
  int x;  // NOLINT
  return x = 1;
}
