// Seeded violation for the naked-std-mutex rule: raw std synchronization
// types outside src/core/sync.h. Each line below is a distinct hit; the
// fix is always the same — use the ipso::sync wrappers so clang Thread
// Safety Analysis can see the acquisition.
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace selftest {

std::mutex g_mu;                  // naked-std-mutex
std::shared_mutex g_rw;           // naked-std-mutex
std::condition_variable g_cv;     // naked-std-mutex

inline int bump(int& x) {
  std::lock_guard<std::mutex> lock(g_mu);  // naked-std-mutex (x2)
  return ++x;
}

inline int peek(const int& x) {
  std::unique_lock<std::mutex> lock(g_mu);  // naked-std-mutex (x2)
  return x;
}

}  // namespace selftest
