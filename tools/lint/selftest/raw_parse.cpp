// Seeded violation for rule `raw-number-parse` — std::stod outside the
// trace/ parsing layer bypasses the checked, Expected-reporting parsers.
// NOT part of any build target.

#include <string>

double seeded_violation(const std::string& s) {
  return std::stod(s);  // <- the rule must fire on this line
}
