// Seeded violation for rule `expected-unchecked-value` — library code must
// branch on has_value() and surface a named error instead of calling
// .value() and hoping. NOT part of any build target.

#include "core/fit.h"

double seeded_violation(const ipso::Expected<ipso::stats::PowerFit>& fit) {
  return fit.value().exponent;  // <- the rule must fire on this line
}
