// Compile-time contract demonstration: an out-of-domain constexpr literal
// is ill-formed when contracts are enabled (checked_domain's violate() call
// is not a constant expression on the failure path) and compiles to a plain
// copy under -DIPSO_CONTRACTS_OFF.
//
// run_lint.py --self-test compiles this file both ways with -fsyntax-only
// and asserts rejected/accepted respectively. NOT part of any build target.

#include "core/domain.h"

constexpr ipso::Delta seeded_violation{1.5};  // δ must be in [0,1]
