// Compile-fail seed for the thread-safety leg: a lock-order inversion
// against a declared IPSO_ACQUIRED_AFTER edge (the same mechanism DESIGN.md
// §13 uses for the engine → pool and cache → store edges). `second_` is
// declared acquired-after `first_`, yet bad_order() takes them in the
// reverse order. Under
//   clang++ -Wthread-safety -Wthread-safety-beta -Werror
// (the ordering checks live behind -beta) this must be REJECTED
// ("mutex 'first_' must be acquired before 'second_'"). Under the no-op
// macro path it compiles — and would deadlock only at runtime, on the
// interleaving TSan happens to miss, which is the whole point of the
// static check.
#include "core/sync.h"

namespace selftest {

class Pipeline {
 public:
  void good_order() {
    ipso::sync::MutexLock a(first_);
    ipso::sync::MutexLock b(second_);
    ++front_;
    ++back_;
  }

  void bad_order() {
    ipso::sync::MutexLock b(second_);
    ipso::sync::MutexLock a(first_);  // -Wthread-safety-beta: inversion
    ++front_;
    ++back_;
  }

 private:
  ipso::sync::Mutex first_;
  ipso::sync::Mutex second_ IPSO_ACQUIRED_AFTER(first_);
  int front_ IPSO_GUARDED_BY(first_) = 0;
  int back_ IPSO_GUARDED_BY(second_) = 0;
};

}  // namespace selftest
