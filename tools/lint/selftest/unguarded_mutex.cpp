// Seeded violation for the guarded-by-audit rule: a sync::Mutex member
// that guards nothing. No field in this file names `mu_` in an
// IPSO_GUARDED_BY / IPSO_PT_GUARDED_BY annotation and the declaration
// carries no NOLINT(guarded-by-audit): reason — so either the mutex is
// dead weight or the discipline it enforces is undocumented.
#include "core/sync.h"

namespace selftest {

class Counter {
 public:
  void bump() {
    ipso::sync::MutexLock lock(mu_);
    ++value_;
  }

 private:
  ipso::sync::Mutex mu_;  // guarded-by-audit: value_ lacks IPSO_GUARDED_BY
  int value_ = 0;
};

}  // namespace selftest
