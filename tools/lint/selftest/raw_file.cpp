// Seeded violation for the raw-file-io rule: raw stdio / POSIX file calls
// outside src/store/io.cpp. Never compiled into anything; exists so
// `run_lint.py --self-test` can prove the rule fires.

#include <cstdio>

int write_state(const char* path, const char* data, unsigned long len) {
  FILE* f = fopen(path, "wb");  // the rule must fire here
  if (f == nullptr) return -1;
  fwrite(data, 1, len, f);  // and here
  return fclose(f);
}

int sync_fd(int fd) {
  return ::fsync(fd);  // and on a global-scope durability syscall
}
