// Seeded violation for rule `naked-double-model-param` — new core/serve
// signatures must carry the domain in the type (core/domain.h), not in a
// comment next to a plain double. NOT part of any build target.

#pragma once

namespace ipso::selftest {

double seeded_violation(double eta, double gamma);  // <- rule fires here

}  // namespace ipso::selftest
