// Seeded violation for the raw-socket-io rule: raw ::send / ::recv outside
// src/serve/transport.cpp. Never compiled into anything; exists so
// `run_lint.py --self-test` can prove the rule fires.

#include <cstddef>

long send_bytes(int fd, const char* data, std::size_t len) {
  return ::send(fd, data, len, 0);  // the rule must fire here
}

long recv_bytes(int fd, char* buf, std::size_t cap) {
  return ::recv(fd, buf, cap, 0);  // and here
}
