// Seeded violation for rule `unseeded-rng` — the simulator must be
// reproducible from the experiment seed alone; rand()/std::random_device
// inject hidden state. NOT part of any build target.

#include <cstdlib>

int seeded_violation() {
  return rand();  // <- the rule must fire on this line
}
