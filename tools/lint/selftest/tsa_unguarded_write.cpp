// Compile-fail seed for the thread-safety leg: writes an IPSO_GUARDED_BY
// field without holding its mutex. Under
//   clang++ -Wthread-safety -Wthread-safety-beta -Werror
// this translation unit must be REJECTED ("writing variable 'value_'
// requires holding mutex 'mu_' exclusively"). Under gcc — or clang
// without the flags — the annotation macros expand to nothing and the
// file compiles, which is exactly the no-op path the gcc Release CI leg
// relies on. run_lint.py --self-test checks both directions.
#include "core/sync.h"

namespace selftest {

class Counter {
 public:
  void bump_locked() {
    ipso::sync::MutexLock lock(mu_);
    ++value_;  // fine: lock held
  }

  void bump_racy() {
    ++value_;  // -Wthread-safety: write without holding mu_
  }

  int read_racy() const {
    return value_;  // -Wthread-safety: read without holding mu_
  }

 private:
  mutable ipso::sync::Mutex mu_;
  int value_ IPSO_GUARDED_BY(mu_) = 0;
};

}  // namespace selftest
