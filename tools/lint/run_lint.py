#!/usr/bin/env python3
"""Repo-specific lint wall for the IPSO codebase.

Implements the repo's own rules in pure Python so they run in any
environment with a Python interpreter, and *drives* clang-tidy /
clang-query when those tools are present (they are not baked into the
dev container; CI installs them). The Python rules are therefore the
authoritative gate; the clang tools add AST-level precision on top.

Rules (all scoped to library code under src/ — tests, benches and
examples may use the banned constructs as assertions):

  expected-unchecked-value   no `.value()` on Expected/optional in src/;
                             branch on has_value() and surface a named
                             error instead (core/expected.h documents the
                             contract).
  raw-number-parse           std::stod/stof/atof/strtod only inside the
                             trace/ parsing layer (plus the checked Spark
                             event-log parser, allowlisted explicitly):
                             everything else must consume parsed values
                             through a domain-typed or Expected boundary.
  unseeded-rng               no rand()/srand()/std::random_device in the
                             simulator: sim runs must be reproducible from
                             the experiment seed alone.
  naked-double-model-param   no `double alpha|beta|gamma|delta|eta` in
                             parameter position in core/serve headers; use
                             the domain types (core/domain.h). Struct
                             fields stay double deliberately (wire/fit
                             compatibility) and do not match.
  nolint-audit               every NOLINT must name its check —
                             NOLINT(check-name) — and carry a trailing
                             justification; bare NOLINTs fail the wall.
  raw-socket-io              no raw ::send/::recv (or the msg/to variants)
                             outside src/serve/transport.cpp: every socket
                             byte moves through the audited transport seam
                             (short writes, EINTR, SIGPIPE handled once).
                             Scoped to src/, tools/ and bench/ — the CLI
                             and the load bench must consume serve::Client,
                             not sockets.
  raw-file-io                no raw file I/O (fopen/fwrite family, global
                             ::open/::pread/::pwrite/::fsync and friends)
                             outside src/store/io.cpp: durability ordering
                             (fsync-before-rename, EINTR, short writes) is
                             audited once, at the store's I/O seam. Console
                             stdio (printf/fputs) is not file I/O and does
                             not match; qualified names like
                             AppendFile::open don't either.
  naked-std-mutex            no raw std::mutex / std::shared_mutex /
                             std::condition_variable / std::lock_guard /
                             std::unique_lock (and friends) outside
                             src/core/sync.h: all locking goes through the
                             ipso::sync wrappers so clang Thread Safety
                             Analysis sees every acquisition. Unlike most
                             rules this one covers tests and benches too —
                             an unannotated mutex anywhere is invisible to
                             the analysis.
  guarded-by-audit           every ipso::sync::Mutex / SharedMutex member
                             in src/ must guard at least one field
                             (IPSO_GUARDED_BY / IPSO_PT_GUARDED_BY naming
                             it in the same file) or carry an explicit
                             NOLINT(guarded-by-audit): reason on its
                             declaration line. A mutex that guards nothing
                             is either dead weight or undocumented
                             discipline; both deserve a sentence.

Usage:
  tools/lint/run_lint.py                 # run the Python rules
  tools/lint/run_lint.py --self-test     # prove every rule fires on the
                                         # seeded violations in selftest/
  tools/lint/run_lint.py --clang-tidy -p build    # + clang-tidy (cached)
  tools/lint/run_lint.py --clang-query -p build   # + clang-query rules

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import shutil
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SELFTEST = Path(__file__).resolve().parent / "selftest"


# --------------------------------------------------------------------------
# Source text preparation: rules must not fire on comments or string
# literals, so both are blanked (preserving line numbers) before matching.
# The nolint-audit rule is the exception — NOLINT lives *in* comments — and
# runs on the raw text.
# --------------------------------------------------------------------------

_COMMENT_OR_STRING = re.compile(
    r"""
      //[^\n]*                      # line comment
    | /\*.*?\*/                     # block comment
    | "(?:\\.|[^"\\\n])*"           # string literal
    | '(?:\\.|[^'\\\n])'            # char literal
    """,
    re.VERBOSE | re.DOTALL,
)


def strip_comments_and_strings(text: str) -> str:
    def blank(m: re.Match) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    return _COMMENT_OR_STRING.sub(blank, text)


@dataclass
class Finding:
    rule: str
    path: Path
    line: int
    text: str

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO) if self.path.is_relative_to(REPO) \
            else self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.text.strip()}"


@dataclass
class Rule:
    name: str
    pattern: re.Pattern
    include: list[str]              # glob patterns relative to the repo root
    exclude: list[str] = field(default_factory=list)
    raw_text: bool = False          # match before comment/string stripping
    why: str = ""

    def files(self) -> list[Path]:
        out: set[Path] = set()
        for pat in self.include:
            out.update(REPO.glob(pat))
        for pat in self.exclude:
            out.difference_update(REPO.glob(pat))
        return sorted(p for p in out if p.is_file()
                      and SELFTEST not in p.parents)

    def check_text(self, path: Path, text: str) -> list[Finding]:
        searchable = text if self.raw_text else strip_comments_and_strings(text)
        findings = []
        for m in self.pattern.finditer(searchable):
            line_no = searchable.count("\n", 0, m.start()) + 1
            line = text.splitlines()[line_no - 1] if text else ""
            findings.append(Finding(self.name, path, line_no, line))
        return findings

    def run(self) -> list[Finding]:
        findings = []
        for path in self.files():
            findings.extend(self.check_text(path, path.read_text()))
        return findings


# NOLINT audit: a suppression is acceptable only as NOLINT(check-name) (or
# NOLINTNEXTLINE(check-name)) followed by a ':' and justification text on
# the same line. Anything else — bare NOLINT, empty parens, no reason —
# fails. Implemented as a negative match: find NOLINT tokens NOT followed
# by "(<check>): <reason>".
_NOLINT_OK = re.compile(r"NOLINT(NEXTLINE)?\([a-zA-Z0-9.,_-]+\)\s*:\s*\S")
_NOLINT_ANY = re.compile(r"NOLINT\w*")


# Guarded-by audit: for every sync::Mutex/SharedMutex *member* declaration,
# the same file must annotate at least one field IPSO_GUARDED_BY /
# IPSO_PT_GUARDED_BY with exactly that mutex name, or the declaration line
# must carry NOLINT(guarded-by-audit): reason (the nolint-audit rule then
# enforces that the reason is real). References (`sync::Mutex&` parameters)
# are not declarations and do not match.
class GuardedByAuditRule(Rule):
    def check_text(self, path: Path, text: str) -> list[Finding]:
        searchable = strip_comments_and_strings(text)
        raw_lines = text.splitlines()
        findings = []
        for m in self.pattern.finditer(searchable):
            name = m.group(1)
            guarded = re.compile(
                r"IPSO_(?:PT_)?GUARDED_BY\(\s*" + re.escape(name)
                + r"\s*\)")
            if guarded.search(searchable):
                continue
            line_no = searchable.count("\n", 0, m.start()) + 1
            window = raw_lines[max(0, line_no - 2):line_no + 1]
            if any("NOLINT(guarded-by-audit):" in ln for ln in window):
                continue
            line = raw_lines[line_no - 1] if raw_lines else ""
            findings.append(Finding(self.name, path, line_no, line))
        return findings


class NolintAuditRule(Rule):
    def check_text(self, path: Path, text: str) -> list[Finding]:
        findings = []
        for i, line in enumerate(text.splitlines(), start=1):
            for m in _NOLINT_ANY.finditer(line):
                ok = _NOLINT_OK.match(line, m.start())
                if not ok:
                    findings.append(Finding(self.name, path, i, line))
        return findings


RULES: list[Rule] = [
    Rule(
        name="expected-unchecked-value",
        pattern=re.compile(r"\.value\(\)"),
        include=["src/**/*.cpp", "src/**/*.h"],
        why="branch on has_value() and return a named error in library code",
    ),
    Rule(
        name="raw-number-parse",
        pattern=re.compile(r"\bstd::sto[df]\b|\bstd::strto[df]\b"
                           r"|\batof\s*\(|\bstrtod\s*\("),
        include=["src/**/*.cpp", "src/**/*.h"],
        exclude=["src/trace/**/*", "src/spark/eventlog.cpp"],
        why="parse numbers only in trace/ (or the checked event-log parser)",
    ),
    Rule(
        name="unseeded-rng",
        pattern=re.compile(r"\brand\s*\(\s*\)|\bsrand\s*\("
                           r"|\bstd::random_device\b"),
        include=["src/sim/**/*.cpp", "src/sim/**/*.h"],
        why="sim results must be reproducible from the experiment seed",
    ),
    Rule(
        name="naked-double-model-param",
        pattern=re.compile(r"\bdouble\s+(alpha|beta|gamma|delta|eta)\s*[,)]"),
        include=["src/core/*.h", "src/serve/*.h"],
        why="use the domain types from core/domain.h in new signatures",
    ),
    Rule(
        name="raw-socket-io",
        pattern=re.compile(r"::\s*(send|recv)(to|from|msg)?\s*\("),
        include=["src/**/*.cpp", "src/**/*.h", "tools/*.cpp",
                 "bench/*.cpp"],
        exclude=["src/serve/transport.cpp"],
        why="socket I/O goes through the serve::net transport seam "
            "(transport.cpp is the one audited syscall site)",
    ),
    Rule(
        name="raw-file-io",
        # The lookbehind restricts ::open & co. to *global-scope* calls:
        # qualified names (AppendFile::open, DiskTier::open) must not match.
        pattern=re.compile(
            r"\b(fopen|fdopen|freopen|fwrite|fread)\s*\("
            r"|(?<![A-Za-z0-9_>])::\s*"
            r"(open|openat|creat|pread|pwrite|fsync|fdatasync|ftruncate)"
            r"\s*\("),
        include=["src/**/*.cpp", "src/**/*.h", "tools/*.cpp",
                 "bench/*.cpp"],
        exclude=["src/store/io.cpp"],
        why="file I/O goes through the store's io seam (io.cpp is the one "
            "audited site for fsync ordering, EINTR and short writes)",
    ),
    Rule(
        name="naked-std-mutex",
        pattern=re.compile(
            r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
            r"|shared_mutex|shared_timed_mutex|condition_variable"
            r"|condition_variable_any|lock_guard|unique_lock|shared_lock"
            r"|scoped_lock)\b"),
        include=["src/**/*.cpp", "src/**/*.h", "tests/*.cpp", "bench/*.cpp",
                 "examples/*.cpp", "tools/*.cpp"],
        exclude=["src/core/sync.h"],
        why="use the ipso::sync wrappers (core/sync.h) so clang thread "
            "safety analysis sees the acquisition; sync.h is the one "
            "audited site wrapping the std types",
    ),
    GuardedByAuditRule(
        name="guarded-by-audit",
        pattern=re.compile(r"(?:ipso::)?sync::(?:Shared)?Mutex\s+(\w+)"),
        include=["src/**/*.cpp", "src/**/*.h"],
        exclude=["src/core/sync.h"],
        why="a mutex member must guard at least one IPSO_GUARDED_BY field "
            "or justify itself with NOLINT(guarded-by-audit): reason",
    ),
    NolintAuditRule(
        name="nolint-audit",
        pattern=_NOLINT_ANY,
        include=["src/**/*.cpp", "src/**/*.h", "tests/*.cpp",
                 "bench/*.cpp", "examples/*.cpp", "tools/*.cpp"],
        raw_text=True,
        why="suppressions must name the check and justify themselves",
    ),
]


def run_python_rules() -> int:
    findings: list[Finding] = []
    for rule in RULES:
        findings.extend(rule.run())
    for f in findings:
        print(f)
    if findings:
        print(f"run_lint: {len(findings)} finding(s)")
        return 1
    print(f"run_lint: clean ({len(RULES)} rules)")
    return 0


# --------------------------------------------------------------------------
# Self-test: every rule must fire on its seeded violation file, and the
# out-of-domain constexpr literal must actually fail to compile (and
# compile again under -DIPSO_CONTRACTS_OFF). A lint wall that cannot
# demonstrate its own failure mode is indistinguishable from one that
# matches nothing.
# --------------------------------------------------------------------------

SEEDED = {
    "expected-unchecked-value": "unchecked_value.cpp",
    "raw-number-parse": "raw_parse.cpp",
    "unseeded-rng": "unseeded_rng.cpp",
    "naked-double-model-param": "naked_double.h",
    "raw-socket-io": "raw_socket.cpp",
    "raw-file-io": "raw_file.cpp",
    "nolint-audit": "bare_nolint.cpp",
    "naked-std-mutex": "naked_std_mutex.cpp",
    "guarded-by-audit": "unguarded_mutex.cpp",
}

# Thread-safety flags the CI leg builds the whole tree with; the self-test
# proves they reject the seeded violations on a single TU.
TSA_FLAGS = ["-Wthread-safety", "-Wthread-safety-beta", "-Werror"]


def self_test() -> int:
    failures = 0
    by_name = {r.name: r for r in RULES}
    for name, filename in SEEDED.items():
        path = SELFTEST / filename
        rule = by_name[name]
        hits = rule.check_text(path, path.read_text())
        status = "fires" if hits else "DOES NOT FIRE"
        print(f"self-test: {name} on selftest/{filename}: {status} "
              f"({len(hits)} hit(s))")
        if not hits:
            failures += 1

    # Negative control: a compliant NOLINT must NOT trip the audit.
    audit = by_name["nolint-audit"]
    ok_line = "x = 1; // NOLINT(bugprone-foo): justified because reasons\n"
    if audit.check_text(SELFTEST / "inline", ok_line):
        print("self-test: nolint-audit FALSELY fires on a justified NOLINT")
        failures += 1

    # Negative control: a mutex member with a guarded field, and one with a
    # justified NOLINT, must NOT trip the guarded-by audit.
    guard_rule = by_name["guarded-by-audit"]
    ok_member = (
        "class C {\n"
        "  sync::Mutex mu_;\n"
        "  int x_ IPSO_GUARDED_BY(mu_);\n"
        "  sync::Mutex order_mu_;  "
        "// NOLINT(guarded-by-audit): ordering-only lock\n"
        "  void f(sync::Mutex& ref);\n"  # reference param: not a member
        "};\n")
    if guard_rule.check_text(SELFTEST / "inline", ok_member):
        print("self-test: guarded-by-audit FALSELY fires on a guarded or "
              "justified mutex member")
        failures += 1

    # The thread-safety seeds must compile cleanly WITHOUT the analysis
    # flags on any compiler (the gcc no-op macro path), and clang with
    # -Wthread-safety* -Werror must reject both: the unguarded write and
    # the lock-order inversion. clang is not in every dev container; the
    # static rejection is then CI's job and we say so instead of failing.
    tsa_seeds = ["tsa_unguarded_write.cpp", "tsa_lock_order.cpp"]
    base_flags = ["-std=c++20", "-fsyntax-only", f"-I{REPO / 'src'}"]
    anycxx = shutil.which("g++") or shutil.which("clang++") \
        or shutil.which("c++")
    if anycxx:
        for seed in tsa_seeds:
            r = subprocess.run([anycxx] + base_flags + [str(SELFTEST / seed)],
                               capture_output=True, text=True)
            ok = r.returncode == 0
            print(f"self-test: {seed} no-op-macro compile: "
                  f"{'accepted' if ok else 'REJECTED (BUG)'}")
            if not ok:
                print(r.stderr, file=sys.stderr)
                failures += 1
    clangxx = shutil.which("clang++")
    if clangxx:
        for seed in tsa_seeds:
            r = subprocess.run(
                [clangxx] + base_flags + TSA_FLAGS + [str(SELFTEST / seed)],
                capture_output=True, text=True)
            rejected = r.returncode != 0
            print(f"self-test: {seed} -Wthread-safety compile: "
                  f"{'rejected' if rejected else 'ACCEPTED (BUG)'}")
            if not rejected:
                failures += 1
    else:
        print("self-test: clang++ not on PATH; skipping the thread-safety "
              "rejection check (the CI thread-safety leg enforces it)")

    # Compile-time rejection of out-of-domain literals: the seeded file must
    # fail to compile with contracts enabled and succeed with them off.
    gxx = shutil.which("g++") or shutil.which("c++")
    if gxx:
        src = SELFTEST / "out_of_domain_literal.cpp"
        base = [gxx, "-std=c++20", "-fsyntax-only", f"-I{REPO / 'src'}",
                str(src)]
        on = subprocess.run(base, capture_output=True, text=True)
        off = subprocess.run(base + ["-DIPSO_CONTRACTS_OFF"],
                             capture_output=True, text=True)
        print(f"self-test: constexpr Delta{{1.5}} contracts-ON compile: "
              f"{'rejected' if on.returncode != 0 else 'ACCEPTED (BUG)'}")
        print(f"self-test: constexpr Delta{{1.5}} contracts-OFF compile: "
              f"{'accepted' if off.returncode == 0 else 'REJECTED (BUG)'}")
        if on.returncode == 0 or off.returncode != 0:
            failures += 1
    else:
        print("self-test: no C++ compiler found; skipping the constexpr "
              "rejection check")

    if failures:
        print(f"self-test: {failures} FAILURE(S)")
        return 1
    print("self-test: all rules demonstrate their failure mode")
    return 0


# --------------------------------------------------------------------------
# clang tooling drivers. Both gate on availability: the dev container does
# not ship clang, so absence is a skip (exit 0 with a notice), not a
# failure — CI installs the tools and gets the full wall.
# --------------------------------------------------------------------------

def compile_db_sources(build_dir: Path) -> list[Path]:
    db = build_dir / "compile_commands.json"
    if not db.is_file():
        return []
    entries = json.loads(db.read_text())
    out = []
    for e in entries:
        p = Path(e["file"])
        if not p.is_absolute():
            p = Path(e["directory"]) / p
        p = p.resolve()
        # Wall library code only; third-party and generated files stay out.
        if (REPO / "src") in p.parents and p.suffix == ".cpp":
            out.append(p)
    return sorted(set(out))


def tidy_cache_key(tidy: str, path: Path) -> str:
    h = hashlib.sha256()
    h.update(Path(REPO / ".clang-tidy").read_bytes())
    h.update(tidy.encode())            # tool path stands in for its version
    h.update(path.read_bytes())
    # Headers are the common invalidation source; hash the ones this TU
    # plausibly includes (cheap over-approximation: every repo header).
    for hdr in sorted((REPO / "src").rglob("*.h")):
        h.update(hdr.read_bytes())
    return h.hexdigest()


def run_clang_tidy(build_dir: Path) -> int:
    tidy = shutil.which("clang-tidy")
    if tidy is None:
        print("run_lint: clang-tidy not on PATH; skipping (declarative "
              "config in .clang-tidy still applies in CI)")
        return 0
    sources = compile_db_sources(build_dir)
    if not sources:
        print(f"run_lint: no compile_commands.json under {build_dir}; "
              "configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON")
        return 2
    cache_path = build_dir / ".tidy_cache.json"
    cache = json.loads(cache_path.read_text()) if cache_path.is_file() else {}
    failures = 0
    for src in sources:
        key = tidy_cache_key(tidy, src)
        if cache.get(str(src)) == key:
            continue
        r = subprocess.run([tidy, "-p", str(build_dir), "--quiet", str(src)],
                           capture_output=True, text=True)
        if r.returncode != 0:
            print(r.stdout)
            print(r.stderr, file=sys.stderr)
            failures += 1
        else:
            cache[str(src)] = key      # only clean results are cached
    cache_path.write_text(json.dumps(cache))
    if failures:
        print(f"run_lint: clang-tidy: {failures} file(s) with findings")
        return 1
    print(f"run_lint: clang-tidy clean ({len(sources)} files)")
    return 0


def run_clang_query(build_dir: Path) -> int:
    query = shutil.which("clang-query")
    if query is None:
        print("run_lint: clang-query not on PATH; skipping (the Python "
              "rules above cover the same invariants textually)")
        return 0
    sources = compile_db_sources(build_dir)
    if not sources:
        print(f"run_lint: no compile_commands.json under {build_dir}")
        return 2
    failures = 0
    for rule_file in sorted((Path(__file__).parent / "rules").glob("*.query")):
        r = subprocess.run(
            [query, "-f", str(rule_file), "-p", str(build_dir)]
            + [str(s) for s in sources],
            capture_output=True, text=True)
        # clang-query reports "N matches." per file; any match is a finding.
        matches = sum(int(m) for m in
                      re.findall(r"^(\d+) matches?\.$", r.stdout, re.M))
        if matches:
            print(r.stdout)
            print(f"run_lint: {rule_file.name}: {matches} match(es)")
            failures += 1
    if failures:
        return 1
    print("run_lint: clang-query clean")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--self-test", action="store_true",
                    help="verify every rule fires on the seeded violations")
    ap.add_argument("--clang-tidy", action="store_true",
                    help="also run clang-tidy over the compilation database")
    ap.add_argument("--clang-query", action="store_true",
                    help="also run the clang-query rules")
    ap.add_argument("-p", "--build-dir", type=Path, default=REPO / "build",
                    help="build dir holding compile_commands.json")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    status = run_python_rules()
    if args.clang_tidy:
        status = max(status, run_clang_tidy(args.build_dir))
    if args.clang_query:
        status = max(status, run_clang_query(args.build_dir))
    return status


if __name__ == "__main__":
    sys.exit(main())
