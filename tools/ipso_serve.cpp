/// ipso_serve: the model-serving daemon. Listens on a TCP port for
/// newline-delimited JSON requests (see src/serve/proto.h for the grammar)
/// and answers them through a ServeEngine: fits are cached and coalesced,
/// admission is bounded, and SIGTERM/SIGINT trigger a graceful drain —
/// every admitted request is answered before the process exits 0.
///
/// Usage:
///   ipso_serve [--port N] [--host A] [--threads N] [--shards N]
///              [--queue-cap N] [--cache-cap N] [--deadline-ms D]
///              [--trace-out FILE]
///
/// Prints "ipso_serve: listening on HOST:PORT" once ready (the smoke test
/// greps this line for the resolved ephemeral port).

#include "obs/export.h"
#include "serve/engine.h"
#include "serve/server.h"
#include "trace/cli_opts.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

const char kUsage[] =
    "ipso_serve: IPSO model-serving daemon (newline-delimited JSON over "
    "TCP)\n"
    "\n"
    "usage: ipso_serve [flags]\n"
    "\n"
    "flags:\n"
    "  --port N          TCP port to listen on (0 = ephemeral; default 0)\n"
    "  --host A          bind address (default 127.0.0.1)\n"
    "  --threads N       worker threads (0 = hardware default)\n"
    "  --shards N        epoll event-loop threads (default 1)\n"
    "  --queue-cap N     admitted-request bound before 'overloaded'"
    " (default 256)\n"
    "  --cache-cap N     fit-cache capacity in entries (default 128)\n"
    "  --deadline-ms D   default per-request deadline (0 = none)\n"
    "  --trace-out FILE  write a Chrome trace of the run on exit\n"
    "  --help, -h        this text\n"
    "  --version         build-info string\n";

/// "--flag V" / "--flag=V" scan returning V as double, or `fallback`.
double flag_value(int argc, char** argv, const char* flag, double fallback) {
  const std::string eq = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) {
      char* end = nullptr;
      const double v = std::strtod(argv[i + 1], &end);
      if (end && *end == '\0') return v;
    } else if (arg.rfind(eq, 0) == 0) {
      char* end = nullptr;
      const double v = std::strtod(arg.c_str() + eq.size(), &end);
      if (end && *end == '\0') return v;
    }
  }
  return fallback;
}

std::string flag_string(int argc, char** argv, const char* flag,
                        std::string fallback) {
  const std::string eq = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(eq, 0) == 0) return arg.substr(eq.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipso;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--version") {
      std::printf("%s\n", trace::version_string().c_str());
      return 0;
    }
  }

  obs::TraceSession trace_session(trace::trace_out_from_args(argc, argv));

  serve::ServeConfig engine_cfg;
  engine_cfg.threads =
      static_cast<std::size_t>(flag_value(argc, argv, "--threads", 0));
  engine_cfg.queue_capacity =
      static_cast<std::size_t>(flag_value(argc, argv, "--queue-cap", 256));
  engine_cfg.cache_capacity =
      static_cast<std::size_t>(flag_value(argc, argv, "--cache-cap", 128));
  engine_cfg.default_deadline_ms =
      flag_value(argc, argv, "--deadline-ms", 0.0);

  serve::ServerConfig server_cfg;
  server_cfg.host = flag_string(argc, argv, "--host", "127.0.0.1");
  server_cfg.port = static_cast<std::uint16_t>(
      flag_value(argc, argv, "--port", 0));
  server_cfg.shards =
      static_cast<std::size_t>(flag_value(argc, argv, "--shards", 1));
  if (server_cfg.shards == 0) server_cfg.shards = 1;

  serve::ServeEngine engine(engine_cfg);
  serve::TcpServer server(engine, server_cfg);
  if (auto started = server.start(); !started) {
    std::fprintf(stderr, "ipso_serve: %s\n", started.error().message.c_str());
    return 1;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::printf("ipso_serve: listening on %s:%u (threads=%zu queue-cap=%zu "
              "cache-cap=%zu)\n",
              server_cfg.host.c_str(), static_cast<unsigned>(server.port()),
              engine.threads(), engine_cfg.queue_capacity,
              engine_cfg.cache_capacity);
  std::fflush(stdout);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("ipso_serve: draining\n");
  std::fflush(stdout);
  server.shutdown();

  const serve::ServeStats s = engine.stats();
  const serve::NetStats n = server.net_stats();
  std::printf("ipso_serve: drained (received=%zu completed=%zu "
              "overloaded=%zu draining=%zu deadline=%zu parse_errors=%zu "
              "cache_hits=%zu cache_misses=%zu coalesced=%zu)\n",
              s.received, s.completed, s.overloaded, s.rejected_draining,
              s.deadline_expired, s.parse_errors, s.cache_hits,
              s.cache_misses, s.coalesced);
  std::printf("ipso_serve: net (connections=%zu frames_in=%zu "
              "frames_out=%zu requests_in=%zu bytes_in=%zu bytes_out=%zu "
              "wakeups=%zu stalls=%zu protocol_errors=%zu)\n",
              n.connections_accepted, n.frames_in, n.frames_out,
              n.requests_in, n.bytes_in, n.bytes_out, n.wakeups,
              n.backpressure_stalls, n.protocol_errors);
  std::fflush(stdout);
  return 0;
}
