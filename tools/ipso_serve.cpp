/// ipso_serve: the model-serving daemon. Listens on a TCP port for
/// newline-delimited JSON requests (see src/serve/proto.h for the grammar)
/// and answers them through a ServeEngine: fits are cached and coalesced,
/// admission is bounded, and SIGTERM/SIGINT trigger a graceful drain —
/// every admitted request is answered before the process exits 0.
///
/// Usage:
///   ipso_serve [--port N] [--host A] [--threads N] [--shards N]
///              [--queue-cap N] [--cache-cap N] [--store-dir DIR]
///              [--deadline-ms D] [--trace-out FILE]
///
/// With --store-dir the fit store gains a persistent tier: fits evicted
/// from DRAM spill to checksummed segments under DIR, the drain on
/// SIGTERM flushes the warm set, and a restarted daemon pointed at the
/// same DIR serves those fits byte-identically without re-fitting.
///
/// Prints "ipso_serve: listening on HOST:PORT" once ready (the smoke test
/// greps this line for the resolved ephemeral port). Malformed flag values
/// are a refusal to start (exit 1 with the flag named on stderr), not a
/// silent fall-through to defaults — a daemon that ignored a typo'd
/// --cache-cap would "work" with the wrong capacity for weeks.

#include "obs/export.h"
#include "serve/engine.h"
#include "serve/server.h"
#include "trace/cli_opts.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

const char kUsage[] =
    "ipso_serve: IPSO model-serving daemon (newline-delimited JSON over "
    "TCP)\n"
    "\n"
    "usage: ipso_serve [flags]\n"
    "\n"
    "flags:\n"
    "  --port N          TCP port to listen on (0 = ephemeral; default 0)\n"
    "  --host A          bind address (default 127.0.0.1)\n"
    "  --threads N       worker threads (0 = hardware default)\n"
    "  --shards N        epoll event-loop threads (default 1)\n"
    "  --queue-cap N     admitted-request bound before 'overloaded'"
    " (default 256)\n"
    "  --cache-cap N     fit-store DRAM capacity in entries (default 128)\n"
    "  --store-dir DIR   persistent fit-store directory (absent = "
    "DRAM-only)\n"
    "  --deadline-ms D   default per-request deadline (0 = none)\n"
    "  --trace-out FILE  write a Chrome trace of the run on exit\n"
    "  --help, -h        this text\n"
    "  --version         build-info string\n";

/// Unwraps a strict flag parse (trace/cli_opts.h); a named error is fatal.
template <typename T>
T flag_or_die(const ipso::Expected<T, ipso::trace::FlagError>& parsed) {
  if (!parsed.has_value()) {
    std::fprintf(stderr, "ipso_serve: %s\n",
                 parsed.error().to_string().c_str());
    std::exit(1);
  }
  return *parsed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipso;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--version") {
      std::printf("%s\n", trace::version_string().c_str());
      return 0;
    }
  }

  obs::TraceSession trace_session(trace::trace_out_from_args(argc, argv));

  serve::ServeConfig engine_cfg;
  engine_cfg.threads = flag_or_die(
      trace::size_flag_from_args(argc, argv, "--threads", 0, 0, 1024));
  engine_cfg.queue_capacity = flag_or_die(
      trace::size_flag_from_args(argc, argv, "--queue-cap", 256, 1));
  engine_cfg.cache_capacity = flag_or_die(
      trace::size_flag_from_args(argc, argv, "--cache-cap", 128, 1));
  engine_cfg.store_dir = flag_or_die(
      trace::string_flag_from_args(argc, argv, "--store-dir", ""));
  engine_cfg.default_deadline_ms = flag_or_die(trace::double_flag_from_args(
      argc, argv, "--deadline-ms", 0.0, 0.0, 1e9));

  serve::ServerConfig server_cfg;
  server_cfg.host = flag_or_die(
      trace::string_flag_from_args(argc, argv, "--host", "127.0.0.1"));
  server_cfg.port = static_cast<std::uint16_t>(flag_or_die(
      trace::size_flag_from_args(argc, argv, "--port", 0, 0, 65535)));
  server_cfg.shards = flag_or_die(
      trace::size_flag_from_args(argc, argv, "--shards", 1, 1, 64));

  serve::ServeEngine engine(engine_cfg);
  if (!engine.store_status()) {
    // A broken store directory degrades to DRAM-only serving rather than
    // refusing traffic; the operator sees why on stderr.
    std::fprintf(stderr, "ipso_serve: store: %s (serving DRAM-only)\n",
                 engine.store_status().message.c_str());
  }
  serve::TcpServer server(engine, server_cfg);
  if (auto started = server.start(); !started) {
    std::fprintf(stderr, "ipso_serve: %s\n", started.error().message.c_str());
    return 1;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  const store::TieredStore::Stats boot = engine.store_stats();
  std::printf("ipso_serve: listening on %s:%u (threads=%zu queue-cap=%zu "
              "cache-cap=%zu store=%s)\n",
              server_cfg.host.c_str(), static_cast<unsigned>(server.port()),
              engine.threads(), engine_cfg.queue_capacity,
              engine_cfg.cache_capacity,
              engine_cfg.store_dir.empty() ? "none"
                                           : engine_cfg.store_dir.c_str());
  if (boot.persistent) {
    std::printf("ipso_serve: store recovered (records=%zu segments=%zu "
                "skipped=%zu)\n",
                boot.disk.records, boot.disk.segments,
                boot.disk.skipped_total());
  }
  std::fflush(stdout);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("ipso_serve: draining\n");
  std::fflush(stdout);
  server.shutdown();

  const serve::ServeStats s = engine.stats();
  const serve::NetStats n = server.net_stats();
  std::printf("ipso_serve: drained (received=%zu completed=%zu "
              "overloaded=%zu draining=%zu deadline=%zu parse_errors=%zu "
              "cache_hits=%zu cache_misses=%zu coalesced=%zu)\n",
              s.received, s.completed, s.overloaded, s.rejected_draining,
              s.deadline_expired, s.parse_errors, s.cache_hits,
              s.cache_misses, s.coalesced);
  std::printf("ipso_serve: net (connections=%zu frames_in=%zu "
              "frames_out=%zu requests_in=%zu bytes_in=%zu bytes_out=%zu "
              "wakeups=%zu stalls=%zu protocol_errors=%zu)\n",
              n.connections_accepted, n.frames_in, n.frames_out,
              n.requests_in, n.bytes_in, n.bytes_out, n.wakeups,
              n.backpressure_stalls, n.protocol_errors);
  if (!engine_cfg.store_dir.empty()) {
    const store::TieredStore::Stats st = engine.store_stats();
    std::printf("ipso_serve: store (records=%zu segments=%zu spilled=%zu "
                "disk_hits=%zu recovered=%zu skipped=%zu)\n",
                st.disk.records, st.disk.segments, st.tier.spilled,
                st.tier.disk_hits, st.disk.recovered,
                st.disk.skipped_total());
  }
  std::fflush(stdout);
  return 0;
}
