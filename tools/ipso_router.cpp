/// ipso_router: the sharded serving tier's routing daemon. Speaks the same
/// dual JSON/binary protocol as ipso_serve on its front port and fans
/// requests out to N ipso_serve replicas over pooled binary connections,
/// placing fit-keyed requests with a swappable policy (--placement).
/// SIGTERM/SIGINT trigger a graceful drain — every queued request is
/// answered (by a replica or with upstream_unavailable) before exit 0.
///
/// Usage:
///   ipso_router --replicas HOST:PORT,HOST:PORT,...
///               [--port N] [--host A] [--shards N]
///               [--placement hash|range|affinity]
///               [--conns-per-replica N] [--upstream-batch N]
///               [--trace-out FILE]
///
/// Prints "ipso_router: listening on HOST:PORT" once ready (the smoke test
/// greps this line for the resolved ephemeral port). Malformed flag values
/// are a refusal to start (exit 1 with the flag named on stderr), not a
/// silent fall-through to defaults — the same policy as ipso_serve.

#include "obs/export.h"
#include "serve/router.h"
#include "trace/cli_opts.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

const char kUsage[] =
    "ipso_router: routing front end for a tier of ipso_serve replicas\n"
    "\n"
    "usage: ipso_router --replicas HOST:PORT,... [flags]\n"
    "\n"
    "flags:\n"
    "  --replicas L      comma-separated replica endpoints (required)\n"
    "  --port N          TCP port to listen on (0 = ephemeral; default 0)\n"
    "  --host A          bind address (default 127.0.0.1)\n"
    "  --shards N        epoll event-loop threads (default 1)\n"
    "  --placement P     hash | range | affinity (default hash)\n"
    "  --conns-per-replica N   pooled connections per replica (default 2)\n"
    "  --upstream-batch N      max records per upstream frame (default 64)\n"
    "  --trace-out FILE  write a Chrome trace of the run on exit\n"
    "  --help, -h        this text\n"
    "  --version         build-info string\n";

/// Unwraps a strict flag parse (trace/cli_opts.h); a named error is fatal.
template <typename T>
T flag_or_die(const ipso::Expected<T, ipso::trace::FlagError>& parsed) {
  if (!parsed.has_value()) {
    std::fprintf(stderr, "ipso_router: %s\n",
                 parsed.error().to_string().c_str());
    std::exit(1);
  }
  return *parsed;
}

/// "h1:p1,h2:p2,..." -> endpoints; returns false on any malformed element.
bool parse_replicas(const std::string& list,
                    std::vector<ipso::serve::ReplicaEndpoint>* out) {
  std::size_t begin = 0;
  while (begin <= list.size()) {
    std::size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    const std::string item = list.substr(begin, end - begin);
    if (!item.empty()) {
      const std::size_t colon = item.rfind(':');
      if (colon == std::string::npos || colon + 1 == item.size()) {
        return false;
      }
      char* endp = nullptr;
      const long port = std::strtol(item.c_str() + colon + 1, &endp, 10);
      if (!endp || *endp != '\0' || port <= 0 || port > 65535) return false;
      out->push_back(ipso::serve::ReplicaEndpoint{
          item.substr(0, colon), static_cast<std::uint16_t>(port)});
    }
    begin = end + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipso;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--version") {
      std::printf("%s\n", trace::version_string().c_str());
      return 0;
    }
  }

  obs::TraceSession trace_session(trace::trace_out_from_args(argc, argv));

  serve::RouterConfig cfg;
  cfg.host = flag_or_die(
      trace::string_flag_from_args(argc, argv, "--host", "127.0.0.1"));
  cfg.port = static_cast<std::uint16_t>(flag_or_die(
      trace::size_flag_from_args(argc, argv, "--port", 0, 0, 65535)));
  cfg.shards = flag_or_die(
      trace::size_flag_from_args(argc, argv, "--shards", 1, 1, 64));
  cfg.placement = flag_or_die(
      trace::string_flag_from_args(argc, argv, "--placement", "hash"));
  cfg.connections_per_replica = flag_or_die(trace::size_flag_from_args(
      argc, argv, "--conns-per-replica", 2, 1, 256));
  cfg.max_upstream_batch = flag_or_die(trace::size_flag_from_args(
      argc, argv, "--upstream-batch", 64, 1, 65536));

  const std::string replicas = flag_or_die(
      trace::string_flag_from_args(argc, argv, "--replicas", ""));
  if (replicas.empty() || !parse_replicas(replicas, &cfg.replicas)) {
    std::fprintf(stderr,
                 "ipso_router: --replicas HOST:PORT[,HOST:PORT...] is "
                 "required\n");
    return 1;
  }

  serve::Router router(cfg);
  if (auto started = router.start(); !started.has_value()) {
    std::fprintf(stderr, "ipso_router: %s\n", started.error().message.c_str());
    return 1;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::printf("ipso_router: listening on %s:%u (replicas=%zu placement=%s "
              "conns-per-replica=%zu)\n",
              cfg.host.c_str(), static_cast<unsigned>(router.port()),
              cfg.replicas.size(), router.placement_name(),
              cfg.connections_per_replica);
  std::fflush(stdout);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("ipso_router: draining\n");
  std::fflush(stdout);
  router.shutdown();

  const serve::RouterStats s = router.stats();
  const serve::NetStats n = router.net_stats();
  std::printf("ipso_router: drained (received=%zu keyed=%zu keyless=%zu "
              "local=%zu draining=%zu upstream_batches=%zu "
              "upstream_errors=%zu reconnects=%zu)\n",
              s.received, s.routed_keyed, s.routed_keyless, s.answered_local,
              s.rejected_draining, s.upstream_batches, s.upstream_errors,
              s.reconnects);
  std::printf("ipso_router: net (connections=%zu frames_in=%zu "
              "frames_out=%zu requests_in=%zu bytes_in=%zu bytes_out=%zu)\n",
              n.connections_accepted, n.frames_in, n.frames_out,
              n.requests_in, n.bytes_in, n.bytes_out);
  std::fflush(stdout);
  return 0;
}
