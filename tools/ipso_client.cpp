/// ipso_client: command-line client for ipso_serve. Builds one protocol
/// request from flags/CSV inputs, sends it, prints the server's response
/// line to stdout, and exits 0 iff the response says "ok":true.
///
/// Usage:
///   ipso_client <op> --port N [--host A] [flags]
///
/// where <op> is one of:
///   ping        liveness probe
///   stats       server counters
///   fit         fit factor observations (--factors CSV)
///   classify    classify fitted/explicit params
///   predict     predict S(n) over a grid
///   recommend   provisioning plan (n*, knee)
///   diagnose    diagnose a measured speedup curve (--speedup CSV)
///   raw         read request lines from stdin, round-trip each
///
/// CSV inputs:
///   --factors FILE   columns n,EX,IN,q (header row; IN/q optional)
///   --speedup FILE   two columns n,S(n)
///
/// Wire mode: --proto json (default, newline-delimited) or --proto binary
/// (length-prefixed batched frames). In 'raw' mode --pipeline N keeps up
/// to N requests on the wire before the first response is read.

#include "serve/client.h"
#include "trace/cli_opts.h"
#include "trace/csv.h"
#include "trace/json.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using ipso::stats::Series;

const char kUsage[] =
    "ipso_client: CLI client for the ipso_serve daemon\n"
    "\n"
    "usage: ipso_client <op> --port N [flags]\n"
    "\n"
    "ops: ping stats fit classify predict recommend diagnose raw\n"
    "\n"
    "flags:\n"
    "  --host A          server address (default 127.0.0.1)\n"
    "  --port N          server port (required)\n"
    "  --id S            request id, echoed back in the response\n"
    "  --workload W      fixed-time | fixed-size | memory-bounded\n"
    "                    (default fixed-time)\n"
    "  --eta F           parallelizable fraction at n = 1 (default 1.0)\n"
    "  --factors FILE    factor observations CSV: columns n,EX[,IN[,q]]\n"
    "  --speedup FILE    measured speedup CSV: columns n,S(n) (diagnose)\n"
    "  --ns LIST         comma-separated prediction grid, e.g. 1,2,4,8\n"
    "  --knee-frac F     recommend knee threshold (default 0.9)\n"
    "  --deadline-ms D   per-request deadline\n"
    "  --proto P         wire mode: json (default) or binary\n"
    "  --pipeline N      raw mode: requests in flight before the first\n"
    "                    read (default 1)\n"
    "  --help, -h        this text\n"
    "  --version         build-info string\n"
    "\n"
    "'raw' reads newline-delimited JSON requests from stdin and prints one\n"
    "response line per request (exit 1 if any response has \"ok\":false).\n";

std::string flag_string(int argc, char** argv, const char* flag,
                        std::string fallback) {
  const std::string eq = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(eq, 0) == 0) return arg.substr(eq.size());
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// "[[x,y],...]" with max_digits10 doubles, so resubmitting the same CSV
/// produces the same request bytes (and hits the server's fit cache).
std::string series_json(const Series& s) {
  std::string out = "[";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) out += ",";
    out += "[";
    out += ipso::trace::json_double(s[i].x);
    out += ",";
    out += ipso::trace::json_double(s[i].y);
    out += "]";
  }
  out += "]";
  return out;
}

/// Loads the factor CSV and appends "ex"/"in"/"q" request fields. Columns
/// are matched by header name (case-insensitive EX/IN/q), falling back to
/// positional order n,EX,IN,q when headers are absent.
bool append_factor_fields(const std::string& path, std::string& req) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "ipso_client: cannot open '%s'\n", path.c_str());
    return false;
  }
  auto table = ipso::trace::read_table_csv(file);
  if (!table) {
    std::fprintf(stderr, "ipso_client: %s: %s\n", path.c_str(),
                 table->empty() ? "empty table"
                                : table.error().message().c_str());
    return false;
  }
  const Series* ex = nullptr;
  const Series* in = nullptr;
  const Series* q = nullptr;
  for (const Series& s : *table) {
    std::string lower = s.name();
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == "ex" || lower.rfind("ex", 0) == 0) {
      if (!ex) ex = &s;
    } else if (lower == "in" || lower.rfind("in", 0) == 0) {
      if (!in) in = &s;
    } else if (lower == "q" || lower.rfind("q", 0) == 0) {
      if (!q) q = &s;
    }
  }
  // Headerless CSVs produce "col1","col2",... — fall back to position.
  if (!ex && !table->empty()) ex = &(*table)[0];
  if (!in && table->size() > 1 && &(*table)[1] != ex) in = &(*table)[1];
  if (!q && table->size() > 2 && &(*table)[2] != ex && &(*table)[2] != in) {
    q = &(*table)[2];
  }
  if (!ex || ex->empty()) {
    std::fprintf(stderr, "ipso_client: %s: no EX(n) column found\n",
                 path.c_str());
    return false;
  }
  req += ",\"ex\":" + series_json(*ex);
  if (in && !in->empty()) req += ",\"in\":" + series_json(*in);
  if (q && !q->empty()) req += ",\"q\":" + series_json(*q);
  return true;
}

bool append_speedup_field(const std::string& path, std::string& req) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "ipso_client: cannot open '%s'\n", path.c_str());
    return false;
  }
  auto series = ipso::trace::read_series_csv(file, "S(n)");
  if (!series) {
    std::fprintf(stderr, "ipso_client: %s: %s\n", path.c_str(),
                 series.error().message().c_str());
    return false;
  }
  req += ",\"speedup\":" + series_json(*series);
  return true;
}

/// One round trip; prints the response, returns true iff "ok":true.
bool roundtrip_and_print(ipso::serve::Client& client,
                         const std::string& request) {
  auto response = client.call(request);
  if (!response) {
    std::fprintf(stderr, "ipso_client: %s\n",
                 response.error().message.c_str());
    return false;
  }
  std::printf("%s\n", response->c_str());
  return response->find("\"ok\":true") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipso;

  if (has_flag(argc, argv, "--help") || has_flag(argc, argv, "-h") ||
      argc < 2) {
    std::fputs(kUsage, stdout);
    return argc < 2 ? 1 : 0;
  }
  if (has_flag(argc, argv, "--version")) {
    std::printf("%s\n", trace::version_string().c_str());
    return 0;
  }

  const std::string op = argv[1];
  const bool known_op = op == "ping" || op == "stats" || op == "fit" ||
                        op == "classify" || op == "predict" ||
                        op == "recommend" || op == "diagnose" || op == "raw";
  if (!known_op) {
    std::fprintf(stderr, "ipso_client: unknown op '%s' (try --help)\n",
                 op.c_str());
    return 1;
  }

  const std::string host = flag_string(argc, argv, "--host", "127.0.0.1");
  const std::string port_text = flag_string(argc, argv, "--port", "");
  if (port_text.empty()) {
    std::fprintf(stderr, "ipso_client: --port is required\n");
    return 1;
  }
  const auto port = static_cast<std::uint16_t>(std::strtoul(
      port_text.c_str(), nullptr, 10));

  const std::string proto_text = flag_string(argc, argv, "--proto", "json");
  if (proto_text != "json" && proto_text != "binary") {
    std::fprintf(stderr,
                 "ipso_client: --proto must be json or binary, got '%s'\n",
                 proto_text.c_str());
    return 1;
  }
  const serve::Proto proto =
      proto_text == "binary" ? serve::Proto::kBinary : serve::Proto::kJson;
  const std::string pipeline_text =
      flag_string(argc, argv, "--pipeline", "1");
  std::size_t pipeline = static_cast<std::size_t>(
      std::strtoul(pipeline_text.c_str(), nullptr, 10));
  if (pipeline == 0) pipeline = 1;

  serve::Client client(proto);
  if (auto connected = client.connect(host, port); !connected) {
    std::fprintf(stderr, "ipso_client: %s\n",
                 connected.error().message.c_str());
    return 1;
  }

  if (op == "raw") {
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    bool all_ok = true;
    // Pipelining window: put up to `pipeline` requests on the wire (one
    // frame each in binary mode), then collect their responses in order.
    for (std::size_t i = 0; i < lines.size(); i += pipeline) {
      const std::size_t end = std::min(lines.size(), i + pipeline);
      for (std::size_t j = i; j < end; ++j) {
        if (auto sent = client.send_batch({lines[j]}); !sent) {
          std::fprintf(stderr, "ipso_client: %s\n",
                       sent.error().message.c_str());
          return 1;
        }
      }
      for (std::size_t j = i; j < end; ++j) {
        auto batch = client.recv_batch(1);
        if (!batch) {
          std::fprintf(stderr, "ipso_client: %s\n",
                       batch.error().message.c_str());
          return 1;
        }
        for (const std::string& response : *batch) {
          std::printf("%s\n", response.c_str());
          all_ok = response.find("\"ok\":true") != std::string::npos &&
                   all_ok;
        }
      }
    }
    return all_ok ? 0 : 1;
  }

  std::string req = "{\"op\":\"" + op + "\"";
  if (const std::string id = flag_string(argc, argv, "--id", ""); !id.empty())
    req += ",\"id\":\"" + trace::json_escape(id) + "\"";
  if (const std::string w = flag_string(argc, argv, "--workload", "");
      !w.empty()) {
    req += ",\"workload\":\"" + trace::json_escape(w) + "\"";
  }
  if (const std::string eta = flag_string(argc, argv, "--eta", "");
      !eta.empty()) {
    req += ",\"eta\":" + eta;
  }
  if (const std::string factors = flag_string(argc, argv, "--factors", "");
      !factors.empty()) {
    if (!append_factor_fields(factors, req)) return 1;
  }
  if (const std::string speedup = flag_string(argc, argv, "--speedup", "");
      !speedup.empty()) {
    if (!append_speedup_field(speedup, req)) return 1;
  }
  if (const std::string ns = flag_string(argc, argv, "--ns", "");
      !ns.empty()) {
    req += ",\"ns\":[";
    std::istringstream is(ns);
    std::string tok;
    bool first = true;
    while (std::getline(is, tok, ',')) {
      if (tok.empty()) continue;
      if (!first) req += ",";
      first = false;
      req += tok;
    }
    req += "]";
  }
  if (const std::string knee = flag_string(argc, argv, "--knee-frac", "");
      !knee.empty()) {
    req += ",\"knee_frac\":" + knee;
  }
  if (const std::string dl = flag_string(argc, argv, "--deadline-ms", "");
      !dl.empty()) {
    req += ",\"deadline_ms\":" + dl;
  }
  req += "}";

  return roundtrip_and_print(client, req) ? 0 : 1;
}
