/// ipso_client: command-line client for ipso_serve. Builds one protocol
/// request from flags/CSV inputs, sends it, prints the server's response
/// line to stdout, and exits 0 iff the response says "ok":true.
///
/// Usage:
///   ipso_client <op> --port N [--host A] [flags]
///
/// where <op> is one of:
///   ping        liveness probe
///   stats       server counters
///   fit         fit factor observations (--factors CSV)
///   classify    classify fitted/explicit params
///   predict     predict S(n) over a grid
///   recommend   provisioning plan (n*, knee)
///   diagnose    diagnose a measured speedup curve (--speedup CSV)
///   observe     stream one speedup point into a server-side window
///               (--key K --n N --value S)
///   compare     model-zoo scoreboard over a server window (--key K) or
///               an inline curve (--speedup CSV)
///   raw         read request lines from stdin, round-trip each
///
/// CSV inputs:
///   --factors FILE   columns n,EX,IN,q (header row; IN/q optional)
///   --speedup FILE   two columns n,S(n)
///
/// Wire mode: --proto json (default, newline-delimited) or --proto binary
/// (length-prefixed batched frames). In 'raw' mode --pipeline N keeps up
/// to N requests on the wire before the first response is read.
///
/// Malformed flag values are a refusal to run (exit 1 with the flag named
/// on stderr), not a silent fall-through to defaults — the same strict
/// policy as ipso_serve and ipso_router.

#include "serve/client.h"
#include "trace/cli_opts.h"
#include "trace/csv.h"
#include "trace/json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace {

using ipso::stats::Series;

const char kUsage[] =
    "ipso_client: CLI client for the ipso_serve daemon\n"
    "\n"
    "usage: ipso_client <op> --port N [flags]\n"
    "\n"
    "ops: ping stats fit classify predict recommend diagnose observe\n"
    "     compare raw\n"
    "\n"
    "flags:\n"
    "  --host A          server address (default 127.0.0.1)\n"
    "  --port N          server port (required)\n"
    "  --id S            request id, echoed back in the response\n"
    "  --workload W      fixed-time | fixed-size | memory-bounded\n"
    "                    (default fixed-time)\n"
    "  --eta F           parallelizable fraction at n = 1 (default 1.0)\n"
    "  --factors FILE    factor observations CSV: columns n,EX[,IN[,q]]\n"
    "  --speedup FILE    measured speedup CSV: columns n,S(n)\n"
    "                    (diagnose; inline curve for compare)\n"
    "  --key K           observation-window key (observe; keyed compare)\n"
    "  --n N             node count of the observed point (observe)\n"
    "  --value S         measured speedup of the observed point (observe)\n"
    "  --ns LIST         comma-separated prediction grid, e.g. 1,2,4,8\n"
    "  --knee-frac F     recommend knee threshold (default 0.9)\n"
    "  --deadline-ms D   per-request deadline\n"
    "  --proto P         wire mode: json (default) or binary\n"
    "  --pipeline N      raw mode: requests in flight before the first\n"
    "                    read (default 1)\n"
    "  --help, -h        this text\n"
    "  --version         build-info string\n"
    "\n"
    "'raw' reads newline-delimited JSON requests from stdin and prints one\n"
    "response line per request (exit 1 if any response has \"ok\":false).\n";

/// Unwraps a strict flag parse (trace/cli_opts.h); a named error is fatal.
template <typename T>
T flag_or_die(const ipso::Expected<T, ipso::trace::FlagError>& parsed) {
  if (!parsed.has_value()) {
    std::fprintf(stderr, "ipso_client: %s\n",
                 parsed.error().to_string().c_str());
    std::exit(1);
  }
  return *parsed;
}

/// Strict string flag with an empty fallback; "" means "absent".
std::string string_flag(int argc, char** argv, const char* flag,
                        std::string fallback = "") {
  return flag_or_die(ipso::trace::string_flag_from_args(
      argc, argv, flag, std::move(fallback)));
}

/// Strict double flag; NaN means "absent" (the parser range-checks present
/// values only, so the NaN fallback passes through untouched).
double double_flag(int argc, char** argv, const char* flag, double min_value,
                   double max_value) {
  return flag_or_die(ipso::trace::double_flag_from_args(
      argc, argv, flag, std::numeric_limits<double>::quiet_NaN(), min_value,
      max_value));
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// "[[x,y],...]" with max_digits10 doubles, so resubmitting the same CSV
/// produces the same request bytes (and hits the server's fit cache).
std::string series_json(const Series& s) {
  std::string out = "[";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) out += ",";
    out += "[";
    out += ipso::trace::json_double(s[i].x);
    out += ",";
    out += ipso::trace::json_double(s[i].y);
    out += "]";
  }
  out += "]";
  return out;
}

/// Loads the factor CSV and appends "ex"/"in"/"q" request fields. Columns
/// are matched by header name (case-insensitive EX/IN/q), falling back to
/// positional order n,EX,IN,q when headers are absent.
bool append_factor_fields(const std::string& path, std::string& req) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "ipso_client: cannot open '%s'\n", path.c_str());
    return false;
  }
  auto table = ipso::trace::read_table_csv(file);
  if (!table) {
    std::fprintf(stderr, "ipso_client: %s: %s\n", path.c_str(),
                 table->empty() ? "empty table"
                                : table.error().message().c_str());
    return false;
  }
  const Series* ex = nullptr;
  const Series* in = nullptr;
  const Series* q = nullptr;
  for (const Series& s : *table) {
    std::string lower = s.name();
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == "ex" || lower.rfind("ex", 0) == 0) {
      if (!ex) ex = &s;
    } else if (lower == "in" || lower.rfind("in", 0) == 0) {
      if (!in) in = &s;
    } else if (lower == "q" || lower.rfind("q", 0) == 0) {
      if (!q) q = &s;
    }
  }
  // Headerless CSVs produce "col1","col2",... — fall back to position.
  if (!ex && !table->empty()) ex = &(*table)[0];
  if (!in && table->size() > 1 && &(*table)[1] != ex) in = &(*table)[1];
  if (!q && table->size() > 2 && &(*table)[2] != ex && &(*table)[2] != in) {
    q = &(*table)[2];
  }
  if (!ex || ex->empty()) {
    std::fprintf(stderr, "ipso_client: %s: no EX(n) column found\n",
                 path.c_str());
    return false;
  }
  req += ",\"ex\":" + series_json(*ex);
  if (in && !in->empty()) req += ",\"in\":" + series_json(*in);
  if (q && !q->empty()) req += ",\"q\":" + series_json(*q);
  return true;
}

/// Loads the two-column speedup CSV and appends it under `field` —
/// "speedup" for diagnose, "observations" for an inline compare.
bool append_speedup_field(const std::string& path, const char* field,
                          std::string& req) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "ipso_client: cannot open '%s'\n", path.c_str());
    return false;
  }
  auto series = ipso::trace::read_series_csv(file, "S(n)");
  if (!series) {
    std::fprintf(stderr, "ipso_client: %s: %s\n", path.c_str(),
                 series.error().message().c_str());
    return false;
  }
  req += ",\"" + std::string(field) + "\":" + series_json(*series);
  return true;
}

/// One round trip; prints the response, returns true iff "ok":true.
bool roundtrip_and_print(ipso::serve::Client& client,
                         const std::string& request) {
  auto response = client.call(request);
  if (!response) {
    std::fprintf(stderr, "ipso_client: %s\n",
                 response.error().message.c_str());
    return false;
  }
  std::printf("%s\n", response->c_str());
  return response->find("\"ok\":true") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipso;

  if (has_flag(argc, argv, "--help") || has_flag(argc, argv, "-h") ||
      argc < 2) {
    std::fputs(kUsage, stdout);
    return argc < 2 ? 1 : 0;
  }
  if (has_flag(argc, argv, "--version")) {
    std::printf("%s\n", trace::version_string().c_str());
    return 0;
  }

  const std::string op = argv[1];
  const bool known_op = op == "ping" || op == "stats" || op == "fit" ||
                        op == "classify" || op == "predict" ||
                        op == "recommend" || op == "diagnose" ||
                        op == "observe" || op == "compare" || op == "raw";
  if (!known_op) {
    std::fprintf(stderr, "ipso_client: unknown op '%s' (try --help)\n",
                 op.c_str());
    return 1;
  }

  const std::string host = string_flag(argc, argv, "--host", "127.0.0.1");
  const std::size_t port = flag_or_die(
      trace::size_flag_from_args(argc, argv, "--port", 0, 0, 65535));
  if (port == 0) {
    std::fprintf(stderr, "ipso_client: --port is required\n");
    return 1;
  }

  const std::string proto_text = string_flag(argc, argv, "--proto", "json");
  if (proto_text != "json" && proto_text != "binary") {
    std::fprintf(stderr,
                 "ipso_client: --proto must be json or binary, got '%s'\n",
                 proto_text.c_str());
    return 1;
  }
  const serve::Proto proto =
      proto_text == "binary" ? serve::Proto::kBinary : serve::Proto::kJson;
  const std::size_t pipeline = flag_or_die(
      trace::size_flag_from_args(argc, argv, "--pipeline", 1, 1, 65536));

  serve::Client client(proto);
  if (auto connected =
          client.connect(host, static_cast<std::uint16_t>(port));
      !connected) {
    std::fprintf(stderr, "ipso_client: %s\n",
                 connected.error().message.c_str());
    return 1;
  }

  if (op == "raw") {
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    bool all_ok = true;
    // Pipelining window: put up to `pipeline` requests on the wire (one
    // frame each in binary mode), then collect their responses in order.
    for (std::size_t i = 0; i < lines.size(); i += pipeline) {
      const std::size_t end = std::min(lines.size(), i + pipeline);
      for (std::size_t j = i; j < end; ++j) {
        if (auto sent = client.send_batch({lines[j]}); !sent) {
          std::fprintf(stderr, "ipso_client: %s\n",
                       sent.error().message.c_str());
          return 1;
        }
      }
      for (std::size_t j = i; j < end; ++j) {
        auto batch = client.recv_batch(1);
        if (!batch) {
          std::fprintf(stderr, "ipso_client: %s\n",
                       batch.error().message.c_str());
          return 1;
        }
        for (const std::string& response : *batch) {
          std::printf("%s\n", response.c_str());
          all_ok = response.find("\"ok\":true") != std::string::npos &&
                   all_ok;
        }
      }
    }
    return all_ok ? 0 : 1;
  }

  std::string req = "{\"op\":\"" + op + "\"";
  if (const std::string id = string_flag(argc, argv, "--id"); !id.empty())
    req += ",\"id\":\"" + trace::json_escape(id) + "\"";
  if (const std::string w = string_flag(argc, argv, "--workload");
      !w.empty()) {
    req += ",\"workload\":\"" + trace::json_escape(w) + "\"";
  }
  if (const std::string key = string_flag(argc, argv, "--key");
      !key.empty()) {
    req += ",\"key\":\"" + trace::json_escape(key) + "\"";
  }
  if (const double eta = double_flag(argc, argv, "--eta", 1e-12, 1.0);
      !std::isnan(eta)) {
    req += ",\"eta\":" + trace::json_double(eta);
  }
  if (const double n = double_flag(argc, argv, "--n", 1.0, 1e12);
      !std::isnan(n)) {
    req += ",\"n\":" + trace::json_double(n);
  }
  if (const double v = double_flag(argc, argv, "--value", 1e-12, 1e12);
      !std::isnan(v)) {
    req += ",\"value\":" + trace::json_double(v);
  }
  if (const std::string factors = string_flag(argc, argv, "--factors");
      !factors.empty()) {
    if (!append_factor_fields(factors, req)) return 1;
  }
  if (const std::string speedup = string_flag(argc, argv, "--speedup");
      !speedup.empty()) {
    // The same CSV feeds diagnose (as the curve to diagnose) and compare
    // (as the inline observation set the zoo scores).
    const char* field = op == "compare" ? "observations" : "speedup";
    if (!append_speedup_field(speedup, field, req)) return 1;
  }
  if (const std::string ns = string_flag(argc, argv, "--ns"); !ns.empty()) {
    req += ",\"ns\":[";
    std::istringstream is(ns);
    std::string tok;
    bool first = true;
    while (std::getline(is, tok, ',')) {
      if (tok.empty()) continue;
      double grid_n = 0.0;
      std::istringstream ts(tok);
      if (!(ts >> grid_n) || !(ts >> std::ws).eof() || !(grid_n >= 1.0)) {
        std::fprintf(stderr,
                     "ipso_client: --ns: expected a node count >= 1, got "
                     "'%s'\n",
                     tok.c_str());
        return 1;
      }
      if (!first) req += ",";
      first = false;
      req += trace::json_double(grid_n);
    }
    req += "]";
  }
  if (const double knee = double_flag(argc, argv, "--knee-frac", 1e-12, 1.0);
      !std::isnan(knee)) {
    req += ",\"knee_frac\":" + trace::json_double(knee);
  }
  if (const double dl =
          double_flag(argc, argv, "--deadline-ms", 0.0, 1e9);
      !std::isnan(dl)) {
    req += ",\"deadline_ms\":" + trace::json_double(dl);
  }
  req += "}";

  return roundtrip_and_print(client, req) ? 0 : 1;
}
