#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file emitted by ipso::obs.

Checks (exit 0 = all pass, 1 = violation, 2 = unreadable/ill-formed):
  * the file parses as JSON with a "traceEvents" list
  * duration events carry ph in {B, E}, numeric ts, pid, tid, and a name
  * per (pid, tid) stream, timestamps are monotonically non-decreasing
  * per (pid, tid) stream, B/E events balance like parentheses and every E
    closes a B with the same name (properly nested spans)
  * metadata (ph == "M") names every pid/tid that carries events

Usage: tools/validate_trace.py trace.json
"""

import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_trace: cannot parse {sys.argv[1]}: {e}",
              file=sys.stderr)
        sys.exit(2)

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("no traceEvents list")

    duration = [e for e in events if e.get("ph") in ("B", "E")]
    metadata = [e for e in events if e.get("ph") == "M"]
    if not duration:
        fail("no duration (B/E) events")

    named_pids = set()
    named_tids = set()
    for e in metadata:
        if e.get("name") == "process_name":
            named_pids.add(e.get("pid"))
        elif e.get("name") == "thread_name":
            named_tids.add((e.get("pid"), e.get("tid")))

    streams = defaultdict(list)
    for i, e in enumerate(duration):
        for key in ("ts", "pid", "tid"):
            if not isinstance(e.get(key), (int, float)):
                fail(f"event {i} missing numeric {key}: {e}")
        if e["ph"] == "B" and not e.get("name"):
            fail(f"B event {i} has no name")
        streams[(e["pid"], e["tid"])].append(e)

    total_spans = 0
    for (pid, tid), evs in sorted(streams.items()):
        if pid not in named_pids:
            fail(f"pid {pid} carries events but has no process_name metadata")
        if (pid, tid) not in named_tids:
            fail(f"track {pid}/{tid} carries events but has no thread_name")
        last_ts = None
        stack = []
        for e in evs:
            if last_ts is not None and e["ts"] < last_ts:
                fail(f"track {pid}/{tid}: ts regressed "
                     f"{last_ts} -> {e['ts']} at {e}")
            last_ts = e["ts"]
            if e["ph"] == "B":
                stack.append(e["name"])
            else:
                if not stack:
                    fail(f"track {pid}/{tid}: E without matching B: {e}")
                top = stack.pop()
                if e.get("name") and e["name"] != top:
                    fail(f"track {pid}/{tid}: E '{e['name']}' closes "
                         f"B '{top}' (improper nesting)")
                total_spans += 1
        if stack:
            fail(f"track {pid}/{tid}: {len(stack)} unclosed B events: {stack}")

    dropped = doc.get("otherData", {}).get("dropped_spans", 0)
    print(f"validate_trace: OK: {total_spans} spans on {len(streams)} tracks"
          f" ({len(metadata)} metadata events, {dropped} dropped)")
    sys.exit(0)


if __name__ == "__main__":
    main()
