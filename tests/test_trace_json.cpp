#include "trace/json.h"

#include "workloads/sort.h"

#include <gtest/gtest.h>

namespace ipso::trace {
namespace {

TEST(Json, SeriesShape) {
  stats::Series s("S(n)");
  s.add(1, 1.0);
  s.add(2, 1.5);
  const std::string j = to_json(s);
  EXPECT_EQ(j, "{\"name\":\"S(n)\",\"points\":[[1,1],[2,1.5]]}");
}

TEST(Json, EscapesQuotes) {
  stats::Series s("a\"b");
  const std::string j = to_json(s);
  EXPECT_NE(j.find("a\\\"b"), std::string::npos);
}

TEST(Json, MrSweepContainsAllSections) {
  MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4};
  sweep.repetitions = 1;
  const auto r =
      run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1), sweep);
  const std::string j = to_json(r);
  for (const char* key :
       {"\"kind\":\"mr_sweep\"", "\"eta\":", "\"speedup\":", "\"ex\":",
        "\"in\":", "\"q\":", "\"points\":", "\"components\":",
        "\"spilled\":false"}) {
    EXPECT_NE(j.find(key), std::string::npos) << key;
  }
}

TEST(Json, MrSweepPointCountMatches) {
  MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8};
  sweep.repetitions = 1;
  const auto r =
      run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1), sweep);
  const std::string j = to_json(r);
  std::size_t count = 0, pos = 0;
  while ((pos = j.find("\"parallel_time\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 4u);
}

TEST(Json, BalancedBracesAndBrackets) {
  MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedSize;
  sweep.ns = {1, 2};
  sweep.repetitions = 1;
  const auto r =
      run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1), sweep);
  const std::string j = to_json(r);
  int braces = 0, brackets = 0;
  for (char c : j) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace
}  // namespace ipso::trace
