#include "trace/json.h"

#include "workloads/sort.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ipso::trace {
namespace {

TEST(Json, SeriesShape) {
  stats::Series s("S(n)");
  s.add(1, 1.0);
  s.add(2, 1.5);
  const std::string j = to_json(s);
  EXPECT_EQ(j, "{\"name\":\"S(n)\",\"points\":[[1,1],[2,1.5]]}");
}

TEST(Json, EscapesQuotes) {
  stats::Series s("a\"b");
  const std::string j = to_json(s);
  EXPECT_NE(j.find("a\\\"b"), std::string::npos);
}

TEST(Json, MrSweepContainsAllSections) {
  MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4};
  sweep.repetitions = 1;
  const auto r =
      run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1), sweep);
  const std::string j = to_json(r);
  for (const char* key :
       {"\"kind\":\"mr_sweep\"", "\"eta\":", "\"speedup\":", "\"ex\":",
        "\"in\":", "\"q\":", "\"points\":", "\"components\":",
        "\"spilled\":false"}) {
    EXPECT_NE(j.find(key), std::string::npos) << key;
  }
}

TEST(Json, MrSweepPointCountMatches) {
  MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8};
  sweep.repetitions = 1;
  const auto r =
      run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1), sweep);
  const std::string j = to_json(r);
  std::size_t count = 0, pos = 0;
  while ((pos = j.find("\"parallel_time\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 4u);
}

TEST(Json, BalancedBracesAndBrackets) {
  MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedSize;
  sweep.ns = {1, 2};
  sweep.repetitions = 1;
  const auto r =
      run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1), sweep);
  const std::string j = to_json(r);
  int braces = 0, brackets = 0;
  for (char c : j) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(JsonDouble, EmitsMaxDigits10) {
  // 12-digit output used to truncate these; 17 digits round-trip exactly.
  for (double v : {1.0 / 3.0, 0.1, 2.0 / 7.0, 1e-17, 123456789.123456789,
                   std::numeric_limits<double>::denorm_min(),
                   std::numeric_limits<double>::max()}) {
    const std::string text = json_double(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
  EXPECT_EQ(json_double(1.0), "1");
  EXPECT_EQ(json_double(1.5), "1.5");
}

TEST(JsonDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(std::nan("")), "null");
}

TEST(JsonDouble, SeriesPointsSurviveRoundTrip) {
  stats::Series s("exact");
  s.add(1, 1.0 / 3.0);
  s.add(2, 0.1 + 0.2);  // != 0.3; the output must preserve the difference
  const std::string j = to_json(s);
  const auto doc = parse_json(j);
  ASSERT_TRUE(doc.has_value()) << doc.error().to_string();
  const auto& points = doc->get("points")->as_array();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].as_array()[1].as_number(), 1.0 / 3.0);
  EXPECT_EQ(points[1].as_array()[1].as_number(), 0.1 + 0.2);
  EXPECT_NE(points[1].as_array()[1].as_number(), 0.3);
}

TEST(JsonParse, AcceptsEveryValueKind) {
  const auto doc = parse_json(
      "{\"null\":null,\"t\":true,\"f\":false,\"num\":-1.5e3,"
      "\"str\":\"a\\\"b\\n\",\"arr\":[1,[2],{}],\"obj\":{\"k\":1}}");
  ASSERT_TRUE(doc.has_value()) << doc.error().to_string();
  EXPECT_TRUE(doc->get("null")->is_null());
  EXPECT_TRUE(doc->get("t")->as_bool());
  EXPECT_FALSE(doc->get("f")->as_bool(true));
  EXPECT_EQ(doc->get("num")->as_number(), -1500.0);
  EXPECT_EQ(doc->get("str")->as_string(), "a\"b\n");
  EXPECT_EQ(doc->get("arr")->as_array().size(), 3u);
  EXPECT_EQ(doc->get("obj")->get("k")->as_number(), 1.0);
  EXPECT_EQ(doc->get("missing"), nullptr);
}

TEST(JsonParse, UnicodeEscapes) {
  const auto doc = parse_json("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "A\xc3\xa9");  // 'A' + UTF-8 e-acute
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"k\" 1}", "{\"k\":1} trailing", "tru",
        "\"unterminated", "01x", "1e999" /* overflows to inf */}) {
    const auto doc = parse_json(bad);
    EXPECT_FALSE(doc.has_value()) << "accepted: " << bad;
  }
  const auto doc = parse_json("{\"k\":}");
  ASSERT_FALSE(doc.has_value());
  EXPECT_GT(doc.error().offset, 0u);
  EXPECT_FALSE(doc.error().message.empty());
  EXPECT_NE(doc.error().to_string().find("offset"), std::string::npos);
}

TEST(JsonParse, ParseDumpParseIsIdentity) {
  const char* text =
      "{\"a\":[1,0.33333333333333331,true,null],\"b\":{\"nested\":"
      "\"s\\\\lash\"},\"c\":-2.5e-3}";
  const auto first = parse_json(text);
  ASSERT_TRUE(first.has_value()) << first.error().to_string();
  const std::string dumped = first->dump();
  const auto second = parse_json(dumped);
  ASSERT_TRUE(second.has_value()) << second.error().to_string();
  // Byte-stable after one round trip: dump(parse(dump(x))) == dump(x).
  EXPECT_EQ(second->dump(), dumped);
  EXPECT_EQ(second->get("a")->as_array()[1].as_number(), 1.0 / 3.0);
}

TEST(JsonParse, SweepExportsParseCleanly) {
  MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4};
  sweep.repetitions = 1;
  const auto r =
      run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1), sweep);
  const auto doc = parse_json(to_json(r));
  ASSERT_TRUE(doc.has_value()) << doc.error().to_string();
  EXPECT_EQ(doc->get("kind")->as_string(), "mr_sweep");
  EXPECT_EQ(doc->get("speedup")->get("points")->as_array().size(), 3u);
}

TEST(JsonParse, DepthLimitStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(parse_json(deep).has_value());
}

}  // namespace
}  // namespace ipso::trace
