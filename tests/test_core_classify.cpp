#include "core/classify.h"

#include "core/model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ipso {
namespace {

AsymptoticParams fixed_time(double eta, double alpha, double delta,
                            double beta, double gamma) {
  AsymptoticParams p;
  p.type = WorkloadType::kFixedTime;
  p.eta = eta;
  p.alpha = alpha;
  p.delta = delta;
  p.beta = beta;
  p.gamma = gamma;
  return p;
}

AsymptoticParams fixed_size(double eta, double alpha, double beta,
                            double gamma) {
  AsymptoticParams p;
  p.type = WorkloadType::kFixedSize;
  p.eta = eta;
  p.alpha = alpha;
  p.delta = 0.0;
  p.beta = beta;
  p.gamma = gamma;
  return p;
}

// --- Fixed-time taxonomy (paper Fig. 2)

TEST(ClassifyFixedTime, GustafsonIsTypeIt) {
  const auto c = classify(fixed_time(0.9, 1.0, 1.0, 0.0, 0.0));
  EXPECT_EQ(c.type, ScalingType::kIt);
  EXPECT_EQ(c.shape, GrowthShape::kLinear);
  EXPECT_TRUE(std::isinf(c.bound));
  // Gustafson slope: S(n)/n -> eta.
  EXPECT_NEAR(c.slope, 0.9, 1e-9);
}

TEST(ClassifyFixedTime, NoSerialPortionNoOverheadIsTypeIt) {
  const auto c = classify(fixed_time(1.0, 1.0, 1.0, 0.0, 0.0));
  EXPECT_EQ(c.type, ScalingType::kIt);
  EXPECT_NEAR(c.slope, 1.0, 1e-9);
}

TEST(ClassifyFixedTime, SublinearOverheadIsTypeIIt) {
  const auto c = classify(fixed_time(0.9, 1.0, 1.0, 0.1, 0.5));
  EXPECT_EQ(c.type, ScalingType::kIIt);
  EXPECT_EQ(c.shape, GrowthShape::kSublinear);
  EXPECT_TRUE(std::isinf(c.bound));
}

TEST(ClassifyFixedTime, PartialInProportionNoOverheadIsTypeIIt) {
  // gamma = 0 but 0 < delta < 1: S ~ n^delta, sublinear unbounded.
  const auto c = classify(fixed_time(0.9, 1.0, 0.5, 0.0, 0.0));
  EXPECT_EQ(c.type, ScalingType::kIIt);
}

TEST(ClassifyFixedTime, FullInProportionIsTypeIIItOne) {
  // delta = 0: merge grows as fast as map -> bounded even for fixed-time.
  const auto c = classify(fixed_time(0.9, 4.3, 0.0, 0.0, 0.0));
  EXPECT_EQ(c.type, ScalingType::kIIIt1);
  EXPECT_EQ(c.shape, GrowthShape::kBounded);
  // Bound = (eta*alpha + 1-eta)/(1-eta) = (0.9*4.3 + 0.1)/0.1 = 39.7.
  EXPECT_NEAR(c.bound, 39.7, 1e-9);
}

TEST(ClassifyFixedTime, LinearOverheadIsTypeIIItTwo) {
  const auto c = classify(fixed_time(0.9, 1.0, 1.0, 0.05, 1.0));
  EXPECT_EQ(c.type, ScalingType::kIIIt2);
  // Bound = 1/beta for delta > 0.
  EXPECT_NEAR(c.bound, 20.0, 1e-9);
}

TEST(ClassifyFixedTime, LinearOverheadDeltaZeroBound) {
  const auto c = classify(fixed_time(0.8, 2.0, 0.0, 0.5, 1.0));
  EXPECT_EQ(c.type, ScalingType::kIIIt2);
  // Bound = (eta*alpha + 1-eta)/(eta*alpha*beta + 1-eta) = 1.8 / 1.0.
  EXPECT_NEAR(c.bound, 1.8, 1e-9);
}

TEST(ClassifyFixedTime, SuperlinearOverheadIsTypeIVt) {
  const auto c = classify(fixed_time(0.9, 1.0, 1.0, 0.001, 2.0));
  EXPECT_EQ(c.type, ScalingType::kIVt);
  EXPECT_EQ(c.shape, GrowthShape::kPeaked);
  EXPECT_GT(c.peak_n, 1.0);
  EXPECT_GT(c.peak_speedup, 1.0);
}

TEST(ClassifyFixedTime, SuperlinearOverheadDominatesOtherFactors) {
  // IVt occurs regardless of delta/eta when gamma > 1.
  for (double delta : {0.0, 0.5, 1.0}) {
    for (double eta : {0.5, 1.0}) {
      const auto c = classify(fixed_time(eta, 1.0, delta, 0.01, 1.5));
      EXPECT_EQ(c.shape, GrowthShape::kPeaked)
          << "delta=" << delta << " eta=" << eta;
    }
  }
}

// --- Fixed-size taxonomy (paper Fig. 3)

TEST(ClassifyFixedSize, PerfectlyParallelIsTypeIs) {
  const auto c = classify(fixed_size(1.0, 1.0, 0.0, 0.0));
  EXPECT_EQ(c.type, ScalingType::kIs);
  EXPECT_NEAR(c.slope, 1.0, 1e-9);  // S(n) = n
}

TEST(ClassifyFixedSize, SublinearOverheadNoSerialIsTypeIIs) {
  const auto c = classify(fixed_size(1.0, 1.0, 0.2, 0.5));
  EXPECT_EQ(c.type, ScalingType::kIIs);
}

TEST(ClassifyFixedSize, AmdahlIsTypeIIIsOne) {
  const auto c = classify(fixed_size(0.9, 1.0, 0.0, 0.0));
  EXPECT_EQ(c.type, ScalingType::kIIIs1);
  EXPECT_NEAR(c.bound, 10.0, 1e-9);  // Amdahl bound 1/(1-eta)
}

TEST(ClassifyFixedSize, SublinearOverheadWithSerialIsStillIIIsOne) {
  const auto c = classify(fixed_size(0.9, 1.0, 0.1, 0.5));
  EXPECT_EQ(c.type, ScalingType::kIIIs1);
  EXPECT_NEAR(c.bound, 10.0, 1e-9);
}

TEST(ClassifyFixedSize, LinearOverheadIsTypeIIIsTwo) {
  const auto c = classify(fixed_size(0.9, 1.0, 0.5, 1.0));
  EXPECT_EQ(c.type, ScalingType::kIIIs2);
  // Bound = (0.9 + 0.1)/(0.9*0.5 + 0.1) = 1/0.55.
  EXPECT_NEAR(c.bound, 1.0 / 0.55, 1e-9);
}

TEST(ClassifyFixedSize, QuadraticBroadcastIsTypeIVs) {
  // The Collaborative Filtering case: eta = 1, gamma = 2.
  const auto c = classify(fixed_size(1.0, 1.0, 3.74e-4, 2.0));
  EXPECT_EQ(c.type, ScalingType::kIVs);
  // Peak of n/(1+beta n^2) is at n = 1/sqrt(beta) ~ 51.7, S ~ 25.9.
  EXPECT_NEAR(c.peak_n, 1.0 / std::sqrt(3.74e-4), 1.0);
  EXPECT_NEAR(c.peak_speedup, 0.5 / std::sqrt(3.74e-4), 0.5);
}

// --- Taxonomy boundaries: exact parameter values on the type borders

TEST(ClassifyBoundary, GammaExactlyOneIsTypeIIItTwo) {
  // gamma = 1 sits exactly on the IIt / IVt border: the scale-out term's
  // denominator exponent ties the parallel term's, so growth is exactly 0
  // -> bounded with the scale-out term in the bound, bound = 1/beta.
  const auto c = classify(fixed_time(1.0, 1.0, 1.0, 1e-3, 1.0));
  EXPECT_EQ(c.type, ScalingType::kIIIt2);
  EXPECT_EQ(c.shape, GrowthShape::kBounded);
  EXPECT_NEAR(c.bound, 1000.0, 1e-6);
}

TEST(ClassifyBoundary, DeltaZeroWithEtaOneIsTypeIs) {
  // delta = 0 normally forces in-proportion scaling (IIIt,1), but at
  // eta = 1 there is no serial term to cap the speedup: the classification
  // must come out linear (Is), slope 1, not bounded. alpha is irrelevant
  // at eta = 1 (the epsilon-ratio cancels, paper remark below Eq. 16).
  const auto c = classify(fixed_size(1.0, 2.5, 0.0, 0.0));
  EXPECT_EQ(c.type, ScalingType::kIs);
  EXPECT_EQ(c.shape, GrowthShape::kLinear);
  EXPECT_NEAR(c.slope, 1.0, 1e-9);
  EXPECT_TRUE(std::isinf(c.bound));
}

TEST(ClassifyBoundary, GammaSlightlyAboveOneIsTypeIVt) {
  // gamma = 1.1 clears the classification tolerance (0.05) above the
  // gamma = 1 border: growth = -0.1 < -tol, so the curve peaks (IVt).
  const auto c = classify(fixed_time(1.0, 1.0, 1.0, 1e-3, 1.1));
  EXPECT_EQ(c.type, ScalingType::kIVt);
  EXPECT_EQ(c.shape, GrowthShape::kPeaked);
  // beta*n^gamma*(gamma-1) = 1 at the peak: n = (1/(beta*(gamma-1)))^(1/gamma).
  const double expected_peak = std::pow(1.0 / (1e-3 * 0.1), 1.0 / 1.1);
  EXPECT_NEAR(c.peak_n, expected_peak, 0.01 * expected_peak);
  EXPECT_GT(c.peak_speedup, 1.0);
}

// --- Robustness and utilities

TEST(Classify, ToleranceAbsorbsFittedNoise) {
  // gamma fitted at 0.98 should classify as the gamma = 1 type.
  const auto c = classify(fixed_time(0.9, 1.0, 1.0, 0.05, 0.98));
  EXPECT_EQ(c.type, ScalingType::kIIIt2);
}

TEST(Classify, ThrowsOnBadEta) {
  EXPECT_THROW(classify(fixed_time(1.5, 1, 1, 0, 0)), std::invalid_argument);
}

TEST(Classify, ThrowsOnNegativeCoefficients) {
  EXPECT_THROW(classify(fixed_time(0.5, -1, 1, 0, 0)), std::invalid_argument);
}

TEST(Classify, RationaleMentionsPathology) {
  const auto c = classify(fixed_size(1.0, 1.0, 0.01, 2.0));
  EXPECT_NE(c.rationale.find("PATHOLOGICAL"), std::string::npos);
}

TEST(Classify, NamesRoundTrip) {
  EXPECT_EQ(to_string(ScalingType::kIIIt1), "IIIt,1");
  EXPECT_EQ(to_string(ScalingType::kIVs), "IVs");
  EXPECT_EQ(shape_of(ScalingType::kIVs), GrowthShape::kPeaked);
  EXPECT_EQ(shape_of(ScalingType::kIs), GrowthShape::kLinear);
  EXPECT_EQ(shape_of(ScalingType::kIIt), GrowthShape::kSublinear);
  EXPECT_EQ(shape_of(ScalingType::kIIIs2), GrowthShape::kBounded);
}

TEST(FindPeak, LocatesAnalyticMaximum) {
  // S(n) = n/(1+beta n^2) peaks at 1/sqrt(beta).
  AsymptoticParams p;
  p.eta = 1.0;
  p.beta = 1e-4;
  p.gamma = 2.0;
  const Peak pk = find_peak(p);
  EXPECT_NEAR(pk.n, 100.0, 0.5);
  EXPECT_NEAR(pk.speedup, 50.0, 0.05);
}

TEST(FindPeak, MonotoneCurveReturnsEndpoint) {
  AsymptoticParams p;
  p.eta = 1.0;  // S(n) = n
  const Peak pk = find_peak(p, 1000.0);
  EXPECT_NEAR(pk.n, 1000.0, 1e-6);
}

TEST(AnalyticPeak, MatchesGoldenSectionSearch) {
  const double beta = 3.74e-4, gamma = 2.0;
  const Peak analytic = analytic_peak_eta_one(beta, gamma);
  AsymptoticParams p;
  p.eta = 1.0;
  p.beta = beta;
  p.gamma = gamma;
  const Peak numeric = find_peak(p);
  EXPECT_NEAR(analytic.n, numeric.n, 0.01 * numeric.n);
  EXPECT_NEAR(analytic.speedup, numeric.speedup, 0.01 * numeric.speedup);
  // Paper's CF ceiling: ~52 nodes.
  EXPECT_NEAR(analytic.n, 51.7, 0.5);
}

TEST(AnalyticPeak, RejectsNonPeakedParameters) {
  EXPECT_THROW(analytic_peak_eta_one(0.01, 1.0), std::invalid_argument);
  EXPECT_THROW(analytic_peak_eta_one(0.0, 2.0), std::invalid_argument);
}

TEST(Classify, BoundMatchesModelLimit) {
  // The classifier's bound must match the asymptotic model evaluated far out.
  const auto p = fixed_time(0.85, 2.5, 0.0, 0.0, 0.0);
  const auto c = classify(p);
  EXPECT_NEAR(speedup_asymptotic(p, 1e8), c.bound, 1e-3);
}

TEST(AsymptoticBoundHelper, MatchesClassification) {
  const auto p = fixed_size(0.9, 1.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(asymptotic_bound(p), classify(p).bound);
}

}  // namespace
}  // namespace ipso
