#include "spark/engine.h"
#include "spark/eventlog.h"

#include <gtest/gtest.h>

#include <tuple>

/// Property sweeps over the Spark engine's (N, m) space: structural
/// invariants that must hold for every job shape.

namespace ipso::spark {
namespace {

SparkAppSpec iterative_app() {
  SparkAppSpec app;
  app.name = "prop";
  StageSpec heavy;
  heavy.name = "heavy";
  heavy.task_ops = 1.2e8;
  heavy.shuffle_bytes_per_task = 1e5;
  heavy.broadcast_bytes = 2e5;
  StageSpec light;
  light.name = "light";
  light.task_ops = 3e7;
  light.task_count_factor = 0.25;
  app.stages = {heavy, light};
  app.iterations = 2;
  app.driver_ops_per_job = 1e7;
  return app;
}

using Shape = std::tuple<std::size_t /*N*/, std::size_t /*m*/>;

class SparkShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(SparkShapes, StageAccountingHolds) {
  const auto [N, m] = GetParam();
  SparkEngine engine(sim::default_emr_cluster(m));
  SparkJobConfig job;
  job.total_tasks = N;
  job.executors = m;
  const auto r = engine.run(iterative_app(), job);

  ASSERT_EQ(r.stages.size(), 4u);  // 2 stages x 2 iterations
  double prev_end = 0.0;
  for (const auto& s : r.stages) {
    EXPECT_GE(s.submission_time, prev_end - 1e-9);  // stages serialize
    EXPECT_GE(s.completion_time, s.submission_time);
    EXPECT_GE(s.waves, 1u);
    EXPECT_EQ(s.waves, (s.tasks + m - 1) / m);
    prev_end = s.completion_time;
  }
  // Makespan = last stage completion + the serial driver work (1e7 ops
  // at 1e8 ops/s = 0.1 s for this app).
  EXPECT_NEAR(r.makespan, r.stages.back().completion_time + 0.1, 1e-9);
}

TEST_P(SparkShapes, ComponentsAreNonNegativeAndComplete) {
  const auto [N, m] = GetParam();
  SparkEngine engine(sim::default_emr_cluster(m));
  SparkJobConfig job;
  job.total_tasks = N;
  job.executors = m;
  const auto r = engine.run(iterative_app(), job);
  EXPECT_GT(r.components.wp, 0.0);
  EXPECT_GE(r.components.ws, 0.0);
  EXPECT_GE(r.components.wo, 0.0);
  EXPECT_GT(r.components.max_tp, 0.0);
  EXPECT_DOUBLE_EQ(r.components.n, static_cast<double>(m));
}

TEST_P(SparkShapes, ParallelWpMatchesSequential) {
  const auto [N, m] = GetParam();
  SparkEngine engine(sim::default_emr_cluster(m));
  SparkJobConfig job;
  job.total_tasks = N;
  job.executors = m;
  const auto par = engine.run(iterative_app(), job);
  const auto seq = engine.run_sequential(iterative_app(), job);
  EXPECT_NEAR(par.components.wp, seq.components.wp, 1e-9);
  EXPECT_DOUBLE_EQ(seq.components.wo, 0.0);
}

TEST_P(SparkShapes, EventLogRoundTripsAndSpeedupDerivable) {
  const auto [N, m] = GetParam();
  SparkEngine engine(sim::default_emr_cluster(m));
  SparkJobConfig job;
  job.total_tasks = N;
  job.executors = m;
  const auto par = engine.run(iterative_app(), job);
  const auto seq = engine.run_sequential(iterative_app(), job);

  const auto speedup =
      speedup_from_logs(to_event_log(seq), to_event_log(par));
  ASSERT_TRUE(speedup.has_value());
  EXPECT_GT(*speedup, 0.0);
  // The log method measures exactly the stage span (what the paper's
  // timestamp tracing measured); it excludes init and post-stage driver
  // work, so compare against the span ratio exactly...
  const double seq_span = seq.stages.back().completion_time -
                          seq.stages.front().submission_time;
  const double par_span = par.stages.back().completion_time -
                          par.stages.front().submission_time;
  EXPECT_NEAR(*speedup, seq_span / par_span, 1e-6);
  // ...and against the full makespan ratio only loosely.
  EXPECT_NEAR(*speedup, seq.makespan / par.makespan,
              0.3 * (seq.makespan / par.makespan));
}

TEST_P(SparkShapes, StageLatencyTotalsCoverEveryStageName) {
  const auto [N, m] = GetParam();
  SparkEngine engine(sim::default_emr_cluster(m));
  SparkJobConfig job;
  job.total_tasks = N;
  job.executors = m;
  const auto r = engine.run(iterative_app(), job);
  const auto totals = stage_latency_totals(parse_event_log(to_event_log(r)));
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_GT(totals.at("heavy"), totals.at("light"));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SparkShapes,
    ::testing::Combine(::testing::Values(1u, 4u, 17u, 64u),   // N
                       ::testing::Values(1u, 3u, 8u, 32u)));  // m

}  // namespace
}  // namespace ipso::spark
