#include "sim/cluster.h"
#include "sim/metrics.h"
#include "sim/resources.h"
#include "sim/scheduler.h"
#include "sim/straggler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace ipso::sim {
namespace {

TEST(CpuModel, ConvertsOpsToSeconds) {
  CpuModel cpu{1e8};
  EXPECT_DOUBLE_EQ(cpu.time_for(2e8), 2.0);
  EXPECT_DOUBLE_EQ(cpu.time_for(0.0), 0.0);
}

TEST(DiskModel, StreamsBytes) {
  DiskModel disk{100e6};
  EXPECT_DOUBLE_EQ(disk.time_for(200e6), 2.0);
}

TEST(MemoryModel, OverflowBytes) {
  MemoryModel mem{2e9};
  EXPECT_DOUBLE_EQ(mem.overflow_bytes(1e9), 0.0);
  EXPECT_DOUBLE_EQ(mem.overflow_bytes(2e9), 0.0);
  EXPECT_DOUBLE_EQ(mem.overflow_bytes(3e9), 1e9);
  EXPECT_FALSE(mem.overflows(2e9));
  EXPECT_TRUE(mem.overflows(2e9 + 1));
}

TEST(NetworkModel, TransferIncludesLatency) {
  NetworkModel net{50e6, 1e-3, 0.0};
  EXPECT_DOUBLE_EQ(net.transfer_time(50e6), 1.0 + 1e-3);
}

TEST(NetworkModel, IncastPenaltyGrowsWithSenders) {
  NetworkModel net{50e6, 0.0, 0.01};
  const double one = net.transfer_time(50e6, 1);
  const double many = net.transfer_time(50e6, 11);
  EXPECT_DOUBLE_EQ(one, 1.0);
  EXPECT_DOUBLE_EQ(many, 1.1);  // 10 extra senders * 1% each
}

TEST(NetworkModel, BroadcastSerializesAtMaster) {
  NetworkModel net{50e6, 0.0, 0.0};
  // 8 receivers, 50 MB each: the master uplink sends 8 copies in turn.
  EXPECT_DOUBLE_EQ(net.broadcast_time(50e6, 8), 8.0);
  EXPECT_DOUBLE_EQ(net.broadcast_time(50e6, 1), 1.0);
}

TEST(SchedulerModel, PerTaskCostGrowsWithContention) {
  SchedulerModel sched;
  sched.base_cost_seconds = 0.01;
  sched.contention_coeff = 0.001;
  sched.contention_exponent = 1.0;
  EXPECT_DOUBLE_EQ(sched.per_task_cost(1), 0.011);
  EXPECT_DOUBLE_EQ(sched.per_task_cost(100), 0.11);
}

TEST(SchedulerModel, DispatchIsSerial) {
  SchedulerModel sched;
  sched.base_cost_seconds = 0.01;
  const auto offsets = sched.dispatch_offsets(3, 3);
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_DOUBLE_EQ(offsets[0], 0.01);
  EXPECT_DOUBLE_EQ(offsets[1], 0.02);
  EXPECT_DOUBLE_EQ(offsets[2], 0.03);
  EXPECT_DOUBLE_EQ(sched.total_dispatch_time(3, 3), 0.03);
}

TEST(Straggler, DisabledIsUnity) {
  StragglerModel s;
  stats::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(s.factor(rng), 1.0);
}

TEST(Straggler, EnabledIsBoundedAndMeanOne) {
  StragglerModel s;
  s.enabled = true;
  s.cap = 3.0;
  // Normalized mode: draws live in [1/E, cap/E] where E is the truncated
  // mean, and the sample mean converges to 1 (pure dispersion, no mean
  // shift — Eq. 8's E[X] = 1 normalization).
  const double raw_mean = stats::capped_pareto_mean(s.tail_shape, s.cap);
  stats::Rng rng(2);
  double max_seen = 0.0;
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double f = s.factor(rng);
    EXPECT_GE(f, 1.0 / raw_mean - 1e-12);
    EXPECT_LE(f, 3.0 / raw_mean + 1e-12);
    max_seen = std::max(max_seen, f);
    sum += f;
  }
  EXPECT_GT(max_seen, 1.5);  // the tail actually produces stragglers
  EXPECT_NEAR(sum / kDraws, 1.0, 5e-3);
}

TEST(Straggler, RawModeKeepsHistoricalSupport) {
  StragglerModel s;
  s.enabled = true;
  s.cap = 3.0;
  s.normalize_mean = false;
  stats::Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double f = s.factor(rng);
    EXPECT_GE(f, 1.0);
    EXPECT_LE(f, 3.0);
  }
}

TEST(Straggler, TruncatedMeanMatchesCappedParetoFormula) {
  // The helper is the single source of truth for both sim::StragglerModel
  // and core::CappedParetoTime; spot-check it against a direct Monte Carlo
  // estimate of E[heavy_tail(1, shape, cap)].
  const double analytic = stats::capped_pareto_mean(3.0, 4.0);
  stats::Rng rng(7);
  double sum = 0.0;
  constexpr int kDraws = 400000;
  for (int i = 0; i < kDraws; ++i) sum += rng.heavy_tail(1.0, 3.0, 4.0);
  EXPECT_NEAR(sum / kDraws, analytic, 5e-3);
}

TEST(ClusterConfig, DefaultEmrIsValid) {
  const ClusterConfig cfg = default_emr_cluster(16);
  EXPECT_EQ(cfg.workers, 16u);
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_DOUBLE_EQ(cfg.reducer_memory.capacity_bytes, 2e9);
}

TEST(ClusterConfig, ValidateRejectsZeroWorkers) {
  ClusterConfig cfg = default_emr_cluster(1);
  cfg.workers = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClusterConfig, ValidateRejectsNonPositiveRates) {
  ClusterConfig cfg = default_emr_cluster(1);
  cfg.worker_cpu.ops_per_second = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PhaseBreakdown, TotalsAndSerial) {
  PhaseBreakdown p;
  p.init = 1.0;
  p.map = 10.0;
  p.shuffle = 2.0;
  p.merge = 3.0;
  p.reduce = 0.5;
  EXPECT_DOUBLE_EQ(p.total(), 16.5);
  EXPECT_DOUBLE_EQ(p.serial(), 5.5);
}

TEST(PhaseBreakdown, QuantizationRoundsToPrecision) {
  PhaseBreakdown p;
  p.map = 10.4;
  p.merge = 0.4;  // sub-second phase disappears at 1 s precision
  const PhaseBreakdown q = p.quantized(1.0);
  EXPECT_DOUBLE_EQ(q.map, 10.0);
  EXPECT_DOUBLE_EQ(q.merge, 0.0);
  // Zero precision = exact.
  EXPECT_DOUBLE_EQ(p.quantized(0.0).merge, 0.4);
}

TEST(Trace, RecordsAndTotals) {
  Trace t;
  t.record("map", 1.5);
  t.record("map", 2.5);
  t.record("merge", 1.0);
  EXPECT_DOUBLE_EQ(t.total("map"), 4.0);
  EXPECT_EQ(t.count("map"), 2u);
  EXPECT_DOUBLE_EQ(t.total("missing"), 0.0);
  EXPECT_EQ(t.count("missing"), 0u);
  EXPECT_EQ(t.phases(), (std::vector<std::string>{"map", "merge"}));
}

}  // namespace
}  // namespace ipso::sim
