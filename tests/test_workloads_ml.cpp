#include "workloads/bayes.h"
#include "workloads/random_forest.h"
#include "workloads/svm.h"

#include <gtest/gtest.h>

namespace ipso::wl {
namespace {

// --- data generation

TEST(DataGen, GaussianClassesShapeAndLabels) {
  const auto data = make_gaussian_classes(1, 500, 8, 3);
  ASSERT_EQ(data.size(), 500u);
  for (const auto& p : data) {
    EXPECT_EQ(p.features.size(), 8u);
    EXPECT_GE(p.label, 0);
    EXPECT_LT(p.label, 3);
  }
}

TEST(DataGen, Deterministic) {
  const auto a = make_gaussian_classes(7, 50, 4, 2);
  const auto b = make_gaussian_classes(7, 50, 4, 2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].features, b[i].features);
  }
}

// --- naive Bayes

TEST(Bayes, LearnsSeparableClasses) {
  const auto train = make_gaussian_classes(1, 2000, 6, 3);
  const auto test = make_gaussian_classes(2, 500, 6, 3);
  // Same seed-derived means? No: different seed means different clusters.
  // Train/test must share clusters, so split one generated set instead.
  const auto all = make_gaussian_classes(3, 2500, 6, 3);
  const std::vector<LabeledPoint> tr(all.begin(), all.begin() + 2000);
  const std::vector<LabeledPoint> te(all.begin() + 2000, all.end());
  const BayesModel m = bayes_train(tr, 3);
  EXPECT_GT(bayes_accuracy(m, te), 0.9);
  (void)train;
  (void)test;
}

TEST(Bayes, PriorsSumToOne) {
  const auto data = make_gaussian_classes(4, 1000, 4, 4);
  const BayesModel m = bayes_train(data, 4);
  double sum = 0.0;
  for (double p : m.prior) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Bayes, MergeEqualsWholeTraining) {
  const auto all = make_gaussian_classes(5, 1200, 4, 2);
  const std::vector<LabeledPoint> a(all.begin(), all.begin() + 500);
  const std::vector<LabeledPoint> b(all.begin() + 500, all.end());
  const BayesModel whole = bayes_train(all, 2);
  const BayesModel merged =
      bayes_merge(bayes_train(a, 2), a.size(), bayes_train(b, 2), b.size());
  for (std::size_t i = 0; i < whole.mean.size(); ++i) {
    EXPECT_NEAR(merged.mean[i], whole.mean[i], 1e-9);
    EXPECT_NEAR(merged.variance[i], whole.variance[i], 1e-6);
  }
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(merged.prior[c], whole.prior[c], 1e-12);
  }
}

TEST(Bayes, RejectsBadInput) {
  EXPECT_THROW(bayes_train({}, 2), std::invalid_argument);
  const auto data = make_gaussian_classes(6, 10, 4, 2);
  const BayesModel m = bayes_train(data, 2);
  EXPECT_THROW(bayes_predict(m, {1.0}), std::invalid_argument);
}

// --- SVM

TEST(Svm, LearnsLinearlySeparableData) {
  const auto all = make_gaussian_classes(8, 2000, 6, 2);
  const std::vector<LabeledPoint> tr(all.begin(), all.begin() + 1600);
  const std::vector<LabeledPoint> te(all.begin() + 1600, all.end());
  const SvmModel m = svm_train(tr, 5);
  EXPECT_GT(svm_accuracy(m, te), 0.9);
}

TEST(Svm, ObjectiveDecreasesWithEpochs) {
  const auto data = make_gaussian_classes(9, 1000, 4, 2);
  const SvmModel early = svm_train(data, 1);
  const SvmModel late = svm_train(data, 10);
  EXPECT_LT(svm_objective(late, data, 1e-3),
            svm_objective(early, data, 1e-3) + 1e-9);
}

TEST(Svm, PredictIsSignOfMargin) {
  const auto data = make_gaussian_classes(10, 500, 4, 2);
  const SvmModel m = svm_train(data, 3);
  for (const auto& p : data) {
    const int pred = svm_predict(m, p.features);
    EXPECT_EQ(pred, svm_margin(m, p.features) >= 0.0 ? 1 : 0);
  }
}

TEST(Svm, RejectsEmptyAndMismatched) {
  EXPECT_THROW(svm_train({}, 1), std::invalid_argument);
  const auto data = make_gaussian_classes(11, 10, 4, 2);
  const SvmModel m = svm_train(data, 1);
  EXPECT_THROW(svm_margin(m, {1.0, 2.0}), std::invalid_argument);
}

// --- Random Forest

TEST(Forest, LearnsSeparableClasses) {
  const auto all = make_gaussian_classes(12, 1500, 6, 3);
  const std::vector<LabeledPoint> tr(all.begin(), all.begin() + 1200);
  const std::vector<LabeledPoint> te(all.begin() + 1200, all.end());
  const Forest f = forest_train(tr, 3, /*trees=*/15, /*max_depth=*/6, 99);
  EXPECT_GT(forest_accuracy(f, te), 0.85);
}

TEST(Forest, MoreTreesAtLeastAsGoodOnTrain) {
  const auto data = make_gaussian_classes(13, 800, 4, 2);
  const Forest one = forest_train(data, 2, 1, 4, 7);
  const Forest many = forest_train(data, 2, 21, 4, 7);
  EXPECT_GE(forest_accuracy(many, data) + 0.05, forest_accuracy(one, data));
}

TEST(Forest, SingleTreePredictConsistent) {
  const auto data = make_gaussian_classes(14, 400, 4, 2);
  stats::Rng rng(5);
  const DecisionTree tree = tree_train(data, 2, 5, rng);
  // A tree must fit its own training data far better than chance.
  std::size_t hits = 0;
  for (const auto& p : data) {
    if (tree.predict(p.features) == p.label) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / data.size(), 0.8);
}

TEST(Forest, RejectsEmptyData) {
  EXPECT_THROW(forest_train({}, 2, 3, 4, 1), std::invalid_argument);
}

// --- Spark app specs sanity

TEST(SparkApps, HaveStagesAndNames) {
  for (const auto& app :
       {bayes_app(), svm_app(), random_forest_app()}) {
    EXPECT_FALSE(app.name.empty());
    EXPECT_FALSE(app.stages.empty());
    EXPECT_GE(app.iterations, 1u);
  }
}

TEST(SparkApps, IterativeAppsBroadcastEachEpoch) {
  const auto app = svm_app();
  EXPECT_GT(app.iterations, 1u);
  EXPECT_GT(app.stages[0].broadcast_bytes, 0.0);
}

}  // namespace
}  // namespace ipso::wl
