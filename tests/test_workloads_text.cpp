#include "workloads/textgen.h"
#include "workloads/wordcount.h"

#include <gtest/gtest.h>

#include <set>

namespace ipso::wl {
namespace {

TEST(Dictionary, HasExactlyThousandDistinctWords) {
  const Dictionary dict;
  ASSERT_EQ(dict.size(), 1000u);
  std::set<std::string> unique(dict.words().begin(), dict.words().end());
  EXPECT_EQ(unique.size(), 1000u);
}

TEST(Dictionary, IsDeterministic) {
  const Dictionary a, b;
  EXPECT_EQ(a.words(), b.words());
}

TEST(Dictionary, WordLengthsInRange) {
  const Dictionary dict;
  for (const auto& w : dict.words()) {
    EXPECT_GE(w.size(), 3u);
    EXPECT_LE(w.size(), 12u);
  }
}

TEST(Zipf, SamplesWithinRange) {
  ZipfSampler zipf(100);
  stats::Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.sample(rng), 100u);
}

TEST(Zipf, LowRanksDominate) {
  ZipfSampler zipf(1000);
  stats::Rng rng(2);
  std::size_t top10 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (zipf.sample(rng) < 10) ++top10;
  }
  // Zipf(1) over 1000 ranks: P(rank < 10) ~ H(10)/H(1000) ~ 0.39.
  EXPECT_GT(top10, n * 3 / 10);
  EXPECT_LT(top10, n / 2);
}

TEST(TextGen, ProducesRequestedVolume) {
  const Dictionary dict;
  const std::string text = generate_text(dict, 1, 10000);
  EXPECT_GE(text.size(), 10000u);
  EXPECT_LT(text.size(), 10020u);  // overshoot bounded by one word
}

TEST(TextGen, DeterministicPerSeed) {
  const Dictionary dict;
  EXPECT_EQ(generate_text(dict, 5, 1000), generate_text(dict, 5, 1000));
  EXPECT_NE(generate_text(dict, 5, 1000), generate_text(dict, 6, 1000));
}

TEST(TextGen, AllTokensAreDictionaryWords) {
  const Dictionary dict;
  const std::set<std::string> vocab(dict.words().begin(), dict.words().end());
  for (const auto& tok : tokenize(generate_text(dict, 7, 5000))) {
    EXPECT_TRUE(vocab.count(tok)) << tok;
  }
}

TEST(Tokenize, HandlesEdgeCases) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("   ").empty());
  const auto toks = tokenize("  a bb  ccc ");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "a");
  EXPECT_EQ(toks[2], "ccc");
}

TEST(WordCount, CountsKnownText) {
  const auto h = wordcount_map("apple bee apple cat bee apple");
  EXPECT_EQ(h.at("apple"), 3u);
  EXPECT_EQ(h.at("bee"), 2u);
  EXPECT_EQ(h.at("cat"), 1u);
  EXPECT_EQ(h.size(), 3u);
}

TEST(WordCount, MergePreservesTotals) {
  WordHistogram a = wordcount_map("x y x");
  const WordHistogram b = wordcount_map("y z");
  wordcount_merge(a, b);
  EXPECT_EQ(a.at("x"), 2u);
  EXPECT_EQ(a.at("y"), 2u);
  EXPECT_EQ(a.at("z"), 1u);
}

TEST(WordCount, ShardedRunMatchesSingleRun) {
  const Dictionary dict;
  // Same seeds generate the same shards, so 4 shards merged must equal the
  // concatenated count.
  const auto merged = wordcount_run(dict, 11, 4, 2000);
  WordHistogram whole;
  for (std::uint64_t s = 0; s < 4; ++s) {
    wordcount_merge(whole, wordcount_map(generate_text(dict, 11 + s, 2000)));
  }
  EXPECT_EQ(merged, whole);
}

TEST(WordCount, TotalMatchesTokenCount) {
  const Dictionary dict;
  const std::string text = generate_text(dict, 3, 4000);
  EXPECT_EQ(wordcount_total(wordcount_map(text)), tokenize(text).size());
}

TEST(WordCount, HistogramBytesArePositiveAndBounded) {
  const Dictionary dict;
  const auto h = wordcount_map(generate_text(dict, 9, 1 << 18));
  const double bytes = wordcount_histogram_bytes(h);
  EXPECT_GT(bytes, 1000.0);
  EXPECT_LT(bytes, 64e3);  // ~1000 entries, tens of bytes each
}

TEST(WordCountSpec, IntermediateIsShardSizeIndependent) {
  const auto spec = wordcount_spec();
  EXPECT_DOUBLE_EQ(spec.intermediate_bytes(64e6),
                   spec.intermediate_bytes(256e6));
  EXPECT_GT(spec.fixed_intermediate_bytes, 0.0);
  EXPECT_FALSE(spec.spill_enabled);
}

}  // namespace
}  // namespace ipso::wl
