#include "core/fit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace ipso {
namespace {

stats::Series sweep(const char* name, std::initializer_list<double> ns,
                    double (*f)(double)) {
  stats::Series s(name);
  for (double n : ns) s.add(n, f(n));
  return s;
}

const std::initializer_list<double> kSmallNs{1, 2, 4, 8, 12, 16};

TEST(EpsilonSeries, PointwiseRatio) {
  const auto ex = sweep("EX", kSmallNs, +[](double n) { return n; });
  const auto in = sweep("IN", kSmallNs, +[](double n) { return n / 2.0; });
  const auto eps = epsilon_series(ex, in);
  ASSERT_TRUE(eps.has_value());
  for (const auto& p : *eps) EXPECT_DOUBLE_EQ(p.y, 2.0);
}

TEST(EpsilonSeries, RejectsMismatchedLengths) {
  const auto ex = sweep("EX", {1, 2, 4}, +[](double n) { return n; });
  const auto in = sweep("IN", {1, 2}, +[](double n) { return n; });
  const auto eps = epsilon_series(ex, in);
  ASSERT_FALSE(eps.has_value());
  EXPECT_EQ(eps.error(), FitError::kLengthMismatch);
}

TEST(EpsilonSeries, RejectsMisalignedX) {
  const auto ex = sweep("EX", {1, 2, 4}, +[](double n) { return n; });
  const auto in = sweep("IN", {1, 2, 5}, +[](double n) { return n; });
  const auto eps = epsilon_series(ex, in);
  ASSERT_FALSE(eps.has_value());
  EXPECT_EQ(eps.error(), FitError::kMisalignedSeries);
}

TEST(EpsilonSeries, RejectsNonPositiveIN) {
  const auto ex = sweep("EX", {1, 2}, +[](double n) { return n; });
  auto in = stats::Series("IN");
  in.add(1, 1.0);
  in.add(2, 0.0);
  const auto eps = epsilon_series(ex, in);
  ASSERT_FALSE(eps.has_value());
  EXPECT_EQ(eps.error(), FitError::kNonPositiveValue);
}

TEST(Expected, ValueAccessOnErrorThrows) {
  const Expected<stats::Series> bad = FitError::kInsufficientData;
  EXPECT_THROW(static_cast<void>(bad.value()), std::runtime_error);
  EXPECT_FALSE(static_cast<bool>(bad));
  const Expected<stats::Series> good = stats::Series("ok");
  EXPECT_NO_THROW(static_cast<void>(good.value()));
  EXPECT_THROW(static_cast<void>(good.error()), std::logic_error);
}

TEST(QSeries, ComputesFromWorkloads) {
  // Wo(n) = Wp(n)/n * q(n) => q(n) = Wo*n/Wp. With Wp = 100 (fixed-size)
  // and Wo = 0.6 n, q(n) = 0.006 n^2.
  stats::Series wo("Wo"), wp("Wp");
  for (double n : {10.0, 30.0, 60.0, 90.0}) {
    wo.add(n, 0.6 * n);
    wp.add(n, 100.0);
  }
  const auto q = q_series_from_workloads(wo, wp);
  ASSERT_TRUE(q.has_value());
  for (const auto& p : *q) EXPECT_NEAR(p.y, 0.006 * p.x * p.x, 1e-12);
}

TEST(FitFactors, RecoversSortLikeInProportionScaling) {
  // The paper's Sort: EX(n) = n, IN(n) = 0.36 n - 0.11 => delta ~ 0 at
  // large n but the log-log fit over n in [1,16] sees epsilon ~ alpha n^d
  // with a small d; classification tolerance handles the rest.
  FactorMeasurements m;
  m.eta = 0.7;
  for (double n : {1.0, 2.0, 4.0, 8.0, 12.0, 16.0}) {
    m.ex.add(n, n);
    m.in.add(n, n == 1.0 ? 1.0 : 0.36 * n - 0.11);
  }
  const FactorFits fits = fit_factors(WorkloadType::kFixedTime, m).value();
  EXPECT_DOUBLE_EQ(fits.params.eta, 0.7);
  // epsilon(n) = n/(0.36n - 0.11) tends to 1/0.36 = 2.78: nearly flat.
  EXPECT_LT(fits.params.delta, 0.4);
  EXPECT_GT(fits.params.alpha, 1.0);
  ASSERT_TRUE(fits.in_linear.has_value());
  EXPECT_NEAR(fits.in_linear->slope, 0.36, 0.05);
  EXPECT_FALSE(fits.q_fit.has_value());
  EXPECT_EQ(fits.q_fit.error(), FitError::kNotMeasured);
  EXPECT_DOUBLE_EQ(fits.params.gamma, 0.0);
}

TEST(FitFactors, RecoversPowerLawOverhead) {
  FactorMeasurements m;
  m.eta = 1.0;
  for (double n : {1.0, 10.0, 30.0, 60.0, 90.0}) {
    m.ex.add(n, 1.0);
    m.q.add(n, n == 1.0 ? 0.0 : 3.74e-4 * n * n);
  }
  const FactorFits fits = fit_factors(WorkloadType::kFixedSize, m).value();
  ASSERT_TRUE(fits.q_fit.has_value());
  EXPECT_NEAR(fits.params.gamma, 2.0, 1e-6);
  EXPECT_NEAR(fits.params.beta, 3.74e-4, 1e-7);
  EXPECT_DOUBLE_EQ(fits.params.delta, 0.0);
}

TEST(FitFactors, RejectsMismatchedExIn) {
  FactorMeasurements m;
  m.eta = 0.7;
  for (double n : {1.0, 2.0, 4.0}) m.ex.add(n, n);
  m.in.add(1.0, 1.0);
  m.in.add(2.0, 1.2);
  const auto fits = fit_factors(WorkloadType::kFixedTime, m);
  ASSERT_FALSE(fits.has_value());
  EXPECT_EQ(fits.error(), FitError::kLengthMismatch);
}

TEST(FitFactors, EtaOneSkipsEpsilon) {
  FactorMeasurements m;
  m.eta = 1.0;
  for (double n : {1.0, 2.0, 4.0}) m.ex.add(n, n);
  const FactorFits fits = fit_factors(WorkloadType::kFixedTime, m).value();
  EXPECT_DOUBLE_EQ(fits.params.alpha, 1.0);
  EXPECT_DOUBLE_EQ(fits.params.delta, 1.0);
  // IN(n) is undefined without a serial component, and the error says so.
  EXPECT_FALSE(fits.in_segmented.has_value());
  EXPECT_EQ(fits.in_segmented.error(), FitError::kNoSerialComponent);
}

TEST(FitFactors, FixedSizeForcesDeltaZero) {
  FactorMeasurements m;
  m.eta = 0.8;
  for (double n : {1.0, 2.0, 4.0, 8.0}) {
    m.ex.add(n, 1.0);
    m.in.add(n, 1.0);
  }
  const FactorFits fits = fit_factors(WorkloadType::kFixedSize, m).value();
  EXPECT_DOUBLE_EQ(fits.params.delta, 0.0);
}

TEST(FitFactors, NegligibleQIsTreatedAsZero) {
  FactorMeasurements m;
  m.eta = 0.9;
  for (double n : {1.0, 2.0, 4.0, 8.0}) {
    m.ex.add(n, n);
    m.in.add(n, 1.0);
    m.q.add(n, 1e-9 * n);  // measurement noise, not real overhead
  }
  const FactorFits fits = fit_factors(WorkloadType::kFixedTime, m).value();
  EXPECT_FALSE(fits.q_fit.has_value());
  // q(n) was measured — the error distinguishes "negligible" from "absent".
  EXPECT_EQ(fits.q_fit.error(), FitError::kNegligibleOverhead);
  EXPECT_DOUBLE_EQ(fits.params.beta, 0.0);
}

TEST(FitFactors, ClampsDeltaIntoPaperDomain) {
  // A step-wise IN(n) makes the raw epsilon-tail exponent negative; the
  // fit must clamp delta to [0, 1] and refit alpha as the tail level so
  // the classified bound stays meaningful.
  FactorMeasurements m;
  m.eta = 1.0 / 3.0;
  for (double n = 1; n <= 24; ++n) {
    m.ex.add(n, n);
    m.in.add(n, n <= 15 ? 0.15 * n + 0.85 : 0.25 * n + 0.85);
  }
  const FactorFits fits = fit_factors(WorkloadType::kFixedTime, m).value();
  EXPECT_GE(fits.params.delta, 0.0);
  EXPECT_LE(fits.params.delta, 1.0);
  // alpha ~ the epsilon level of the tail: n / (0.25 n + 0.85) ~ 3.6-3.8.
  EXPECT_GT(fits.params.alpha, 3.0);
  EXPECT_LT(fits.params.alpha, 4.5);
}

TEST(DetectChangepoint, FindsTeraSortStep) {
  stats::Series in("IN terasort");
  for (int n = 1; n <= 40; ++n) {
    // Paper Fig. 5: slope 0.15 before overflow at ~15, then 0.23n + 2.72.
    in.add(n, n <= 15 ? 0.15 * n + 0.85 : 0.23 * n + 2.72);
  }
  const auto seg = detect_in_changepoint(in);
  ASSERT_TRUE(seg.has_value());
  EXPECT_NEAR(seg->knot, 15.0, 2.0);
  EXPECT_NEAR(seg->left.slope, 0.15, 0.02);
  EXPECT_NEAR(seg->right.slope, 0.23, 0.02);
}

TEST(DetectChangepoint, NoFalsePositiveOnStraightLine) {
  stats::Series in("IN linear");
  for (int n = 1; n <= 40; ++n) in.add(n, 0.36 * n - 0.11);
  const auto seg = detect_in_changepoint(in);
  ASSERT_FALSE(seg.has_value());
  EXPECT_EQ(seg.error(), FitError::kNoChangepoint);
}

TEST(DetectChangepoint, TooFewPointsIsInsufficientData) {
  stats::Series in("short");
  for (int n = 1; n <= 4; ++n) in.add(n, n);
  const auto seg = detect_in_changepoint(in);
  ASSERT_FALSE(seg.has_value());
  EXPECT_EQ(seg.error(), FitError::kInsufficientData);
}

TEST(FitTailGrowth, LinearCurveExponentNearOne) {
  stats::Series s("S");
  for (int n = 1; n <= 64; n *= 2) s.add(n, 0.9 * n + 0.1);
  const auto f = fit_tail_growth(s);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(f->exponent, 1.0, 0.05);
}

TEST(FitTailGrowth, SaturatedCurveExponentNearZero) {
  stats::Series s("S");
  for (int n = 1; n <= 256; n *= 2) s.add(n, 5.0 - 4.0 / n);
  const auto f = fit_tail_growth(s);
  ASSERT_TRUE(f.has_value());
  EXPECT_LT(f->exponent, 0.1);
}

TEST(FitTailGrowth, TinySeriesIsInsufficientData) {
  stats::Series s("S");
  s.add(1, 1);
  s.add(2, 2);
  const auto f = fit_tail_growth(s);
  ASSERT_FALSE(f.has_value());
  EXPECT_EQ(f.error(), FitError::kInsufficientData);
}

}  // namespace
}  // namespace ipso
