#include "core/sensitivity.h"

#include "core/model.h"

#include <gtest/gtest.h>

namespace ipso {
namespace {

AsymptoticParams cf_like() {
  AsymptoticParams p;
  p.type = WorkloadType::kFixedSize;
  p.eta = 1.0;
  p.beta = 3.74e-4;
  p.gamma = 2.0;
  return p;
}

AsymptoticParams sort_like() {
  AsymptoticParams p;
  p.type = WorkloadType::kFixedTime;
  p.eta = 0.59;
  p.alpha = 2.78;
  p.delta = 0.0;
  return p;
}

TEST(Sensitivities, SignsMatchIntuition) {
  const auto s = sensitivities(sort_like(), 64.0);
  EXPECT_GT(s.d_eta, 0.0);    // more parallel fraction helps
  EXPECT_GT(s.d_alpha, 0.0);  // smaller merge relative to map helps
  EXPECT_GT(s.d_delta, 0.0);  // faster external-over-internal scaling helps
}

TEST(Sensitivities, OverheadDerivativesAreNegative) {
  const auto s = sensitivities(cf_like(), 60.0);
  EXPECT_LT(s.d_beta, 0.0);
  EXPECT_LT(s.d_gamma, 0.0);
}

TEST(Sensitivities, MatchesFiniteDifferenceOfModel) {
  const auto p = sort_like();
  const double n = 32.0;
  const auto s = sensitivities(p, n);
  // Independent two-point check on eta.
  AsymptoticParams hi = p, lo = p;
  hi.eta += 1e-6;
  lo.eta -= 1e-6;
  const double manual =
      (speedup_asymptotic(hi, n) - speedup_asymptotic(lo, n)) / 2e-6;
  EXPECT_NEAR(s.d_eta, manual, 1e-3 * std::abs(manual));
}

TEST(Sensitivities, RejectsBadN) {
  EXPECT_THROW(sensitivities(sort_like(), 0.5), std::invalid_argument);
}

TEST(Gains, PathologicalWorkloadGainsMostFromGamma) {
  const auto g = improvement_gains(cf_like(), 90.0);
  EXPECT_GT(g.gamma, g.eta);
  EXPECT_GT(g.gamma, 0.0);
  EXPECT_GT(g.beta, 0.0);
}

TEST(Gains, GustafsonWorkloadGainsFromNothingMuch) {
  AsymptoticParams p;  // clean It with eta = 1
  p.eta = 1.0;
  const auto g = improvement_gains(p, 64.0);
  // eta is already 1 and there is no overhead: every knob is near-zero.
  EXPECT_NEAR(g.eta, 0.0, 1e-9);
  EXPECT_NEAR(g.beta, 0.0, 1e-9);
}

TEST(Gains, ValidatesImprovement) {
  EXPECT_THROW(improvement_gains(sort_like(), 8.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(improvement_gains(sort_like(), 8.0, 1.0),
               std::invalid_argument);
}

TEST(Advice, NamesGammaForPathology) {
  const std::string advice = improvement_advice(cf_like(), 90.0);
  EXPECT_NE(advice.find("gamma"), std::string::npos);
}

TEST(Advice, NamesEtaForAmdahlLike) {
  AsymptoticParams p;
  p.type = WorkloadType::kFixedSize;
  p.eta = 0.7;
  p.delta = 0.0;
  const std::string advice = improvement_advice(p, 64.0);
  EXPECT_NE(advice.find("eta"), std::string::npos);
}

}  // namespace
}  // namespace ipso
