#include "core/tradeoff.h"

#include "core/model.h"

#include <gtest/gtest.h>

#include <vector>

namespace ipso {
namespace {

const std::vector<double> kKs{1, 2, 4, 8, 16, 32, 64, 128};

TEST(ScaleUp, IsIdentity) {
  EXPECT_DOUBLE_EQ(scale_up_speedup(1.0), 1.0);
  EXPECT_DOUBLE_EQ(scale_up_speedup(37.0), 37.0);
}

TEST(Compare, GustafsonLikeTiesWithScaleUp) {
  // Perfectly parallel fixed-time workload: scale-out == scale-up.
  ScalingFactors f{identity_factor(), constant_factor(1.0),
                   constant_factor(0.0)};
  const auto rows = compare_scaling(f, 1.0, kKs);
  for (const auto& r : rows) {
    EXPECT_NEAR(r.advantage_out, 0.0, 1e-12);
  }
}

TEST(Compare, BoundedWorkloadLosesToScaleUp) {
  // Sort-like IIIt,1: scale-out is capped at ~5; scale-up is not.
  ScalingFactors f{identity_factor(), linear_factor(0.36, 0.64),
                   constant_factor(0.0)};
  const auto rows = compare_scaling(f, 0.59, kKs);
  EXPECT_LT(rows.back().scale_out, 5.5);
  EXPECT_DOUBLE_EQ(rows.back().scale_up, 128.0);
  EXPECT_LT(rows.back().advantage_out, -100.0);
  // At k = 1 they tie.
  EXPECT_NEAR(rows.front().advantage_out, 0.0, 1e-12);
}

TEST(Compare, PathologicalWorkloadLosesCatastrophically) {
  ScalingFactors f{constant_factor(1.0), constant_factor(1.0),
                   make_q(3.74e-4, 2.0)};
  const auto rows = compare_scaling(f, 1.0, kKs);
  // Scale-out is even below 1 x speedup for very large k... at k = 128 the
  // CF curve is well past its ~52-node peak and falling.
  EXPECT_LT(rows.back().scale_out, 25.0);
  EXPECT_LT(rows.back().advantage_out, -100.0);
}

TEST(CompetitiveLimit, UnboundedForPerfectScaling) {
  ScalingFactors f{identity_factor(), constant_factor(1.0),
                   constant_factor(0.0)};
  EXPECT_DOUBLE_EQ(scale_out_competitive_limit(f, 1.0, 0.9, 1024.0), 1024.0);
}

TEST(CompetitiveLimit, FiniteForBoundedTypes) {
  ScalingFactors f{identity_factor(), linear_factor(0.36, 0.64),
                   constant_factor(0.0)};
  const double limit = scale_out_competitive_limit(f, 0.59, 0.5, 4096.0);
  EXPECT_GT(limit, 1.0);
  EXPECT_LT(limit, 64.0);
  // At the limit, S(k) ~ 0.5 k by construction.
  EXPECT_NEAR(speedup_deterministic(f, 0.59, limit), 0.5 * limit,
              0.01 * limit);
}

TEST(CompetitiveLimit, TinyWhenSerialFractionDominates) {
  // Amdahl with a 50% serial fraction: S(2) = 1.33 < 0.9*2, so the
  // competitive region barely extends past a single unit.
  ScalingFactors f{constant_factor(1.0), constant_factor(1.0),
                   constant_factor(0.0)};
  const double limit = scale_out_competitive_limit(f, 0.5, 0.9, 1024.0);
  EXPECT_LT(limit, 1.5);
  // Just past the limit, scale-out is no longer competitive.
  EXPECT_LT(speedup_deterministic(f, 0.5, limit + 0.01),
            0.9 * (limit + 0.01));
}

TEST(CompetitiveLimit, ValidatesArguments) {
  ScalingFactors f{identity_factor(), constant_factor(1.0),
                   constant_factor(0.0)};
  EXPECT_THROW(scale_out_competitive_limit(f, 1.0, 0.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(scale_out_competitive_limit(f, 1.0, 0.5, 0.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace ipso
