#include "store/disk_tier.h"
#include "store/fit_cache.h"
#include "store/fit_codec.h"
#include "store/segment.h"
#include "store/sketch.h"
#include "store/tiered_store.h"

#include "serve/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace ipso::store {
namespace {

namespace fs = std::filesystem;

/// Unique per-test scratch directory, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "ipso_store_XXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void dump(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<fs::path> segment_files(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".seg") out.push_back(e.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Deterministic synthetic fits exercising awkward doubles (negative zero,
/// denormals, infinities) so bit-exactness is actually tested.
FactorFits make_fits(int seed) {
  FactorFits f;
  f.params.type = static_cast<WorkloadType>(seed % 3);
  f.params.eta = 0.5 + seed * 1e-3;
  f.params.alpha = seed == 0 ? -0.0 : 1.25 * seed;
  f.params.delta = std::numeric_limits<double>::denorm_min() * seed;
  f.params.beta = seed * 0.015625;  // exact in binary
  f.params.gamma = -seed * 0.33;
  f.epsilon_fit = {1.0 + seed, -0.5, 0.999, 1e-3 * seed};
  if (seed % 2 == 0) {
    f.q_fit = stats::PowerFit{0.01 * seed, 1.5, 0.9, 0.1};
  } else {
    f.q_fit = FitError::kNegligibleOverhead;
  }
  if (seed % 3 == 0) {
    f.in_linear = stats::LinearFit{1.05, 0.4, 0.98, 0.01, 0.02};
  } else {
    f.in_linear = FitError::kNotMeasured;
  }
  if (seed % 5 == 0) {
    f.in_segmented = stats::SegmentedFit{{1.0, 0.0, 1.0, 0.0, 0.0},
                                         {2.0, -8.0, 1.0, 0.0, 0.0},
                                         8.0,
                                         0.125};
    f.in_has_changepoint = true;
  } else {
    f.in_segmented = FitError::kNoChangepoint;
  }
  return f;
}

std::string key_of(int seed) {
  return "key-" + std::to_string(seed) + "-" + std::string(seed % 7, 'x');
}

// ---------------------------------------------------------------------------
// Segment format
// ---------------------------------------------------------------------------

TEST(Segment, RoundTripsRecordsInOrder) {
  std::string img = segment_header();
  for (int i = 0; i < 10; ++i) {
    img += encode_record(key_of(i), "value-" + std::to_string(i));
  }
  std::vector<std::string> keys;
  const ScanStats st = scan_segment(img, [&](const ScannedRecord& r) {
    keys.emplace_back(r.key);
    EXPECT_EQ(r.value, "value-" + std::to_string(keys.size() - 1));
  });
  EXPECT_EQ(st.recovered, 10u);
  EXPECT_EQ(st.skipped_total(), 0u);
  ASSERT_EQ(keys.size(), 10u);
  EXPECT_EQ(keys.front(), key_of(0));
  EXPECT_EQ(keys.back(), key_of(9));
}

TEST(Segment, ScannedOffsetsSupportPointDecode) {
  std::string img = segment_header();
  img += encode_record("a", "alpha");
  img += encode_record("b", "beta");
  std::vector<ScannedRecord> recs;
  scan_segment(img, [&](const ScannedRecord& r) { recs.push_back(r); });
  ASSERT_EQ(recs.size(), 2u);
  for (const auto& r : recs) {
    std::string_view key;
    std::string_view value;
    ASSERT_TRUE(decode_record_at(
        std::string_view(img).substr(r.offset, r.length), &key, &value));
  }
  // decode_record_at must reject trailing bytes (exact-length contract).
  std::string_view key;
  std::string_view value;
  EXPECT_FALSE(decode_record_at(
      std::string_view(img).substr(recs[0].offset, recs[0].length + 1), &key,
      &value));
}

TEST(Segment, TruncatedTailStopsScanWithCounter) {
  std::string img = segment_header();
  img += encode_record("a", "alpha");
  const std::string partial = encode_record("b", "beta");
  img += partial.substr(0, partial.size() / 2);  // crash mid-append
  const ScanStats st = scan_segment(img, [](const ScannedRecord&) {});
  EXPECT_EQ(st.recovered, 1u);
  EXPECT_EQ(st.truncated, 1u);
  EXPECT_EQ(st.skipped_checksum, 0u);
}

TEST(Segment, FlippedValueBitSkipsOneRecordAndContinues) {
  std::string img = segment_header();
  img += encode_record("a", "alpha");
  const std::size_t corrupt_at = img.size() + kRecordHeaderBytes + 1;
  img += encode_record("b", "beta");
  img += encode_record("c", "gamma");
  img[corrupt_at] = static_cast<char>(img[corrupt_at] ^ 0x40);
  std::vector<std::string> keys;
  const ScanStats st = scan_segment(
      img, [&](const ScannedRecord& r) { keys.emplace_back(r.key); });
  EXPECT_EQ(st.recovered, 2u);
  EXPECT_EQ(st.skipped_checksum, 1u);
  EXPECT_EQ(st.truncated, 0u);
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "c"}));
}

TEST(Segment, VersionMismatchSkipsWithDedicatedCounter) {
  std::string img = segment_header();
  img += encode_record("old", "bytes", kSegmentFormatVersion + 1);
  img += encode_record("new", "bytes");
  std::vector<std::string> keys;
  const ScanStats st = scan_segment(
      img, [&](const ScannedRecord& r) { keys.emplace_back(r.key); });
  EXPECT_EQ(st.recovered, 1u);
  EXPECT_EQ(st.skipped_version, 1u);
  EXPECT_EQ(st.skipped_checksum, 0u);
  EXPECT_EQ(keys, (std::vector<std::string>{"new"}));
}

TEST(Segment, BadHeaderCountsBadSegment) {
  std::string img = "NOTASEGM";
  img += encode_record("a", "alpha");
  const ScanStats st = scan_segment(img, [](const ScannedRecord&) {
    FAIL() << "no record should be delivered from a bad segment";
  });
  EXPECT_EQ(st.bad_segment, 1u);
  EXPECT_EQ(st.recovered, 0u);
}

// ---------------------------------------------------------------------------
// Fit codec
// ---------------------------------------------------------------------------

TEST(FitCodec, RoundTripIsBitExact) {
  for (int seed = 0; seed < 32; ++seed) {
    const FactorFits fits = make_fits(seed);
    const std::string bytes = encode_factor_fits(fits);
    const auto back = decode_factor_fits(bytes);
    ASSERT_TRUE(back.has_value()) << "seed " << seed;
    // Bit-exactness via the codec itself: identical bits => identical
    // encoding. (operator== on doubles would miss -0.0 vs 0.0 and NaN.)
    EXPECT_EQ(encode_factor_fits(*back), bytes) << "seed " << seed;
  }
}

TEST(FitCodec, RejectsWrongVersionTruncationAndTrailingBytes) {
  const std::string bytes = encode_factor_fits(make_fits(4));
  std::string wrong_version = bytes;
  wrong_version[0] = static_cast<char>(kFitCodecVersion + 1);
  EXPECT_FALSE(decode_factor_fits(wrong_version).has_value());
  EXPECT_FALSE(
      decode_factor_fits(std::string_view(bytes).substr(0, bytes.size() - 1))
          .has_value());
  EXPECT_FALSE(decode_factor_fits(bytes + "x").has_value());
  EXPECT_FALSE(decode_factor_fits("").has_value());
}

TEST(FitCodec, RejectsOutOfRangeEnums) {
  std::string bytes = encode_factor_fits(make_fits(1));
  bytes[1] = 17;  // workload type byte
  EXPECT_FALSE(decode_factor_fits(bytes).has_value());
}

// ---------------------------------------------------------------------------
// Frequency sketch
// ---------------------------------------------------------------------------

TEST(FrequencySketch, HotKeysEstimateAboveColdKeys) {
  FrequencySketch sketch(64);
  for (int i = 0; i < 6; ++i) sketch.record("hot");
  sketch.record("lukewarm");
  EXPECT_GE(sketch.estimate("hot"), 6u);
  EXPECT_GT(sketch.estimate("hot"), sketch.estimate("never-seen"));
  EXPECT_GT(sketch.estimate("hot"), sketch.estimate("lukewarm"));
}

TEST(FrequencySketch, AgingDecaysStalePopularity) {
  FrequencySketch sketch(8);  // window = 64 additions
  for (int i = 0; i < 20; ++i) sketch.record("stale");
  const std::uint32_t peak = sketch.estimate("stale");
  for (int i = 0; i < 500; ++i) sketch.record("filler-" + std::to_string(i));
  EXPECT_LT(sketch.estimate("stale"), peak);
}

TEST(FrequencySketch, SaturatesInsteadOfWrapping) {
  FrequencySketch sketch(1024);  // window large enough to avoid aging here
  for (int i = 0; i < 300; ++i) sketch.record("pegged");
  EXPECT_LE(sketch.estimate("pegged"), 255u);
  EXPECT_GT(sketch.estimate("pegged"), 200u);
}

// ---------------------------------------------------------------------------
// Disk tier
// ---------------------------------------------------------------------------

TEST(DiskTier, PutGetRoundTripAndDedup) {
  TempDir dir;
  DiskTier tier(DiskTierConfig{dir.str()});
  ASSERT_TRUE(tier.open());
  ASSERT_TRUE(tier.put("k1", "v1"));
  ASSERT_TRUE(tier.put("k2", "v2"));
  ASSERT_TRUE(tier.put("k1", "v1"));  // dedup
  EXPECT_EQ(tier.stats().appended, 2u);
  EXPECT_EQ(tier.stats().duplicates, 1u);
  const auto v1 = tier.get("k1");
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(*v1, "v1");
  EXPECT_FALSE(tier.get("absent").has_value());
}

TEST(DiskTier, SurvivesReopenWithRecoveryCounters) {
  TempDir dir;
  {
    DiskTier tier(DiskTierConfig{dir.str()});
    ASSERT_TRUE(tier.open());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(tier.put(key_of(i), "value-" + std::to_string(i)));
    }
    ASSERT_TRUE(tier.flush());
  }
  DiskTier reopened(DiskTierConfig{dir.str()});
  ASSERT_TRUE(reopened.open());
  EXPECT_EQ(reopened.stats().recovered, 20u);
  EXPECT_EQ(reopened.stats().skipped_total(), 0u);
  for (int i = 0; i < 20; ++i) {
    const auto v = reopened.get(key_of(i));
    ASSERT_TRUE(v.has_value()) << key_of(i);
    EXPECT_EQ(*v, "value-" + std::to_string(i));
  }
}

TEST(DiskTier, RotatesSegmentsPastSizeLimit) {
  TempDir dir;
  DiskTier tier(DiskTierConfig{dir.str(), /*max_segment_bytes=*/256});
  ASSERT_TRUE(tier.open());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(tier.put(key_of(i), std::string(40, 'v')));
  }
  EXPECT_GT(tier.stats().segments, 1u);
  EXPECT_GT(segment_files(dir.path).size(), 1u);
  // Every record stays reachable across the rotation boundary.
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(tier.get(key_of(i)).has_value()) << key_of(i);
  }
  // And across a reopen of the multi-segment directory.
  DiskTier reopened(DiskTierConfig{dir.str(), 256});
  ASSERT_TRUE(reopened.open());
  EXPECT_EQ(reopened.stats().recovered, 30u);
}

TEST(DiskTier, TruncatedTailIsSkippedAndSealedOnReopen) {
  TempDir dir;
  {
    DiskTier tier(DiskTierConfig{dir.str()});
    ASSERT_TRUE(tier.open());
    ASSERT_TRUE(tier.put("intact", "value"));
    ASSERT_TRUE(tier.flush());
  }
  // Simulate a crash mid-append: a partial record at the tail.
  const auto segs = segment_files(dir.path);
  ASSERT_EQ(segs.size(), 1u);
  const std::string partial = encode_record("lost", "to-the-crash");
  dump(segs[0], slurp(segs[0]) + partial.substr(0, partial.size() - 7));

  DiskTier reopened(DiskTierConfig{dir.str()});
  ASSERT_TRUE(reopened.open());  // never an error, always a counter
  EXPECT_EQ(reopened.stats().recovered, 1u);
  EXPECT_EQ(reopened.stats().truncated, 1u);
  EXPECT_TRUE(reopened.get("intact").has_value());
  EXPECT_FALSE(reopened.get("lost").has_value());
  // The dirty segment is sealed; appends land in a fresh one so the new
  // records are never shadowed by the unreachable tail.
  EXPECT_EQ(reopened.stats().segments, 2u);
  ASSERT_TRUE(reopened.put("after-crash", "ok"));
  ASSERT_TRUE(reopened.flush());
  DiskTier third(DiskTierConfig{dir.str()});
  ASSERT_TRUE(third.open());
  EXPECT_TRUE(third.get("after-crash").has_value());
  EXPECT_TRUE(third.get("intact").has_value());
}

TEST(DiskTier, FlippedBitIsCountedNeverACrash) {
  TempDir dir;
  {
    DiskTier tier(DiskTierConfig{dir.str()});
    ASSERT_TRUE(tier.open());
    ASSERT_TRUE(tier.put("a", "alpha"));
    ASSERT_TRUE(tier.put("b", "beta"));
    ASSERT_TRUE(tier.put("c", "gamma"));
    ASSERT_TRUE(tier.flush());
  }
  const auto segs = segment_files(dir.path);
  ASSERT_EQ(segs.size(), 1u);
  std::string img = slurp(segs[0]);
  // Corrupt one payload byte of the middle record ("b" -> value "beta").
  const std::size_t rec1 = kSegmentHeaderBytes + kRecordHeaderBytes + 1 + 5;
  const std::size_t corrupt_at = rec1 + kRecordHeaderBytes + 1 + 2;
  img[corrupt_at] = static_cast<char>(img[corrupt_at] ^ 0x01);
  dump(segs[0], img);

  DiskTier reopened(DiskTierConfig{dir.str()});
  ASSERT_TRUE(reopened.open());
  EXPECT_EQ(reopened.stats().skipped_checksum, 1u);
  EXPECT_EQ(reopened.stats().recovered, 2u);
  EXPECT_TRUE(reopened.get("a").has_value());
  EXPECT_FALSE(reopened.get("b").has_value());
  EXPECT_TRUE(reopened.get("c").has_value());
}

TEST(DiskTier, ListedButMissingSegmentIsACrashArtifactNotAnError) {
  TempDir dir;
  {
    DiskTier tier(DiskTierConfig{dir.str()});
    ASSERT_TRUE(tier.open());
    ASSERT_TRUE(tier.put("k", "v"));
    ASSERT_TRUE(tier.flush());
  }
  // Manifest-then-file ordering means a crash can leave the *next* segment
  // listed but absent; emulate by listing a phantom segment.
  const fs::path manifest = dir.path / "MANIFEST";
  dump(manifest, slurp(manifest) + "segment seg-000099.seg\n");
  DiskTier reopened(DiskTierConfig{dir.str()});
  ASSERT_TRUE(reopened.open());
  EXPECT_EQ(reopened.stats().recovered, 1u);
  EXPECT_TRUE(reopened.get("k").has_value());
  ASSERT_TRUE(reopened.put("k2", "v2"));
  EXPECT_TRUE(reopened.get("k2").has_value());
}

// ---------------------------------------------------------------------------
// Tiered store
// ---------------------------------------------------------------------------

FitOutcome outcome_for(int seed) { return FitOutcome{make_fits(seed)}; }

TEST(TieredStore, DramOnlyModeNeverTouchesDisk) {
  TieredStoreConfig cfg;
  cfg.cache_capacity = 2;
  TieredStore tiered(cfg);
  ASSERT_TRUE(tiered.open());
  int computes = 0;
  auto r1 = tiered.get_or_compute("k", [&] {
    ++computes;
    return outcome_for(1);
  });
  auto r2 = tiered.get_or_compute("k", [&] {
    ++computes;
    return outcome_for(1);
  });
  EXPECT_EQ(computes, 1);
  EXPECT_FALSE(r1.hit);
  EXPECT_TRUE(r2.hit);
  EXPECT_FALSE(r2.disk_hit);
  EXPECT_FALSE(tiered.stats().persistent);
  EXPECT_EQ(tiered.fits_performed(), 1u);
}

TEST(TieredStore, SpillsFrequentEvictionsAndPromotesThemBack) {
  TempDir dir;
  TieredStoreConfig cfg;
  cfg.cache_capacity = 2;
  cfg.store_dir = dir.str();
  TieredStore tiered(cfg);
  ASSERT_TRUE(tiered.open());

  int computes = 0;
  auto compute = [&](int seed) {
    return [&computes, seed] {
      ++computes;
      return outcome_for(seed);
    };
  };
  // Make "hot-1" and "hot-2" frequent (two touches each). A one-shot cold
  // key must NOT displace them (scan resistance) ...
  for (int round = 0; round < 2; ++round) {
    (void)tiered.get_or_compute("hot-1", compute(1));
    (void)tiered.get_or_compute("hot-2", compute(2));
  }
  (void)tiered.get_or_compute("cold", compute(3));
  EXPECT_EQ(tiered.stats().tier.spilled, 0u)
      << "a one-shot scan key is rejected before it evicts the warm set";
  EXPECT_TRUE(tiered.get_or_compute("hot-1", compute(1)).hit)
      << "the warm set survives the scan";

  // ... but a newcomer whose frequency catches up IS admitted, evicting
  // the LRU hot entry, which — being frequent — spills to disk.
  for (int round = 0; round < 3; ++round) {
    (void)tiered.get_or_compute("riser", compute(6));
  }
  const auto spilled = tiered.stats();
  EXPECT_GE(spilled.tier.spilled, 1u) << "hot evictions must persist";

  // The spilled key ("hot-2", the LRU victim) promotes back from disk:
  // bit-identical and not recomputed.
  tiered.clear_memory();
  const int computes_before = computes;
  auto promoted = tiered.get_or_compute("hot-2", compute(2));
  EXPECT_EQ(computes, computes_before) << "promote must not re-fit";
  EXPECT_TRUE(promoted.disk_hit);
  ASSERT_TRUE(promoted.outcome->fits.has_value());
  EXPECT_EQ(encode_factor_fits(*promoted.outcome->fits),
            encode_factor_fits(make_fits(2)));
  EXPECT_GE(tiered.stats().tier.disk_hits, 1u);
}

TEST(TieredStore, FlushThenRestartServesWithoutRefit) {
  TempDir dir;
  TieredStoreConfig cfg;
  cfg.cache_capacity = 8;
  cfg.store_dir = dir.str();
  {
    TieredStore tiered(cfg);
    ASSERT_TRUE(tiered.open());
    for (int i = 0; i < 5; ++i) {
      (void)tiered.get_or_compute(key_of(i), [i] { return outcome_for(i); });
    }
    tiered.flush();
  }
  TieredStore restarted(cfg);
  ASSERT_TRUE(restarted.open());
  EXPECT_EQ(restarted.stats().disk.records, 5u);
  for (int i = 0; i < 5; ++i) {
    auto r = restarted.get_or_compute(key_of(i), [i]() -> FitOutcome {
      ADD_FAILURE() << "warm restart must not re-fit " << key_of(i);
      return outcome_for(i);
    });
    EXPECT_TRUE(r.disk_hit);
    ASSERT_TRUE(r.outcome->fits.has_value());
    EXPECT_EQ(encode_factor_fits(*r.outcome->fits),
              encode_factor_fits(make_fits(i)));
  }
  EXPECT_EQ(restarted.fits_performed(), 0u);
}

TEST(TieredStore, ErrorOutcomesAreNotPersisted) {
  TempDir dir;
  TieredStoreConfig cfg;
  cfg.cache_capacity = 4;
  cfg.store_dir = dir.str();
  {
    TieredStore tiered(cfg);
    ASSERT_TRUE(tiered.open());
    (void)tiered.get_or_compute("failed", [] {
      return FitOutcome{FitError::kFitFailed};
    });
    tiered.flush();
    EXPECT_EQ(tiered.stats().disk.records, 0u);
  }
  TieredStore restarted(cfg);
  ASSERT_TRUE(restarted.open());
  int computes = 0;
  (void)restarted.get_or_compute("failed", [&] {
    ++computes;
    return FitOutcome{FitError::kFitFailed};
  });
  EXPECT_EQ(computes, 1) << "errors are recomputed, never served from disk";
}

TEST(TieredStore, ConcurrentMixedWorkloadKeepsCountersConserved) {
  TempDir dir;
  TieredStoreConfig cfg;
  cfg.cache_capacity = 4;
  cfg.store_dir = dir.str();
  TieredStore tiered(cfg);
  ASSERT_TRUE(tiered.open());

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  constexpr int kKeys = 32;
  std::atomic<int> computes{0};
  std::atomic<int> bad_outcomes{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int seed = (t * 31 + i * 7) % kKeys;
        auto r = tiered.get_or_compute(key_of(seed), [&computes, seed] {
          computes.fetch_add(1, std::memory_order_relaxed);
          return outcome_for(seed);
        });
        if (!r.outcome || !r.outcome->fits.has_value() ||
            encode_factor_fits(*r.outcome->fits) !=
                encode_factor_fits(make_fits(seed))) {
          bad_outcomes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(bad_outcomes.load(), 0);
  const auto st = tiered.stats();
  // Every lookup lands in exactly one bucket.
  EXPECT_EQ(st.cache.hits + st.cache.misses + st.cache.coalesced,
            static_cast<std::size_t>(kThreads) * kOpsPerThread);
  // A disk hit is a miss that did not compute; everything else did.
  EXPECT_EQ(st.cache.misses,
            static_cast<std::size_t>(computes.load()) + st.tier.disk_hits);
  EXPECT_EQ(tiered.fits_performed(),
            static_cast<std::size_t>(computes.load()));
}

// ---------------------------------------------------------------------------
// FitCache tiering hooks (unit level)
// ---------------------------------------------------------------------------

TEST(FitCacheHooks, EvictHookFiresOnCapacityPressureNotOnClear) {
  FitCache cache(2);
  std::vector<std::string> evicted;
  cache.set_evict_hook([&](const std::string& key, FitOutcomePtr outcome) {
    EXPECT_NE(outcome, nullptr);
    evicted.push_back(key);
  });
  for (int i = 0; i < 3; ++i) {
    (void)cache.get_or_compute(key_of(i), [i] { return outcome_for(i); });
  }
  EXPECT_EQ(evicted, (std::vector<std::string>{key_of(0)}));
  cache.clear();
  EXPECT_EQ(evicted.size(), 1u) << "clear() must not fire the evict hook";
}

TEST(FitCacheHooks, AdmissionFilterCanRejectTheNewcomer) {
  FitCache cache(2);
  std::vector<std::string> evicted;
  cache.set_evict_hook([&](const std::string& key, FitOutcomePtr) {
    evicted.push_back(key);
  });
  // Reject every newcomer: the resident warm set must stay intact.
  cache.set_admission_filter(
      [](const std::string&, const std::string&) { return false; });
  (void)cache.get_or_compute("warm-a", [] { return outcome_for(1); });
  (void)cache.get_or_compute("warm-b", [] { return outcome_for(2); });
  auto scan = cache.get_or_compute("scan", [] { return outcome_for(3); });
  ASSERT_TRUE(scan.outcome->fits.has_value())
      << "the caller still gets its outcome even when not admitted";
  EXPECT_EQ(evicted, (std::vector<std::string>{"scan"}));
  EXPECT_TRUE(cache.get_or_compute("warm-a", [] {
                     return outcome_for(1);
                   }).hit);
  EXPECT_TRUE(cache.get_or_compute("warm-b", [] {
                     return outcome_for(2);
                   }).hit);
}

TEST(FitCacheHooks, SnapshotReadyCopiesMostRecentFirst) {
  FitCache cache(4);
  for (int i = 0; i < 3; ++i) {
    (void)cache.get_or_compute(key_of(i), [i] { return outcome_for(i); });
  }
  const auto snap = cache.snapshot_ready();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, key_of(2));
  EXPECT_EQ(snap[2].first, key_of(0));
}

// ---------------------------------------------------------------------------
// Engine-level warm restart: the byte-identical contract
// ---------------------------------------------------------------------------

std::string engine_fit_request(int seed) {
  const double t1 = 100.0 + seed;
  std::ostringstream os;
  os << "{\"op\":\"fit\",\"workload\":\"fixed-time\",\"eta\":0.99,\"ex\":[";
  bool first = true;
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    if (!first) os << ",";
    first = false;
    os << "[" << n << "," << (t1 / n + 0.5) << "]";
  }
  os << "],\"in\":[";
  first = true;
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    if (!first) os << ",";
    first = false;
    os << "[" << n << "," << (0.4 + 1.05 * n) << "]";
  }
  os << "]}";
  return os.str();
}

TEST(EngineWarmRestart, RestartedEngineServesByteIdenticalWithoutRefit) {
  TempDir dir;
  serve::ServeConfig cfg;
  cfg.threads = 2;
  cfg.cache_capacity = 16;
  cfg.store_dir = dir.str();

  std::vector<std::string> first_responses;
  {
    serve::ServeEngine engine(cfg);
    ASSERT_TRUE(engine.store_status());
    for (int i = 0; i < 6; ++i) {
      first_responses.push_back(engine.handle(engine_fit_request(i)));
      ASSERT_NE(first_responses.back().find("\"ok\":true"),
                std::string::npos);
    }
    EXPECT_EQ(engine.fits_performed(), 6u);
    engine.drain();  // the SIGTERM path: flushes the store
  }

  serve::ServeEngine restarted(cfg);
  ASSERT_TRUE(restarted.store_status());
  EXPECT_EQ(restarted.store_stats().disk.records, 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(restarted.handle(engine_fit_request(i)), first_responses[i])
        << "warm response " << i << " must be byte-identical";
  }
  EXPECT_EQ(restarted.fits_performed(), 0u)
      << "warm restart must serve persisted fits without re-fitting";
  EXPECT_EQ(restarted.stats().disk_hits, 6u);
}

TEST(EngineWarmRestart, CorruptedStoreIsSkippedWithCounterNeverACrash) {
  TempDir dir;
  serve::ServeConfig cfg;
  cfg.threads = 2;
  cfg.cache_capacity = 16;
  cfg.store_dir = dir.str();
  {
    serve::ServeEngine engine(cfg);
    for (int i = 0; i < 4; ++i) {
      ASSERT_NE(engine.handle(engine_fit_request(i)).find("\"ok\":true"),
                std::string::npos);
    }
  }
  // Flip one payload byte in the first persisted record.
  const auto segs = segment_files(dir.path);
  ASSERT_FALSE(segs.empty());
  std::string img = slurp(segs[0]);
  ASSERT_GT(img.size(), kSegmentHeaderBytes + kRecordHeaderBytes + 64);
  const std::size_t corrupt_at = kSegmentHeaderBytes + kRecordHeaderBytes + 40;
  img[corrupt_at] = static_cast<char>(img[corrupt_at] ^ 0x10);
  dump(segs[0], img);

  serve::ServeEngine restarted(cfg);
  ASSERT_TRUE(restarted.store_status());
  EXPECT_GE(restarted.store_stats().disk.skipped_total(), 1u);
  // Every request is still answered; the corrupted one just re-fits.
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(restarted.handle(engine_fit_request(i)).find("\"ok\":true"),
              std::string::npos);
  }
  EXPECT_GE(restarted.fits_performed(), 1u);
  EXPECT_LT(restarted.fits_performed(), 4u);
}

}  // namespace
}  // namespace ipso::store
