#include "core/diagnose.h"

#include "core/model.h"

#include <gtest/gtest.h>

namespace ipso {
namespace {

stats::Series curve_from(const AsymptoticParams& p, double n_hi) {
  stats::Series s("S(n)");
  for (double n = 1; n <= n_hi; n *= 2) s.add(n, speedup_asymptotic(p, n));
  return s;
}

TEST(JudgeShape, LinearCurve) {
  AsymptoticParams p;  // Gustafson-like, eta = 1
  p.eta = 1.0;
  const auto shape = judge_shape(curve_from(p, 256));
  EXPECT_EQ(shape.shape, GrowthShape::kLinear);
  EXPECT_TRUE(shape.monotone);
  EXPECT_FALSE(shape.peaked);
}

TEST(JudgeShape, SublinearCurve) {
  AsymptoticParams p;
  p.eta = 1.0;
  p.beta = 0.3;
  p.gamma = 0.5;
  const auto shape = judge_shape(curve_from(p, 4096));
  EXPECT_EQ(shape.shape, GrowthShape::kSublinear);
}

TEST(JudgeShape, SaturatedCurve) {
  AsymptoticParams p;
  p.type = WorkloadType::kFixedSize;
  p.eta = 0.9;
  p.alpha = 1.0;
  p.delta = 0.0;
  const auto shape = judge_shape(curve_from(p, 4096));
  EXPECT_EQ(shape.shape, GrowthShape::kBounded);
}

TEST(JudgeShape, PeakedCurve) {
  AsymptoticParams p;
  p.eta = 1.0;
  p.beta = 3.74e-4;
  p.gamma = 2.0;
  const auto shape = judge_shape(curve_from(p, 512));
  EXPECT_EQ(shape.shape, GrowthShape::kPeaked);
  EXPECT_TRUE(shape.peaked);
}

TEST(Diagnose, ShapeOnlyGivesBestGuess) {
  AsymptoticParams p;
  p.eta = 1.0;
  const auto report = diagnose(WorkloadType::kFixedTime, curve_from(p, 256));
  EXPECT_EQ(report.best_guess, ScalingType::kIt);
  EXPECT_FALSE(report.matched.has_value());
  EXPECT_NE(report.summary.find("best guess"), std::string::npos);
}

TEST(Diagnose, FactorsPinDownSubtype) {
  // Sort-like: bounded fixed-time curve; only factor analysis can say IIIt,1.
  FactorMeasurements m;
  m.eta = 0.7;
  stats::Series speedup("S");
  const ScalingFactors truth{identity_factor(), linear_factor(0.36, 0.64),
                             constant_factor(0.0)};
  for (double n = 1; n <= 160; n *= 2) {
    speedup.add(n, speedup_deterministic(truth, 0.7, n));
    m.ex.add(n, truth.ex(n));
    m.in.add(n, truth.in(n));
  }
  const auto report = diagnose(WorkloadType::kFixedTime, speedup, m);
  ASSERT_TRUE(report.matched.has_value());
  EXPECT_EQ(report.best_guess, ScalingType::kIIIt1);
  EXPECT_NE(report.summary.find("root cause"), std::string::npos);
}

TEST(Diagnose, CollaborativeFilteringIsIVs) {
  FactorMeasurements m;
  m.eta = 1.0;
  stats::Series speedup("S");
  AsymptoticParams truth;
  truth.type = WorkloadType::kFixedSize;
  truth.eta = 1.0;
  truth.beta = 3.74e-4;
  truth.gamma = 2.0;
  for (double n : {1.0, 10.0, 30.0, 60.0, 90.0, 120.0}) {
    speedup.add(n, speedup_asymptotic(truth, n));
    m.ex.add(n, 1.0);
    m.q.add(n, n > 1 ? truth.beta * n * n : 0.0);
  }
  const auto report = diagnose(WorkloadType::kFixedSize, speedup, m);
  EXPECT_EQ(report.best_guess, ScalingType::kIVs);
  ASSERT_TRUE(report.matched.has_value());
  EXPECT_NEAR(report.fits->params.gamma, 2.0, 0.01);
}

TEST(Diagnose, WorkloadTypeControlsNaming) {
  AsymptoticParams p;
  p.eta = 1.0;
  p.beta = 0.01;
  p.gamma = 2.0;
  const auto curve = curve_from(p, 512);
  EXPECT_EQ(diagnose(WorkloadType::kFixedTime, curve).best_guess,
            ScalingType::kIVt);
  EXPECT_EQ(diagnose(WorkloadType::kFixedSize, curve).best_guess,
            ScalingType::kIVs);
}

TEST(Diagnose, SummaryMentionsWorkloadAndRange) {
  AsymptoticParams p;
  p.eta = 1.0;
  const auto report = diagnose(WorkloadType::kFixedTime, curve_from(p, 64));
  EXPECT_NE(report.summary.find("fixed-time"), std::string::npos);
  EXPECT_NE(report.summary.find("monotone"), std::string::npos);
}

}  // namespace
}  // namespace ipso
