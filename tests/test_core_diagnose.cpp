#include "core/diagnose.h"

#include "core/model.h"

#include <gtest/gtest.h>

namespace ipso {
namespace {

stats::Series curve_from(const AsymptoticParams& p, double n_hi) {
  stats::Series s("S(n)");
  for (double n = 1; n <= n_hi; n *= 2) s.add(n, speedup_asymptotic(p, n));
  return s;
}

TEST(JudgeShape, LinearCurve) {
  AsymptoticParams p;  // Gustafson-like, eta = 1
  p.eta = 1.0;
  const auto shape = judge_shape(curve_from(p, 256)).value();
  EXPECT_EQ(shape.shape, GrowthShape::kLinear);
  EXPECT_TRUE(shape.monotone);
  EXPECT_FALSE(shape.peaked);
}

TEST(JudgeShape, SublinearCurve) {
  AsymptoticParams p;
  p.eta = 1.0;
  p.beta = 0.3;
  p.gamma = 0.5;
  const auto shape = judge_shape(curve_from(p, 4096)).value();
  EXPECT_EQ(shape.shape, GrowthShape::kSublinear);
}

TEST(JudgeShape, SaturatedCurve) {
  AsymptoticParams p;
  p.type = WorkloadType::kFixedSize;
  p.eta = 0.9;
  p.alpha = 1.0;
  p.delta = 0.0;
  const auto shape = judge_shape(curve_from(p, 4096)).value();
  EXPECT_EQ(shape.shape, GrowthShape::kBounded);
}

TEST(JudgeShape, PeakedCurve) {
  AsymptoticParams p;
  p.eta = 1.0;
  p.beta = 3.74e-4;
  p.gamma = 2.0;
  const auto shape = judge_shape(curve_from(p, 512)).value();
  EXPECT_EQ(shape.shape, GrowthShape::kPeaked);
  EXPECT_TRUE(shape.peaked);
}

TEST(JudgeShape, TooFewPointsIsInsufficientData) {
  stats::Series s("S");
  s.add(1, 1.0);
  s.add(2, 1.8);
  const auto shape = judge_shape(s);
  ASSERT_FALSE(shape.has_value());
  EXPECT_EQ(shape.error(), FitError::kInsufficientData);
}

TEST(Diagnose, ShapeOnlyGivesBestGuess) {
  AsymptoticParams p;
  p.eta = 1.0;
  const auto report =
      diagnose(WorkloadType::kFixedTime, curve_from(p, 256)).value();
  EXPECT_EQ(report.best_guess, ScalingType::kIt);
  EXPECT_FALSE(report.matched.has_value());
  EXPECT_EQ(report.matched.error(), FitError::kNotMeasured);
  EXPECT_NE(report.summary.find("best guess"), std::string::npos);
}

TEST(Diagnose, TooFewPointsIsInsufficientData) {
  stats::Series s("S");
  s.add(1, 1.0);
  s.add(2, 1.9);
  const auto report = diagnose(WorkloadType::kFixedTime, s);
  ASSERT_FALSE(report.has_value());
  EXPECT_EQ(report.error(), FitError::kInsufficientData);
}

TEST(Diagnose, FactorsPinDownSubtype) {
  // Sort-like: bounded fixed-time curve; only factor analysis can say IIIt,1.
  FactorMeasurements m;
  m.eta = 0.7;
  stats::Series speedup("S");
  const ScalingFactors truth{identity_factor(), linear_factor(0.36, 0.64),
                             constant_factor(0.0)};
  for (double n = 1; n <= 160; n *= 2) {
    speedup.add(n, speedup_deterministic(truth, 0.7, n));
    m.ex.add(n, truth.ex(n));
    m.in.add(n, truth.in(n));
  }
  const auto report = diagnose(WorkloadType::kFixedTime, speedup, m).value();
  ASSERT_TRUE(report.matched.has_value());
  EXPECT_EQ(report.best_guess, ScalingType::kIIIt1);
  EXPECT_NE(report.summary.find("root cause"), std::string::npos);
}

TEST(Diagnose, CollaborativeFilteringIsIVs) {
  FactorMeasurements m;
  m.eta = 1.0;
  stats::Series speedup("S");
  AsymptoticParams truth;
  truth.type = WorkloadType::kFixedSize;
  truth.eta = 1.0;
  truth.beta = 3.74e-4;
  truth.gamma = 2.0;
  for (double n : {1.0, 10.0, 30.0, 60.0, 90.0, 120.0}) {
    speedup.add(n, speedup_asymptotic(truth, n));
    m.ex.add(n, 1.0);
    m.q.add(n, n > 1 ? truth.beta * n * n : 0.0);
  }
  const auto report = diagnose(WorkloadType::kFixedSize, speedup, m).value();
  EXPECT_EQ(report.best_guess, ScalingType::kIVs);
  ASSERT_TRUE(report.matched.has_value());
  EXPECT_NEAR(report.fits->params.gamma, 2.0, 0.01);
}

TEST(Diagnose, FailedFactorFitFallsBackToShape) {
  // Mismatched EX/IN series: the factor fit cannot run, but the report
  // still carries the shape-based guess plus the reason the fit failed.
  AsymptoticParams p;
  p.eta = 1.0;
  FactorMeasurements m;
  m.eta = 0.7;
  for (double n : {1.0, 2.0, 4.0}) m.ex.add(n, n);
  m.in.add(1.0, 1.0);
  const auto report =
      diagnose(WorkloadType::kFixedTime, curve_from(p, 256), m).value();
  EXPECT_FALSE(report.fits.has_value());
  EXPECT_EQ(report.fits.error(), FitError::kLengthMismatch);
  EXPECT_EQ(report.best_guess, ScalingType::kIt);
  EXPECT_NE(report.summary.find("factor fit unavailable"), std::string::npos);
}

TEST(Diagnose, WorkloadTypeControlsNaming) {
  AsymptoticParams p;
  p.eta = 1.0;
  p.beta = 0.01;
  p.gamma = 2.0;
  const auto curve = curve_from(p, 512);
  EXPECT_EQ(diagnose(WorkloadType::kFixedTime, curve)->best_guess,
            ScalingType::kIVt);
  EXPECT_EQ(diagnose(WorkloadType::kFixedSize, curve)->best_guess,
            ScalingType::kIVs);
}

TEST(Diagnose, SummaryMentionsWorkloadAndRange) {
  AsymptoticParams p;
  p.eta = 1.0;
  const auto report =
      diagnose(WorkloadType::kFixedTime, curve_from(p, 64)).value();
  EXPECT_NE(report.summary.find("fixed-time"), std::string::npos);
  EXPECT_NE(report.summary.find("monotone"), std::string::npos);
}

}  // namespace
}  // namespace ipso
