#include "stats/series.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace ipso::stats {
namespace {

Series make_linear() {
  Series s("linear");
  for (int n = 1; n <= 10; ++n) s.add(n, 2.0 * n);
  return s;
}

TEST(Series, ConstructFromSpansChecksLength) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0};
  EXPECT_THROW(Series("bad", xs, ys), std::invalid_argument);
}

TEST(Series, ConstructFromSpans) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{10.0, 20.0, 30.0};
  Series s("ok", xs, ys);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[1].y, 20.0);
  EXPECT_EQ(s.name(), "ok");
}

TEST(Series, AddAndAccess) {
  Series s("t");
  s.add(1.0, 5.0);
  ASSERT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s[0].x, 1.0);
  EXPECT_DOUBLE_EQ(s[0].y, 5.0);
}

TEST(Series, XsYsRoundTrip) {
  const Series s = make_linear();
  const auto xs = s.xs();
  const auto ys = s.ys();
  ASSERT_EQ(xs.size(), 10u);
  EXPECT_DOUBLE_EQ(xs[4], 5.0);
  EXPECT_DOUBLE_EQ(ys[4], 10.0);
}

TEST(Series, SliceXKeepsRange) {
  const Series s = make_linear();
  const Series mid = s.slice_x(3.0, 6.0);
  ASSERT_EQ(mid.size(), 4u);
  EXPECT_DOUBLE_EQ(mid[0].x, 3.0);
  EXPECT_DOUBLE_EQ(mid[3].x, 6.0);
}

TEST(Series, MapYTransforms) {
  const Series s = make_linear();
  const Series half = s.map_y([](double y) { return y / 2.0; });
  EXPECT_DOUBLE_EQ(half[9].y, 10.0);
}

TEST(Series, InterpolateInside) {
  const Series s = make_linear();
  EXPECT_DOUBLE_EQ(s.interpolate(2.5), 5.0);
}

TEST(Series, InterpolateClampsOutside) {
  const Series s = make_linear();
  EXPECT_DOUBLE_EQ(s.interpolate(0.0), 2.0);
  EXPECT_DOUBLE_EQ(s.interpolate(99.0), 20.0);
}

TEST(Series, InterpolateEmptyIsZero) {
  const Series s("empty");
  EXPECT_DOUBLE_EQ(s.interpolate(1.0), 0.0);
}

TEST(Series, ArgmaxAndMax) {
  Series s("peak");
  s.add(1, 1.0);
  s.add(2, 9.0);
  s.add(3, 4.0);
  EXPECT_DOUBLE_EQ(s.argmax_x(), 2.0);
  EXPECT_DOUBLE_EQ(s.max_y(), 9.0);
}

TEST(Series, RangeForIteration) {
  const Series s = make_linear();
  double total = 0.0;
  for (const auto& p : s) total += p.y;
  EXPECT_DOUBLE_EQ(total, 110.0);
}

TEST(Monotone, DetectsMonotone) {
  EXPECT_TRUE(is_monotone_nondecreasing(make_linear()));
}

TEST(Monotone, ToleratesSmallNoise) {
  Series s("noisy");
  s.add(1, 1.0);
  s.add(2, 2.0);
  s.add(3, 1.9999999999);
  EXPECT_TRUE(is_monotone_nondecreasing(s));
}

TEST(Monotone, DetectsDecrease) {
  Series s("down");
  s.add(1, 2.0);
  s.add(2, 1.0);
  EXPECT_FALSE(is_monotone_nondecreasing(s));
}

TEST(Peaked, LinearIsNotPeaked) { EXPECT_FALSE(is_peaked(make_linear())); }

TEST(Peaked, DetectsPeakAndFall) {
  Series s("peak");
  s.add(1, 1.0);
  s.add(2, 5.0);
  s.add(3, 10.0);
  s.add(4, 6.0);
  s.add(5, 2.0);
  EXPECT_TRUE(is_peaked(s));
}

TEST(Peaked, PeakAtEndIsNotPeaked) {
  Series s("rising");
  s.add(1, 1.0);
  s.add(2, 5.0);
  s.add(3, 10.0);
  EXPECT_FALSE(is_peaked(s));
}

TEST(Peaked, TinyDipBelowThresholdIgnored) {
  Series s("dip");
  s.add(1, 1.0);
  s.add(2, 10.0);
  s.add(3, 9.9);  // 1% dip < 5% default threshold
  EXPECT_FALSE(is_peaked(s));
}

}  // namespace
}  // namespace ipso::stats
