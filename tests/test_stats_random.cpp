#include "stats/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace ipso::stats {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformBelowStaysBelow) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_below(17), 17u);
  }
}

TEST(Rng, UniformBelowZeroBoundIsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_below(0), 0u);
}

TEST(Rng, UniformBelowCoversAllResidues) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(7);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(8);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(9);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, HeavyTailRespectsMinAndCap) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.heavy_tail(1.0, 2.0, 50.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 50.0);
  }
}

TEST(Rng, HeavyTailProducesTail) {
  Rng rng(12);
  int above = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.heavy_tail(1.0, 1.5, 100.0) > 5.0) ++above;
  }
  // P(X > 5) = 5^-1.5 ~ 8.9%, so expect thousands of exceedances.
  EXPECT_GT(above, 5000);
  EXPECT_LT(above, 15000);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto orig = v;
  rng.shuffle(v.data(), v.size());
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  Rng rng(14);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto orig = v;
  rng.shuffle(v.data(), v.size());
  EXPECT_NE(v, orig);  // probability 1/10! of spurious failure
}

}  // namespace
}  // namespace ipso::stats
