#include "workloads/sort.h"
#include "workloads/terasort.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ipso::wl {
namespace {

// --- Sort

TEST(Sort, MapProducesSortedRun) {
  const auto run = sort_map("pear apple zebra mango");
  ASSERT_EQ(run.size(), 4u);
  EXPECT_TRUE(is_sorted_output(run));
  EXPECT_EQ(run.front(), "apple");
  EXPECT_EQ(run.back(), "zebra");
}

TEST(Sort, MergeOfSortedRunsIsSorted) {
  const std::vector<std::vector<std::string>> runs{
      {"a", "d", "g"}, {"b", "e"}, {"c", "f", "h"}};
  const auto merged = sort_merge(runs);
  ASSERT_EQ(merged.size(), 8u);
  EXPECT_TRUE(is_sorted_output(merged));
  EXPECT_EQ(merged.front(), "a");
  EXPECT_EQ(merged.back(), "h");
}

TEST(Sort, MergeHandlesEmptyRuns) {
  const std::vector<std::vector<std::string>> runs{{}, {"x"}, {}};
  const auto merged = sort_merge(runs);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], "x");
}

TEST(Sort, EndToEndIsPermutationAndSorted) {
  const Dictionary dict;
  const auto out = sort_run(dict, 42, 4, 3000);
  EXPECT_TRUE(is_sorted_output(out));
  // Permutation check: re-tokenize inputs and compare multisets via sort.
  std::vector<std::string> expected;
  for (std::uint64_t s = 0; s < 4; ++s) {
    const auto toks = tokenize(generate_text(dict, 42 + s, 3000));
    expected.insert(expected.end(), toks.begin(), toks.end());
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(out, expected);
}

TEST(SortSpec, ForwardsAllBytes) {
  const auto spec = sort_spec();
  EXPECT_DOUBLE_EQ(spec.intermediate_bytes(128e6), 128e6);
  EXPECT_FALSE(spec.spill_enabled);
}

// --- TeraSort

TEST(TeraGen, DeterministicRecords) {
  const auto a = teragen(1, 100);
  const auto b = teragen(1, 100);
  EXPECT_EQ(a, b);
  EXPECT_NE(teragen(2, 100), a);
}

TEST(TeraSort, MapSortsByKey) {
  auto shard = teragen(3, 500);
  const auto sorted = terasort_map(shard);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(TeraSort, EndToEndSortedAndChecksumPreserved) {
  const std::size_t shards = 4, per_shard = 400;
  std::uint64_t checksum_in = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    checksum_in ^= tera_checksum(teragen(100 + s, per_shard));
  }
  const auto out = terasort_run(100, shards, per_shard);
  ASSERT_EQ(out.size(), shards * per_shard);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(tera_checksum(out), checksum_in);
}

TEST(TeraSort, SplitKeysPartitionEvenly) {
  const auto sample = teragen(7, 4000);
  const auto splits = terasort_split_keys(sample, 4);
  ASSERT_EQ(splits.size(), 3u);
  EXPECT_TRUE(std::is_sorted(splits.begin(), splits.end()));
  // Partition the sample and check balance within a factor of 2.
  std::vector<std::size_t> counts(4, 0);
  for (const auto& rec : sample) {
    ++counts[terasort_partition(rec.key, splits)];
  }
  for (auto c : counts) {
    EXPECT_GT(c, sample.size() / 8);
    EXPECT_LT(c, sample.size() / 2);
  }
}

TEST(TeraSort, PartitionOfExtremeKeys) {
  const auto sample = teragen(9, 1000);
  const auto splits = terasort_split_keys(sample, 4);
  std::array<std::uint8_t, 10> lo{};  // all zero: before every split
  std::array<std::uint8_t, 10> hi;
  hi.fill(0xff);
  EXPECT_EQ(terasort_partition(lo, splits), 0u);
  EXPECT_EQ(terasort_partition(hi, splits), 3u);
}

TEST(TeraSort, SinglePartitionHasNoSplits) {
  const auto sample = teragen(9, 100);
  EXPECT_TRUE(terasort_split_keys(sample, 1).empty());
}

TEST(TeraSortSpec, SpillEnabledAndInProportion) {
  const auto spec = terasort_spec();
  EXPECT_TRUE(spec.spill_enabled);
  EXPECT_DOUBLE_EQ(spec.intermediate_ratio, 1.0);
}

TEST(TeraChecksum, PermutationInvariant) {
  auto records = teragen(5, 64);
  const auto before = tera_checksum(records);
  std::reverse(records.begin(), records.end());
  EXPECT_EQ(tera_checksum(records), before);
}

TEST(TeraChecksum, DetectsCorruption) {
  auto records = teragen(5, 64);
  const auto before = tera_checksum(records);
  records[10].payload[0] ^= 0xff;
  EXPECT_NE(tera_checksum(records), before);
}

}  // namespace
}  // namespace ipso::wl
