#include "trace/experiment.h"
#include "trace/reference_data.h"
#include "trace/report.h"

#include "workloads/qmc_pi.h"
#include "workloads/sort.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ipso::trace {
namespace {

MrSweepConfig small_sweep() {
  MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8};
  sweep.repetitions = 1;
  return sweep;
}

TEST(MrSweep, RejectsEmptyOrZeroReps) {
  const auto base = sim::default_emr_cluster(1);
  MrSweepConfig sweep = small_sweep();
  sweep.ns = {};
  EXPECT_THROW(run_mr_sweep(wl::sort_spec(), base, sweep),
               std::invalid_argument);
  sweep = small_sweep();
  sweep.repetitions = 0;
  EXPECT_THROW(run_mr_sweep(wl::sort_spec(), base, sweep),
               std::invalid_argument);
}

TEST(MrSweep, NormalizesFactorsAtNOne) {
  const auto r = run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1),
                              small_sweep());
  ASSERT_EQ(r.points.size(), 4u);
  EXPECT_NEAR(r.factors.ex[0].y, 1.0, 1e-9);
  EXPECT_NEAR(r.factors.in[0].y, 1.0, 1e-9);
  EXPECT_NEAR(r.speedup[0].y, 1.0, 0.05);
  EXPECT_GT(r.tp1, 0.0);
  EXPECT_GT(r.ts1, 0.0);
}

TEST(MrSweep, FixedTimeExternalScalingIsLinear) {
  const auto r = run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1),
                              small_sweep());
  for (const auto& p : r.factors.ex) EXPECT_NEAR(p.y, p.x, 0.01 * p.x);
}

TEST(MrSweep, FixedSizeKeepsTotalWorkConstant) {
  MrSweepConfig sweep = small_sweep();
  sweep.type = WorkloadType::kFixedSize;
  sweep.bytes = 512e6;
  const auto r = run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1),
                              sweep);
  for (const auto& p : r.factors.ex) EXPECT_NEAR(p.y, 1.0, 0.01);
}

TEST(MrSweep, RepetitionAveragingIsStableWithoutNoise) {
  MrSweepConfig one = small_sweep();
  MrSweepConfig many = small_sweep();
  many.repetitions = 5;
  const auto base = sim::default_emr_cluster(1);
  const auto a = run_mr_sweep(wl::sort_spec(), base, one);
  const auto b = run_mr_sweep(wl::sort_spec(), base, many);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_NEAR(a.points[i].speedup, b.points[i].speedup, 1e-9);
  }
}

TEST(MrSweep, LawBaselineMatchesEta) {
  const auto r = run_mr_sweep(wl::qmc_pi_spec(), sim::default_emr_cluster(1),
                              small_sweep());
  const auto gustafson = law_baseline(r, WorkloadType::kFixedTime);
  ASSERT_EQ(gustafson.size(), 4u);
  EXPECT_NEAR(gustafson[3].y, r.factors.eta * 8.0 + (1 - r.factors.eta),
              1e-9);
  const auto amdahl = law_baseline(r, WorkloadType::kFixedSize);
  EXPECT_EQ(amdahl.name(), "Amdahl");
}

TEST(MrSweep, MemoryBoundedTracksFixedTime) {
  // Paper Section IV / Fig. 6: with block-capped working sets g(n) ~ n,
  // so the memory-bounded sweep coincides with the fixed-time one.
  MrSweepConfig mem;
  mem.type = WorkloadType::kMemoryBounded;
  mem.bytes = 64e9;  // far more data than 8 blocks
  mem.ns = {1, 2, 4, 8};
  mem.repetitions = 1;
  const auto r =
      run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1), mem);
  for (const auto& p : r.factors.ex) EXPECT_NEAR(p.y, p.x, 0.01 * p.x);

  MrSweepConfig ft = mem;
  ft.type = WorkloadType::kFixedTime;
  ft.bytes = kMemoryBlockBytes;
  const auto g =
      run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1), ft);
  for (std::size_t i = 0; i < r.speedup.size(); ++i) {
    EXPECT_NEAR(r.speedup[i].y, g.speedup[i].y, 1e-9);
  }
}

TEST(MrSweep, MemoryBoundedExhaustsSmallData) {
  // When the data runs out, each unit's share shrinks below the block:
  // g(n) flattens (the memory bound is no longer binding).
  MrSweepConfig mem;
  mem.type = WorkloadType::kMemoryBounded;
  mem.bytes = 4 * kMemoryBlockBytes;  // only 4 blocks of data
  mem.ns = {1, 2, 4, 8, 16};
  mem.repetitions = 1;
  const auto r =
      run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1), mem);
  // EX(16) is capped at the total data (4 blocks = 4 x EX(1)).
  EXPECT_NEAR(r.factors.ex[4].y, 4.0, 0.05);
}

// --- reference data

TEST(ReferenceData, TableOneMatchesPaper) {
  const auto tp = reference::cf_max_tp_series();
  const auto wo = reference::cf_wo_series();
  ASSERT_EQ(tp.size(), 4u);
  ASSERT_EQ(wo.size(), 4u);
  EXPECT_DOUBLE_EQ(tp[0].x, 10.0);
  EXPECT_DOUBLE_EQ(tp[0].y, 209.0);
  EXPECT_DOUBLE_EQ(wo[3].y, 54.3);
}

TEST(ReferenceData, WoIsLinearInN) {
  // The paper's Wo column is ~0.6 n; a linear fit must be near-perfect.
  const auto wo = reference::cf_wo_series();
  const auto fit = stats::fit_linear(wo);
  EXPECT_NEAR(fit.slope, 0.6, 0.02);
  EXPECT_GT(fit.r_squared, 0.999);
}

// --- report printing

TEST(Report, FmtFixesPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Report, TableAlignsColumns) {
  std::ostringstream os;
  print_table(os, {"n", "S"}, {{"1", "1.0"}, {"160", "140.2"}});
  const std::string out = os.str();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("140.2"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Report, SeriesTableInterpolatesUnionGrid) {
  stats::Series a("A");
  a.add(1, 1.0);
  a.add(3, 3.0);
  stats::Series b("B");
  b.add(2, 20.0);
  std::ostringstream os;
  print_series_table(os, "n", {a, b});
  const std::string out = os.str();
  // Union grid is {1, 2, 3}; A interpolates 2 -> 2.0.
  EXPECT_NE(out.find("2.000"), std::string::npos);
  EXPECT_NE(out.find("20.000"), std::string::npos);
}

TEST(Report, BannerContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Fig. 4");
  EXPECT_NE(os.str().find("Fig. 4"), std::string::npos);
}

// --- Spark sweep plumbing

TEST(SparkSweep, RejectsEmpty) {
  SparkSweepConfig sweep;
  sweep.ms = {};
  EXPECT_THROW(
      run_spark_sweep([](std::size_t) { return spark::SparkAppSpec{}; },
                      sim::default_emr_cluster(1), sweep),
      std::invalid_argument);
}

}  // namespace
}  // namespace ipso::trace
