#include "runtime/exec_pool.h"

#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "workloads/bayes.h"
#include "workloads/sort.h"
#include "workloads/terasort.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace ipso {
namespace {

TEST(ExecPool, RunsSubmittedJobs) {
  runtime::ExecPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ExecPool, ParallelForCoversEveryIndexExactlyOnce) {
  runtime::ExecPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&hits](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecPool, ParallelForZeroCountIsANoOp) {
  runtime::ExecPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ExecPool, ParallelForPropagatesException) {
  runtime::ExecPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool stays usable after a failed parallel_for.
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ExecPool, ParallelForLateThrowRace) {
  // Regression for an unguarded read found by thread-safety analysis:
  // parallel_for used to read the shared exception slot after the
  // completion wait with no lock held, racing a helper whose throw landed
  // on the final index (the `failed` flag flips before the pointer is
  // written). The error is now copied out under the mutex. Throwing on the
  // *last* index maximizes the window; TSan (CI matrix) sees the write
  // unsynchronized if the fix regresses.
  runtime::ExecPool pool(4);
  for (int round = 0; round < 50; ++round) {
    constexpr std::size_t kCount = 64;
    bool threw = false;
    try {
      pool.parallel_for(kCount, [](std::size_t i) {
        if (i == kCount - 1) throw std::runtime_error("late boom");
      });
    } catch (const std::runtime_error& e) {
      threw = true;
      EXPECT_STREQ(e.what(), "late boom");
    }
    EXPECT_TRUE(threw) << "round " << round;
  }
}

TEST(ExecPool, SingleWorkerPoolCompletes) {
  runtime::ExecPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(DefaultThreadCount, ExplicitRequestWins) {
  ::setenv("IPSO_THREADS", "2", 1);
  EXPECT_EQ(runtime::default_thread_count(5), 5u);
  ::unsetenv("IPSO_THREADS");
}

TEST(DefaultThreadCount, ReadsEnvironmentVariable) {
  ::setenv("IPSO_THREADS", "3", 1);
  EXPECT_EQ(runtime::default_thread_count(), 3u);
  ::setenv("IPSO_THREADS", "garbage", 1);
  EXPECT_GE(runtime::default_thread_count(), 1u);
  ::unsetenv("IPSO_THREADS");
}

// --- Determinism: the tentpole guarantee. A sweep run on 1, 2, and 8
// threads must produce bit-for-bit identical results (EXPECT_EQ on raw
// doubles, no tolerance): per-task seeds depend only on (base seed, n,
// rep), and the reduction replays the serial accumulation order.

void expect_series_identical(const stats::Series& a, const stats::Series& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
}

void expect_mr_identical(const trace::MrSweepResult& a,
                         const trace::MrSweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].n, b.points[i].n);
    EXPECT_EQ(a.points[i].parallel_time, b.points[i].parallel_time);
    EXPECT_EQ(a.points[i].sequential_time, b.points[i].sequential_time);
    EXPECT_EQ(a.points[i].speedup, b.points[i].speedup);
    EXPECT_EQ(a.points[i].components.wp, b.points[i].components.wp);
    EXPECT_EQ(a.points[i].components.ws, b.points[i].components.ws);
    EXPECT_EQ(a.points[i].components.wo, b.points[i].components.wo);
    EXPECT_EQ(a.points[i].spilled, b.points[i].spilled);
  }
  expect_series_identical(a.speedup, b.speedup);
  EXPECT_EQ(a.factors.eta, b.factors.eta);
  expect_series_identical(a.factors.ex, b.factors.ex);
  expect_series_identical(a.factors.in, b.factors.in);
  expect_series_identical(a.factors.q, b.factors.q);
  EXPECT_EQ(a.tp1, b.tp1);
  EXPECT_EQ(a.ts1, b.ts1);
}

trace::MrSweepConfig determinism_sweep() {
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8, 16};
  sweep.repetitions = 3;
  sweep.seed = 7;
  return sweep;
}

TEST(Determinism, MrSweepIsBitIdenticalAcrossThreadCounts) {
  const auto base = sim::default_emr_cluster(1);
  const auto sweep = determinism_sweep();

  trace::ExperimentRunner serial({.threads = 1});
  const auto reference = serial.run_mr_sweep(wl::sort_spec(), base, sweep);

  for (std::size_t threads : {2u, 8u}) {
    trace::ExperimentRunner parallel({.threads = threads});
    EXPECT_EQ(parallel.threads(), threads);
    const auto r = parallel.run_mr_sweep(wl::sort_spec(), base, sweep);
    expect_mr_identical(reference, r);
  }
}

TEST(Determinism, DuplicateAndUnsortedNsReplaySerialSemantics) {
  const auto base = sim::default_emr_cluster(1);
  trace::MrSweepConfig sweep = determinism_sweep();
  sweep.ns = {4, 1, 4, 2, 1};

  trace::ExperimentRunner serial({.threads = 1});
  trace::ExperimentRunner parallel({.threads = 8});
  const auto a = serial.run_mr_sweep(wl::terasort_spec(), base, sweep);
  const auto b = parallel.run_mr_sweep(wl::terasort_spec(), base, sweep);
  expect_mr_identical(a, b);
  // Duplicate grid entries map to one computed point.
  ASSERT_EQ(b.points.size(), 5u);
  EXPECT_EQ(b.points[0].parallel_time, b.points[2].parallel_time);
  EXPECT_EQ(b.points[1].speedup, b.points[4].speedup);
}

TEST(Determinism, SparkSweepIsBitIdenticalAcrossThreadCounts) {
  const auto base = sim::default_emr_cluster(1);
  trace::SparkSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.tasks_per_executor = 2;
  sweep.ms = {1, 2, 4, 8};
  sweep.seed = 11;

  auto app_for = [](std::size_t) { return wl::bayes_app(); };

  trace::ExperimentRunner serial({.threads = 1});
  const auto reference = serial.run_spark_sweep(app_for, base, sweep);
  for (std::size_t threads : {2u, 8u}) {
    trace::ExperimentRunner parallel({.threads = threads});
    const auto r = parallel.run_spark_sweep(app_for, base, sweep);
    ASSERT_EQ(reference.points.size(), r.points.size());
    for (std::size_t i = 0; i < r.points.size(); ++i) {
      EXPECT_EQ(reference.points[i].m, r.points[i].m);
      EXPECT_EQ(reference.points[i].parallel_time, r.points[i].parallel_time);
      EXPECT_EQ(reference.points[i].speedup, r.points[i].speedup);
    }
    expect_series_identical(reference.speedup, r.speedup);
    EXPECT_EQ(reference.tp1, r.tp1);
    EXPECT_EQ(reference.ts1, r.ts1);
  }
}

TEST(Runner, ProgressCallbackSeesEveryTask) {
  trace::ExperimentRunner runner({.threads = 4});
  std::atomic<std::size_t> events{0};
  std::atomic<std::size_t> max_completed{0};
  runner.on_progress([&](const trace::TaskEvent& ev) {
    events.fetch_add(1);
    std::size_t seen = ev.completed;
    std::size_t prev = max_completed.load();
    while (seen > prev && !max_completed.compare_exchange_weak(prev, seen)) {
    }
    EXPECT_LE(ev.completed, ev.total);
    EXPECT_GE(ev.wall_seconds, 0.0);
  });

  const auto sweep = determinism_sweep();
  runner.run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1), sweep);

  // 5 distinct n values x 3 repetitions = 15 tasks.
  EXPECT_EQ(events.load(), 15u);
  EXPECT_EQ(max_completed.load(), 15u);

  const auto metrics = runner.metrics();
  EXPECT_EQ(metrics.sweeps_run, 1u);
  EXPECT_EQ(metrics.tasks_completed, 15u);
  EXPECT_GT(metrics.wall_seconds, 0.0);
  EXPECT_GE(metrics.busy_seconds, 0.0);
}

TEST(Runner, ProgressEventsAreStrictlyMonotoneUnderThreads) {
  // Regression: events must arrive serialized and in counter order — the
  // `completed` field and the bundled metrics snapshot observed by the
  // callback must both be strictly increasing, at any thread count.
  trace::ExperimentRunner runner({.threads = 8});
  std::size_t last_completed = 0;       // callback is serialized: no atomics
  std::size_t last_tasks_completed = 0;
  bool monotone = true;
  runner.on_progress([&](const trace::TaskEvent& ev) {
    monotone = monotone && ev.completed == last_completed + 1 &&
               ev.metrics.tasks_completed > last_tasks_completed;
    last_completed = ev.completed;
    last_tasks_completed = ev.metrics.tasks_completed;
  });

  trace::MrSweepConfig sweep = determinism_sweep();
  sweep.ns = {1, 2, 4, 8, 16, 32};
  sweep.repetitions = 4;
  runner.run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1), sweep);

  EXPECT_TRUE(monotone);
  EXPECT_EQ(last_completed, 6u * 4u);
  EXPECT_EQ(last_tasks_completed, 6u * 4u);
}

TEST(Runner, ProgressCallbackMayCallMetrics) {
  // Regression: metrics() used to share the mutex held during callback
  // delivery, so a callback reading the aggregate counters deadlocked.
  trace::ExperimentRunner runner({.threads = 4});
  bool consistent = true;
  runner.on_progress([&](const trace::TaskEvent& ev) {
    const auto live = runner.metrics();  // must not deadlock
    // Another task may have finished its simulator run, but its event has
    // not been delivered yet: the live counter can only be >= the snapshot.
    consistent = consistent &&
                 live.tasks_completed >= ev.metrics.tasks_completed;
  });
  runner.run_mr_sweep(wl::sort_spec(), sim::default_emr_cluster(1),
                      determinism_sweep());
  EXPECT_TRUE(consistent);
}

TEST(Runner, RejectsInvalidSweeps) {
  trace::ExperimentRunner runner({.threads = 2});
  const auto base = sim::default_emr_cluster(1);
  trace::MrSweepConfig sweep = determinism_sweep();
  sweep.ns = {};
  EXPECT_THROW(runner.run_mr_sweep(wl::sort_spec(), base, sweep),
               std::invalid_argument);
  sweep = determinism_sweep();
  sweep.repetitions = 0;
  EXPECT_THROW(runner.run_mr_sweep(wl::sort_spec(), base, sweep),
               std::invalid_argument);
}

TEST(RunnerConfig, ParsesThreadsFlag) {
  const char* argv1[] = {"prog", "--threads", "6"};
  EXPECT_EQ(trace::runner_config_from_args(3, const_cast<char**>(argv1))
                .threads,
            6u);
  const char* argv2[] = {"prog", "--threads=9"};
  EXPECT_EQ(trace::runner_config_from_args(2, const_cast<char**>(argv2))
                .threads,
            9u);
  const char* argv3[] = {"prog"};
  EXPECT_EQ(trace::runner_config_from_args(1, const_cast<char**>(argv3))
                .threads,
            0u);
}

}  // namespace
}  // namespace ipso
