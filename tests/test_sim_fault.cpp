#include "sim/fault.h"

#include "mapreduce/engine.h"
#include "sim/cluster.h"
#include "spark/engine.h"
#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "workloads/bayes.h"
#include "workloads/sort.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <stdexcept>
#include <vector>

namespace ipso {
namespace {

using sim::FaultModel;
using sim::FaultModelParams;
using sim::FaultStats;
using sim::TaskFaultOutcome;

FaultModelParams faulty(double p) {
  FaultModelParams params;
  params.task_failure_prob = p;
  return params;
}

TEST(FaultParams, ValidateRejectsBadValues) {
  EXPECT_NO_THROW(FaultModelParams{}.validate());
  EXPECT_THROW(faulty(-0.1).validate(), std::invalid_argument);
  EXPECT_THROW(faulty(1.0).validate(), std::invalid_argument);
  FaultModelParams bad_mult;
  bad_mult.spill_failure_multiplier = 0.5;
  EXPECT_THROW(bad_mult.validate(), std::invalid_argument);
  FaultModelParams bad_frac;
  bad_frac.speculation_fraction = 1.5;
  EXPECT_THROW(bad_frac.validate(), std::invalid_argument);
}

TEST(FaultModel, ActiveOnlyWithFailuresOrSpeculation) {
  EXPECT_FALSE(FaultModel({}, 1).active());
  EXPECT_TRUE(FaultModel(faulty(0.1), 1).active());
  FaultModelParams spec;
  spec.speculation = true;
  EXPECT_TRUE(FaultModel(spec, 1).active());
}

TEST(FaultModel, DrawsAreDeterministicPerSeedStageTaskAttempt) {
  const FaultModel a(faulty(0.5), 42);
  const FaultModel b(faulty(0.5), 42);
  const FaultModel other_seed(faulty(0.5), 43);
  std::size_t diffs = 0;
  for (std::uint64_t stage = 0; stage < 3; ++stage) {
    for (std::uint64_t task = 0; task < 64; ++task) {
      for (std::uint64_t attempt = 0; attempt < 4; ++attempt) {
        const bool fa = a.attempt_fails(stage, task, attempt, false);
        EXPECT_EQ(fa, a.attempt_fails(stage, task, attempt, false));
        EXPECT_EQ(fa, b.attempt_fails(stage, task, attempt, false));
        if (fa != other_seed.attempt_fails(stage, task, attempt, false)) {
          ++diffs;
        }
      }
    }
  }
  // A different job seed yields a genuinely different failure schedule.
  EXPECT_GT(diffs, 100u);
}

TEST(FaultModel, FailureRateMatchesProbability) {
  const double p = 0.2;
  const FaultModel m(faulty(p), 7);
  std::size_t failures = 0;
  constexpr std::size_t kDraws = 100000;
  for (std::uint64_t task = 0; task < kDraws; ++task) {
    failures += m.attempt_fails(0, task, 0, false) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(failures) / kDraws, p, 5e-3);
}

TEST(FaultModel, SpillMultiplierAmplifiesFailures) {
  FaultModelParams params = faulty(0.05);
  params.spill_failure_multiplier = 4.0;
  const FaultModel m(params, 7);
  std::size_t clean = 0, spilled = 0;
  for (std::uint64_t task = 0; task < 20000; ++task) {
    clean += m.attempt_fails(0, task, 0, false) ? 1 : 0;
    spilled += m.attempt_fails(0, task, 0, true) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(spilled) / clean, 4.0, 0.5);
}

TEST(FaultModel, RunTaskCleanPathIsExactlyTheAttempt) {
  const FaultModel m(FaultModelParams{}, 1);
  const auto out = m.run_task(2.5, 0, 0, false);
  EXPECT_DOUBLE_EQ(out.clean, 2.5);
  EXPECT_DOUBLE_EQ(out.duration, 2.5);
  EXPECT_DOUBLE_EQ(out.busy, 2.5);
  EXPECT_EQ(out.failed_attempts, 0u);
  EXPECT_FALSE(out.exhausted);
}

TEST(FaultModel, RunTaskChargesOneFullAttemptPerFailure) {
  const FaultModel m(faulty(0.6), 3);
  std::size_t total_failures = 0;
  for (std::uint64_t task = 0; task < 256; ++task) {
    const auto out = m.run_task(1.0, 0, task, false);
    EXPECT_DOUBLE_EQ(out.duration, 1.0 * (1 + out.failed_attempts));
    EXPECT_DOUBLE_EQ(out.busy, out.duration);
    EXPECT_LE(out.failed_attempts, m.params().max_task_retries);
    if (out.exhausted) {
      EXPECT_EQ(out.failed_attempts, m.params().max_task_retries);
    }
    total_failures += out.failed_attempts;
  }
  EXPECT_GT(total_failures, 0u);
}

TEST(FaultModel, HighFailureRateExhaustsRetryBudgets) {
  const FaultModel m(faulty(0.95), 5);
  std::size_t exhausted = 0;
  for (std::uint64_t task = 0; task < 256; ++task) {
    exhausted += m.run_task(1.0, 0, task, false).exhausted ? 1 : 0;
  }
  // P(exhausted) = 0.95^4 ~ 0.81 per task.
  EXPECT_GT(exhausted, 128u);
}

TaskFaultOutcome plain_task(double duration) {
  TaskFaultOutcome t;
  t.clean = duration;
  t.duration = duration;
  t.busy = duration;
  return t;
}

TEST(Speculation, BackupWinsAgainstExtremeStraggler) {
  FaultModelParams params;
  params.speculation = true;
  params.speculation_fraction = 0.25;
  const FaultModel m(params, 1);
  std::vector<TaskFaultOutcome> cohort{plain_task(1.0), plain_task(1.0),
                                       plain_task(1.0), plain_task(10.0)};
  const std::vector<std::uint64_t> ids{0, 1, 2, 3};
  m.apply_speculation(cohort, 0, ids, false, [](std::size_t) { return 1.0; });
  // Only the straggler gets a backup; it launches at the cutoff (1.0) and
  // finishes at 2.0, beating the original's 10.0.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(cohort[i].speculated);
    EXPECT_DOUBLE_EQ(cohort[i].duration, 1.0);
  }
  EXPECT_TRUE(cohort[3].speculated);
  EXPECT_TRUE(cohort[3].backup_won);
  EXPECT_DOUBLE_EQ(cohort[3].duration, 2.0);
  // The original ran until the backup's finish: busy = 2.0 + 1.0.
  EXPECT_DOUBLE_EQ(cohort[3].busy, 3.0);
}

TEST(Speculation, OriginalWinsAgainstSlowBackup) {
  FaultModelParams params;
  params.speculation = true;
  params.speculation_fraction = 0.25;
  const FaultModel m(params, 1);
  std::vector<TaskFaultOutcome> cohort{plain_task(1.0), plain_task(1.0),
                                       plain_task(1.0), plain_task(10.0)};
  const std::vector<std::uint64_t> ids{0, 1, 2, 3};
  m.apply_speculation(cohort, 0, ids, false, [](std::size_t) { return 20.0; });
  EXPECT_TRUE(cohort[3].speculated);
  EXPECT_FALSE(cohort[3].backup_won);
  EXPECT_DOUBLE_EQ(cohort[3].duration, 10.0);
  // The killed backup ran from the cutoff (1.0) to the original's finish.
  EXPECT_DOUBLE_EQ(cohort[3].busy, 10.0 + 9.0);
}

TEST(Speculation, BackupWinRescuesExhaustedTask) {
  FaultModelParams params;
  params.speculation = true;
  params.speculation_fraction = 0.5;
  const FaultModel m(params, 1);
  std::vector<TaskFaultOutcome> cohort{plain_task(1.0), plain_task(8.0)};
  cohort[1].exhausted = true;
  const std::vector<std::uint64_t> ids{0, 1};
  m.apply_speculation(cohort, 0, ids, false, [](std::size_t) { return 1.0; });
  EXPECT_TRUE(cohort[1].backup_won);
  EXPECT_FALSE(cohort[1].exhausted);  // no stage rollback needed anymore
}

TEST(Speculation, AccumulateCountsCopiesWinsAndWaste) {
  std::vector<TaskFaultOutcome> cohort{plain_task(1.0), plain_task(4.0)};
  cohort[1].speculated = true;
  cohort[1].backup_won = true;
  cohort[1].busy = 5.0;
  cohort[1].failed_attempts = 2;
  FaultStats stats;
  FaultModel::accumulate(cohort, &stats);
  EXPECT_EQ(stats.failed_attempts, 2u);
  EXPECT_EQ(stats.speculative_copies, 1u);
  EXPECT_EQ(stats.backup_wins, 1u);
  EXPECT_DOUBLE_EQ(stats.wasted_seconds, 1.0);
}

// --- Engine integration --------------------------------------------------

TEST(MrFaults, FailuresSlowTheJobAndChargeWo) {
  mr::MrEngine engine(sim::default_emr_cluster(16));
  mr::MrJobConfig job;
  job.num_tasks = 16;
  job.seed = 3;
  const auto clean = engine.run_parallel(wl::sort_spec(), job);
  job.faults.task_failure_prob = 0.3;
  const auto hurt = engine.run_parallel(wl::sort_spec(), job);
  EXPECT_GT(hurt.makespan, clean.makespan);
  EXPECT_GT(hurt.faults.failed_attempts, 0u);
  EXPECT_GT(hurt.faults.wasted_seconds, 0.0);
  EXPECT_EQ(clean.faults.failed_attempts, 0u);
  EXPECT_DOUBLE_EQ(clean.faults.wasted_seconds, 0.0);
}

TEST(MrFaults, DisabledFaultsAreBitIdenticalToDefault) {
  mr::MrEngine engine(sim::default_emr_cluster(8));
  mr::MrJobConfig job;
  job.num_tasks = 8;
  job.seed = 11;
  const auto a = engine.run_parallel(wl::sort_spec(), job);
  job.faults.speculation_fraction = 0.5;  // inert without speculation=true
  const auto b = engine.run_parallel(wl::sort_spec(), job);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.sum_task_time, b.sum_task_time);
  EXPECT_EQ(a.max_task_time, b.max_task_time);
}

TEST(MrFaults, RollbackDoublesTheMapPhase) {
  mr::MrEngine engine(sim::default_emr_cluster(8));
  mr::MrJobConfig job;
  job.num_tasks = 8;
  job.seed = 5;
  job.faults.task_failure_prob = 0.9;
  job.faults.max_task_retries = 1;
  const auto r = engine.run_parallel(wl::sort_spec(), job);
  EXPECT_TRUE(r.rolled_back);
  EXPECT_GE(r.faults.rollbacks, 1u);
  EXPECT_GT(r.faults.wasted_seconds, 0.0);
}

TEST(SparkFaults, SpeculationTamesStragglersOnAverage) {
  sim::ClusterConfig cluster = sim::default_emr_cluster(8);
  cluster.straggler.enabled = true;
  cluster.straggler.cap = 6.0;
  spark::SparkEngineParams plain;
  spark::SparkEngineParams speculative;
  speculative.faults.speculation = true;
  spark::SparkEngine a(cluster, plain);
  spark::SparkEngine b(cluster, speculative);
  const auto app = wl::bayes_app();
  double sum_plain = 0.0, sum_spec = 0.0;
  std::size_t copies = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    spark::SparkJobConfig job;
    job.total_tasks = 64;
    job.executors = 8;
    job.seed = seed;
    const auto ra = a.run(app, job);
    const auto rb = b.run(app, job);
    sum_plain += ra.makespan;
    sum_spec += rb.makespan;
    copies += rb.faults.speculative_copies;
  }
  EXPECT_GT(copies, 0u);
  EXPECT_LT(sum_spec, sum_plain);
}

// --- The tentpole guarantee: fault-injected sweeps stay bit-identical
// across runner thread counts, because every failure draw is a pure
// function of (seed, stage, task, attempt).

void expect_fault_stats_equal(const FaultStats& a, const FaultStats& b) {
  EXPECT_EQ(a.failed_attempts, b.failed_attempts);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_EQ(a.speculative_copies, b.speculative_copies);
  EXPECT_EQ(a.backup_wins, b.backup_wins);
  EXPECT_EQ(a.wasted_seconds, b.wasted_seconds);
}

TEST(FaultDeterminism, MrSweepBitIdenticalAcrossThreadCounts) {
  const auto base = sim::default_emr_cluster(1);
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8, 16};
  sweep.repetitions = 3;
  sweep.seed = 7;
  sweep.faults.task_failure_prob = 0.2;
  sweep.faults.speculation = true;

  trace::ExperimentRunner serial({.threads = 1});
  const auto reference = serial.run_mr_sweep(wl::sort_spec(), base, sweep);

  std::size_t attempts = 0;
  for (const auto& p : reference.points) attempts += p.faults.failed_attempts;
  EXPECT_GT(attempts, 0u);  // the fault path actually engaged

  trace::ExperimentRunner parallel({.threads = 8});
  const auto r = parallel.run_mr_sweep(wl::sort_spec(), base, sweep);
  ASSERT_EQ(reference.points.size(), r.points.size());
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    EXPECT_EQ(reference.points[i].parallel_time, r.points[i].parallel_time);
    EXPECT_EQ(reference.points[i].speedup, r.points[i].speedup);
    EXPECT_EQ(reference.points[i].components.wo, r.points[i].components.wo);
    expect_fault_stats_equal(reference.points[i].faults, r.points[i].faults);
  }
}

TEST(FaultDeterminism, SparkSweepBitIdenticalAcrossThreadCounts) {
  const auto base = sim::default_emr_cluster(1);
  trace::SparkSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.tasks_per_executor = 4;
  sweep.ms = {1, 2, 4, 8};
  sweep.seed = 11;
  sweep.params.faults.task_failure_prob = 0.25;
  sweep.params.faults.speculation = true;

  auto app_for = [](std::size_t) { return wl::bayes_app(); };

  trace::ExperimentRunner serial({.threads = 1});
  const auto reference = serial.run_spark_sweep(app_for, base, sweep);

  std::size_t attempts = 0;
  for (const auto& p : reference.points) attempts += p.faults.failed_attempts;
  EXPECT_GT(attempts, 0u);

  trace::ExperimentRunner parallel({.threads = 8});
  const auto r = parallel.run_spark_sweep(app_for, base, sweep);
  ASSERT_EQ(reference.points.size(), r.points.size());
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    EXPECT_EQ(reference.points[i].parallel_time, r.points[i].parallel_time);
    EXPECT_EQ(reference.points[i].speedup, r.points[i].speedup);
    expect_fault_stats_equal(reference.points[i].faults, r.points[i].faults);
  }
}

// --- CLI flag parsing ----------------------------------------------------

TEST(FaultArgs, ParsesFlagsAndIgnoresMalformedValues) {
  const char* argv[] = {"prog",        "--fail-prob", "0.1", "--speculate",
                        "--max-retries", "5"};
  const auto p = trace::fault_params_from_args(
      static_cast<int>(std::size(argv)), const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(p.task_failure_prob, 0.1);
  EXPECT_TRUE(p.speculation);
  EXPECT_EQ(p.max_task_retries, 5u);

  const char* argv2[] = {"prog", "--fail-prob=2.0", "--speculate=0.4"};
  const auto q = trace::fault_params_from_args(
      static_cast<int>(std::size(argv2)), const_cast<char**>(argv2));
  EXPECT_DOUBLE_EQ(q.task_failure_prob, 0.0);  // out of range: ignored
  EXPECT_TRUE(q.speculation);
  EXPECT_DOUBLE_EQ(q.speculation_fraction, 0.4);
}

}  // namespace
}  // namespace ipso
