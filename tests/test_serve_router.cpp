/// Tests for the sharded serving tier: placement policies (determinism,
/// distribution, consistent-hash redistribution bound, affinity
/// stickiness) and the Router end-to-end against real replica processes'
/// in-process equivalents — including the contract that routing through
/// the tier is byte-invisible: every deterministic op answers exactly the
/// bytes a single ipso_serve would have produced, on both protocols and
/// under every placement policy.

#include "serve/client.h"
#include "serve/engine.h"
#include "serve/placement.h"
#include "serve/proto.h"
#include "serve/router.h"
#include "serve/server.h"
#include "stats/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace ipso::serve {
namespace {

/// A deterministic fit request; the seed perturbs EX so distinct seeds are
/// distinct cache keys (and distinct routing keys).
std::string fit_request(int seed, const char* op = "fit") {
  const double t1 = 100.0 + seed;
  std::ostringstream os;
  os << "{\"op\":\"" << op
     << "\",\"workload\":\"fixed-time\",\"eta\":0.99,\"ex\":[";
  bool first = true;
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    if (!first) os << ",";
    first = false;
    os << "[" << n << "," << (t1 / n + 0.5) << "]";
  }
  os << "],\"in\":[";
  first = true;
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    if (!first) os << ",";
    first = false;
    os << "[" << n << "," << (0.4 + 1.05 * n) << "]";
  }
  os << "]}";
  return os.str();
}

std::vector<std::string> test_keys(std::size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back("key-" + std::to_string(i * 2654435761u));
  }
  return keys;
}

// --------------------------------------------------------------- placement

TEST(Placement, FactoryKnowsAllPoliciesAndRejectsUnknown) {
  for (const char* name : {"hash", "range", "affinity"}) {
    auto policy = make_placement(name, 3);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_STREQ(policy->name(), name);
    EXPECT_EQ(policy->replicas(), 3u);
  }
  EXPECT_EQ(make_placement("round-robin", 3), nullptr);
  EXPECT_EQ(make_placement("", 3), nullptr);
}

TEST(Placement, MappingIsDeterministicAndInRange) {
  const auto keys = test_keys(500);
  for (const char* name : {"hash", "range", "affinity"}) {
    auto policy = make_placement(name, 5);
    ASSERT_NE(policy, nullptr);
    for (const std::string& key : keys) {
      const std::size_t first = policy->replica_for(key);
      EXPECT_LT(first, 5u);
      // Same key, same replica — on this instance and on a fresh one
      // (affinity pins are per-instance, so only same-instance repeats are
      // guaranteed sticky; hash and range must agree across instances).
      EXPECT_EQ(policy->replica_for(key), first) << name << " " << key;
    }
  }
  // Stateless policies are deterministic across instances too (a router
  // restart keeps the same routing table).
  for (const char* name : {"hash", "range"}) {
    auto a = make_placement(name, 7);
    auto b = make_placement(name, 7);
    for (const std::string& key : keys) {
      EXPECT_EQ(a->replica_for(key), b->replica_for(key)) << name;
    }
  }
}

TEST(Placement, HashAndRangeSpreadKeysAcrossAllReplicas) {
  const auto keys = test_keys(3000);
  for (const char* name : {"hash", "range"}) {
    auto policy = make_placement(name, 3);
    std::vector<std::size_t> counts(3, 0);
    for (const std::string& key : keys) ++counts[policy->replica_for(key)];
    for (std::size_t r = 0; r < counts.size(); ++r) {
      // Perfect balance is 1000 per replica; 128 vnodes keeps consistent
      // hashing well within 2x of fair share.
      EXPECT_GT(counts[r], keys.size() / 6) << name << " replica " << r;
      EXPECT_LT(counts[r], keys.size() / 2) << name << " replica " << r;
    }
  }
}

TEST(Placement, ConsistentHashBoundsRedistributionOnReplicaAdd) {
  // Growing the tier 5 -> 6 should move about 1/6 of the keys (the new
  // replica's fair share) and certainly far fewer than a naive mod-N
  // rehash, which moves ~5/6. Range partitioning is the contrast: block
  // boundaries all shift, so most keys move.
  const auto keys = test_keys(2000);
  ConsistentHashPlacement five(5);
  ConsistentHashPlacement six(6);
  std::size_t moved = 0;
  for (const std::string& key : keys) {
    if (five.replica_for(key) != six.replica_for(key)) ++moved;
  }
  const double moved_frac =
      static_cast<double>(moved) / static_cast<double>(keys.size());
  EXPECT_GT(moved_frac, 0.05) << "the new replica must take over some keys";
  EXPECT_LT(moved_frac, 0.35) << "consistent hashing must not reshuffle "
                                 "the tier on a single replica add";
}

TEST(Placement, AffinityPinsRoundRobinThenSticks) {
  AffinityPlacement affinity(3);
  // First sight of each distinct key walks the replicas round-robin.
  EXPECT_EQ(affinity.replica_for("k0"), 0u);
  EXPECT_EQ(affinity.replica_for("k1"), 1u);
  EXPECT_EQ(affinity.replica_for("k2"), 2u);
  EXPECT_EQ(affinity.replica_for("k3"), 0u);
  // Every later sight returns the pin, regardless of arrival order.
  EXPECT_EQ(affinity.replica_for("k2"), 2u);
  EXPECT_EQ(affinity.replica_for("k0"), 0u);
  EXPECT_EQ(affinity.pins(), 4u);
}

TEST(Placement, AffinityStaysStickyUnderZipfSkew) {
  // A Zipf(1.2)-skewed stream over 64 keys: hot keys repeat constantly,
  // cold keys trickle. Every occurrence of a key must land on the replica
  // its first occurrence was pinned to.
  constexpr std::size_t kKeys = 64;
  std::vector<double> cdf(kKeys);
  double mass = 0.0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    mass += 1.0 / std::pow(static_cast<double>(i + 1), 1.2);
    cdf[i] = mass;
  }
  for (double& c : cdf) c /= mass;

  AffinityPlacement affinity(4);
  std::map<std::string, std::size_t> first_seen;
  stats::Rng rng(0x5eed);
  for (int draw = 0; draw < 20000; ++draw) {
    const double u = rng.uniform();
    std::size_t idx = 0;
    while (idx + 1 < kKeys && cdf[idx] < u) ++idx;
    const std::string key = "zipf-" + std::to_string(idx);
    const std::size_t replica = affinity.replica_for(key);
    const auto [it, inserted] = first_seen.emplace(key, replica);
    if (!inserted) {
      ASSERT_EQ(replica, it->second)
          << "key " << key << " migrated off its first-serving replica";
    }
  }
  EXPECT_LE(affinity.pins(), kKeys);
}

TEST(Placement, AffinityPinTableIsBounded) {
  AffinityPlacement affinity(2, /*max_pins=*/16);
  for (int i = 0; i < 1000; ++i) {
    (void)affinity.replica_for("one-shot-" + std::to_string(i));
  }
  EXPECT_LE(affinity.pins(), 16u);
  // A hot key touched throughout survives the churn and keeps its pin.
  AffinityPlacement hot(2, /*max_pins=*/16);
  const std::size_t pinned = hot.replica_for("hot");
  for (int i = 0; i < 1000; ++i) {
    (void)hot.replica_for("cold-" + std::to_string(i));
    EXPECT_EQ(hot.replica_for("hot"), pinned) << "iteration " << i;
  }
}

// ------------------------------------------------------------------ router

/// One in-process replica: engine + TCP front end, as ipso_serve runs it.
struct ReplicaStack {
  explicit ReplicaStack(std::size_t threads = 1) {
    ServeConfig cfg;
    cfg.threads = threads;
    engine = std::make_unique<ServeEngine>(cfg);
    server = std::make_unique<TcpServer>(*engine);
  }
  std::unique_ptr<ServeEngine> engine;
  std::unique_ptr<TcpServer> server;
};

/// The deterministic-op corpus: every op whose response must be a pure
/// function of the request, plus a parse error (stats is checked
/// separately — it is counters, not a function of the request).
std::vector<std::string> deterministic_corpus() {
  return {
      "{\"op\":\"ping\",\"id\":\"p1\"}",
      fit_request(1),
      fit_request(2, "classify"),
      fit_request(3, "predict"),
      fit_request(4, "recommend"),
      fit_request(1),  // repeat: a cache hit somewhere in the tier
      "{\"op\":\"diagnose\",\"workload\":\"fixed-time\",\"eta\":0.99,"
      "\"speedup\":[[1,1],[2,1.9],[4,3.4],[8,5.1],[16,6.0]]}",
      "{\"op\":\"classify\",\"params\":{\"workload\":\"fixed-time\","
      "\"eta\":0.95,\"alpha\":1,\"delta\":0.1,\"beta\":0.2,"
      "\"gamma\":0.01}}",
      "this is not json",
      fit_request(5),
      fit_request(6),
      fit_request(7),
  };
}

TEST(Router, StartRejectsBadConfig) {
  {
    RouterConfig cfg;  // no replicas
    Router router(cfg);
    auto started = router.start();
    ASSERT_FALSE(started.has_value());
    EXPECT_NE(started.error().message.find("replica"), std::string::npos);
  }
  {
    RouterConfig cfg;
    cfg.replicas = {{"127.0.0.1", 1}};
    cfg.placement = "mystery";
    Router router(cfg);
    auto started = router.start();
    ASSERT_FALSE(started.has_value());
    EXPECT_NE(started.error().message.find("placement"), std::string::npos);
  }
}

TEST(Router, ResponsesByteIdenticalToSingleNodeForEveryPlacement) {
  const std::vector<std::string> corpus = deterministic_corpus();

  // Reference: one engine, driven directly (protocol-independent bytes).
  std::vector<std::string> reference;
  {
    ServeConfig cfg;
    cfg.threads = 1;
    ServeEngine engine(cfg);
    for (const std::string& req : corpus) {
      reference.push_back(engine.handle(req));
    }
  }

  for (const char* placement : {"hash", "range", "affinity"}) {
    ReplicaStack replicas[3];
    RouterConfig cfg;
    cfg.placement = placement;
    for (ReplicaStack& r : replicas) {
      ASSERT_TRUE(r.server->start().has_value());
      cfg.replicas.push_back(ReplicaEndpoint{"127.0.0.1", r.server->port()});
    }
    Router router(cfg);
    ASSERT_TRUE(router.start().has_value());

    for (const Proto proto : {Proto::kJson, Proto::kBinary}) {
      Client client(proto);
      ASSERT_TRUE(client.connect("127.0.0.1", router.port()).has_value());
      for (std::size_t i = 0; i < corpus.size(); ++i) {
        auto response = client.call(corpus[i]);
        ASSERT_TRUE(response.has_value()) << response.error().message;
        EXPECT_EQ(*response, reference[i])
            << "placement=" << placement << " proto=" << to_string(proto)
            << " request=" << corpus[i];
      }
    }

    const RouterStats s = router.stats();
    EXPECT_GT(s.routed_keyed, 0u);
    EXPECT_GT(s.routed_keyless, 0u);
    EXPECT_EQ(s.upstream_errors, 0u);
    std::size_t forwarded = 0;
    for (const std::size_t c : s.per_replica) forwarded += c;
    EXPECT_EQ(forwarded, s.routed_keyed + s.routed_keyless);
    router.shutdown();
  }
}

TEST(Router, KeyedRequestsStickToOneReplicaAcrossRepeats) {
  // The same fit key must always hit the same replica, so the tier fits
  // once and serves the rest from that replica's cache.
  ReplicaStack replicas[3];
  RouterConfig cfg;
  for (ReplicaStack& r : replicas) {
    ASSERT_TRUE(r.server->start().has_value());
    cfg.replicas.push_back(ReplicaEndpoint{"127.0.0.1", r.server->port()});
  }
  Router router(cfg);
  ASSERT_TRUE(router.start().has_value());

  Client client(Proto::kBinary);
  ASSERT_TRUE(client.connect("127.0.0.1", router.port()).has_value());
  const std::string req = fit_request(99);
  for (int i = 0; i < 8; ++i) {
    auto response = client.call(req);
    ASSERT_TRUE(response.has_value()) << response.error().message;
  }
  router.shutdown();

  std::size_t total_fits = 0;
  std::size_t replicas_with_fits = 0;
  for (ReplicaStack& r : replicas) {
    const std::size_t fits = r.engine->fits_performed();
    total_fits += fits;
    if (fits > 0) ++replicas_with_fits;
  }
  EXPECT_EQ(total_fits, 1u) << "8 identical requests must fit exactly once";
  EXPECT_EQ(replicas_with_fits, 1u);
}

TEST(Router, StatsOpIsAnsweredLocallyWithTierCounters) {
  ReplicaStack replica;
  ASSERT_TRUE(replica.server->start().has_value());
  RouterConfig cfg;
  cfg.replicas = {{"127.0.0.1", replica.server->port()}};
  cfg.placement = "affinity";
  Router router(cfg);
  ASSERT_TRUE(router.start().has_value());

  Client client(Proto::kJson);
  ASSERT_TRUE(client.connect("127.0.0.1", router.port()).has_value());
  ASSERT_TRUE(client.call("{\"op\":\"ping\"}").has_value());
  auto stats = client.call("{\"op\":\"stats\",\"id\":\"s1\"}");
  ASSERT_TRUE(stats.has_value()) << stats.error().message;
  EXPECT_NE(stats->find("\"router\":true"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"placement\":\"affinity\""), std::string::npos);
  EXPECT_NE(stats->find("\"replicas\":1"), std::string::npos);
  EXPECT_NE(stats->find("\"id\":\"s1\""), std::string::npos);
  EXPECT_NE(stats->find("\"ok\":true"), std::string::npos);
  // The ping was forwarded; the stats op itself never reached a replica.
  EXPECT_EQ(router.stats().answered_local, 1u);
}

TEST(Router, DeadReplicaAnswersUpstreamUnavailableWithoutHanging) {
  auto replica = std::make_unique<ReplicaStack>();
  ASSERT_TRUE(replica->server->start().has_value());
  RouterConfig cfg;
  cfg.replicas = {{"127.0.0.1", replica->server->port()}};
  cfg.connections_per_replica = 1;
  Router router(cfg);
  ASSERT_TRUE(router.start().has_value());

  Client client(Proto::kJson);
  ASSERT_TRUE(client.connect("127.0.0.1", router.port()).has_value());
  auto pong = client.call("{\"op\":\"ping\"}");
  ASSERT_TRUE(pong.has_value()) << pong.error().message;
  EXPECT_NE(pong->find("\"pong\":true"), std::string::npos);

  // Kill the replica. Requests routed to it must come back as structured
  // upstream_unavailable errors, echoing id and op — never a hang, never a
  // dropped connection on the router's front side.
  replica->server->shutdown();
  replica.reset();
  auto failed = client.call("{\"op\":\"ping\",\"id\":\"dead1\"}");
  ASSERT_TRUE(failed.has_value()) << failed.error().message;
  EXPECT_NE(failed->find("\"error\":\"upstream_unavailable\""),
            std::string::npos)
      << *failed;
  EXPECT_NE(failed->find("\"id\":\"dead1\""), std::string::npos);
  EXPECT_NE(failed->find("\"op\":\"ping\""), std::string::npos);
  EXPECT_GE(router.stats().upstream_errors, 1u);

  // The router front end survives: further requests still get answers.
  auto again = client.call("{\"op\":\"ping\"}");
  ASSERT_TRUE(again.has_value()) << again.error().message;
  EXPECT_NE(again->find("\"error\":\"upstream_unavailable\""),
            std::string::npos);
  router.shutdown();
}

TEST(Router, ReplicaRestartTriggersReconnect) {
  ReplicaStack first;
  ASSERT_TRUE(first.server->start().has_value());
  const std::uint16_t port = first.server->port();
  RouterConfig cfg;
  cfg.replicas = {{"127.0.0.1", port}};
  cfg.connections_per_replica = 1;
  Router router(cfg);
  ASSERT_TRUE(router.start().has_value());

  Client client(Proto::kJson);
  ASSERT_TRUE(client.connect("127.0.0.1", router.port()).has_value());
  ASSERT_TRUE(client.call("{\"op\":\"ping\"}").has_value());
  first.server->shutdown();

  // One request fails over to upstream_unavailable while the replica is
  // down; once something listens on the port again, the next batch
  // reconnects and real answers resume.
  auto down = client.call("{\"op\":\"ping\"}");
  ASSERT_TRUE(down.has_value());
  EXPECT_NE(down->find("upstream_unavailable"), std::string::npos);

  ServeConfig engine_cfg;
  engine_cfg.threads = 1;
  ServeEngine engine2(engine_cfg);
  TcpServer second(engine2, ServerConfig{"127.0.0.1", port});
  ASSERT_TRUE(second.start().has_value());
  auto back = client.call("{\"op\":\"ping\"}");
  ASSERT_TRUE(back.has_value()) << back.error().message;
  EXPECT_NE(back->find("\"pong\":true"), std::string::npos) << *back;
  EXPECT_GE(router.stats().reconnects, 2u);
  router.shutdown();
}

TEST(Router, ShutdownDrainsAndRejectsLateRequests) {
  ReplicaStack replica;
  ASSERT_TRUE(replica.server->start().has_value());
  RouterConfig cfg;
  cfg.replicas = {{"127.0.0.1", replica.server->port()}};
  Router router(cfg);
  ASSERT_TRUE(router.start().has_value());

  Client client(Proto::kBinary);
  ASSERT_TRUE(client.connect("127.0.0.1", router.port()).has_value());
  ASSERT_TRUE(client.call("{\"op\":\"ping\"}").has_value());

  router.shutdown();  // must not hang and must be idempotent
  router.shutdown();
  const RouterStats s = router.stats();
  EXPECT_EQ(s.received,
            s.routed_keyed + s.routed_keyless + s.answered_local +
                s.rejected_draining);
}

}  // namespace
}  // namespace ipso::serve
