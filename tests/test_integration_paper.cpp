#include "core/classify.h"
#include "core/diagnose.h"
#include "core/predict.h"
#include "trace/experiment.h"
#include "trace/reference_data.h"
#include "workloads/bayes.h"
#include "workloads/collab_filter.h"
#include "workloads/nweight.h"
#include "workloads/qmc_pi.h"
#include "workloads/random_forest.h"
#include "workloads/sort.h"
#include "workloads/svm.h"
#include "workloads/terasort.h"
#include "workloads/wordcount.h"

#include <gtest/gtest.h>

/// End-to-end reproduction invariants: every qualitative claim the paper
/// makes about its figures must hold for the simulated pipeline. These tests
/// are the machine-checkable core of EXPERIMENTS.md.

namespace ipso {
namespace {

trace::MrSweepResult sweep_mr(const mr::MrWorkloadSpec& spec) {
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8, 16, 32, 64, 96, 128, 160};
  sweep.repetitions = 1;
  return trace::run_mr_sweep(spec, sim::default_emr_cluster(1), sweep);
}

// --- Fig. 4(a): QMC matches Gustafson (type It, eta ~ 1)

TEST(Fig4, QmcFollowsGustafson) {
  const auto r = sweep_mr(wl::qmc_pi_spec());
  EXPECT_GT(r.factors.eta, 0.99);
  const auto gustafson = trace::law_baseline(r, WorkloadType::kFixedTime);
  for (std::size_t i = 0; i < r.speedup.size(); ++i) {
    EXPECT_NEAR(r.speedup[i].y, gustafson[i].y, 0.15 * gustafson[i].y);
  }
}

// --- Fig. 4(b): WordCount near-linear (It/IIt, benign)

TEST(Fig4, WordCountNearLinearAndUnbounded) {
  const auto r = sweep_mr(wl::wordcount_spec());
  const auto shape = judge_shape(r.speedup).value();
  EXPECT_TRUE(shape.monotone);
  EXPECT_FALSE(shape.peaked);
  EXPECT_GT(shape.tail_exponent, 0.85);
  // IN(n) ~ 1: no in-proportion scaling (paper Fig. 6).
  for (const auto& p : r.factors.in) EXPECT_LT(p.y, 1.1);
}

// --- Fig. 4(c)+(d): Sort and TeraSort deviate from Gustafson and saturate

TEST(Fig4, SortDeviatesFromGustafsonAndSaturates) {
  const auto r = sweep_mr(wl::sort_spec());
  const auto gustafson = trace::law_baseline(r, WorkloadType::kFixedTime);
  // At n = 160, Gustafson predicts ~10x more speedup than measured.
  EXPECT_GT(gustafson[9].y, 5.0 * r.speedup[9].y);
  // Bounded by ~5 (paper Fig. 4(c) levels off around 5).
  EXPECT_LT(r.speedup.max_y(), 5.5);
  EXPECT_GT(r.speedup.max_y(), 4.0);
  EXPECT_TRUE(stats::is_monotone_nondecreasing(r.speedup, 0.02));
}

TEST(Fig4, TeraSortBoundedByThree) {
  const auto r = sweep_mr(wl::terasort_spec());
  EXPECT_LT(r.speedup.max_y(),
            trace::reference::kTeraSortSpeedupBound + 0.3);
  EXPECT_GT(r.speedup.max_y(),
            trace::reference::kTeraSortSpeedupBound - 0.6);
}

// --- Fig. 4(d) detail: TeraSort's speedup surges just before the spill
// onset and falls back at it ("a small surge of the speedup around n = 15
// and then falls back before it grows again").

TEST(Fig4, TeraSortSurgeAndDipAtSpillOnset) {
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.repetitions = 1;
  for (double n = 12; n <= 20; ++n) sweep.ns.push_back(n);
  const auto r = trace::run_mr_sweep(wl::terasort_spec(),
                                     sim::default_emr_cluster(1), sweep);
  const double before = r.speedup.interpolate(15.0);
  const double at_spill = r.speedup.interpolate(16.0);
  const double later = r.speedup.interpolate(20.0);
  EXPECT_GT(before, at_spill);  // the dip
  EXPECT_GT(later, at_spill);   // then it grows again
}

// --- Fig. 5: TeraSort IN(n) is step-wise at the memory overflow

TEST(Fig5, TeraSortInternalScalingHasChangepoint) {
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.repetitions = 1;
  for (double n = 1; n <= 40; ++n) sweep.ns.push_back(n);
  const auto r = trace::run_mr_sweep(wl::terasort_spec(),
                                     sim::default_emr_cluster(1), sweep);
  const auto seg = detect_in_changepoint(r.factors.in);
  ASSERT_TRUE(seg.has_value());
  EXPECT_NEAR(seg->knot, trace::reference::kTeraSortSpillOnsetN, 3.0);
  EXPECT_NEAR(seg->left.slope, trace::reference::kTeraSortPreSpillSlope,
              0.03);
  EXPECT_NEAR(seg->right.slope, trace::reference::kTeraSortPostSpillSlope,
              0.03);
  // The burst at the onset exceeds 30% (paper: "burst by over 30%").
  const double before = r.factors.in.interpolate(15.0);
  const double after = r.factors.in.interpolate(16.0);
  EXPECT_GT(after / before, 1.3);
}

// --- Fig. 6: EX(n) ~ n for all; IN linear for Sort/TeraSort, ~1 otherwise

TEST(Fig6, ExternalScalingIsFixedTimeForAllFour) {
  for (const auto& spec : {wl::qmc_pi_spec(), wl::wordcount_spec(),
                           wl::sort_spec(), wl::terasort_spec()}) {
    const auto r = sweep_mr(spec);
    for (const auto& p : r.factors.ex) {
      EXPECT_NEAR(p.y, p.x, 0.02 * p.x) << spec.name;
    }
  }
}

TEST(Fig6, SortInternalScalingSlopeMatchesPaper) {
  const auto r = sweep_mr(wl::sort_spec());
  const auto fit = stats::fit_linear(r.factors.in);
  EXPECT_NEAR(fit.slope, trace::reference::kSortInSlope, 0.02);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(Fig6, TeraSortPostSpillLineMatchesPaper) {
  const auto r = sweep_mr(wl::terasort_spec());
  const auto tail = r.factors.in.slice_x(17, 200);
  const auto fit = stats::fit_linear(tail);
  // Paper fit: 0.23 n + 2.72 for n > 16; we accept the slope within 0.03.
  EXPECT_NEAR(fit.slope, trace::reference::kTeraSortInSlope, 0.03);
}

// --- Fig. 7: IPSO fitted at small n predicts large-n speedups

class Fig7Prediction : public ::testing::TestWithParam<const char*> {};

TEST_P(Fig7Prediction, SmallNFitPredictsLargeN) {
  const std::string which = GetParam();
  mr::MrWorkloadSpec spec;
  if (which == "QMC") spec = wl::qmc_pi_spec();
  if (which == "WordCount") spec = wl::wordcount_spec();
  if (which == "Sort") spec = wl::sort_spec();
  if (which == "TeraSort") spec = wl::terasort_spec();

  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.repetitions = 1;
  // Fit window per the paper: n <= 16, except TeraSort fitted on 16..64.
  const bool tera = which == "TeraSort";
  sweep.ns = tera ? std::vector<double>{16, 24, 32, 40, 48, 56, 64}
                  : std::vector<double>{1, 2, 4, 6, 8, 10, 12, 14, 16};
  const auto fit_sweep =
      trace::run_mr_sweep(spec, sim::default_emr_cluster(1), sweep);

  const FactorFits fits =
      fit_factors(WorkloadType::kFixedTime, fit_sweep.factors).value();
  const auto predictor = SpeedupPredictor::from_fits(fits);

  // Validate against the measured speedup at n in {96, 160}.
  trace::MrSweepConfig big;
  big.type = WorkloadType::kFixedTime;
  big.repetitions = 1;
  big.ns = {96, 160};
  const auto measured =
      trace::run_mr_sweep(spec, sim::default_emr_cluster(1), big);
  // 20% tolerance: constants that are invisible inside the small-n fit
  // window (job init, dispatch) surface at n = 160 — the paper's own
  // Fig. 7 shows the IPSO curve slightly above the measured points for
  // WordCount for the same reason.
  for (const auto& p : measured.speedup) {
    EXPECT_NEAR(predictor(p.x), p.y, 0.20 * p.y)
        << which << " at n=" << p.x;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFourCases, Fig7Prediction,
                         ::testing::Values("QMC", "WordCount", "Sort",
                                           "TeraSort"));

// --- Table I + Fig. 8: Collaborative Filtering pathology (IVs)

TEST(Fig8, PaperTableOneYieldsGammaTwoAndPeakNearSixty) {
  // Run IPSO's own pipeline on the paper's published Table I numbers.
  const auto wo = trace::reference::cf_wo_series();
  stats::Series wp("Wp");
  for (const auto& p : wo) wp.add(p.x, trace::reference::kCfTp1);
  const auto q = q_series_from_workloads(wo, wp).value();
  const auto qfit = stats::fit_power(q);
  EXPECT_NEAR(qfit.exponent, 2.0, 0.05);  // gamma = 2, as the paper derives

  AsymptoticParams params;
  params.type = WorkloadType::kFixedSize;
  params.eta = 1.0;
  params.beta = qfit.coeff;
  params.gamma = qfit.exponent;
  const auto c = classify(params);
  EXPECT_EQ(c.type, ScalingType::kIVs);
  EXPECT_NEAR(c.peak_n, trace::reference::kCfPeakN, 15.0);
  EXPECT_NEAR(c.peak_speedup, trace::reference::kCfPeakSpeedup, 6.0);
}

TEST(Fig8, SimulatedCfPeaksAndFalls) {
  trace::SparkSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;  // CF runs one task per node
  sweep.tasks_per_executor = 1;           // but the *workload* is fixed-size
  sweep.ms = {1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 120};
  sweep.params.first_wave_overhead = 0.45;
  const auto r = trace::run_spark_sweep(
      [](std::size_t n) { return wl::collab_filter_app(n); },
      sim::default_emr_cluster(1), sweep);
  EXPECT_TRUE(stats::is_peaked(r.speedup));
  EXPECT_NEAR(r.speedup.argmax_x(), trace::reference::kCfPeakN, 20.0);
  EXPECT_NEAR(r.speedup.max_y(), trace::reference::kCfPeakSpeedup, 6.0);
  // Amdahl (eta = 1) would predict S = n: off by an order of magnitude.
  EXPECT_GT(120.0, 4.0 * r.speedup.interpolate(120.0));
}

// --- Fig. 9: Spark fixed-time dimension: N/m = 4 > 2 > 1 and 8 < 4

sim::ClusterConfig spark_cluster() {
  auto cfg = sim::default_emr_cluster(1);
  cfg.scheduler.contention_coeff = 5e-4;  // centralized-scheduler contention
  cfg.scheduler.contention_exponent = 1.0;
  return cfg;
}

class Fig9Ordering : public ::testing::TestWithParam<int> {};

TEST_P(Fig9Ordering, PerExecutorLoadOrdering) {
  spark::SparkAppSpec app;
  switch (GetParam()) {
    case 0: app = wl::bayes_app(); break;
    case 1: app = wl::random_forest_app(); break;
    case 2: app = wl::svm_app(); break;
    default: app = wl::nweight_app(); break;
  }
  auto speedup_at = [&](std::size_t k, double m) {
    trace::SparkSweepConfig sweep;
    sweep.type = WorkloadType::kFixedTime;
    sweep.tasks_per_executor = k;
    sweep.ms = {m};
    return trace::run_spark_sweep([&](std::size_t) { return app; },
                                  spark_cluster(), sweep)
        .speedup[0]
        .y;
  };
  for (double m : {16.0, 32.0, 64.0}) {
    const double s1 = speedup_at(1, m);
    const double s2 = speedup_at(2, m);
    const double s4 = speedup_at(4, m);
    const double s8 = speedup_at(8, m);
    EXPECT_GT(s2, s1) << app.name << " m=" << m;
    EXPECT_GT(s4, s2) << app.name << " m=" << m;
    EXPECT_LT(s8, s4) << app.name << " m=" << m;  // RAM pressure
  }
}

INSTANTIATE_TEST_SUITE_P(AllFourApps, Fig9Ordering,
                         ::testing::Values(0, 1, 2, 3));

// --- Fig. 10: Spark fixed-size dimension peaks and falls (IVs)

class Fig10Peak : public ::testing::TestWithParam<int> {};

TEST_P(Fig10Peak, FixedSizeSpeedupPeaksThenFalls) {
  spark::SparkAppSpec app;
  switch (GetParam()) {
    case 0: app = wl::bayes_app(); break;
    case 1: app = wl::random_forest_app(); break;
    case 2: app = wl::svm_app(); break;
    default: app = wl::nweight_app(); break;
  }
  trace::SparkSweepConfig sweep;
  sweep.type = WorkloadType::kFixedSize;
  sweep.total_tasks = 192;
  sweep.ms = {1, 2, 4, 8, 16, 32, 48, 64, 96, 128, 160, 192};
  const auto r = trace::run_spark_sweep([&](std::size_t) { return app; },
                                        spark_cluster(), sweep);
  EXPECT_TRUE(stats::is_peaked(r.speedup)) << app.name;
  const double peak_m = r.speedup.argmax_x();
  EXPECT_GT(peak_m, 8.0) << app.name;
  EXPECT_LT(peak_m, 160.0) << app.name;
}

INSTANTIATE_TEST_SUITE_P(AllFourApps, Fig10Peak,
                         ::testing::Values(0, 1, 2, 3));

// --- Section V diagnosis: the six-step procedure names every case

TEST(Diagnosis, NineCasesGetTheExpectedTypes) {
  // MapReduce fixed-time cases.
  {
    const auto r = sweep_mr(wl::qmc_pi_spec());
    const auto d =
        diagnose(WorkloadType::kFixedTime, r.speedup, r.factors).value();
    EXPECT_EQ(shape_of(d.best_guess), GrowthShape::kLinear);
  }
  {
    const auto r = sweep_mr(wl::sort_spec());
    const auto d =
        diagnose(WorkloadType::kFixedTime, r.speedup, r.factors).value();
    EXPECT_EQ(d.best_guess, ScalingType::kIIIt1);  // in-proportion bound
  }
  {
    const auto r = sweep_mr(wl::terasort_spec());
    const auto d =
        diagnose(WorkloadType::kFixedTime, r.speedup, r.factors).value();
    EXPECT_EQ(shape_of(d.best_guess), GrowthShape::kBounded);
  }
  // Collaborative Filtering (fixed-size pathology).
  {
    trace::SparkSweepConfig sweep;
    sweep.type = WorkloadType::kFixedTime;
    sweep.tasks_per_executor = 1;
    sweep.ms = {1, 10, 30, 60, 90, 120};
    sweep.params.first_wave_overhead = 0.45;
    const auto r = trace::run_spark_sweep(
        [](std::size_t n) { return wl::collab_filter_app(n); },
        sim::default_emr_cluster(1), sweep);
    const auto d = diagnose(WorkloadType::kFixedSize, r.speedup).value();
    EXPECT_EQ(d.best_guess, ScalingType::kIVs);
  }
}

}  // namespace
}  // namespace ipso
