/// Tests for the serving wire layer introduced with the epoll front end:
/// the FrameCodec seam (JSON lines vs binary batched frames) exercised
/// adversarially against in-memory buffers, and the negotiated protocols
/// exercised end-to-end over real sockets — including the contract that a
/// JSON-mode response and a binary-mode response for the same request are
/// byte-identical for every op.

#include "serve/client.h"
#include "serve/engine.h"
#include "serve/event_loop.h"
#include "serve/framing.h"
#include "serve/proto.h"
#include "serve/server.h"
#include "serve/transport.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace ipso::serve {
namespace {

/// A deterministic fit request; the seed perturbs EX so distinct seeds are
/// distinct cache keys.
std::string fit_request(int seed, const char* op = "fit") {
  const double t1 = 100.0 + seed;
  std::ostringstream os;
  os << "{\"op\":\"" << op
     << "\",\"workload\":\"fixed-time\",\"eta\":0.99,\"ex\":[";
  bool first = true;
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    if (!first) os << ",";
    first = false;
    os << "[" << n << "," << (t1 / n + 0.5) << "]";
  }
  os << "],\"in\":[";
  first = true;
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    if (!first) os << ",";
    first = false;
    os << "[" << n << "," << (0.4 + 1.05 * n) << "]";
  }
  os << "]}";
  return os.str();
}

std::vector<WireBatch> decode_all(FrameCodec& codec, std::string& buf) {
  std::vector<WireBatch> out;
  auto ok = codec.decode(buf, out);
  EXPECT_TRUE(ok.has_value()) << ok.error().message;
  return out;
}

// ------------------------------------------------------------ binary codec

TEST(BinaryCodec, RoundTripsBatches) {
  BinaryFrameCodec codec;
  const std::vector<std::string> records = {"{\"op\":\"ping\"}", "",
                                            std::string(1000, 'x')};
  std::string buf = codec.encode(records);
  const auto batches = decode_all(codec, buf);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_FALSE(batches[0].error_frame);
  EXPECT_EQ(batches[0].records, records);
  EXPECT_TRUE(buf.empty()) << "decode must consume the whole frame";
}

TEST(BinaryCodec, DecodesMultipleFramesFromOneBuffer) {
  BinaryFrameCodec codec;
  std::string buf = codec.encode({"a"}) + codec.encode({"b", "c"}) +
                    codec.encode({});
  const auto batches = decode_all(codec, buf);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].records, std::vector<std::string>{"a"});
  EXPECT_EQ(batches[1].records, (std::vector<std::string>{"b", "c"}));
  EXPECT_TRUE(batches[2].records.empty()) << "zero-count frames are valid";
}

TEST(BinaryCodec, ReassemblesOneBytePartialFeeds) {
  BinaryFrameCodec codec;
  const std::vector<std::string> records = {"{\"op\":\"ping\"}", "tail"};
  const std::string wire = codec.encode(records);
  std::string buf;
  std::vector<WireBatch> batches;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    buf.push_back(wire[i]);
    auto ok = codec.decode(buf, batches);
    ASSERT_TRUE(ok.has_value()) << ok.error().message;
    // No batch may surface before the last byte arrives.
    EXPECT_EQ(batches.empty(), i + 1 < wire.size());
  }
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].records, records);
}

TEST(BinaryCodec, ErrorFlagRoundTrips) {
  BinaryFrameCodec codec;
  std::string buf = codec.encode_error("{\"ok\":false}");
  const auto batches = decode_all(codec, buf);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_TRUE(batches[0].error_frame);
  EXPECT_EQ(batches[0].records, std::vector<std::string>{"{\"ok\":false}"});
}

TEST(BinaryCodec, RejectsWrongMagic) {
  BinaryFrameCodec codec;
  std::string buf = codec.encode({"x"});
  buf[1] = 'Q';
  std::vector<WireBatch> out;
  auto result = codec.decode(buf, out);
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("magic"), std::string::npos);
}

TEST(BinaryCodec, RejectsWrongVersion) {
  BinaryFrameCodec codec;
  std::string buf = codec.encode({"x"});
  buf[4] = 9;
  std::vector<WireBatch> out;
  auto result = codec.decode(buf, out);
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("version"), std::string::npos);
}

TEST(BinaryCodec, RejectsOversizedLengthPrefix) {
  BinaryFrameCodec codec(1024);
  // Header claiming a 4 GiB payload: must be rejected from the header
  // alone, before any allocation or buffering of the claimed payload.
  std::string buf(reinterpret_cast<const char*>(kFrameMagic), 4);
  buf.push_back(static_cast<char>(kFrameVersion));
  buf.push_back('\0');
  buf += std::string("\x01\x00", 2);          // count = 1
  buf += std::string("\xFF\xFF\xFF\xFF", 4);  // payload_len = 0xFFFFFFFF
  std::vector<WireBatch> out;
  auto result = codec.decode(buf, out);
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("limit"), std::string::npos);
}

TEST(BinaryCodec, RejectsCountThatCannotFitPayload) {
  BinaryFrameCodec codec;
  std::string buf(reinterpret_cast<const char*>(kFrameMagic), 4);
  buf.push_back(static_cast<char>(kFrameVersion));
  buf.push_back('\0');
  buf += std::string("\xFF\xFF", 2);          // count = 65535
  buf += std::string("\x08\x00\x00\x00", 4);  // payload_len = 8
  std::vector<WireBatch> out;
  auto result = codec.decode(buf, out);
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("cannot fit"), std::string::npos);
}

TEST(BinaryCodec, RejectsRecordOverrunningPayload) {
  BinaryFrameCodec codec;
  std::string buf = codec.encode({"abcd"});
  // Inflate the record's length prefix past the payload end.
  buf[kFrameHeaderBytes] = 0x7F;
  std::vector<WireBatch> out;
  auto result = codec.decode(buf, out);
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("overruns"), std::string::npos);
}

TEST(BinaryCodec, RejectsTrailingPayloadBytes) {
  BinaryFrameCodec codec;
  // A one-record frame whose payload_len claims 4 extra trailing bytes.
  const std::string record = "abcd";
  std::string buf(reinterpret_cast<const char*>(kFrameMagic), 4);
  buf.push_back(static_cast<char>(kFrameVersion));
  buf.push_back('\0');
  buf += std::string("\x01\x00", 2);
  const std::uint32_t payload =
      static_cast<std::uint32_t>(4 + record.size() + 4);
  buf.push_back(static_cast<char>(payload & 0xFF));
  buf += std::string("\x00\x00\x00", 3);
  buf.push_back(static_cast<char>(record.size()));
  buf += std::string("\x00\x00\x00", 3);
  buf += record;
  buf += std::string("!!!!", 4);
  std::vector<WireBatch> out;
  auto result = codec.decode(buf, out);
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("trailing"), std::string::npos);
}

TEST(BinaryCodec, PartialHeaderWaitsForMoreBytes) {
  BinaryFrameCodec codec;
  std::string buf(reinterpret_cast<const char*>(kFrameMagic), 4);
  buf.push_back(static_cast<char>(kFrameVersion));
  std::vector<WireBatch> out;
  auto result = codec.decode(buf, out);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(buf.size(), 5u) << "partial header must stay buffered";
}

// -------------------------------------------------------------- JSON codec

TEST(JsonCodec, SplitsLinesStripsCrSkipsEmpty) {
  JsonLineCodec codec;
  std::string buf = "{\"a\":1}\r\n\n{\"b\":2}\n{\"partial\":";
  const auto batches = decode_all(codec, buf);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].records, std::vector<std::string>{"{\"a\":1}"});
  EXPECT_EQ(batches[1].records, std::vector<std::string>{"{\"b\":2}"});
  EXPECT_EQ(buf, "{\"partial\":") << "incomplete line must stay buffered";
}

TEST(JsonCodec, RejectsUnboundedLine) {
  JsonLineCodec codec(64);
  std::string buf(65, 'x');  // no newline in sight
  std::vector<WireBatch> out;
  auto result = codec.decode(buf, out);
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("newline"), std::string::npos);
}

TEST(JsonCodec, EncodeJoinsWithNewlines) {
  JsonLineCodec codec;
  EXPECT_EQ(codec.encode({"a", "b"}), "a\nb\n");
  EXPECT_EQ(codec.encode_error("err"), "err\n");
}

// ------------------------------------------------------------- negotiation

TEST(Negotiation, SniffsProtocolFromFirstByte) {
  EXPECT_EQ(sniff_protocol(""), WireProto::kUnknown);
  EXPECT_EQ(sniff_protocol("{\"op\":\"ping\"}"), WireProto::kJson);
  EXPECT_EQ(sniff_protocol("\xAB"), WireProto::kBinary);
  EXPECT_EQ(make_codec(WireProto::kJson, 1024)->name(), "json");
  EXPECT_EQ(make_codec(WireProto::kBinary, 1024)->name(), "binary");
}

// --------------------------------------------------------------- over TCP

class ServeWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServeConfig cfg;
    cfg.threads = 2;
    cfg.queue_capacity = 4096;
    engine_ = std::make_unique<ServeEngine>(cfg);
    server_ = std::make_unique<TcpServer>(*engine_);
    auto started = server_->start();
    ASSERT_TRUE(started.has_value()) << started.error().message;
  }

  std::unique_ptr<ServeEngine> engine_;
  std::unique_ptr<TcpServer> server_;
};

TEST_F(ServeWireTest, JsonAndBinaryResponsesAreByteIdenticalForEveryOp) {
  // One request per op, plus a parse error. Sent sequentially on one
  // connection per protocol, so engine-side state (cache, counters) evolves
  // identically and even the stats op must answer byte-identically.
  const std::vector<std::string> requests = {
      "{\"op\":\"ping\",\"id\":\"p1\"}",
      fit_request(1),
      fit_request(2, "classify"),
      fit_request(3, "predict"),
      fit_request(4, "recommend"),
      "{\"op\":\"diagnose\",\"workload\":\"fixed-time\",\"eta\":0.99,"
      "\"speedup\":[[1,1],[2,1.9],[4,3.4],[8,5.1],[16,6.0]]}",
      "{\"op\":\"classify\",\"params\":{\"workload\":\"fixed-time\","
      "\"eta\":0.95,\"a_ex\":1,\"b_ex\":0.1,\"a_in\":0.2,\"b_in\":0.01}}",
      "this is not json",
      "{\"op\":\"stats\"}",
  };

  std::vector<std::string> json_responses;
  {
    ServeConfig cfg;
    cfg.threads = 1;
    ServeEngine engine(cfg);
    TcpServer server(engine);
    auto started = server.start();
    ASSERT_TRUE(started.has_value()) << started.error().message;
    Client client(Proto::kJson);
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()).has_value());
    for (const std::string& req : requests) {
      auto response = client.call(req);
      ASSERT_TRUE(response.has_value()) << response.error().message;
      json_responses.push_back(*response);
    }
  }
  std::vector<std::string> binary_responses;
  {
    ServeConfig cfg;
    cfg.threads = 1;
    ServeEngine engine(cfg);
    TcpServer server(engine);
    auto started = server.start();
    ASSERT_TRUE(started.has_value()) << started.error().message;
    Client client(Proto::kBinary);
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()).has_value());
    for (const std::string& req : requests) {
      auto response = client.call(req);
      ASSERT_TRUE(response.has_value()) << response.error().message;
      binary_responses.push_back(*response);
    }
  }

  ASSERT_EQ(json_responses.size(), binary_responses.size());
  for (std::size_t i = 0; i < json_responses.size(); ++i) {
    EXPECT_EQ(json_responses[i], binary_responses[i])
        << "op " << i << " diverged between protocols";
  }
  EXPECT_NE(json_responses[0].find("\"pong\":true"), std::string::npos);
  EXPECT_NE(json_responses[7].find("\"error\":\"parse_error\""),
            std::string::npos);
}

TEST_F(ServeWireTest, BinaryBatchAnswersInRequestOrder) {
  Client client(Proto::kBinary);
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).has_value());
  std::vector<std::string> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back("{\"op\":\"ping\",\"id\":\"r" + std::to_string(i) +
                      "\"}");
  }
  records.push_back("broken json");  // rejected inline, still slot-ordered
  auto responses = client.call_batch(records);
  ASSERT_TRUE(responses.has_value()) << responses.error().message;
  ASSERT_EQ(responses->size(), records.size());
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE((*responses)[static_cast<std::size_t>(i)].find(
                  "\"id\":\"r" + std::to_string(i) + "\""),
              std::string::npos)
        << "response " << i << " out of order";
  }
  EXPECT_NE(responses->back().find("\"error\":\"parse_error\""),
            std::string::npos);
}

TEST_F(ServeWireTest, PipelinedFramesComeBackInOrder) {
  Client client(Proto::kBinary);
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).has_value());
  constexpr int kFrames = 64;
  for (int i = 0; i < kFrames; ++i) {
    auto sent = client.send_batch(
        {"{\"op\":\"ping\",\"id\":\"f" + std::to_string(i) + "\"}"});
    ASSERT_TRUE(sent.has_value()) << sent.error().message;
  }
  for (int i = 0; i < kFrames; ++i) {
    auto batch = client.recv_batch(1);
    ASSERT_TRUE(batch.has_value()) << batch.error().message;
    ASSERT_EQ(batch->size(), 1u);
    EXPECT_NE(batch->front().find("\"id\":\"f" + std::to_string(i) + "\""),
              std::string::npos);
  }
}

TEST_F(ServeWireTest, ZeroCountFrameIsAnsweredWithZeroCountFrame) {
  // Client no longer emits zero-count frames (empty batches are no-ops; see
  // EmptyBatchIsANoOpOnBothProtocols), but a foreign peer may: the server
  // answers with a zero-count frame of its own and keeps the connection.
  auto fd = net::connect_tcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.has_value()) << fd.error().message;
  BinaryFrameCodec codec;
  ASSERT_TRUE(net::send_all(*fd, codec.encode({})));
  std::string buf;
  std::vector<WireBatch> batches;
  char chunk[4096];
  while (batches.empty()) {
    const net::IoResult r = net::recv_some(*fd, chunk, sizeof chunk);
    ASSERT_EQ(r.status, net::IoStatus::kOk)
        << "server closed before answering the empty frame";
    buf.append(chunk, r.bytes);
    auto ok = codec.decode(buf, batches);
    ASSERT_TRUE(ok.has_value()) << ok.error().message;
  }
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_FALSE(batches[0].error_frame);
  EXPECT_TRUE(batches[0].records.empty());
  net::close_fd(*fd);
}

TEST_F(ServeWireTest, EmptyBatchIsANoOpOnBothProtocols) {
  // Regression: call_batch({}) used to put a zero-count frame on the wire
  // in binary mode, and a pipelined JSON-mode recv_batch(0) could steal
  // records decoded for the next batch, then hang in recv. An empty batch
  // now sends nothing and returns an empty vector, and recv_batch(0)
  // returns immediately — even interleaved into a pipelined sequence.
  for (const Proto proto : {Proto::kJson, Proto::kBinary}) {
    Client client(proto);
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).has_value());
    auto responses = client.call_batch({});
    ASSERT_TRUE(responses.has_value()) << responses.error().message;
    EXPECT_TRUE(responses->empty()) << to_string(proto);

    ASSERT_TRUE(
        client.send_batch({"{\"op\":\"ping\",\"id\":\"a\"}"}).has_value());
    ASSERT_TRUE(client.send_batch({}).has_value());
    ASSERT_TRUE(
        client.send_batch({"{\"op\":\"ping\",\"id\":\"b\"}"}).has_value());
    auto first = client.recv_batch(1);
    ASSERT_TRUE(first.has_value()) << first.error().message;
    ASSERT_EQ(first->size(), 1u);
    EXPECT_NE(first->front().find("\"id\":\"a\""), std::string::npos);
    auto none = client.recv_batch(0);
    ASSERT_TRUE(none.has_value()) << none.error().message;
    EXPECT_TRUE(none->empty());
    auto second = client.recv_batch(1);
    ASSERT_TRUE(second.has_value()) << second.error().message;
    ASSERT_EQ(second->size(), 1u);
    EXPECT_NE(second->front().find("\"id\":\"b\""), std::string::npos)
        << "recv_batch(0) must not steal the next batch's records ("
        << to_string(proto) << ")";
  }
}

TEST_F(ServeWireTest, GarbageAfterMagicGetsErrorFrameAndClose) {
  auto fd = net::connect_tcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.has_value()) << fd.error().message;
  // First byte selects binary; the rest of the header is garbage (bad
  // magic continuation), which is an unrecoverable framing error.
  std::string junk = "\xAB";
  junk += std::string(32, 'Z');
  ASSERT_TRUE(net::send_all(*fd, junk));

  std::string buf;
  BinaryFrameCodec codec;
  std::vector<WireBatch> batches;
  char chunk[4096];
  while (batches.empty()) {
    const net::IoResult r = net::recv_some(*fd, chunk, sizeof chunk);
    ASSERT_EQ(r.status, net::IoStatus::kOk)
        << "server closed before sending the error frame";
    buf.append(chunk, r.bytes);
    auto ok = codec.decode(buf, batches);
    ASSERT_TRUE(ok.has_value()) << ok.error().message;
  }
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_TRUE(batches[0].error_frame);
  ASSERT_EQ(batches[0].records.size(), 1u);
  EXPECT_NE(batches[0].records[0].find("\"error\":\"protocol_error\""),
            std::string::npos);
  // And then the server closes the connection.
  const net::IoResult eof = net::recv_some(*fd, chunk, sizeof chunk);
  EXPECT_EQ(eof.status, net::IoStatus::kClosed);
  net::close_fd(*fd);
  EXPECT_GE(server_->net_stats().protocol_errors, 1u);
}

TEST_F(ServeWireTest, JsonModeProtocolErrorAnswersInlineAndCloses) {
  // A server with a 64-byte line bound (ServerConfig field 4 is
  // max_frame_bytes, which also caps JSON line length).
  TcpServer tiny_server(*engine_, ServerConfig{"127.0.0.1", 0, 1, 64});
  ASSERT_TRUE(tiny_server.start().has_value());
  auto fd2 = net::connect_tcp("127.0.0.1", tiny_server.port());
  ASSERT_TRUE(fd2.has_value()) << fd2.error().message;
  // 100 bytes with no newline exceeds the 64-byte line bound.
  ASSERT_TRUE(net::send_all(*fd2, std::string(100, 'a')));
  std::string buf;
  char chunk[4096];
  while (buf.find('\n') == std::string::npos) {
    const net::IoResult r = net::recv_some(*fd2, chunk, sizeof chunk);
    ASSERT_EQ(r.status, net::IoStatus::kOk)
        << "server closed before sending the error line";
    buf.append(chunk, r.bytes);
  }
  EXPECT_NE(buf.find("\"error\":\"protocol_error\""), std::string::npos);
  const net::IoResult eof = net::recv_some(*fd2, chunk, sizeof chunk);
  EXPECT_EQ(eof.status, net::IoStatus::kClosed);
  net::close_fd(*fd2);
}

TEST_F(ServeWireTest, MixedProtocolConnectionsShareTheFitCache) {
  Client json_client(Proto::kJson);
  Client binary_client(Proto::kBinary);
  ASSERT_TRUE(json_client.connect("127.0.0.1", server_->port()).has_value());
  ASSERT_TRUE(
      binary_client.connect("127.0.0.1", server_->port()).has_value());
  const std::string req = fit_request(42);
  auto first = json_client.call(req);
  ASSERT_TRUE(first.has_value()) << first.error().message;
  const std::size_t fits_after_first = engine_->fits_performed();
  auto second = binary_client.call(req);
  ASSERT_TRUE(second.has_value()) << second.error().message;
  EXPECT_EQ(*first, *second)
      << "cached response must be byte-identical across protocols";
  EXPECT_EQ(engine_->fits_performed(), fits_after_first)
      << "binary-mode request must hit the cache the JSON request warmed";
}

TEST_F(ServeWireTest, BackpressurePausesReadsInsteadOfBufferingUnbounded) {
  // A client with a tiny receive window that doesn't read until it has
  // sent everything: the server's write backlog must cross the (small)
  // high watermark and pause reads rather than buffer without bound.
  ServeConfig cfg;
  cfg.threads = 1;
  cfg.queue_capacity = 1 << 18;
  ServeEngine engine(cfg);
  ServerConfig server_cfg;
  server_cfg.write_high_watermark = 8 * 1024;
  server_cfg.write_low_watermark = 1024;
  TcpServer server(engine, server_cfg);
  ASSERT_TRUE(server.start().has_value());

  const int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  const int tiny = 2048;  // shrink the window before connect
  ::setsockopt(raw, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);

  // ~6 MiB of responses across 4 frames: beyond even the kernel's
  // autotuned send-buffer ceiling (tcp_wmem max, typically 4 MiB), so the
  // server cannot hide the whole backlog in the socket and must hit the
  // watermark.
  constexpr std::size_t kPings = 32768;
  constexpr std::size_t kFrames = 4;
  BinaryFrameCodec codec;
  const std::vector<std::string> records(kPings, "{\"op\":\"ping\"}");
  std::string wire;
  for (std::size_t f = 0; f < kFrames; ++f) wire += codec.encode(records);
  ASSERT_TRUE(net::send_all(raw, wire));

  // Now start reading; every response must still arrive, one frame per
  // request frame, in order.
  std::string buf;
  std::vector<WireBatch> batches;
  char chunk[8192];
  while (batches.size() < kFrames) {
    const net::IoResult r = net::recv_some(raw, chunk, sizeof chunk);
    ASSERT_EQ(r.status, net::IoStatus::kOk);
    buf.append(chunk, r.bytes);
    auto ok = codec.decode(buf, batches);
    ASSERT_TRUE(ok.has_value()) << ok.error().message;
  }
  ASSERT_EQ(batches.size(), kFrames);
  for (const WireBatch& batch : batches) {
    ASSERT_EQ(batch.records.size(), kPings);
    for (const std::string& response : batch.records) {
      ASSERT_NE(response.find("\"pong\":true"), std::string::npos);
    }
  }
  net::close_fd(raw);
  const NetStats stats = server.net_stats();
  EXPECT_GE(stats.backpressure_stalls, 1u)
      << "a stalled peer must trip the write watermark";
  server.shutdown();
}

TEST_F(ServeWireTest, NetStatsCountFramesAndBytes) {
  Client client(Proto::kBinary);
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).has_value());
  auto responses = client.call_batch(
      {"{\"op\":\"ping\"}", "{\"op\":\"ping\"}", "{\"op\":\"ping\"}"});
  ASSERT_TRUE(responses.has_value()) << responses.error().message;
  // bytes_out is counted after the send syscall, so the client can observe
  // the response a beat before the shard thread bumps the counter; stats
  // are eventually consistent, so wait for the counter rather than racing
  // it.
  NetStats stats = server_->net_stats();
  for (int spin = 0; spin < 200 && stats.bytes_out == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stats = server_->net_stats();
  }
  EXPECT_GE(stats.frames_in, 1u);
  EXPECT_GE(stats.frames_out, 1u);
  EXPECT_GE(stats.requests_in, 3u);
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
  EXPECT_GE(stats.connections_accepted, 1u);
  EXPECT_EQ(server_->connections_accepted(), stats.connections_accepted);
}

TEST(EventLoop, CrossThreadDrainRegression) {
  // Regression for an unguarded access found by thread-safety analysis:
  // EventLoopServer::started_ was a plain bool written by start() and read
  // by begin_drain()/finish(), which Router::shutdown and signal paths run
  // from other threads. It is atomic now; this test drives exactly that
  // cross-thread shape so the TSan leg of the CI matrix catches a
  // regression to the unsynchronized bool.
  ServeEngine engine((ServeConfig{}));
  EventLoopConfig cfg;
  cfg.shards = 2;
  EventLoopServer server(
      [&engine](std::string record, std::function<void(std::string)> done) {
        engine.submit_async(std::move(record), std::move(done));
      },
      cfg);
  ASSERT_TRUE(server.start().has_value());

  std::thread stopper([&server] {
    server.begin_drain();
    server.finish();
  });
  stopper.join();

  // Idempotent from the owning thread afterwards.
  server.begin_drain();
  server.finish();
}

}  // namespace
}  // namespace ipso::serve
