#include "serve/engine.h"
#include "serve/fit_cache.h"
#include "serve/proto.h"
#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <thread>

#include "core/sync.h"
#include <vector>

namespace ipso::serve {
namespace {

using namespace std::chrono_literals;

/// A fit request over factors a fixed-time fit accepts (positive IN). The
/// seed perturbs EX so distinct seeds are distinct cache keys.
std::string fit_request(int seed, const char* op = "fit") {
  const double t1 = 100.0 + seed;
  std::ostringstream os;
  os << "{\"op\":\"" << op
     << "\",\"workload\":\"fixed-time\",\"eta\":0.99,\"ex\":[";
  bool first = true;
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    if (!first) os << ",";
    first = false;
    os << "[" << n << "," << (t1 / n + 0.5) << "]";
  }
  os << "],\"in\":[";
  first = true;
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    if (!first) os << ",";
    first = false;
    os << "[" << n << "," << (0.4 + 1.05 * n) << "]";
  }
  os << "]}";
  return os.str();
}

ServeConfig threads_config(std::size_t threads) {
  ServeConfig cfg;
  cfg.threads = threads;
  return cfg;
}

bool is_ok(const std::string& response) {
  return response.find("\"ok\":true") != std::string::npos;
}

bool has_error(const std::string& response, const std::string& code) {
  return response.find("\"error\":\"" + code + "\"") != std::string::npos;
}

/// Polls `cond` for up to two seconds (TSan runs are slow).
bool eventually(const std::function<bool()>& cond) {
  for (int i = 0; i < 2000; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return false;
}

// ---------------------------------------------------------------- protocol

TEST(ServeProto, ParsesFullRequest) {
  auto parsed = parse_request(
      "{\"op\":\"predict\",\"id\":\"r7\",\"workload\":\"fixed-size\","
      "\"eta\":0.9,\"ex\":[[1,10],[2,5]],\"ns\":[1,2,4],"
      "\"knee_frac\":0.8,\"deadline_ms\":250}");
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_EQ(parsed->op, Op::kPredict);
  EXPECT_EQ(parsed->id, "r7");
  EXPECT_EQ(parsed->workload, WorkloadType::kFixedSize);
  EXPECT_DOUBLE_EQ(parsed->eta, 0.9);
  EXPECT_EQ(parsed->ex.size(), 2u);
  EXPECT_EQ(parsed->ns, (std::vector<double>{1, 2, 4}));
  EXPECT_DOUBLE_EQ(parsed->knee_frac, 0.8);
  EXPECT_DOUBLE_EQ(parsed->deadline_ms, 250.0);
}

TEST(ServeProto, RejectsMalformedAndInvalid) {
  EXPECT_FALSE(parse_request("not json").has_value());
  EXPECT_FALSE(parse_request("{\"op\":\"frobnicate\"}").has_value());
  // fit without observations is rejected before admission.
  EXPECT_FALSE(parse_request("{\"op\":\"fit\"}").has_value());
  // eta outside (0, 1].
  EXPECT_FALSE(
      parse_request("{\"op\":\"fit\",\"eta\":0,\"ex\":[[1,1]]}").has_value());
  // diagnose needs at least 3 speedup points.
  EXPECT_FALSE(
      parse_request("{\"op\":\"diagnose\",\"speedup\":[[1,1],[2,2]]}")
          .has_value());
}

TEST(ServeProto, ResponsesEchoIdAndOp) {
  Request req;
  req.op = Op::kPing;
  req.id = "abc";
  EXPECT_EQ(ok_response(req, "{\"pong\":true}"),
            "{\"id\":\"abc\",\"op\":\"ping\",\"ok\":true,"
            "\"result\":{\"pong\":true}}");
  EXPECT_EQ(error_response("abc", Op::kFit, "overloaded", "queue full"),
            "{\"id\":\"abc\",\"op\":\"fit\",\"ok\":false,"
            "\"error\":\"overloaded\",\"message\":\"queue full\"}");
}

// --------------------------------------------------------------- fit cache

TEST(FitCache, CanonicalKeyIsBitExact) {
  stats::Series ex("ex");
  ex.add(1, 10.0);
  stats::Series in("in"), q("q");
  const auto key = [&](double eta) {
    return canonical_fit_key(WorkloadType::kFixedTime, eta, ex, in, q);
  };
  EXPECT_EQ(key(0.3), key(0.3));
  // 0.1 + 0.2 != 0.3 in doubles: the key sees the exact bits.
  EXPECT_NE(key(0.1 + 0.2), key(0.3));
  EXPECT_NE(
      canonical_fit_key(WorkloadType::kFixedSize, 0.3, ex, in, q), key(0.3));
  // Moving a point between series changes the key even if the multiset of
  // doubles is identical.
  stats::Series in2("in");
  in2.add(1, 10.0);
  stats::Series ex2("ex");
  EXPECT_NE(canonical_fit_key(WorkloadType::kFixedTime, 0.3, ex2, in2, q),
            key(0.3));
}

TEST(FitCache, HitsMissesAndEviction) {
  FitCache cache(2);
  const auto compute = [] { return FitOutcome{FitError::kNotMeasured}; };
  EXPECT_FALSE(cache.get_or_compute("a", compute).hit);
  EXPECT_TRUE(cache.get_or_compute("a", compute).hit);
  EXPECT_FALSE(cache.get_or_compute("b", compute).hit);
  EXPECT_FALSE(cache.get_or_compute("c", compute).hit);  // evicts "a"
  EXPECT_FALSE(cache.get_or_compute("a", compute).hit);  // miss again
  const FitCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(s.size, 2u);
}

TEST(FitCache, ClearDropsReadyEntries) {
  FitCache cache(4);
  const auto compute = [] { return FitOutcome{FitError::kNotMeasured}; };
  cache.get_or_compute("a", compute);
  cache.get_or_compute("b", compute);
  EXPECT_EQ(cache.stats().size, 2u);
  cache.clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_FALSE(cache.get_or_compute("a", compute).hit);
}

TEST(FitCache, CoalescedFollowersRefreshLruRecency) {
  // Regression: a key kept hot purely by coalesced waiters used to age as
  // untouched. Capacity 2: a leader computes "a" while a follower waits on
  // it, and the wake hook inserts "b" in the window between the leader's
  // publish and the follower's recency bump. With the fix the follower's
  // serve re-fronts "a" (LRU order [a, b]), so inserting "c" evicts "b"
  // and "a" still hits; without it "a" was the eviction victim while
  // squarely in demand.
  FitCache cache(2);
  const auto instant = [] { return FitOutcome{FitError::kNotMeasured}; };
  cache.set_coalesce_wake_hook([&] { cache.get_or_compute("b", instant); });

  std::thread leader([&] {
    cache.get_or_compute("a", [&]() -> FitOutcome {
      // Hold the fit open until the follower is provably coalesced on it.
      EXPECT_TRUE(eventually([&] { return cache.stats().coalesced >= 1; }));
      return FitOutcome{FitError::kNotMeasured};
    });
  });
  std::thread follower([&] { cache.get_or_compute("a", instant); });
  leader.join();
  follower.join();
  cache.set_coalesce_wake_hook(nullptr);

  EXPECT_FALSE(cache.get_or_compute("c", instant).hit);  // evicts "b"
  EXPECT_TRUE(cache.get_or_compute("a", instant).hit)
      << "the coalesced follower's use of 'a' must count as recency";
  EXPECT_FALSE(cache.get_or_compute("b", instant).hit);  // the evictee
}

// ------------------------------------------------------------------ engine

TEST(ServeEngine, PingFitAndExplicitParamsOps) {
  ServeEngine engine(threads_config(2));
  EXPECT_TRUE(is_ok(engine.handle("{\"op\":\"ping\"}")));

  const std::string fit = engine.handle(fit_request(0));
  ASSERT_TRUE(is_ok(fit)) << fit;
  EXPECT_NE(fit.find("\"params\":"), std::string::npos);
  EXPECT_NE(fit.find("\"classification\":"), std::string::npos);

  const std::string classify = engine.handle(
      "{\"op\":\"classify\",\"params\":{\"workload\":\"fixed-time\","
      "\"eta\":0.9,\"alpha\":0.5,\"delta\":0.1,\"beta\":0,\"gamma\":0}}");
  ASSERT_TRUE(is_ok(classify)) << classify;
  EXPECT_NE(classify.find("\"type\":"), std::string::npos);

  const std::string predict = engine.handle(
      "{\"op\":\"predict\",\"ns\":[1,2,4],\"params\":{\"workload\":"
      "\"fixed-time\",\"eta\":0.9,\"alpha\":0.5,\"delta\":0.1,\"beta\":0,"
      "\"gamma\":0}}");
  ASSERT_TRUE(is_ok(predict)) << predict;
  EXPECT_NE(predict.find("[1,1]"), std::string::npos);  // S(1) == 1

  const std::string recommend = engine.handle(
      "{\"op\":\"recommend\",\"ns\":[1,2,4,8],\"params\":{\"workload\":"
      "\"fixed-time\",\"eta\":0.9,\"alpha\":0.5,\"delta\":0.1,\"beta\":0,"
      "\"gamma\":0}}");
  ASSERT_TRUE(is_ok(recommend)) << recommend;
  EXPECT_NE(recommend.find("\"best_speedup_n\":"), std::string::npos);

  EXPECT_TRUE(is_ok(engine.handle("{\"op\":\"stats\"}")));
}

TEST(ServeEngine, ParseErrorsDoNotConsumeQueueSlots) {
  ServeConfig cfg;
  cfg.threads = 1;
  cfg.queue_capacity = 1;
  ServeEngine engine(cfg);
  const std::string bad = engine.handle("{\"op\":");
  EXPECT_TRUE(has_error(bad, "parse_error"));
  const ServeStats s = engine.stats();
  EXPECT_EQ(s.parse_errors, 1u);
  // The rejected arrival still counts as received (conservation identity),
  // but the queue is untouched: a real request still fits.
  EXPECT_EQ(s.received, 1u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_TRUE(is_ok(engine.handle("{\"op\":\"ping\"}")));
}

TEST(ServeEngine, CacheHitsSkipTheFit) {
  std::atomic<int> fits{0};
  ServeConfig cfg;
  cfg.threads = 1;
  cfg.fit_hook = [&] { fits.fetch_add(1); };
  ServeEngine engine(cfg);
  const std::string first = engine.handle(fit_request(1));
  const std::string second = engine.handle(fit_request(1));
  EXPECT_EQ(first, second);
  EXPECT_EQ(fits.load(), 1);
  EXPECT_EQ(engine.fits_performed(), 1u);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
}

TEST(ServeEngine, ConcurrentIdenticalFitsCoalesceToOneFit) {
  constexpr int kClients = 4;
  ipso::sync::Mutex mu;
  ipso::sync::CondVar cv;
  bool release = false;
  std::atomic<int> fits{0};

  ServeConfig cfg;
  cfg.threads = kClients;
  cfg.fit_hook = [&] {
    fits.fetch_add(1);
    ipso::sync::MutexLock lock(mu);
    cv.wait(mu, [&] { return release; });
  };
  ServeEngine engine(cfg);

  std::vector<std::future<std::string>> responses;
  for (int i = 0; i < kClients; ++i) {
    responses.push_back(engine.submit(fit_request(7)));
  }
  // One leader is inside the (held) fit; every other worker reaches the
  // cache and parks as a follower.
  ASSERT_TRUE(eventually([&] {
    return engine.stats().coalesced == kClients - 1;
  })) << "followers never coalesced; coalesced="
      << engine.stats().coalesced;
  {
    ipso::sync::MutexLock lock(mu);
    release = true;
  }
  cv.notify_all();

  std::vector<std::string> lines;
  for (auto& f : responses) lines.push_back(f.get());
  EXPECT_EQ(fits.load(), 1) << "the fit ran more than once";
  EXPECT_EQ(engine.fits_performed(), 1u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(is_ok(line)) << line;
    EXPECT_EQ(line, lines.front()) << "coalesced responses must be "
                                      "byte-identical";
  }
}

TEST(ServeEngine, ResponsesByteIdenticalAcrossThreadCounts) {
  std::vector<std::string> requests;
  for (int i = 0; i < 6; ++i) requests.push_back(fit_request(i));
  requests.push_back(fit_request(2, "classify"));
  requests.push_back(fit_request(3, "recommend"));
  requests.push_back(
      "{\"op\":\"predict\",\"ns\":[1,2,4,8],\"params\":{\"workload\":"
      "\"fixed-time\",\"eta\":0.95,\"alpha\":0.6,\"delta\":0.2,\"beta\":0,"
      "\"gamma\":0}}");

  std::vector<std::vector<std::string>> per_thread_count;
  for (std::size_t threads : {1u, 2u, 8u}) {
    ServeEngine engine(threads_config(threads));
    std::vector<std::future<std::string>> inflight;
    for (const std::string& req : requests) {
      inflight.push_back(engine.submit(req));
    }
    std::vector<std::string> responses;
    for (auto& f : inflight) responses.push_back(f.get());
    per_thread_count.push_back(std::move(responses));
  }
  for (std::size_t t = 1; t < per_thread_count.size(); ++t) {
    ASSERT_EQ(per_thread_count[t].size(), per_thread_count[0].size());
    for (std::size_t i = 0; i < per_thread_count[0].size(); ++i) {
      EXPECT_EQ(per_thread_count[t][i], per_thread_count[0][i])
          << "request " << i << " differs between thread counts";
    }
  }
  for (const std::string& r : per_thread_count[0]) {
    EXPECT_TRUE(is_ok(r)) << r;
  }
}

TEST(ServeEngine, OverloadSheddingIsBoundedAndImmediate) {
  ipso::sync::Mutex mu;
  ipso::sync::CondVar cv;
  bool release = false;

  ServeConfig cfg;
  cfg.threads = 1;
  cfg.queue_capacity = 2;
  cfg.fit_hook = [&] {
    ipso::sync::MutexLock lock(mu);
    cv.wait(mu, [&] { return release; });
  };
  ServeEngine engine(cfg);

  // Fill the queue: one running (held by the hook), one waiting.
  auto first = engine.submit(fit_request(10));
  auto second = engine.submit(fit_request(11));
  ASSERT_TRUE(eventually([&] { return engine.fits_performed() >= 1; }));

  // Beyond capacity: rejected immediately, not queued.
  const std::string rejected = engine.handle(fit_request(12));
  EXPECT_TRUE(has_error(rejected, "overloaded")) << rejected;
  EXPECT_EQ(engine.stats().overloaded, 1u);
  EXPECT_LE(engine.stats().peak_queue_depth, cfg.queue_capacity);

  {
    ipso::sync::MutexLock lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_TRUE(is_ok(first.get()));
  EXPECT_TRUE(is_ok(second.get()));
}

TEST(ServeEngine, DrainCompletesAdmittedAndRejectsNew) {
  ipso::sync::Mutex mu;
  ipso::sync::CondVar cv;
  bool release = false;

  ServeConfig cfg;
  cfg.threads = 1;
  cfg.fit_hook = [&] {
    ipso::sync::MutexLock lock(mu);
    cv.wait(mu, [&] { return release; });
  };
  ServeEngine engine(cfg);

  auto admitted = engine.submit(fit_request(20));
  auto queued = engine.submit(fit_request(21));
  ASSERT_TRUE(eventually([&] { return engine.fits_performed() >= 1; }));

  std::thread drainer([&] { engine.drain(); });
  ASSERT_TRUE(eventually([&] { return engine.draining(); }));

  // New work is rejected while (and after) draining.
  const std::string rejected = engine.handle(fit_request(22));
  EXPECT_TRUE(has_error(rejected, "draining")) << rejected;
  EXPECT_GE(engine.stats().rejected_draining, 1u);

  {
    ipso::sync::MutexLock lock(mu);
    release = true;
  }
  cv.notify_all();
  drainer.join();

  // Every admitted request was answered with a real response; the draining
  // rejections count as received too, so conservation (not completed ==
  // received) is the invariant.
  EXPECT_TRUE(is_ok(admitted.get()));
  EXPECT_TRUE(is_ok(queued.get()));
  const ServeStats s = engine.stats();
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.received, s.completed + s.deadline_expired + s.overloaded +
                            s.rejected_draining + s.parse_errors);
  EXPECT_EQ(s.queue_depth, 0u);

  EXPECT_TRUE(has_error(engine.handle(fit_request(23)), "draining"));
}

TEST(ServeEngine, QueueDeadlineExpiresUnstartedRequests) {
  ipso::sync::Mutex mu;
  ipso::sync::CondVar cv;
  bool release = false;
  std::atomic<int> fits{0};

  ServeConfig cfg;
  cfg.threads = 1;
  cfg.fit_hook = [&] {
    // Only the first fit blocks; the deadline victim must never get here.
    if (fits.fetch_add(1) == 0) {
      ipso::sync::MutexLock lock(mu);
      cv.wait(mu, [&] { return release; });
    }
  };
  ServeEngine engine(cfg);

  auto blocker = engine.submit(fit_request(30));
  ASSERT_TRUE(eventually([&] { return fits.load() >= 1; }));

  std::string victim_req = fit_request(31);
  victim_req.insert(victim_req.size() - 1, ",\"deadline_ms\":1");
  auto victim = engine.submit(victim_req);

  std::this_thread::sleep_for(20ms);  // let the deadline lapse in-queue
  {
    ipso::sync::MutexLock lock(mu);
    release = true;
  }
  cv.notify_all();

  EXPECT_TRUE(is_ok(blocker.get()));
  const std::string expired = victim.get();
  EXPECT_TRUE(has_error(expired, "deadline_exceeded")) << expired;
  EXPECT_EQ(fits.load(), 1) << "expired request must not run its fit";
  EXPECT_EQ(engine.stats().deadline_expired, 1u);
}

TEST(ServeEngine, StatsConserveAcrossEveryOutcome) {
  // Drive exactly one request into each outcome bucket and check the
  // ServeStats conservation identity: received == completed +
  // deadline_expired + overloaded + rejected_draining + parse_errors once
  // the queue is empty.
  ipso::sync::Mutex mu;
  ipso::sync::CondVar cv;
  bool release = false;
  std::atomic<int> fits{0};

  ServeConfig cfg;
  cfg.threads = 1;
  cfg.queue_capacity = 2;
  cfg.fit_hook = [&] {
    if (fits.fetch_add(1) == 0) {
      ipso::sync::MutexLock lock(mu);
      cv.wait(mu, [&] { return release; });
    }
  };
  ServeEngine engine(cfg);

  auto completed = engine.submit(fit_request(40));  // admitted, running
  ASSERT_TRUE(eventually([&] { return fits.load() >= 1; }));

  std::string victim_req = fit_request(41);
  victim_req.insert(victim_req.size() - 1, ",\"deadline_ms\":1");
  auto expired = engine.submit(victim_req);  // admitted, will expire queued

  // Queue depth is now 2 (== capacity): the next arrival sheds.
  const std::string overloaded = engine.handle(fit_request(42));
  EXPECT_TRUE(has_error(overloaded, "overloaded")) << overloaded;
  const std::string parse_error = engine.handle("{\"op\":");
  EXPECT_TRUE(has_error(parse_error, "parse_error")) << parse_error;

  std::this_thread::sleep_for(20ms);  // let the victim's deadline lapse
  {
    ipso::sync::MutexLock lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_TRUE(is_ok(completed.get()));
  EXPECT_TRUE(has_error(expired.get(), "deadline_exceeded"));

  engine.drain();
  EXPECT_TRUE(has_error(engine.handle(fit_request(43)), "draining"));

  const ServeStats s = engine.stats();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.deadline_expired, 1u);
  EXPECT_EQ(s.overloaded, 1u);
  EXPECT_EQ(s.parse_errors, 1u);
  EXPECT_EQ(s.rejected_draining, 1u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.received, 5u);
  EXPECT_EQ(s.received, s.completed + s.deadline_expired + s.overloaded +
                            s.rejected_draining + s.parse_errors);
}

TEST(ServeEngine, LruEvictionForcesRefit) {
  ServeConfig cfg;
  cfg.threads = 1;
  cfg.cache_capacity = 1;
  ServeEngine engine(cfg);
  EXPECT_TRUE(is_ok(engine.handle(fit_request(40))));
  EXPECT_TRUE(is_ok(engine.handle(fit_request(41))));  // evicts 40
  EXPECT_TRUE(is_ok(engine.handle(fit_request(40))));  // refits
  EXPECT_EQ(engine.fits_performed(), 3u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
}

TEST(ServeEngine, DiagnoseRoundTrip) {
  // A sublinear-but-unbounded curve diagnosed without factor observations.
  std::ostringstream os;
  os << "{\"op\":\"diagnose\",\"workload\":\"fixed-time\",\"speedup\":[";
  bool first = true;
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    if (!first) os << ",";
    first = false;
    os << "[" << n << "," << (n / (1.0 + 0.05 * n)) << "]";
  }
  os << "]}";
  ServeEngine engine(threads_config(1));
  const std::string response = engine.handle(os.str());
  ASSERT_TRUE(is_ok(response)) << response;
  EXPECT_NE(response.find("\"summary\":"), std::string::npos);
}

// --------------------------------------------------------------------- tcp

TEST(ServeTcp, RoundTripAndShutdownDrains) {
  ServeEngine engine(threads_config(2));
  TcpServer server(engine, ServerConfig{"127.0.0.1", 0});
  auto started = server.start();
  ASSERT_TRUE(started.has_value()) << started.error().message;
  ASSERT_NE(server.port(), 0);

  TcpClient client;
  auto connected = client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.has_value()) << connected.error().message;

  auto pong = client.roundtrip("{\"op\":\"ping\",\"id\":\"t1\"}");
  ASSERT_TRUE(pong.has_value()) << pong.error().message;
  EXPECT_EQ(*pong,
            "{\"id\":\"t1\",\"op\":\"ping\",\"ok\":true,"
            "\"result\":{\"pong\":true}}");

  // A malformed line gets an error response; the connection survives.
  auto bad = client.roundtrip("{broken");
  ASSERT_TRUE(bad.has_value()) << bad.error().message;
  EXPECT_TRUE(has_error(*bad, "parse_error"));

  auto fit = client.roundtrip(fit_request(50));
  ASSERT_TRUE(fit.has_value()) << fit.error().message;
  EXPECT_TRUE(is_ok(*fit)) << *fit;
  // The same fit over TCP is served from cache, byte-identical.
  auto fit_again = client.roundtrip(fit_request(50));
  ASSERT_TRUE(fit_again.has_value()) << fit_again.error().message;
  EXPECT_EQ(*fit, *fit_again);
  EXPECT_EQ(engine.fits_performed(), 1u);

  EXPECT_EQ(server.connections_accepted(), 1u);
  server.shutdown();
  EXPECT_TRUE(engine.draining());
  // Post-shutdown the engine refuses new work.
  EXPECT_TRUE(has_error(engine.handle("{\"op\":\"ping\"}"), "draining"));
  server.shutdown();  // idempotent
}

TEST(ServeTcp, ConcurrentConnectionsShareTheCache) {
  ServeEngine engine(threads_config(4));
  TcpServer server(engine, {});
  ASSERT_TRUE(server.start().has_value());

  constexpr int kClients = 4;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TcpClient client;
      if (!client.connect("127.0.0.1", server.port())) return;
      if (auto r = client.roundtrip(fit_request(60))) responses[c] = *r;
    });
  }
  for (auto& t : clients) t.join();

  for (const std::string& r : responses) {
    ASSERT_FALSE(r.empty());
    EXPECT_TRUE(is_ok(r)) << r;
    EXPECT_EQ(r, responses.front());
  }
  // One underlying fit across all connections (hit or coalesced for the
  // rest).
  EXPECT_EQ(engine.fits_performed(), 1u);
  EXPECT_EQ(server.connections_accepted(), kClients);
}

}  // namespace
}  // namespace ipso::serve
