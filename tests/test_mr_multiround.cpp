#include "mapreduce/multiround.h"

#include "workloads/sort.h"
#include "workloads/wordcount.h"

#include <gtest/gtest.h>

namespace ipso::mr {
namespace {

std::vector<Round> two_rounds() {
  return {{wl::wordcount_spec(), 64e6}, {wl::sort_spec(), 64e6}};
}

TEST(MultiRound, RejectsEmpty) {
  MrEngine engine(sim::default_emr_cluster(4));
  EXPECT_THROW(run_multi_round(engine, {}, true), std::invalid_argument);
}

TEST(MultiRound, ComponentsAreSums) {
  MrEngine engine(sim::default_emr_cluster(4));
  const auto rounds = two_rounds();
  const auto multi = run_multi_round(engine, rounds, /*parallel=*/true);
  ASSERT_EQ(multi.rounds.size(), 2u);
  double wp = 0, ws = 0, wo = 0, makespan = 0;
  for (const auto& r : multi.rounds) {
    wp += r.components.wp;
    ws += r.components.ws;
    wo += r.components.wo;
    makespan += r.makespan;
  }
  EXPECT_NEAR(multi.components.wp, wp, 1e-9);
  EXPECT_NEAR(multi.components.ws, ws, 1e-9);
  EXPECT_NEAR(multi.components.wo, wo, 1e-9);
  EXPECT_NEAR(multi.makespan, makespan, 1e-9);
}

TEST(MultiRound, SequentialHasNoInducedWork) {
  MrEngine engine(sim::default_emr_cluster(4));
  const auto multi = run_multi_round(engine, two_rounds(), false);
  EXPECT_DOUBLE_EQ(multi.components.wo, 0.0);
  EXPECT_DOUBLE_EQ(multi.components.n, 1.0);
}

TEST(MultiRound, IpsoAppliesToSummedWorkloads) {
  // The paper's claim: viewing Wp/Ws/Wo as sums over rounds, Eq. 7 applies
  // to the multi-round job. The Eq. 7 speedup from summed components must
  // track the measured makespan ratio.
  MrEngine engine(sim::default_emr_cluster(8));
  const auto rounds = two_rounds();
  const auto par = run_multi_round(engine, rounds, true);
  const auto seq = run_multi_round(engine, rounds, false);
  const double measured = seq.makespan / par.makespan;
  const double eq7 = par.components.speedup();
  EXPECT_NEAR(eq7, measured, 0.1 * measured);
}

TEST(MultiRound, SpeedupBetweenRoundSpeedups) {
  // The combined speedup must lie between the two per-round speedups.
  MrEngine engine(sim::default_emr_cluster(8));
  const auto rounds = two_rounds();
  const auto par = run_multi_round(engine, rounds, true);
  const auto seq = run_multi_round(engine, rounds, false);
  const double combined = seq.makespan / par.makespan;
  const double s0 = seq.rounds[0].makespan / par.rounds[0].makespan;
  const double s1 = seq.rounds[1].makespan / par.rounds[1].makespan;
  EXPECT_GE(combined, std::min(s0, s1) - 1e-9);
  EXPECT_LE(combined, std::max(s0, s1) + 1e-9);
}

TEST(MultiRound, MaxTpAddsAcrossBarriers) {
  MrEngine engine(sim::default_emr_cluster(4));
  const auto multi = run_multi_round(engine, two_rounds(), true);
  EXPECT_NEAR(multi.components.max_tp,
              multi.rounds[0].components.max_tp +
                  multi.rounds[1].components.max_tp,
              1e-9);
}

}  // namespace
}  // namespace ipso::mr
