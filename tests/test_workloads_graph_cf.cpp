#include "workloads/collab_filter.h"
#include "workloads/nweight.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ipso::wl {
namespace {

// --- Collaborative Filtering

TEST(Cf, InitShapes) {
  const CfModel m = cf_init(1, 20, 30, 4);
  EXPECT_EQ(m.u.size(), 80u);
  EXPECT_EQ(m.v.size(), 120u);
  EXPECT_THROW(cf_init(1, 2, 2, 0), std::invalid_argument);
}

TEST(Cf, TrainingReducesRmse) {
  const auto ratings = make_ratings(2, 60, 40, 3, 0.3);
  ASSERT_GT(ratings.size(), 200u);
  CfModel m = cf_init(3, 60, 40, 3);
  const double before = cf_rmse(m, ratings);
  const double after = cf_train(m, ratings, 40);
  EXPECT_LT(after, 0.5 * before);
}

TEST(Cf, IterateReturnsPreUpdateRmse) {
  const auto ratings = make_ratings(4, 30, 20, 2, 0.4);
  CfModel m = cf_init(5, 30, 20, 2);
  const double rmse0 = cf_rmse(m, ratings);
  const double reported = cf_iterate(m, ratings);
  EXPECT_DOUBLE_EQ(reported, rmse0);
  EXPECT_LT(cf_rmse(m, ratings), rmse0);
}

TEST(Cf, RmseOfEmptyRatingsIsZero) {
  const CfModel m = cf_init(6, 5, 5, 2);
  EXPECT_DOUBLE_EQ(cf_rmse(m, {}), 0.0);
}

TEST(CfApp, TwoBroadcastStagesPerIteration) {
  const auto app = collab_filter_app(60);
  EXPECT_EQ(app.stages.size(), 2u);
  EXPECT_EQ(app.iterations, 10u);
  for (const auto& s : app.stages) EXPECT_GT(s.broadcast_bytes, 0.0);
  EXPECT_DOUBLE_EQ(app.driver_ops_per_job, 0.0);  // Ws = 0: eta = 1
}

TEST(CfApp, TotalWorkIndependentOfTaskCount) {
  const auto a = collab_filter_app(10);
  const auto b = collab_filter_app(100);
  EXPECT_NEAR(a.stages[0].task_ops * 10, b.stages[0].task_ops * 100, 1e-3);
  EXPECT_THROW(collab_filter_app(0), std::invalid_argument);
}

// --- NWeight

TEST(Adjacency, BuildsAndIndexes) {
  const std::vector<Edge> edges{{0, 1, 0.5}, {0, 2, 0.25}, {1, 2, 1.0}};
  const Adjacency adj(3, edges);
  EXPECT_EQ(adj.nodes(), 3u);
  const auto [lo, hi] = adj.out_range(0);
  EXPECT_EQ(hi - lo, 2u);
  const auto [lo1, hi1] = adj.out_range(2);
  EXPECT_EQ(hi1 - lo1, 0u);
}

TEST(Adjacency, RejectsOutOfRangeEdges) {
  const std::vector<Edge> edges{{0, 9, 1.0}};
  EXPECT_THROW(Adjacency(3, edges), std::invalid_argument);
}

TEST(NWeight, OneHopIsDirectEdgeWeights) {
  const std::vector<Edge> edges{{0, 1, 0.5}, {0, 2, 0.25}};
  const Adjacency adj(3, edges);
  const auto w = nweight_from(adj, 0, 1);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
  EXPECT_DOUBLE_EQ(w[2], 0.25);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
}

TEST(NWeight, TwoHopMultipliesAlongPaths) {
  // 0 ->(0.5) 1 ->(0.4) 2 : two-hop weight at 2 = 0.2 plus direct 0.1.
  const std::vector<Edge> edges{{0, 1, 0.5}, {1, 2, 0.4}, {0, 2, 0.1}};
  const Adjacency adj(3, edges);
  const auto w = nweight_from(adj, 0, 2);
  EXPECT_NEAR(w[2], 0.1 + 0.5 * 0.4, 1e-12);
  EXPECT_NEAR(w[1], 0.5, 1e-12);
}

TEST(NWeight, SourcePathsExcluded) {
  // Cycle 0 -> 1 -> 0: the source must not count as its own neighbor.
  const std::vector<Edge> edges{{0, 1, 0.5}, {1, 0, 0.5}};
  const Adjacency adj(2, edges);
  const auto w = nweight_from(adj, 0, 3);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
}

TEST(NWeight, AllVerticesAggregate) {
  const auto edges = make_graph(7, 40, 4.0);
  const Adjacency adj(40, edges);
  const auto mass = nweight_all(adj, 2);
  ASSERT_EQ(mass.size(), 40u);
  double total = 0.0;
  for (double m : mass) {
    EXPECT_GE(m, 0.0);
    total += m;
  }
  EXPECT_GT(total, 0.0);
}

TEST(NWeight, RejectsBadSource) {
  const Adjacency adj(3, {});
  EXPECT_THROW(nweight_from(adj, 5, 2), std::invalid_argument);
}

TEST(NWeightApp, OneStagePerHop) {
  const auto app = nweight_app(3);
  EXPECT_EQ(app.iterations, 3u);
  EXPECT_EQ(app.stages.size(), 1u);
  EXPECT_GT(app.stages[0].shuffle_bytes_per_task, 0.0);
  EXPECT_THROW(nweight_app(0), std::invalid_argument);
}

// --- graph/ratings generators

TEST(MakeGraph, RespectsSizeAndNoSelfLoops) {
  const auto edges = make_graph(8, 50, 3.0);
  EXPECT_EQ(edges.size(), 150u);
  for (const auto& e : edges) {
    EXPECT_LT(e.src, 50u);
    EXPECT_LT(e.dst, 50u);
    EXPECT_NE(e.src, e.dst);
    EXPECT_GT(e.weight, 0.0);
  }
}

TEST(MakeRatings, DensityApproximatelyRespected) {
  const auto ratings = make_ratings(9, 100, 100, 2, 0.1);
  EXPECT_GT(ratings.size(), 700u);
  EXPECT_LT(ratings.size(), 1300u);
}

}  // namespace
}  // namespace ipso::wl
