#include "core/classify.h"
#include "core/model.h"
#include "core/statistical.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

/// Property-based sweeps over the IPSO parameter space: invariants that
/// must hold for EVERY parameter combination, not just hand-picked cases.

namespace ipso {
namespace {

using Params = std::tuple<double /*eta*/, double /*alpha*/, double /*delta*/,
                          double /*beta*/, double /*gamma*/>;

AsymptoticParams from_tuple(const Params& t, WorkloadType type) {
  AsymptoticParams p;
  p.type = type;
  p.eta = std::get<0>(t);
  p.alpha = std::get<1>(t);
  p.delta = type == WorkloadType::kFixedSize ? 0.0 : std::get<2>(t);
  p.beta = std::get<3>(t);
  p.gamma = std::get<4>(t);
  return p;
}

class IpsoSpace : public ::testing::TestWithParam<Params> {};

TEST_P(IpsoSpace, SpeedupAtOneIsOne) {
  for (auto type : {WorkloadType::kFixedTime, WorkloadType::kFixedSize}) {
    const auto p = from_tuple(GetParam(), type);
    EXPECT_NEAR(speedup_asymptotic(p, 1.0), 1.0, 1e-9);
  }
}

TEST_P(IpsoSpace, SpeedupIsPositive) {
  for (auto type : {WorkloadType::kFixedTime, WorkloadType::kFixedSize}) {
    const auto p = from_tuple(GetParam(), type);
    for (double n = 1; n <= 1e5; n *= 10) {
      EXPECT_GT(speedup_asymptotic(p, n), 0.0);
    }
  }
}

TEST_P(IpsoSpace, EfficiencyNeverImproves) {
  // S(n)/n is non-increasing: parallel efficiency cannot grow with
  // scale-out in the IPSO space (no superlinear effects are modeled).
  for (auto type : {WorkloadType::kFixedTime, WorkloadType::kFixedSize}) {
    const auto p = from_tuple(GetParam(), type);
    double prev = speedup_asymptotic(p, 1.0) / 1.0;
    for (double n = 2; n <= 4096; n *= 2) {
      const double eff = speedup_asymptotic(p, n) / n;
      EXPECT_LE(eff, prev + 1e-12) << "type=" << to_string(type)
                                   << " n=" << n;
      prev = eff;
    }
  }
}

TEST_P(IpsoSpace, OverheadOnlyHurts) {
  // Adding scale-out-induced workload can only lower the speedup.
  for (auto type : {WorkloadType::kFixedTime, WorkloadType::kFixedSize}) {
    auto with = from_tuple(GetParam(), type);
    auto without = with;
    without.beta = 0.0;
    without.gamma = 0.0;
    for (double n = 2; n <= 4096; n *= 4) {
      EXPECT_LE(speedup_asymptotic(with, n),
                speedup_asymptotic(without, n) + 1e-12);
    }
  }
}

TEST_P(IpsoSpace, ClassifiedBoundIsAnUpperBound) {
  for (auto type : {WorkloadType::kFixedTime, WorkloadType::kFixedSize}) {
    const auto p = from_tuple(GetParam(), type);
    const Classification c = classify(p);
    if (!std::isfinite(c.bound)) continue;
    for (double n = 1; n <= 1e6; n *= 4) {
      EXPECT_LE(speedup_asymptotic(p, n), c.bound * (1.0 + 1e-6))
          << to_string(c.type) << " n=" << n;
    }
  }
}

TEST_P(IpsoSpace, BoundedTypesApproachTheirBound) {
  for (auto type : {WorkloadType::kFixedTime, WorkloadType::kFixedSize}) {
    const auto p = from_tuple(GetParam(), type);
    const Classification c = classify(p);
    if (c.shape != GrowthShape::kBounded) continue;
    // The bound is the actual supremum: the curve gets within 5% of it.
    EXPECT_GT(speedup_asymptotic(p, 1e9), 0.95 * c.bound)
        << to_string(c.type);
  }
}

TEST_P(IpsoSpace, PeakedTypesActuallyPeak) {
  for (auto type : {WorkloadType::kFixedTime, WorkloadType::kFixedSize}) {
    const auto p = from_tuple(GetParam(), type);
    const Classification c = classify(p);
    if (c.shape != GrowthShape::kPeaked) continue;
    const double at_peak = speedup_asymptotic(p, c.peak_n);
    EXPECT_GT(at_peak, speedup_asymptotic(p, c.peak_n * 64.0))
        << "must decline after the peak";
    EXPECT_NEAR(at_peak, c.peak_speedup, 0.01 * c.peak_speedup);
  }
}

TEST_P(IpsoSpace, StatisticalNeverBeatsDeterministic) {
  // E[max X] >= E[X] = 1, so any task-time dispersion slows the barrier.
  const auto tup = GetParam();
  const auto p = from_tuple(tup, WorkloadType::kFixedTime);
  if (p.alpha <= 0.0) return;
  const ScalingFactors f = p.materialize();
  CappedParetoTime noisy(2.5, 4.0);
  for (double n = 2; n <= 512; n *= 4) {
    EXPECT_LE(speedup_statistical(f, p.eta, noisy, n),
              speedup_deterministic(f, p.eta, n) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IpsoSpace,
    ::testing::Combine(::testing::Values(0.3, 0.9, 1.0),       // eta
                       ::testing::Values(0.5, 1.0, 4.0),       // alpha
                       ::testing::Values(0.0, 0.5, 1.0),       // delta
                       ::testing::Values(0.0, 0.01),           // beta
                       ::testing::Values(0.0, 0.5, 1.0, 2.0)));  // gamma

}  // namespace
}  // namespace ipso
