// Tests for the contract layer (core/contracts.h) and the domain-typed
// model parameters (core/domain.h).
//
// This file is registered twice in tests/CMakeLists.txt:
//   test_contracts      — default build, IPSO_CONTRACTS_ENABLED == 1
//   test_contracts_off  — compiled with -DIPSO_CONTRACTS_OFF
// The #if IPSO_CONTRACTS_ENABLED blocks below select the behavior each build
// must exhibit: checks that fire loudly when enabled, and checks that the
// macros/domain types compile down to no-ops/plain copies when disabled.
// The linked libraries are always built with contracts ON, so the _off
// binary only exercises header-level mechanics in this translation unit.

#include "core/classify.h"
#include "core/contracts.h"
#include "core/domain.h"
#include "core/laws.h"
#include "core/model.h"
#include "core/predict.h"
#include "core/scaling_factors.h"
#include "serve/engine.h"
#include "serve/proto.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace ipso {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Domain validity predicates: independent of the contracts switch, so these
// run identically in both test binaries.
// ---------------------------------------------------------------------------

TEST(Domain, ValidAcceptsExactBoundaries) {
  // The taxonomy boundaries (γ = 1, δ = 0, η = 1) and the trivial scale
  // n = 1 are *inside* the domain: Fig. 2–3 type IIIt,2 sits exactly on
  // γ = 1 and fixed-size fits force δ = 0.
  EXPECT_TRUE(Eta::valid(0.0));
  EXPECT_TRUE(Eta::valid(1.0));
  EXPECT_TRUE(Delta::valid(0.0));
  EXPECT_TRUE(Delta::valid(1.0));
  EXPECT_TRUE(Gamma::valid(0.0));
  EXPECT_TRUE(Gamma::valid(1.0));
  EXPECT_TRUE(Beta::valid(0.0));
  EXPECT_TRUE(NodeCount::valid(1.0));
}

TEST(Domain, ValidRejectsOutOfDomain) {
  EXPECT_FALSE(Eta::valid(-0.001));
  EXPECT_FALSE(Eta::valid(1.001));
  EXPECT_FALSE(Delta::valid(1.5));
  EXPECT_FALSE(Alpha::valid(0.0));
  EXPECT_FALSE(Alpha::valid(-1.0));
  EXPECT_FALSE(Beta::valid(-0.1));
  EXPECT_FALSE(Gamma::valid(-2.0));
  EXPECT_FALSE(NodeCount::valid(0.5));
}

TEST(Domain, ValidRejectsNaNAndInfinity) {
  // Every comparison is false for NaN, so NaN can never cross a
  // domain-typed boundary and poison the taxonomy downstream.
  EXPECT_FALSE(Eta::valid(kNaN));
  EXPECT_FALSE(Alpha::valid(kNaN));
  EXPECT_FALSE(Delta::valid(kNaN));
  EXPECT_FALSE(Beta::valid(kNaN));
  EXPECT_FALSE(Gamma::valid(kNaN));
  EXPECT_FALSE(NodeCount::valid(kNaN));
  EXPECT_FALSE(Alpha::valid(kInf));
  EXPECT_FALSE(Beta::valid(kInf));
  EXPECT_FALSE(Gamma::valid(kInf));
  EXPECT_FALSE(NodeCount::valid(kInf));
  EXPECT_TRUE(Alpha::valid(1e308));
}

TEST(Domain, TryMakeReturnsNulloptOutOfDomain) {
  EXPECT_FALSE(Eta::try_make(1.5).has_value());
  EXPECT_FALSE(Eta::try_make(kNaN).has_value());
  EXPECT_FALSE(Alpha::try_make(0.0).has_value());
  EXPECT_FALSE(Delta::try_make(-0.5).has_value());
  EXPECT_FALSE(NodeCount::try_make(0.0).has_value());
  const auto eta = Eta::try_make(0.59);
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(eta->get(), 0.59);
  // Boundary values round-trip through try_make too.
  EXPECT_TRUE(Delta::try_make(0.0).has_value());
  EXPECT_TRUE(Delta::try_make(1.0).has_value());
  EXPECT_TRUE(Gamma::try_make(1.0).has_value());
  EXPECT_TRUE(NodeCount::try_make(1.0).has_value());
}

TEST(Domain, DomainTextNamesTheConstraint) {
  EXPECT_NE(std::string(Eta::domain()).find("[0,1]"), std::string::npos);
  EXPECT_NE(std::string(Alpha::domain()).find("> 0"), std::string::npos);
}

// In-domain constexpr literals are usable in constant expressions in both
// modes. (The converse — `constexpr Delta d{1.5};` failing to compile when
// contracts are enabled — is exercised by tools/lint/selftest/, since a
// compile error cannot live in a test that must build.)
static_assert(Delta{0.0}.get() == 0.0);
static_assert(Delta{1.0}.get() == 1.0);
static_assert(Gamma{1.0}.get() == 1.0);
static_assert(Eta{1.0}.get() == 1.0);
static_assert(NodeCount{1.0}.get() == 1.0);
static_assert(double{Alpha{2.5}} == 2.5);

// ---------------------------------------------------------------------------
// Behavior that depends on whether contracts are compiled in.
// ---------------------------------------------------------------------------

#if IPSO_CONTRACTS_ENABLED

/// Restores the default handler when a test exits, pass or fail.
struct HandlerGuard {
  ~HandlerGuard() { contracts::set_violation_handler(nullptr); }
};

contracts::Violation* last_violation() {
  static contracts::Violation v;
  return &v;
}

void recording_handler(const contracts::Violation& v) {
  *last_violation() = v;
}

TEST(Contracts, DefaultHandlerThrowsContractViolation) {
  EXPECT_THROW(static_cast<void>(Delta(1.5)), contracts::ContractViolation);
  // ContractViolation derives from std::invalid_argument: the repo's
  // historical out-of-domain contract, pinned by ~20 pre-existing tests.
  EXPECT_THROW(static_cast<void>(Eta(-0.1)), std::invalid_argument);
}

TEST(Contracts, ViolationCarriesKindAndMessage) {
  try {
    static_cast<void>(Alpha(-1.0));
    FAIL() << "Alpha(-1.0) must trip the precondition";
  } catch (const contracts::ContractViolation& v) {
    EXPECT_EQ(v.kind(), contracts::Kind::kPrecondition);
    EXPECT_NE(std::string(v.what()).find("must be > 0"), std::string::npos);
    EXPECT_NE(std::string(v.what()).find("Alpha"), std::string::npos);
  }
}

TEST(Contracts, MacrosReportSourceLocationAndKind) {
  HandlerGuard guard;
  contracts::set_violation_handler(&recording_handler);

  IPSO_EXPECTS(1 + 1 == 3, "arithmetic is broken");
  EXPECT_EQ(last_violation()->kind, contracts::Kind::kPrecondition);
  EXPECT_STREQ(last_violation()->message, "arithmetic is broken");
  EXPECT_STREQ(last_violation()->condition, "1 + 1 == 3");
  EXPECT_NE(std::string(last_violation()->file).find("test_contracts.cpp"),
            std::string::npos);
  EXPECT_GT(last_violation()->line, 0);

  IPSO_ENSURES(false, "post");
  EXPECT_EQ(last_violation()->kind, contracts::Kind::kPostcondition);
  IPSO_ASSERT(false, "inv");
  EXPECT_EQ(last_violation()->kind, contracts::Kind::kAssertion);

  const std::string text = last_violation()->to_string();
  EXPECT_NE(text.find("assertion violated"), std::string::npos);
  EXPECT_NE(text.find("inv"), std::string::npos);
}

TEST(Contracts, PassingConditionsDoNotInvokeHandler) {
  HandlerGuard guard;
  contracts::set_violation_handler(&recording_handler);
  last_violation()->message = "";
  IPSO_EXPECTS(true, "never");
  IPSO_ENSURES(2 > 1, "never");
  IPSO_ASSERT(!false, "never");
  EXPECT_STREQ(last_violation()->message, "");
}

TEST(Contracts, SetHandlerReturnsPreviousAndNullRestoresDefault) {
  const contracts::Handler prev =
      contracts::set_violation_handler(&contracts::log_handler);
  EXPECT_EQ(prev, &contracts::throw_handler);
  EXPECT_EQ(contracts::violation_handler(), &contracts::log_handler);
  EXPECT_EQ(contracts::set_violation_handler(nullptr),
            &contracts::log_handler);
  EXPECT_EQ(contracts::violation_handler(), &contracts::throw_handler);
}

TEST(Contracts, LogHandlerContinuesPastTheViolation) {
  HandlerGuard guard;
  contracts::set_violation_handler(&contracts::log_handler);
  // The configurable continue-on-violation policy for code that must never
  // unwind: the out-of-domain value flows through unchanged.
  double observed = 0.0;
  EXPECT_NO_THROW(observed = Delta(1.5).get());
  EXPECT_DOUBLE_EQ(observed, 1.5);
}

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, AbortHandlerPrintsAndAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        contracts::set_violation_handler(&contracts::abort_handler);
        IPSO_EXPECTS(false, "hard stop for debug builds");
      },
      "precondition violated.*hard stop for debug builds");
}

// --- Out-of-domain runtime values tripping at real API boundaries ----------

ScalingFactors unit_factors() {
  ScalingFactors f;
  f.ex = identity_factor();
  f.in = constant_factor(1.0);
  f.q = constant_factor(0.0);
  return f;
}

TEST(ContractsApi, ModelEntryPointsRejectOutOfDomain) {
  const ScalingFactors f = unit_factors();
  EXPECT_THROW(static_cast<void>(speedup_deterministic(f, 1.5, 4.0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(speedup_deterministic(f, 0.9, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(laws::amdahl(-0.1, 8.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(make_q(-1.0, 2.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(find_peak(AsymptoticParams{}, 0.5)),
               std::invalid_argument);
}

TEST(ContractsApi, BoundaryValuesAcceptedExactly) {
  const ScalingFactors f = unit_factors();
  // η = 1, n = 1: S(1) = 1 by construction (Eq. 10 with EX(1)=IN(1)=1).
  EXPECT_DOUBLE_EQ(speedup_deterministic(f, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(speedup_deterministic(f, 0.0, 1.0), 1.0);
  // q(1) = 0 by definition (Eq. 6), even with β > 0.
  EXPECT_DOUBLE_EQ(make_q(0.5, 2.0)(1.0), 0.0);
  // δ = 0 and δ = 1 are both legal ε exponents; γ = 1 is the IIIt,2 ray.
  AsymptoticParams p;
  p.eta = 0.9;
  p.alpha = 1.0;
  p.delta = 0.0;
  p.beta = 0.1;
  p.gamma = 1.0;
  EXPECT_TRUE(p.in_domain());
  EXPECT_NO_THROW(static_cast<void>(classify(p)));
  p.delta = 1.0;
  EXPECT_TRUE(p.in_domain());
}

#else  // !IPSO_CONTRACTS_ENABLED

TEST(ContractsOff, MacrosCompileToNoOpsAndDoNotEvaluate) {
  int evaluations = 0;
  // With contracts compiled out the condition expression must not run at
  // all — a side-effecting condition is a bug the OFF build would hide,
  // which is exactly why the header documents conditions as effect-free.
  IPSO_EXPECTS((++evaluations, false), "unreachable");
  IPSO_ENSURES((++evaluations, false), "unreachable");
  IPSO_ASSERT((++evaluations, false), "unreachable");
  EXPECT_EQ(evaluations, 0);
}

TEST(ContractsOff, DomainConstructionIsAPlainCopy) {
  // checked_domain compiles to a value copy: out-of-domain values pass
  // through silently (the documented zero-overhead trade).
  EXPECT_DOUBLE_EQ(Delta(1.5).get(), 1.5);
  EXPECT_DOUBLE_EQ(Eta(-2.0).get(), -2.0);
  EXPECT_DOUBLE_EQ(NodeCount(0.25).get(), 0.25);
}

TEST(ContractsOff, OutOfDomainConstexprLiteralsCompile) {
  constexpr Delta d{1.5};  // ill-formed when contracts are enabled
  static_assert(d.get() == 1.5);
  EXPECT_DOUBLE_EQ(d.get(), 1.5);
}

#endif  // IPSO_CONTRACTS_ENABLED

// ---------------------------------------------------------------------------
// Serve-protocol boundary: out-of-domain requests fail with *named* errors
// before any worker runs. Library code is contracts-ON in both binaries, so
// these run everywhere.
// ---------------------------------------------------------------------------

TEST(ServeDomain, ParamsFieldsRejectedWithNamedErrors) {
  const struct {
    const char* json;
    const char* needle;
  } cases[] = {
      {R"({"op":"classify","params":{"eta":1.5}})", "params.eta out of domain"},
      {R"({"op":"classify","params":{"eta":0}})", "params.eta out of domain"},
      {R"({"op":"classify","params":{"eta":0.9,"alpha":0}})",
       "params.alpha out of domain"},
      {R"({"op":"classify","params":{"eta":0.9,"alpha":1,"delta":1.5}})",
       "params.delta out of domain"},
      {R"({"op":"classify","params":{"eta":0.9,"alpha":1,"delta":0,"beta":-1}})",
       "params.beta out of domain"},
      {R"({"op":"classify","params":{"eta":0.9,"alpha":1,"delta":0,"beta":0,"gamma":-2}})",
       "params.gamma out of domain"},
  };
  for (const auto& c : cases) {
    const auto parsed = serve::parse_request(c.json);
    ASSERT_FALSE(parsed.has_value()) << c.json;
    EXPECT_NE(parsed.error().find(c.needle), std::string::npos)
        << c.json << " -> " << parsed.error();
  }
}

TEST(ServeDomain, BoundaryParamsAccepted) {
  // δ = 0, δ = 1, γ = 1, η = 1 are all inside the protocol domain.
  const auto parsed = serve::parse_request(
      R"({"op":"classify","params":{"workload":"fixed-time","eta":1,)"
      R"("alpha":1,"delta":0,"beta":0.1,"gamma":1}})");
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  ASSERT_TRUE(parsed->params.has_value());
  EXPECT_DOUBLE_EQ(parsed->params->eta, 1.0);
  EXPECT_DOUBLE_EQ(parsed->params->gamma, 1.0);
}

TEST(ServeDomain, EngineAnswersOutOfDomainWithErrorResponse) {
  serve::ServeConfig cfg;
  cfg.threads = 1;
  serve::ServeEngine engine(cfg);
  const std::string response = engine.handle(
      R"({"op":"predict","id":"bad","params":{"eta":0.9,"delta":2}})");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(response.find("params.delta out of domain"), std::string::npos);
  // The worker pool survives the rejection and keeps serving.
  const std::string pong = engine.handle(R"({"op":"ping"})");
  EXPECT_NE(pong.find("\"pong\":true"), std::string::npos);
}

}  // namespace
}  // namespace ipso
