#include "stats/regression.h"

#include "stats/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace ipso::stats {
namespace {

TEST(LinearFit, RecoversExactLine) {
  Series s("line");
  for (int n = 1; n <= 20; ++n) s.add(n, 3.0 * n - 7.0);
  const LinearFit f = fit_linear(s);
  EXPECT_NEAR(f.slope, 3.0, 1e-12);
  EXPECT_NEAR(f.intercept, -7.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, RecoversNoisyLine) {
  Rng rng(1);
  Series s("noisy");
  for (int n = 1; n <= 200; ++n) s.add(n, 0.36 * n - 0.11 + rng.normal(0, 0.5));
  const LinearFit f = fit_linear(s);
  EXPECT_NEAR(f.slope, 0.36, 0.01);
  EXPECT_NEAR(f.intercept, -0.11, 0.6);
  EXPECT_GT(f.r_squared, 0.99);
}

TEST(LinearFit, EvaluatesAtX) {
  const LinearFit f{2.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(f(3.0), 7.0);
}

TEST(LinearFit, ThrowsOnTooFewPoints) {
  Series s("one");
  s.add(1, 1);
  EXPECT_THROW(fit_linear(s), std::invalid_argument);
}

TEST(LinearFit, ThrowsOnDegenerateX) {
  Series s("same-x");
  s.add(2, 1);
  s.add(2, 5);
  EXPECT_THROW(fit_linear(s), std::invalid_argument);
}

TEST(LinearFit, SpanOverloadMatchesSeries) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
}

TEST(PowerFit, RecoversExactPowerLaw) {
  Series s("pow");
  for (int n = 1; n <= 50; ++n) s.add(n, 2.5 * std::pow(n, 1.7));
  const PowerFit f = fit_power(s);
  EXPECT_NEAR(f.coeff, 2.5, 1e-9);
  EXPECT_NEAR(f.exponent, 1.7, 1e-9);
}

TEST(PowerFit, SkipsNonPositivePoints) {
  Series s("pow0");
  s.add(1, 0.0);  // q(1) = 0 style point
  for (int n = 2; n <= 20; ++n) s.add(n, 0.5 * n * n);
  const PowerFit f = fit_power(s);
  EXPECT_NEAR(f.exponent, 2.0, 1e-9);
  EXPECT_NEAR(f.coeff, 0.5, 1e-9);
}

TEST(PowerFit, ThrowsWhenAllNonPositive) {
  Series s("zeros");
  s.add(1, 0.0);
  s.add(2, 0.0);
  EXPECT_THROW(fit_power(s), std::invalid_argument);
}

TEST(PowerFit, GammaTwoFromQuadraticOverhead) {
  // The CF case study: q(n) = beta*n^2 must be recovered with gamma ~ 2.
  Series s("q");
  for (double n : {10.0, 30.0, 60.0, 90.0}) s.add(n, 3.74e-4 * n * n);
  const PowerFit f = fit_power(s);
  EXPECT_NEAR(f.exponent, 2.0, 1e-6);
  EXPECT_NEAR(f.coeff, 3.74e-4, 1e-8);
}

TEST(SegmentedFit, FindsKnownBreakpoint) {
  // Fig. 5 shape: slope 0.15 below n=15, slope 0.25 above.
  Series s("IN");
  for (int n = 1; n <= 40; ++n) {
    const double y = n <= 15 ? 0.15 * n + 0.85 : 0.25 * n + 2.72 - 1.5;
    s.add(n, y);
  }
  const SegmentedFit f = fit_segmented(s);
  EXPECT_NEAR(f.knot, 15.0, 2.0);
  EXPECT_NEAR(f.left.slope, 0.15, 0.02);
  EXPECT_NEAR(f.right.slope, 0.25, 0.02);
  EXPECT_TRUE(f.has_breakpoint());
}

TEST(SegmentedFit, StraightLineHasNoBreakpoint) {
  Series s("line");
  for (int n = 1; n <= 30; ++n) s.add(n, 2.0 * n + 1.0);
  const SegmentedFit f = fit_segmented(s);
  EXPECT_FALSE(f.has_breakpoint());
}

TEST(SegmentedFit, ThrowsOnTooFewPoints) {
  Series s("few");
  for (int n = 1; n <= 4; ++n) s.add(n, n);
  EXPECT_THROW(fit_segmented(s, 3), std::invalid_argument);
}

TEST(SegmentedFit, EvaluatesPiecewise) {
  SegmentedFit f;
  f.left = {1.0, 0.0, 1.0};
  f.right = {2.0, -5.0, 1.0};
  f.knot = 5.0;
  EXPECT_DOUBLE_EQ(f(4.0), 4.0);
  EXPECT_DOUBLE_EQ(f(6.0), 7.0);
}

TEST(LinearFit, StandardErrorsShrinkWithMorePoints) {
  Rng rng(21);
  auto noisy_fit = [&](int n) {
    Series s("noisy");
    for (int i = 1; i <= n; ++i) s.add(i, 2.0 * i + rng.normal(0, 1.0));
    return fit_linear(s);
  };
  const LinearFit small = noisy_fit(10);
  const LinearFit big = noisy_fit(1000);
  EXPECT_GT(small.slope_stderr, 0.0);
  EXPECT_LT(big.slope_stderr, small.slope_stderr);
  // The true slope must be within a few standard errors.
  EXPECT_NEAR(big.slope, 2.0, 5.0 * big.slope_stderr);
}

TEST(LinearFit, ExactFitHasZeroStderr) {
  Series s("exact");
  for (int i = 1; i <= 10; ++i) s.add(i, 3.0 * i + 1.0);
  const LinearFit f = fit_linear(s);
  EXPECT_NEAR(f.slope_stderr, 0.0, 1e-10);
  EXPECT_NEAR(f.intercept_stderr, 0.0, 1e-9);
}

TEST(PowerFit, ExponentStderrPropagates) {
  Rng rng(22);
  Series s("q");
  for (double n = 2; n <= 256; n *= 2) {
    s.add(n, 1e-3 * n * n * std::exp(rng.normal(0, 0.05)));
  }
  const PowerFit f = fit_power(s);
  EXPECT_GT(f.exponent_stderr, 0.0);
  EXPECT_NEAR(f.exponent, 2.0, 4.0 * f.exponent_stderr);
}

TEST(GoodnessOfFit, SseOfPerfectFitIsZero) {
  Series s("line");
  for (int n = 1; n <= 10; ++n) s.add(n, 4.0 * n);
  EXPECT_NEAR(sse(s, [](double x) { return 4.0 * x; }), 0.0, 1e-18);
}

TEST(GoodnessOfFit, RSquaredOfMeanModelIsZero) {
  Series s("var");
  s.add(1, 1.0);
  s.add(2, 3.0);
  const double m = 2.0;
  EXPECT_NEAR(r_squared(s, [m](double) { return m; }), 0.0, 1e-12);
}

TEST(GoodnessOfFit, RSquaredConstantSeriesIsOne) {
  Series s("const");
  s.add(1, 5.0);
  s.add(2, 5.0);
  EXPECT_DOUBLE_EQ(r_squared(s, [](double) { return 5.0; }), 1.0);
}

}  // namespace
}  // namespace ipso::stats
