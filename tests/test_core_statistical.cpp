#include "core/statistical.h"

#include "core/model.h"
#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ipso {
namespace {

ScalingFactors gustafson_like() {
  return {identity_factor(), constant_factor(1.0), constant_factor(0.0)};
}

TEST(Deterministic, ExpectedMaxIsOne) {
  DeterministicTime d;
  for (std::size_t n : {1u, 10u, 1000u}) {
    EXPECT_DOUBLE_EQ(d.expected_max(n), 1.0);
  }
  EXPECT_TRUE(d.has_bounded_max());
}

TEST(Exponential, ExpectedMaxIsHarmonic) {
  ExponentialTime e;
  EXPECT_DOUBLE_EQ(e.expected_max(1), 1.0);
  EXPECT_DOUBLE_EQ(e.expected_max(2), 1.5);
  EXPECT_NEAR(e.expected_max(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
  EXPECT_FALSE(e.has_bounded_max());
}

TEST(Exponential, ExpectedMaxGrowsLikeLogN) {
  ExponentialTime e;
  const double h1000 = e.expected_max(1000);
  EXPECT_NEAR(h1000, std::log(1000.0) + 0.5772, 0.01);
}

TEST(Uniform, ExpectedMaxClosedForm) {
  UniformTime u(0.5);
  EXPECT_DOUBLE_EQ(u.expected_max(1), 1.0);
  // n=3: 1 + 0.5 * 2/4 = 1.25.
  EXPECT_DOUBLE_EQ(u.expected_max(3), 1.25);
  // Bounded by 1 + w.
  EXPECT_LT(u.expected_max(100000), 1.5);
  EXPECT_TRUE(u.has_bounded_max());
}

TEST(Uniform, RejectsBadWidth) {
  EXPECT_THROW(UniformTime(0.0), std::invalid_argument);
  EXPECT_THROW(UniformTime(1.5), std::invalid_argument);
}

TEST(Uniform, SamplesMatchMoments) {
  UniformTime u(0.3);
  stats::Rng rng(1);
  stats::Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(u.sample(rng));
  EXPECT_NEAR(acc.mean(), 1.0, 0.01);
  EXPECT_GE(acc.min(), 0.7);
  EXPECT_LE(acc.max(), 1.3);
}

TEST(CappedPareto, ConstructionValidates) {
  EXPECT_THROW(CappedParetoTime(1.0, 4.0), std::invalid_argument);
  EXPECT_THROW(CappedParetoTime(2.0, 1.0), std::invalid_argument);
}

TEST(CappedPareto, UnitMeanAfterNormalization) {
  CappedParetoTime p(2.5, 4.0);
  stats::Rng rng(2);
  stats::Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(p.sample(rng));
  EXPECT_NEAR(acc.mean(), 1.0, 0.01);
}

TEST(CappedPareto, ExpectedMaxOfOneIsMean) {
  CappedParetoTime p(3.0, 4.0);
  EXPECT_NEAR(p.expected_max(1), 1.0, 1e-4);  // Simpson quadrature error
}

TEST(CappedPareto, ExpectedMaxBoundedByCapOverMean) {
  CappedParetoTime p(3.0, 4.0);
  const double limit = 4.0 / p.raw_mean();
  double prev = 0.0;
  for (std::size_t n : {1u, 2u, 8u, 64u, 4096u}) {
    const double m = p.expected_max(n);
    EXPECT_GE(m, prev);  // non-decreasing
    EXPECT_LE(m, limit + 1e-9);
    prev = m;
  }
  // With many tasks the max approaches the cap.
  EXPECT_NEAR(p.expected_max(100000), limit, 0.02 * limit);
}

TEST(CappedPareto, MatchesMonteCarloMax) {
  CappedParetoTime p(2.5, 3.0);
  stats::Rng rng(3);
  const std::size_t n = 16;
  stats::Accumulator acc;
  for (int rep = 0; rep < 20000; ++rep) {
    double mx = 0.0;
    for (std::size_t i = 0; i < n; ++i) mx = std::max(mx, p.sample(rng));
    acc.add(mx);
  }
  EXPECT_NEAR(acc.mean(), p.expected_max(n), 0.02 * p.expected_max(n));
}

// --- statistical speedup

TEST(StatSpeedup, DeterministicDistributionEqualsEqTen) {
  const auto f = gustafson_like();
  DeterministicTime d;
  for (double n : {1.0, 4.0, 32.0, 160.0}) {
    EXPECT_NEAR(speedup_statistical(f, 0.8, d, n),
                speedup_deterministic(f, 0.8, n), 1e-12);
  }
}

TEST(StatSpeedup, StragglersOnlyReduceSpeedup) {
  const auto f = gustafson_like();
  DeterministicTime det;
  CappedParetoTime noisy(3.0, 4.0);
  for (double n : {2.0, 16.0, 128.0}) {
    EXPECT_LT(speedup_statistical(f, 0.9, noisy, n),
              speedup_statistical(f, 0.9, det, n));
  }
}

TEST(StatSpeedup, BoundedTailPreservesQualitativeType) {
  // Paper Section IV: with a finite tail E[max] is bounded, so the
  // statistical curve has the same growth type as the deterministic one.
  // Gustafson-like workload: both must grow linearly (ratio to n bounded
  // away from zero and stabilizing).
  const auto f = gustafson_like();
  CappedParetoTime noisy(2.5, 4.0);
  const double r1 =
      speedup_statistical(f, 1.0, noisy, 512.0) / 512.0;
  const double r2 =
      speedup_statistical(f, 1.0, noisy, 4096.0) / 4096.0;
  EXPECT_GT(r1, 0.2);
  EXPECT_NEAR(r1, r2, 0.05);  // slope has stabilized: still linear
}

TEST(StatSpeedup, UnboundedTailBreaksLinearity) {
  // The caveat made executable: an exponential (unbounded) tail turns the
  // perfectly parallel fixed-time workload sublinear (S ~ n / ln n).
  const auto f = gustafson_like();
  ExponentialTime exp_tail;
  const double r1 = speedup_statistical(f, 1.0, exp_tail, 64.0) / 64.0;
  const double r2 = speedup_statistical(f, 1.0, exp_tail, 4096.0) / 4096.0;
  EXPECT_LT(r2, 0.75 * r1);  // efficiency keeps decaying: not linear
}

TEST(StatSpeedup, FractionalNInterpolatesExpectedMax) {
  // Regression: continuous n used to be silently llround-ed, so S(2.4)
  // evaluated E[max] at n = 2 and jumped discontinuously at half-integers.
  // Now E[max_n X] is linearly interpolated between floor(n) and floor(n)+1,
  // making the curve continuous and strictly inside its integer neighbours.
  const auto f = gustafson_like();
  CappedParetoTime noisy(2.5, 4.0);
  const double s2 = speedup_statistical(f, 0.9, noisy, 2.0);
  const double s24 = speedup_statistical(f, 0.9, noisy, 2.4);
  const double s29 = speedup_statistical(f, 0.9, noisy, 2.9);
  const double s3 = speedup_statistical(f, 0.9, noisy, 3.0);
  EXPECT_GT(s24, s2);
  EXPECT_GT(s29, s24);
  EXPECT_GT(s3, s29);
  // The old rounding collapsed 2.4 onto the integer-2 curve evaluated at
  // n = 2.4; it must now differ from both integer endpoints.
  EXPECT_NE(s24, s2);
  EXPECT_NE(s24, s3);
  // Continuity at the former rounding breakpoint n = 2.5.
  const double below = speedup_statistical(f, 0.9, noisy, 2.5 - 1e-9);
  const double above = speedup_statistical(f, 0.9, noisy, 2.5 + 1e-9);
  EXPECT_NEAR(below, above, 1e-6);
  // Integer n still hits the exact order statistic.
  EXPECT_DOUBLE_EQ(s3, speedup_statistical(f, 0.9, noisy, 3.0));
}

TEST(StatSpeedup, ValidatesArguments) {
  const auto f = gustafson_like();
  DeterministicTime d;
  EXPECT_THROW(speedup_statistical(f, 0.5, d, 0.5), std::invalid_argument);
  EXPECT_THROW(speedup_statistical(f, 1.5, d, 2.0), std::invalid_argument);
}

TEST(StatSpeedup, CurveHelper) {
  const auto f = gustafson_like();
  DeterministicTime d;
  const std::vector<double> ns{1, 2, 4};
  const auto s = speedup_statistical_curve(f, 1.0, d, ns, "stat");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.name(), "stat");
  EXPECT_DOUBLE_EQ(s[2].y, 4.0);
}

}  // namespace
}  // namespace ipso
