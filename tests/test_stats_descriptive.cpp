#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <vector>

namespace ipso::stats {
namespace {

const std::vector<double> kSample{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(Descriptive, MeanOfKnownSample) { EXPECT_DOUBLE_EQ(mean(kSample), 5.0); }

TEST(Descriptive, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Descriptive, VarianceUnbiased) {
  // Population variance of kSample is 4; sample variance = 32/7.
  EXPECT_NEAR(variance(kSample), 32.0 / 7.0, 1e-12);
}

TEST(Descriptive, VarianceOfSingletonIsZero) {
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Descriptive, StddevIsSqrtVariance) {
  EXPECT_NEAR(stddev(kSample) * stddev(kSample), variance(kSample), 1e-12);
}

TEST(Descriptive, MinMax) {
  EXPECT_DOUBLE_EQ(min(kSample), 2.0);
  EXPECT_DOUBLE_EQ(max(kSample), 9.0);
}

TEST(Descriptive, SumKahan) {
  std::vector<double> xs(10000, 0.1);
  EXPECT_NEAR(sum(xs), 1000.0, 1e-9);
}

TEST(Descriptive, PercentileEndpoints) {
  EXPECT_DOUBLE_EQ(percentile(kSample, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(kSample, 100.0), 9.0);
}

TEST(Descriptive, MedianInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Descriptive, PercentileUnsortedInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Descriptive, CoeffVariation) {
  const std::vector<double> xs{10.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(coeff_variation(xs), 0.0);
}

TEST(Accumulator, MatchesBatchStatistics) {
  Accumulator acc;
  for (double x : kSample) acc.add(x);
  EXPECT_EQ(acc.count(), kSample.size());
  EXPECT_DOUBLE_EQ(acc.mean(), mean(kSample));
  EXPECT_NEAR(acc.variance(), variance(kSample), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeEqualsSinglePass) {
  Accumulator a, b, whole;
  for (std::size_t i = 0; i < kSample.size(); ++i) {
    (i < 3 ? a : b).add(kSample[i]);
    whole.add(kSample[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Accumulator, MergeWithEmptyIsNoop) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  const double m = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), m);
  EXPECT_EQ(a.count(), 2u);
}

TEST(Accumulator, MergeIntoEmptyCopies) {
  Accumulator a, b;
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

}  // namespace
}  // namespace ipso::stats
