#include "sim/queueing.h"

#include "mapreduce/engine.h"
#include "workloads/qmc_pi.h"

#include <gtest/gtest.h>

namespace ipso::sim {
namespace {

TEST(Mm1, KnownValues) {
  // rho = 0.5, mu = 1: W = 0.5 / (1 * 0.5) = 1.
  EXPECT_DOUBLE_EQ(mm1_wait(0.5, 1.0), 1.0);
  // Light load: almost no waiting.
  EXPECT_LT(mm1_wait(0.01, 1.0), 0.02);
}

TEST(Mm1, DivergesTowardSaturation) {
  EXPECT_GT(mm1_wait(0.99, 1.0), 50.0);
}

TEST(Mm1, RejectsUnstableQueue) {
  EXPECT_THROW(mm1_wait(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(mm1_wait(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(mm1_wait(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(mm1_wait(0.5, 0.0), std::invalid_argument);
}

TEST(Md1, HalfOfMm1) {
  EXPECT_DOUBLE_EQ(md1_wait(0.5, 1.0), 0.5 * mm1_wait(0.5, 1.0));
}

TEST(Mm1, InSystemLittle) {
  // L = rho/(1-rho) at rho = 0.5 is 1.
  EXPECT_DOUBLE_EQ(mm1_in_system(0.5, 1.0), 1.0);
}

TEST(Contention, ValidatesParameters) {
  EXPECT_THROW(SharedResourceContention(1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(SharedResourceContention(-0.1, 10.0), std::invalid_argument);
  EXPECT_THROW(SharedResourceContention(0.5, 0.0), std::invalid_argument);
}

TEST(Contention, ZeroPhiIsNeutral) {
  SharedResourceContention c(0.0, 10.0);
  for (std::size_t n : {1u, 100u, 100000u}) {
    EXPECT_DOUBLE_EQ(c.slowdown(n), 1.0);
  }
}

TEST(Contention, SlowdownGrowsWithN) {
  SharedResourceContention c(0.3, 64.0);
  double prev = 0.0;
  for (std::size_t n : {1u, 16u, 64u, 128u, 200u}) {
    const double s = c.slowdown(n);
    EXPECT_GE(s, prev);
    EXPECT_GE(s, 1.0);
    prev = s;
  }
}

TEST(Contention, SaturationPoint) {
  SharedResourceContention c(0.5, 32.0);
  EXPECT_DOUBLE_EQ(c.saturation_n(), 64.0);
  // Near saturation the clamped slowdown is large but finite.
  EXPECT_GT(c.slowdown(64), 10.0);
  EXPECT_LT(c.slowdown(100000), 100.0);
}

TEST(Contention, UtilizationClamped) {
  SharedResourceContention c(0.5, 4.0);
  EXPECT_DOUBLE_EQ(c.utilization(2), 0.25);
  EXPECT_LT(c.utilization(10000), 1.0);
}

TEST(Contention, LowLoadNearUnity) {
  SharedResourceContention c(0.2, 1000.0);
  EXPECT_NEAR(c.slowdown(1), 1.0, 1e-3);
}

// --- integration with the MapReduce engine

TEST(ContentionInEngine, InducesScaleOutWorkload) {
  mr::MrJobConfig job;
  job.num_tasks = 32;
  job.shard_bytes = 128e6;

  auto clean_cfg = default_emr_cluster(32);
  auto contended_cfg = clean_cfg;
  contended_cfg.contention_phi = 0.3;
  contended_cfg.contention_capacity = 64.0;

  mr::MrEngine clean(clean_cfg);
  mr::MrEngine contended(contended_cfg);
  const auto spec = wl::qmc_pi_spec();
  const auto a = clean.run_parallel(spec, job);
  const auto b = contended.run_parallel(spec, job);

  // Same parallel work, extra induced work, slower job.
  EXPECT_NEAR(a.components.wp, b.components.wp, 1e-9);
  EXPECT_GT(b.components.wo, a.components.wo + 1.0);
  EXPECT_GT(b.makespan, a.makespan);
}

TEST(ContentionInEngine, ConfigValidation) {
  auto cfg = default_emr_cluster(2);
  cfg.contention_phi = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.contention_phi = 0.5;
  cfg.contention_capacity = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace ipso::sim
