#include "mapreduce/engine.h"

#include "workloads/sort.h"
#include "workloads/terasort.h"
#include "workloads/wordcount.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ipso::mr {
namespace {

MrWorkloadSpec simple_spec() {
  MrWorkloadSpec s;
  s.name = "simple";
  s.map_ops_per_byte = 10.0;
  s.intermediate_ratio = 1.0;
  s.merge_ops_per_byte = 1.0;
  s.spill_enabled = false;
  return s;
}

MrJobConfig job_of(std::size_t tasks, double shard_bytes = 1e8) {
  MrJobConfig j;
  j.num_tasks = tasks;
  j.shard_bytes = shard_bytes;
  return j;
}

TEST(MrEngine, RejectsZeroTasks) {
  MrEngine engine(sim::default_emr_cluster(2));
  EXPECT_THROW(engine.run_parallel(simple_spec(), job_of(0)),
               std::invalid_argument);
  EXPECT_THROW(engine.run_sequential(simple_spec(), job_of(0)),
               std::invalid_argument);
}

TEST(MrEngine, SequentialMapTimeScalesWithTasks) {
  MrEngine engine(sim::default_emr_cluster(1));
  const auto one = engine.run_sequential(simple_spec(), job_of(1));
  const auto four = engine.run_sequential(simple_spec(), job_of(4));
  EXPECT_NEAR(four.phases.map, 4.0 * one.phases.map, 1e-9);
  EXPECT_DOUBLE_EQ(four.components.wo, 0.0);  // paper fn. 1
}

TEST(MrEngine, ParallelMapIsBarrierBound) {
  MrEngine engine(sim::default_emr_cluster(4));
  const auto r = engine.run_parallel(simple_spec(), job_of(4));
  // All four identical tasks run concurrently: map wall ~ one task time
  // (small dispatch stagger aside).
  const double one_task = 10.0 * 1e8 / 1e8;
  EXPECT_NEAR(r.max_task_time, one_task, 1e-9);
  EXPECT_NEAR(r.sum_task_time, 4.0 * one_task, 1e-9);
  EXPECT_LT(r.phases.map, one_task + 0.1);
}

TEST(MrEngine, SpeedupNearOneAtSingleWorker) {
  MrEngine engine(sim::default_emr_cluster(1));
  const auto par = engine.run_parallel(simple_spec(), job_of(1));
  const auto seq = engine.run_sequential(simple_spec(), job_of(1));
  const double speedup = seq.makespan / par.makespan;
  EXPECT_GT(speedup, 0.95);
  EXPECT_LE(speedup, 1.0 + 1e-9);
}

TEST(MrEngine, MoreTasksThanWorkersRunInWaves) {
  MrEngine engine(sim::default_emr_cluster(2));
  const auto r = engine.run_parallel(simple_spec(), job_of(4));
  // 4 tasks of 10 s on 2 workers: map wall ~ 2 task durations.
  const double one_task = 10.0;
  EXPECT_GT(r.phases.map + r.phases.init, 2.0 * one_task);
  EXPECT_NEAR(r.sum_task_time, 4.0 * one_task, 1e-9);
}

TEST(MrEngine, WsMatchesBetweenParallelAndSequential) {
  // The merge-phase workload must be identical in both execution models —
  // that is what makes it Ws by the paper's definition.
  MrEngine engine(sim::default_emr_cluster(8));
  const auto spec = simple_spec();
  const auto par = engine.run_parallel(spec, job_of(8));
  const auto seq = engine.run_sequential(spec, job_of(8));
  EXPECT_NEAR(par.components.ws, seq.components.ws, 1e-9);
  EXPECT_NEAR(par.components.wp, seq.components.wp, 1e-9);
}

TEST(MrEngine, SpillTriggersAtReducerMemoryBoundary) {
  sim::ClusterConfig cfg = sim::default_emr_cluster(16);
  MrEngine engine(cfg);
  MrWorkloadSpec spec = simple_spec();
  spec.spill_enabled = true;
  // 16 x 128 MB = 2.048 GB > 2 GB reducer memory: spills.
  const auto spilled = engine.run_parallel(spec, job_of(16, 128e6));
  EXPECT_TRUE(spilled.spilled);
  EXPECT_DOUBLE_EQ(spilled.spill_bytes, 16.0 * 128e6);
  // 15 x 128 MB = 1.92 GB: no spill.
  MrEngine engine15(sim::default_emr_cluster(15));
  const auto clean = engine15.run_parallel(spec, job_of(15, 128e6));
  EXPECT_FALSE(clean.spilled);
  EXPECT_DOUBLE_EQ(clean.phases.spill, 0.0);
}

TEST(MrEngine, SpillAddsDiskTimeToWs) {
  MrEngine engine(sim::default_emr_cluster(32));
  MrWorkloadSpec with_spill = simple_spec();
  with_spill.spill_enabled = true;
  MrWorkloadSpec without = simple_spec();
  const auto a = engine.run_parallel(with_spill, job_of(32, 128e6));
  const auto b = engine.run_parallel(without, job_of(32, 128e6));
  EXPECT_GT(a.components.ws, b.components.ws);
  EXPECT_NEAR(a.components.ws - b.components.ws,
              2.0 * 32 * 128e6 / 120e6, 1e-6);
}

TEST(MrEngine, DispatchOverheadGrowsWithTasks) {
  MrEngine e64(sim::default_emr_cluster(64));
  MrEngine e2(sim::default_emr_cluster(2));
  const auto big = e64.run_parallel(simple_spec(), job_of(64));
  const auto small = e2.run_parallel(simple_spec(), job_of(2));
  EXPECT_GT(big.components.wo, small.components.wo);
}

TEST(MrEngine, StragglersStretchMaxNotSum) {
  sim::ClusterConfig cfg = sim::default_emr_cluster(16);
  cfg.straggler.enabled = true;
  cfg.straggler.cap = 3.0;
  MrEngine engine(cfg);
  const auto r = engine.run_parallel(simple_spec(), job_of(16));
  const double mean_task = r.sum_task_time / 16.0;
  EXPECT_GT(r.max_task_time, mean_task);
  EXPECT_LE(r.max_task_time, 3.0 * 10.0 + 1e-9);  // cap x 10 s nominal task
}

TEST(MrEngine, QuantizationZeroesSubSecondPhases) {
  MrEngine engine(sim::default_emr_cluster(4));
  MrJobConfig job = job_of(4, 1e6);  // tiny shards: sub-second everything
  job.measurement_precision = 1.0;
  const auto r = engine.run_parallel(simple_spec(), job);
  EXPECT_DOUBLE_EQ(r.phases.map, 0.0);  // unmeasurable, as in the paper
}

TEST(MrEngine, WordCountIntermediateIsConstantPerTask) {
  MrEngine e4(sim::default_emr_cluster(4));
  MrEngine e8(sim::default_emr_cluster(8));
  const auto spec = wl::wordcount_spec();
  const auto a = e4.run_parallel(spec, job_of(4, 128e6));
  const auto b = e8.run_parallel(spec, job_of(8, 128e6));
  EXPECT_NEAR(b.intermediate_bytes / a.intermediate_bytes, 2.0, 1e-9);
  EXPECT_LT(a.intermediate_bytes, 1e6);  // histograms, not data
}

TEST(MrEngine, SortForwardsAllData) {
  MrEngine engine(sim::default_emr_cluster(4));
  const auto r = engine.run_parallel(wl::sort_spec(), job_of(4, 128e6));
  EXPECT_DOUBLE_EQ(r.intermediate_bytes, 4.0 * 128e6);
}

TEST(MrEngine, ComponentSpeedupTracksMakespanSpeedup) {
  // Eq. 7 evaluated from the attributed components must approximate the
  // measured makespan ratio (they differ only by the constant init).
  MrEngine engine(sim::default_emr_cluster(8));
  const auto spec = wl::terasort_spec();
  const auto par = engine.run_parallel(spec, job_of(8, 128e6));
  const auto seq = engine.run_sequential(spec, job_of(8, 128e6));
  const double measured = seq.makespan / par.makespan;
  const double eq7 = (par.components.wp + par.components.ws) /
                     (par.components.max_tp + par.components.ws +
                      par.components.wo);
  EXPECT_NEAR(eq7, measured, 0.1 * measured);
}

}  // namespace
}  // namespace ipso::mr
