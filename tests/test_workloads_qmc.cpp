#include "workloads/qmc_pi.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ipso::wl {
namespace {

TEST(VanDerCorput, KnownBaseTwoPrefix) {
  EXPECT_DOUBLE_EQ(van_der_corput(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(van_der_corput(2, 2), 0.25);
  EXPECT_DOUBLE_EQ(van_der_corput(3, 2), 0.75);
  EXPECT_DOUBLE_EQ(van_der_corput(4, 2), 0.125);
}

TEST(VanDerCorput, KnownBaseThreePrefix) {
  EXPECT_NEAR(van_der_corput(1, 3), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(van_der_corput(2, 3), 2.0 / 3.0, 1e-15);
  EXPECT_NEAR(van_der_corput(3, 3), 1.0 / 9.0, 1e-15);
}

TEST(VanDerCorput, StaysInUnitInterval) {
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const double v = van_der_corput(i, 2);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(QmcMap, TallyCountsAddUp) {
  const QmcTally t = qmc_map(0, 5000);
  EXPECT_EQ(t.inside + t.outside, 5000u);
  EXPECT_GT(t.inside, 0u);
  EXPECT_GT(t.outside, 0u);
}

TEST(QmcMap, DisjointSlicesTileTheSequence) {
  // Two half-slices must tally exactly like one full slice.
  const QmcTally a = qmc_map(0, 2500);
  const QmcTally b = qmc_map(2500, 2500);
  const QmcTally whole = qmc_map(0, 5000);
  EXPECT_EQ(a.inside + b.inside, whole.inside);
  EXPECT_EQ(a.outside + b.outside, whole.outside);
}

TEST(QmcEstimate, ConvergesToPi) {
  // Quasi-random sequences converge ~1/N: 200k samples is plenty for 1e-2.
  const double pi = qmc_pi_run(8, 25000);
  EXPECT_NEAR(pi, M_PI, 1e-2);
}

TEST(QmcEstimate, MoreSamplesTightens) {
  const double rough = std::abs(qmc_pi_run(1, 2000) - M_PI);
  const double fine = std::abs(qmc_pi_run(1, 200000) - M_PI);
  EXPECT_LT(fine, rough);
}

TEST(QmcEstimate, EmptyTallyIsZero) {
  EXPECT_DOUBLE_EQ(qmc_estimate(nullptr, 0), 0.0);
}

TEST(QmcEstimate, TaskCountDoesNotChangeResult) {
  // Same total samples, different task splits: identical estimate.
  EXPECT_DOUBLE_EQ(qmc_pi_run(4, 10000), qmc_pi_run(8, 5000));
}

TEST(QmcSpec, NearZeroSerialPortion) {
  const auto spec = qmc_pi_spec();
  // eta at 128 MB-equivalent shards must be ~1 (the It precondition).
  const double tp1 = spec.map_ops(128e6) / 1e8;
  const double ts1 =
      (spec.fixed_reduce_ops + spec.merge_ops(spec.intermediate_bytes(128e6))) /
      1e8;
  EXPECT_GT(tp1 / (tp1 + ts1), 0.99);
}

}  // namespace
}  // namespace ipso::wl
