#include "mapreduce/functional.h"
#include "workloads/functional_jobs.h"

#include <gtest/gtest.h>

#include <tuple>

/// Property sweeps over the functional workloads: every (task count, shard
/// size, seed) combination must preserve the correctness invariants — the
/// failure-injection-free core of the functional layer.

namespace ipso::wl {
namespace {

using Shape = std::tuple<std::size_t /*tasks*/, std::size_t /*bytes*/,
                         std::uint64_t /*seed*/>;

class FunctionalShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(FunctionalShapes, WordCountConservesTokens) {
  const auto [tasks, bytes, seed] = GetParam();
  WordCountJob job;
  job.prepare(seed, tasks, bytes);
  for (std::size_t i = 0; i < job.tasks(); ++i) job.run_map(i);
  job.run_reduce();
  EXPECT_TRUE(job.verify());
}

TEST_P(FunctionalShapes, SortProducesSortedPermutation) {
  const auto [tasks, bytes, seed] = GetParam();
  SortJob job;
  job.prepare(seed, tasks, bytes);
  double inter = 0.0;
  for (std::size_t i = 0; i < job.tasks(); ++i) inter += job.run_map(i);
  const double out = job.run_reduce();
  EXPECT_TRUE(job.verify());
  // The merge neither creates nor destroys data.
  EXPECT_NEAR(out, inter, 1e-6);
}

TEST_P(FunctionalShapes, TeraSortChecksumInvariant) {
  const auto [tasks, bytes, seed] = GetParam();
  TeraSortJob job;
  job.prepare(seed, tasks, bytes);
  for (std::size_t i = 0; i < job.tasks(); ++i) job.run_map(i);
  job.run_reduce();
  EXPECT_TRUE(job.verify());
}

TEST_P(FunctionalShapes, QmcWithinTolerance) {
  const auto [tasks, bytes, seed] = GetParam();
  QmcPiJob job(/*tolerance=*/2e-2);  // small sample counts: looser bound
  job.prepare(seed, tasks, bytes);
  for (std::size_t i = 0; i < job.tasks(); ++i) job.run_map(i);
  job.run_reduce();
  EXPECT_TRUE(job.verify());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FunctionalShapes,
    ::testing::Combine(::testing::Values(1u, 2u, 7u, 16u),   // tasks
                       ::testing::Values(512u, 4096u, 20000u),  // bytes
                       ::testing::Values(1u, 42u)));            // seed

}  // namespace
}  // namespace ipso::wl
