#include "spark/engine.h"

#include <gtest/gtest.h>

namespace ipso::spark {
namespace {

SparkAppSpec one_stage(double cached_bytes = 0.0) {
  SparkAppSpec app;
  app.name = "failtest";
  StageSpec s;
  s.name = "work";
  s.task_ops = 1e8;
  s.cached_bytes_per_task = cached_bytes;
  app.stages = {s};
  return app;
}

SparkJobConfig job_of(std::size_t tasks, std::size_t executors,
                      std::uint64_t seed = 1) {
  SparkJobConfig j;
  j.total_tasks = tasks;
  j.executors = executors;
  j.seed = seed;
  return j;
}

TEST(Failures, ZeroProbabilityIsNoop) {
  SparkEngine engine(sim::default_emr_cluster(4));
  const auto r = engine.run(one_stage(), job_of(16, 4));
  for (const auto& s : r.stages) {
    EXPECT_EQ(s.retries, 0u);
    EXPECT_FALSE(s.rolled_back);
  }
}

TEST(Failures, RetriesAppearAndSlowTheJob) {
  SparkEngineParams clean;
  SparkEngineParams faulty;
  faulty.faults.task_failure_prob = 0.3;
  SparkEngine a(sim::default_emr_cluster(8), clean);
  SparkEngine b(sim::default_emr_cluster(8), faulty);
  const auto app = one_stage();
  const auto ra = a.run(app, job_of(64, 8));
  const auto rb = b.run(app, job_of(64, 8));
  std::size_t total_retries = 0;
  for (const auto& s : rb.stages) total_retries += s.retries;
  EXPECT_GT(total_retries, 0u);
  EXPECT_GT(rb.makespan, ra.makespan);
  EXPECT_GT(rb.components.wo, ra.components.wo);
}

TEST(Failures, RetryWasteIsInducedNotParallelWork) {
  SparkEngineParams faulty;
  faulty.faults.task_failure_prob = 0.3;
  SparkEngine clean_engine(sim::default_emr_cluster(8));
  SparkEngine faulty_engine(sim::default_emr_cluster(8), faulty);
  const auto app = one_stage();
  const auto ra = clean_engine.run(app, job_of(64, 8));
  const auto rb = faulty_engine.run(app, job_of(64, 8));
  // Wp counts first attempts only: identical across engines.
  EXPECT_NEAR(ra.components.wp, rb.components.wp, 1e-9);
}

TEST(Failures, SpillAmplifiesFailureRate) {
  SparkEngineParams params;
  params.faults.task_failure_prob = 0.05;
  params.faults.spill_failure_multiplier = 8.0;
  SparkEngine engine(sim::default_emr_cluster(2), params);
  // Spilled config: 16 tasks x 1.5 GB on 2 executors = 12 GB > 8 GB.
  std::size_t spilled_retries = 0, clean_retries = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto spilled =
        engine.run(one_stage(1.5e9), job_of(16, 2, seed));
    const auto clean = engine.run(one_stage(0.0), job_of(16, 2, seed));
    for (const auto& s : spilled.stages) spilled_retries += s.retries;
    for (const auto& s : clean.stages) clean_retries += s.retries;
  }
  EXPECT_GT(spilled_retries, 2 * clean_retries);
}

TEST(Failures, RollbackDoublesStageWall) {
  SparkEngineParams params;
  params.faults.task_failure_prob = 0.9;  // retry exhaustion near-certain
  params.faults.max_task_retries = 2;
  SparkEngine engine(sim::default_emr_cluster(4), params);
  const auto r = engine.run(one_stage(), job_of(16, 4));
  bool any_rollback = false;
  for (const auto& s : r.stages) any_rollback |= s.rolled_back;
  EXPECT_TRUE(any_rollback);
}

TEST(Failures, DeterministicForSeed) {
  SparkEngineParams params;
  params.faults.task_failure_prob = 0.2;
  SparkEngine engine(sim::default_emr_cluster(4), params);
  const auto a = engine.run(one_stage(), job_of(32, 4, 7));
  const auto b = engine.run(one_stage(), job_of(32, 4, 7));
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.stages[0].retries, b.stages[0].retries);
}

}  // namespace
}  // namespace ipso::spark
