#include "stats/linalg.h"

#include "stats/random.h"
#include "stats/surface.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ipso::stats {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_THROW(Matrix(0, 2), std::invalid_argument);
}

TEST(Matrix, Transpose) {
  Matrix m(2, 3);
  m.at(0, 1) = 7.0;
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 7.0);
}

TEST(Matrix, Product) {
  Matrix a(2, 2), b(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(Matrix, ProductShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 2);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, VectorProduct) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  const std::vector<double> v{1.0, 1.0};
  const auto out = a * std::span<const double>(v);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(Solve, TwoByTwo) {
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  const auto x = solve_linear_system(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, RequiresPivoting) {
  // Zero on the diagonal: naive elimination would divide by zero.
  Matrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  const auto x = solve_linear_system(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, SingularThrows) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_THROW(solve_linear_system(a, {1.0, 2.0}), std::invalid_argument);
}

TEST(Solve, RandomRoundTrip) {
  Rng rng(5);
  const std::size_t n = 8;
  Matrix a(n, n);
  std::vector<double> truth(n);
  for (std::size_t r = 0; r < n; ++r) {
    truth[r] = rng.uniform(-2, 2);
    for (std::size_t c = 0; c < n; ++c) a.at(r, c) = rng.uniform(-1, 1);
    a.at(r, r) += 4.0;  // diagonally dominant: well-conditioned
  }
  const auto b = a * std::span<const double>(truth);
  const auto x = solve_linear_system(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], truth[i], 1e-9);
}

TEST(LeastSquares, ExactLineThroughPoints) {
  Matrix x(4, 2);
  std::vector<double> y(4);
  for (int i = 0; i < 4; ++i) {
    x.at(i, 0) = 1.0;
    x.at(i, 1) = i;
    y[static_cast<std::size_t>(i)] = 3.0 + 2.0 * i;
  }
  const auto beta = least_squares(x, y);
  EXPECT_NEAR(beta[0], 3.0, 1e-12);
  EXPECT_NEAR(beta[1], 2.0, 1e-12);
}

TEST(LeastSquares, UnderdeterminedThrows) {
  Matrix x(2, 3);
  std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(least_squares(x, y), std::invalid_argument);
}

TEST(Polyfit, RecoversQuadratic) {
  std::vector<double> xs, ys;
  for (int i = -5; i <= 5; ++i) {
    xs.push_back(i);
    ys.push_back(1.0 - 2.0 * i + 0.5 * i * i);
  }
  const auto c = polyfit(xs, ys, 2);
  EXPECT_NEAR(c[0], 1.0, 1e-9);
  EXPECT_NEAR(c[1], -2.0, 1e-9);
  EXPECT_NEAR(c[2], 0.5, 1e-9);
  EXPECT_NEAR(polyval(c, 2.0), 1.0 - 4.0 + 2.0, 1e-9);
}

TEST(Polyfit, TooFewPointsThrows) {
  std::vector<double> xs{1.0, 2.0}, ys{1.0, 2.0};
  EXPECT_THROW(polyfit(xs, ys, 2), std::invalid_argument);
}

// --- quadratic surface

TEST(Surface, RecoversExactQuadratic) {
  std::vector<SurfacePoint> pts;
  auto truth = [](double x, double y) {
    return 2.0 + 0.5 * x - y + 0.25 * x * x - 0.1 * x * y + 0.05 * y * y;
  };
  for (double x = 0; x <= 4; ++x) {
    for (double y = 0; y <= 4; ++y) pts.push_back({x, y, truth(x, y)});
  }
  const auto s = QuadraticSurface::fit(pts);
  EXPECT_NEAR(s.r_squared(), 1.0, 1e-9);
  EXPECT_NEAR(s(2.5, 1.5), truth(2.5, 1.5), 1e-9);
  EXPECT_NEAR(s.coeffs()[4], -0.1, 1e-9);
}

TEST(Surface, TooFewSamplesThrows) {
  std::vector<SurfacePoint> pts(5);
  EXPECT_THROW(QuadraticSurface::fit(pts), std::invalid_argument);
}

TEST(Surface, SlicesProject) {
  std::vector<SurfacePoint> pts;
  for (double x = 0; x <= 4; ++x) {
    for (double y = 0; y <= 4; ++y) pts.push_back({x, y, x * y});
  }
  const auto s = QuadraticSurface::fit(pts);
  const std::vector<double> ys{1.0, 2.0, 3.0};
  // Fixed-x slice: z = 2y.
  const auto fixed = s.slice_fixed_x(2.0, ys);
  EXPECT_NEAR(fixed[1].y, 4.0, 1e-9);
  // Curve slice x = 2y: z = 2y^2.
  const auto diag = s.slice(ys, [](double y) { return 2.0 * y; });
  EXPECT_NEAR(diag[2].y, 18.0, 1e-9);
}

TEST(Surface, NoisyFitStillCloses) {
  Rng rng(9);
  std::vector<SurfacePoint> pts;
  for (double x = 0; x <= 8; ++x) {
    for (double y = 0; y <= 8; ++y) {
      pts.push_back({x, y, 3.0 + x + 0.5 * y * y + rng.normal(0, 0.05)});
    }
  }
  const auto s = QuadraticSurface::fit(pts);
  EXPECT_GT(s.r_squared(), 0.999);
  EXPECT_NEAR(s(4, 4), 3.0 + 4.0 + 8.0, 0.2);
}

}  // namespace
}  // namespace ipso::stats
