#include "mapreduce/functional.h"

#include "workloads/functional_jobs.h"

#include <gtest/gtest.h>

namespace ipso::mr {
namespace {

MrJobConfig job_of(std::size_t tasks) {
  MrJobConfig j;
  j.num_tasks = tasks;
  j.shard_bytes = 128e6;  // logical size; functional layer down-samples
  j.seed = 11;
  return j;
}

TEST(Functional, WordCountVerifiesAndMeasuresConstantIntermediate) {
  MrEngine engine(sim::default_emr_cluster(4));
  wl::WordCountJob job;
  const auto r =
      run_functional(engine, job, wl::wordcount_spec(), job_of(4));
  EXPECT_TRUE(r.verified);
  // A combiner histogram over a 1000-word dictionary: kilobytes per task.
  EXPECT_GT(r.measured_fixed_intermediate, 1e3);
  EXPECT_LT(r.measured_fixed_intermediate, 64e3);
  EXPECT_DOUBLE_EQ(r.grounded_spec.fixed_intermediate_bytes,
                   r.measured_fixed_intermediate);
  EXPECT_GT(r.simulated.makespan, 0.0);
}

TEST(Functional, SortForwardsAllDataAndSorts) {
  MrEngine engine(sim::default_emr_cluster(4));
  wl::SortJob job;
  const auto r = run_functional(engine, job, wl::sort_spec(), job_of(4));
  EXPECT_TRUE(r.verified);
  // Sorted words re-serialize to ~the input size (token + separator).
  EXPECT_NEAR(r.measured_ratio, 1.0, 0.05);
  EXPECT_NEAR(r.grounded_spec.intermediate_ratio, r.measured_ratio, 1e-12);
  // The grounded simulation carries the measured ratio into the
  // intermediate volume.
  EXPECT_NEAR(r.simulated.intermediate_bytes,
              4.0 * 128e6 * r.measured_ratio, 1.0);
}

TEST(Functional, TeraSortChecksumSurvivesTheMerge) {
  MrEngine engine(sim::default_emr_cluster(8));
  wl::TeraSortJob job;
  const auto r =
      run_functional(engine, job, wl::terasort_spec(), job_of(8));
  EXPECT_TRUE(r.verified);
  EXPECT_NEAR(r.measured_ratio, 1.0, 1e-9);  // binary records: exact
}

TEST(Functional, QmcEstimatesPi) {
  MrEngine engine(sim::default_emr_cluster(8));
  wl::QmcPiJob job(/*tolerance=*/5e-3);
  const auto r = run_functional(engine, job, wl::qmc_pi_spec(), job_of(8));
  EXPECT_TRUE(r.verified);
  // Counter output only: ~16 bytes per task regardless of samples.
  EXPECT_NEAR(r.measured_fixed_intermediate, 16.0, 1e-9);
}

TEST(Functional, RejectsZeroTasks) {
  MrEngine engine(sim::default_emr_cluster(1));
  wl::WordCountJob job;
  EXPECT_THROW(run_functional(engine, job, wl::wordcount_spec(), job_of(0)),
               std::invalid_argument);
}

TEST(Functional, GroundedSpeedupMatchesSpecSpeedup) {
  // The grounded spec (measured ratios) must yield nearly the same scaling
  // behaviour as the calibrated spec — evidence that the hand-written
  // constants agree with the real computation.
  wl::SortJob job;
  for (std::size_t n : {2u, 8u}) {
    MrEngine engine(sim::default_emr_cluster(n));
    MrJobConfig cfg = job_of(n);
    const auto grounded =
        run_functional(engine, job, wl::sort_spec(), cfg);
    const auto pure = engine.run_parallel(wl::sort_spec(), cfg);
    EXPECT_NEAR(grounded.simulated.makespan, pure.makespan,
                0.05 * pure.makespan);
  }
}

TEST(Functional, DownsamplingCapRespected) {
  MrEngine engine(sim::default_emr_cluster(2));
  wl::SortJob job;
  MrJobConfig cfg = job_of(2);
  const auto r = run_functional(engine, job, wl::sort_spec(), cfg,
                                /*functional_cap=*/4096);
  // The functional layer computed on at most 4 KiB per shard...
  EXPECT_LE(job.input_bytes(0), 4200.0);
  // ...while the simulation ran at the logical 128 MB scale.
  EXPECT_GT(r.simulated.intermediate_bytes, 1e8);
}

}  // namespace
}  // namespace ipso::mr
