#include "stats/nonlinear.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace ipso::stats {
namespace {

TEST(NelderMead, MinimizesQuadraticBowl) {
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.0) * (x[1] + 1.0);
  };
  const MinimizeResult r = nelder_mead(f, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.params[0], 3.0, 1e-4);
  EXPECT_NEAR(r.params[1], -1.0, 1e-4);
  EXPECT_NEAR(r.value, 0.0, 1e-8);
}

TEST(NelderMead, MinimizesRosenbrock) {
  auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opts;
  opts.max_iters = 20000;
  const MinimizeResult r = nelder_mead(f, {-1.2, 1.0}, opts);
  EXPECT_NEAR(r.params[0], 1.0, 1e-3);
  EXPECT_NEAR(r.params[1], 1.0, 1e-3);
}

TEST(NelderMead, ThrowsOnEmptyStart) {
  auto f = [](const std::vector<double>&) { return 0.0; };
  EXPECT_THROW(nelder_mead(f, {}), std::invalid_argument);
}

TEST(NelderMead, OneDimensional) {
  auto f = [](const std::vector<double>& x) {
    return std::pow(x[0] - 2.5, 2.0);
  };
  const MinimizeResult r = nelder_mead(f, {10.0});
  EXPECT_NEAR(r.params[0], 2.5, 1e-4);
}

TEST(FitCurve, RecoversExponentialDecay) {
  Series s("decay");
  for (int i = 0; i <= 20; ++i) {
    const double x = i * 0.5;
    s.add(x, 5.0 * std::exp(-0.7 * x));
  }
  auto model = [](const std::vector<double>& p, double x) {
    return p[0] * std::exp(-p[1] * x);
  };
  const MinimizeResult r = fit_curve(s, model, {1.0, 0.1});
  EXPECT_NEAR(r.params[0], 5.0, 1e-3);
  EXPECT_NEAR(r.params[1], 0.7, 1e-3);
}

TEST(Hyperbolic, RecoversExactCurve) {
  // Fig. 8's task-time model: E[max Tp,i(n)] = a/n + c.
  Series s("tp");
  for (double n : {10.0, 30.0, 60.0, 90.0}) s.add(n, 2001.0 / n + 9.0);
  const HyperbolicFit f = fit_hyperbolic(s);
  EXPECT_NEAR(f.a, 2001.0, 1e-9);
  EXPECT_NEAR(f.c, 9.0, 1e-9);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(Hyperbolic, FitsPaperTableOne) {
  // Paper Table I values; extrapolation to n=1 should be near the paper's
  // E[Tp,1(1)] = 1602.5 within a broad tolerance (the paper's own value
  // came from a particular matched curve).
  Series s("tableI");
  s.add(10, 209.0);
  s.add(30, 79.3);
  s.add(60, 43.7);
  s.add(90, 31.1);
  const HyperbolicFit f = fit_hyperbolic(s);
  const double at1 = f(1.0);
  EXPECT_GT(at1, 1200.0);
  EXPECT_LT(at1, 2400.0);
  EXPECT_GT(f.r_squared, 0.99);
}

TEST(Hyperbolic, ThrowsOnInsufficientData) {
  Series s("one");
  s.add(10, 5.0);
  EXPECT_THROW(fit_hyperbolic(s), std::invalid_argument);
}

TEST(Hyperbolic, IgnoresNonPositiveX) {
  Series s("mixed");
  s.add(-1.0, 99.0);
  s.add(0.0, 99.0);
  s.add(10, 2001.0 / 10 + 9.0);
  s.add(20, 2001.0 / 20 + 9.0);
  const HyperbolicFit f = fit_hyperbolic(s);
  EXPECT_NEAR(f.a, 2001.0, 1e-9);
}

}  // namespace
}  // namespace ipso::stats
