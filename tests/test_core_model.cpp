#include "core/model.h"

#include "core/laws.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ipso {
namespace {

ScalingFactors no_overhead_fixed_time() {
  return {identity_factor(), constant_factor(1.0), constant_factor(0.0)};
}

TEST(WorkloadComponents, SpeedupByEqSeven) {
  WorkloadComponents c;
  c.n = 4;
  c.wp = 80.0;
  c.ws = 20.0;
  c.wo = 5.0;
  c.max_tp = 25.0;
  EXPECT_DOUBLE_EQ(c.sequential_time(), 100.0);
  EXPECT_DOUBLE_EQ(c.parallel_time(), 50.0);
  EXPECT_DOUBLE_EQ(c.speedup(), 2.0);
  EXPECT_DOUBLE_EQ(speedup_from_components(c), 2.0);
}

TEST(WorkloadComponents, ZeroDenominatorYieldsZero) {
  WorkloadComponents c;
  EXPECT_DOUBLE_EQ(c.speedup(), 0.0);
}

TEST(Deterministic, IdentityAtNOne) {
  const auto f = no_overhead_fixed_time();
  EXPECT_DOUBLE_EQ(speedup_deterministic(f, 0.6, 1.0), 1.0);
}

TEST(Deterministic, ThrowsOnBadN) {
  const auto f = no_overhead_fixed_time();
  EXPECT_THROW(speedup_deterministic(f, 0.5, 0.5), std::invalid_argument);
}

TEST(Deterministic, ThrowsOnBadEta) {
  const auto f = no_overhead_fixed_time();
  EXPECT_THROW(speedup_deterministic(f, 1.5, 2.0), std::invalid_argument);
}

TEST(Deterministic, OverheadReducesSpeedup) {
  ScalingFactors clean = no_overhead_fixed_time();
  ScalingFactors loaded = clean;
  loaded.q = make_q(0.01, 1.5);
  for (double n : {2.0, 8.0, 32.0, 128.0}) {
    EXPECT_LT(speedup_deterministic(loaded, 0.9, n),
              speedup_deterministic(clean, 0.9, n));
  }
}

TEST(Deterministic, InProportionScalingCapsFixedTimeSpeedup) {
  // IN(n) = n makes the merge grow as fast as the map: speedup must level
  // off even for the fixed-time workload (the paper's first new pathology).
  ScalingFactors f{identity_factor(), identity_factor(), constant_factor(0.0)};
  const double eta = 0.9;
  const double s_large = speedup_deterministic(f, eta, 1e7);
  // Bound: (eta*alpha + 1-eta)/(1-eta) with alpha = 1 -> 10.
  EXPECT_NEAR(s_large, 10.0, 1e-4);
  EXPECT_LT(speedup_deterministic(f, eta, 100.0), 10.0);
}

TEST(Statistical, MatchesDeterministicWhenNoVariance) {
  // E[max Tp,i(n)] = tp(1)*EX(n)/n collapses Eq. 8 into Eq. 10.
  ScalingFactors f{identity_factor(), linear_factor(0.3, 0.7),
                   make_q(0.001, 1.0)};
  const double tp1 = 30.0, ts1 = 10.0;
  const double eta = eta_from_times(tp1, ts1);
  for (double n : {1.0, 2.0, 8.0, 64.0}) {
    StatisticalInputs m;
    m.e_tp1 = tp1;
    m.e_ts1 = ts1;
    m.e_max_tp = tp1 * f.ex(n) / n;
    EXPECT_NEAR(speedup_statistical(f, m, n),
                speedup_deterministic(f, eta, n), 1e-12);
  }
}

TEST(Statistical, StragglersReduceSpeedup) {
  ScalingFactors f = no_overhead_fixed_time();
  StatisticalInputs fast{/*e_max_tp=*/10.0, /*e_tp1=*/40.0, /*e_ts1=*/10.0};
  StatisticalInputs slow{/*e_max_tp=*/18.0, /*e_tp1=*/40.0, /*e_ts1=*/10.0};
  EXPECT_GT(speedup_statistical(f, fast, 4.0),
            speedup_statistical(f, slow, 4.0));
}

TEST(Statistical, ThrowsOnZeroBaseline) {
  ScalingFactors f = no_overhead_fixed_time();
  StatisticalInputs m{1.0, 0.0, 0.0};
  EXPECT_THROW(speedup_statistical(f, m, 2.0), std::invalid_argument);
}

TEST(Asymptotic, MatchesGustafsonWhenClean) {
  AsymptoticParams p;
  p.type = WorkloadType::kFixedTime;
  p.eta = 0.8;
  p.alpha = 1.0;
  p.delta = 1.0;  // IN(n) = 1
  p.beta = 0.0;
  p.gamma = 0.0;
  for (double n : {1.0, 4.0, 64.0, 256.0}) {
    EXPECT_NEAR(speedup_asymptotic(p, n), laws::gustafson(0.8, n), 1e-12);
  }
}

TEST(Asymptotic, MatchesAmdahlWhenFixedSizeClean) {
  AsymptoticParams p;
  p.type = WorkloadType::kFixedSize;
  p.eta = 0.8;
  p.alpha = 1.0;
  p.delta = 0.0;
  for (double n : {1.0, 4.0, 64.0, 256.0}) {
    EXPECT_NEAR(speedup_asymptotic(p, n), laws::amdahl(0.8, n), 1e-12);
  }
}

TEST(Asymptotic, EtaOneUsesEqSeventeen) {
  AsymptoticParams p;
  p.eta = 1.0;
  p.beta = 0.01;
  p.gamma = 2.0;
  for (double n : {2.0, 10.0, 100.0}) {
    EXPECT_NEAR(speedup_asymptotic(p, n), n / (1.0 + 0.01 * n * n), 1e-12);
  }
}

TEST(Asymptotic, SuperlinearOverheadEventuallyBelowOne) {
  AsymptoticParams p;
  p.eta = 1.0;
  p.beta = 1e-3;
  p.gamma = 2.0;
  // "Negative speedup" in the paper's sense: parallel slower than sequential.
  EXPECT_LT(speedup_asymptotic(p, 5000.0), 1.0);
}

TEST(Asymptotic, AgreesWithMaterializedDeterministicModel) {
  AsymptoticParams p;
  p.type = WorkloadType::kFixedTime;
  p.eta = 0.7;
  p.alpha = 2.0;
  p.delta = 0.5;
  p.beta = 0.005;
  p.gamma = 1.2;
  const ScalingFactors f = p.materialize();
  for (double n : {2.0, 8.0, 32.0, 128.0}) {
    // materialize() normalizes IN(1) = 1/alpha, i.e. workloads where
    // Ws(1) carries the alpha factor; the asymptotic formula absorbs the
    // same constant, so the two must agree exactly for n > 1.
    EXPECT_NEAR(speedup_asymptotic(p, n), speedup_deterministic(f, p.eta, n),
                1e-9);
  }
}

TEST(EtaFromTimes, Basics) {
  EXPECT_DOUBLE_EQ(eta_from_times(30.0, 10.0), 0.75);
  EXPECT_DOUBLE_EQ(eta_from_times(10.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(eta_from_times(0.0, 0.0), 0.0);
}

TEST(Curves, SweepEvaluation) {
  const std::vector<double> ns{1, 2, 4, 8};
  const auto f = no_overhead_fixed_time();
  const SpeedupCurve det = speedup_curve(f, 1.0, ns);
  ASSERT_EQ(det.size(), 4u);
  EXPECT_DOUBLE_EQ(det.ns[3], 8.0);
  EXPECT_DOUBLE_EQ(det.speedups[3], 8.0);

  AsymptoticParams p;
  p.eta = 1.0;
  const SpeedupCurve asym = speedup_curve(p, ns);
  EXPECT_DOUBLE_EQ(asym.speedups[2], 4.0);
}

TEST(Curves, AsSeriesKeepsOrderAndName) {
  const std::vector<double> ns{1, 2, 4};
  AsymptoticParams p;
  p.eta = 1.0;
  const stats::Series s = speedup_curve(p, ns).as_series("model S(n)");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.name(), "model S(n)");
  EXPECT_DOUBLE_EQ(s[2].x, 4.0);
  EXPECT_DOUBLE_EQ(s[2].y, 4.0);
}

}  // namespace
}  // namespace ipso
