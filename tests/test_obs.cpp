#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace ipso::obs {
namespace {

/// Every test runs with the global switch restored afterwards: the rest of
/// the suite must observe obs disabled (the default).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    if (!enabled()) {
      GTEST_SKIP() << "obs compiled out (IPSO_OBS_DISABLED)";
    }
    MetricsRegistry::global().reset();
    Tracer::global().clear();
  }
  void TearDown() override {
    set_enabled(false);
    MetricsRegistry::global().reset();
    Tracer::global().clear();
  }
};

TEST_F(ObsTest, CounterAccumulates) {
  const Counter c("test.counter.basic");
  c.add();
  c.add(2.5);
  const auto snap = MetricsRegistry::global().snapshot();
  ASSERT_TRUE(snap.counters.count("test.counter.basic"));
  EXPECT_DOUBLE_EQ(snap.counters.at("test.counter.basic"), 3.5);
}

TEST_F(ObsTest, GaugeIsLastWriteWins) {
  const Gauge g("test.gauge.basic");
  g.set(10.0);
  g.set(4.0);
  const auto snap = MetricsRegistry::global().snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.gauge.basic"), 4.0);
}

TEST_F(ObsTest, HistogramCountsSumAndQuantiles) {
  const Histogram h("test.hist.basic");
  for (int i = 0; i < 100; ++i) h.observe(1.0);  // all in one bucket
  const auto snap = MetricsRegistry::global().snapshot();
  const HistogramStats& s = snap.histograms.at("test.hist.basic");
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
  // Bucket-midpoint resolution: the quantile lands in [1, 2).
  EXPECT_GE(s.quantile(0.5), 1.0);
  EXPECT_LT(s.quantile(0.5), 2.0);
}

TEST_F(ObsTest, SameNameYieldsSameInstrument) {
  const Counter a("test.counter.shared");
  const Counter b("test.counter.shared");
  a.add(1.0);
  b.add(2.0);
  const auto snap = MetricsRegistry::global().snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("test.counter.shared"), 3.0);
}

TEST_F(ObsTest, UpdatesAreDroppedWhileDisabled) {
  const Counter c("test.counter.gated");
  set_enabled(false);
  c.add(100.0);
  set_enabled(true);
  c.add(1.0);
  const auto snap = MetricsRegistry::global().snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("test.counter.gated"), 1.0);
}

TEST_F(ObsTest, ConcurrentCountersMergeExactly) {
  // Thread-local shards: concurrent adds of integers must merge without
  // loss (each shard is only written by its owner).
  const Counter c("test.counter.mt");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = MetricsRegistry::global().snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("test.counter.mt"),
                   static_cast<double>(kThreads) * kAdds);
}

TEST_F(ObsTest, RegistryCapReturnsInvalidInstrument) {
  MetricsRegistry reg;
  std::size_t last = 0;
  for (std::size_t i = 0; i < kMaxGauges; ++i) {
    last = reg.gauge_id("g" + std::to_string(i));
    EXPECT_NE(last, kInvalidInstrument);
  }
  EXPECT_EQ(reg.gauge_id("one-too-many"), kInvalidInstrument);
  // Updates against the sentinel must be safely ignored.
  reg.gauge_set(kInvalidInstrument, 1.0);
}

TEST_F(ObsTest, ScopedSpanLandsOnThreadTrack) {
  { ScopedSpan span("unit span", "test"); }
  const auto spans = Tracer::global().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "unit span");
  EXPECT_EQ(spans[0].category, "test");
  EXPECT_GE(spans[0].end_us, spans[0].start_us);
  const auto tracks = Tracer::global().tracks();
  ASSERT_LT(spans[0].track, tracks.size());
  EXPECT_FALSE(tracks[spans[0].track].simulated);
}

TEST_F(ObsTest, SimulatedSpanUsesCallerTimestamps) {
  const std::uint32_t track = make_sim_track("sim-track");
  ASSERT_NE(track, Tracer::kInvalidTrack);
  record_span(track, "sim span", "test", 1.5, 2.5, "\"attr\":\"Wp\"");
  const auto spans = Tracer::global().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].start_us, 1.5e6);
  EXPECT_DOUBLE_EQ(spans[0].end_us, 2.5e6);
  EXPECT_TRUE(Tracer::global().tracks()[track].simulated);
}

TEST_F(ObsTest, RingOverwritesOldestAndCountsDrops) {
  Tracer small(4);
  const SpanRecord base{"s", "t", "", 0, 0.0, 1.0};
  for (int i = 0; i < 6; ++i) {
    SpanRecord rec = base;
    rec.name = "s" + std::to_string(i);
    small.record(rec);
  }
  const auto spans = small.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "s2");  // s0, s1 overwritten
  EXPECT_EQ(spans.back().name, "s5");
  EXPECT_EQ(small.dropped(), 2u);
}

TEST_F(ObsTest, ChromeTraceIsWellFormedAndMonotone) {
  const std::uint32_t track = make_sim_track("job");
  record_span(track, "stage b", "test", 1.0, 2.0);
  record_span(track, "stage a", "test", 0.0, 1.0);
  record_span(track, "whole job", "test", 0.0, 2.0);
  { ScopedSpan span("real work", "test"); }

  const std::string json = chrome_trace_json();
  // Structural spot-checks (the CI validator parses it for real).
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);

  // B/E balance per event stream: count markers.
  const auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), count("\"ph\":\"E\""));
  EXPECT_EQ(count("\"ph\":\"B\""), 4u);
}

TEST_F(ObsTest, MetricsExportersIncludeEveryKind) {
  Counter("test.exp.counter").add(2.0);
  Gauge("test.exp.gauge").set(7.0);
  Histogram("test.exp.hist").observe(0.5);
  const auto snap = MetricsRegistry::global().snapshot();

  const std::string json = metrics_json(snap);
  EXPECT_NE(json.find("test.exp.counter"), std::string::npos);
  EXPECT_NE(json.find("test.exp.gauge"), std::string::npos);
  EXPECT_NE(json.find("test.exp.hist"), std::string::npos);

  const std::string csv = metrics_csv(snap);
  EXPECT_NE(csv.find("counter,test.exp.counter"), std::string::npos);
  EXPECT_NE(csv.find("gauge,test.exp.gauge"), std::string::npos);
  EXPECT_NE(csv.find("histogram,test.exp.hist"), std::string::npos);
}

TEST_F(ObsTest, ResetClearsValuesButKeepsNames) {
  const Counter c("test.counter.reset");
  c.add(5.0);
  MetricsRegistry::global().reset();
  c.add(1.0);  // handle id survives the reset
  const auto snap = MetricsRegistry::global().snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("test.counter.reset"), 1.0);
}

TEST(ObsDisabled, TraceSessionWithEmptyPathIsInert) {
  {
    TraceSession session{std::string()};
    EXPECT_FALSE(session.active());
    EXPECT_FALSE(enabled());
  }
  EXPECT_FALSE(enabled());
}

}  // namespace
}  // namespace ipso::obs
