#include "core/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

/// Wrapper-semantics tests for ipso::sync (core/sync.h). The *static* side
/// of the thread-safety story — clang rejecting an unguarded write or a
/// lock-order inversion — is proven by the compile-fail seeds under
/// tools/lint/selftest/ (run_lint.py --self-test); here we pin down the
/// runtime behavior the wrappers must keep on every compiler, including the
/// gcc no-op-macro path this very translation unit exercises.

namespace ipso::sync {
namespace {

TEST(SyncMutex, LockUnlockTryLock) {
  Mutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock()) << "already held exclusively";
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncMutex, GuardsACounterAcrossThreads) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SyncMutexLock, EarlyUnlockAndRelock) {
  Mutex mu;
  MutexLock lock(mu);
  lock.unlock();
  EXPECT_TRUE(mu.try_lock()) << "early unlock() must release the mutex";
  mu.unlock();
  lock.lock();
  EXPECT_FALSE(mu.try_lock()) << "relock() must re-acquire";
  // Destructor releases the re-acquired mutex; a double-unlock here would
  // be UB the sanitizer legs flag.
}

TEST(SyncMutexLock, DestructorSkipsReleaseAfterEarlyUnlock) {
  Mutex mu;
  {
    MutexLock lock(mu);
    lock.unlock();
  }  // dtor must not unlock again
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncSharedMutex, ManyReadersExcludeAWriter) {
  SharedMutex mu;
  mu.lock_shared();
  EXPECT_TRUE(mu.try_lock_shared()) << "readers share";
  EXPECT_FALSE(mu.try_lock()) << "writer excluded while read-held";
  mu.unlock_shared();
  mu.unlock_shared();
  EXPECT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock_shared()) << "readers excluded while write-held";
  mu.unlock();
}

TEST(SyncSharedMutex, GuardTypesPairAcquisitionWithRelease) {
  SharedMutex mu;
  {
    ReaderLock r1(mu);
    ReaderLock r2(mu);
    EXPECT_FALSE(mu.try_lock());
  }
  {
    WriterLock w(mu);
    EXPECT_FALSE(mu.try_lock_shared());
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncCondVar, PredicateWaitSeesNotifiedState) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;

  std::thread consumer([&] {
    MutexLock lock(mu);
    cv.wait(mu, [&] { return ready; });
    observed = 42;
  });

  // Unconditional-notify-before-wait is the classic lost-wakeup shape; the
  // predicate overload must be immune because it re-checks under the lock.
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_all();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(SyncCondVar, WaitReacquiresTheMutexBeforeReturning) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::atomic<bool> woke{false};

  std::thread waiter([&] {
    MutexLock lock(mu);
    cv.wait(mu, [&] { return ready; });
    // Holding mu here: the main thread's try_lock below must fail until
    // this scope exits.
    woke.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });

  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  while (!woke.load()) std::this_thread::yield();
  EXPECT_FALSE(mu.try_lock()) << "waiter must hold the mutex after wait()";
  waiter.join();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncStats, ProfileMatchesCompileTimeSwitch) {
  // Default builds compile the contention counters out entirely; the
  // IPSO_SYNC_STATS bench build keeps per-named-mutex counts. Either way
  // profile() and stats_compiled_in() must agree.
  Mutex named("test.sync.profiled");
  {
    MutexLock lock(named);
  }
  const std::vector<MutexProfile> profiles = profile();
  if (!stats_compiled_in()) {
    EXPECT_TRUE(profiles.empty());
    return;
  }
  bool found = false;
  for (const MutexProfile& p : profiles) {
    if (p.name == "test.sync.profiled") {
      found = true;
      EXPECT_GE(p.acquisitions, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SyncStats, ContentionIsCountedWhenCompiledIn) {
  if (!stats_compiled_in()) GTEST_SKIP() << "IPSO_SYNC_STATS is off";
  Mutex named("test.sync.contended");
  std::atomic<bool> held{false};
  std::thread holder([&] {
    MutexLock lock(named);
    held.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  while (!held.load()) std::this_thread::yield();
  {
    MutexLock lock(named);  // must contend with the holder
  }
  holder.join();
  for (const MutexProfile& p : profile()) {
    if (p.name == "test.sync.contended") {
      EXPECT_GE(p.contended, 1u);
      EXPECT_GE(p.acquisitions, 2u);
      EXPECT_GT(p.hold_ns, 0u);
      return;
    }
  }
  FAIL() << "named mutex missing from profile()";
}

}  // namespace
}  // namespace ipso::sync
