#include "trace/cli_opts.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace ipso {
namespace {

TEST(CliOpts, ThreadsFlagBothSpellings) {
  const char* argv1[] = {"prog", "--threads", "4"};
  EXPECT_EQ(trace::runner_config_from_args(3, const_cast<char**>(argv1))
                .threads,
            4u);
  const char* argv2[] = {"prog", "--threads=7"};
  EXPECT_EQ(trace::runner_config_from_args(2, const_cast<char**>(argv2))
                .threads,
            7u);
}

TEST(CliOpts, ThreadsFlagRejectsGarbage) {
  const char* argv1[] = {"prog", "--threads", "zero"};
  EXPECT_EQ(trace::runner_config_from_args(3, const_cast<char**>(argv1))
                .threads,
            0u);
  const char* argv2[] = {"prog", "--threads=99999"};
  EXPECT_EQ(trace::runner_config_from_args(2, const_cast<char**>(argv2))
                .threads,
            0u);
}

TEST(CliOpts, FaultFlags) {
  const char* argv[] = {"prog", "--fail-prob=0.05", "--max-retries", "2",
                        "--speculate=0.1"};
  const auto p = trace::fault_params_from_args(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(p.task_failure_prob, 0.05);
  EXPECT_EQ(p.max_task_retries, 2u);
  EXPECT_TRUE(p.speculation);
  EXPECT_DOUBLE_EQ(p.speculation_fraction, 0.1);
}

TEST(CliOpts, TraceOutFlagBothSpellings) {
  const char* argv1[] = {"prog", "--trace-out", "/tmp/t.json"};
  EXPECT_EQ(trace::trace_out_from_args(3, const_cast<char**>(argv1)),
            "/tmp/t.json");
  const char* argv2[] = {"prog", "--trace-out=trace.json"};
  EXPECT_EQ(trace::trace_out_from_args(2, const_cast<char**>(argv2)),
            "trace.json");
}

TEST(CliOpts, TraceOutAbsentAndNoEnvIsEmpty) {
  // The test environment must not leak IPSO_TRACE into this assertion.
  const char* saved = std::getenv("IPSO_TRACE");
  unsetenv("IPSO_TRACE");
  const char* argv[] = {"prog"};
  EXPECT_TRUE(trace::trace_out_from_args(1, const_cast<char**>(argv)).empty());
  if (saved != nullptr) setenv("IPSO_TRACE", saved, 1);
}

TEST(CliOpts, TraceOutFallsBackToEnv) {
  const char* saved = std::getenv("IPSO_TRACE");
  setenv("IPSO_TRACE", "/tmp/env-trace.json", 1);
  const char* argv[] = {"prog"};
  EXPECT_EQ(trace::trace_out_from_args(1, const_cast<char**>(argv)),
            "/tmp/env-trace.json");
  const char* argv2[] = {"prog", "--trace-out=flag.json"};
  EXPECT_EQ(trace::trace_out_from_args(2, const_cast<char**>(argv2)),
            "flag.json");  // the flag wins over the env
  if (saved != nullptr) {
    setenv("IPSO_TRACE", saved, 1);
  } else {
    unsetenv("IPSO_TRACE");
  }
}

TEST(CliOpts, ParseCliOptionsCombinesEverything) {
  sim::FaultModelParams base;
  base.max_task_retries = 9;
  const char* argv[] = {"prog", "--threads=3", "--fail-prob=0.01",
                        "--trace-out=all.json"};
  const auto opts =
      trace::parse_cli_options(4, const_cast<char**>(argv), base);
  EXPECT_EQ(opts.runner.threads, 3u);
  EXPECT_DOUBLE_EQ(opts.faults.task_failure_prob, 0.01);
  EXPECT_EQ(opts.faults.max_task_retries, 9u);  // base preserved
  EXPECT_EQ(opts.trace_out, "all.json");
}

TEST(CliOpts, FlagHelpListsEveryFlag) {
  const std::string help = trace::flag_help();
  for (const char* flag : {"--threads", "--fail-prob", "--speculate",
                           "--max-retries", "--trace-out", "--help",
                           "--version"}) {
    EXPECT_NE(help.find(flag), std::string::npos) << flag;
  }
}

TEST(CliOpts, VersionStringHasNameAndStandard) {
  const std::string v = trace::version_string();
  EXPECT_EQ(v.rfind("ipso ", 0), 0u) << v;
  EXPECT_NE(v.find("C++20"), std::string::npos) << v;
}

TEST(CliOpts, HandleInfoFlagsDetectsHelpAndVersion) {
  const char* help1[] = {"prog", "--help"};
  EXPECT_TRUE(trace::handle_info_flags(2, const_cast<char**>(help1)));
  const char* help2[] = {"prog", "--threads=2", "-h"};
  EXPECT_TRUE(trace::handle_info_flags(3, const_cast<char**>(help2), "demo"));
  const char* version[] = {"prog", "--version"};
  EXPECT_TRUE(trace::handle_info_flags(2, const_cast<char**>(version)));
}

TEST(CliOpts, HandleInfoFlagsIgnoresOrdinaryArgs) {
  const char* argv[] = {"prog", "--threads", "4", "--trace-out=x.json"};
  EXPECT_FALSE(trace::handle_info_flags(4, const_cast<char**>(argv)));
  const char* bare[] = {"prog"};
  EXPECT_FALSE(trace::handle_info_flags(1, const_cast<char**>(bare)));
}

}  // namespace
}  // namespace ipso
