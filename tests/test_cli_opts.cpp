#include "trace/cli_opts.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace ipso {
namespace {

TEST(CliOpts, ThreadsFlagBothSpellings) {
  const char* argv1[] = {"prog", "--threads", "4"};
  EXPECT_EQ(trace::runner_config_from_args(3, const_cast<char**>(argv1))
                .threads,
            4u);
  const char* argv2[] = {"prog", "--threads=7"};
  EXPECT_EQ(trace::runner_config_from_args(2, const_cast<char**>(argv2))
                .threads,
            7u);
}

TEST(CliOpts, ThreadsFlagRejectsGarbage) {
  const char* argv1[] = {"prog", "--threads", "zero"};
  EXPECT_EQ(trace::runner_config_from_args(3, const_cast<char**>(argv1))
                .threads,
            0u);
  const char* argv2[] = {"prog", "--threads=99999"};
  EXPECT_EQ(trace::runner_config_from_args(2, const_cast<char**>(argv2))
                .threads,
            0u);
}

TEST(CliOpts, FaultFlags) {
  const char* argv[] = {"prog", "--fail-prob=0.05", "--max-retries", "2",
                        "--speculate=0.1"};
  const auto p = trace::fault_params_from_args(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(p.task_failure_prob, 0.05);
  EXPECT_EQ(p.max_task_retries, 2u);
  EXPECT_TRUE(p.speculation);
  EXPECT_DOUBLE_EQ(p.speculation_fraction, 0.1);
}

TEST(CliOpts, TraceOutFlagBothSpellings) {
  const char* argv1[] = {"prog", "--trace-out", "/tmp/t.json"};
  EXPECT_EQ(trace::trace_out_from_args(3, const_cast<char**>(argv1)),
            "/tmp/t.json");
  const char* argv2[] = {"prog", "--trace-out=trace.json"};
  EXPECT_EQ(trace::trace_out_from_args(2, const_cast<char**>(argv2)),
            "trace.json");
}

TEST(CliOpts, TraceOutAbsentAndNoEnvIsEmpty) {
  // The test environment must not leak IPSO_TRACE into this assertion.
  const char* saved = std::getenv("IPSO_TRACE");
  unsetenv("IPSO_TRACE");
  const char* argv[] = {"prog"};
  EXPECT_TRUE(trace::trace_out_from_args(1, const_cast<char**>(argv)).empty());
  if (saved != nullptr) setenv("IPSO_TRACE", saved, 1);
}

TEST(CliOpts, TraceOutFallsBackToEnv) {
  const char* saved = std::getenv("IPSO_TRACE");
  setenv("IPSO_TRACE", "/tmp/env-trace.json", 1);
  const char* argv[] = {"prog"};
  EXPECT_EQ(trace::trace_out_from_args(1, const_cast<char**>(argv)),
            "/tmp/env-trace.json");
  const char* argv2[] = {"prog", "--trace-out=flag.json"};
  EXPECT_EQ(trace::trace_out_from_args(2, const_cast<char**>(argv2)),
            "flag.json");  // the flag wins over the env
  if (saved != nullptr) {
    setenv("IPSO_TRACE", saved, 1);
  } else {
    unsetenv("IPSO_TRACE");
  }
}

TEST(CliOpts, ParseCliOptionsCombinesEverything) {
  sim::FaultModelParams base;
  base.max_task_retries = 9;
  const char* argv[] = {"prog", "--threads=3", "--fail-prob=0.01",
                        "--trace-out=all.json"};
  const auto opts =
      trace::parse_cli_options(4, const_cast<char**>(argv), base);
  EXPECT_EQ(opts.runner.threads, 3u);
  EXPECT_DOUBLE_EQ(opts.faults.task_failure_prob, 0.01);
  EXPECT_EQ(opts.faults.max_task_retries, 9u);  // base preserved
  EXPECT_EQ(opts.trace_out, "all.json");
}

}  // namespace
}  // namespace ipso
