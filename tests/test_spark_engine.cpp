#include "spark/engine.h"

#include "spark/eventlog.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ipso::spark {
namespace {

SparkAppSpec two_stage_app() {
  SparkAppSpec app;
  app.name = "test";
  StageSpec a;
  a.name = "map";
  a.task_ops = 1e8;  // 1 s per task on the default cluster
  StageSpec b;
  b.name = "agg";
  b.task_ops = 5e7;
  b.task_count_factor = 0.5;
  app.stages = {a, b};
  return app;
}

SparkJobConfig job_of(std::size_t n_tasks, std::size_t executors) {
  SparkJobConfig j;
  j.total_tasks = n_tasks;
  j.executors = executors;
  return j;
}

TEST(SparkEngine, RejectsZeroConfig) {
  SparkEngine engine(sim::default_emr_cluster(2));
  EXPECT_THROW(engine.run(two_stage_app(), job_of(0, 2)),
               std::invalid_argument);
  EXPECT_THROW(engine.run(two_stage_app(), job_of(2, 0)),
               std::invalid_argument);
}

TEST(SparkEngine, RejectsInvalidParams) {
  SparkEngineParams params;
  params.spill_slowdown = 0.5;
  EXPECT_THROW(SparkEngine(sim::default_emr_cluster(1), params),
               std::invalid_argument);
}

TEST(SparkEngine, StageCountIsStagesTimesIterations) {
  SparkEngine engine(sim::default_emr_cluster(4));
  SparkAppSpec app = two_stage_app();
  app.iterations = 3;
  const auto r = engine.run(app, job_of(8, 4));
  EXPECT_EQ(r.stages.size(), 6u);
  for (std::size_t i = 0; i < r.stages.size(); ++i) {
    EXPECT_EQ(r.stages[i].stage_id, i);
  }
}

TEST(SparkEngine, StagesAreSequentialInTime) {
  SparkEngine engine(sim::default_emr_cluster(4));
  const auto r = engine.run(two_stage_app(), job_of(8, 4));
  ASSERT_EQ(r.stages.size(), 2u);
  EXPECT_GE(r.stages[1].submission_time,
            r.stages[0].completion_time - 1e-9);
  EXPECT_NEAR(r.makespan, r.stages.back().completion_time, 1e-9);
}

TEST(SparkEngine, WaveCountMatchesTasksOverExecutors) {
  SparkEngine engine(sim::default_emr_cluster(4));
  const auto r = engine.run(two_stage_app(), job_of(10, 4));
  EXPECT_EQ(r.stages[0].tasks, 10u);
  EXPECT_EQ(r.stages[0].waves, 3u);  // ceil(10/4)
  EXPECT_EQ(r.stages[1].tasks, 5u);  // factor 0.5
}

TEST(SparkEngine, FirstWaveOverheadExceedsLaterWaves) {
  SparkEngineParams params;
  params.first_wave_overhead = 1.0;
  params.steady_wave_overhead = 0.0;
  SparkEngine engine(sim::default_emr_cluster(2), params);
  SparkAppSpec app;
  app.name = "waves";
  StageSpec s;
  s.name = "s";
  s.task_ops = 1e8;
  app.stages = {s};
  // 2 executors, 4 tasks: 2 waves. Stage wall = (1+1) + 1 = 3 s + dispatch.
  const auto r = engine.run(app, job_of(4, 2));
  EXPECT_NEAR(r.stages[0].latency(), 3.0, 0.1);
}

TEST(SparkEngine, BroadcastCostScalesWithExecutors) {
  SparkAppSpec app;
  app.name = "bcast";
  StageSpec s;
  s.name = "s";
  s.task_ops = 1e8;
  s.broadcast_bytes = 56.25e6;  // 1 s per copy on the default network
  app.stages = {s};
  SparkEngine e2(sim::default_emr_cluster(2));
  SparkEngine e8(sim::default_emr_cluster(8));
  const auto r2 = e2.run(app, job_of(2, 2));
  const auto r8 = e8.run(app, job_of(8, 8));
  EXPECT_NEAR(r2.stages[0].broadcast_time, 2.0, 0.01);
  EXPECT_NEAR(r8.stages[0].broadcast_time, 8.0, 0.01);
  EXPECT_GT(r8.components.wo, r2.components.wo);
}

TEST(SparkEngine, CachePressureSpillsAndSlowsTasks) {
  SparkAppSpec app;
  app.name = "cache";
  StageSpec s;
  s.name = "s";
  s.task_ops = 1e8;
  s.cached_bytes_per_task = 1.5e9;
  app.stages = {s};
  SparkEngine engine(sim::default_emr_cluster(2));
  // 2 executors, 16 tasks: 8 x 1.5 GB = 12 GB per executor > 8 GB: spill.
  const auto spilled = engine.run(app, job_of(16, 2));
  EXPECT_TRUE(spilled.any_spill);
  // 2 executors, 8 tasks: 6 GB per executor: fits.
  const auto clean = engine.run(app, job_of(8, 2));
  EXPECT_FALSE(clean.any_spill);
  // Spilled tasks are slower per task.
  const double spilled_per_task = spilled.components.wp +
                                  spilled.components.wo;
  EXPECT_GT(spilled_per_task / 16.0, (clean.components.wp / 8.0) - 1e-9);
}

TEST(SparkEngine, SequentialHasNoInducedWork) {
  SparkEngine engine(sim::default_emr_cluster(8));
  SparkAppSpec app = two_stage_app();
  app.stages[0].broadcast_bytes = 1e7;
  const auto seq = engine.run_sequential(app, job_of(8, 8));
  EXPECT_DOUBLE_EQ(seq.components.wo, 0.0);
  EXPECT_DOUBLE_EQ(seq.components.n, 1.0);
}

TEST(SparkEngine, SequentialComputeMatchesParallelWp) {
  SparkEngine engine(sim::default_emr_cluster(4));
  const auto app = two_stage_app();
  const auto par = engine.run(app, job_of(8, 4));
  const auto seq = engine.run_sequential(app, job_of(8, 4));
  EXPECT_NEAR(par.components.wp, seq.components.wp, 1e-9);
}

TEST(SparkEngine, DriverWorkIsSerial) {
  SparkAppSpec app = two_stage_app();
  app.driver_ops_per_job = 2e8;
  SparkEngine engine(sim::default_emr_cluster(4));
  const auto r = engine.run(app, job_of(8, 4));
  EXPECT_NEAR(r.components.ws, 2.0, 0.5);  // ~2 s of driver work (+shuffle 0)
}

// --- Event log round trip

TEST(EventLog, RoundTripsStages) {
  SparkEngine engine(sim::default_emr_cluster(4));
  SparkAppSpec app = two_stage_app();
  app.iterations = 2;
  const auto r = engine.run(app, job_of(8, 4));
  const std::string log = to_event_log(r);
  const auto events = parse_event_log(log);
  ASSERT_EQ(events.size(), r.stages.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].stage_id, r.stages[i].stage_id);
    EXPECT_EQ(events[i].stage_name, r.stages[i].name);
    EXPECT_NEAR(events[i].submission_time, r.stages[i].submission_time, 1e-6);
    EXPECT_NEAR(events[i].completion_time, r.stages[i].completion_time, 1e-6);
    EXPECT_EQ(events[i].tasks, r.stages[i].tasks);
  }
}

TEST(EventLog, JobLatencySpansAllStages) {
  SparkEngine engine(sim::default_emr_cluster(4));
  const auto r = engine.run(two_stage_app(), job_of(8, 4));
  const auto events = parse_event_log(to_event_log(r));
  const auto latency = job_latency(events);
  ASSERT_TRUE(latency.has_value());
  EXPECT_NEAR(*latency,
              r.stages.back().completion_time - r.stages[0].submission_time,
              1e-6);
}

TEST(EventLog, ToleratesForeignLines) {
  const std::string log =
      "{\"Event\":\"SparkListenerApplicationStart\",\"App Name\":\"x\"}\n"
      "not json at all\n"
      "{\"Event\":\"StageCompleted\",\"Stage ID\":7,\"Stage Name\":\"m\","
      "\"Submission Time\":1.5,\"Completion Time\":2.5,\"Tasks\":4,"
      "\"Spilled\":1}\n";
  const auto events = parse_event_log(log);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].stage_id, 7u);
  EXPECT_TRUE(events[0].spilled);
  EXPECT_DOUBLE_EQ(events[0].latency(), 1.0);
}

TEST(EventLog, EmptyLogHasNoLatency) {
  EXPECT_FALSE(job_latency({}).has_value());
}

}  // namespace
}  // namespace ipso::spark
