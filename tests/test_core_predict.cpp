#include "core/predict.h"

#include "core/laws.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ipso {
namespace {

/// Ground-truth TeraSort-like factors for prediction round-trips.
ScalingFactors terasort_like() {
  return {identity_factor(), linear_factor(0.23, 0.77), constant_factor(0.0)};
}

TEST(Predictor, DirectConstructionEvaluatesModel) {
  SpeedupPredictor p(terasort_like(), 0.8);
  EXPECT_DOUBLE_EQ(p(1.0), 1.0);
  EXPECT_GT(p(16.0), 1.0);
  EXPECT_DOUBLE_EQ(p.eta(), 0.8);
}

TEST(Predictor, RejectsIncompleteFactors) {
  ScalingFactors f;
  f.ex = identity_factor();
  EXPECT_THROW(SpeedupPredictor(f, 0.5), std::invalid_argument);
}

TEST(Predictor, RejectsBadEta) {
  EXPECT_THROW(SpeedupPredictor(terasort_like(), -0.1), std::invalid_argument);
}

TEST(Predictor, SmallNFitPredictsLargeN) {
  // Fit factors from n <= 16 measurements of a known system, then check the
  // prediction at n = 160 against ground truth (the paper's Fig. 7 claim).
  const ScalingFactors truth = terasort_like();
  const double eta = 0.75;

  FactorMeasurements m;
  m.eta = eta;
  for (double n : {1.0, 2.0, 4.0, 8.0, 12.0, 16.0}) {
    m.ex.add(n, truth.ex(n));
    m.in.add(n, truth.in(n));
  }
  const FactorFits fits = fit_factors(WorkloadType::kFixedTime, m).value();
  const SpeedupPredictor pred = SpeedupPredictor::from_fits(fits);

  const double predicted = pred(160.0);
  const double actual = speedup_deterministic(truth, eta, 160.0);
  EXPECT_NEAR(predicted, actual, 0.05 * actual);
}

TEST(Predictor, FromFitsUsesSegmentedINWhenDetected) {
  FactorMeasurements m;
  m.eta = 0.75;
  for (int n = 1; n <= 40; ++n) {
    m.ex.add(n, n);
    m.in.add(n, n <= 15 ? 0.15 * n + 0.85 : 0.23 * n + 2.72);
  }
  const FactorFits fits = fit_factors(WorkloadType::kFixedTime, m).value();
  ASSERT_TRUE(fits.in_has_changepoint);
  const SpeedupPredictor pred = SpeedupPredictor::from_fits(fits);
  // The segmented predictor must track the post-knot IN, which a single
  // straight line through all 40 points would misestimate.
  ScalingFactors truth{identity_factor(),
                       stepwise_linear_factor(0.15, 0.85, 15, 0.23, 2.72),
                       constant_factor(0.0)};
  const double actual = speedup_deterministic(truth, 0.75, 100.0);
  EXPECT_NEAR(pred(100.0), actual, 0.03 * actual);
}

TEST(Predictor, EtaOneIgnoresIN) {
  FactorMeasurements m;
  m.eta = 1.0;
  for (double n : {1.0, 2.0, 4.0, 8.0}) m.ex.add(n, n);
  const FactorFits fits = fit_factors(WorkloadType::kFixedTime, m).value();
  const SpeedupPredictor pred = SpeedupPredictor::from_fits(fits);
  EXPECT_NEAR(pred(64.0), 64.0, 1e-9);  // Gustafson with eta=1
}

TEST(Predictor, CurveProducesNamedSeries) {
  SpeedupPredictor p(terasort_like(), 0.8);
  const std::vector<double> ns{1, 2, 4};
  const auto s = p.curve(ns, "pred");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.name(), "pred");
  EXPECT_DOUBLE_EQ(s[0].y, 1.0);
}

// --- Provisioning

std::vector<double> sweep_1_to(double hi) {
  std::vector<double> ns;
  for (double n = 1; n <= hi; ++n) ns.push_back(n);
  return ns;
}

TEST(Provisioning, PeakedWorkloadHasInteriorOptimum) {
  // CF-like pathology: best n must be well inside the sweep.
  ScalingFactors f{constant_factor(1.0), constant_factor(1.0),
                   make_q(3.74e-4, 2.0)};
  SpeedupPredictor pred(f, 1.0);
  const auto ns = sweep_1_to(120);
  const ProvisioningPlan plan = plan_provisioning(pred, ns);
  EXPECT_GT(plan.best_speedup_n, 30.0);
  EXPECT_LT(plan.best_speedup_n, 80.0);
  EXPECT_LE(plan.knee_n, plan.best_speedup_n);
}

TEST(Provisioning, KneeIsCheaperThanPeakForSaturatingCurves) {
  // Amdahl-like curve: 90% of the bound is reached at modest n.
  ScalingFactors f{constant_factor(1.0), constant_factor(1.0),
                   constant_factor(0.0)};
  SpeedupPredictor pred(f, 0.95);
  const auto ns = sweep_1_to(256);
  const ProvisioningPlan plan = plan_provisioning(pred, ns, 0.9);
  EXPECT_EQ(plan.best_speedup_n, 256.0);
  EXPECT_LT(plan.knee_n, 256.0);
}

TEST(Provisioning, OptionsCarryConsistentMetrics) {
  SpeedupPredictor pred(terasort_like(), 0.8);
  const auto ns = sweep_1_to(16);
  const ProvisioningPlan plan = plan_provisioning(pred, ns);
  ASSERT_EQ(plan.options.size(), 16u);
  for (const auto& opt : plan.options) {
    EXPECT_NEAR(opt.cost * opt.speedup, opt.n, 1e-9);
    EXPECT_NEAR(opt.efficiency * opt.n, opt.speedup, 1e-9);
    EXPECT_NEAR(opt.value, opt.speedup / opt.cost, 1e-9);
  }
}

TEST(Provisioning, RejectsEmptySweep) {
  SpeedupPredictor pred(terasort_like(), 0.8);
  EXPECT_THROW(plan_provisioning(pred, {}), std::invalid_argument);
}

TEST(Provisioning, RejectsBadKneeFraction) {
  SpeedupPredictor pred(terasort_like(), 0.8);
  const std::vector<double> ns{1, 2};
  EXPECT_THROW(plan_provisioning(pred, ns, 0.0), std::invalid_argument);
  EXPECT_THROW(plan_provisioning(pred, ns, 1.5), std::invalid_argument);
}

TEST(Provisioning, SequentialIsNeverBetterValueThanIdealParallel) {
  // With S(n) = n, value = S/cost = S^2/n = n: grows with n.
  ScalingFactors f{identity_factor(), constant_factor(1.0),
                   constant_factor(0.0)};
  SpeedupPredictor pred(f, 1.0);
  const auto ns = sweep_1_to(32);
  const ProvisioningPlan plan = plan_provisioning(pred, ns);
  EXPECT_EQ(plan.best_value_n, 32.0);
}

}  // namespace
}  // namespace ipso
