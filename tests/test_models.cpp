/// Tests for the scaling-law model zoo (src/models) and the streaming
/// observe/compare path through the serve engine: each law recovers the
/// parameters of curves generated from its own closed form, degenerate
/// windows fail with named errors instead of crashing, zoo selection is
/// shape-driven and deterministic (the linear tie resolves to Amdahl by
/// registry order), and the serve `observe`/`compare` ops drive real
/// refits — material observes invalidate the cached zoo fit in every
/// store tier, absorbed observes leave it untouched, and a warm restart
/// serves the same compare byte-identically with zero fits performed.

#include "models/ipso_model.h"
#include "models/laws.h"
#include "models/unified.h"
#include "models/usl.h"
#include "models/zoo.h"
#include "serve/engine.h"
#include "serve/observe.h"
#include "trace/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

namespace {

namespace fs = std::filesystem;

/// Unique per-test scratch directory, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "ipso_models_XXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

}  // namespace

namespace ipso::models {
namespace {

const std::vector<double> kNs{1, 2, 4, 8, 16, 24, 32, 48, 64};

Observations amdahl_curve(double f) {
  Observations obs;
  obs.type = WorkloadType::kFixedSize;
  for (const double n : kNs) obs.speedup.add(n, AmdahlModel::speedup(f, n));
  return obs;
}

Observations contention_curve(double sigma, double kappa) {
  Observations obs;
  obs.type = WorkloadType::kFixedSize;
  for (const double n : kNs) {
    obs.speedup.add(
        n, n / (1.0 + sigma * (n - 1.0) + kappa * n * (n - 1.0)));
  }
  return obs;
}

/// IPSO Eq. 16 fixed-time curve (alpha = 1), the paper's Fig. 9 shape.
Observations eq16_fixed_time_curve(double eta, double delta, double beta,
                                   double gamma) {
  Observations obs;
  obs.type = WorkloadType::kFixedTime;
  obs.eta = eta;
  for (const double n : kNs) {
    const double num = eta * std::pow(n, delta) + 1.0 - eta;
    const double den =
        eta * std::pow(n, delta - 1.0) * (1.0 + beta * std::pow(n, gamma)) +
        1.0 - eta;
    obs.speedup.add(n, num / den);
  }
  return obs;
}

double param(const FittedModel& m, const std::string& name) {
  for (const auto& [k, v] : m.params) {
    if (k == name) return v;
  }
  ADD_FAILURE() << "missing param " << name;
  return std::numeric_limits<double>::quiet_NaN();
}

// ---------------------------------------------------------------------
// Individual laws recover the curves generated from their own forms.
// ---------------------------------------------------------------------

TEST(Laws, AmdahlRecoversSerialFraction) {
  const auto fit = AmdahlModel().fit(amdahl_curve(0.9));
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(param(*fit, "f"), 0.9, 1e-9);
  EXPECT_NEAR(residual_ss(*fit, amdahl_curve(0.9).speedup), 0.0, 1e-18);
}

TEST(Laws, GustafsonRecoversScaledFraction) {
  Observations obs;
  obs.type = WorkloadType::kFixedTime;
  const double f = 0.8;
  for (const double n : kNs) {
    obs.speedup.add(n, GustafsonModel::speedup(f, n));
  }
  const auto fit = GustafsonModel().fit(obs);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(param(*fit, "f"), 0.8, 1e-9);
}

TEST(Laws, UslRecoversContentionAndCoherence) {
  const auto obs = contention_curve(0.05, 0.002);
  const auto fit = UslModel().fit(obs);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(param(*fit, "sigma"), 0.05, 1e-9);
  EXPECT_NEAR(param(*fit, "kappa"), 0.002, 1e-9);

  // fit_from_q on the q(n) transform of the same curve is the same fit.
  stats::Series q("q(n)");
  for (const auto& p : obs.speedup.points()) q.add(p.x, p.x / p.y - 1.0);
  const auto direct = UslModel::fit_from_q(q);
  ASSERT_TRUE(direct.has_value());
  EXPECT_NEAR(direct->sigma, 0.05, 1e-9);
  EXPECT_NEAR(direct->kappa, 0.002, 1e-9);
}

TEST(Laws, UnifiedReducesToAmdahlWithoutOverhead) {
  const auto obs = amdahl_curve(0.7);
  const auto fit = UnifiedModel().fit(obs);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(param(*fit, "f"), 0.7, 1e-3);
  EXPECT_LT(residual_ss(*fit, obs.speedup), 1e-6);
}

TEST(Laws, IpsoFixedSizeRecoversPowerLawOverhead) {
  // S(n) from the fixed-size inversion: q(n) = beta * n^gamma for n > 1,
  // eta = 1. Overhead is structural (scale-out-induced), so S(1) = 1 —
  // the same convention the model's own predict path uses.
  Observations obs;
  obs.type = WorkloadType::kFixedSize;
  const double beta = 0.01, gamma = 1.5;
  for (const double n : kNs) {
    obs.speedup.add(
        n, n > 1.0 ? n / (1.0 + beta * std::pow(n, gamma)) : 1.0);
  }
  const auto fit = IpsoModel().fit(obs);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(param(*fit, "beta"), beta, 1e-6);
  EXPECT_NEAR(param(*fit, "gamma"), gamma, 1e-6);
  EXPECT_LT(residual_ss(*fit, obs.speedup), 1e-12);
}

TEST(Laws, IpsoFixedTimeRecoversEq16) {
  const auto obs = eq16_fixed_time_curve(0.95, 0.5, 0.005, 1.3);
  const auto fit = IpsoModel().fit(obs);
  ASSERT_TRUE(fit.has_value());
  // Nelder-Mead recovery is approximate; what matters is that the fitted
  // curve reproduces the data far better than any other family can.
  EXPECT_LT(residual_ss(*fit, obs.speedup), 1e-3);
  EXPECT_NEAR(param(*fit, "delta"), 0.5, 0.05);
}

// ---------------------------------------------------------------------
// Degenerate windows: named errors, never crashes.
// ---------------------------------------------------------------------

TEST(Laws, DegenerateWindowsFailWithNamedErrors) {
  Observations empty;
  empty.type = WorkloadType::kFixedSize;

  Observations single;  // one point, and it is n = 1
  single.type = WorkloadType::kFixedSize;
  single.speedup.add(1.0, 1.0);

  Observations ones_only;  // several points, none with n > 1
  ones_only.type = WorkloadType::kFixedSize;
  ones_only.speedup.add(1.0, 1.0);
  ones_only.speedup.add(1.0, 1.01);

  const ModelZoo zoo;
  for (const auto& law : zoo.laws()) {
    EXPECT_FALSE(law->fit(empty).has_value()) << law->name();
    EXPECT_FALSE(law->fit(single).has_value()) << law->name();
    EXPECT_FALSE(law->fit(ones_only).has_value()) << law->name();
  }

  // Non-positive speedup is a domain error, not a NaN factory.
  Observations nonpos;
  nonpos.type = WorkloadType::kFixedSize;
  nonpos.speedup.add(1.0, 1.0);
  nonpos.speedup.add(2.0, -1.8);
  const auto bad = AmdahlModel().fit(nonpos);
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), FitError::kNonPositiveValue);

  // Unified needs >= 3 points with n > 1 for its 3 parameters.
  Observations two;
  two.type = WorkloadType::kFixedSize;
  two.speedup.add(1.0, 1.0);
  two.speedup.add(2.0, 1.9);
  two.speedup.add(4.0, 3.5);
  const auto unified = UnifiedModel().fit(two);
  ASSERT_FALSE(unified.has_value());
  EXPECT_EQ(unified.error(), FitError::kInsufficientData);

  // IPSO validates eta's domain before fitting.
  Observations bad_eta = amdahl_curve(0.9);
  bad_eta.eta = 0.0;
  const auto ipso = IpsoModel().fit(bad_eta);
  ASSERT_FALSE(ipso.has_value());
  EXPECT_EQ(ipso.error(), FitError::kOutOfDomain);

  // The zoo itself refuses a window it cannot score.
  EXPECT_FALSE(ModelZoo().compare(single).has_value());
}

// ---------------------------------------------------------------------
// Zoo selection: shape-driven, deterministic.
// ---------------------------------------------------------------------

TEST(Zoo, LinearSpeedupTieBreaksToAmdahlDeterministically) {
  Observations obs;
  obs.type = WorkloadType::kFixedSize;
  for (const double n : {1.0, 2.0, 4.0, 8.0, 16.0}) obs.speedup.add(n, n);

  const ModelZoo zoo;
  for (int round = 0; round < 3; ++round) {
    const auto r = zoo.compare(obs);
    ASSERT_TRUE(r.has_value());
    // Every law fits S = n exactly; the registry-order tie-break makes
    // the fewest-assumption law (Amdahl, f = 1) the deterministic winner.
    EXPECT_EQ(r->winner_name, "amdahl");
    const ModelScore& winner = r->scores[r->winner];
    ASSERT_TRUE(winner.ok);
    EXPECT_NEAR(winner.params[0].second, 1.0, 1e-12);
  }
}

TEST(Zoo, ContentionCurveSelectsUslOverAmdahl) {
  const auto r = ModelZoo().compare(contention_curve(0.05, 0.002));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner_name, "usl");
  const ModelScore* amdahl = nullptr;
  const ModelScore* usl = nullptr;
  for (const ModelScore& s : r->scores) {
    if (s.model == "amdahl") amdahl = &s;
    if (s.model == "usl") usl = &s;
  }
  ASSERT_NE(amdahl, nullptr);
  ASSERT_NE(usl, nullptr);
  ASSERT_TRUE(amdahl->ok);
  ASSERT_TRUE(usl->ok);
  // Amdahl's single parameter cannot express the n*(n-1) coherence term;
  // USL refits the generating form exactly.
  EXPECT_LT(usl->rss, 1e-12);
  EXPECT_GT(amdahl->rss, 1.0);
  EXPECT_LT(usl->aic, amdahl->aic);
}

TEST(Zoo, Fig9FixedTimeCurveSelectsIpso) {
  const auto r =
      ModelZoo().compare(eq16_fixed_time_curve(0.95, 0.5, 0.005, 1.3));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner_name, "ipso");
}

TEST(Zoo, IpsoHookReplacesTheFactorFit) {
  const auto obs = eq16_fixed_time_curve(0.95, 0.5, 0.005, 1.3);
  std::size_t calls = 0;
  const IpsoFitHook hook =
      [&calls](const Observations& o) -> Expected<FactorFits> {
    ++calls;
    return IpsoModel::fit_observations(o);
  };
  const auto r = ModelZoo().compare(obs, hook);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner_name, "ipso");
  // Exactly one hook call: the scoreboard fit. The leave-one-out refits
  // inside the CV computation deliberately bypass the hook so cache
  // instrumentation is not churned m extra times per compare.
  EXPECT_EQ(calls, 1u);
}

}  // namespace
}  // namespace ipso::models

namespace ipso::serve {
namespace {

bool is_ok(const std::string& response) {
  return response.find("\"ok\":true") != std::string::npos;
}

bool has_error(const std::string& response, const std::string& code) {
  return response.find("\"error\":\"" + code + "\"") != std::string::npos;
}

std::string observe_request(const std::string& key, double n, double s) {
  return "{\"op\":\"observe\",\"key\":\"" + key +
         "\",\"n\":" + trace::json_double(n) +
         ",\"value\":" + trace::json_double(s) + "}";
}

std::string compare_request(const std::string& key) {
  return "{\"op\":\"compare\",\"workload\":\"fixed-size\",\"key\":\"" + key +
         "\"}";
}

/// The scoreboard part of a compare response — shared between keyed and
/// inline compares of the same window contents.
std::string scoreboard_of(const std::string& response) {
  const std::size_t at = response.find("\"models\":");
  EXPECT_NE(at, std::string::npos) << response;
  return at == std::string::npos ? response : response.substr(at);
}

// ---------------------------------------------------------------------
// ObservationStore: value-determinism, materiality, eviction.
// ---------------------------------------------------------------------

TEST(ObservationStore, WindowIsArrivalOrderIndependent) {
  ObserveConfig cfg;
  cfg.window_capacity = 4;
  ObservationStore a(cfg), b(cfg);
  // Same multiset of points, different arrival orders; capacity pressure
  // evicts the smallest n either way.
  const std::vector<std::pair<double, double>> pts{
      {1, 1.0}, {2, 1.9}, {4, 3.5}, {8, 6.0}, {16, 9.0}, {32, 11.0}};
  for (const auto& [n, s] : pts) a.observe("w", n, s);
  for (auto it = pts.rbegin(); it != pts.rend(); ++it) {
    b.observe("w", it->first, it->second);
  }
  const auto sa = a.snapshot("w");
  const auto sb = b.snapshot("w");
  ASSERT_TRUE(sa.has_value());
  ASSERT_TRUE(sb.has_value());
  ASSERT_EQ(sa->window.size(), 4u);
  ASSERT_EQ(sb->window.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sa->window[i].x, sb->window[i].x);
    EXPECT_EQ(sa->window[i].y, sb->window[i].y);
  }
  // Smallest n evicted: the window holds the {4, 8, 16, 32} tail.
  EXPECT_EQ(sa->window[0].x, 4.0);
}

TEST(ObservationStore, AbsorbedPointsKeepWindowBytesUnchanged) {
  ObservationStore store;
  store.observe("w", 2.0, 1.9);
  const auto before = store.snapshot("w");
  ASSERT_TRUE(before.has_value());

  // A sub-threshold repeat is absorbed: the OLD value is kept, so the
  // window (and any content-derived fit key) is byte-unchanged.
  const auto r = store.observe("w", 2.0, 1.9 * 1.001);
  EXPECT_TRUE(r.absorbed);
  EXPECT_FALSE(r.material);
  const auto after = store.snapshot("w");
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->version, before->version);
  EXPECT_EQ(after->window[0].y, 1.9);

  // A material move bumps the version and surrenders the recorded fit key.
  store.note_fit("w", after->version, "Zfitkey");
  const auto m = store.observe("w", 2.0, 3.8);
  EXPECT_TRUE(m.material);
  EXPECT_EQ(m.superseded_fit_key, "Zfitkey");
  EXPECT_EQ(m.version, before->version + 1);
}

// ---------------------------------------------------------------------
// The serve ops: observe streams, compare refits, invalidation.
// ---------------------------------------------------------------------

TEST(ServeObserve, ObserveThenCompareFitsOnceAndCaches) {
  ServeEngine engine;
  for (const double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const std::string r =
        engine.handle(observe_request("job", n, n / (1.0 + 0.02 * n)));
    ASSERT_TRUE(is_ok(r)) << r;
    EXPECT_NE(r.find("\"material\":true"), std::string::npos) << r;
  }
  EXPECT_EQ(engine.fits_performed(), 0u);

  const std::string first = engine.handle(compare_request("job"));
  ASSERT_TRUE(is_ok(first)) << first;
  EXPECT_NE(first.find("\"winner\":"), std::string::npos);
  EXPECT_EQ(engine.fits_performed(), 1u);

  // Same window, second compare: the zoo's IPSO member comes from the
  // fit store; the response is byte-identical and nothing is re-fitted.
  const std::string second = engine.handle(compare_request("job"));
  EXPECT_EQ(first, second);
  EXPECT_EQ(engine.fits_performed(), 1u);

  const ObservationStore::Stats obs = engine.observe_stats();
  EXPECT_EQ(obs.keys, 1u);
  EXPECT_EQ(obs.points, 6u);
  EXPECT_EQ(obs.observed, 6u);
  EXPECT_EQ(obs.material, 6u);
}

TEST(ServeObserve, MaterialObserveInvalidatesAndRefits) {
  ServeEngine engine;
  for (const double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    engine.handle(observe_request("job", n, n / (1.0 + 0.02 * n)));
  }
  const std::string first = engine.handle(compare_request("job"));
  ASSERT_TRUE(is_ok(first));
  ASSERT_EQ(engine.fits_performed(), 1u);
  ASSERT_EQ(engine.store_stats().tier.invalidations, 0u);

  // Absorbed repeat: window bytes unchanged, cached zoo fit stays valid.
  const std::string absorbed = engine.handle(
      observe_request("job", 8.0, (8.0 / (1.0 + 0.02 * 8.0)) * 1.001));
  EXPECT_NE(absorbed.find("\"absorbed\":true"), std::string::npos);
  EXPECT_EQ(engine.handle(compare_request("job")), first);
  EXPECT_EQ(engine.fits_performed(), 1u);
  EXPECT_EQ(engine.store_stats().tier.invalidations, 0u);

  // Material move: the superseded fit is invalidated in the store and the
  // next compare is a genuine refit over the new window.
  const std::string material =
      engine.handle(observe_request("job", 8.0, 2.0));
  EXPECT_NE(material.find("\"material\":true"), std::string::npos);
  EXPECT_EQ(engine.store_stats().tier.invalidations, 1u);

  const std::string refit = engine.handle(compare_request("job"));
  ASSERT_TRUE(is_ok(refit));
  EXPECT_NE(refit, first);
  EXPECT_EQ(engine.fits_performed(), 2u);
}

TEST(ServeObserve, InlineCompareMatchesKeyedScoreboard) {
  ServeEngine engine;
  std::string inline_req =
      "{\"op\":\"compare\",\"workload\":\"fixed-size\",\"observations\":[";
  bool first = true;
  for (const double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double s = n / (1.0 + 0.05 * (n - 1.0) + 0.002 * n * (n - 1.0));
    engine.handle(observe_request("job", n, s));
    if (!first) inline_req += ",";
    first = false;
    inline_req += "[" + trace::json_double(n) + "," + trace::json_double(s) +
                  "]";
  }
  inline_req += "]}";

  const std::string keyed = engine.handle(compare_request("job"));
  const std::string inline_resp = engine.handle(inline_req);
  ASSERT_TRUE(is_ok(keyed)) << keyed;
  ASSERT_TRUE(is_ok(inline_resp)) << inline_resp;
  // Same window contents => identical scoreboard (and identical content
  // key, so the second compare reuses the first's cached IPSO fit).
  EXPECT_EQ(scoreboard_of(keyed), scoreboard_of(inline_resp));
  EXPECT_NE(keyed.find("\"winner\":\"usl\""), std::string::npos) << keyed;
  EXPECT_EQ(engine.fits_performed(), 1u);
}

TEST(ServeObserve, AdmissionValidatesObserveAndCompare) {
  ServeEngine engine;
  // Admission-stage violations are rejected before dispatch with the
  // parse_error code, like every other malformed request.
  EXPECT_TRUE(has_error(
      engine.handle("{\"op\":\"observe\",\"n\":2,\"value\":1.5}"),
      "parse_error"));  // missing key
  EXPECT_TRUE(has_error(
      engine.handle(
          "{\"op\":\"observe\",\"key\":\"w\",\"n\":0.5,\"value\":1.5}"),
      "parse_error"));  // n < 1
  EXPECT_TRUE(has_error(
      engine.handle(
          "{\"op\":\"observe\",\"key\":\"w\",\"n\":2,\"value\":-1}"),
      "parse_error"));  // non-positive speedup
  EXPECT_TRUE(has_error(
      engine.handle("{\"op\":\"compare\"}"),
      "parse_error"));  // neither key nor observations
  EXPECT_TRUE(has_error(
      engine.handle("{\"op\":\"compare\",\"key\":\"w\",\"observations\":"
                    "[[1,1],[2,1.9]]}"),
      "parse_error"));  // both key and observations
  EXPECT_TRUE(has_error(
      engine.handle("{\"op\":\"compare\",\"observations\":[[4,3.5]]}"),
      "parse_error"));  // inline window too small
  // An unknown key parses fine but fails at dispatch: bad_request.
  EXPECT_TRUE(has_error(
      engine.handle("{\"op\":\"compare\",\"key\":\"nobody\"}"),
      "bad_request"));
}

TEST(ServeObserve, StatsOpReportsObserveCounters) {
  ServeEngine engine;
  engine.handle(observe_request("a", 1.0, 1.0));
  engine.handle(observe_request("a", 2.0, 1.9));
  engine.handle(observe_request("b", 2.0, 1.5));
  const std::string stats = engine.handle("{\"op\":\"stats\"}");
  EXPECT_NE(stats.find("\"observe\":{\"keys\":2"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"fits_performed\":0"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"invalidations\":0"), std::string::npos) << stats;
}

TEST(ServeObserve, WarmRestartServesCompareByteIdenticalWithoutRefit) {
  TempDir dir;
  ServeConfig cfg;
  cfg.store_dir = dir.str();

  std::string inline_req =
      "{\"op\":\"compare\",\"workload\":\"fixed-size\",\"observations\":[";
  bool first = true;
  for (const double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    if (!first) inline_req += ",";
    first = false;
    inline_req += "[" + trace::json_double(n) + "," +
                  trace::json_double(n / (1.0 + 0.03 * n)) + "]";
  }
  inline_req += "]}";

  std::string cold;
  {
    ServeEngine engine(cfg);
    ASSERT_TRUE(engine.store_status());
    cold = engine.handle(inline_req);
    ASSERT_TRUE(is_ok(cold)) << cold;
    EXPECT_EQ(engine.fits_performed(), 1u);
    engine.drain();  // flushes the zoo fit to the persistent tier
  }
  {
    ServeEngine engine(cfg);
    ASSERT_TRUE(engine.store_status());
    const std::string warm = engine.handle(inline_req);
    EXPECT_EQ(cold, warm);
    // The IPSO member was promoted from disk, not re-fitted.
    EXPECT_EQ(engine.fits_performed(), 0u);
    EXPECT_GE(engine.store_stats().tier.disk_hits, 1u);
  }
}

TEST(ServeObserve, ConcurrentObserveCompareIsRaceFree) {
  ServeConfig cfg;
  cfg.threads = 4;
  ServeEngine engine(cfg);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&engine, t] {
      const std::string key = "job-" + std::to_string(t % 2);
      for (int i = 0; i < kPerThread; ++i) {
        const double n = 1.0 + i % 8;
        engine.handle(observe_request(key, n, n / (1.0 + 0.05 * n)));
        if (i % 4 == 3) {
          const std::string r = engine.handle(compare_request(key));
          EXPECT_TRUE(is_ok(r)) << r;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  engine.drain();
  const ObservationStore::Stats obs = engine.observe_stats();
  EXPECT_EQ(obs.keys, 2u);
  EXPECT_EQ(obs.observed,
            static_cast<std::size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace ipso::serve
