#include "trace/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ipso::trace {
namespace {

TEST(CsvWrite, HeaderAndRows) {
  stats::Series a("S");
  a.add(1, 1.0);
  a.add(2, 1.9);
  std::ostringstream os;
  write_csv(os, "n", {a});
  EXPECT_EQ(os.str(), "n,S\n1,1\n2,1.9\n");
}

TEST(CsvWrite, UnionGridInterpolates) {
  stats::Series a("A");
  a.add(1, 1.0);
  a.add(3, 3.0);
  stats::Series b("B");
  b.add(2, 10.0);
  std::ostringstream os;
  write_csv(os, "x", {a, b});
  const std::string out = os.str();
  EXPECT_NE(out.find("2,2,10"), std::string::npos);
}

TEST(CsvReadSeries, ParsesPlainRows) {
  std::istringstream is("1,1.0\n2,1.9\n4,3.5\n");
  const auto r = read_series_csv(is, "S");
  ASSERT_TRUE(r.has_value());
  const stats::Series& s = *r;
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[2].x, 4.0);
  EXPECT_DOUBLE_EQ(s[2].y, 3.5);
  EXPECT_EQ(s.name(), "S");
}

TEST(CsvReadSeries, SkipsHeaderCommentsBlanks) {
  std::istringstream is(
      "n,speedup\n"
      "# measured on cluster A\n"
      "\n"
      "1, 1.0\n"
      "2, 1.8\n");
  const auto r = read_series_csv(is);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_DOUBLE_EQ((*r)[1].y, 1.8);
}

TEST(CsvReadSeries, ReportsTooFewColumnsWithLine) {
  std::istringstream one_col("1,1\n1\n");
  const auto r = read_series_csv(one_col);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ParseError::kTooFewColumns);
  EXPECT_EQ(r.error().line, 2u);
  EXPECT_NE(r.error().message().find("too few columns"), std::string::npos);
}

TEST(CsvReadSeries, ReportsMalformedNumberWithLine) {
  std::istringstream bad_num("1,1.0\n2,abc\n");
  const auto r = read_series_csv(bad_num);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ParseError::kMalformedNumber);
  EXPECT_EQ(r.error().line, 2u);
  EXPECT_NE(r.error().message().find("2,abc"), std::string::npos);
}

TEST(CsvReadSeries, ValueAccessOnErrorThrowsLoudly) {
  std::istringstream bad("1,x\n2,y\n");
  const auto r = read_series_csv(bad);
  ASSERT_FALSE(r.has_value());
  EXPECT_THROW((void)r.value(), std::runtime_error);
}

TEST(CsvReadSeries, RoundTripsWithWriter) {
  stats::Series a("S");
  for (int n = 1; n <= 10; ++n) a.add(n, 0.5 * n + 0.1);
  std::ostringstream os;
  write_csv(os, "n", {a});
  std::istringstream is(os.str());
  const auto r = read_series_csv(is);
  ASSERT_TRUE(r.has_value());
  const stats::Series& back = *r;
  ASSERT_EQ(back.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(back[i].x, a[i].x, 1e-9);
    EXPECT_NEAR(back[i].y, a[i].y, 1e-9);
  }
}

TEST(CsvReadTable, HeaderNamesColumns) {
  std::istringstream is(
      "n,EX,IN,q\n"
      "1,1,1,0\n"
      "2,2,1.36,0\n");
  const auto r = read_table_csv(is);
  ASSERT_TRUE(r.has_value());
  const auto& cols = *r;
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0].name(), "EX");
  EXPECT_EQ(cols[1].name(), "IN");
  EXPECT_DOUBLE_EQ(cols[1][1].y, 1.36);
}

TEST(CsvReadTable, HeaderlessGetsDefaultNames) {
  std::istringstream is("1,1,1\n2,2,1.5\n");
  const auto r = read_table_csv(is);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].name(), "col1");
}

TEST(CsvReadTable, ReportsRaggedRowWithLine) {
  std::istringstream is("1,1,1\n2,2\n");
  const auto r = read_table_csv(is);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ParseError::kRaggedRow);
  EXPECT_EQ(r.error().line, 2u);
}

TEST(CsvReadTable, ReportsMalformedCell) {
  std::istringstream is(
      "n,a,b\n"
      "1,2,3\n"
      "2,oops,4\n");
  const auto r = read_table_csv(is);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ParseError::kMalformedNumber);
  EXPECT_EQ(r.error().line, 3u);
  EXPECT_EQ(r.error().content, "oops");
}

TEST(CsvReadTable, ReportsMalformedXAfterHeader) {
  std::istringstream is(
      "n,a\n"
      "1,2\n"
      "zzz,3\n");
  const auto r = read_table_csv(is);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ParseError::kMalformedNumber);
  EXPECT_EQ(r.error().line, 3u);
}

}  // namespace
}  // namespace ipso::trace
