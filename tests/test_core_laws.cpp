#include "core/laws.h"

#include "core/model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ipso {
namespace {

TEST(Amdahl, UnitAtNOne) { EXPECT_DOUBLE_EQ(laws::amdahl(0.5, 1.0), 1.0); }

TEST(Amdahl, FullyParallelIsLinear) {
  EXPECT_DOUBLE_EQ(laws::amdahl(1.0, 64.0), 64.0);
}

TEST(Amdahl, FullySerialIsFlat) {
  EXPECT_DOUBLE_EQ(laws::amdahl(0.0, 64.0), 1.0);
}

TEST(Amdahl, ApproachesBound) {
  const double eta = 0.95;
  EXPECT_NEAR(laws::amdahl(eta, 1e9), laws::amdahl_bound(eta), 1e-6);
}

TEST(Amdahl, BoundFormula) {
  EXPECT_DOUBLE_EQ(laws::amdahl_bound(0.9), 10.0);
  EXPECT_TRUE(std::isinf(laws::amdahl_bound(1.0)));
}

TEST(Amdahl, MonotoneInN) {
  double prev = 0.0;
  for (double n = 1; n <= 1024; n *= 2) {
    const double s = laws::amdahl(0.8, n);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(Gustafson, UnitAtNOne) {
  EXPECT_DOUBLE_EQ(laws::gustafson(0.5, 1.0), 1.0);
}

TEST(Gustafson, LinearUnbounded) {
  EXPECT_DOUBLE_EQ(laws::gustafson(0.9, 100.0), 90.1);
  EXPECT_DOUBLE_EQ(laws::gustafson(1.0, 100.0), 100.0);
}

TEST(SunNi, WithIdentityGEqualsGustafson) {
  for (double n : {1.0, 4.0, 16.0, 64.0}) {
    EXPECT_NEAR(laws::sun_ni(0.7, n), laws::gustafson(0.7, n), 1e-12);
    EXPECT_NEAR(laws::sun_ni(0.7, n, identity_factor()),
                laws::gustafson(0.7, n), 1e-12);
  }
}

TEST(SunNi, WithConstantGEqualsAmdahl) {
  // g(n) = 1 reduces Sun-Ni to Amdahl (fixed-size workload).
  for (double n : {1.0, 4.0, 16.0, 64.0}) {
    EXPECT_NEAR(laws::sun_ni(0.7, n, constant_factor(1.0)),
                laws::amdahl(0.7, n), 1e-12);
  }
}

TEST(SunNi, SuperlinearGBeatsGustafson) {
  const auto g = power_factor(1.0, 1.5);
  EXPECT_GT(laws::sun_ni(0.9, 64.0, g), laws::gustafson(0.9, 64.0));
}

// --- IPSO degeneration: the laws are special cases of Eq. 10 (paper Eq. 12-13)

class IpsoDegeneratesToLaws : public ::testing::TestWithParam<double> {};

TEST_P(IpsoDegeneratesToLaws, AmdahlIsFixedSizeNoOverheadIpso) {
  const double eta = GetParam();
  ScalingFactors f{constant_factor(1.0), constant_factor(1.0),
                   constant_factor(0.0)};
  for (double n : {1.0, 2.0, 8.0, 64.0, 512.0}) {
    EXPECT_NEAR(speedup_deterministic(f, eta, n), laws::amdahl(eta, n), 1e-12);
  }
}

TEST_P(IpsoDegeneratesToLaws, GustafsonIsFixedTimeNoOverheadIpso) {
  const double eta = GetParam();
  ScalingFactors f{identity_factor(), constant_factor(1.0),
                   constant_factor(0.0)};
  for (double n : {1.0, 2.0, 8.0, 64.0, 512.0}) {
    EXPECT_NEAR(speedup_deterministic(f, eta, n), laws::gustafson(eta, n),
                1e-12);
  }
}

TEST_P(IpsoDegeneratesToLaws, SunNiIsMemoryBoundedNoOverheadIpso) {
  const double eta = GetParam();
  const auto g = power_factor(1.0, 1.3);
  ScalingFactors f{g, constant_factor(1.0), constant_factor(0.0)};
  for (double n : {1.0, 2.0, 8.0, 64.0}) {
    EXPECT_NEAR(speedup_deterministic(f, eta, n), laws::sun_ni(eta, n, g),
                1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(EtaSweep, IpsoDegeneratesToLaws,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1.0));

}  // namespace
}  // namespace ipso
