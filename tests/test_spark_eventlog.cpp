#include "spark/eventlog.h"

#include <gtest/gtest.h>

#include <string>

namespace ipso::spark {
namespace {

SparkJobResult two_stage_job() {
  SparkJobResult r;
  StageMetrics map;
  map.name = "map";
  map.stage_id = 0;
  map.submission_time = 0.0;
  map.completion_time = 12.5;
  map.tasks = 64;
  StageMetrics reduce;
  reduce.name = "reduce";
  reduce.stage_id = 1;
  reduce.submission_time = 12.5;
  reduce.completion_time = 20.0;
  reduce.tasks = 32;
  reduce.spilled = true;
  r.stages = {map, reduce};
  r.makespan = 20.0;
  return r;
}

TEST(SparkEventLog, WriteParseRoundTrip) {
  const std::string log = to_event_log(two_stage_job());
  const auto events = parse_event_log(log);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].stage_id, 0u);
  EXPECT_EQ(events[0].stage_name, "map");
  EXPECT_DOUBLE_EQ(events[0].submission_time, 0.0);
  EXPECT_DOUBLE_EQ(events[0].completion_time, 12.5);
  EXPECT_EQ(events[0].tasks, 64u);
  EXPECT_FALSE(events[0].spilled);
  EXPECT_EQ(events[1].stage_name, "reduce");
  EXPECT_TRUE(events[1].spilled);
  EXPECT_DOUBLE_EQ(events[1].latency(), 7.5);
}

TEST(SparkEventLog, TolerantParserSkipsForeignAndMalformedLines) {
  const std::string log =
      "{\"Event\":\"SparkListenerApplicationStart\",\"App Name\":\"x\"}\n"
      "{\"Event\":\"StageCompleted\",\"Stage ID\":0,\"Stage Name\":\"map\","
      "\"Submission Time\":0,\"Completion Time\":2,\"Tasks\":4,"
      "\"Spilled\":0}\n"
      "not json at all\n"
      "{\"Event\":\"StageCompleted\",\"Stage ID\":oops,\"Stage Name\":\"bad"
      "\",\"Submission Time\":0,\"Completion Time\":1,\"Tasks\":1,"
      "\"Spilled\":0}\n"
      "{\"Event\":\"StageCompleted\",\"Stage ID\":1,\"Stage Name\":"
      "\"reduce\",\"Submission Time\":2,\"Completion Time\":5,\"Tasks\":2,"
      "\"Spilled\":1}\n";
  const auto events = parse_event_log(log);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].stage_name, "map");
  EXPECT_EQ(events[1].stage_name, "reduce");
}

TEST(SparkEventLog, StrictParserAcceptsCleanLogs) {
  const std::string log = to_event_log(two_stage_job());
  const auto events = parse_event_log_strict(log);
  ASSERT_TRUE(events.has_value()) << events.error().message();
  EXPECT_EQ(events->size(), 2u);
}

TEST(SparkEventLog, StrictParserNamesTheBadNumberAndLine) {
  const std::string log =
      "{\"Event\":\"StageCompleted\",\"Stage ID\":0,\"Stage Name\":\"map\","
      "\"Submission Time\":0,\"Completion Time\":2,\"Tasks\":4,"
      "\"Spilled\":0}\n"
      "{\"Event\":\"StageCompleted\",\"Stage ID\":1,\"Stage Name\":\"bad\","
      "\"Submission Time\":abc,\"Completion Time\":3,\"Tasks\":1,"
      "\"Spilled\":0}\n";
  const auto events = parse_event_log_strict(log);
  ASSERT_FALSE(events.has_value());
  EXPECT_EQ(events.error().line, 2u);
  EXPECT_EQ(events.error().error, EventLogError::kBadNumber);
  EXPECT_EQ(events.error().field, "Submission Time");
  EXPECT_EQ(events.error().message(),
            "line 2: malformed numeric field 'Submission Time'");
}

TEST(SparkEventLog, StrictParserNamesTheMissingField) {
  const std::string log =
      "{\"Event\":\"StageCompleted\",\"Stage ID\":0,\"Stage Name\":\"map\","
      "\"Submission Time\":0,\"Completion Time\":2,\"Spilled\":0}\n";
  const auto events = parse_event_log_strict(log);
  ASSERT_FALSE(events.has_value());
  EXPECT_EQ(events.error().line, 1u);
  EXPECT_EQ(events.error().error, EventLogError::kMissingField);
  EXPECT_EQ(events.error().field, "Tasks");
}

TEST(SparkEventLog, StrictParserStillSkipsForeignEvents) {
  const std::string log =
      "{\"Event\":\"SparkListenerJobStart\",\"Job ID\":0}\n"
      "{\"Event\":\"StageCompleted\",\"Stage ID\":0,\"Stage Name\":\"map\","
      "\"Submission Time\":0,\"Completion Time\":2,\"Tasks\":4,"
      "\"Spilled\":0}\n";
  const auto events = parse_event_log_strict(log);
  ASSERT_TRUE(events.has_value()) << events.error().message();
  EXPECT_EQ(events->size(), 1u);
}

TEST(SparkEventLog, JobLatencySpansFirstSubmissionToLastCompletion) {
  const auto events = parse_event_log(to_event_log(two_stage_job()));
  const auto latency = job_latency(events);
  ASSERT_TRUE(latency.has_value());
  EXPECT_DOUBLE_EQ(*latency, 20.0);
  EXPECT_FALSE(job_latency({}).has_value());
}

TEST(SparkEventLog, SpeedupFromLogsMatchesLatencyRatio) {
  SparkJobResult seq = two_stage_job();
  seq.stages[0].completion_time = 50.0;
  seq.stages[1].submission_time = 50.0;
  seq.stages[1].completion_time = 80.0;
  const auto speedup =
      speedup_from_logs(to_event_log(seq), to_event_log(two_stage_job()));
  ASSERT_TRUE(speedup.has_value());
  EXPECT_DOUBLE_EQ(*speedup, 80.0 / 20.0);
  EXPECT_FALSE(speedup_from_logs("", to_event_log(two_stage_job()))
                   .has_value());
}

TEST(SparkEventLog, StageLatencyTotalsSumRepeatedStages) {
  // An iterative app runs the same named stage every round.
  SparkJobResult r;
  for (int round = 0; round < 3; ++round) {
    StageMetrics s;
    s.name = "gradient";
    s.stage_id = static_cast<std::size_t>(round);
    s.submission_time = 10.0 * round;
    s.completion_time = 10.0 * round + 4.0;
    s.tasks = 8;
    r.stages.push_back(s);
  }
  const auto totals = stage_latency_totals(parse_event_log(to_event_log(r)));
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_DOUBLE_EQ(totals.at("gradient"), 12.0);
}

}  // namespace
}  // namespace ipso::spark
