#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace ipso::sim {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation des;
  EXPECT_DOUBLE_EQ(des.now(), 0.0);
  EXPECT_TRUE(des.idle());
}

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation des;
  std::vector<int> order;
  des.schedule(3.0, [&] { order.push_back(3); });
  des.schedule(1.0, [&] { order.push_back(1); });
  des.schedule(2.0, [&] { order.push_back(2); });
  des.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(des.now(), 3.0);
}

TEST(Simulation, SimultaneousEventsKeepInsertionOrder) {
  Simulation des;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    des.schedule(5.0, [&, i] { order.push_back(i); });
  }
  des.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation des;
  int fired = 0;
  des.schedule(1.0, [&] {
    ++fired;
    des.schedule(1.0, [&] { ++fired; });
  });
  des.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(des.now(), 2.0);
}

TEST(Simulation, RejectsNegativeDelay) {
  Simulation des;
  EXPECT_THROW(des.schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulation, RejectsPastAbsoluteTime) {
  Simulation des;
  des.schedule(2.0, [] {});
  des.run();
  EXPECT_THROW(des.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation des;
  int fired = 0;
  des.schedule(1.0, [&] { ++fired; });
  des.schedule(5.0, [&] { ++fired; });
  des.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(des.now(), 3.0);
  EXPECT_FALSE(des.idle());
  des.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, CountsExecutedEvents) {
  Simulation des;
  for (int i = 0; i < 7; ++i) des.schedule(i, [] {});
  des.run();
  EXPECT_EQ(des.executed(), 7u);
}

TEST(Simulation, ZeroDelayRunsImmediatelyInOrder) {
  Simulation des;
  std::vector<int> order;
  des.schedule(0.0, [&] {
    order.push_back(1);
    des.schedule(0.0, [&] { order.push_back(2); });
  });
  des.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace ipso::sim
