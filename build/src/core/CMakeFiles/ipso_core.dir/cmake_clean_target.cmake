file(REMOVE_RECURSE
  "libipso_core.a"
)
