
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classify.cpp" "src/core/CMakeFiles/ipso_core.dir/classify.cpp.o" "gcc" "src/core/CMakeFiles/ipso_core.dir/classify.cpp.o.d"
  "/root/repo/src/core/diagnose.cpp" "src/core/CMakeFiles/ipso_core.dir/diagnose.cpp.o" "gcc" "src/core/CMakeFiles/ipso_core.dir/diagnose.cpp.o.d"
  "/root/repo/src/core/fit.cpp" "src/core/CMakeFiles/ipso_core.dir/fit.cpp.o" "gcc" "src/core/CMakeFiles/ipso_core.dir/fit.cpp.o.d"
  "/root/repo/src/core/laws.cpp" "src/core/CMakeFiles/ipso_core.dir/laws.cpp.o" "gcc" "src/core/CMakeFiles/ipso_core.dir/laws.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/ipso_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/ipso_core.dir/model.cpp.o.d"
  "/root/repo/src/core/predict.cpp" "src/core/CMakeFiles/ipso_core.dir/predict.cpp.o" "gcc" "src/core/CMakeFiles/ipso_core.dir/predict.cpp.o.d"
  "/root/repo/src/core/scaling_factors.cpp" "src/core/CMakeFiles/ipso_core.dir/scaling_factors.cpp.o" "gcc" "src/core/CMakeFiles/ipso_core.dir/scaling_factors.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/ipso_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/ipso_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/statistical.cpp" "src/core/CMakeFiles/ipso_core.dir/statistical.cpp.o" "gcc" "src/core/CMakeFiles/ipso_core.dir/statistical.cpp.o.d"
  "/root/repo/src/core/tradeoff.cpp" "src/core/CMakeFiles/ipso_core.dir/tradeoff.cpp.o" "gcc" "src/core/CMakeFiles/ipso_core.dir/tradeoff.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/ipso_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/ipso_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/ipso_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
