# Empty dependencies file for ipso_core.
# This may be replaced when dependencies are built.
