file(REMOVE_RECURSE
  "CMakeFiles/ipso_core.dir/classify.cpp.o"
  "CMakeFiles/ipso_core.dir/classify.cpp.o.d"
  "CMakeFiles/ipso_core.dir/diagnose.cpp.o"
  "CMakeFiles/ipso_core.dir/diagnose.cpp.o.d"
  "CMakeFiles/ipso_core.dir/fit.cpp.o"
  "CMakeFiles/ipso_core.dir/fit.cpp.o.d"
  "CMakeFiles/ipso_core.dir/laws.cpp.o"
  "CMakeFiles/ipso_core.dir/laws.cpp.o.d"
  "CMakeFiles/ipso_core.dir/model.cpp.o"
  "CMakeFiles/ipso_core.dir/model.cpp.o.d"
  "CMakeFiles/ipso_core.dir/predict.cpp.o"
  "CMakeFiles/ipso_core.dir/predict.cpp.o.d"
  "CMakeFiles/ipso_core.dir/scaling_factors.cpp.o"
  "CMakeFiles/ipso_core.dir/scaling_factors.cpp.o.d"
  "CMakeFiles/ipso_core.dir/sensitivity.cpp.o"
  "CMakeFiles/ipso_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/ipso_core.dir/statistical.cpp.o"
  "CMakeFiles/ipso_core.dir/statistical.cpp.o.d"
  "CMakeFiles/ipso_core.dir/tradeoff.cpp.o"
  "CMakeFiles/ipso_core.dir/tradeoff.cpp.o.d"
  "CMakeFiles/ipso_core.dir/workload.cpp.o"
  "CMakeFiles/ipso_core.dir/workload.cpp.o.d"
  "libipso_core.a"
  "libipso_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipso_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
