
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/ipso_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/ipso_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/linalg.cpp" "src/stats/CMakeFiles/ipso_stats.dir/linalg.cpp.o" "gcc" "src/stats/CMakeFiles/ipso_stats.dir/linalg.cpp.o.d"
  "/root/repo/src/stats/nonlinear.cpp" "src/stats/CMakeFiles/ipso_stats.dir/nonlinear.cpp.o" "gcc" "src/stats/CMakeFiles/ipso_stats.dir/nonlinear.cpp.o.d"
  "/root/repo/src/stats/random.cpp" "src/stats/CMakeFiles/ipso_stats.dir/random.cpp.o" "gcc" "src/stats/CMakeFiles/ipso_stats.dir/random.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/ipso_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/ipso_stats.dir/regression.cpp.o.d"
  "/root/repo/src/stats/series.cpp" "src/stats/CMakeFiles/ipso_stats.dir/series.cpp.o" "gcc" "src/stats/CMakeFiles/ipso_stats.dir/series.cpp.o.d"
  "/root/repo/src/stats/surface.cpp" "src/stats/CMakeFiles/ipso_stats.dir/surface.cpp.o" "gcc" "src/stats/CMakeFiles/ipso_stats.dir/surface.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
