file(REMOVE_RECURSE
  "CMakeFiles/ipso_stats.dir/descriptive.cpp.o"
  "CMakeFiles/ipso_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/ipso_stats.dir/linalg.cpp.o"
  "CMakeFiles/ipso_stats.dir/linalg.cpp.o.d"
  "CMakeFiles/ipso_stats.dir/nonlinear.cpp.o"
  "CMakeFiles/ipso_stats.dir/nonlinear.cpp.o.d"
  "CMakeFiles/ipso_stats.dir/random.cpp.o"
  "CMakeFiles/ipso_stats.dir/random.cpp.o.d"
  "CMakeFiles/ipso_stats.dir/regression.cpp.o"
  "CMakeFiles/ipso_stats.dir/regression.cpp.o.d"
  "CMakeFiles/ipso_stats.dir/series.cpp.o"
  "CMakeFiles/ipso_stats.dir/series.cpp.o.d"
  "CMakeFiles/ipso_stats.dir/surface.cpp.o"
  "CMakeFiles/ipso_stats.dir/surface.cpp.o.d"
  "libipso_stats.a"
  "libipso_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipso_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
