file(REMOVE_RECURSE
  "libipso_stats.a"
)
