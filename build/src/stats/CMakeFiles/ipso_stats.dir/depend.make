# Empty dependencies file for ipso_stats.
# This may be replaced when dependencies are built.
