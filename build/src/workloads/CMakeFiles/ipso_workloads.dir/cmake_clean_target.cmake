file(REMOVE_RECURSE
  "libipso_workloads.a"
)
