file(REMOVE_RECURSE
  "CMakeFiles/ipso_workloads.dir/bayes.cpp.o"
  "CMakeFiles/ipso_workloads.dir/bayes.cpp.o.d"
  "CMakeFiles/ipso_workloads.dir/collab_filter.cpp.o"
  "CMakeFiles/ipso_workloads.dir/collab_filter.cpp.o.d"
  "CMakeFiles/ipso_workloads.dir/datagen.cpp.o"
  "CMakeFiles/ipso_workloads.dir/datagen.cpp.o.d"
  "CMakeFiles/ipso_workloads.dir/functional_jobs.cpp.o"
  "CMakeFiles/ipso_workloads.dir/functional_jobs.cpp.o.d"
  "CMakeFiles/ipso_workloads.dir/nweight.cpp.o"
  "CMakeFiles/ipso_workloads.dir/nweight.cpp.o.d"
  "CMakeFiles/ipso_workloads.dir/qmc_pi.cpp.o"
  "CMakeFiles/ipso_workloads.dir/qmc_pi.cpp.o.d"
  "CMakeFiles/ipso_workloads.dir/random_forest.cpp.o"
  "CMakeFiles/ipso_workloads.dir/random_forest.cpp.o.d"
  "CMakeFiles/ipso_workloads.dir/sort.cpp.o"
  "CMakeFiles/ipso_workloads.dir/sort.cpp.o.d"
  "CMakeFiles/ipso_workloads.dir/svm.cpp.o"
  "CMakeFiles/ipso_workloads.dir/svm.cpp.o.d"
  "CMakeFiles/ipso_workloads.dir/terasort.cpp.o"
  "CMakeFiles/ipso_workloads.dir/terasort.cpp.o.d"
  "CMakeFiles/ipso_workloads.dir/textgen.cpp.o"
  "CMakeFiles/ipso_workloads.dir/textgen.cpp.o.d"
  "CMakeFiles/ipso_workloads.dir/wordcount.cpp.o"
  "CMakeFiles/ipso_workloads.dir/wordcount.cpp.o.d"
  "libipso_workloads.a"
  "libipso_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipso_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
