
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bayes.cpp" "src/workloads/CMakeFiles/ipso_workloads.dir/bayes.cpp.o" "gcc" "src/workloads/CMakeFiles/ipso_workloads.dir/bayes.cpp.o.d"
  "/root/repo/src/workloads/collab_filter.cpp" "src/workloads/CMakeFiles/ipso_workloads.dir/collab_filter.cpp.o" "gcc" "src/workloads/CMakeFiles/ipso_workloads.dir/collab_filter.cpp.o.d"
  "/root/repo/src/workloads/datagen.cpp" "src/workloads/CMakeFiles/ipso_workloads.dir/datagen.cpp.o" "gcc" "src/workloads/CMakeFiles/ipso_workloads.dir/datagen.cpp.o.d"
  "/root/repo/src/workloads/functional_jobs.cpp" "src/workloads/CMakeFiles/ipso_workloads.dir/functional_jobs.cpp.o" "gcc" "src/workloads/CMakeFiles/ipso_workloads.dir/functional_jobs.cpp.o.d"
  "/root/repo/src/workloads/nweight.cpp" "src/workloads/CMakeFiles/ipso_workloads.dir/nweight.cpp.o" "gcc" "src/workloads/CMakeFiles/ipso_workloads.dir/nweight.cpp.o.d"
  "/root/repo/src/workloads/qmc_pi.cpp" "src/workloads/CMakeFiles/ipso_workloads.dir/qmc_pi.cpp.o" "gcc" "src/workloads/CMakeFiles/ipso_workloads.dir/qmc_pi.cpp.o.d"
  "/root/repo/src/workloads/random_forest.cpp" "src/workloads/CMakeFiles/ipso_workloads.dir/random_forest.cpp.o" "gcc" "src/workloads/CMakeFiles/ipso_workloads.dir/random_forest.cpp.o.d"
  "/root/repo/src/workloads/sort.cpp" "src/workloads/CMakeFiles/ipso_workloads.dir/sort.cpp.o" "gcc" "src/workloads/CMakeFiles/ipso_workloads.dir/sort.cpp.o.d"
  "/root/repo/src/workloads/svm.cpp" "src/workloads/CMakeFiles/ipso_workloads.dir/svm.cpp.o" "gcc" "src/workloads/CMakeFiles/ipso_workloads.dir/svm.cpp.o.d"
  "/root/repo/src/workloads/terasort.cpp" "src/workloads/CMakeFiles/ipso_workloads.dir/terasort.cpp.o" "gcc" "src/workloads/CMakeFiles/ipso_workloads.dir/terasort.cpp.o.d"
  "/root/repo/src/workloads/textgen.cpp" "src/workloads/CMakeFiles/ipso_workloads.dir/textgen.cpp.o" "gcc" "src/workloads/CMakeFiles/ipso_workloads.dir/textgen.cpp.o.d"
  "/root/repo/src/workloads/wordcount.cpp" "src/workloads/CMakeFiles/ipso_workloads.dir/wordcount.cpp.o" "gcc" "src/workloads/CMakeFiles/ipso_workloads.dir/wordcount.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapreduce/CMakeFiles/ipso_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/ipso_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ipso_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ipso_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ipso_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
