# Empty compiler generated dependencies file for ipso_workloads.
# This may be replaced when dependencies are built.
