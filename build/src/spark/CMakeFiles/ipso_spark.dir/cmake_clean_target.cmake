file(REMOVE_RECURSE
  "libipso_spark.a"
)
