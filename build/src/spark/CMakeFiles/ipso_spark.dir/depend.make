# Empty dependencies file for ipso_spark.
# This may be replaced when dependencies are built.
