file(REMOVE_RECURSE
  "CMakeFiles/ipso_spark.dir/engine.cpp.o"
  "CMakeFiles/ipso_spark.dir/engine.cpp.o.d"
  "CMakeFiles/ipso_spark.dir/eventlog.cpp.o"
  "CMakeFiles/ipso_spark.dir/eventlog.cpp.o.d"
  "libipso_spark.a"
  "libipso_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipso_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
