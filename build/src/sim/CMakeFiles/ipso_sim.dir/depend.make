# Empty dependencies file for ipso_sim.
# This may be replaced when dependencies are built.
