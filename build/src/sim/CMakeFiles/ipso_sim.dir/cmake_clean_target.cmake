file(REMOVE_RECURSE
  "libipso_sim.a"
)
