file(REMOVE_RECURSE
  "CMakeFiles/ipso_sim.dir/cluster.cpp.o"
  "CMakeFiles/ipso_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/ipso_sim.dir/event_queue.cpp.o"
  "CMakeFiles/ipso_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/ipso_sim.dir/metrics.cpp.o"
  "CMakeFiles/ipso_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/ipso_sim.dir/queueing.cpp.o"
  "CMakeFiles/ipso_sim.dir/queueing.cpp.o.d"
  "CMakeFiles/ipso_sim.dir/scheduler.cpp.o"
  "CMakeFiles/ipso_sim.dir/scheduler.cpp.o.d"
  "libipso_sim.a"
  "libipso_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipso_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
