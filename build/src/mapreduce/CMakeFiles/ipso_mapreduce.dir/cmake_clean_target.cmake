file(REMOVE_RECURSE
  "libipso_mapreduce.a"
)
