# Empty dependencies file for ipso_mapreduce.
# This may be replaced when dependencies are built.
