file(REMOVE_RECURSE
  "CMakeFiles/ipso_mapreduce.dir/engine.cpp.o"
  "CMakeFiles/ipso_mapreduce.dir/engine.cpp.o.d"
  "CMakeFiles/ipso_mapreduce.dir/functional.cpp.o"
  "CMakeFiles/ipso_mapreduce.dir/functional.cpp.o.d"
  "CMakeFiles/ipso_mapreduce.dir/multiround.cpp.o"
  "CMakeFiles/ipso_mapreduce.dir/multiround.cpp.o.d"
  "libipso_mapreduce.a"
  "libipso_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipso_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
