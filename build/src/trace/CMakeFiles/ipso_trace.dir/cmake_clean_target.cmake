file(REMOVE_RECURSE
  "libipso_trace.a"
)
