
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/csv.cpp" "src/trace/CMakeFiles/ipso_trace.dir/csv.cpp.o" "gcc" "src/trace/CMakeFiles/ipso_trace.dir/csv.cpp.o.d"
  "/root/repo/src/trace/experiment.cpp" "src/trace/CMakeFiles/ipso_trace.dir/experiment.cpp.o" "gcc" "src/trace/CMakeFiles/ipso_trace.dir/experiment.cpp.o.d"
  "/root/repo/src/trace/json.cpp" "src/trace/CMakeFiles/ipso_trace.dir/json.cpp.o" "gcc" "src/trace/CMakeFiles/ipso_trace.dir/json.cpp.o.d"
  "/root/repo/src/trace/reference_data.cpp" "src/trace/CMakeFiles/ipso_trace.dir/reference_data.cpp.o" "gcc" "src/trace/CMakeFiles/ipso_trace.dir/reference_data.cpp.o.d"
  "/root/repo/src/trace/report.cpp" "src/trace/CMakeFiles/ipso_trace.dir/report.cpp.o" "gcc" "src/trace/CMakeFiles/ipso_trace.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapreduce/CMakeFiles/ipso_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/ipso_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ipso_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ipso_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ipso_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
