# Empty compiler generated dependencies file for ipso_trace.
# This may be replaced when dependencies are built.
