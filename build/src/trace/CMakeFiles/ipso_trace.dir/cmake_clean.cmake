file(REMOVE_RECURSE
  "CMakeFiles/ipso_trace.dir/csv.cpp.o"
  "CMakeFiles/ipso_trace.dir/csv.cpp.o.d"
  "CMakeFiles/ipso_trace.dir/experiment.cpp.o"
  "CMakeFiles/ipso_trace.dir/experiment.cpp.o.d"
  "CMakeFiles/ipso_trace.dir/json.cpp.o"
  "CMakeFiles/ipso_trace.dir/json.cpp.o.d"
  "CMakeFiles/ipso_trace.dir/reference_data.cpp.o"
  "CMakeFiles/ipso_trace.dir/reference_data.cpp.o.d"
  "CMakeFiles/ipso_trace.dir/report.cpp.o"
  "CMakeFiles/ipso_trace.dir/report.cpp.o.d"
  "libipso_trace.a"
  "libipso_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipso_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
