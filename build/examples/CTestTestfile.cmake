# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_diagnose_terasort "/root/repo/build/examples/diagnose_terasort")
set_tests_properties(example_diagnose_terasort PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_provisioning "/root/repo/build/examples/provisioning")
set_tests_properties(example_provisioning PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spark_pathology "/root/repo/build/examples/spark_pathology")
set_tests_properties(example_spark_pathology PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wordcount_app "/root/repo/build/examples/wordcount_app")
set_tests_properties(example_wordcount_app PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ipso_diagnose_cli "/root/repo/build/examples/ipso_diagnose_cli")
set_tests_properties(example_ipso_diagnose_cli PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ipso_predict_cli "/root/repo/build/examples/ipso_predict_cli")
set_tests_properties(example_ipso_predict_cli PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
