file(REMOVE_RECURSE
  "CMakeFiles/diagnose_terasort.dir/diagnose_terasort.cpp.o"
  "CMakeFiles/diagnose_terasort.dir/diagnose_terasort.cpp.o.d"
  "diagnose_terasort"
  "diagnose_terasort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_terasort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
