# Empty dependencies file for diagnose_terasort.
# This may be replaced when dependencies are built.
