file(REMOVE_RECURSE
  "CMakeFiles/ipso_diagnose_cli.dir/ipso_diagnose_cli.cpp.o"
  "CMakeFiles/ipso_diagnose_cli.dir/ipso_diagnose_cli.cpp.o.d"
  "ipso_diagnose_cli"
  "ipso_diagnose_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipso_diagnose_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
