# Empty dependencies file for ipso_diagnose_cli.
# This may be replaced when dependencies are built.
