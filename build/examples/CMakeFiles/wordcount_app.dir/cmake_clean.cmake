file(REMOVE_RECURSE
  "CMakeFiles/wordcount_app.dir/wordcount_app.cpp.o"
  "CMakeFiles/wordcount_app.dir/wordcount_app.cpp.o.d"
  "wordcount_app"
  "wordcount_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordcount_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
