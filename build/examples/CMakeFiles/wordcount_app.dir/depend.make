# Empty dependencies file for wordcount_app.
# This may be replaced when dependencies are built.
