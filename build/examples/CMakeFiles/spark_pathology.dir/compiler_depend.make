# Empty compiler generated dependencies file for spark_pathology.
# This may be replaced when dependencies are built.
