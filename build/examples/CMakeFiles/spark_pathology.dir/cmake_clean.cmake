file(REMOVE_RECURSE
  "CMakeFiles/spark_pathology.dir/spark_pathology.cpp.o"
  "CMakeFiles/spark_pathology.dir/spark_pathology.cpp.o.d"
  "spark_pathology"
  "spark_pathology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark_pathology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
