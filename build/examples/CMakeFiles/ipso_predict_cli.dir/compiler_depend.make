# Empty compiler generated dependencies file for ipso_predict_cli.
# This may be replaced when dependencies are built.
