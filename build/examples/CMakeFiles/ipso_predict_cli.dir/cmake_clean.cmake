file(REMOVE_RECURSE
  "CMakeFiles/ipso_predict_cli.dir/ipso_predict_cli.cpp.o"
  "CMakeFiles/ipso_predict_cli.dir/ipso_predict_cli.cpp.o.d"
  "ipso_predict_cli"
  "ipso_predict_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipso_predict_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
