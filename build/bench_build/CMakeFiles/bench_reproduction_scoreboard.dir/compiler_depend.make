# Empty compiler generated dependencies file for bench_reproduction_scoreboard.
# This may be replaced when dependencies are built.
