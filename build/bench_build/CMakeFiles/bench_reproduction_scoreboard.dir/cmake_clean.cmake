file(REMOVE_RECURSE
  "../bench/bench_reproduction_scoreboard"
  "../bench/bench_reproduction_scoreboard.pdb"
  "CMakeFiles/bench_reproduction_scoreboard.dir/bench_reproduction_scoreboard.cpp.o"
  "CMakeFiles/bench_reproduction_scoreboard.dir/bench_reproduction_scoreboard.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reproduction_scoreboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
