# Empty compiler generated dependencies file for bench_memory_bounded.
# This may be replaced when dependencies are built.
