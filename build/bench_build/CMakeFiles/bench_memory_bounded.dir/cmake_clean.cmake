file(REMOVE_RECURSE
  "../bench/bench_memory_bounded"
  "../bench/bench_memory_bounded.pdb"
  "CMakeFiles/bench_memory_bounded.dir/bench_memory_bounded.cpp.o"
  "CMakeFiles/bench_memory_bounded.dir/bench_memory_bounded.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_bounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
