file(REMOVE_RECURSE
  "../bench/bench_solution_space"
  "../bench/bench_solution_space.pdb"
  "CMakeFiles/bench_solution_space.dir/bench_solution_space.cpp.o"
  "CMakeFiles/bench_solution_space.dir/bench_solution_space.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solution_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
