# Empty compiler generated dependencies file for bench_solution_space.
# This may be replaced when dependencies are built.
