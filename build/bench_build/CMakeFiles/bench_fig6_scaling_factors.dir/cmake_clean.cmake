file(REMOVE_RECURSE
  "../bench/bench_fig6_scaling_factors"
  "../bench/bench_fig6_scaling_factors.pdb"
  "CMakeFiles/bench_fig6_scaling_factors.dir/bench_fig6_scaling_factors.cpp.o"
  "CMakeFiles/bench_fig6_scaling_factors.dir/bench_fig6_scaling_factors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_scaling_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
