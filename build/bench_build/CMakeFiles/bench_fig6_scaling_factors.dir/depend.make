# Empty dependencies file for bench_fig6_scaling_factors.
# This may be replaced when dependencies are built.
