# Empty compiler generated dependencies file for bench_functional_grounding.
# This may be replaced when dependencies are built.
