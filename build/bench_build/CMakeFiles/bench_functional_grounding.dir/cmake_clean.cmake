file(REMOVE_RECURSE
  "../bench/bench_functional_grounding"
  "../bench/bench_functional_grounding.pdb"
  "CMakeFiles/bench_functional_grounding.dir/bench_functional_grounding.cpp.o"
  "CMakeFiles/bench_functional_grounding.dir/bench_functional_grounding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_functional_grounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
