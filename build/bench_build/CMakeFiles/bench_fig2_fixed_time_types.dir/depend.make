# Empty dependencies file for bench_fig2_fixed_time_types.
# This may be replaced when dependencies are built.
