# Empty compiler generated dependencies file for bench_fig10_spark_fixed_size.
# This may be replaced when dependencies are built.
