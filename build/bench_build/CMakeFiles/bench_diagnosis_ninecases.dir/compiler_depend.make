# Empty compiler generated dependencies file for bench_diagnosis_ninecases.
# This may be replaced when dependencies are built.
