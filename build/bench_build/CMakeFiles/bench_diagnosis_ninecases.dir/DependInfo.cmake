
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_diagnosis_ninecases.cpp" "bench_build/CMakeFiles/bench_diagnosis_ninecases.dir/bench_diagnosis_ninecases.cpp.o" "gcc" "bench_build/CMakeFiles/bench_diagnosis_ninecases.dir/bench_diagnosis_ninecases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/ipso_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ipso_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/ipso_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/ipso_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ipso_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ipso_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ipso_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
