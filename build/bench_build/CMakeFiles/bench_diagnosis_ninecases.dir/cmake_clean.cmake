file(REMOVE_RECURSE
  "../bench/bench_diagnosis_ninecases"
  "../bench/bench_diagnosis_ninecases.pdb"
  "CMakeFiles/bench_diagnosis_ninecases.dir/bench_diagnosis_ninecases.cpp.o"
  "CMakeFiles/bench_diagnosis_ninecases.dir/bench_diagnosis_ninecases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diagnosis_ninecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
