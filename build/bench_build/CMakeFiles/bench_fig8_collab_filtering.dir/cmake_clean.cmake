file(REMOVE_RECURSE
  "../bench/bench_fig8_collab_filtering"
  "../bench/bench_fig8_collab_filtering.pdb"
  "CMakeFiles/bench_fig8_collab_filtering.dir/bench_fig8_collab_filtering.cpp.o"
  "CMakeFiles/bench_fig8_collab_filtering.dir/bench_fig8_collab_filtering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_collab_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
