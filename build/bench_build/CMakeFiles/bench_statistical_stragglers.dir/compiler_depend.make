# Empty compiler generated dependencies file for bench_statistical_stragglers.
# This may be replaced when dependencies are built.
