file(REMOVE_RECURSE
  "../bench/bench_statistical_stragglers"
  "../bench/bench_statistical_stragglers.pdb"
  "CMakeFiles/bench_statistical_stragglers.dir/bench_statistical_stragglers.cpp.o"
  "CMakeFiles/bench_statistical_stragglers.dir/bench_statistical_stragglers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_statistical_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
