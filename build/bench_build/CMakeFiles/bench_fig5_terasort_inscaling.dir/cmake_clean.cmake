file(REMOVE_RECURSE
  "../bench/bench_fig5_terasort_inscaling"
  "../bench/bench_fig5_terasort_inscaling.pdb"
  "CMakeFiles/bench_fig5_terasort_inscaling.dir/bench_fig5_terasort_inscaling.cpp.o"
  "CMakeFiles/bench_fig5_terasort_inscaling.dir/bench_fig5_terasort_inscaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_terasort_inscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
