# Empty dependencies file for bench_fig5_terasort_inscaling.
# This may be replaced when dependencies are built.
