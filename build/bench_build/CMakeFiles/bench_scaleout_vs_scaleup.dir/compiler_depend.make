# Empty compiler generated dependencies file for bench_scaleout_vs_scaleup.
# This may be replaced when dependencies are built.
