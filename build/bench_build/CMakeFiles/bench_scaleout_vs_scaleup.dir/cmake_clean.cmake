file(REMOVE_RECURSE
  "../bench/bench_scaleout_vs_scaleup"
  "../bench/bench_scaleout_vs_scaleup.pdb"
  "CMakeFiles/bench_scaleout_vs_scaleup.dir/bench_scaleout_vs_scaleup.cpp.o"
  "CMakeFiles/bench_scaleout_vs_scaleup.dir/bench_scaleout_vs_scaleup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaleout_vs_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
