# Empty dependencies file for bench_fig7_ipso_prediction.
# This may be replaced when dependencies are built.
