file(REMOVE_RECURSE
  "../bench/bench_fig7_ipso_prediction"
  "../bench/bench_fig7_ipso_prediction.pdb"
  "CMakeFiles/bench_fig7_ipso_prediction.dir/bench_fig7_ipso_prediction.cpp.o"
  "CMakeFiles/bench_fig7_ipso_prediction.dir/bench_fig7_ipso_prediction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ipso_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
