# Empty compiler generated dependencies file for bench_laws_special_cases.
# This may be replaced when dependencies are built.
