file(REMOVE_RECURSE
  "../bench/bench_laws_special_cases"
  "../bench/bench_laws_special_cases.pdb"
  "CMakeFiles/bench_laws_special_cases.dir/bench_laws_special_cases.cpp.o"
  "CMakeFiles/bench_laws_special_cases.dir/bench_laws_special_cases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_laws_special_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
