# Empty dependencies file for bench_fig3_fixed_size_types.
# This may be replaced when dependencies are built.
