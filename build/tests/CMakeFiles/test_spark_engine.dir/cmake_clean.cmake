file(REMOVE_RECURSE
  "CMakeFiles/test_spark_engine.dir/test_spark_engine.cpp.o"
  "CMakeFiles/test_spark_engine.dir/test_spark_engine.cpp.o.d"
  "test_spark_engine"
  "test_spark_engine.pdb"
  "test_spark_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spark_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
