file(REMOVE_RECURSE
  "CMakeFiles/test_mr_multiround.dir/test_mr_multiround.cpp.o"
  "CMakeFiles/test_mr_multiround.dir/test_mr_multiround.cpp.o.d"
  "test_mr_multiround"
  "test_mr_multiround.pdb"
  "test_mr_multiround[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mr_multiround.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
