# Empty dependencies file for test_mr_multiround.
# This may be replaced when dependencies are built.
