file(REMOVE_RECURSE
  "CMakeFiles/test_core_predict.dir/test_core_predict.cpp.o"
  "CMakeFiles/test_core_predict.dir/test_core_predict.cpp.o.d"
  "test_core_predict"
  "test_core_predict.pdb"
  "test_core_predict[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
