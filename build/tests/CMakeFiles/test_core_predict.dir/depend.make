# Empty dependencies file for test_core_predict.
# This may be replaced when dependencies are built.
