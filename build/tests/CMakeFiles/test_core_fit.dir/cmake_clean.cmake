file(REMOVE_RECURSE
  "CMakeFiles/test_core_fit.dir/test_core_fit.cpp.o"
  "CMakeFiles/test_core_fit.dir/test_core_fit.cpp.o.d"
  "test_core_fit"
  "test_core_fit.pdb"
  "test_core_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
