# Empty dependencies file for test_core_fit.
# This may be replaced when dependencies are built.
