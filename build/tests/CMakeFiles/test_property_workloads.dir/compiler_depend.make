# Empty compiler generated dependencies file for test_property_workloads.
# This may be replaced when dependencies are built.
