# Empty dependencies file for test_workloads_graph_cf.
# This may be replaced when dependencies are built.
