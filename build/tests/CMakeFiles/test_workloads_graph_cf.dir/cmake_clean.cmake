file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_graph_cf.dir/test_workloads_graph_cf.cpp.o"
  "CMakeFiles/test_workloads_graph_cf.dir/test_workloads_graph_cf.cpp.o.d"
  "test_workloads_graph_cf"
  "test_workloads_graph_cf.pdb"
  "test_workloads_graph_cf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_graph_cf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
