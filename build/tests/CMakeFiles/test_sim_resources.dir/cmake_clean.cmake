file(REMOVE_RECURSE
  "CMakeFiles/test_sim_resources.dir/test_sim_resources.cpp.o"
  "CMakeFiles/test_sim_resources.dir/test_sim_resources.cpp.o.d"
  "test_sim_resources"
  "test_sim_resources.pdb"
  "test_sim_resources[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
