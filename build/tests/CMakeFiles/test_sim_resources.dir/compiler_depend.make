# Empty compiler generated dependencies file for test_sim_resources.
# This may be replaced when dependencies are built.
