file(REMOVE_RECURSE
  "CMakeFiles/test_stats_linalg.dir/test_stats_linalg.cpp.o"
  "CMakeFiles/test_stats_linalg.dir/test_stats_linalg.cpp.o.d"
  "test_stats_linalg"
  "test_stats_linalg.pdb"
  "test_stats_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
