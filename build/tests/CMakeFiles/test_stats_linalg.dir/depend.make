# Empty dependencies file for test_stats_linalg.
# This may be replaced when dependencies are built.
