file(REMOVE_RECURSE
  "CMakeFiles/test_sim_queueing.dir/test_sim_queueing.cpp.o"
  "CMakeFiles/test_sim_queueing.dir/test_sim_queueing.cpp.o.d"
  "test_sim_queueing"
  "test_sim_queueing.pdb"
  "test_sim_queueing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
