file(REMOVE_RECURSE
  "CMakeFiles/test_stats_series.dir/test_stats_series.cpp.o"
  "CMakeFiles/test_stats_series.dir/test_stats_series.cpp.o.d"
  "test_stats_series"
  "test_stats_series.pdb"
  "test_stats_series[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
