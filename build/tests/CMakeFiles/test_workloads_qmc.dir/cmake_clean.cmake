file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_qmc.dir/test_workloads_qmc.cpp.o"
  "CMakeFiles/test_workloads_qmc.dir/test_workloads_qmc.cpp.o.d"
  "test_workloads_qmc"
  "test_workloads_qmc.pdb"
  "test_workloads_qmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_qmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
