# Empty compiler generated dependencies file for test_workloads_qmc.
# This may be replaced when dependencies are built.
