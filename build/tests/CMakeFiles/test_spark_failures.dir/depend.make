# Empty dependencies file for test_spark_failures.
# This may be replaced when dependencies are built.
