file(REMOVE_RECURSE
  "CMakeFiles/test_spark_failures.dir/test_spark_failures.cpp.o"
  "CMakeFiles/test_spark_failures.dir/test_spark_failures.cpp.o.d"
  "test_spark_failures"
  "test_spark_failures.pdb"
  "test_spark_failures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spark_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
