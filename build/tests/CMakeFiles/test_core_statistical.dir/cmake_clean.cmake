file(REMOVE_RECURSE
  "CMakeFiles/test_core_statistical.dir/test_core_statistical.cpp.o"
  "CMakeFiles/test_core_statistical.dir/test_core_statistical.cpp.o.d"
  "test_core_statistical"
  "test_core_statistical.pdb"
  "test_core_statistical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_statistical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
