# Empty compiler generated dependencies file for test_core_statistical.
# This may be replaced when dependencies are built.
