file(REMOVE_RECURSE
  "CMakeFiles/test_core_classify.dir/test_core_classify.cpp.o"
  "CMakeFiles/test_core_classify.dir/test_core_classify.cpp.o.d"
  "test_core_classify"
  "test_core_classify.pdb"
  "test_core_classify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
