# Empty compiler generated dependencies file for test_stats_nonlinear.
# This may be replaced when dependencies are built.
