file(REMOVE_RECURSE
  "CMakeFiles/test_stats_nonlinear.dir/test_stats_nonlinear.cpp.o"
  "CMakeFiles/test_stats_nonlinear.dir/test_stats_nonlinear.cpp.o.d"
  "test_stats_nonlinear"
  "test_stats_nonlinear.pdb"
  "test_stats_nonlinear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
