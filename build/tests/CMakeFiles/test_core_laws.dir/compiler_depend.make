# Empty compiler generated dependencies file for test_core_laws.
# This may be replaced when dependencies are built.
