file(REMOVE_RECURSE
  "CMakeFiles/test_core_laws.dir/test_core_laws.cpp.o"
  "CMakeFiles/test_core_laws.dir/test_core_laws.cpp.o.d"
  "test_core_laws"
  "test_core_laws.pdb"
  "test_core_laws[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_laws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
