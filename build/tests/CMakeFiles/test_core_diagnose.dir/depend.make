# Empty dependencies file for test_core_diagnose.
# This may be replaced when dependencies are built.
