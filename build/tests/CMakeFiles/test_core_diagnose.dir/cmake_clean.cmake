file(REMOVE_RECURSE
  "CMakeFiles/test_core_diagnose.dir/test_core_diagnose.cpp.o"
  "CMakeFiles/test_core_diagnose.dir/test_core_diagnose.cpp.o.d"
  "test_core_diagnose"
  "test_core_diagnose.pdb"
  "test_core_diagnose[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_diagnose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
