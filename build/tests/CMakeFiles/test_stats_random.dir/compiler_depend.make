# Empty compiler generated dependencies file for test_stats_random.
# This may be replaced when dependencies are built.
