file(REMOVE_RECURSE
  "CMakeFiles/test_stats_random.dir/test_stats_random.cpp.o"
  "CMakeFiles/test_stats_random.dir/test_stats_random.cpp.o.d"
  "test_stats_random"
  "test_stats_random.pdb"
  "test_stats_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
