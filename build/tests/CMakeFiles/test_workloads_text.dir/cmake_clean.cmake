file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_text.dir/test_workloads_text.cpp.o"
  "CMakeFiles/test_workloads_text.dir/test_workloads_text.cpp.o.d"
  "test_workloads_text"
  "test_workloads_text.pdb"
  "test_workloads_text[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
