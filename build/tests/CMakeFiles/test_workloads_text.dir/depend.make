# Empty dependencies file for test_workloads_text.
# This may be replaced when dependencies are built.
