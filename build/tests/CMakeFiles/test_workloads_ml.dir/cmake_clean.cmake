file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_ml.dir/test_workloads_ml.cpp.o"
  "CMakeFiles/test_workloads_ml.dir/test_workloads_ml.cpp.o.d"
  "test_workloads_ml"
  "test_workloads_ml.pdb"
  "test_workloads_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
