# Empty dependencies file for test_workloads_ml.
# This may be replaced when dependencies are built.
