file(REMOVE_RECURSE
  "CMakeFiles/test_property_model.dir/test_property_model.cpp.o"
  "CMakeFiles/test_property_model.dir/test_property_model.cpp.o.d"
  "test_property_model"
  "test_property_model.pdb"
  "test_property_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
