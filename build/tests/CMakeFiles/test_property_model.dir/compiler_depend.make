# Empty compiler generated dependencies file for test_property_model.
# This may be replaced when dependencies are built.
