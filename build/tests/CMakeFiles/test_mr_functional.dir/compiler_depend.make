# Empty compiler generated dependencies file for test_mr_functional.
# This may be replaced when dependencies are built.
