file(REMOVE_RECURSE
  "CMakeFiles/test_mr_functional.dir/test_mr_functional.cpp.o"
  "CMakeFiles/test_mr_functional.dir/test_mr_functional.cpp.o.d"
  "test_mr_functional"
  "test_mr_functional.pdb"
  "test_mr_functional[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mr_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
