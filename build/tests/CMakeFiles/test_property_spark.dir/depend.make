# Empty dependencies file for test_property_spark.
# This may be replaced when dependencies are built.
