file(REMOVE_RECURSE
  "CMakeFiles/test_property_spark.dir/test_property_spark.cpp.o"
  "CMakeFiles/test_property_spark.dir/test_property_spark.cpp.o.d"
  "test_property_spark"
  "test_property_spark.pdb"
  "test_property_spark[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
