# Empty compiler generated dependencies file for test_workloads_sort.
# This may be replaced when dependencies are built.
