file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_sort.dir/test_workloads_sort.cpp.o"
  "CMakeFiles/test_workloads_sort.dir/test_workloads_sort.cpp.o.d"
  "test_workloads_sort"
  "test_workloads_sort.pdb"
  "test_workloads_sort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
