/// A complete "application developer" walk-through on WordCount: really
/// count words (functional kernel with verification), ground the simulation
/// in the measured data volumes, sweep the cluster size, diagnose the
/// scaling, and get engineering advice from the sensitivity analysis.
///
/// Build & run:  ./build/examples/wordcount_app [--threads N]

#include "obs/export.h"
#include "core/diagnose.h"
#include "core/sensitivity.h"
#include "mapreduce/functional.h"
#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "trace/json.h"
#include "trace/report.h"
#include "workloads/functional_jobs.h"

#include <iostream>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "A complete \"application developer\" walk-through on WordCount: really")) {
    return 0;
  }
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));

  // --- 1. Real computation with verification, grounding the cost model.
  wl::WordCountJob job;
  mr::MrEngine engine8(sim::default_emr_cluster(8));
  mr::MrJobConfig cfg;
  cfg.num_tasks = 8;
  cfg.shard_bytes = 128e6;
  cfg.seed = 5;
  const auto grounded =
      mr::run_functional(engine8, job, wl::wordcount_spec(), cfg);
  std::cout << "functional WordCount over 8 shards: "
            << (grounded.verified ? "token counts conserved"
                                  : "VERIFICATION FAILED")
            << "; measured combiner output "
            << trace::fmt(grounded.measured_fixed_intermediate / 1024.0, 1)
            << " KiB per task\n";

  // --- 2. Scaling sweep with the grounded spec.
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8, 16, 32, 64, 96, 128, 160};
  sweep.repetitions = 3;
  const auto r = runner.run_mr_sweep(grounded.grounded_spec,
                                     sim::default_emr_cluster(1), sweep);

  trace::print_banner(std::cout, "WordCount scaling (grounded simulation)");
  auto measured = r.speedup;
  measured.set_name("S(n)");
  auto gustafson = trace::law_baseline(r, WorkloadType::kFixedTime);
  trace::print_series_table(std::cout, "n", {measured, gustafson}, 2);

  // --- 3. Diagnosis with measured factors.
  const auto report =
      diagnose(WorkloadType::kFixedTime, r.speedup, r.factors).value();
  trace::print_banner(std::cout, "Diagnosis");
  std::cout << report.summary;

  // --- 4. Engineering advice from the fitted parameters.
  if (report.fits) {
    trace::print_banner(std::cout, "Sensitivity");
    std::cout << improvement_advice(report.fits->params, 160.0) << "\n";
  }

  // --- 5. Machine-readable export for the notebook.
  trace::print_banner(std::cout, "JSON export (truncated)");
  std::cout << trace::to_json(r).substr(0, 240) << "...\n";
  return 0;
}
