/// Resource provisioning with IPSO — the speedup-versus-cost tradeoff the
/// paper's introduction motivates ("informed datacenter resource
/// provisioning decisions ... to achieve the best speedup-versus-cost
/// tradeoffs"). Fits IPSO on cheap small-scale probe runs of two contrasting
/// workloads, then picks cluster sizes:
///   * TeraSort (IIIt,1): bounded — the knee is the right buy;
///   * Collaborative Filtering (IVs): peaked — past the peak you pay more
///     for *less* performance.
///
/// Build & run:  ./build/examples/provisioning [--threads N]

#include "obs/export.h"
#include "core/predict.h"
#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "trace/report.h"
#include "workloads/terasort.h"

#include <iostream>

using namespace ipso;

namespace {

void plan_and_print(const std::string& name,
                    const SpeedupPredictor& predictor, double n_hi) {
  std::vector<double> ns;
  for (double n = 1; n <= n_hi; ++n) ns.push_back(n);
  const ProvisioningPlan plan = plan_provisioning(predictor, ns, 0.9);

  trace::print_banner(std::cout, "Provisioning: " + name);
  std::vector<std::vector<std::string>> rows;
  for (const auto& opt : plan.options) {
    // Sample a few representative sizes for the table.
    const bool interesting =
        opt.n == 1 || opt.n == plan.knee_n || opt.n == plan.best_value_n ||
        opt.n == plan.best_speedup_n || opt.n == n_hi ||
        static_cast<long long>(opt.n) % 32 == 0;
    if (!interesting) continue;
    rows.push_back({trace::fmt(opt.n, 0), trace::fmt(opt.speedup, 2),
                    trace::fmt(opt.cost, 2), trace::fmt(opt.efficiency, 3),
                    trace::fmt(opt.value, 3)});
  }
  trace::print_table(
      std::cout, {"n", "speedup", "cost (node-time)", "efficiency", "S/cost"},
      rows);
  std::cout << "  max speedup at n = " << plan.best_speedup_n
            << "; 90%-of-max knee at n = " << plan.knee_n
            << "; best speedup-per-cost at n = " << plan.best_value_n << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Resource provisioning with IPSO — the speedup-versus-cost tradeoff the")) {
    return 0;
  }
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));

  // --- TeraSort: fit IPSO on a cheap probe sweep (n <= 24).
  trace::MrSweepConfig probe;
  probe.type = WorkloadType::kFixedTime;
  for (double n = 1; n <= 24; ++n) probe.ns.push_back(n);
  probe.repetitions = 1;
  const auto measured = runner.run_mr_sweep(wl::terasort_spec(),
                                            sim::default_emr_cluster(1),
                                            probe);
  const auto fits =
      fit_factors(WorkloadType::kFixedTime, measured.factors).value();
  plan_and_print("TeraSort (fixed-time, type IIIt,1)",
                 SpeedupPredictor::from_fits(fits), 256);

  // --- Collaborative Filtering: the paper's fitted pathology (gamma = 2).
  ScalingFactors cf{constant_factor(1.0), constant_factor(1.0),
                    make_q(3.74e-4, 2.0)};
  plan_and_print("Collaborative Filtering (fixed-size, type IVs)",
                 SpeedupPredictor(cf, 1.0), 128);

  std::cout << "\nlesson: for IIIt workloads buy the knee; for IVs workloads "
               "never scale past the peak (paper: \"scaling out beyond "
               "n = 60 can only do harm\")\n";
  return 0;
}
