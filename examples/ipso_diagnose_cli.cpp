/// ipso_diagnose_cli — diagnose a measured speedup curve from a CSV file,
/// the way a practitioner would use IPSO on their own cluster data.
///
/// Usage:
///   ipso_diagnose_cli fixed-time measurements.csv
///   cat measurements.csv | ipso_diagnose_cli fixed-size -
///
/// The CSV has two columns "n,speedup" (header optional, '#' comments
/// allowed). Optionally a second file with columns "n,EX,IN,q" enables the
/// exact step-6 classification:
///   ipso_diagnose_cli fixed-time speedup.csv factors.csv 0.59
/// where the trailing number is eta (the parallelizable fraction at n = 1).
///
/// With no arguments, runs on a built-in demo dataset.

#include "core/diagnose.h"
#include "core/model.h"
#include "trace/cli_opts.h"
#include "trace/csv.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

using namespace ipso;

namespace {

int usage() {
  std::cerr << "usage: ipso_diagnose_cli <fixed-time|fixed-size> "
               "<speedup.csv|-> [factors.csv eta]\n";
  return 2;
}

stats::Series demo_curve() {
  // A Sort-like bounded curve, so the no-argument run shows something real.
  stats::Series s("demo S(n)");
  const ScalingFactors f{identity_factor(), linear_factor(0.36, 0.64),
                         constant_factor(0.0)};
  for (double n = 1; n <= 256; n *= 2) {
    s.add(n, speedup_deterministic(f, 0.59, n));
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "ipso_diagnose_cli — diagnose a measured speedup curve from a CSV file,")) {
    return 0;
  }
  WorkloadType type = WorkloadType::kFixedTime;
  stats::Series speedup;
  std::optional<FactorMeasurements> factors;

  if (argc == 1) {
    std::cout << "(no input given: running on a built-in Sort-like demo "
                 "curve)\n";
    speedup = demo_curve();
  } else if (argc >= 3) {
    const std::string type_arg = argv[1];
    if (type_arg == "fixed-time") {
      type = WorkloadType::kFixedTime;
    } else if (type_arg == "fixed-size") {
      type = WorkloadType::kFixedSize;
    } else {
      return usage();
    }
    const std::string path = argv[2];
    {
      Expected<stats::Series, trace::CsvError> parsed =
          trace::CsvError{};  // replaced below
      if (path == "-") {
        parsed = trace::read_series_csv(std::cin, "S(n)");
      } else {
        std::ifstream in(path);
        if (!in) {
          std::cerr << "cannot open " << path << "\n";
          return 1;
        }
        parsed = trace::read_series_csv(in, "S(n)");
      }
      if (!parsed) {
        std::cerr << "speedup csv: " << parsed.error().message() << "\n";
        return 1;
      }
      speedup = std::move(*parsed);
    }
    if (argc >= 5) {
      std::ifstream fin(argv[3]);
      if (!fin) {
        std::cerr << "cannot open " << argv[3] << "\n";
        return 1;
      }
      const auto table = trace::read_table_csv(fin);
      if (!table) {
        std::cerr << "factors csv: " << table.error().message() << "\n";
        return 1;
      }
      if (table->size() < 3) {
        std::cerr << "factors csv needs columns n,EX,IN,q\n";
        return 1;
      }
      char* end = nullptr;
      const double eta = std::strtod(argv[4], &end);
      if (end == argv[4] || *end != '\0' || eta < 0.0 || eta > 1.0) {
        std::cerr << "eta must be a number in [0, 1], got '" << argv[4]
                  << "'\n";
        return 1;
      }
      FactorMeasurements m;
      m.eta = eta;
      m.ex = (*table)[0];
      m.in = (*table)[1];
      m.q = (*table)[2];
      factors = std::move(m);
    }
  } else {
    return usage();
  }

  if (speedup.size() < 3) {
    std::cerr << "need at least 3 measured points\n";
    return 1;
  }
  const auto report = factors ? diagnose(type, speedup, *factors)
                              : diagnose(type, speedup);
  if (!report) {
    std::cerr << "diagnosis failed: " << to_string(report.error()) << "\n";
    return 1;
  }
  std::cout << report->summary;
  return 0;
}
