/// Quickstart: the IPSO model in ten minutes.
///
/// 1. Express a workload's scaling factors (EX, IN, q).
/// 2. Evaluate the IPSO speedup and compare with Amdahl / Gustafson.
/// 3. Classify the scaling behaviour and read off the bound.
/// 4. Diagnose a measured speedup curve you got from anywhere.
///
/// Build & run:  ./build/examples/quickstart

#include "core/classify.h"
#include "core/diagnose.h"
#include "core/laws.h"
#include "core/model.h"
#include "trace/cli_opts.h"

#include <iostream>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Quickstart: the IPSO model in ten minutes.")) {
    return 0;
  }
  // --- 1. A Sort-like workload: fixed-time external scaling (EX = n),
  //        in-proportion serial scaling (IN = 0.36 n + 0.64), no
  //        scale-out-induced overhead. 59% of the n=1 work parallelizes.
  const double eta = 0.59;
  const ScalingFactors sortish{identity_factor(),
                               linear_factor(0.36, 0.64),
                               constant_factor(0.0)};

  std::cout << "n     IPSO   Gustafson   Amdahl\n";
  for (double n : {1.0, 8.0, 32.0, 128.0, 512.0}) {
    std::cout << n << "\t" << speedup_deterministic(sortish, eta, n) << "\t"
              << laws::gustafson(eta, n) << "\t" << laws::amdahl(eta, n)
              << "\n";
  }

  // --- 2. Classify it: five numbers span the whole solution space.
  AsymptoticParams params;
  params.type = WorkloadType::kFixedTime;
  params.eta = eta;
  params.alpha = 1.0 / 0.36;  // epsilon(n) = EX/IN -> 2.78 as n -> inf
  params.delta = 0.0;         // the ratio flattens: full in-proportion
  const Classification verdict = classify(params);
  std::cout << "\ntype " << to_string(verdict.type) << ", bound "
            << verdict.bound << "\n"
            << verdict.rationale << "\n";

  // --- 3. Diagnose a measured curve (no model knowledge needed).
  stats::Series measured("S(n)");
  for (double n = 1; n <= 256; n *= 2) {
    measured.add(n, speedup_deterministic(sortish, eta, n));
  }
  const DiagnosticReport report =
      diagnose(WorkloadType::kFixedTime, measured).value();
  std::cout << "\n" << report.summary;
  return 0;
}
