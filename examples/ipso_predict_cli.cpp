/// ipso_predict_cli — predict large-scale speedups and plan cluster sizes
/// from small-scale factor measurements, the paper's "measurement-based
/// resource provisioning" workflow.
///
/// Usage:
///   ipso_predict_cli <fixed-time|fixed-size> <factors.csv> <eta> [n...]
///
/// factors.csv columns: n,EX,IN,q (header optional). The trailing n values
/// (default: 32 64 128 256 512) are the scales to predict. Prints the
/// fitted parameters, the classification with its bound/peak, predicted
/// speedups, and the provisioning plan (knee / best-value / peak n).
///
/// With no arguments, runs on a built-in TeraSort-like demo dataset.

#include "core/classify.h"
#include "core/predict.h"
#include "trace/cli_opts.h"
#include "trace/csv.h"
#include "trace/report.h"

#include <cmath>
#include <fstream>
#include <iostream>

using namespace ipso;

namespace {

FactorMeasurements demo_factors() {
  FactorMeasurements m;
  m.eta = 1.0 / 3.0;
  for (double n = 1; n <= 24; ++n) {
    m.ex.add(n, n);
    m.in.add(n, n <= 15 ? 0.15 * n + 0.85 : 0.25 * n + 0.85);
  }
  return m;
}

int usage() {
  std::cerr << "usage: ipso_predict_cli <fixed-time|fixed-size> "
               "<factors.csv> <eta> [n...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "ipso_predict_cli — predict large-scale speedups and plan cluster sizes")) {
    return 0;
  }
  WorkloadType type = WorkloadType::kFixedTime;
  FactorMeasurements measurements;
  std::vector<double> targets{32, 64, 128, 256, 512};

  if (argc == 1) {
    std::cout << "(no input given: using a built-in TeraSort-like demo "
                 "dataset, eta = 1/3)\n";
    measurements = demo_factors();
  } else if (argc >= 4) {
    const std::string type_arg = argv[1];
    if (type_arg == "fixed-time") {
      type = WorkloadType::kFixedTime;
    } else if (type_arg == "fixed-size") {
      type = WorkloadType::kFixedSize;
    } else {
      return usage();
    }
    std::ifstream in(argv[2]);
    if (!in) {
      std::cerr << "cannot open " << argv[2] << "\n";
      return 1;
    }
    const auto table = trace::read_table_csv(in);
    if (!table) {
      std::cerr << "factors csv: " << table.error().message() << "\n";
      return 1;
    }
    if (table->size() < 3) {
      std::cerr << "factors csv needs columns n,EX,IN,q\n";
      return 1;
    }
    measurements.ex = (*table)[0];
    measurements.in = (*table)[1];
    measurements.q = (*table)[2];
    try {
      measurements.eta = std::stod(argv[3]);
      if (argc > 4) {
        targets.clear();
        for (int i = 4; i < argc; ++i) targets.push_back(std::stod(argv[i]));
      }
    } catch (const std::exception&) {
      std::cerr << "eta and target n values must be numeric\n";
      return 1;
    }
  } else {
    return usage();
  }

  const auto fit_result = fit_factors(type, measurements);
  if (!fit_result) {
    std::cerr << "factor fit failed: " << to_string(fit_result.error())
              << "\n";
    return 1;
  }
  const FactorFits& fits = *fit_result;
  const Classification verdict = classify(fits.params);
  std::cout << "fitted: eta=" << trace::fmt(fits.params.eta, 3)
            << " alpha=" << trace::fmt(fits.params.alpha, 3)
            << " delta=" << trace::fmt(fits.params.delta, 3)
            << " beta=" << trace::fmt(fits.params.beta, 5)
            << " gamma=" << trace::fmt(fits.params.gamma, 3)
            << (fits.in_has_changepoint ? "  [IN(n) changepoint]" : "")
            << "\n";
  std::cout << "type " << to_string(verdict.type);
  if (std::isfinite(verdict.bound)) {
    std::cout << ", speedup bound ~" << trace::fmt(verdict.bound, 2);
  }
  if (shape_of(verdict.type) == GrowthShape::kPeaked) {
    std::cout << ", PEAK at n ~" << trace::fmt(verdict.peak_n, 0)
              << " (never scale past it)";
  }
  std::cout << "\n\n";

  const auto predictor = SpeedupPredictor::from_fits(fits);
  std::vector<std::vector<std::string>> rows;
  for (double n : targets) {
    rows.push_back({trace::fmt(n, 0), trace::fmt(predictor(n), 2)});
  }
  trace::print_table(std::cout, {"n", "predicted S(n)"}, rows);

  std::vector<double> sweep;
  const double hi = *std::max_element(targets.begin(), targets.end());
  for (double n = 1; n <= hi; ++n) sweep.push_back(n);
  const auto plan = plan_provisioning(predictor, sweep, 0.9);
  std::cout << "\nprovisioning: 90%-of-max knee at n = " << plan.knee_n
            << ", best speedup-per-cost at n = " << plan.best_value_n
            << ", max speedup at n = " << plan.best_speedup_n << "\n";
  return 0;
}
