/// Spark event-log analysis — the paper's Spark methodology in miniature:
/// run the simulated Collaborative Filtering job at several parallel
/// degrees, dump a Spark-style JSON event log per run, parse stage
/// timestamps back out of the logs (exactly how the paper extracted
/// latencies), and watch the type-IVs pathology appear.
///
/// Build & run:  ./build/examples/spark_pathology
/// Optional fault injection: --fail-prob P, --speculate [F],
/// --max-retries K (see trace/runner.h) — failed attempts and stage
/// rollbacks then show up in the event-log latencies.

#include "obs/export.h"
#include "spark/engine.h"
#include "spark/eventlog.h"
#include "trace/report.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "workloads/collab_filter.h"

#include <iostream>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Spark event-log analysis — the paper's Spark methodology in miniature:")) {
    return 0;
  }
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  spark::SparkEngineParams params;
  params.first_wave_overhead = 0.45;
  params.faults = trace::fault_params_from_args(argc, argv, params.faults);

  // Sequential baseline (one executor, no broadcasts).
  const auto app1 = wl::collab_filter_app(1);
  spark::SparkEngine seq_engine(sim::default_emr_cluster(1), params);
  spark::SparkJobConfig seq_job;
  seq_job.total_tasks = 1;
  seq_job.executors = 1;
  const double t_seq =
      seq_engine.run_sequential(app1, seq_job).makespan;

  trace::print_banner(std::cout,
                      "Collaborative Filtering from Spark event logs");
  std::vector<std::vector<std::string>> rows;
  std::string sample_log;
  for (std::size_t m : {10u, 30u, 60u, 90u, 120u}) {
    auto cfg = sim::default_emr_cluster(m);
    spark::SparkEngine engine(cfg, params);
    spark::SparkJobConfig job;
    job.total_tasks = m;  // one CF task per node, fixed total workload
    job.executors = m;
    const auto result = engine.run(wl::collab_filter_app(m), job);

    // The analysis pipeline sees only the event log, like the paper's did.
    const std::string log = spark::to_event_log(result);
    if (m == 60) sample_log = log.substr(0, 400);
    const auto events = spark::parse_event_log(log);
    const auto latency = spark::job_latency(events);

    rows.push_back({std::to_string(m), std::to_string(events.size()),
                    trace::fmt(latency.value_or(0.0), 1),
                    trace::fmt(t_seq / result.makespan, 2)});
  }
  trace::print_table(std::cout,
                     {"m", "stages in log", "job latency (s)", "speedup"},
                     rows);

  std::cout << "\nspeedup peaks near m = 60 and then falls: the broadcast "
               "serialization at the driver grows with m (type IVs).\n";
  std::cout << "\nsample of the event log at m = 60:\n"
            << sample_log << "...\n";
  return 0;
}
