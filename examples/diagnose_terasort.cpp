/// Full diagnostic walk-through on simulated TeraSort — the paper's
/// Section V procedure end to end:
///   measure a speedup sweep -> extract per-phase scaling factors ->
///   detect the memory-overflow changepoint in IN(n) -> fit (eta, alpha,
///   delta, beta, gamma) -> classify -> predict large-n speedups.
///
/// Build & run:  ./build/examples/diagnose_terasort [--threads N]

#include "obs/export.h"
#include "core/diagnose.h"
#include "core/predict.h"
#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "trace/report.h"
#include "workloads/terasort.h"

#include <iostream>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Full diagnostic walk-through on simulated TeraSort — the paper's")) {
    return 0;
  }
  // Sweeps run on a shared thread pool; --threads / IPSO_THREADS override
  // the worker count without changing any result bit.
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));

  // Step 1-2: fixed-time workload, measure the speedup as n scales.
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  for (double n = 1; n <= 64; n += (n < 16 ? 1 : 4)) sweep.ns.push_back(n);
  sweep.repetitions = 3;
  const auto measured = runner.run_mr_sweep(wl::terasort_spec(),
                                            sim::default_emr_cluster(1),
                                            sweep);

  trace::print_banner(std::cout, "Measured TeraSort sweep");
  auto s = measured.speedup;
  s.set_name("S(n)");
  auto in = measured.factors.in;
  in.set_name("IN(n)");
  trace::print_series_table(std::cout, "n", {s, in}, 3);

  // Step 3-6: diagnose with factor measurements (pins down the sub-type).
  const auto report =
      diagnose(WorkloadType::kFixedTime, measured.speedup, measured.factors)
          .value();
  trace::print_banner(std::cout, "Diagnosis");
  std::cout << report.summary;

  // Bonus: predict beyond the measured range from the fitted factors.
  if (report.fits) {
    const auto predictor = SpeedupPredictor::from_fits(*report.fits);
    trace::print_banner(std::cout, "Prediction beyond the measured range");
    for (double n : {96.0, 160.0, 320.0, 1000.0}) {
      std::cout << "  S(" << n << ") ~ " << trace::fmt(predictor(n), 2)
                << "\n";
    }
    std::cout << "the speedup never escapes its in-proportion bound — "
                 "buying more than ~64 nodes for this job wastes money\n";
  }
  return 0;
}
