/// Fig. 1 of the paper: the conceptual workload decomposition of the four
/// scaling models at n = 3 — Amdahl (fixed-size), Gustafson/Sun-Ni
/// (fixed-time / memory-bounded), and IPSO (in-proportion + scale-out-
/// induced). Prints Wp/Ws/Wo per model and the resulting speedups.

#include "core/laws.h"
#include "core/model.h"
#include "trace/cli_opts.h"
#include "trace/report.h"

#include <iostream>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Fig. 1 of the paper: the conceptual workload decomposition of the four")) {
    return 0;
  }
  const double n = 3.0;
  const double eta = 0.75;  // 3 units parallelizable, 1 serial at n = 1

  trace::print_banner(std::cout,
                      "Fig. 1: speedup models at n = 3 (eta = 0.75)");

  struct Row {
    const char* model;
    ScalingFactors f;
  };
  const Row rows[] = {
      {"Amdahl (fixed-size)",
       {constant_factor(1.0), constant_factor(1.0), constant_factor(0.0)}},
      {"Gustafson / Sun-Ni (fixed-time)",
       {identity_factor(), constant_factor(1.0), constant_factor(0.0)}},
      {"IPSO in-proportion (IN = n)",
       {identity_factor(), identity_factor(), constant_factor(0.0)}},
      {"IPSO + scale-out-induced (q = 0.2 n)",
       {identity_factor(), identity_factor(), make_q(0.2, 1.0)}},
  };

  std::vector<std::vector<std::string>> table;
  for (const auto& row : rows) {
    const double wp = eta * row.f.ex(n);
    const double ws = (1.0 - eta) * row.f.in(n);
    const double wo = eta * row.f.ex(n) / n * row.f.q(n);
    table.push_back({row.model, trace::fmt(wp, 2), trace::fmt(ws, 2),
                     trace::fmt(wo, 2),
                     trace::fmt(speedup_deterministic(row.f, eta, n), 3)});
  }
  trace::print_table(std::cout, {"model", "Wp(3)", "Ws(3)", "Wo(3)", "S(3)"},
                     table);

  std::cout << "\nReference laws at n = 3: Amdahl "
            << laws::amdahl(eta, n) << ", Gustafson " << laws::gustafson(eta, n)
            << ", Sun-Ni (g = n) " << laws::sun_ni(eta, n) << "\n";
  return 0;
}
