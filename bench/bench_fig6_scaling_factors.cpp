/// Fig. 6 of the paper: measured external and internal scaling factors for
/// the four MapReduce cases. EX(n) ~ n for all four (memory-bounded ==
/// fixed-time for data-intensive working sets); IN(n) is linear-in-n for
/// Sort (paper fit 0.36 n - 0.11) and TeraSort (0.23 n + 2.72 for n > 16)
/// and ~1 for WordCount and QMC.

#include "obs/export.h"
#include "core/fit.h"
#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "trace/reference_data.h"
#include "trace/report.h"
#include "workloads/qmc_pi.h"
#include "workloads/sort.h"
#include "workloads/terasort.h"
#include "workloads/wordcount.h"

#include <iostream>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Fig. 6 of the paper: measured external and internal scaling factors for")) {
    return 0;
  }
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 160};
  sweep.repetitions = 1;
  const auto base = sim::default_emr_cluster(1);

  std::vector<stats::Series> ex_curves, in_curves;
  std::vector<std::vector<std::string>> fits;
  for (const auto& spec : {wl::sort_spec(), wl::terasort_spec(),
                           wl::wordcount_spec(), wl::qmc_pi_spec()}) {
    const auto r = runner.run_mr_sweep(spec, base, sweep);
    auto ex = r.factors.ex;
    ex.set_name(spec.name + " EX");
    ex_curves.push_back(std::move(ex));
    auto in = r.factors.in;
    in.set_name(spec.name + " IN");

    // Linear fit of IN(n); for TeraSort use n > 16 as the paper does.
    stats::Series fit_range =
        spec.name == "TeraSort" ? in.slice_x(17, 1e9) : in;
    const auto lf = stats::fit_linear(fit_range);
    fits.push_back({spec.name, trace::fmt(lf.slope, 3),
                    trace::fmt(lf.intercept, 2),
                    trace::fmt(lf.r_squared, 4)});
    in_curves.push_back(std::move(in));
  }

  trace::print_banner(std::cout, "Fig. 6 (left): EX(n) for the four cases");
  trace::print_series_table(std::cout, "n", ex_curves, 2);

  trace::print_banner(std::cout, "Fig. 6 (right): IN(n) for the four cases");
  trace::print_series_table(std::cout, "n", in_curves, 3);

  trace::print_banner(std::cout, "IN(n) linear fits (TeraSort fit on n>16)");
  trace::print_table(std::cout, {"case", "slope", "intercept", "R^2"}, fits);
  std::cout << "paper: Sort 0.36 n - 0.11; TeraSort 0.23 n + 2.72 (n>16); "
               "WordCount, QMC ~ 1\n";
  return 0;
}
