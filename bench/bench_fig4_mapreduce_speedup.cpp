/// Fig. 4 of the paper: measured speedups of the four HiBench/Hadoop micro
/// benchmarks (QMC, WordCount, Sort, TeraSort) on the simulated EMR cluster
/// for the fixed-time workload, side by side with Gustafson's prediction.
/// Expected shapes: QMC ~ Gustafson (It); WordCount near-linear (It/IIt);
/// Sort bounded by ~5 and TeraSort bounded by ~3 (IIIt,1).

#include "obs/export.h"
#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "trace/report.h"
#include "workloads/qmc_pi.h"
#include "workloads/sort.h"
#include "workloads/terasort.h"
#include "workloads/wordcount.h"

#include <iostream>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Fig. 4 of the paper: measured speedups of the four HiBench/Hadoop micro")) {
    return 0;
  }
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8, 16, 32, 64, 96, 128, 160, 200};
  sweep.repetitions = 3;
  const auto base = sim::default_emr_cluster(1);

  for (const auto& spec : {wl::qmc_pi_spec(), wl::wordcount_spec(),
                           wl::sort_spec(), wl::terasort_spec()}) {
    const auto r = runner.run_mr_sweep(spec, base, sweep);
    trace::print_banner(std::cout, "Fig. 4: " + spec.name +
                                       " (fixed-time, eta = " +
                                       trace::fmt(r.factors.eta, 3) + ")");
    auto gustafson = trace::law_baseline(r, WorkloadType::kFixedTime);
    gustafson.set_name("Gustafson");
    auto measured = r.speedup;
    measured.set_name("Measured S(n)");
    trace::print_series_table(std::cout, "n", {measured, gustafson}, 2);
    std::cout << "max measured speedup: " << trace::fmt(r.speedup.max_y(), 2)
              << "\n";
  }
  return 0;
}
