/// Fig. 5 of the paper: TeraSort's internal scaling factor IN(n) is
/// step-wise — slope ~0.15 while the intermediate data fits the ~2 GB
/// reducer memory, bursting by >30% with slope ~0.25 once it overflows at
/// n ~ 15 (disk I/O for the external merge). Prints the measured IN(n),
/// the detected changepoint, and both segment fits.

#include "obs/export.h"
#include "core/fit.h"
#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "trace/reference_data.h"
#include "trace/report.h"
#include "workloads/terasort.h"

#include <iostream>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Fig. 5 of the paper: TeraSort's internal scaling factor IN(n) is")) {
    return 0;
  }
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.repetitions = 1;
  for (double n = 1; n <= 40; ++n) sweep.ns.push_back(n);
  const auto r = runner.run_mr_sweep(wl::terasort_spec(),
                                     sim::default_emr_cluster(1), sweep);

  trace::print_banner(std::cout, "Fig. 5: TeraSort IN(n) step-wise property");
  auto in = r.factors.in;
  in.set_name("measured IN(n)");
  trace::print_series_table(std::cout, "n", {in}, 3);

  const auto seg = detect_in_changepoint(r.factors.in);
  if (!seg) {
    std::cout << "NO changepoint detected (unexpected)\n";
    return 1;
  }
  std::cout << "\nDetected changepoint (reducer-memory overflow):\n"
            << "  knot n ~ " << trace::fmt(seg->knot, 1)
            << "   (paper: ~" << trace::reference::kTeraSortSpillOnsetN
            << ", 2 GB / 128 MB blocks)\n"
            << "  IN'(n) pre-spill : slope " << trace::fmt(seg->left.slope, 3)
            << " intercept " << trace::fmt(seg->left.intercept, 2)
            << "   (paper slope ~"
            << trace::reference::kTeraSortPreSpillSlope << ")\n"
            << "  IN(n) post-spill : slope " << trace::fmt(seg->right.slope, 3)
            << " intercept " << trace::fmt(seg->right.intercept, 2)
            << "   (paper slope ~"
            << trace::reference::kTeraSortPostSpillSlope << ")\n";
  const double burst =
      r.factors.in.interpolate(16.0) / r.factors.in.interpolate(15.0) - 1.0;
  std::cout << "  burst at onset: +" << trace::fmt(100.0 * burst, 1)
            << "%   (paper: \"burst by over 30%\")\n";
  return 0;
}
