/// Table I + Fig. 8 of the paper: the Collaborative Filtering case study.
/// Part 1 reproduces Table I from the simulated CF job (E[max Tp,i(n)] and
/// Wo(n) per n) next to the paper's published values. Part 2 runs IPSO's
/// statistical pipeline on the paper's own numbers (hyperbolic fit of the
/// task times, gamma from the Wo power law) and prints measured/IPSO/Amdahl
/// speedups: the IVs pathology — peak ~21 near n = 60, then decline —
/// versus Amdahl's S(n) = n.

#include "obs/export.h"
#include "core/classify.h"
#include "core/fit.h"
#include "stats/nonlinear.h"
#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "trace/reference_data.h"
#include "trace/report.h"
#include "workloads/collab_filter.h"

#include <iostream>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Table I + Fig. 8 of the paper: the Collaborative Filtering case study.")) {
    return 0;
  }
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));
  // --- Part 1: re-simulated Table I.
  trace::SparkSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;  // one task per node...
  sweep.tasks_per_executor = 1;           // ...of a fixed total workload
  sweep.ms = {1, 10, 30, 60, 90, 120};
  sweep.params.first_wave_overhead = 0.45;
  const auto r = runner.run_spark_sweep(
      [](std::size_t n) { return wl::collab_filter_app(n); },
      sim::default_emr_cluster(1), sweep);

  trace::print_banner(std::cout,
                      "Table I: CF measured workloads (simulated vs paper)");
  std::vector<std::vector<std::string>> rows;
  for (const auto& p : r.points) {
    std::string paper_tp = "-", paper_wo = "-";
    for (const auto& ref : trace::reference::kCollabFilteringTable) {
      if (ref.n == p.m) {
        paper_tp = trace::fmt(ref.e_max_tp, 1);
        paper_wo = trace::fmt(ref.wo, 1);
      }
    }
    // Per-node compute share approximates E[max Tp,i(n)] (deterministic).
    rows.push_back({trace::fmt(p.m, 0),
                    trace::fmt(p.components.wp / p.m, 1), paper_tp,
                    trace::fmt(p.components.wo, 1), paper_wo,
                    trace::fmt(p.speedup, 2)});
  }
  trace::print_table(std::cout,
                     {"n", "E[maxTp] sim", "paper", "Wo sim", "paper", "S(n)"},
                     rows);

  // --- Part 2: IPSO pipeline on the paper's published Table I numbers.
  trace::print_banner(std::cout,
                      "Fig. 8: IPSO fit on the paper's Table I data");
  const auto tp = trace::reference::cf_max_tp_series();
  const auto wo = trace::reference::cf_wo_series();
  const auto tp_fit = stats::fit_hyperbolic(tp);
  std::cout << "E[max Tp,i(n)] ~ " << trace::fmt(tp_fit.a, 1) << "/n + "
            << trace::fmt(tp_fit.c, 1)
            << "  => extrapolated E[Tp,1(1)] = " << trace::fmt(tp_fit(1.0), 1)
            << " (paper: " << trace::reference::kCfTp1 << ")\n";

  stats::Series wp("Wp");
  for (const auto& p : wo) wp.add(p.x, tp_fit(1.0));
  const auto q = q_series_from_workloads(wo, wp).value();
  const auto q_fit = stats::fit_power(q);
  std::cout << "q(n) ~ " << trace::fmt(q_fit.coeff, 6) << " * n^"
            << trace::fmt(q_fit.exponent, 2) << "  => gamma = "
            << trace::fmt(q_fit.exponent, 2) << " (paper: 2)\n";

  AsymptoticParams params;
  params.type = WorkloadType::kFixedSize;
  params.eta = 1.0;
  params.beta = q_fit.coeff;
  params.gamma = q_fit.exponent;
  const auto cls = classify(params);
  std::cout << "classified type: " << to_string(cls.type) << " — peak S ~ "
            << trace::fmt(cls.peak_speedup, 1) << " at n ~ "
            << trace::fmt(cls.peak_n, 0) << " (paper: ~"
            << trace::reference::kCfPeakSpeedup << " at ~"
            << trace::reference::kCfPeakN << ")\n";

  // Speedup table: Eq. 18 on the fitted curves vs simulation vs Amdahl.
  trace::print_banner(std::cout,
                      "Fig. 8: speedups — simulated, IPSO (Eq. 18), Amdahl");
  stats::Series ipso_curve("IPSO (Eq. 18)");
  stats::Series amdahl("Amdahl (S=n)");
  for (double n : {1.0, 10.0, 30.0, 60.0, 90.0, 120.0}) {
    const double wo_n = n > 1 ? tp_fit(1.0) * params.beta *
                                    std::pow(n, params.gamma - 1.0)
                              : 0.0;
    ipso_curve.add(n, tp_fit(1.0) / (tp_fit(n) + wo_n));
    amdahl.add(n, n);
  }
  auto sim_curve = r.speedup;
  sim_curve.set_name("Simulated");
  trace::print_series_table(std::cout, "n", {sim_curve, ipso_curve, amdahl},
                            2);
  return 0;
}
