/// Fig. 7 of the paper: IPSO speedups predicted from scaling factors fitted
/// at small problem sizes (n <= 16; TeraSort on 16..64), compared against
/// the measured speedups and Gustafson's law out to n = 200. IPSO should
/// track the measurement for all four cases; Gustafson should wildly
/// overpredict Sort and TeraSort.

#include "obs/export.h"
#include "core/predict.h"
#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "trace/report.h"
#include "workloads/qmc_pi.h"
#include "workloads/sort.h"
#include "workloads/terasort.h"
#include "workloads/wordcount.h"

#include <iostream>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Fig. 7 of the paper: IPSO speedups predicted from scaling factors fitted")) {
    return 0;
  }
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));
  const auto base = sim::default_emr_cluster(1);
  const std::vector<double> eval_ns{1,  2,  4,  8,  16, 32,
                                    64, 96, 128, 160, 200};

  for (const auto& spec : {wl::qmc_pi_spec(), wl::wordcount_spec(),
                           wl::sort_spec(), wl::terasort_spec()}) {
    // Fit window per the paper.
    trace::MrSweepConfig fit_sweep;
    fit_sweep.type = WorkloadType::kFixedTime;
    fit_sweep.repetitions = 1;
    fit_sweep.ns = spec.name == "TeraSort"
                       ? std::vector<double>{16, 24, 32, 40, 48, 56, 64}
                       : std::vector<double>{1, 2, 4, 6, 8, 10, 12, 14, 16};
    const auto small = runner.run_mr_sweep(spec, base, fit_sweep);
    const auto fits =
        fit_factors(WorkloadType::kFixedTime, small.factors).value();
    const auto predictor = SpeedupPredictor::from_fits(fits);

    // Measured curve over the full range.
    trace::MrSweepConfig eval_sweep;
    eval_sweep.type = WorkloadType::kFixedTime;
    eval_sweep.repetitions = 3;
    eval_sweep.ns = eval_ns;
    const auto measured = runner.run_mr_sweep(spec, base, eval_sweep);

    trace::print_banner(std::cout,
                        "Fig. 7: " + spec.name + " — IPSO vs measured vs "
                        "Gustafson (fit window " +
                        (spec.name == "TeraSort" ? "n=16..64" : "n<=16") +
                        ")");
    auto m = measured.speedup;
    m.set_name("Measured");
    auto ipso_curve = predictor.curve(eval_ns, "IPSO");
    auto gustafson = trace::law_baseline(measured, WorkloadType::kFixedTime);
    trace::print_series_table(std::cout, "n", {m, ipso_curve, gustafson}, 2);

    std::cout << "fitted factors: eta=" << trace::fmt(fits.params.eta, 3)
              << " alpha=" << trace::fmt(fits.params.alpha, 3)
              << " delta=" << trace::fmt(fits.params.delta, 3)
              << " beta=" << trace::fmt(fits.params.beta, 5)
              << " gamma=" << trace::fmt(fits.params.gamma, 3)
              << (fits.in_has_changepoint ? "  [IN changepoint detected]"
                                          : "")
              << "\n";
  }
  return 0;
}
