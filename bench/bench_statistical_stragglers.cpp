/// The statistical IPSO model (Eq. 8) under task-time dispersion — the
/// paper's Section IV argument made quantitative:
///  * with FINITE task-time tails (uniform, capped Pareto), E[max Tp,i(n)]
///    is bounded, so the statistical curve keeps the deterministic curve's
///    qualitative type (here: Gustafson-like It stays linear);
///  * with an INFINITE tail (exponential), E[max] ~ ln n and even a
///    perfectly parallel fixed-time workload degrades to S ~ n/ln n —
///    what the paper's finite-tail caveat rules out.

#include "core/statistical.h"
#include "trace/cli_opts.h"
#include "trace/report.h"

#include <iostream>
#include <vector>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "The statistical IPSO model (Eq. 8) under task-time dispersion — the")) {
    return 0;
  }
  const ScalingFactors gustafson{identity_factor(), constant_factor(1.0),
                                 constant_factor(0.0)};
  const double eta = 1.0;
  std::vector<double> ns;
  for (double n = 1; n <= 4096; n *= 2) ns.push_back(n);

  DeterministicTime det;
  UniformTime uniform(0.5);
  CappedParetoTime pareto(2.5, 4.0);
  ExponentialTime exponential;

  std::vector<stats::Series> curves{
      speedup_statistical_curve(gustafson, eta, det, ns, "deterministic"),
      speedup_statistical_curve(gustafson, eta, uniform, ns,
                                "uniform +-50%"),
      speedup_statistical_curve(gustafson, eta, pareto, ns,
                                "capped Pareto (4x)"),
      speedup_statistical_curve(gustafson, eta, exponential, ns,
                                "exponential (unbounded tail)"),
  };
  trace::print_banner(std::cout,
                      "Eq. 8: statistical speedup of a perfectly parallel "
                      "fixed-time workload under task-time dispersion");
  trace::print_series_table(std::cout, "n", curves, 1);

  trace::print_banner(std::cout, "Parallel efficiency S(n)/n at large n");
  std::vector<std::vector<std::string>> rows;
  const TaskTimeDistribution* dists[] = {&det, &uniform, &pareto,
                                         &exponential};
  for (const auto* d : dists) {
    const double e256 =
        speedup_statistical(gustafson, eta, *d, 256.0) / 256.0;
    const double e4096 =
        speedup_statistical(gustafson, eta, *d, 4096.0) / 4096.0;
    rows.push_back({d->name(), trace::fmt(e256, 3), trace::fmt(e4096, 3),
                    d->has_bounded_max() ? "finite -> stays linear"
                                         : "infinite -> sublinear"});
  }
  trace::print_table(std::cout,
                     {"task-time tail", "eff @256", "eff @4096", "verdict"},
                     rows);
  std::cout << "finite-tail efficiencies stabilize (the deterministic model "
               "is qualitatively exact, paper Section IV); the exponential "
               "tail keeps decaying like 1/ln n\n";
  return 0;
}
