/// Eqs. 12-13 of the paper: the classical laws are special cases of IPSO.
/// Verifies numerically over a wide (eta, n) grid that Eq. 10 with
/// IN(n) = 1, q(n) = 0 and EX(n) in {1, n, g(n)} reproduces Amdahl,
/// Gustafson and Sun-Ni exactly, and that g(n) ~ n makes Sun-Ni coincide
/// with Gustafson for data-intensive (memory-bounded) workloads.

#include "core/laws.h"
#include "core/model.h"
#include "trace/cli_opts.h"
#include "trace/report.h"

#include <cmath>
#include <iostream>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Eqs. 12-13 of the paper: the classical laws are special cases of IPSO.")) {
    return 0;
  }
  trace::print_banner(std::cout,
                      "Eq. 12-13: classical laws as IPSO special cases");
  double worst_amdahl = 0.0, worst_gustafson = 0.0, worst_sunni = 0.0,
         worst_coincide = 0.0;
  const ScalingFactors amdahl_f{constant_factor(1.0), constant_factor(1.0),
                                constant_factor(0.0)};
  const ScalingFactors gustafson_f{identity_factor(), constant_factor(1.0),
                                   constant_factor(0.0)};
  const auto g = power_factor(1.0, 0.97);  // near-linear memory bound
  const ScalingFactors sunni_f{g, constant_factor(1.0), constant_factor(0.0)};

  int grid_points = 0;
  for (double eta = 0.05; eta <= 1.0; eta += 0.05) {
    for (double n = 1; n <= 4096; n *= 2) {
      ++grid_points;
      worst_amdahl =
          std::max(worst_amdahl,
                   std::abs(speedup_deterministic(amdahl_f, eta, n) -
                            laws::amdahl(eta, n)));
      worst_gustafson =
          std::max(worst_gustafson,
                   std::abs(speedup_deterministic(gustafson_f, eta, n) -
                            laws::gustafson(eta, n)));
      worst_sunni = std::max(worst_sunni,
                             std::abs(speedup_deterministic(sunni_f, eta, n) -
                                      laws::sun_ni(eta, n, g)));
      worst_coincide =
          std::max(worst_coincide,
                   std::abs(laws::sun_ni(eta, n) - laws::gustafson(eta, n)));
    }
  }
  trace::print_table(
      std::cout, {"degeneration", "max |error| over grid"},
      {{"IPSO(EX=1,IN=1,q=0)  = Amdahl", trace::fmt(worst_amdahl, 15)},
       {"IPSO(EX=n,IN=1,q=0)  = Gustafson", trace::fmt(worst_gustafson, 15)},
       {"IPSO(EX=g,IN=1,q=0)  = Sun-Ni", trace::fmt(worst_sunni, 15)},
       {"Sun-Ni(g=n)          = Gustafson", trace::fmt(worst_coincide, 15)}});
  std::cout << "grid: " << grid_points << " (eta, n) points\n";
  return worst_amdahl + worst_gustafson + worst_sunni > 1e-9 ? 1 : 0;
}
