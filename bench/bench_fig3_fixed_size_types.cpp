/// Fig. 3 of the paper: the four distinct IPSO scaling behaviours for the
/// fixed-size workload type — Is (linear), IIs (sublinear unbounded),
/// IIIs,1/IIIs,2 (Amdahl-like bounded), IVs (pathological peaked).

#include "core/classify.h"
#include "core/laws.h"
#include "core/model.h"
#include "trace/cli_opts.h"
#include "trace/report.h"

#include <cmath>
#include <iostream>

using namespace ipso;

namespace {

AsymptoticParams fs(double eta, double alpha, double beta, double gamma) {
  AsymptoticParams p;
  p.type = WorkloadType::kFixedSize;
  p.eta = eta;
  p.alpha = alpha;
  p.delta = 0.0;
  p.beta = beta;
  p.gamma = gamma;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Fig. 3 of the paper: the four distinct IPSO scaling behaviours for the")) {
    return 0;
  }
  trace::print_banner(
      std::cout, "Fig. 3: IPSO scaling behaviours, fixed-size (EX(n) = 1)");

  struct Case {
    const char* label;
    AsymptoticParams p;
  };
  const Case cases[] = {
      {"Is   (eta=1, gamma=0)", fs(1.0, 1.0, 0.0, 0.0)},
      {"IIs  (eta=1, gamma=0.5)", fs(1.0, 1.0, 0.2, 0.5)},
      {"IIIs,1 (Amdahl: eta=0.9)", fs(0.9, 1.0, 0.0, 0.0)},
      {"IIIs,2 (gamma=1)", fs(0.9, 1.0, 0.5, 1.0)},
      {"IVs  (gamma=2, CF-like)", fs(1.0, 1.0, 3.74e-4, 2.0)},
  };

  std::vector<stats::Series> curves;
  for (const auto& c : cases) {
    stats::Series s(c.label);
    for (double n = 1; n <= 200; n += (n < 16 ? 1 : 8)) {
      s.add(n, speedup_asymptotic(c.p, n));
    }
    curves.push_back(std::move(s));
  }
  // Amdahl reference curve for the IIIs,1 comparison.
  stats::Series amdahl("Amdahl eta=0.9");
  for (double n = 1; n <= 200; n += (n < 16 ? 1 : 8)) {
    amdahl.add(n, laws::amdahl(0.9, n));
  }
  curves.push_back(std::move(amdahl));
  trace::print_series_table(std::cout, "n", curves, 2);

  trace::print_banner(std::cout, "Classifier verdicts (Section IV taxonomy)");
  std::vector<std::vector<std::string>> rows;
  for (const auto& c : cases) {
    const Classification cls = classify(c.p);
    rows.push_back(
        {c.label, std::string(to_string(cls.type)),
         std::isinf(cls.bound) ? "unbounded" : trace::fmt(cls.bound, 2),
         shape_of(cls.type) == GrowthShape::kPeaked
             ? trace::fmt(cls.peak_n, 1)
             : "-"});
  }
  trace::print_table(std::cout, {"case", "type", "bound", "peak n"}, rows);
  return 0;
}
