/// Fault scaling: how failure injection bends a near-perfectly scaling
/// workload toward the paper's Type IV pathology, and how speculative
/// execution pulls it back.
///
/// The QMC fixed-time workload (eta ~ 0.999) is the cleanest canvas: with
/// no faults its q(n) is the small dispatch/shuffle overhead. Injecting a
/// per-attempt failure probability p adds retry waste ~ p·n to Wo, and —
/// once n is large enough that some task exhausts its retry budget — whole
/// map-phase rollbacks, a superlinear overhead. Fitting q(n) = beta·n^gamma
/// per failure level shows gamma increasing with p (the curve migrates
/// toward Type IV); enabling speculation rescues budget-exhausted tasks
/// before the rollback and caps retry-chain tails, pulling beta·n^gamma
/// back down at the largest n.
///
/// Flags: --threads T, --max-retries K (retry budget for every level),
/// --speculate [F] (change the speculative variant's slowest-fraction).
/// Output is bit-identical for a fixed seed at any thread count.

#include "obs/export.h"
#include "core/classify.h"
#include "core/fit.h"
#include "sim/straggler.h"
#include "trace/experiment.h"
#include "trace/report.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "workloads/qmc_pi.h"

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

using namespace ipso;

namespace {

struct Level {
  std::string label;
  sim::FaultModelParams faults;
};

sim::ClusterConfig fault_cluster() {
  auto cfg = sim::default_emr_cluster(1);
  // Mild straggler dispersion so speculative backups have both failure
  // chains and slow originals to race against.
  cfg.straggler.enabled = true;
  cfg.straggler.cap = 2.0;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Fault scaling: how failure injection bends a near-perfectly scaling")) {
    return 0;
  }
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));
  // --max-retries / --speculate tune the sweep's baseline knobs; the
  // failure probability itself is the swept variable. A tight default
  // retry budget puts the rollback ramp — P[some task exhausts] =
  // 1 - (1 - p^(R+1))^n — inside the measured n range.
  sim::FaultModelParams defaults;
  defaults.max_task_retries = 1;
  const sim::FaultModelParams base_faults =
      trace::fault_params_from_args(argc, argv, defaults);

  // Levels stay below p^2 * n_max ~ 1 so every rollback ramp is still in
  // its unsaturated (superlinear) regime over the measured n range.
  std::vector<Level> levels;
  for (double p : {0.0, 0.01, 0.02, 0.05}) {
    sim::FaultModelParams f = base_faults;
    f.task_failure_prob = p;
    f.speculation = false;
    levels.push_back({"p=" + trace::fmt(p, 2), f});
  }
  {
    sim::FaultModelParams f = base_faults;
    f.task_failure_prob = 0.05;
    f.speculation = true;
    levels.push_back({"p=0.05+spec", f});
  }

  const auto base = fault_cluster();
  const std::vector<double> ns{1, 2, 4, 8, 16, 32, 64, 96, 128};
  const double n_max = ns.back();

  trace::print_banner(
      std::cout, "Fault scaling: QMC fixed-time, failure-probability sweep");

  std::vector<stats::Series> curves;
  std::vector<stats::Series> q_curves;
  std::vector<std::vector<std::string>> fit_rows;
  double q_at_nmax_top = -1.0, q_at_nmax_spec = -1.0;
  double prev_gamma = -1.0;
  bool gamma_monotone = true;

  for (const Level& level : levels) {
    trace::MrSweepConfig sweep;
    sweep.type = WorkloadType::kFixedTime;
    sweep.ns = ns;
    sweep.repetitions = 2048;
    sweep.seed = 29;
    sweep.faults = level.faults;
    const auto r = runner.run_mr_sweep(wl::qmc_pi_spec(), base, sweep);

    auto s = r.speedup;
    s.set_name(level.label);
    curves.push_back(std::move(s));
    auto q = r.factors.q;
    q.set_name(level.label);
    q_curves.push_back(std::move(q));

    const auto fits = fit_factors(WorkloadType::kFixedTime, r.factors);
    if (!fits) {
      std::cout << level.label << ": factor fit failed ("
                << to_string(fits.error()) << ")\n";
      return 1;
    }
    const double beta = fits->params.beta;
    const double gamma = fits->params.gamma;
    const double q_nmax = beta * std::pow(n_max, gamma);
    const auto verdict = classify(fits->params);

    sim::FaultStats totals;
    for (const auto& point : r.points) totals.merge(point.faults);

    fit_rows.push_back({level.label, trace::fmt(beta, 5),
                        trace::fmt(gamma, 3), trace::fmt(q_nmax, 2),
                        std::string(to_string(verdict.type)),
                        std::to_string(totals.failed_attempts),
                        std::to_string(totals.rollbacks),
                        std::to_string(totals.backup_wins)});

    if (!level.faults.speculation) {
      if (prev_gamma >= 0.0 && gamma <= prev_gamma) gamma_monotone = false;
      prev_gamma = gamma;
      if (level.faults.task_failure_prob == 0.05) q_at_nmax_top = q_nmax;
    } else {
      q_at_nmax_spec = q_nmax;
    }
  }

  trace::print_series_table(std::cout, "n", curves, 2);
  std::cout << "\nmeasured q(n) per failure level:\n";
  trace::print_series_table(std::cout, "n", q_curves, 3);
  std::cout << "\nfitted q(n) = beta*n^gamma per failure level:\n";
  trace::print_table(std::cout,
                     {"level", "beta", "gamma", "q(128)", "type", "fails",
                      "rollbacks", "backup wins"},
                     fit_rows);

  std::cout << "\ngamma strictly increasing with failure probability: "
            << (gamma_monotone ? "yes" : "NO") << "\n";
  std::cout << "speculation pulls q(128) back: "
            << trace::fmt(q_at_nmax_top, 2) << " -> "
            << trace::fmt(q_at_nmax_spec, 2)
            << (q_at_nmax_spec < q_at_nmax_top ? " (reduced)"
                                                : " (NOT reduced)")
            << "\n";
  std::cout << "expected: failures migrate the curve toward Type IV "
               "(superlinear q), speculation pulls it back (paper Sec. IV)\n";
  return 0;
}
