/// Fig. 2 of the paper: the four distinct IPSO scaling behaviours for the
/// fixed-time workload type — It (Gustafson-like linear), IIt (sublinear
/// unbounded), IIIt,1/IIIt,2 (pathological bounded), IVt (pathological
/// peaked). Prints one representative curve per type plus the classifier's
/// verdict and asymptotic bound for each.

#include "core/classify.h"
#include "core/model.h"
#include "trace/cli_opts.h"
#include "trace/report.h"

#include <cmath>
#include <iostream>

using namespace ipso;

namespace {

AsymptoticParams ft(double eta, double alpha, double delta, double beta,
                    double gamma) {
  AsymptoticParams p;
  p.type = WorkloadType::kFixedTime;
  p.eta = eta;
  p.alpha = alpha;
  p.delta = delta;
  p.beta = beta;
  p.gamma = gamma;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Fig. 2 of the paper: the four distinct IPSO scaling behaviours for the")) {
    return 0;
  }
  trace::print_banner(
      std::cout, "Fig. 2: IPSO scaling behaviours, fixed-time (EX(n) = n)");

  struct Case {
    const char* label;
    AsymptoticParams p;
  };
  const Case cases[] = {
      {"It   (gamma=0, delta=1)", ft(0.9, 1.0, 1.0, 0.0, 0.0)},
      {"IIt  (gamma=0.5)", ft(0.9, 1.0, 1.0, 0.1, 0.5)},
      {"IIIt,1 (delta=0, gamma<1)", ft(0.9, 4.3, 0.0, 0.0, 0.0)},
      {"IIIt,2 (gamma=1)", ft(0.9, 1.0, 1.0, 0.05, 1.0)},
      {"IVt  (gamma=2)", ft(0.9, 1.0, 1.0, 0.001, 2.0)},
  };

  std::vector<stats::Series> curves;
  for (const auto& c : cases) {
    stats::Series s(c.label);
    for (double n = 1; n <= 200; n += (n < 16 ? 1 : 8)) {
      s.add(n, speedup_asymptotic(c.p, n));
    }
    curves.push_back(std::move(s));
  }
  trace::print_series_table(std::cout, "n", curves, 2);

  trace::print_banner(std::cout, "Classifier verdicts (Section IV taxonomy)");
  std::vector<std::vector<std::string>> rows;
  for (const auto& c : cases) {
    const Classification cls = classify(c.p);
    rows.push_back(
        {c.label, std::string(to_string(cls.type)),
         std::isinf(cls.bound) ? "unbounded" : trace::fmt(cls.bound, 2),
         cls.peak_n > 0 ? trace::fmt(cls.peak_n, 1) : "-"});
  }
  trace::print_table(std::cout, {"case", "type", "bound", "peak n"}, rows);
  return 0;
}
