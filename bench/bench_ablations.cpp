/// Ablations over the design choices DESIGN.md calls out:
///  (i)   statistical vs deterministic model under straggler injection —
///        the paper argues both agree qualitatively since task tails are
///        finite (Section IV);
///  (ii)  scheduler-contention exponent sweep — where the IVt pathology
///        switches on (gamma crosses 1);
///  (iii) memory spill on/off for TeraSort — the sole source of the Fig. 5
///        step;
///  (iv)  measurement quantization — the paper's 1 s clock makes small
///        fixed-size map phases unmeasurable (Section V).

#include "obs/export.h"
#include "core/classify.h"
#include "core/fit.h"
#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "trace/report.h"
#include "workloads/bayes.h"
#include "workloads/qmc_pi.h"
#include "workloads/sort.h"
#include "workloads/terasort.h"

#include <iostream>

using namespace ipso;

namespace {

void ablation_stragglers(trace::ExperimentRunner& runner) {
  trace::print_banner(std::cout,
                      "Ablation (i): stragglers — statistical vs "
                      "deterministic speedup");
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 4, 16, 64, 160};
  sweep.repetitions = 5;

  auto clean = sim::default_emr_cluster(1);
  auto noisy = clean;
  noisy.straggler.enabled = true;
  noisy.straggler.tail_shape = 3.0;
  noisy.straggler.cap = 3.0;

  const auto det =
      runner.run_mr_sweep(wl::terasort_spec(), clean, sweep);
  const auto stat =
      runner.run_mr_sweep(wl::terasort_spec(), noisy, sweep);
  auto a = det.speedup;
  a.set_name("deterministic");
  auto b = stat.speedup;
  b.set_name("with stragglers (cap 3x)");
  trace::print_series_table(std::cout, "n", {a, b}, 2);
  std::cout << "both saturate at the same bound: stragglers change the "
               "constant, not the scaling type (paper Section IV)\n";
}

void ablation_scheduler(trace::ExperimentRunner& runner) {
  trace::print_banner(std::cout,
                      "Ablation (ii): scheduler contention exponent vs "
                      "scaling type");
  std::vector<std::vector<std::string>> rows;
  for (double exponent : {0.0, 0.5, 1.0, 1.5}) {
    auto cfg = sim::default_emr_cluster(1);
    cfg.scheduler.contention_coeff = 2e-3;
    cfg.scheduler.contention_exponent = exponent;
    trace::MrSweepConfig sweep;
    sweep.type = WorkloadType::kFixedTime;
    sweep.ns = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
    sweep.repetitions = 1;
    const auto r = runner.run_mr_sweep(wl::qmc_pi_spec(), cfg, sweep);
    const auto fits =
        fit_factors(WorkloadType::kFixedTime, r.factors).value();
    const auto cls = classify(fits.params);
    // Dispatch is serial per task: total ~ n^(1+exponent), so q ~ n^(1+e).
    rows.push_back({trace::fmt(exponent, 1),
                    trace::fmt(fits.params.gamma, 2),
                    std::string(to_string(cls.type)),
                    trace::fmt(r.speedup.max_y(), 1)});
  }
  trace::print_table(std::cout,
                     {"contention exp", "fitted gamma", "type", "max S"},
                     rows);
  std::cout << "gamma tracks 1 + exponent; the type flips to IVt once "
               "gamma > 1\n";
}

void ablation_spill(trace::ExperimentRunner& runner) {
  trace::print_banner(std::cout,
                      "Ablation (iii): TeraSort with and without the "
                      "reducer-memory spill");
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  for (double n = 1; n <= 40; ++n) sweep.ns.push_back(n);
  sweep.repetitions = 1;
  const auto base = sim::default_emr_cluster(1);

  auto with = wl::terasort_spec();
  auto without = wl::terasort_spec();
  without.spill_enabled = false;
  const auto r_with = runner.run_mr_sweep(with, base, sweep);
  const auto r_without = runner.run_mr_sweep(without, base, sweep);

  const auto seg_with = detect_in_changepoint(r_with.factors.in);
  const auto seg_without = detect_in_changepoint(r_without.factors.in);
  std::cout << "spill ON : changepoint "
            << (seg_with ? "at n ~ " + trace::fmt(seg_with->knot, 1)
                         : std::string("none"))
            << "\n";
  std::cout << "spill OFF: changepoint "
            << (seg_without ? "at n ~ " + trace::fmt(seg_without->knot, 1)
                            : std::string("none"))
            << "  (straight line: the step is entirely the spill)\n";
}

void ablation_quantization() {
  trace::print_banner(std::cout,
                      "Ablation (iv): 1 s measurement precision vs exact "
                      "clocks (fixed-size MapReduce)");
  // Fixed-size: per-task shards shrink as n grows; with the paper's 1 s
  // clock the map phase becomes unmeasurable past a modest n.
  auto base = sim::default_emr_cluster(1);
  std::vector<std::vector<std::string>> rows;
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    auto cfg = base;
    cfg.workers = static_cast<std::size_t>(n);
    mr::MrEngine engine(cfg);
    mr::MrJobConfig job;
    job.num_tasks = cfg.workers;
    job.shard_bytes = 32e6 / n;  // small fixed-size working set
    job.measurement_precision = 1.0;
    const auto exact_job = [&] {
      auto j = job;
      j.measurement_precision = 0.0;
      return j;
    }();
    const auto q = engine.run_parallel(wl::qmc_pi_spec(), job);
    const auto e = engine.run_parallel(wl::qmc_pi_spec(), exact_job);
    rows.push_back({trace::fmt(n, 0), trace::fmt(e.phases.map, 2),
                    trace::fmt(q.phases.map, 0),
                    q.phases.map == 0.0 ? "unmeasurable" : "ok"});
  }
  trace::print_table(std::cout,
                     {"n", "map (exact s)", "map (1 s clock)", "verdict"},
                     rows);
  std::cout << "matches the paper's remark that fixed-size map phases drop "
               "to sub-seconds past n = 8 and cannot be measured\n";
}

void ablation_incast(trace::ExperimentRunner& runner) {
  trace::print_banner(std::cout,
                      "Ablation (v): TCP-incast at the single reducer "
                      "(paper Section II cites incast as a speedup killer)");
  // Incast penalty makes the shuffle excess grow ~n^2 (per-sender penalty
  // on a volume that itself grows with n), i.e. gamma ~ 2: Sort's IIIt,1
  // turns into the pathological IVt.
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8, 16, 32, 64, 128, 192, 256, 320};
  sweep.repetitions = 1;

  auto clean = sim::default_emr_cluster(1);
  auto incast = clean;
  incast.network.incast_penalty_per_sender = 0.004;  // +0.4% per extra flow

  const auto r_clean = runner.run_mr_sweep(wl::sort_spec(), clean, sweep);
  const auto r_incast = runner.run_mr_sweep(wl::sort_spec(), incast, sweep);
  auto a = r_clean.speedup;
  a.set_name("no incast");
  auto b = r_incast.speedup;
  b.set_name("with incast");
  trace::print_series_table(std::cout, "n", {a, b}, 2);

  const auto fits =
      fit_factors(WorkloadType::kFixedTime, r_incast.factors).value();
  const auto cls = classify(fits.params);
  std::cout << "with incast: fitted gamma = "
            << trace::fmt(fits.params.gamma, 2) << ", type "
            << to_string(cls.type)
            << (stats::is_peaked(r_incast.speedup)
                    ? " (curve peaks and falls)"
                    : "")
            << "\n";
}

void ablation_failures(trace::ExperimentRunner& runner) {
  trace::print_banner(std::cout,
                      "Ablation (vi): task-failure injection in Spark "
                      "(paper: RAM pressure raises failure rates and forces "
                      "stage rollback)");
  trace::SparkSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.tasks_per_executor = 8;  // the over-committed, spilling regime
  sweep.ms = {1, 8, 16, 32, 64};

  auto faulty = sweep;
  faulty.params.faults.task_failure_prob = 0.05;
  faulty.params.faults.spill_failure_multiplier = 6.0;

  const auto base = sim::default_emr_cluster(1);
  const auto app = [](std::size_t) { return wl::bayes_app(); };
  const auto r_clean = runner.run_spark_sweep(app, base, sweep);
  const auto r_faulty = runner.run_spark_sweep(app, base, faulty);
  auto a = r_clean.speedup;
  a.set_name("no failures");
  auto b = r_faulty.speedup;
  b.set_name("5% failures (6x when spilled)");
  trace::print_series_table(std::cout, "m", {a, b}, 2);
  std::cout << "retried work counts as scale-out-induced Wo: failures push "
               "the already-spilling N/m=8 configuration further below "
               "N/m=4\n";
}

void ablation_contention(trace::ExperimentRunner& runner) {
  trace::print_banner(std::cout,
                      "Ablation (vii): shared-resource contention "
                      "(paper's citation [9]: contention induces an "
                      "effective serial workload)");
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8, 16, 32, 64, 96, 128, 160, 200};
  sweep.repetitions = 1;

  std::vector<stats::Series> curves;
  for (double phi : {0.0, 0.1, 0.3}) {
    auto cfg = sim::default_emr_cluster(1);
    cfg.contention_phi = phi;
    cfg.contention_capacity = 64.0;
    auto r = runner.run_mr_sweep(wl::qmc_pi_spec(), cfg, sweep);
    auto s = r.speedup;
    s.set_name("phi=" + trace::fmt(phi, 1));
    curves.push_back(std::move(s));
  }
  trace::print_series_table(std::cout, "n", curves, 2);
  std::cout << "phi = 0: QMC stays Gustafson-like (It). With contention the "
               "same perfectly parallel workload saturates as the shared "
               "resource approaches capacity (n -> capacity/phi) — an "
               "effective serial workload appears although the program has "
               "none\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Ablations over the design choices DESIGN.md calls out:")) {
    return 0;
  }
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));
  ablation_stragglers(runner);
  ablation_scheduler(runner);
  ablation_spill(runner);
  ablation_quantization();
  ablation_incast(runner);
  ablation_failures(runner);
  ablation_contention(runner);
  return 0;
}
