/// Scale-out vs scale-up under IPSO — the debate the paper's Section II
/// says "the lack of a sound scaling model is largely responsible for"
/// ([15], Nutch/Lucene). At equal resource multiple k, scale-up always
/// yields S = k; scale-out yields the IPSO curve. The competitive limit
/// (largest k where scale-out still delivers >= 50% of scale-up) is a
/// per-workload number IPSO computes directly.

#include "core/tradeoff.h"
#include "trace/cli_opts.h"
#include "trace/report.h"

#include <iostream>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Scale-out vs scale-up under IPSO — the debate the paper's Section II")) {
    return 0;
  }
  struct Case {
    const char* name;
    ScalingFactors f;
    double eta;
  };
  const Case cases[] = {
      {"QMC-like (It: eta~1, clean)",
       {identity_factor(), constant_factor(1.0), constant_factor(0.0)},
       1.0},
      {"WordCount-like (It: eta=0.91)",
       {identity_factor(), constant_factor(1.0), constant_factor(0.0)},
       0.91},
      {"Sort-like (IIIt,1: in-proportion)",
       {identity_factor(), linear_factor(0.36, 0.64), constant_factor(0.0)},
       0.59},
      {"TeraSort-like (IIIt,1)",
       {identity_factor(), linear_factor(0.25, 0.75), constant_factor(0.0)},
       1.0 / 3.0},
      {"CF-like (IVs: quadratic broadcast)",
       {constant_factor(1.0), constant_factor(1.0), make_q(3.74e-4, 2.0)},
       1.0},
  };

  const std::vector<double> ks{1, 2, 4, 8, 16, 32, 64, 128, 256};
  for (const auto& c : cases) {
    trace::print_banner(std::cout, std::string("Scale-out vs scale-up: ") +
                                       c.name);
    const auto rows = compare_scaling(c.f, c.eta, ks);
    std::vector<std::vector<std::string>> table;
    for (const auto& r : rows) {
      table.push_back({trace::fmt(r.k, 0), trace::fmt(r.scale_out, 2),
                       trace::fmt(r.scale_up, 0),
                       trace::fmt(r.scale_out / r.scale_up, 3)});
    }
    trace::print_table(std::cout,
                       {"k", "scale-out S(k)", "scale-up S", "ratio"},
                       table);
    const double limit = scale_out_competitive_limit(c.f, c.eta, 0.5, 4096);
    std::cout << "scale-out competitive (>=50% of scale-up) up to k ~ "
              << trace::fmt(limit, 1)
              << (limit >= 4096 ? " (entire range: they tie)" : "") << "\n";
  }
  std::cout << "\nconclusion: the debate resolves per workload type — It "
               "workloads tie, IIIt workloads favor scale-up early, IVs "
               "workloads punish scale-out outright (cheap nodes still win "
               "on price, which is the cost axis of `provisioning`)\n";
  return 0;
}
