/// One-command reproduction scoreboard: re-derives every headline claim of
/// the paper from the simulated pipeline and prints PASS/FAIL per claim
/// (the README table, machine-checked). Exit code 0 iff everything passes.

#include "obs/export.h"
#include "core/classify.h"
#include "core/diagnose.h"
#include "core/laws.h"
#include "core/predict.h"
#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "trace/reference_data.h"
#include "trace/report.h"
#include "workloads/bayes.h"
#include "workloads/collab_filter.h"
#include "workloads/nweight.h"
#include "workloads/qmc_pi.h"
#include "workloads/random_forest.h"
#include "workloads/sort.h"
#include "workloads/svm.h"
#include "workloads/terasort.h"
#include "workloads/wordcount.h"

#include <cmath>
#include <iostream>

using namespace ipso;

namespace {

struct Scoreboard {
  std::vector<std::vector<std::string>> rows;
  bool all_pass = true;

  void check(const std::string& claim, bool pass,
             const std::string& detail) {
    rows.push_back({claim, pass ? "PASS" : "FAIL", detail});
    all_pass = all_pass && pass;
  }
};

}  // namespace

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "One-command reproduction scoreboard: re-derives every headline claim of")) {
    return 0;
  }
  Scoreboard board;
  const auto base = sim::default_emr_cluster(1);

  // One pool serves every sweep below; results are bit-identical to serial
  // execution at any thread count (--threads / IPSO_THREADS override).
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));

  // --- MapReduce fixed-time sweeps (Figs. 4-6).
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8, 16, 32, 64, 96, 128, 160};
  sweep.repetitions = 1;

  {
    const auto r = runner.run_mr_sweep(wl::qmc_pi_spec(), base, sweep);
    const double gust = laws::gustafson(r.factors.eta, 160.0);
    const double rel = std::abs(r.speedup[9].y - gust) / gust;
    board.check("QMC follows Gustafson (It)", rel < 0.15,
                "S(160)=" + trace::fmt(r.speedup[9].y, 1) + " vs Gustafson " +
                    trace::fmt(gust, 1));
  }
  {
    const auto r = runner.run_mr_sweep(wl::sort_spec(), base, sweep);
    const auto fit = stats::fit_linear(r.factors.in);
    board.check("Sort IN(n) slope ~0.36 (paper Fig. 6)",
                std::abs(fit.slope - 0.36) < 0.02,
                "slope=" + trace::fmt(fit.slope, 3));
    board.check("Sort speedup bounded ~5 (IIIt,1)",
                r.speedup.max_y() > 4.0 && r.speedup.max_y() < 5.5,
                "max S=" + trace::fmt(r.speedup.max_y(), 2));
  }
  {
    trace::MrSweepConfig fine = sweep;
    fine.ns.clear();
    for (double n = 1; n <= 40; ++n) fine.ns.push_back(n);
    const auto r = runner.run_mr_sweep(wl::terasort_spec(), base, fine);
    const auto seg = detect_in_changepoint(r.factors.in);
    board.check("TeraSort IN(n) changepoint at n~15 (Fig. 5)",
                seg && std::abs(seg->knot - 15.0) <= 3.0,
                seg ? "knot=" + trace::fmt(seg->knot, 1) : "none");
    board.check(
        "TeraSort IN slopes 0.15 -> 0.25 (Fig. 5)",
        seg && std::abs(seg->left.slope - 0.15) < 0.03 &&
            std::abs(seg->right.slope - 0.25) < 0.03,
        seg ? trace::fmt(seg->left.slope, 3) + " -> " +
                  trace::fmt(seg->right.slope, 3)
            : "-");
    const double burst =
        r.factors.in.interpolate(16.0) / r.factors.in.interpolate(15.0);
    board.check("TeraSort IN bursts >30% at overflow", burst > 1.3,
                "+" + trace::fmt(100 * (burst - 1), 0) + "%");
  }
  {
    const auto r = runner.run_mr_sweep(wl::terasort_spec(), base, sweep);
    board.check("TeraSort speedup bounded ~3 (Fig. 4d)",
                r.speedup.max_y() > 2.4 && r.speedup.max_y() < 3.3,
                "max S=" + trace::fmt(r.speedup.max_y(), 2));
  }

  // --- Fig. 7: prediction from small n.
  {
    trace::MrSweepConfig fit_sweep = sweep;
    fit_sweep.ns = {1, 2, 4, 6, 8, 10, 12, 14, 16};
    const auto small = runner.run_mr_sweep(wl::sort_spec(), base, fit_sweep);
    const auto fits =
        fit_factors(WorkloadType::kFixedTime, small.factors).value();
    const auto pred = SpeedupPredictor::from_fits(fits);
    trace::MrSweepConfig big = sweep;
    big.ns = {160};
    const auto truth = runner.run_mr_sweep(wl::sort_spec(), base, big);
    const double rel =
        std::abs(pred(160.0) - truth.speedup[0].y) / truth.speedup[0].y;
    board.check("IPSO fit at n<=16 predicts Sort S(160) (Fig. 7)",
                rel < 0.1, "err=" + trace::fmt(100 * rel, 1) + "%");
  }

  // --- Table I / Fig. 8: CF pathology.
  {
    const auto wo = trace::reference::cf_wo_series();
    stats::Series wp("Wp");
    for (const auto& p : wo) wp.add(p.x, trace::reference::kCfTp1);
    const auto qfit = stats::fit_power(q_series_from_workloads(wo, wp).value());
    board.check("CF Table I yields gamma ~ 2",
                std::abs(qfit.exponent - 2.0) < 0.1,
                "gamma=" + trace::fmt(qfit.exponent, 2));

    trace::SparkSweepConfig cf;
    cf.type = WorkloadType::kFixedTime;
    cf.tasks_per_executor = 1;
    cf.ms = {1, 10, 30, 50, 60, 70, 90, 120};
    cf.params.first_wave_overhead = 0.45;
    const auto r = runner.run_spark_sweep(
        [](std::size_t n) { return wl::collab_filter_app(n); }, base, cf);
    board.check("CF speedup peaks ~21 near n=60 then falls (IVs, Fig. 8)",
                stats::is_peaked(r.speedup) &&
                    std::abs(r.speedup.argmax_x() - 60.0) <= 20.0 &&
                    std::abs(r.speedup.max_y() - 21.0) <= 6.0,
                "peak S=" + trace::fmt(r.speedup.max_y(), 1) + " at n=" +
                    trace::fmt(r.speedup.argmax_x(), 0));
  }

  // --- Figs. 9-10: Spark dimensions.
  auto spark_base = base;
  spark_base.scheduler.contention_coeff = 5e-4;
  {
    auto s_at = [&](std::size_t k) {
      trace::SparkSweepConfig cfg;
      cfg.type = WorkloadType::kFixedTime;
      cfg.tasks_per_executor = k;
      cfg.ms = {32};
      return runner.run_spark_sweep(
                 [](std::size_t) { return wl::bayes_app(); }, spark_base,
                 cfg)
          .speedup[0]
          .y;
    };
    const double s1 = s_at(1), s2 = s_at(2), s4 = s_at(4), s8 = s_at(8);
    board.check("Spark fixed-time ordering 4 > 2 > 1 and 8 < 4 (Fig. 9)",
                s4 > s2 && s2 > s1 && s8 < s4,
                trace::fmt(s1, 1) + "/" + trace::fmt(s2, 1) + "/" +
                    trace::fmt(s4, 1) + "/" + trace::fmt(s8, 1));
  }
  {
    trace::SparkSweepConfig cfg;
    cfg.type = WorkloadType::kFixedSize;
    cfg.total_tasks = 192;
    cfg.ms = {1, 4, 16, 48, 64, 96, 128, 160, 192};
    bool all_peaked = true;
    for (const auto& app : {wl::bayes_app(), wl::random_forest_app(),
                            wl::svm_app(), wl::nweight_app()}) {
      const auto r = runner.run_spark_sweep(
          [&](std::size_t) { return app; }, spark_base, cfg);
      all_peaked = all_peaked && stats::is_peaked(r.speedup);
    }
    board.check("Spark fixed-size peak-and-fall for all 4 apps (Fig. 10)",
                all_peaked, "Bayes/RF/SVM/NWeight");
  }

  // --- Law degeneration.
  {
    double worst = 0.0;
    for (double eta = 0.1; eta <= 1.0; eta += 0.1) {
      for (double n = 1; n <= 1024; n *= 4) {
        const ScalingFactors amdahl_f{constant_factor(1.0),
                                      constant_factor(1.0),
                                      constant_factor(0.0)};
        const ScalingFactors gust_f{identity_factor(), constant_factor(1.0),
                                    constant_factor(0.0)};
        worst = std::max(
            worst, std::abs(speedup_deterministic(amdahl_f, eta, n) -
                            laws::amdahl(eta, n)));
        worst = std::max(
            worst, std::abs(speedup_deterministic(gust_f, eta, n) -
                            laws::gustafson(eta, n)));
      }
    }
    board.check("Classical laws are exact IPSO special cases (Eq. 12-13)",
                worst < 1e-12, "max err=" + trace::fmt(worst, 15));
  }

  trace::print_banner(std::cout, "IPSO reproduction scoreboard");
  trace::print_table(std::cout, {"claim", "verdict", "detail"}, board.rows);
  const auto metrics = runner.metrics();
  std::cout << "\nsweep engine: " << runner.threads() << " threads, "
            << metrics.sweeps_run << " sweeps, " << metrics.tasks_completed
            << " tasks, " << trace::fmt(metrics.busy_seconds, 2)
            << "s task time in " << trace::fmt(metrics.wall_seconds, 2)
            << "s wall ("
            << trace::fmt(metrics.wall_seconds > 0.0
                              ? metrics.busy_seconds / metrics.wall_seconds
                              : 0.0,
                          1)
            << "x parallelism)\n";
  std::cout << (board.all_pass ? "\nALL CLAIMS REPRODUCED\n"
                               : "\nSOME CLAIMS FAILED\n");
  return board.all_pass ? 0 : 1;
}
