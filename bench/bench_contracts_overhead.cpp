/// Overhead budget for the contract layer (core/contracts.h, core/domain.h):
/// the domain-typed public model API must cost no more than a small, fixed
/// margin over the identical arithmetic with no validation at all.
///
/// Two timed variants of the same asymptotic-speedup sweep (Eq. 16/17),
/// evaluated over a dense (η, n) grid:
///
///   raw      a local replica of speedup_asymptotic's arithmetic taking
///            plain doubles — the floor: what the computation costs with
///            no boundary validation anywhere
///   checked  the public speedup_asymptotic(), whose NodeCount parameter
///            validates n ≥ 1 (and, contracts ON, routes violations to the
///            handler) on every call
///
/// The contract asserted here (exit code 1 on violation): the median
/// per-pair overhead is < 15%. The variants run back-to-back inside each
/// repetition, so each (raw, checked) pair is a same-conditions
/// comparison, and the median over many pairs discards the repetitions a
/// load burst or frequency step landed on — either side. A genuine
/// regression shifts every pair, median included, which is what lets this
/// gate hold a tight budget without flaking on a busy CI runner. When
/// built with
/// -DIPSO_CONTRACTS=OFF the two paths are identical copies and the ratio
/// measures pure call-boundary noise; when ON, it bounds the real price of
/// the per-call domain checks. Both must clear the same budget — that is
/// the "boundary-only checks stay off the hot path" guarantee DESIGN.md §8
/// documents.

#include "core/domain.h"
#include "core/model.h"
#include "core/scaling_factors.h"
#include "trace/cli_opts.h"

#include <algorithm>
#include <limits>
#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

using namespace ipso;

namespace {

using Clock = std::chrono::steady_clock;

/// Replica of speedup_asymptotic's fixed-time arithmetic with zero
/// validation: the no-contracts floor. Kept out-of-line so both variants
/// pay one call per grid point and the comparison isolates the checks.
__attribute__((noinline)) double raw_speedup(double eta, double alpha,
                                             double delta, double beta,
                                             double gamma, double n) {
  const double q = beta > 0.0 && gamma > 0.0 && n > 1.0
                       ? beta * std::pow(n, gamma)
                       : 0.0;
  if (eta >= 1.0) return n / (1.0 + q);
  const double ead = eta * alpha * std::pow(n, delta);
  return (ead + (1.0 - eta)) / (ead / n * (1.0 + q) + (1.0 - eta));
}

struct Grid {
  std::vector<double> etas;
  std::vector<double> ns;
};

Grid dense_grid() {
  Grid g;
  for (double eta = 0.05; eta <= 1.0; eta += 0.05) g.etas.push_back(eta);
  for (double n = 1.0; n <= 4096.0; n *= 1.25) g.ns.push_back(n);
  return g;
}

template <typename Eval>
double time_sweep(const Grid& g, Eval&& eval, double* sink) {
  const auto t0 = Clock::now();
  double acc = 0.0;
  for (int rep = 0; rep < 400; ++rep) {
    for (double eta : g.etas) {
      for (double n : g.ns) acc += eval(eta, n);
    }
  }
  *sink += acc;  // defeat dead-code elimination
  return std::chrono::duration<double>(Clock::now() - t0).count();
}


}  // namespace

int main(int argc, char** argv) {
  if (trace::handle_info_flags(
          argc, argv,
          "Overhead budget for the contract layer: domain-typed API vs raw "
          "arithmetic")) {
    return 0;
  }
  constexpr int kReps = 31;
  const Grid grid = dense_grid();
  AsymptoticParams p;
  p.type = WorkloadType::kFixedTime;
  p.alpha = 1.2;
  p.delta = 0.3;
  p.beta = 3.0e-4;
  p.gamma = 1.5;

  std::cout << "contracts overhead budget: " << grid.etas.size() << " x "
            << grid.ns.size() << " (eta, n) grid, " << kReps
            << " repetitions per variant, contracts "
            << (IPSO_CONTRACTS_ENABLED ? "ON" : "OFF") << "\n";

  double sink = 0.0;
  std::vector<double> raw, checked;
  // Interleave the variants so frequency scaling and cache state drift
  // cannot systematically favor whichever ran last.
  for (int i = 0; i < kReps + 1; ++i) {
    const double t_raw = time_sweep(
        grid,
        [&](double eta, double n) {
          return raw_speedup(eta, p.alpha, p.delta, p.beta, p.gamma, n);
        },
        &sink);
    const double t_checked = time_sweep(
        grid,
        [&](double eta, double n) {
          AsymptoticParams q = p;
          q.eta = eta;
          return speedup_asymptotic(q, n);  // NodeCount validates per call
        },
        &sink);
    if (i == 0) continue;  // warm-up pair
    raw.push_back(t_raw);
    checked.push_back(t_checked);
  }

  std::vector<double> ratios;
  ratios.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    ratios.push_back(checked[i] / raw[i]);
  }
  std::sort(ratios.begin(), ratios.end());
  const double ratio = ratios[ratios.size() / 2];
  std::cout << "median per-pair overhead over " << ratios.size()
            << " interleaved pairs: " << (ratio - 1.0) * 100.0
            << "% vs raw\n";
  if (sink == 42.0) std::cout << "";  // keep `sink` observable

  constexpr double kBudget = 1.15;  // checked must stay under +15%
  if (ratio > kBudget) {
    std::cout << "FAIL: contract overhead " << ratio << "x exceeds the "
              << kBudget << "x budget\n";
    return 1;
  }
  std::cout << "PASS: domain-typed API within the 15% budget over raw "
               "arithmetic\n";
  return 0;
}
