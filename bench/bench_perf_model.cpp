/// google-benchmark microbenchmarks of the IPSO library itself: model
/// evaluation, classification, fitting and a full simulated sweep. These
/// quantify the cost of using IPSO as an online diagnostic/provisioning
/// tool (the paper's motivation for measurement-based resource
/// provisioning requires the fit to be cheap).

#include "core/classify.h"
#include "core/fit.h"
#include "core/model.h"
#include "core/predict.h"
#include "stats/nonlinear.h"
#include "trace/experiment.h"
#include "workloads/sort.h"

#include <benchmark/benchmark.h>

namespace {

using namespace ipso;

void BM_SpeedupDeterministic(benchmark::State& state) {
  const ScalingFactors f{identity_factor(), linear_factor(0.23, 0.77),
                         make_q(1e-4, 1.5)};
  double n = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(speedup_deterministic(f, 0.6, n));
    n = n >= 1024 ? 1.0 : n + 1.0;
  }
}
BENCHMARK(BM_SpeedupDeterministic);

void BM_SpeedupAsymptotic(benchmark::State& state) {
  AsymptoticParams p;
  p.eta = 0.8;
  p.alpha = 2.0;
  p.delta = 0.3;
  p.beta = 1e-3;
  p.gamma = 1.4;
  double n = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(speedup_asymptotic(p, n));
    n = n >= 1024 ? 1.0 : n + 1.0;
  }
}
BENCHMARK(BM_SpeedupAsymptotic);

void BM_Classify(benchmark::State& state) {
  AsymptoticParams p;
  p.eta = 0.8;
  p.alpha = 2.0;
  p.delta = 0.0;
  p.beta = 1e-3;
  p.gamma = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify(p));
  }
}
BENCHMARK(BM_Classify);

void BM_PowerFit(benchmark::State& state) {
  stats::Series s("q");
  for (double n = 2; n <= 256; n *= 2) s.add(n, 3.7e-4 * n * n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_power(s));
  }
}
BENCHMARK(BM_PowerFit);

void BM_SegmentedFit(benchmark::State& state) {
  stats::Series s("IN");
  for (int n = 1; n <= 64; ++n) {
    s.add(n, n <= 15 ? 0.15 * n + 0.85 : 0.25 * n + 0.85);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_segmented(s));
  }
}
BENCHMARK(BM_SegmentedFit);

void BM_NelderMeadHyperbolic(benchmark::State& state) {
  stats::Series s("tp");
  for (double n : {10.0, 30.0, 60.0, 90.0}) s.add(n, 2001.0 / n + 9.0);
  auto model = [](const std::vector<double>& p, double x) {
    return p[0] / x + p[1];
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_curve(s, model, {100.0, 1.0}));
  }
}
BENCHMARK(BM_NelderMeadHyperbolic);

void BM_FullMrSweep(benchmark::State& state) {
  const auto spec = wl::sort_spec();
  const auto base = sim::default_emr_cluster(1);
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8, 16};
  sweep.repetitions = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::run_mr_sweep(spec, base, sweep));
  }
}
BENCHMARK(BM_FullMrSweep);

void BM_FitAndPredictPipeline(benchmark::State& state) {
  const auto spec = wl::sort_spec();
  const auto base = sim::default_emr_cluster(1);
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8, 16};
  sweep.repetitions = 1;
  const auto r = trace::run_mr_sweep(spec, base, sweep);
  for (auto _ : state) {
    const auto fits = fit_factors(WorkloadType::kFixedTime, r.factors).value();
    const auto predictor = SpeedupPredictor::from_fits(fits);
    benchmark::DoNotOptimize(predictor(160.0));
  }
}
BENCHMARK(BM_FitAndPredictPipeline);

}  // namespace

BENCHMARK_MAIN();
