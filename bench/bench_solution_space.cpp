/// The complete IPSO solution space as a map: classify every point of a
/// (delta, gamma) grid for the fixed-time workload and a (eta, gamma) grid
/// for the fixed-size workload (paper Section IV spans the space in
/// EX/IN/q; the named regions of Figs. 2-3 appear as contiguous areas).

#include "core/classify.h"
#include "trace/cli_opts.h"
#include "trace/report.h"

#include <iostream>

using namespace ipso;

namespace {

char code(ScalingType t) {
  switch (t) {
    case ScalingType::kIt:
    case ScalingType::kIs:
      return '1';  // linear
    case ScalingType::kIIt:
    case ScalingType::kIIs:
      return '2';  // sublinear unbounded
    case ScalingType::kIIIt1:
    case ScalingType::kIIIs1:
      return '3';
    case ScalingType::kIIIt2:
    case ScalingType::kIIIs2:
      return '4';
    case ScalingType::kIVt:
    case ScalingType::kIVs:
      return 'X';  // pathological peaked
  }
  return '?';
}

}  // namespace

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "The complete IPSO solution space as a map: classify every point of a")) {
    return 0;
  }
  trace::print_banner(std::cout,
                      "Fixed-time solution space: type over (delta, gamma), "
                      "eta = 0.9, alpha = 1, beta = 0.01");
  std::cout << "legend: 1 = It linear, 2 = IIt sublinear, 3 = IIIt,1, "
               "4 = IIIt,2, X = IVt peaked\n\n";
  std::cout << "gamma\\delta ";
  for (double delta = 0.0; delta <= 1.001; delta += 0.125) {
    std::cout << trace::fmt(delta, 2) << "  ";
  }
  std::cout << "\n";
  for (double gamma = 2.0; gamma >= -0.001; gamma -= 0.25) {
    std::cout << "   " << trace::fmt(gamma, 2) << "     ";
    for (double delta = 0.0; delta <= 1.001; delta += 0.125) {
      AsymptoticParams p;
      p.type = WorkloadType::kFixedTime;
      p.eta = 0.9;
      p.alpha = 1.0;
      p.delta = delta;
      p.beta = gamma > 0.0 ? 0.01 : 0.0;
      p.gamma = gamma;
      std::cout << code(classify(p).type) << "     ";
    }
    std::cout << "\n";
  }

  trace::print_banner(std::cout,
                      "Fixed-size solution space: type over (eta, gamma), "
                      "alpha = 1, beta = 0.01");
  std::cout << "legend: 1 = Is linear, 2 = IIs sublinear, 3 = IIIs,1 "
               "(Amdahl-like), 4 = IIIs,2, X = IVs peaked\n\n";
  std::cout << "gamma\\eta  ";
  for (double eta = 0.25; eta <= 1.001; eta += 0.125) {
    std::cout << trace::fmt(eta, 2) << "  ";
  }
  std::cout << "\n";
  for (double gamma = 2.0; gamma >= -0.001; gamma -= 0.25) {
    std::cout << "   " << trace::fmt(gamma, 2) << "   ";
    for (double eta = 0.25; eta <= 1.001; eta += 0.125) {
      AsymptoticParams p;
      p.type = WorkloadType::kFixedSize;
      p.eta = eta;
      p.alpha = 1.0;
      p.delta = 0.0;
      p.beta = gamma > 0.0 ? 0.01 : 0.0;
      p.gamma = gamma;
      std::cout << code(classify(p).type) << "     ";
    }
    std::cout << "\n";
  }
  std::cout << "\npathology (X) occupies exactly gamma > 1, independent of "
               "every other factor — the paper's headline warning\n";
  return 0;
}
