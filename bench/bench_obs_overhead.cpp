/// Overhead budget for the obs subsystem (EXPERIMENTS.md): a fixed MR sweep
/// timed in three telemetry states —
///
///   off               never enabled (the cold default every untraced
///                     run ships with)
///   runtime-disabled  obs was enabled once (instruments + shards exist)
///                     and then switched off: the steady "tracing compiled
///                     in but not requested" state every production run
///                     pays; per call site this is one relaxed atomic load
///   enabled           tracing on, spans + metrics recorded (ring cleared
///                     between repetitions)
///
/// The contract asserted here (exit code 1 on violation): the median
/// runtime-disabled sweep costs < 2% over the median never-enabled sweep.
/// The enabled state is reported for reference but not asserted — it pays
/// for real work (span capture), bounded by the ring.

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "trace/cli_opts.h"
#include "trace/experiment.h"
#include "trace/runner.h"
#include "workloads/sort.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

using namespace ipso;

namespace {

using Clock = std::chrono::steady_clock;

trace::MrSweepConfig fixed_sweep() {
  trace::MrSweepConfig sweep;
  sweep.type = WorkloadType::kFixedTime;
  sweep.ns = {1, 2, 4, 8, 16, 32, 64, 128, 200};
  sweep.repetitions = 20;
  sweep.seed = 42;
  return sweep;
}

double time_sweep(trace::ExperimentRunner& runner) {
  const auto base = sim::default_emr_cluster(1);
  const auto t0 = Clock::now();
  const auto r = runner.run_mr_sweep(wl::sort_spec(), base, fixed_sweep());
  const double s = std::chrono::duration<double>(Clock::now() - t0).count();
  if (r.points.empty()) std::abort();  // keep the sweep observable
  return s;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Overhead budget for the obs subsystem (EXPERIMENTS.md): a fixed MR sweep")) {
    return 0;
  }
  constexpr int kReps = 7;
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));
  std::cout << "obs overhead budget: fixed sort sweep, " << kReps
            << " repetitions per state, " << runner.threads()
            << " threads\n";

  // --- State 1: never enabled. Must run first — the other states register
  // instruments and thread-local shards that then exist for good.
  std::vector<double> off;
  time_sweep(runner);  // warm the pool and the page cache once
  for (int i = 0; i < kReps; ++i) off.push_back(time_sweep(runner));

  // --- State 2: runtime-disabled. Enable once so every instrument, shard,
  // and track exists, then switch off and measure the steady gated path.
  obs::set_enabled(true);
  time_sweep(runner);
  obs::set_enabled(false);
  obs::Tracer::global().clear();
  obs::MetricsRegistry::global().reset();
  std::vector<double> disabled;
  for (int i = 0; i < kReps; ++i) disabled.push_back(time_sweep(runner));

  // --- State 3: enabled, spans landing in the ring.
  std::vector<double> enabled;
  obs::set_enabled(true);
  for (int i = 0; i < kReps; ++i) {
    obs::Tracer::global().clear();
    obs::MetricsRegistry::global().reset();
    enabled.push_back(time_sweep(runner));
  }
  obs::set_enabled(false);

  const double m_off = median(off);
  const double m_dis = median(disabled);
  const double m_en = median(enabled);
  const double dis_ratio = m_dis / m_off;
  const double en_ratio = m_en / m_off;

  std::cout << "median off:              " << m_off * 1e3 << " ms\n";
  std::cout << "median runtime-disabled: " << m_dis * 1e3 << " ms  ("
            << (dis_ratio - 1.0) * 100.0 << "% vs off)\n";
  std::cout << "median enabled:          " << m_en * 1e3 << " ms  ("
            << (en_ratio - 1.0) * 100.0 << "% vs off)\n";

  constexpr double kBudget = 1.02;  // runtime-disabled must stay under +2%
  if (dis_ratio > kBudget) {
    std::cout << "FAIL: runtime-disabled overhead " << dis_ratio
              << "x exceeds the " << kBudget << "x budget\n";
    return 1;
  }
  std::cout << "PASS: runtime-disabled overhead within the 2% budget\n";
  return 0;
}
