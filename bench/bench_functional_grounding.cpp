/// Functional grounding check: run the four MapReduce case-study kernels
/// FOR REAL (counting, sorting, merging, estimating pi on generated data),
/// verify each one's correctness invariant, and compare the intermediate
/// data volumes the real computation produced against the calibrated cost
/// models the simulation uses — the evidence that the simulated scaling
/// behaviour is grounded in the actual computations (DESIGN.md §2).

#include "mapreduce/functional.h"
#include "trace/cli_opts.h"
#include "trace/report.h"
#include "workloads/functional_jobs.h"

#include <iostream>
#include <memory>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Functional grounding check: run the four MapReduce case-study kernels")) {
    return 0;
  }
  trace::print_banner(std::cout,
                      "Functional kernels: correctness + measured vs "
                      "calibrated intermediate volumes");

  struct Case {
    std::unique_ptr<mr::FunctionalMrJob> job;
    mr::MrWorkloadSpec spec;
  };
  Case cases[4] = {
      {std::make_unique<wl::WordCountJob>(), wl::wordcount_spec()},
      {std::make_unique<wl::SortJob>(), wl::sort_spec()},
      {std::make_unique<wl::TeraSortJob>(), wl::terasort_spec()},
      {std::make_unique<wl::QmcPiJob>(), wl::qmc_pi_spec()},
  };

  std::vector<std::vector<std::string>> rows;
  bool all_ok = true;
  for (auto& c : cases) {
    mr::MrEngine engine(sim::default_emr_cluster(8));
    mr::MrJobConfig job;
    job.num_tasks = 8;
    job.shard_bytes = 128e6;
    job.seed = 3;
    const auto r = mr::run_functional(engine, *c.job, c.spec, job,
                                      /*functional_cap=*/1 << 17);
    all_ok = all_ok && r.verified;
    const bool ratio_style = c.spec.intermediate_ratio > 0.0;
    rows.push_back(
        {c.job->name(), r.verified ? "VERIFIED" : "FAILED",
         ratio_style ? "ratio" : "per-task bytes",
         ratio_style ? trace::fmt(c.spec.intermediate_ratio, 3)
                     : trace::fmt(c.spec.fixed_intermediate_bytes, 0),
         ratio_style ? trace::fmt(r.measured_ratio, 3)
                     : trace::fmt(r.measured_fixed_intermediate, 0),
         trace::fmt(r.simulated.makespan, 1)});
  }
  trace::print_table(std::cout,
                     {"kernel", "invariant", "volume model", "calibrated",
                      "measured (real run)", "sim makespan (s)"},
                     rows);
  std::cout << "invariants: WordCount conserves token counts; Sort/TeraSort "
               "outputs are sorted permutations (checksum); QMC estimate "
               "within 5e-3 of pi\n";
  return all_ok ? 0 : 1;
}
