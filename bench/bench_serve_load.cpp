/// bench_serve_load: closed-loop load generator for the ipso::serve engine.
/// Three phases against one in-process ServeEngine:
///
///   cold        every request is a distinct fit (cache can only miss);
///   hot         the same requests again (cache can only hit);
///   saturation  a burst far beyond a small admission queue, proving the
///               engine sheds load with `overloaded` instead of queueing
///               without bound.
///
/// Reports throughput and p50/p95/p99 latency per phase, then enforces the
/// serving-layer contracts and exits 1 on violation:
///
///   C1  hot-phase (cached) fits are >= 10x faster than cold at the median;
///   C2  hot responses are byte-identical to their cold counterparts;
///   C3  saturation produces `overloaded` rejections and the peak queue
///       depth never exceeds the configured capacity;
///   C4  peak RSS stays bounded (VmHWM under a generous ceiling), i.e.
///       saturation sheds load instead of buffering it.
///
/// Flags: --requests N, --points N (observations per series), --threads N,
///        --trace-out FILE.

#include "serve/engine.h"
#include "trace/cli_opts.h"
#include "trace/json.h"
#include "obs/export.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

namespace {

using Clock = std::chrono::steady_clock;

/// A fit request whose observations depend on `seed`, so distinct seeds are
/// distinct cache keys and equal seeds are byte-identical request lines.
/// `points` observations per factor series model a production trace (one
/// point per completed run); the IN series has a changepoint at n/2, so the
/// fit pays for the O(points^2) segmented changepoint search the cache is
/// there to amortize.
std::string fit_request(int seed, int points) {
  const double t1 = 100.0 + seed;
  const double knee = 1.0 + points / 2.0;
  std::ostringstream os;
  os << "{\"op\":\"fit\",\"workload\":\"fixed-time\",\"eta\":0.99,\"ex\":[";
  for (int i = 0; i < points; ++i) {
    const double n = 1.0 + i;
    if (i) os << ",";
    os << "[" << n << "," << ipso::trace::json_double(t1 / n + 0.5) << "]";
  }
  os << "],\"in\":[";
  for (int i = 0; i < points; ++i) {
    const double n = 1.0 + i;
    const double in = n <= knee ? 0.4 + 0.6 * n : 0.4 + 0.6 * knee +
                                                      2.5 * (n - knee);
    if (i) os << ",";
    os << "[" << n << "," << ipso::trace::json_double(in) << "]";
  }
  os << "]}";
  return os.str();
}

struct PhaseResult {
  std::vector<double> latencies_ms;  // sorted on return
  std::vector<std::string> responses;
  double elapsed_s = 0.0;
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// Closed loop: issue every request, measure each wall latency.
PhaseResult run_phase(ipso::serve::ServeEngine& engine,
                      const std::vector<std::string>& requests) {
  PhaseResult result;
  result.latencies_ms.reserve(requests.size());
  result.responses.reserve(requests.size());
  const Clock::time_point start = Clock::now();
  for (const std::string& req : requests) {
    const Clock::time_point t0 = Clock::now();
    result.responses.push_back(engine.handle(req));
    result.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  result.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  return result;
}

void print_phase(const char* name, const PhaseResult& r) {
  const double n = static_cast<double>(r.responses.size());
  std::printf("%-12s %6zu req  %8.1f req/s  p50 %8.4f ms  p95 %8.4f ms  "
              "p99 %8.4f ms\n",
              name, r.responses.size(),
              r.elapsed_s > 0 ? n / r.elapsed_s : 0.0,
              percentile(r.latencies_ms, 0.50),
              percentile(r.latencies_ms, 0.95),
              percentile(r.latencies_ms, 0.99));
}

/// Peak resident set (VmHWM) in MiB from /proc/self/status; 0 if absent.
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

int flag_int(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == flag) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipso;

  if (trace::handle_info_flags(
          argc, argv,
          "bench_serve_load: closed-loop load generator for ipso::serve\n"
          "(cold/hot/saturation phases; enforces the cache-speedup,\n"
          "byte-identity, and bounded-backpressure contracts).\n"
          "Extra flags: --requests N, --points N")) {
    return 0;
  }

  obs::TraceSession trace_session(trace::trace_out_from_args(argc, argv));
  // Default shape: few distinct fits, each over a long observation trace.
  // The changepoint search is O(points^2) while request parsing is
  // O(points), so large traces are exactly the workload the fit cache is
  // built to amortize.
  const int requests = std::max(8, flag_int(argc, argv, "--requests", 20));
  const int points = std::max(8, flag_int(argc, argv, "--points", 4096));
  const std::size_t threads =
      trace::runner_config_from_args(argc, argv).threads;

  std::printf("# bench_serve_load: %d distinct fits, %d observations per "
              "factor series, threads=%zu\n\n",
              requests, points, threads);

  std::vector<std::string> workload;
  workload.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    workload.push_back(fit_request(i, points));
  }

  bool ok = true;

  // --- cold vs hot: the fit cache -------------------------------------
  serve::ServeConfig cfg;
  cfg.threads = threads;
  cfg.cache_capacity = static_cast<std::size_t>(requests);
  {
    serve::ServeEngine engine(cfg);
    const PhaseResult cold = run_phase(engine, workload);
    const PhaseResult hot = run_phase(engine, workload);
    print_phase("cold", cold);
    print_phase("hot", hot);

    const double cold_p50 = percentile(cold.latencies_ms, 0.50);
    const double hot_p50 = percentile(hot.latencies_ms, 0.50);
    const double speedup = hot_p50 > 0 ? cold_p50 / hot_p50 : 1e9;
    std::printf("\ncache speedup (cold p50 / hot p50): %.1fx\n", speedup);
    if (speedup < 10.0) {
      std::printf("CONTRACT VIOLATION (C1): cached fits only %.1fx faster "
                  "than cold (need >= 10x)\n", speedup);
      ok = false;
    }

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < cold.responses.size(); ++i) {
      if (cold.responses[i] != hot.responses[i]) ++mismatches;
    }
    if (mismatches) {
      std::printf("CONTRACT VIOLATION (C2): %zu/%zu cached responses differ "
                  "from their cold counterparts\n",
                  mismatches, cold.responses.size());
      ok = false;
    } else {
      std::printf("byte-identity: %zu/%zu hot responses identical to cold\n",
                  cold.responses.size(), cold.responses.size());
    }

    const serve::ServeStats s = engine.stats();
    std::printf("cache: hits=%zu misses=%zu (fits performed: %zu)\n",
                s.cache_hits, s.cache_misses, engine.fits_performed());
  }

  // --- saturation: bounded admission ----------------------------------
  std::printf("\n");
  serve::ServeConfig sat_cfg;
  sat_cfg.threads = threads;
  sat_cfg.queue_capacity = 8;
  sat_cfg.cache_capacity = 4;
  {
    serve::ServeEngine engine(sat_cfg);
    // Open-loop burst: fire every request without waiting, far beyond the
    // queue capacity, then collect.
    std::vector<std::future<std::string>> inflight;
    inflight.reserve(workload.size());
    const Clock::time_point start = Clock::now();
    for (const std::string& req : workload) {
      inflight.push_back(engine.submit(req));
    }
    std::size_t answered = 0, overloaded = 0;
    for (auto& f : inflight) {
      const std::string response = f.get();
      ++answered;
      if (response.find("\"error\":\"overloaded\"") != std::string::npos) {
        ++overloaded;
      }
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    const serve::ServeStats s = engine.stats();
    std::printf("saturation   %6zu req  %8.1f req/s  answered=%zu "
                "overloaded=%zu peak_queue=%zu (cap %zu)\n",
                inflight.size(), elapsed > 0 ? answered / elapsed : 0.0,
                answered, overloaded, s.peak_queue_depth,
                sat_cfg.queue_capacity);
    if (overloaded == 0) {
      std::printf("CONTRACT VIOLATION (C3): burst of %zu over capacity %zu "
                  "produced no overloaded rejections\n",
                  inflight.size(), sat_cfg.queue_capacity);
      ok = false;
    }
    if (s.peak_queue_depth > sat_cfg.queue_capacity) {
      std::printf("CONTRACT VIOLATION (C3): peak queue depth %zu exceeds "
                  "capacity %zu\n",
                  s.peak_queue_depth, sat_cfg.queue_capacity);
      ok = false;
    }
  }

  const double rss = peak_rss_mib();
  std::printf("peak RSS: %.1f MiB\n", rss);
  if (rss > 512.0) {
    std::printf("CONTRACT VIOLATION (C4): peak RSS %.1f MiB exceeds the "
                "512 MiB ceiling\n", rss);
    ok = false;
  }

  std::printf("\n%s\n", ok ? "all serving contracts hold"
                           : "SERVING CONTRACT VIOLATIONS -- see above");
  return ok ? 0 : 1;
}
