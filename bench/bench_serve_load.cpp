/// bench_serve_load: closed-loop load generator for the ipso::serve engine.
/// Three phases against one in-process ServeEngine:
///
///   cold        every request is a distinct fit (cache can only miss);
///   hot         the same requests again (cache can only hit);
///   saturation  a burst far beyond a small admission queue, proving the
///               engine sheds load with `overloaded` instead of queueing
///               without bound.
///
/// Reports throughput and p50/p95/p99 latency per phase, then enforces the
/// serving-layer contracts and exits 1 on violation:
///
///   C1  hot-phase (cached) fits are >= 10x faster than cold at the median;
///   C2  hot responses are byte-identical to their cold counterparts;
///   C3  saturation produces `overloaded` rejections and the peak queue
///       depth never exceeds the configured capacity;
///   C4  peak RSS stays bounded (VmHWM under a generous ceiling), i.e.
///       saturation sheds load instead of buffering it.
///
/// A fourth phase drives the epoll front end over real sockets: a sweep of
/// connection count x batch size x wire protocol (JSON lines vs binary
/// batched frames), closed-loop, every response validated. Two more
/// contracts:
///
///   C5  the event loop sustains the largest configured connection count
///       (default 1024) with every response correct and in order;
///   C6  the binary batched protocol beats JSON lines on aggregate req/s
///       across the batch >= 16 cells (the batching win is real, not
///       serialization trivia).
///
/// `--router` switches to the sharded-tier sweep instead: replica count x
/// placement policy x Zipf-skewed key popularity, every request flowing
/// through an in-process Router fronting N ServeEngine replicas. The tier's
/// own (n, throughput) curve is then fed through the repo's fit_factors —
/// the serving tier is itself a fixed-size workload in the IPSO taxonomy —
/// with Gunther's USL fitted on the same q(n) series as a cross-check.
///
///   C7  at >= 3 replicas, every placement and both wire protocols return
///       responses byte-identical to a single standalone engine;
///   C8  fit_factors succeeds on every placement's throughput curve and
///       prints (delta, gamma, class).
///
/// A warm-restart phase exercises the persistent fit store (src/store):
/// one engine fits the corpus cold into a --store-dir, drains (flushing
/// the warm set to disk), and a second engine on the same directory
/// replays the corpus. Cold vs warm p50 fit latency is reported, and:
///
///   C9  the restarted engine serves every response byte-identical to the
///       pre-restart engine with zero fits performed (all disk hits);
///   C10 after a byte of a persisted segment is flipped, a restart skips
///       the corrupted record (skipped counter > 0), re-fits it, and
///       still answers the full corpus byte-identically -- corruption
///       degrades to recomputation, never to a crash or a wrong answer.
///
/// A model-zoo phase drives the serve-protocol `compare` op on synthetic
/// speedup curves of known shape:
///
///   C11 zoo selection is shape-driven -- Gunther's USL is selected over
///       Amdahl on a contention-shaped q(n) curve, IPSO is selected on an
///       Eq. 16 fixed-time series shaped like the paper's Fig. 9 curves,
///       and a perfectly linear curve resolves deterministically to
///       Amdahl via the registry-order tie-break.
///
/// Flags: --requests N, --points N (observations per series), --threads N,
///        --conns LIST, --batch LIST, --net-requests N, --no-net,
///        --store-dir DIR (default: fresh temp dir), --no-store,
///        --router, --router-requests N, --router-points N, --router-keys N,
///        --router-replicas LIST, --router-conns N, --router-batch N,
///        --zipf S, --trace-out FILE.

#include "core/classify.h"
#include "core/fit.h"
#include "core/sync.h"
#include "models/usl.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/router.h"
#include "serve/server.h"
#include "stats/random.h"
#include "stats/series.h"
#include "store/segment.h"
#include "trace/cli_opts.h"
#include "trace/json.h"
#include "obs/export.h"

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using Clock = std::chrono::steady_clock;

/// A fit request whose observations depend on `seed`, so distinct seeds are
/// distinct cache keys and equal seeds are byte-identical request lines.
/// `points` observations per factor series model a production trace (one
/// point per completed run); the IN series has a changepoint at n/2, so the
/// fit pays for the O(points^2) segmented changepoint search the cache is
/// there to amortize.
std::string fit_request(int seed, int points) {
  const double t1 = 100.0 + seed;
  const double knee = 1.0 + points / 2.0;
  std::ostringstream os;
  os << "{\"op\":\"fit\",\"workload\":\"fixed-time\",\"eta\":0.99,\"ex\":[";
  for (int i = 0; i < points; ++i) {
    const double n = 1.0 + i;
    if (i) os << ",";
    os << "[" << n << "," << ipso::trace::json_double(t1 / n + 0.5) << "]";
  }
  os << "],\"in\":[";
  for (int i = 0; i < points; ++i) {
    const double n = 1.0 + i;
    const double in = n <= knee ? 0.4 + 0.6 * n : 0.4 + 0.6 * knee +
                                                      2.5 * (n - knee);
    if (i) os << ",";
    os << "[" << n << "," << ipso::trace::json_double(in) << "]";
  }
  os << "]}";
  return os.str();
}

struct PhaseResult {
  std::vector<double> latencies_ms;  // sorted on return
  std::vector<std::string> responses;
  double elapsed_s = 0.0;
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// Closed loop: issue every request, measure each wall latency.
PhaseResult run_phase(ipso::serve::ServeEngine& engine,
                      const std::vector<std::string>& requests) {
  PhaseResult result;
  result.latencies_ms.reserve(requests.size());
  result.responses.reserve(requests.size());
  const Clock::time_point start = Clock::now();
  for (const std::string& req : requests) {
    const Clock::time_point t0 = Clock::now();
    result.responses.push_back(engine.handle(req));
    result.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  result.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  return result;
}

void print_phase(const char* name, const PhaseResult& r) {
  const double n = static_cast<double>(r.responses.size());
  std::printf("%-12s %6zu req  %8.1f req/s  p50 %8.4f ms  p95 %8.4f ms  "
              "p99 %8.4f ms\n",
              name, r.responses.size(),
              r.elapsed_s > 0 ? n / r.elapsed_s : 0.0,
              percentile(r.latencies_ms, 0.50),
              percentile(r.latencies_ms, 0.95),
              percentile(r.latencies_ms, 0.99));
}

/// Peak resident set (VmHWM) in MiB from /proc/self/status; 0 if absent.
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

/// Per-named-mutex hold/contention table — the baseline for lock-splitting
/// work (which locks are fought over, e.g. the per-shard serve.engine mutex
/// vs the store tiers). Counters exist only under -DIPSO_SYNC_STATS=ON;
/// default builds print the one-line notice so the absence is visible in
/// archived bench output rather than ambiguous.
void print_mutex_profile() {
  using ipso::sync::MutexProfile;
  if (!ipso::sync::stats_compiled_in()) {
    std::printf("\nmutex profile: compiled out "
                "(rebuild with -DIPSO_SYNC_STATS=ON)\n");
    return;
  }
  // profile() yields one row per mutex *instance* (each shard engine is its
  // own "serve.engine" row); fold per capability name and report the
  // instance count so per-shard structure stays visible without a
  // hundred-row table.
  struct Agg {
    std::uint64_t instances = 0, acquisitions = 0, contended = 0,
                  hold_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const MutexProfile& p : ipso::sync::profile()) {
    Agg& a = by_name[p.name];
    ++a.instances;
    a.acquisitions += p.acquisitions;
    a.contended += p.contended;
    a.hold_ns += p.hold_ns;
  }
  std::printf("\nmutex profile (IPSO_SYNC_STATS):\n");
  std::printf("  %-24s %9s %12s %12s %10s %9s\n", "capability", "instances",
              "acquisitions", "contended", "hold_ms", "contend%");
  for (const auto& [name, a] : by_name) {
    if (a.acquisitions == 0) continue;
    std::printf("  %-24s %9llu %12llu %12llu %10.2f %8.2f%%\n", name.c_str(),
                static_cast<unsigned long long>(a.instances),
                static_cast<unsigned long long>(a.acquisitions),
                static_cast<unsigned long long>(a.contended),
                static_cast<double>(a.hold_ns) / 1e6,
                100.0 * static_cast<double>(a.contended) /
                    static_cast<double>(a.acquisitions));
  }
}

int flag_int(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == flag) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

std::vector<std::size_t> flag_list(int argc, char** argv, const char* flag,
                                   std::vector<std::size_t> fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) != flag) continue;
    std::vector<std::size_t> out;
    std::istringstream is(argv[i + 1]);
    std::string tok;
    while (std::getline(is, tok, ',')) {
      const long v = std::atol(tok.c_str());
      if (v > 0) out.push_back(static_cast<std::size_t>(v));
    }
    if (!out.empty()) return out;
  }
  return fallback;
}

/// Raises RLIMIT_NOFILE toward `want` fds; returns the resulting soft
/// limit. The 1024-connection sweep cell needs ~2x that in fds (client +
/// server end of every socket live in this one process).
std::size_t raise_fd_limit(std::size_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur < want && lim.rlim_cur < lim.rlim_max) {
    rlimit raised = lim;
    raised.rlim_cur =
        lim.rlim_max == RLIM_INFINITY
            ? want
            : std::min<rlim_t>(lim.rlim_max, static_cast<rlim_t>(want));
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return lim.rlim_cur == RLIM_INFINITY ? want
                                       : static_cast<std::size_t>(lim.rlim_cur);
}

/// One sweep cell: `conns` closed-loop connections, each keeping one
/// request batch of `batch` pings in flight, driven by up to 8 client
/// threads. Returns req/s; 0 on any transport or correctness failure.
struct NetCell {
  double reqs_per_s = 0.0;
  std::size_t requests = 0;
  bool ok = false;
};

NetCell run_net_cell(ipso::serve::Proto proto, std::size_t conns,
                     std::size_t batch, std::size_t total_requests,
                     std::size_t threads) {
  using namespace ipso;
  NetCell cell;

  serve::ServeConfig engine_cfg;
  engine_cfg.threads = threads;
  // Closed loop: every connection has at most one batch admitted, so size
  // the queue for exactly that plus slack — an `overloaded` response here
  // would be a correctness failure, not load shedding.
  engine_cfg.queue_capacity = conns * batch + 64;
  serve::ServeEngine engine(engine_cfg);

  serve::ServerConfig server_cfg;
  server_cfg.listen_backlog = static_cast<int>(std::max<std::size_t>(
      conns, 128));
  serve::TcpServer server(engine, server_cfg);
  if (auto started = server.start(); !started) {
    std::fprintf(stderr, "net: server start failed: %s\n",
                 started.error().message.c_str());
    return cell;
  }
  const std::uint16_t port = server.port();

  const std::size_t rounds =
      std::max<std::size_t>(1, total_requests / (conns * batch));
  cell.requests = rounds * conns * batch;

  const std::vector<std::string> records(batch, "{\"op\":\"ping\"}");
  const std::size_t workers = std::min<std::size_t>(conns, 8);
  std::atomic<std::size_t> failures{0};

  std::vector<std::unique_ptr<serve::Client>> clients;
  clients.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    clients.push_back(std::make_unique<serve::Client>(proto));
  }

  // Connect everything before timing starts: the cell measures steady-state
  // throughput at `conns` live connections, not connection setup.
  for (std::size_t i = 0; i < conns; ++i) {
    if (auto c = clients[i]->connect("127.0.0.1", port); !c) {
      std::fprintf(stderr, "net: connect %zu/%zu failed: %s\n", i, conns,
                   c.error().message.c_str());
      return cell;
    }
  }

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      // Worker w owns connections [lo, hi): pipeline one batch onto each,
      // then collect each batch — so all of a worker's connections have a
      // frame in flight concurrently.
      const std::size_t lo = w * conns / workers;
      const std::size_t hi = (w + 1) * conns / workers;
      for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t i = lo; i < hi; ++i) {
          if (auto sent = clients[i]->send_batch(records); !sent) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
        for (std::size_t i = lo; i < hi; ++i) {
          auto got = clients[i]->recv_batch(batch);
          if (!got || got->size() != batch) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          for (const std::string& response : *got) {
            if (response.find("\"pong\":true") == std::string::npos) {
              failures.fetch_add(1, std::memory_order_relaxed);
              return;
            }
          }
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  clients.clear();
  server.shutdown();

  if (failures.load() != 0) return cell;
  cell.ok = true;
  cell.reqs_per_s =
      elapsed > 0 ? static_cast<double>(cell.requests) / elapsed : 0.0;
  return cell;
}

double flag_double(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == flag) return std::strtod(argv[i + 1], nullptr);
  }
  return fallback;
}

// ---------------------------------------------------------------------------
// Router sweep (--router): replica count x placement x Zipf key popularity.
// ---------------------------------------------------------------------------

/// N in-process ServeEngine replicas, each behind its own TcpServer, plus
/// the endpoint list a Router needs to front them.
struct ReplicaTier {
  std::vector<std::unique_ptr<ipso::serve::ServeEngine>> engines;
  std::vector<std::unique_ptr<ipso::serve::TcpServer>> servers;
  std::vector<ipso::serve::ReplicaEndpoint> endpoints;

  bool start(std::size_t replicas, std::size_t cache_capacity) {
    using namespace ipso;
    for (std::size_t i = 0; i < replicas; ++i) {
      serve::ServeConfig cfg;
      cfg.threads = 1;
      cfg.queue_capacity = 4096;
      cfg.cache_capacity = cache_capacity;
      engines.push_back(std::make_unique<serve::ServeEngine>(cfg));
      servers.push_back(
          std::make_unique<serve::TcpServer>(*engines.back(),
                                             serve::ServerConfig{}));
      if (auto started = servers.back()->start(); !started) {
        std::fprintf(stderr, "router: replica %zu start failed: %s\n", i,
                     started.error().message.c_str());
        return false;
      }
      endpoints.push_back({"127.0.0.1", servers.back()->port()});
    }
    return true;
  }

  void shutdown() {
    for (auto& s : servers) s->shutdown();
  }
};

/// Zipf(s) sampling schedule over `keys` ranks: schedule[i] is the key index
/// of the i-th request. Deterministic (seeded Rng + precomputed CDF), so
/// every sweep cell replays the identical popularity-skewed stream.
std::vector<std::size_t> zipf_schedule(std::size_t total, std::size_t keys,
                                       double skew, std::uint64_t seed) {
  std::vector<double> cdf(keys);
  double mass = 0.0;
  for (std::size_t k = 0; k < keys; ++k) {
    mass += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf[k] = mass;
  }
  ipso::stats::Rng rng(seed);
  std::vector<std::size_t> schedule(total);
  for (std::size_t i = 0; i < total; ++i) {
    const double u = rng.uniform() * mass;
    schedule[i] = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (schedule[i] >= keys) schedule[i] = keys - 1;
  }
  return schedule;
}

/// One tier cell: `replicas` engines behind a Router with `placement`,
/// driven closed-loop over the binary protocol by `conns` connections each
/// pipelining `batch`-record frames drawn from the Zipf schedule.
NetCell run_router_cell(const std::string& placement, std::size_t replicas,
                        const std::vector<std::string>& keyspace,
                        const std::vector<std::size_t>& schedule,
                        std::size_t conns, std::size_t batch) {
  using namespace ipso;
  NetCell cell;

  ReplicaTier tier;
  if (!tier.start(replicas, keyspace.size() + 8)) return cell;

  serve::RouterConfig rcfg;
  rcfg.replicas = tier.endpoints;
  rcfg.placement = placement;
  rcfg.max_upstream_batch = batch;
  serve::Router router(rcfg);
  if (auto started = router.start(); !started) {
    std::fprintf(stderr, "router: start failed: %s\n",
                 started.error().message.c_str());
    tier.shutdown();
    return cell;
  }
  const std::uint16_t port = router.port();

  const std::size_t rounds =
      std::max<std::size_t>(1, schedule.size() / (conns * batch));
  cell.requests = rounds * conns * batch;

  std::vector<std::unique_ptr<serve::Client>> clients;
  for (std::size_t i = 0; i < conns; ++i) {
    clients.push_back(
        std::make_unique<serve::Client>(serve::Proto::kBinary));
    if (auto c = clients.back()->connect("127.0.0.1", port); !c) {
      std::fprintf(stderr, "router: connect failed: %s\n",
                   c.error().message.c_str());
      router.shutdown();
      tier.shutdown();
      return cell;
    }
  }

  const std::size_t workers = std::min<std::size_t>(conns, 4);
  std::atomic<std::size_t> failures{0};
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      const std::size_t lo = w * conns / workers;
      const std::size_t hi = (w + 1) * conns / workers;
      std::vector<std::string> records(batch);
      for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t i = lo; i < hi; ++i) {
          for (std::size_t b = 0; b < batch; ++b) {
            const std::size_t pos =
                ((r * conns + i) * batch + b) % schedule.size();
            records[b] = keyspace[schedule[pos]];
          }
          if (auto sent = clients[i]->send_batch(records); !sent) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          auto got = clients[i]->recv_batch(batch);
          if (!got || got->size() != batch) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          for (const std::string& response : *got) {
            if (response.find("\"ok\":true") == std::string::npos) {
              failures.fetch_add(1, std::memory_order_relaxed);
              return;
            }
          }
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  clients.clear();
  router.shutdown();
  tier.shutdown();

  if (failures.load() != 0) return cell;
  cell.ok = true;
  cell.reqs_per_s =
      elapsed > 0 ? static_cast<double>(cell.requests) / elapsed : 0.0;
  return cell;
}

/// C7: replays a deterministic corpus (keyed fits, repeats, ping, a parse
/// error) through a 3-replica tier under every placement and both wire
/// protocols, comparing every response to a standalone engine byte for
/// byte. The `stats` op is the one legitimate divergence, so it is checked
/// structurally instead: the router must answer it locally with its
/// placement name.
bool run_router_identity(const std::vector<std::string>& placements,
                         int points) {
  using namespace ipso;
  std::vector<std::string> corpus;
  corpus.push_back("{\"op\":\"ping\"}");
  for (int i = 0; i < 6; ++i) corpus.push_back(fit_request(i, points));
  corpus.push_back(fit_request(2, points));  // repeat: cache + affinity pin
  corpus.push_back("this is not json");
  corpus.push_back("{\"op\":\"ping\"}");

  serve::ServeConfig ref_cfg;
  ref_cfg.threads = 1;
  serve::ServeEngine reference(ref_cfg);
  std::vector<std::string> expected;
  for (const std::string& req : corpus) expected.push_back(reference.handle(req));

  bool identical = true;
  for (const std::string& placement : placements) {
    ReplicaTier tier;
    if (!tier.start(3, 64)) return false;
    serve::RouterConfig rcfg;
    rcfg.replicas = tier.endpoints;
    rcfg.placement = placement;
    serve::Router router(rcfg);
    if (auto started = router.start(); !started) {
      std::fprintf(stderr, "router: start failed: %s\n",
                   started.error().message.c_str());
      tier.shutdown();
      return false;
    }
    for (const serve::Proto proto :
         {serve::Proto::kJson, serve::Proto::kBinary}) {
      serve::Client client(proto);
      if (auto c = client.connect("127.0.0.1", router.port()); !c) {
        identical = false;
        continue;
      }
      for (std::size_t i = 0; i < corpus.size(); ++i) {
        const auto got = client.call(corpus[i]);
        if (!got.has_value() || *got != expected[i]) {
          std::printf("  mismatch [%s/%s] request %zu\n", placement.c_str(),
                      serve::to_string(proto), i);
          identical = false;
        }
      }
      const auto stats = client.call("{\"op\":\"stats\"}");
      if (!stats.has_value() ||
          stats->find("\"router\":true") == std::string::npos ||
          stats->find("\"placement\":\"" + placement + "\"") ==
              std::string::npos) {
        std::printf("  stats op not answered by the router [%s/%s]\n",
                    placement.c_str(), serve::to_string(proto));
        identical = false;
      }
    }
    router.shutdown();
    tier.shutdown();
  }
  return identical;
}

/// One C11 case: drives the serve-protocol `compare` op with an inline
/// observation set and checks which model the zoo selected.
bool zoo_selects(ipso::serve::ServeEngine& engine, const char* label,
                 const std::string& request, const char* expect) {
  const std::string response = engine.handle(request);
  const std::string needle =
      "\"winner\":\"" + std::string(expect) + "\"";
  if (response.find("\"ok\":true") != std::string::npos &&
      response.find(needle) != std::string::npos) {
    std::printf("  %-28s -> %s\n", label, expect);
    return true;
  }
  std::printf("CONTRACT VIOLATION (C11): %s: expected winner '%s', got: "
              "%s\n",
              label, expect, response.c_str());
  return false;
}

/// C11: model selection is shape-driven. The zoo, asked over the serving
/// protocol, must pick Gunther's USL on a contention-shaped q(n) curve
/// (where Amdahl's single parameter cannot express the n*(n-1) term), and
/// IPSO on an Eq. 16 fixed-time series shaped like the paper's Fig. 9
/// curves (sublinear power-law compute scaling plus growing overhead,
/// which neither USL nor the unified model reproduces). A perfectly
/// linear curve must resolve deterministically to Amdahl via the
/// registry-order tie-break (every model fits it exactly).
bool run_zoo_contract() {
  using namespace ipso;
  std::printf("\n# model zoo: serve-protocol compare on synthetic "
              "curves\n");
  serve::ServeEngine engine;
  bool ok = true;

  const auto series_field = [](const stats::Series& s) {
    std::string out = "\"observations\":[";
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (i) out += ",";
      out += "[" + trace::json_double(s[i].x) + "," +
             trace::json_double(s[i].y) + "]";
    }
    return out + "]";
  };
  const std::vector<double> ns{1, 2, 4, 8, 16, 24, 32, 48, 64};

  // Contention-shaped q(n): exactly USL's sigma*(n-1) + kappa*n*(n-1).
  {
    stats::Series s("S(n)");
    const double sigma = 0.05, kappa = 0.002;
    for (const double n : ns) {
      s.add(n, n / (1.0 + sigma * (n - 1.0) + kappa * n * (n - 1.0)));
    }
    ok = zoo_selects(engine, "contention q(n)",
                     "{\"op\":\"compare\",\"workload\":\"fixed-size\"," +
                         series_field(s) + "}",
                     "usl") &&
         ok;
  }

  // Fig. 9-shaped fixed-time curve: IPSO Eq. 16 with a sublinear compute
  // exponent and a growing overhead term (eta=0.95, delta=0.5,
  // beta=0.005, gamma=1.3).
  {
    stats::Series s("S(n)");
    const double eta = 0.95, delta = 0.5, beta = 0.005, gamma = 1.3;
    for (const double n : ns) {
      const double num = eta * std::pow(n, delta) + 1.0 - eta;
      const double den =
          eta * std::pow(n, delta - 1.0) * (1.0 + beta * std::pow(n, gamma)) +
          1.0 - eta;
      s.add(n, num / den);
    }
    ok = zoo_selects(engine, "fig9 fixed-time Eq.16",
                     "{\"op\":\"compare\",\"workload\":\"fixed-time\","
                     "\"eta\":0.95," +
                         series_field(s) + "}",
                     "ipso") &&
         ok;
  }

  // Perfect linear speedup: every model is exact; registry order decides.
  {
    stats::Series s("S(n)");
    for (const double n : {1.0, 2.0, 4.0, 8.0, 16.0}) s.add(n, n);
    ok = zoo_selects(engine, "linear speedup (tie)",
                     "{\"op\":\"compare\",\"workload\":\"fixed-size\"," +
                         series_field(s) + "}",
                     "amdahl") &&
         ok;
  }

  if (ok) {
    std::printf("C11: zoo selection is shape-driven (usl on contention, "
                "ipso on Eq. 16, amdahl on the exact tie)\n");
  }
  return ok;
}

/// The --router mode: sweep, C7 byte-identity, C8 IPSO fit of the tier.
int run_router_bench(int argc, char** argv) {
  using namespace ipso;

  const std::size_t total = static_cast<std::size_t>(
      std::max(64, flag_int(argc, argv, "--router-requests", 2400)));
  const int points = std::max(8, flag_int(argc, argv, "--router-points", 96));
  const std::size_t keys = static_cast<std::size_t>(
      std::max(4, flag_int(argc, argv, "--router-keys", 48)));
  const double skew = flag_double(argc, argv, "--zipf", 1.2);
  const std::vector<std::size_t> replica_axis =
      flag_list(argc, argv, "--router-replicas", {1, 2, 3});
  const std::size_t conns = static_cast<std::size_t>(
      std::max(1, flag_int(argc, argv, "--router-conns", 4)));
  const std::size_t batch = static_cast<std::size_t>(
      std::max(1, flag_int(argc, argv, "--router-batch", 16)));
  const std::vector<std::string> placements = {"hash", "range", "affinity"};

  std::printf("# bench_serve_load --router: %zu requests over %zu keys "
              "(zipf %.2f), %d observations per series, %zu conns x "
              "batch %zu\n\n",
              total, keys, skew, points, conns, batch);

  std::vector<std::string> keyspace;
  keyspace.reserve(keys);
  for (std::size_t k = 0; k < keys; ++k) {
    keyspace.push_back(fit_request(static_cast<int>(k), points));
  }
  const std::vector<std::size_t> schedule =
      zipf_schedule(total, keys, skew, 0x1b50u);

  bool ok = true;

  // --- C7: the tier is invisible -------------------------------------
  std::printf("byte-identity: 3 replicas x {hash, range, affinity} x "
              "{json, binary} vs a standalone engine\n");
  if (run_router_identity(placements, std::min(points, 64))) {
    std::printf("C7: every routed response byte-identical to single-node\n");
  } else {
    std::printf("CONTRACT VIOLATION (C7): routed responses diverge from a "
                "standalone engine\n");
    ok = false;
  }

  // --- throughput sweep + C8 fit ------------------------------------
  std::printf("\n%-10s %9s %12s %10s\n", "placement", "replicas", "req/s",
              "requests");
  for (const std::string& placement : placements) {
    stats::Series q("q(n)");
    stats::Series ex("EX(n)");
    double t1 = 0.0;
    bool cells_ok = true;
    for (const std::size_t n : replica_axis) {
      const NetCell cell =
          run_router_cell(placement, n, keyspace, schedule, conns, batch);
      std::printf("%-10s %9zu %12.1f %10zu%s\n", placement.c_str(), n,
                  cell.reqs_per_s, cell.requests, cell.ok ? "" : "  FAILED");
      if (!cell.ok || cell.reqs_per_s <= 0.0) {
        cells_ok = false;
        continue;
      }
      if (n == replica_axis.front()) t1 = cell.reqs_per_s;
      if (t1 > 0.0) {
        const double nn = static_cast<double>(n);
        const double speedup = cell.reqs_per_s / t1;
        ex.add(nn, 1.0);
        q.add(nn, speedup > 0.0 ? nn / speedup - 1.0 : 0.0);
      }
    }
    if (!cells_ok || q.size() < replica_axis.size()) {
      std::printf("CONTRACT VIOLATION (C8): %s sweep produced no usable "
                  "throughput curve\n", placement.c_str());
      ok = false;
      continue;
    }

    // The tier itself is a fixed-size IPSO workload: the request stream is
    // constant while n grows, all added cost is scale-out-induced, so the
    // whole curve lands in the q(n) = beta*n^gamma term (delta = 0 by
    // construction for fixed-size — exactly the paper's Section IV).
    FactorMeasurements m;
    m.eta = 1.0;
    m.ex = ex;
    m.q = q;
    const Expected<FactorFits> fits =
        fit_factors(WorkloadType::kFixedSize, m);
    if (!fits.has_value()) {
      std::printf("CONTRACT VIOLATION (C8): fit_factors failed for %s "
                  "(%s)\n", placement.c_str(), to_string(fits.error()));
      ok = false;
      continue;
    }
    const Classification cls = classify(fits->params);
    std::printf("  IPSO fit [%s]: delta=%.3f gamma=%.3f beta=%.3f "
                "class=%.*s\n",
                placement.c_str(), fits->params.delta, fits->params.gamma,
                fits->params.beta,
                static_cast<int>(to_string(cls.type).size()),
                to_string(cls.type).data());
    // Gunther's USL on the same q(n) series, now through the model zoo's
    // shared implementation (src/models/usl.h) instead of a bench-local
    // copy of the normal equations.
    if (const auto usl = models::UslModel::fit_from_q(q); usl.has_value()) {
      std::printf("  USL cross-check [%s]: sigma=%.3f kappa=%.3f (same "
                  "q(n) series)\n",
                  placement.c_str(), usl->sigma, usl->kappa);
    } else {
      std::printf("  USL cross-check [%s]: degenerate series (%s)\n",
                  placement.c_str(), to_string(usl.error()));
    }
  }
  if (ok) {
    std::printf("\nC8: fit_factors succeeded on every placement's "
                "throughput curve\n");
  }

  const double rss = peak_rss_mib();
  std::printf("peak RSS: %.1f MiB\n", rss);
  if (rss > 512.0) {
    std::printf("CONTRACT VIOLATION (C4): peak RSS %.1f MiB exceeds the "
                "512 MiB ceiling\n", rss);
    ok = false;
  }

  std::printf("\n%s\n", ok ? "all serving contracts hold"
                           : "SERVING CONTRACT VIOLATIONS -- see above");
  return ok ? 0 : 1;
}

/// The warm-restart phase: one engine fits the corpus cold into a
/// persistent store directory and drains (flushing the warm set); a second
/// engine on the same directory replays the corpus. Enforces C9 (warm
/// responses byte-identical, zero fits performed) and C10 (a flipped byte
/// in a persisted segment is skipped with a counter and re-fit, never a
/// crash or a wrong answer). Returns false on contract violation.
bool run_store_phase(const std::vector<std::string>& workload,
                     std::size_t threads, int argc, char** argv) {
  namespace fs = std::filesystem;
  using namespace ipso;

  const auto dir_flag =
      trace::string_flag_from_args(argc, argv, "--store-dir", "");
  if (!dir_flag.has_value()) {
    std::printf("CONTRACT VIOLATION (C9): %s\n",
                dir_flag.error().to_string().c_str());
    return false;
  }
  std::string store_dir = *dir_flag;
  bool own_dir = false;
  if (store_dir.empty()) {
    std::string tmpl =
        (fs::temp_directory_path() / "bench_store_XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      std::printf("store: mkdtemp failed; skipping warm-restart phase\n");
      return true;
    }
    store_dir = tmpl;
    own_dir = true;
  }

  std::printf("\n# warm restart: persistent fit store at %s\n",
              store_dir.c_str());

  serve::ServeConfig cfg;
  cfg.threads = threads;
  cfg.cache_capacity = workload.size();
  cfg.store_dir = store_dir;

  bool ok = true;
  PhaseResult cold;
  {
    serve::ServeEngine engine(cfg);
    if (!engine.store_status()) {
      std::printf("CONTRACT VIOLATION (C9): store failed to open: %s\n",
                  engine.store_status().message.c_str());
      return false;
    }
    cold = run_phase(engine, workload);
    engine.drain();  // the SIGTERM path: flushes the warm set to disk
  }

  PhaseResult warm;
  std::size_t warm_fits = 0, disk_hits = 0, recovered = 0;
  {
    serve::ServeEngine engine(cfg);
    recovered = engine.store_stats().disk.records;
    warm = run_phase(engine, workload);
    warm_fits = engine.fits_performed();
    disk_hits = engine.stats().disk_hits;
  }
  print_phase("cold-start", cold);
  print_phase("warm-start", warm);
  const double cold_p50 = percentile(cold.latencies_ms, 0.50);
  const double warm_p50 = percentile(warm.latencies_ms, 0.50);
  std::printf("\nwarm-restart fit latency: cold p50 %.3f ms vs warm p50 "
              "%.3f ms (%.1fx); recovered=%zu disk_hits=%zu\n",
              cold_p50, warm_p50, warm_p50 > 0 ? cold_p50 / warm_p50 : 1e9,
              recovered, disk_hits);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    if (cold.responses[i] != warm.responses[i]) ++mismatches;
  }
  if (mismatches != 0 || warm_fits != 0) {
    std::printf("CONTRACT VIOLATION (C9): warm restart must serve "
                "byte-identical responses without re-fitting "
                "(mismatches=%zu fits_performed=%zu)\n",
                mismatches, warm_fits);
    ok = false;
  } else {
    std::printf("C9: %zu/%zu warm responses byte-identical, 0 fits "
                "performed after restart\n",
                workload.size(), workload.size());
  }

  // --- C10: flip one persisted byte, restart, expect a graceful skip ---
  std::string victim;
  for (const auto& entry : fs::directory_iterator(store_dir)) {
    if (entry.path().extension() == ".seg" &&
        (victim.empty() || entry.path().string() < victim)) {
      victim = entry.path().string();
    }
  }
  std::string img;
  if (!victim.empty()) {
    std::ifstream in(victim, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    img = os.str();
  }
  // Past the segment header and the first record's header: lands in the
  // first record's key/value bytes, which its checksum covers.
  const std::size_t corrupt_at =
      store::kSegmentHeaderBytes + store::kRecordHeaderBytes + 48;
  if (img.size() <= corrupt_at) {
    std::printf("CONTRACT VIOLATION (C10): no persisted segment large "
                "enough to corrupt\n");
    ok = false;
  } else {
    img[corrupt_at] = static_cast<char>(img[corrupt_at] ^ 0x20);
    std::ofstream(victim, std::ios::binary | std::ios::trunc)
        .write(img.data(), static_cast<std::streamsize>(img.size()));

    serve::ServeEngine engine(cfg);
    const std::size_t skipped = engine.store_stats().disk.skipped_total();
    const PhaseResult replay = run_phase(engine, workload);
    std::size_t replay_mismatches = 0;
    for (std::size_t i = 0; i < workload.size(); ++i) {
      if (cold.responses[i] != replay.responses[i]) ++replay_mismatches;
    }
    const std::size_t refits = engine.fits_performed();
    if (skipped == 0 || refits == 0 || replay_mismatches != 0) {
      std::printf("CONTRACT VIOLATION (C10): corrupted record must be "
                  "skipped (skipped=%zu), re-fit (re-fits=%zu), and still "
                  "answered byte-identically (mismatches=%zu)\n",
                  skipped, refits, replay_mismatches);
      ok = false;
    } else {
      std::printf("C10: corruption skipped gracefully (skipped=%zu "
                  "re-fits=%zu, all %zu responses still byte-identical)\n",
                  skipped, refits, workload.size());
    }
  }

  if (own_dir) {
    std::error_code ec;
    fs::remove_all(store_dir, ec);
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipso;

  if (trace::handle_info_flags(
          argc, argv,
          "bench_serve_load: closed-loop load generator for ipso::serve\n"
          "(cold/hot/saturation phases; enforces the cache-speedup,\n"
          "byte-identity, and bounded-backpressure contracts; plus a\n"
          "socket sweep of connections x batch x protocol over the epoll\n"
          "front end). --router switches to the sharded-tier sweep:\n"
          "replicas x placement x Zipf key skew through an in-process\n"
          "Router, with the tier's own throughput curve fitted by\n"
          "fit_factors (C7 byte-identity, C8 successful IPSO fit).\n"
          "A warm-restart phase persists fits to a store dir, restarts,\n"
          "and replays (C9 byte-identical warm serving without re-fits,\n"
          "C10 graceful skip of corrupted records). A model-zoo phase\n"
          "drives the compare op on synthetic curves (C11 shape-driven\n"
          "selection: usl on contention, ipso on Eq. 16, amdahl on the\n"
          "exact tie).\n"
          "Extra flags: --requests N, --points N, --conns LIST,\n"
          "--batch LIST, --net-requests N, --no-net, --store-dir DIR,\n"
          "--no-store, --router,\n"
          "--router-requests N, --router-points N, --router-keys N,\n"
          "--router-replicas LIST, --router-conns N, --router-batch N,\n"
          "--zipf S")) {
    return 0;
  }

  obs::TraceSession trace_session(trace::trace_out_from_args(argc, argv));
  if (has_flag(argc, argv, "--router")) {
    return run_router_bench(argc, argv);
  }
  // Default shape: few distinct fits, each over a long observation trace.
  // The changepoint search is O(points^2) while request parsing is
  // O(points), so large traces are exactly the workload the fit cache is
  // built to amortize.
  const int requests = std::max(8, flag_int(argc, argv, "--requests", 20));
  const int points = std::max(8, flag_int(argc, argv, "--points", 4096));
  const std::size_t threads =
      trace::runner_config_from_args(argc, argv).threads;

  std::printf("# bench_serve_load: %d distinct fits, %d observations per "
              "factor series, threads=%zu\n\n",
              requests, points, threads);

  std::vector<std::string> workload;
  workload.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    workload.push_back(fit_request(i, points));
  }

  bool ok = true;

  // --- cold vs hot: the fit cache -------------------------------------
  serve::ServeConfig cfg;
  cfg.threads = threads;
  cfg.cache_capacity = static_cast<std::size_t>(requests);
  {
    serve::ServeEngine engine(cfg);
    const PhaseResult cold = run_phase(engine, workload);
    const PhaseResult hot = run_phase(engine, workload);
    print_phase("cold", cold);
    print_phase("hot", hot);

    const double cold_p50 = percentile(cold.latencies_ms, 0.50);
    const double hot_p50 = percentile(hot.latencies_ms, 0.50);
    const double speedup = hot_p50 > 0 ? cold_p50 / hot_p50 : 1e9;
    std::printf("\ncache speedup (cold p50 / hot p50): %.1fx\n", speedup);
    if (speedup < 10.0) {
      std::printf("CONTRACT VIOLATION (C1): cached fits only %.1fx faster "
                  "than cold (need >= 10x)\n", speedup);
      ok = false;
    }

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < cold.responses.size(); ++i) {
      if (cold.responses[i] != hot.responses[i]) ++mismatches;
    }
    if (mismatches) {
      std::printf("CONTRACT VIOLATION (C2): %zu/%zu cached responses differ "
                  "from their cold counterparts\n",
                  mismatches, cold.responses.size());
      ok = false;
    } else {
      std::printf("byte-identity: %zu/%zu hot responses identical to cold\n",
                  cold.responses.size(), cold.responses.size());
    }

    const serve::ServeStats s = engine.stats();
    std::printf("cache: hits=%zu misses=%zu (fits performed: %zu)\n",
                s.cache_hits, s.cache_misses, engine.fits_performed());
  }

  // --- warm restart: the persistent tier ------------------------------
  if (!has_flag(argc, argv, "--no-store")) {
    if (!run_store_phase(workload, threads, argc, argv)) ok = false;
  }

  // --- model zoo: C11 shape-driven selection --------------------------
  if (!run_zoo_contract()) ok = false;

  // --- saturation: bounded admission ----------------------------------
  std::printf("\n");
  serve::ServeConfig sat_cfg;
  sat_cfg.threads = threads;
  sat_cfg.queue_capacity = 8;
  sat_cfg.cache_capacity = 4;
  {
    serve::ServeEngine engine(sat_cfg);
    // Open-loop burst: fire every request without waiting, far beyond the
    // queue capacity, then collect.
    std::vector<std::future<std::string>> inflight;
    inflight.reserve(workload.size());
    const Clock::time_point start = Clock::now();
    for (const std::string& req : workload) {
      inflight.push_back(engine.submit(req));
    }
    std::size_t answered = 0, overloaded = 0;
    for (auto& f : inflight) {
      const std::string response = f.get();
      ++answered;
      if (response.find("\"error\":\"overloaded\"") != std::string::npos) {
        ++overloaded;
      }
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    const serve::ServeStats s = engine.stats();
    std::printf("saturation   %6zu req  %8.1f req/s  answered=%zu "
                "overloaded=%zu peak_queue=%zu (cap %zu)\n",
                inflight.size(), elapsed > 0 ? answered / elapsed : 0.0,
                answered, overloaded, s.peak_queue_depth,
                sat_cfg.queue_capacity);
    if (overloaded == 0) {
      std::printf("CONTRACT VIOLATION (C3): burst of %zu over capacity %zu "
                  "produced no overloaded rejections\n",
                  inflight.size(), sat_cfg.queue_capacity);
      ok = false;
    }
    if (s.peak_queue_depth > sat_cfg.queue_capacity) {
      std::printf("CONTRACT VIOLATION (C3): peak queue depth %zu exceeds "
                  "capacity %zu\n",
                  s.peak_queue_depth, sat_cfg.queue_capacity);
      ok = false;
    }
  }

  // --- socket sweep: connections x batch x protocol -------------------
  if (!has_flag(argc, argv, "--no-net")) {
    std::vector<std::size_t> conns_axis =
        flag_list(argc, argv, "--conns", {1, 16, 256, 1024});
    const std::vector<std::size_t> batch_axis =
        flag_list(argc, argv, "--batch", {1, 16, 64});
    const std::size_t net_requests = static_cast<std::size_t>(
        std::max(1, flag_int(argc, argv, "--net-requests", 16384)));

    const std::size_t max_conns =
        *std::max_element(conns_axis.begin(), conns_axis.end());
    const std::size_t fd_limit = raise_fd_limit(2 * max_conns + 256);
    if (fd_limit < 2 * max_conns + 64) {
      // Both socket ends live in this process; drop cells the fd budget
      // cannot hold rather than fail on EMFILE mid-sweep.
      std::vector<std::size_t> kept;
      for (std::size_t c : conns_axis) {
        if (2 * c + 64 <= fd_limit) kept.push_back(c);
      }
      std::printf("\nnet: fd limit %zu; dropping connection counts above "
                  "%zu\n", fd_limit, (fd_limit - 64) / 2);
      conns_axis = kept;
    }

    std::printf("\n# socket sweep: closed-loop pings over the epoll front "
                "end (req/s)\n");
    std::printf("%-8s %8s %8s %12s %10s\n", "proto", "conns", "batch",
                "req/s", "requests");

    double json_batched = 0.0, binary_batched = 0.0;
    bool c5_held = conns_axis.empty();  // vacuous only if sweep is empty
    const std::size_t c5_conns =
        conns_axis.empty()
            ? 0
            : *std::max_element(conns_axis.begin(), conns_axis.end());
    for (const serve::Proto proto :
         {serve::Proto::kJson, serve::Proto::kBinary}) {
      for (const std::size_t conns : conns_axis) {
        for (const std::size_t batch : batch_axis) {
          const NetCell cell =
              run_net_cell(proto, conns, batch, net_requests, threads);
          std::printf("%-8s %8zu %8zu %12.1f %10zu%s\n",
                      serve::to_string(proto), conns, batch,
                      cell.reqs_per_s, cell.requests,
                      cell.ok ? "" : "  FAILED");
          if (!cell.ok) ok = false;
          if (batch >= 16) {
            (proto == serve::Proto::kBinary ? binary_batched
                                            : json_batched) +=
                cell.reqs_per_s;
          }
          if (proto == serve::Proto::kBinary && conns == c5_conns &&
              cell.ok) {
            c5_held = true;
          }
        }
      }
    }

    if (!c5_held) {
      std::printf("CONTRACT VIOLATION (C5): binary protocol failed to "
                  "sustain %zu concurrent connections\n", c5_conns);
      ok = false;
    } else if (c5_conns > 0) {
      std::printf("\nC5: binary protocol sustained %zu concurrent "
                  "connections with every response correct\n", c5_conns);
    }
    if (binary_batched > 0.0 || json_batched > 0.0) {
      std::printf("C6: aggregate req/s at batch >= 16: binary %.1f vs "
                  "json %.1f (%.2fx)\n",
                  binary_batched, json_batched,
                  json_batched > 0 ? binary_batched / json_batched : 0.0);
      if (binary_batched <= json_batched) {
        std::printf("CONTRACT VIOLATION (C6): binary batched protocol "
                    "does not beat JSON lines at batch >= 16\n");
        ok = false;
      }
    }
  }

  print_mutex_profile();

  const double rss = peak_rss_mib();
  std::printf("peak RSS: %.1f MiB\n", rss);
  if (rss > 512.0) {
    std::printf("CONTRACT VIOLATION (C4): peak RSS %.1f MiB exceeds the "
                "512 MiB ceiling\n", rss);
    ok = false;
  }

  std::printf("\n%s\n", ok ? "all serving contracts hold"
                           : "SERVING CONTRACT VIOLATIONS -- see above");
  return ok ? 0 : 1;
}
