/// The paper's memory-bounded claim (Section IV + Fig. 6): "for all the
/// cases studied in this paper where the working data sets are memory
/// bounded, g(n) ~ n with high precision, i.e., almost the same as that for
/// the fixed-time workload. For this reason, we assume that the Gustafson's
/// and Sun-Ni's models are the same". This bench runs the Sun-Ni sweep mode
/// (each unit takes at most one 128 MB block of a large working set),
/// measures g(n) = EX(n), and compares the resulting speedup against
/// Gustafson's.

#include "obs/export.h"
#include "stats/regression.h"
#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "trace/report.h"
#include "workloads/sort.h"
#include "workloads/wordcount.h"

#include <iostream>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "The paper's memory-bounded claim (Section IV + Fig. 6): \"for all the")) {
    return 0;
  }
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));
  const auto base = sim::default_emr_cluster(1);
  // A working set big enough that 200 blocks never exhaust it: the
  // memory bound, not the data, limits each unit's share.
  trace::MrSweepConfig mem_sweep;
  mem_sweep.type = WorkloadType::kMemoryBounded;
  mem_sweep.bytes = 64e9;  // 64 GB >> 200 x 128 MB
  mem_sweep.ns = {1, 2, 4, 8, 16, 32, 64, 96, 128, 160, 200};
  mem_sweep.repetitions = 1;

  trace::MrSweepConfig ft_sweep = mem_sweep;
  ft_sweep.type = WorkloadType::kFixedTime;
  ft_sweep.bytes = 128e6;

  for (const auto& spec : {wl::wordcount_spec(), wl::sort_spec()}) {
    const auto mem = runner.run_mr_sweep(spec, base, mem_sweep);
    const auto ft = runner.run_mr_sweep(spec, base, ft_sweep);

    trace::print_banner(std::cout, "Memory-bounded (Sun-Ni) vs fixed-time "
                                   "(Gustafson): " + spec.name);
    auto g = mem.factors.ex;
    g.set_name("measured g(n)");
    auto mem_speedup = mem.speedup;
    mem_speedup.set_name("S(n) memory-bounded");
    auto ft_speedup = ft.speedup;
    ft_speedup.set_name("S(n) fixed-time");
    trace::print_series_table(std::cout, "n",
                              {g, mem_speedup, ft_speedup}, 3);

    const auto fit = stats::fit_linear(mem.factors.ex);
    std::cout << "g(n) linear fit: slope " << trace::fmt(fit.slope, 4)
              << ", intercept " << trace::fmt(fit.intercept, 3)
              << ", R^2 " << trace::fmt(fit.r_squared, 6)
              << "  (paper: g(n) ~ n with high precision)\n";
    double worst = 0.0;
    for (std::size_t i = 0; i < mem.speedup.size(); ++i) {
      worst = std::max(worst, std::abs(mem.speedup[i].y - ft.speedup[i].y) /
                                  ft.speedup[i].y);
    }
    std::cout << "max relative speedup gap memory-bounded vs fixed-time: "
              << trace::fmt(100.0 * worst, 2) << "%\n";
  }
  std::cout << "\nconclusion: with data-intensive (block-capped) working "
               "sets, Sun-Ni's model coincides with Gustafson's — the "
               "paper's justification for studying only fixed-time and "
               "fixed-size types\n";
  return 0;
}
