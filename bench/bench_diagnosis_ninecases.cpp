/// Section V of the paper applies IPSO as a diagnostic tool to nine cases:
/// four MapReduce fixed-time benchmarks, Collaborative Filtering
/// (fixed-size, from Orchestra [12]), and four Spark benchmarks. This bench
/// runs the recommended six-step diagnostic procedure end-to-end on all
/// nine simulated cases and prints the matched scaling type and root cause.

#include "obs/export.h"
#include "core/diagnose.h"
#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "trace/report.h"
#include "workloads/bayes.h"
#include "workloads/collab_filter.h"
#include "workloads/nweight.h"
#include "workloads/qmc_pi.h"
#include "workloads/random_forest.h"
#include "workloads/sort.h"
#include "workloads/svm.h"
#include "workloads/terasort.h"
#include "workloads/wordcount.h"

#include <iostream>

using namespace ipso;

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Section V of the paper applies IPSO as a diagnostic tool to nine cases:")) {
    return 0;
  }
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));
  std::vector<std::vector<std::string>> rows;

  // --- four MapReduce cases (fixed-time) with factor measurements
  for (const auto& spec : {wl::qmc_pi_spec(), wl::wordcount_spec(),
                           wl::sort_spec(), wl::terasort_spec()}) {
    trace::MrSweepConfig sweep;
    sweep.type = WorkloadType::kFixedTime;
    sweep.ns = {1, 2, 4, 8, 16, 32, 64, 96, 128, 160};
    sweep.repetitions = 1;
    const auto r =
        runner.run_mr_sweep(spec, sim::default_emr_cluster(1), sweep);
    const auto d =
        diagnose(WorkloadType::kFixedTime, r.speedup, r.factors).value();
    trace::print_banner(std::cout, "Case: " + spec.name + " (MapReduce)");
    std::cout << d.summary;
    rows.push_back({spec.name, "MapReduce/fixed-time",
                    std::string(to_string(d.best_guess))});
  }

  // --- Collaborative Filtering (fixed-size)
  {
    trace::SparkSweepConfig sweep;
    sweep.type = WorkloadType::kFixedTime;
    sweep.tasks_per_executor = 1;
    sweep.ms = {1, 10, 30, 60, 90, 120};
    sweep.params.first_wave_overhead = 0.45;
    const auto r = runner.run_spark_sweep(
        [](std::size_t n) { return wl::collab_filter_app(n); },
        sim::default_emr_cluster(1), sweep);
    const auto d =
        diagnose(WorkloadType::kFixedSize, r.speedup, r.factors).value();
    trace::print_banner(std::cout, "Case: CollaborativeFiltering (Spark)");
    std::cout << d.summary;
    rows.push_back({"CollaborativeFiltering", "Spark/fixed-size",
                    std::string(to_string(d.best_guess))});
  }

  // --- four Spark ML/graph cases, fixed-size dimension
  auto cluster = sim::default_emr_cluster(1);
  cluster.scheduler.contention_coeff = 5e-4;
  for (const auto& app : {wl::bayes_app(), wl::random_forest_app(),
                          wl::svm_app(), wl::nweight_app()}) {
    trace::SparkSweepConfig sweep;
    sweep.type = WorkloadType::kFixedSize;
    sweep.total_tasks = 192;
    sweep.ms = {1, 4, 16, 48, 64, 96, 128, 160, 192};
    const auto r = runner.run_spark_sweep(
        [&](std::size_t) { return app; }, cluster, sweep);
    const auto d = diagnose(WorkloadType::kFixedSize, r.speedup).value();
    trace::print_banner(std::cout, "Case: " + app.name + " (Spark)");
    std::cout << d.summary;
    rows.push_back({app.name, "Spark/fixed-size",
                    std::string(to_string(d.best_guess))});
  }

  trace::print_banner(std::cout, "Summary: nine-case diagnosis");
  trace::print_table(std::cout, {"case", "setting", "matched type"}, rows);
  std::cout << "paper expectation: QMC It; WordCount It/IIt; Sort, TeraSort "
               "IIIt,1; CF IVs; the four Spark apps IVs on the fixed-size "
               "dimension\n";
  return 0;
}
