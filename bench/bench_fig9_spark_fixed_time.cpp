/// Fig. 9 of the paper: Spark benchmarks (Bayes, RandomForest, SVM,
/// NWeight) projected onto the fixed-time dimension — speedup vs m with
/// N/m held at 1, 2, 4 and 8. Expected ordering at every m: 4 > 2 > 1
/// (larger per-executor load amortizes the first-wave scheduling and
/// deserialization cost) while 8 falls below 4 (executor RAM pressure
/// spills persistent RDDs to disk).

#include "obs/export.h"
#include "stats/surface.h"
#include "trace/cli_opts.h"
#include "trace/experiment.h"
#include "trace/runner.h"
#include "trace/report.h"
#include "workloads/bayes.h"
#include "workloads/nweight.h"
#include "workloads/random_forest.h"
#include "workloads/svm.h"

#include <iostream>

using namespace ipso;

namespace {

sim::ClusterConfig spark_cluster() {
  auto cfg = sim::default_emr_cluster(1);
  // Centralized-scheduler contention: per-task dispatch cost grows with m
  // (the paper cites Canary's observation of quadratic scheduling growth).
  cfg.scheduler.contention_coeff = 5e-4;
  cfg.scheduler.contention_exponent = 1.0;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Fig. 9 of the paper: Spark benchmarks (Bayes, RandomForest, SVM,")) {
    return 0;
  }
  const trace::CliOptions opts = trace::parse_cli_options(argc, argv);
  const obs::TraceSession trace_session(opts.trace_out);
  trace::ExperimentRunner runner(opts.runner);
  const auto base = spark_cluster();
  const std::vector<double> ms{1, 2, 4, 8, 16, 24, 32, 48, 64};
  // Optional fault injection (--fail-prob P, --speculate [F],
  // --max-retries K); inactive by default, leaving the output unchanged.
  const sim::FaultModelParams faults = opts.faults;

  for (const auto& app : {wl::bayes_app(), wl::random_forest_app(),
                          wl::svm_app(), wl::nweight_app()}) {
    trace::print_banner(std::cout, "Fig. 9: " + app.name +
                                       " — fixed-time dimension (N/m fixed)");
    std::vector<stats::Series> curves;
    std::vector<stats::SurfacePoint> samples;  // (N, m, S) for the surface
    for (std::size_t k : {1u, 2u, 4u, 8u}) {
      trace::SparkSweepConfig sweep;
      sweep.type = WorkloadType::kFixedTime;
      sweep.tasks_per_executor = k;
      sweep.ms = ms;
      sweep.params.faults = faults;
      auto r = runner.run_spark_sweep(
          [&](std::size_t) { return app; }, base, sweep);
      for (const auto& p : r.points) {
        samples.push_back({static_cast<double>(p.total_tasks), p.m,
                           p.speedup});
      }
      auto s = r.speedup;
      s.set_name("N/m=" + std::to_string(k) +
                 (r.points.back().spilled ? " (spill)" : ""));
      curves.push_back(std::move(s));
    }
    trace::print_series_table(std::cout, "m", curves, 2);

    // The paper plots "projected curves of the matched two-dimensional
    // surfaces as functions of N and m": fit S(N, m) and project the
    // N = k·m slices as the trend guide.
    const auto surface = stats::QuadraticSurface::fit(samples);
    std::vector<stats::Series> projections;
    for (std::size_t k : {1u, 2u, 4u}) {
      projections.push_back(surface.slice(
          ms, [k](double m) { return static_cast<double>(k) * m; },
          "matched N/m=" + std::to_string(k)));
    }
    std::cout << "matched surface R^2 = " << trace::fmt(surface.r_squared(), 3)
              << "; projected trend curves:\n";
    trace::print_series_table(std::cout, "m", projections, 2);
  }
  std::cout << "\nexpected: N/m = 4 > 2 > 1 at every m; N/m = 8 < 4 due to "
               "executor RAM pressure (paper Section V.B)\n";
  return 0;
}
