/// Fig. 10 of the paper: Spark benchmarks projected onto the fixed-size
/// dimension — speedup vs m with the problem size N fixed. For large N all
/// four applications peak and then fall (type IVs) because the
/// scale-out-induced overhead (driver-serialized broadcast + per-task
/// scheduling contention) grows superlinearly with m — in stark contrast
/// with Amdahl's IIIs prediction.

#include "obs/export.h"
#include "core/diagnose.h"
#include "stats/linalg.h"
#include "trace/experiment.h"
#include "trace/cli_opts.h"
#include "trace/runner.h"
#include "trace/report.h"
#include "workloads/bayes.h"
#include "workloads/nweight.h"
#include "workloads/random_forest.h"
#include "workloads/svm.h"

#include <iostream>

using namespace ipso;

namespace {

sim::ClusterConfig spark_cluster() {
  auto cfg = sim::default_emr_cluster(1);
  cfg.scheduler.contention_coeff = 5e-4;
  cfg.scheduler.contention_exponent = 1.0;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  if (trace::handle_info_flags(argc, argv,
                               "Fig. 10 of the paper: Spark benchmarks projected onto the fixed-size")) {
    return 0;
  }
  const obs::TraceSession trace_session(
      trace::trace_out_from_args(argc, argv));
  trace::ExperimentRunner runner(trace::runner_config_from_args(argc, argv));
  const auto base = spark_cluster();
  trace::SparkSweepConfig sweep;
  sweep.type = WorkloadType::kFixedSize;
  sweep.total_tasks = 192;
  sweep.ms = {1, 2, 4, 8, 16, 32, 48, 64, 96, 128, 160, 192};
  // Optional fault injection (--fail-prob P, --speculate [F],
  // --max-retries K); inactive by default, leaving the output unchanged.
  sweep.params.faults =
      trace::fault_params_from_args(argc, argv, sweep.params.faults);

  std::vector<stats::Series> curves;
  std::vector<stats::Series> matched;
  std::vector<std::vector<std::string>> verdicts;
  for (const auto& app : {wl::bayes_app(), wl::random_forest_app(),
                          wl::svm_app(), wl::nweight_app()}) {
    auto r = runner.run_spark_sweep([&](std::size_t) { return app; }, base,
                                    sweep);
    auto s = r.speedup;
    s.set_name(app.name);
    const auto d = diagnose(WorkloadType::kFixedSize, s).value();
    verdicts.push_back({app.name, std::string(to_string(d.best_guess)),
                        trace::fmt(s.argmax_x(), 0),
                        trace::fmt(s.max_y(), 2)});

    // Matched trend curve at fixed N (the paper's surface projection);
    // with N constant the 2-D surface degenerates to a polynomial in m,
    // fitted on the past-spill region where the IVs shape lives.
    std::vector<double> ms_fit, s_fit;
    for (const auto& p : r.points) {
      if (!p.spilled) {
        ms_fit.push_back(p.m);
        s_fit.push_back(p.speedup);
      }
    }
    if (ms_fit.size() >= 4) {
      const auto coeffs = stats::polyfit(ms_fit, s_fit, 2);
      stats::Series trend("matched " + app.name);
      for (double m : sweep.ms) {
        if (m >= ms_fit.front()) trend.add(m, stats::polyval(coeffs, m));
      }
      matched.push_back(std::move(trend));
    }
    curves.push_back(std::move(s));
  }

  trace::print_banner(std::cout,
                      "Fig. 10: fixed-size dimension (N = 192), S vs m");
  trace::print_series_table(std::cout, "m", curves, 2);

  if (!matched.empty()) {
    trace::print_banner(std::cout,
                        "Matched trend curves (quadratic regression on the "
                        "no-spill region, as the paper's surface fits)");
    trace::print_series_table(std::cout, "m", matched, 2);
  }

  trace::print_banner(std::cout, "Diagnosis per app (expected IVs)");
  trace::print_table(std::cout, {"app", "type", "peak m", "peak S"},
                     verdicts);
  std::cout << "note: the small-m region runs with spilled RDD caches "
               "(N/m > executor memory), as the paper observes for "
               "over-committed executors\n";
  return 0;
}
