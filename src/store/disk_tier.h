#pragma once

#include "store/io.h"
#include "store/segment.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// \file disk_tier.h
/// Tier 1 of the fit store: cold READY outcomes on disk, as append-only
/// checksummed segments (segment.h) published through an atomically
/// renamed manifest. One DiskTier owns one directory:
///
///   <dir>/MANIFEST          text: format line + ordered segment list
///   <dir>/seg-000001.seg    append-only record segments; the last listed
///   ...                     one is the active (appendable) segment
///
/// Crash-safety invariants:
///  * a segment is named in the manifest *before* its first byte exists, so
///    a crash between the two leaves a listed-but-missing (or empty) file,
///    which recovery treats as zero records — never an error;
///  * the manifest is replaced via temp-file + fsync + rename + directory
///    fsync (io.h), so it is always either the old or the new list;
///  * appends are synced on flush()/rotation, not per record — a crash
///    loses at most the unsynced tail, which the next open() detects as a
///    truncated record and skips with a counter.
///
/// The in-memory index maps key *hashes* to record locations (a canonical
/// fit key embeds whole observation series, so resident full keys would
/// dwarf the index); every get() re-reads the record and compares the full
/// key byte-for-byte, so hash collisions cost one extra read, never a
/// wrong answer.
///
/// Not internally synchronized: the owner (TieredStore) serializes access.

namespace ipso::store {

struct DiskTierConfig {
  std::string dir;
  /// Active segment is sealed and a fresh one started past this size.
  std::uint64_t max_segment_bytes = 4ull << 20;
};

/// Monotonic counters + current sizes. `skipped_*`/`truncated`/
/// `bad_segments` accumulate over every recovery scan this process ran.
struct DiskTierStats {
  std::size_t records = 0;      ///< live index entries
  std::size_t segments = 0;     ///< files listed in the manifest
  std::uint64_t bytes = 0;      ///< on-disk record bytes (incl. headers)
  std::size_t appended = 0;     ///< put() writes
  std::size_t duplicates = 0;   ///< put() calls deduplicated away
  std::size_t recovered = 0;    ///< records restored by open()
  std::size_t skipped_checksum = 0;
  std::size_t skipped_version = 0;
  std::size_t truncated = 0;
  std::size_t bad_segments = 0;
  std::size_t read_errors = 0;  ///< get() decode/IO failures
  std::size_t invalidated = 0;  ///< index entries dropped by invalidate()

  [[nodiscard]] std::size_t skipped_total() const noexcept {
    return skipped_checksum + skipped_version + truncated + bad_segments;
  }
};

class DiskTier {
 public:
  explicit DiskTier(DiskTierConfig cfg);

  /// Creates the directory/manifest if absent, scans every listed segment
  /// and rebuilds the index. Corrupted or version-mismatched records are
  /// counted and skipped, never an error; only real I/O failures (e.g. an
  /// unwritable directory) fail the open.
  [[nodiscard]] IoStatus open();

  [[nodiscard]] bool is_open() const noexcept { return open_; }

  /// Exact-match lookup; reads the record back from its segment and
  /// verifies the full key. nullopt on absence or any read/decode failure
  /// (counted in read_errors).
  [[nodiscard]] std::optional<std::string> get(const std::string& key);

  /// Appends (key, value) to the active segment, deduplicating on key
  /// (values are a deterministic function of the key, so the first record
  /// wins and repeats are dropped).
  [[nodiscard]] IoStatus put(const std::string& key, std::string_view value);

  /// Drops every index entry for `key` (full-key verified), making it
  /// unreachable to get(). The record bytes stay orphaned in their segment
  /// until compaction (a roadmap item) — because keys embed the whole
  /// observation window, a superseded window's record can never alias a
  /// new window's key, so orphaning is hygiene, not a correctness risk.
  /// Returns the number of entries dropped.
  std::size_t invalidate(const std::string& key);

  /// fsyncs the active segment (the manifest is always already durable).
  [[nodiscard]] IoStatus flush();

  [[nodiscard]] const DiskTierStats& stats() const noexcept { return stats_; }

 private:
  struct Location {
    std::uint32_t segment = 0;  ///< index into segment_files_
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
  };

  [[nodiscard]] std::string segment_path(const std::string& name) const;
  [[nodiscard]] std::string next_segment_name();
  [[nodiscard]] IoStatus write_manifest();
  [[nodiscard]] IoStatus start_segment();  ///< manifest first, then file
  /// Reads + verifies the record at `loc`; nullopt on mismatch.
  [[nodiscard]] std::optional<std::string> read_record(
      const Location& loc, const std::string& expect_key);

  DiskTierConfig cfg_;
  bool open_ = false;
  std::uint64_t next_segment_id_ = 1;
  std::vector<std::string> segment_files_;  ///< manifest order
  AppendFile active_;
  std::unordered_map<std::uint64_t, std::vector<Location>> index_;
  DiskTierStats stats_;
};

}  // namespace ipso::store
