#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

/// \file segment.h
/// The on-disk segment format of the persistent fit store: an append-only
/// sequence of versioned, checksummed records behind an 8-byte segment
/// header. Everything is little-endian, explicitly serialized byte by byte
/// (no struct dumps), so the format is stable across compilers.
///
///   segment  := header record*
///   header   := magic:u32 ("ISEG") version:u8 reserved:u8[3]
///   record   := rmagic:u32 ("IPSR") version:u8
///               key_len:u32 value_len:u32
///               checksum:u64        (FNV-1a 64 over version || key || value)
///               key:u8[key_len] value:u8[value_len]
///
/// Scan behavior (crash safety / corruption tolerance — never a crash):
///  * record magic mismatch, an implausible length, or fewer bytes than a
///    whole record promised => the tail is unreachable; scanning stops and
///    the remainder counts as `truncated` (this is exactly what a crash
///    mid-append leaves behind);
///  * checksum mismatch with a plausible header => that one record is
///    skipped (`skipped_checksum`) and scanning continues at the next;
///  * record version != the scanner's version => skipped
///    (`skipped_version`), scanning continues — the checksum covers the
///    version byte, so this is a deliberate format bump, not corruption.

namespace ipso::store {

inline constexpr std::uint32_t kSegmentMagic = 0x47455349;  // "ISEG" LE
inline constexpr std::uint32_t kRecordMagic = 0x52535049;   // "IPSR" LE
inline constexpr std::uint8_t kSegmentFormatVersion = 1;

/// Header + per-record fixed sizes, for offset math at call sites.
inline constexpr std::size_t kSegmentHeaderBytes = 8;
inline constexpr std::size_t kRecordHeaderBytes = 4 + 1 + 4 + 4 + 8;

/// Upper bound on a single key or value; a length field beyond this is
/// treated as corruption (stops the scan) rather than an allocation.
inline constexpr std::uint32_t kMaxRecordPartBytes = 1u << 30;

/// FNV-1a 64 over `data`, continuing from `h` (seed the first call with
/// kFnvOffsetBasis).
inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data,
                                    std::uint64_t h = kFnvOffsetBasis) noexcept;

/// The 8-byte segment file header.
[[nodiscard]] std::string segment_header();

/// True when `bytes` starts with a valid current-version segment header.
[[nodiscard]] bool check_segment_header(std::string_view bytes);

/// Encodes one record. `version` defaults to the current format and exists
/// so tests (and future migrations) can write records the current scanner
/// must skip-with-a-counter.
[[nodiscard]] std::string encode_record(
    std::string_view key, std::string_view value,
    std::uint8_t version = kSegmentFormatVersion);

/// Outcome counters of one segment scan. `recovered` counts records
/// delivered to the callback; the rest are skip reasons.
struct ScanStats {
  std::size_t recovered = 0;
  std::size_t skipped_checksum = 0;  ///< plausible header, bad payload
  std::size_t skipped_version = 0;   ///< valid record of another version
  std::size_t truncated = 0;         ///< unreachable tails (0 or 1 per scan)
  std::size_t bad_segment = 0;       ///< segment header missing/mismatched

  ScanStats& operator+=(const ScanStats& o) noexcept {
    recovered += o.recovered;
    skipped_checksum += o.skipped_checksum;
    skipped_version += o.skipped_version;
    truncated += o.truncated;
    bad_segment += o.bad_segment;
    return *this;
  }
  [[nodiscard]] std::size_t skipped_total() const noexcept {
    return skipped_checksum + skipped_version + truncated + bad_segment;
  }
};

/// A record delivered by scan_segment: the key/value views (into the
/// scanned buffer) plus the byte range of the whole record in the file,
/// so callers can build an offset index for point reads.
struct ScannedRecord {
  std::string_view key;
  std::string_view value;
  std::uint64_t offset = 0;  ///< record start (the rmagic byte)
  std::uint64_t length = 0;  ///< whole record, header included
};

/// Scans a whole segment image, delivering every intact current-version
/// record in append order. Never throws on hostile input; all skip paths
/// land in `stats`.
ScanStats scan_segment(std::string_view bytes,
                       const std::function<void(const ScannedRecord&)>& fn);

/// Decodes the record at `bytes` (which must start at a record boundary,
/// e.g. read back via the offset/length from a ScannedRecord). Returns
/// false (and touches nothing) unless the record is intact, current
/// version, and exactly `bytes.size()` long.
[[nodiscard]] bool decode_record_at(std::string_view bytes,
                                    std::string_view* key,
                                    std::string_view* value);

}  // namespace ipso::store
