#include "store/tiered_store.h"

#include "obs/metrics.h"
#include "obs/span.h"
#include "store/fit_codec.h"

#include <algorithm>
#include <utility>

namespace ipso::store {

namespace {

/// Cached-id obs instruments for tier crossings (obs/metrics.h; one
/// relaxed load per site while obs is disabled).
struct Instruments {
  obs::Counter spilled{"store.spilled"};
  obs::Counter spill_rejected{"store.spill_rejected"};
  obs::Counter promoted{"store.promoted"};
  obs::Counter recovered{"store.recovered"};
  obs::Counter skipped{"store.skipped"};
};

Instruments& instruments() {
  static Instruments i;
  return i;
}

}  // namespace

TieredStore::TieredStore(TieredStoreConfig cfg)
    : cfg_(std::move(cfg)),
      cache_(cfg_.cache_capacity),
      has_disk_(!cfg_.store_dir.empty()),
      disk_(DiskTierConfig{cfg_.store_dir, cfg_.max_segment_bytes}),
      sketch_(std::max<std::size_t>(cfg_.cache_capacity, 64)) {
  if (has_disk_) {
    cache_.set_evict_hook([this](const std::string& key,
                                 FitOutcomePtr outcome) {
      spill(key, outcome);
    });
    cache_.set_admission_filter(
        [this](const std::string& incoming, const std::string& victim) {
          sync::MutexLock lock(mu_);
          return sketch_.estimate(incoming) >= sketch_.estimate(victim);
        });
  }
}

TieredStore::~TieredStore() { flush(); }

IoStatus TieredStore::open() {
  if (!has_disk_) return {};
  obs::ScopedSpan span("store recover", "store");
  sync::MutexLock lock(mu_);
  const IoStatus st = disk_.open();
  if (st) {
    const DiskTierStats& d = disk_.stats();
    if (d.recovered > 0) {
      instruments().recovered.add(static_cast<double>(d.recovered));
    }
    if (d.skipped_total() > 0) {
      instruments().skipped.add(static_cast<double>(d.skipped_total()));
    }
  }
  return st;
}

TieredStore::Result TieredStore::get_or_compute(
    const std::string& key, const std::function<FitOutcome()>& compute) {
  if (has_disk_) {
    sync::MutexLock lock(mu_);
    sketch_.record(key);
  }

  // `disk_hit` is written by the wrapped compute, which get_or_compute
  // runs synchronously on this thread (leader path) or not at all.
  bool disk_hit = false;
  const auto tiered_compute = [&]() -> FitOutcome {
    if (has_disk_) {
      std::optional<std::string> bytes;
      {
        sync::MutexLock lock(mu_);
        bytes = disk_.get(key);
      }
      if (bytes) {
        if (auto fits = decode_factor_fits(*bytes)) {
          instruments().promoted.add();
          sync::MutexLock lock(mu_);
          ++tier_.disk_hits;
          disk_hit = true;
          return FitOutcome{std::move(*fits)};
        }
        sync::MutexLock lock(mu_);
        ++tier_.decode_failures;
      }
    }
    return compute();
  };

  const FitCache::Result r = cache_.get_or_compute(key, tiered_compute);
  return Result{r.outcome, r.hit, r.coalesced, disk_hit};
}

void TieredStore::spill(const std::string& key, const FitOutcomePtr& outcome) {
  // Only successful fits carry measurement value; errors recompute cheaply.
  if (!outcome || !outcome->fits.has_value()) return;
  sync::MutexLock lock(mu_);
  if (!disk_.is_open()) return;
  if (sketch_.estimate(key) < cfg_.spill_min_freq) {
    ++tier_.spill_rejected;
    instruments().spill_rejected.add();
    return;
  }
  if (disk_.put(key, encode_factor_fits(*outcome->fits))) {
    ++tier_.spilled;
    instruments().spilled.add();
  } else {
    ++tier_.spill_errors;
  }
}

void TieredStore::flush() {
  if (!has_disk_) return;
  obs::ScopedSpan span("store flush", "store");
  const auto ready = cache_.snapshot_ready();
  sync::MutexLock lock(mu_);
  if (!disk_.is_open()) return;
  for (const auto& [key, outcome] : ready) {
    if (!outcome || !outcome->fits.has_value()) continue;
    if (disk_.put(key, encode_factor_fits(*outcome->fits))) {
      ++tier_.spilled;
      instruments().spilled.add();
    } else {
      ++tier_.spill_errors;
    }
  }
  if (auto st = disk_.flush(); !st) ++tier_.spill_errors;
}

bool TieredStore::invalidate(const std::string& key) {
  const bool dram = cache_.erase(key);
  bool disk = false;
  {
    sync::MutexLock lock(mu_);
    if (has_disk_ && disk_.is_open()) disk = disk_.invalidate(key) > 0;
    if (dram || disk) ++tier_.invalidations;
  }
  return dram || disk;
}

void TieredStore::clear_memory() { cache_.clear(); }

TieredStore::Stats TieredStore::stats() const {
  Stats s;
  s.cache = cache_.stats();
  sync::MutexLock lock(mu_);
  s.tier = tier_;
  s.disk = disk_.stats();
  s.persistent = has_disk_;
  return s;
}

std::size_t TieredStore::fits_performed() const {
  const std::size_t misses = cache_.stats().misses;
  sync::MutexLock lock(mu_);
  return misses - std::min(misses, tier_.disk_hits);
}

void TieredStore::set_coalesce_wake_hook(std::function<void()> hook) {
  cache_.set_coalesce_wake_hook(std::move(hook));
}

}  // namespace ipso::store
