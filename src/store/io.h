#pragma once

#include "core/expected.h"

#include <cstddef>
#include <cstdint>
#include <string>

/// \file io.h
/// The persistent store's raw file-I/O seam. Every raw file descriptor and
/// stdio call the store makes lives behind this interface, and the lint
/// wall (rule `raw-file-io`, mirroring `raw-socket-io`) enforces that
/// io.cpp is the only implementation site in library code — short writes,
/// EINTR, fsync ordering and atomic-rename publication are handled once,
/// here, instead of at every call site.
///
/// Durability contract used by the store:
///  * appends are flushed with fsync on seal_and_sync()/close, not per
///    record — a crash loses at most the unsynced tail, which the segment
///    scanner detects as a truncated record and skips with a counter;
///  * atomic_write_file publishes via temp file + fsync + rename + parent
///    directory fsync, so a manifest is either the old or the new bytes,
///    never a torn mix.

namespace ipso::store {

/// Named I/O failure (errno text + the path involved).
struct IoError {
  std::string message;
};

/// Success/failure result for operations with no payload.
struct IoStatus {
  bool ok = true;
  std::string message;

  explicit operator bool() const noexcept { return ok; }
  static IoStatus failure(std::string msg) { return {false, std::move(msg)}; }
};

/// Creates `dir` (and its parents) if absent. Existing directories are fine.
[[nodiscard]] IoStatus make_dirs(const std::string& dir);

/// True when `path` names an existing regular file.
[[nodiscard]] bool file_exists(const std::string& path);

/// Size of `path` in bytes; 0 when absent.
[[nodiscard]] std::uint64_t file_size(const std::string& path);

/// Reads the whole file into a string.
[[nodiscard]] Expected<std::string, IoError> read_file(
    const std::string& path);

/// Reads `len` bytes at `offset`; shorter reads (EOF) return the bytes that
/// exist. Used for point lookups into sealed segment records.
[[nodiscard]] Expected<std::string, IoError> read_range(
    const std::string& path, std::uint64_t offset, std::size_t len);

/// Writes `contents` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, fsync the directory.
[[nodiscard]] IoStatus atomic_write_file(const std::string& path,
                                         const std::string& contents);

/// Append-only file handle (the active segment). Movable, not copyable;
/// closes on destruction without syncing (call seal_and_sync first for
/// durability).
class AppendFile {
 public:
  AppendFile() = default;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  ~AppendFile();

  /// Opens `path` for appending, creating it if absent.
  [[nodiscard]] static Expected<AppendFile, IoError> open(
      const std::string& path);

  /// Appends all of `data`, retrying short writes and EINTR.
  [[nodiscard]] IoStatus append(const std::string& data);

  /// Flushes appended bytes to stable storage.
  [[nodiscard]] IoStatus sync();

  /// Bytes written through this handle plus the size at open.
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

}  // namespace ipso::store
