#pragma once

#include "store/disk_tier.h"
#include "store/fit_cache.h"
#include "store/sketch.h"

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "core/sync.h"

/// \file tiered_store.h
/// The store facade the serve layer talks to: tier 0 is the DRAM FitCache
/// (LRU + coalescing), tier 1 an optional on-disk DiskTier. Data moves
/// between tiers by observed access frequency:
///
///  * **spill (demote)**: a READY outcome evicted from DRAM by capacity
///    pressure is persisted iff the frequency sketch says it was touched
///    more than once — single-touch keys (a one-shot parameter sweep) age
///    out of existence instead of bloating the segments;
///  * **promote**: a DRAM miss consults the disk index before computing;
///    a disk hit decodes the persisted fit (bit-exact, fit_codec.h) and
///    re-enters it into DRAM — no re-fit;
///  * **admission**: when publishing a new entry would evict a resident
///    one, the sketch compares their recent frequencies and the colder of
///    the two is the one demoted (scan resistance).
///
/// Without a directory (store_dir empty) the facade degrades to exactly
/// the old single-tier cache: no sketch vetoes, no I/O, same stats.
///
/// Thread-safe. The disk tier and sketch are guarded by one store mutex.
/// Lock order: the DRAM tier's lock may be held when the store mutex is
/// taken (the admission filter runs inside the cache), never the reverse
/// — every store-mutex holder calls into the disk tier or sketch only,
/// never back into the cache. Fits compute with neither lock held.

namespace ipso::store {

struct TieredStoreConfig {
  std::size_t cache_capacity = 1024;
  /// Empty => DRAM-only (tier 1 disabled).
  std::string store_dir;
  std::uint64_t max_segment_bytes = 4ull << 20;
  /// Minimum sketch estimate for a DRAM-evicted outcome to be spilled.
  std::uint32_t spill_min_freq = 2;
};

/// Tier-crossing counters (DRAM-tier counters live in FitCache::Stats).
struct TierStats {
  std::size_t disk_hits = 0;        ///< promotes: misses served from disk
  std::size_t spilled = 0;          ///< evictions persisted to disk
  std::size_t spill_rejected = 0;   ///< evictions judged too cold to keep
  std::size_t spill_errors = 0;     ///< I/O or encode failures on spill
  std::size_t decode_failures = 0;  ///< disk records that failed to decode
  std::size_t invalidations = 0;    ///< invalidate() calls that dropped data
};

class TieredStore {
 public:
  explicit TieredStore(TieredStoreConfig cfg);
  ~TieredStore();

  /// Opens (or creates) the disk tier when store_dir is set. Returns the
  /// recovery outcome; a DRAM-only store trivially succeeds. Corrupt
  /// records are counted, never an error. Call once before serving.
  [[nodiscard]] IoStatus open() IPSO_EXCLUDES(mu_);

  struct Result {
    FitOutcomePtr outcome;
    bool hit = false;        ///< served from DRAM
    bool coalesced = false;  ///< waited on an in-flight fit
    bool disk_hit = false;   ///< miss served from the persistent tier
  };

  /// The single lookup entry point: DRAM, then disk, then `compute`.
  Result get_or_compute(const std::string& key,
                        const std::function<FitOutcome()>& compute)
      IPSO_EXCLUDES(mu_);

  /// Persists every READY DRAM outcome (unlike eviction spills this is
  /// not frequency-gated: an explicit flush keeps everything) and syncs.
  /// The drain path of the serve engine, and the destructor's last act.
  void flush() IPSO_EXCLUDES(mu_);

  /// Drops the DRAM tier only (persisted records survive — this is what
  /// makes the bench's warm phase honest: byte-identical responses must
  /// come from disk, not from lingering DRAM).
  void clear_memory();

  /// Drops `key` from every tier: the READY DRAM entry and the disk index
  /// entries (record bytes stay orphaned until compaction). The observe
  /// path calls this when a workload's window changes materially — the
  /// superseded window's fit must not survive anywhere, so the next
  /// compare is a genuine refit. Returns true when anything was dropped.
  bool invalidate(const std::string& key) IPSO_EXCLUDES(mu_);

  struct Stats {
    FitCache::Stats cache;
    TierStats tier;
    DiskTierStats disk;
    bool persistent = false;
  };
  [[nodiscard]] Stats stats() const IPSO_EXCLUDES(mu_);

  [[nodiscard]] std::size_t cache_capacity() const noexcept {
    return cache_.capacity();
  }
  [[nodiscard]] bool persistent() const noexcept { return has_disk_; }

  /// Fits actually computed: DRAM misses minus the misses the disk tier
  /// absorbed. The warm-restart contract ("no re-fit") is this == 0.
  [[nodiscard]] std::size_t fits_performed() const IPSO_EXCLUDES(mu_);

  /// Test hook, forwarded to the DRAM tier (see FitCache).
  void set_coalesce_wake_hook(std::function<void()> hook);

 private:
  void spill(const std::string& key, const FitOutcomePtr& outcome)
      IPSO_EXCLUDES(mu_);

  TieredStoreConfig cfg_;
  FitCache cache_;
  bool has_disk_ = false;

  /// Guards disk_, sketch_, tier_ — never cache_. DESIGN.md §13,
  /// capability "store.tiered", order rank 3: acquired *inside* the DRAM
  /// tier's "store.cache" lock (the admission filter runs under it), so no
  /// store-mutex holder may ever call back into cache_.
  mutable sync::Mutex mu_{"store.tiered"};
  DiskTier disk_ IPSO_GUARDED_BY(mu_);
  FrequencySketch sketch_ IPSO_GUARDED_BY(mu_);
  TierStats tier_ IPSO_GUARDED_BY(mu_);
};

}  // namespace ipso::store
