#include "store/segment.h"

namespace ipso::store {

namespace {

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(v & 0xFF));
    v >>= 8;
  }
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(v & 0xFF));
    v >>= 8;
  }
}

std::uint32_t get_u32(std::string_view b, std::size_t off) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(b[off + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t get_u64(std::string_view b, std::size_t off) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(b[off + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t record_checksum(std::uint8_t version, std::string_view key,
                              std::string_view value) noexcept {
  const char v = static_cast<char>(version);
  std::uint64_t h = fnv1a64(std::string_view(&v, 1));
  h = fnv1a64(key, h);
  return fnv1a64(value, h);
}

/// Parsed record header; `total` is the whole record length in bytes.
struct Header {
  std::uint8_t version = 0;
  std::uint32_t key_len = 0;
  std::uint32_t value_len = 0;
  std::uint64_t checksum = 0;
  std::uint64_t total = 0;
};

/// Reads the fixed header at `off`. Returns false when the bytes cannot be
/// a record start (bad magic, implausible lengths, or not enough bytes for
/// the header) — the caller treats that as an unreachable (truncated) tail.
bool read_header(std::string_view b, std::size_t off, Header* h) noexcept {
  if (b.size() - off < kRecordHeaderBytes) return false;
  if (get_u32(b, off) != kRecordMagic) return false;
  h->version = static_cast<std::uint8_t>(b[off + 4]);
  h->key_len = get_u32(b, off + 5);
  h->value_len = get_u32(b, off + 9);
  h->checksum = get_u64(b, off + 13);
  if (h->key_len > kMaxRecordPartBytes || h->value_len > kMaxRecordPartBytes) {
    return false;
  }
  h->total = kRecordHeaderBytes + static_cast<std::uint64_t>(h->key_len) +
             h->value_len;
  return true;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data, std::uint64_t h) noexcept {
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string segment_header() {
  std::string out;
  out.reserve(kSegmentHeaderBytes);
  put_u32(&out, kSegmentMagic);
  out.push_back(static_cast<char>(kSegmentFormatVersion));
  out.append(3, '\0');
  return out;
}

bool check_segment_header(std::string_view bytes) {
  if (bytes.size() < kSegmentHeaderBytes) return false;
  return get_u32(bytes, 0) == kSegmentMagic &&
         static_cast<std::uint8_t>(bytes[4]) == kSegmentFormatVersion;
}

std::string encode_record(std::string_view key, std::string_view value,
                          std::uint8_t version) {
  std::string out;
  out.reserve(kRecordHeaderBytes + key.size() + value.size());
  put_u32(&out, kRecordMagic);
  out.push_back(static_cast<char>(version));
  put_u32(&out, static_cast<std::uint32_t>(key.size()));
  put_u32(&out, static_cast<std::uint32_t>(value.size()));
  put_u64(&out, record_checksum(version, key, value));
  out.append(key);
  out.append(value);
  return out;
}

ScanStats scan_segment(std::string_view bytes,
                       const std::function<void(const ScannedRecord&)>& fn) {
  ScanStats stats;
  if (!check_segment_header(bytes)) {
    ++stats.bad_segment;
    return stats;
  }
  std::size_t off = kSegmentHeaderBytes;
  while (off < bytes.size()) {
    Header h;
    if (!read_header(bytes, off, &h) || bytes.size() - off < h.total) {
      // Bad magic / implausible length / half-written tail: everything from
      // here on is unreachable. Exactly what a crash mid-append leaves.
      ++stats.truncated;
      break;
    }
    const std::string_view key = bytes.substr(off + kRecordHeaderBytes,
                                              h.key_len);
    const std::string_view value = bytes.substr(
        off + kRecordHeaderBytes + h.key_len, h.value_len);
    if (record_checksum(h.version, key, value) != h.checksum) {
      ++stats.skipped_checksum;
    } else if (h.version != kSegmentFormatVersion) {
      ++stats.skipped_version;
    } else {
      fn(ScannedRecord{key, value, off, h.total});
      ++stats.recovered;
    }
    off += static_cast<std::size_t>(h.total);
  }
  return stats;
}

bool decode_record_at(std::string_view bytes, std::string_view* key,
                      std::string_view* value) {
  Header h;
  if (!read_header(bytes, 0, &h)) return false;
  if (bytes.size() != h.total) return false;
  const std::string_view k = bytes.substr(kRecordHeaderBytes, h.key_len);
  const std::string_view v =
      bytes.substr(kRecordHeaderBytes + h.key_len, h.value_len);
  if (record_checksum(h.version, k, v) != h.checksum) return false;
  if (h.version != kSegmentFormatVersion) return false;
  *key = k;
  *value = v;
  return true;
}

}  // namespace ipso::store
