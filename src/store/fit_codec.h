#pragma once

#include "core/fit.h"

#include <optional>
#include <string>
#include <string_view>

/// \file fit_codec.h
/// Byte-exact serialization of a READY fit outcome (core/fit.h
/// FactorFits) for the persistent tier. Every double travels as its IEEE
/// bit pattern (little-endian u64), so a decode(encode(x)) round trip is
/// bit-identical — which is what makes a warm-restarted daemon's responses
/// byte-identical to its predecessor's: the response JSON is a pure
/// function of these bits.
///
/// Only successful fits are persisted (errors are cheap to recompute and
/// carry no measurement value). The encoding carries its own version byte,
/// independent of the segment format version: a codec bump invalidates
/// values, a segment bump invalidates files, and the canonical fit key's
/// leading version byte invalidates keys — three formats, three dials.

namespace ipso::store {

inline constexpr std::uint8_t kFitCodecVersion = 1;

/// Serializes a FactorFits (including the per-component Expected tags).
[[nodiscard]] std::string encode_factor_fits(const FactorFits& fits);

/// Deserializes; nullopt on any mismatch (wrong codec version, bad enum
/// value, or trailing/missing bytes) — the caller counts it as a skipped
/// record, never trusts a partial decode.
[[nodiscard]] std::optional<FactorFits> decode_factor_fits(
    std::string_view bytes);

}  // namespace ipso::store
