#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

/// \file sketch.h
/// Compact access-frequency sketch for the tiered store's admission and
/// eviction decisions (the TinyLFU idea, as used by frequency-driven
/// buffer managers): a count-min sketch of saturating 8-bit counters with
/// periodic halving, so the estimate tracks *recent* popularity in O(1)
/// space regardless of how many distinct keys pass by.
///
/// Why a sketch instead of per-entry counters: admission must be able to
/// compare a key that is NOT resident (a newcomer, or a spilled entry)
/// against the resident victim — a one-shot scan of never-seen-again keys
/// then loses every comparison against the warm set and cannot flush it.
///
/// Deterministic (FNV-1a with fixed per-row seeds) and unsynchronized: the
/// owner (TieredStore) serializes access under its own mutex.

namespace ipso::store {

class FrequencySketch {
 public:
  /// `expected_keys` sizes the sketch (~8 counters per expected resident
  /// key, rounded up to a power of two; >= 64). The aging window is
  /// 8 x expected_keys increments.
  explicit FrequencySketch(std::size_t expected_keys);

  /// Records one access. Saturates at 255; after every `window` record()
  /// calls all counters are halved, so stale popularity decays.
  void record(std::string_view key);

  /// Estimated recent access count (count-min: minimum over rows; an
  /// over-approximation only, never an undercount modulo aging).
  [[nodiscard]] std::uint32_t estimate(std::string_view key) const;

  /// Total record() calls since construction (not reset by aging).
  [[nodiscard]] std::uint64_t additions() const noexcept {
    return additions_;
  }

 private:
  static constexpr std::size_t kRows = 4;

  [[nodiscard]] std::size_t slot(std::size_t row,
                                 std::string_view key) const noexcept;
  void age();

  std::size_t width_;           ///< power of two, so mask_ = width_ - 1
  std::size_t mask_;
  std::uint64_t window_;        ///< record() calls between halvings
  std::uint64_t since_age_ = 0;
  std::uint64_t additions_ = 0;
  std::vector<std::uint8_t> counters_;  ///< kRows x width_, row-major
};

}  // namespace ipso::store
