#include "store/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

/// The one audited raw-file-I/O site (lint rule raw-file-io). Everything
/// here is plain POSIX: open/write/pread/fsync/rename, with EINTR and
/// short-write loops in exactly one place.

namespace ipso::store {

namespace {

std::string errno_text(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// fsync the directory containing `path` so a rename into it is durable.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

IoStatus make_dirs(const std::string& dir) {
  if (dir.empty()) return IoStatus::failure("make_dirs: empty path");
  std::string prefix;
  prefix.reserve(dir.size());
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      prefix.push_back(dir[i]);
      continue;
    }
    if (i < dir.size()) prefix.push_back('/');
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0775) != 0 && errno != EEXIST) {
      return IoStatus::failure(errno_text("mkdir", prefix));
    }
  }
  struct ::stat st{};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return IoStatus::failure("make_dirs: not a directory: " + dir);
  }
  return {};
}

bool file_exists(const std::string& path) {
  struct ::stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::uint64_t file_size(const std::string& path) {
  struct ::stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

Expected<std::string, IoError> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return IoError{errno_text("open", path)};
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ::ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const IoError err{errno_text("read", path)};
      ::close(fd);
      return err;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

Expected<std::string, IoError> read_range(const std::string& path,
                                          std::uint64_t offset,
                                          std::size_t len) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return IoError{errno_text("open", path)};
  std::string out;
  out.resize(len);
  std::size_t got = 0;
  while (got < len) {
    const ::ssize_t n =
        ::pread(fd, out.data() + got, len - got,
                static_cast<::off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      const IoError err{errno_text("pread", path)};
      ::close(fd);
      return err;
    }
    if (n == 0) break;  // EOF: shorter read than asked
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  out.resize(got);
  return out;
}

IoStatus atomic_write_file(const std::string& path,
                           const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0664);
  if (fd < 0) return IoStatus::failure(errno_text("open", tmp));
  std::size_t written = 0;
  while (written < contents.size()) {
    const ::ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const IoStatus st = IoStatus::failure(errno_text("write", tmp));
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const IoStatus st = IoStatus::failure(errno_text("fsync", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const IoStatus st = IoStatus::failure(errno_text("rename", tmp));
    ::unlink(tmp.c_str());
    return st;
  }
  sync_parent_dir(path);
  return {};
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), size_(other.size_) {
  other.fd_ = -1;
  other.size_ = 0;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    size_ = other.size_;
    other.fd_ = -1;
    other.size_ = 0;
  }
  return *this;
}

AppendFile::~AppendFile() { close(); }

Expected<AppendFile, IoError> AppendFile::open(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0664);
  if (fd < 0) return IoError{errno_text("open", path)};
  AppendFile out;
  out.fd_ = fd;
  out.size_ = file_size(path);
  return out;
}

IoStatus AppendFile::append(const std::string& data) {
  if (fd_ < 0) return IoStatus::failure("append: file not open");
  std::size_t written = 0;
  while (written < data.size()) {
    const ::ssize_t n =
        ::write(fd_, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoStatus::failure(std::string("write: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  size_ += written;
  return {};
}

IoStatus AppendFile::sync() {
  if (fd_ < 0) return IoStatus::failure("sync: file not open");
  if (::fsync(fd_) != 0) {
    return IoStatus::failure(std::string("fsync: ") + std::strerror(errno));
  }
  return {};
}

void AppendFile::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ipso::store
