#include "store/sketch.h"

#include <algorithm>

namespace ipso::store {

namespace {

/// FNV-1a 64 with a seed mixed in, so each sketch row hashes independently.
std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed) noexcept {
  std::uint64_t h = 14695981039346656037ull ^ seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Fixed per-row seeds (arbitrary odd constants, stable across runs).
constexpr std::uint64_t kRowSeeds[] = {
    0x9e3779b97f4a7c15ull, 0xbf58476d1ce4e5b9ull,
    0x94d049bb133111ebull, 0x2545f4914f6cdd1dull};

std::size_t next_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

FrequencySketch::FrequencySketch(std::size_t expected_keys)
    : width_(next_pow2(std::max<std::size_t>(64, expected_keys * 8))),
      mask_(width_ - 1),
      window_(8 * std::max<std::size_t>(8, expected_keys)),
      counters_(kRows * width_, 0) {}

std::size_t FrequencySketch::slot(std::size_t row,
                                  std::string_view key) const noexcept {
  return row * width_ + (fnv1a64(key, kRowSeeds[row]) & mask_);
}

void FrequencySketch::record(std::string_view key) {
  for (std::size_t r = 0; r < kRows; ++r) {
    std::uint8_t& c = counters_[slot(r, key)];
    if (c < 255) ++c;
  }
  ++additions_;
  if (++since_age_ >= window_) age();
}

std::uint32_t FrequencySketch::estimate(std::string_view key) const {
  std::uint32_t est = 255;
  for (std::size_t r = 0; r < kRows; ++r) {
    est = std::min<std::uint32_t>(est, counters_[slot(r, key)]);
  }
  return est;
}

void FrequencySketch::age() {
  for (std::uint8_t& c : counters_) c = static_cast<std::uint8_t>(c >> 1);
  since_age_ = 0;
}

}  // namespace ipso::store
