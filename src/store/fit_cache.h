#pragma once

#include "core/domain.h"
#include "core/fit.h"

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/sync.h"

/// \file fit_cache.h
/// The DRAM tier (tier 0) of the fit store: an LRU cache keyed by a
/// canonical byte-exact encoding of (workload type, eta, observation
/// series), with request coalescing — concurrent lookups of the same key
/// share one in-flight computation instead of fitting N times. Lived in
/// ipso::serve until the tiered store landed; the serve layer now consumes
/// it through the TieredStore facade (store/tiered_store.h).
///
/// Concurrency contract: the compute callback runs with no cache lock held
/// (a slow fit never blocks lookups of other keys). Followers that arrive
/// while a key is pending block until the leader publishes; the published
/// outcome is immutable and shared by pointer, so readers never copy or
/// race. Hits and served followers both refresh the key's LRU recency — a
/// key kept hot purely by coalesced waiters is hot, not idle. Only READY
/// entries occupy LRU slots — a pending entry cannot be
/// evicted from under its followers, and the cache's memory is bounded by
/// capacity + in-flight fits (itself bounded by the engine's admission
/// queue).
///
/// Two tiering hooks, both no-ops unless set:
///  * an **admission filter** consulted when a freshly published entry
///    overflows the cache — returning false demotes the newcomer itself
///    instead of the LRU victim (frequency-driven admission: a one-shot
///    scan cannot flush the warm set);
///  * an **evict hook** invoked (with no cache lock held) for every READY
///    entry that leaves the LRU by capacity pressure — the spill path of
///    the disk tier. clear() deliberately does not fire it: dropping the
///    DRAM tier (bench cold phases) is not a demotion.

namespace ipso::store {

/// The cached unit of work: everything downstream ops derive from one
/// observation set. Immutable once published.
struct FitOutcome {
  Expected<FactorFits> fits = FitError::kNotMeasured;
};

using FitOutcomePtr = std::shared_ptr<const FitOutcome>;

/// Canonical cache key: the exact bit patterns of eta and every (x, y)
/// observation, plus the workload type and per-series tags/lengths. Two
/// requests map to the same key iff fit_factors() would see identical
/// input, so a cache hit is always semantically exact (no epsilon
/// comparisons, no hash collisions — the key *is* the input). The leading
/// byte is the key-format version; the persistent tier stores keys
/// verbatim, so bumping it orphans (never corrupts) old records.
[[nodiscard]] std::string canonical_fit_key(WorkloadType type, Eta eta,
                                            const stats::Series& ex,
                                            const stats::Series& in,
                                            const stats::Series& q);

/// LRU fit cache with coalescing. Thread-safe.
class FitCache {
 public:
  /// `capacity` is the number of READY outcomes retained (>= 1 enforced).
  explicit FitCache(std::size_t capacity);

  struct Result {
    FitOutcomePtr outcome;
    bool hit = false;        ///< served from cache without waiting
    bool coalesced = false;  ///< waited on another request's in-flight fit
  };

  /// Returns the cached outcome for `key`, or runs `compute` (exactly once
  /// across all concurrent callers of the same key) and caches it.
  Result get_or_compute(const std::string& key,
                        const std::function<FitOutcome()>& compute)
      IPSO_EXCLUDES(mu_);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;     ///< == number of compute() invocations
    std::size_t coalesced = 0;  ///< followers that waited on a leader
    std::size_t evictions = 0;
    std::size_t size = 0;       ///< READY entries currently cached
  };
  Stats stats() const IPSO_EXCLUDES(mu_);

  /// Configured capacity (READY entries retained).
  std::size_t capacity() const noexcept { return capacity_; }

  /// Drops every READY entry (pending fits publish into an empty cache).
  /// Does not fire the evict hook.
  void clear() IPSO_EXCLUDES(mu_);

  /// Drops one READY entry by key; returns true when it was present.
  /// Pending entries are untouched (their leader publishes normally).
  /// Deliberately does not fire the evict hook: invalidation supersedes a
  /// fit, and superseded data must not be spilled to the persistent tier.
  bool erase(const std::string& key) IPSO_EXCLUDES(mu_);

  /// Point-in-time copy of every READY (key, outcome) pair, most recent
  /// first. The flush path of the tiered store.
  std::vector<std::pair<std::string, FitOutcomePtr>> snapshot_ready() const
      IPSO_EXCLUDES(mu_);

  /// Demotion callback: every READY entry evicted by capacity pressure is
  /// handed over with no cache lock held (the hook may do I/O, and may be
  /// invoked concurrently from different leader threads).
  void set_evict_hook(
      std::function<void(const std::string&, FitOutcomePtr)> hook)
      IPSO_EXCLUDES(mu_);

  /// Admission filter, consulted when publishing a new entry overflows the
  /// cache: admit(incoming, victim) == false evicts the *incoming* key
  /// instead of the LRU victim. Callers still receive the computed outcome
  /// either way. Invoked with the cache lock held — must be cheap and must
  /// not call back into the cache.
  void set_admission_filter(
      std::function<bool(const std::string& incoming,
                         const std::string& victim)>
          filter) IPSO_EXCLUDES(mu_);

  /// Test hook: runs on a *follower* thread after its leader publishes but
  /// before the follower refreshes the key's LRU recency, with the cache
  /// lock released (so the hook may call back into the cache). Lets tests
  /// deterministically interleave an insertion into that window; never set
  /// in production. Mirrors ServeConfig::fit_hook.
  void set_coalesce_wake_hook(std::function<void()> hook)
      IPSO_EXCLUDES(mu_);

 private:
  /// Entry fields are guarded by the cache's mu_ as well (every access in
  /// fit_cache.cpp is under the lock), but the analysis cannot express
  /// "guarded by the owning container's mutex" for a heap-shared node, so
  /// the discipline is documented here and enforced by review + TSan.
  struct Entry {
    FitOutcomePtr outcome;  ///< null while the leader is computing
    bool ready = false;
    std::list<std::string>::iterator lru_it{};  ///< valid iff ready
  };

  /// DESIGN.md §13, capability "store.cache", order rank 2: held while the
  /// admission filter runs (which takes the TieredStore mutex — the
  /// cache → store edge), and taken by TieredStore flush/invalidate paths
  /// that never hold their own mutex at that point. Never held across
  /// compute() or the evict hook.
  mutable sync::Mutex mu_{"store.cache"};
  sync::CondVar ready_cv_;
  const std::size_t capacity_;
  /// Test-only; see setter.
  std::function<void()> coalesce_wake_hook_ IPSO_GUARDED_BY(mu_);
  std::function<void(const std::string&, FitOutcomePtr)> evict_hook_
      IPSO_GUARDED_BY(mu_);
  std::function<bool(const std::string&, const std::string&)>
      admission_filter_ IPSO_GUARDED_BY(mu_);
  /// Most-recent first; READY keys only.
  std::list<std::string> lru_ IPSO_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_
      IPSO_GUARDED_BY(mu_);
  Stats stats_ IPSO_GUARDED_BY(mu_);
};

}  // namespace ipso::store
