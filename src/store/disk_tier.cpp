#include "store/disk_tier.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace ipso::store {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "ipso-store-manifest 1";

/// Manifest lines are "segment <name>"; anything else is ignored so a
/// future manifest version can add directives without breaking this reader.
constexpr char kSegmentLinePrefix[] = "segment ";

}  // namespace

DiskTier::DiskTier(DiskTierConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.max_segment_bytes =
      std::max<std::uint64_t>(cfg_.max_segment_bytes, kSegmentHeaderBytes * 2);
}

std::string DiskTier::segment_path(const std::string& name) const {
  return cfg_.dir + "/" + name;
}

std::string DiskTier::next_segment_name() {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%06llu.seg",
                static_cast<unsigned long long>(next_segment_id_));
  ++next_segment_id_;
  return buf;
}

IoStatus DiskTier::write_manifest() {
  std::string body = kManifestHeader;
  body.push_back('\n');
  for (const auto& name : segment_files_) {
    body += kSegmentLinePrefix;
    body += name;
    body.push_back('\n');
  }
  return atomic_write_file(cfg_.dir + "/" + kManifestName, body);
}

IoStatus DiskTier::start_segment() {
  // Manifest first: a crash after the rename but before the segment file
  // exists leaves a listed-but-empty segment, which recovery treats as
  // zero records. The reverse order would strand an unreachable file.
  segment_files_.push_back(next_segment_name());
  if (auto st = write_manifest(); !st) {
    segment_files_.pop_back();
    return st;
  }
  auto file = AppendFile::open(segment_path(segment_files_.back()));
  if (!file.has_value()) return IoStatus::failure(file.error().message);
  active_ = std::move(*file);
  if (active_.size() == 0) {
    if (auto st = active_.append(segment_header()); !st) return st;
  }
  stats_.segments = segment_files_.size();
  return {};
}

IoStatus DiskTier::open() {
  if (open_) return {};
  if (auto st = make_dirs(cfg_.dir); !st) return st;

  const std::string manifest_path = cfg_.dir + "/" + kManifestName;
  if (file_exists(manifest_path)) {
    auto contents = read_file(manifest_path);
    if (!contents.has_value()) {
      return IoStatus::failure(contents.error().message);
    }
    // Parse the segment list (unknown lines ignored, see kSegmentLinePrefix).
    std::string_view rest = *contents;
    while (!rest.empty()) {
      const std::size_t nl = rest.find('\n');
      std::string_view line = rest.substr(0, nl);
      rest = nl == std::string_view::npos ? std::string_view{}
                                          : rest.substr(nl + 1);
      if (line.rfind(kSegmentLinePrefix, 0) == 0) {
        segment_files_.emplace_back(
            line.substr(sizeof kSegmentLinePrefix - 1));
      }
    }
  }

  // Rebuild the index from every listed segment. A listed-but-missing or
  // empty file is a crash artifact of start_segment(), not an error.
  for (std::size_t i = 0; i < segment_files_.size(); ++i) {
    const std::string path = segment_path(segment_files_[i]);
    if (!file_exists(path) || file_size(path) == 0) continue;
    auto bytes = read_file(path);
    if (!bytes.has_value()) return IoStatus::failure(bytes.error().message);
    const ScanStats scan = scan_segment(*bytes, [&](const ScannedRecord& r) {
      const std::uint64_t h = fnv1a64(r.key);
      auto& slots = index_[h];
      // Same key twice (e.g. re-spilled across restarts): first wins —
      // values are a deterministic function of the key.
      for (const Location& loc : slots) {
        if (loc.length == r.length) {
          auto existing = read_record(loc, std::string(r.key));
          if (existing.has_value()) {
            ++stats_.duplicates;
            return;
          }
        }
      }
      slots.push_back(Location{static_cast<std::uint32_t>(i), r.offset,
                               r.length});
      ++stats_.recovered;
    });
    stats_.skipped_checksum += scan.skipped_checksum;
    stats_.skipped_version += scan.skipped_version;
    stats_.truncated += scan.truncated;
    stats_.bad_segments += scan.bad_segment;
    stats_.bytes += file_size(path);
  }
  stats_.records = stats_.recovered;
  stats_.segments = segment_files_.size();

  // Derive the next fresh segment id from the highest listed name.
  for (const auto& name : segment_files_) {
    unsigned long long id = 0;
    if (std::sscanf(name.c_str(), "seg-%llu.seg", &id) == 1) {
      next_segment_id_ =
          std::max<std::uint64_t>(next_segment_id_, id + 1);
    }
  }

  // Reopen the last listed segment for appending (or start the first one).
  // A previous crash may have left a truncated tail; appending after it
  // would make every later record unreachable to the scanner, so a segment
  // whose scan hit corruption is sealed as-is and a fresh one started.
  bool need_fresh = segment_files_.empty();
  if (!need_fresh) {
    const std::string last = segment_path(segment_files_.back());
    const bool dirty = stats_.skipped_total() > 0;
    if (dirty) {
      need_fresh = true;
    } else {
      auto file = AppendFile::open(last);
      if (!file.has_value()) return IoStatus::failure(file.error().message);
      active_ = std::move(*file);
      if (active_.size() == 0) {
        if (auto st = active_.append(segment_header()); !st) return st;
      }
    }
  }
  if (need_fresh) {
    if (auto st = start_segment(); !st) return st;
  } else if (!file_exists(cfg_.dir + "/" + kManifestName)) {
    if (auto st = write_manifest(); !st) return st;
  }
  open_ = true;
  return {};
}

std::optional<std::string> DiskTier::read_record(
    const Location& loc, const std::string& expect_key) {
  if (loc.segment >= segment_files_.size()) return std::nullopt;
  auto bytes = read_range(segment_path(segment_files_[loc.segment]),
                          loc.offset, static_cast<std::size_t>(loc.length));
  if (!bytes.has_value() || bytes->size() != loc.length) {
    ++stats_.read_errors;
    return std::nullopt;
  }
  std::string_view key;
  std::string_view value;
  if (!decode_record_at(*bytes, &key, &value)) {
    ++stats_.read_errors;
    return std::nullopt;
  }
  if (key != expect_key) return std::nullopt;  // hash collision, not an error
  return std::string(value);
}

std::optional<std::string> DiskTier::get(const std::string& key) {
  if (!open_) return std::nullopt;
  const auto it = index_.find(fnv1a64(key));
  if (it == index_.end()) return std::nullopt;
  for (const Location& loc : it->second) {
    if (auto value = read_record(loc, key)) return value;
  }
  return std::nullopt;
}

IoStatus DiskTier::put(const std::string& key, std::string_view value) {
  if (!open_) return IoStatus::failure("disk tier not open");
  const std::uint64_t h = fnv1a64(key);
  const auto it = index_.find(h);
  if (it != index_.end()) {
    for (const Location& loc : it->second) {
      if (read_record(loc, key).has_value()) {
        ++stats_.duplicates;
        return {};
      }
    }
  }

  if (active_.size() >= cfg_.max_segment_bytes) {
    if (auto st = active_.sync(); !st) return st;
    active_.close();
    if (auto st = start_segment(); !st) return st;
  }

  const std::string record = encode_record(key, value);
  const Location loc{static_cast<std::uint32_t>(segment_files_.size() - 1),
                     active_.size(), record.size()};
  if (auto st = active_.append(record); !st) return st;
  index_[h].push_back(loc);
  ++stats_.appended;
  ++stats_.records;
  stats_.bytes += record.size();
  return {};
}

std::size_t DiskTier::invalidate(const std::string& key) {
  if (!open_) return 0;
  const auto it = index_.find(fnv1a64(key));
  if (it == index_.end()) return 0;
  std::size_t dropped = 0;
  auto& slots = it->second;
  for (std::size_t i = 0; i < slots.size();) {
    // Full-key verification: a hash sibling of `key` must survive.
    if (read_record(slots[i], key).has_value()) {
      slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(i));
      ++dropped;
    } else {
      ++i;
    }
  }
  if (slots.empty()) index_.erase(it);
  stats_.records -= std::min(stats_.records, dropped);
  stats_.invalidated += dropped;
  return dropped;
}

IoStatus DiskTier::flush() {
  if (!open_ || !active_.is_open()) return {};
  return active_.sync();
}

}  // namespace ipso::store
