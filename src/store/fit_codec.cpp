#include "store/fit_codec.h"

#include <bit>
#include <cstdint>

namespace ipso::store {

namespace {

constexpr std::uint8_t kTagError = 0;
constexpr std::uint8_t kTagValue = 1;
constexpr std::uint8_t kMaxFitError =
    static_cast<std::uint8_t>(FitError::kOutOfDomain);
constexpr std::uint8_t kMaxWorkloadType =
    static_cast<std::uint8_t>(WorkloadType::kMemoryBounded);

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(v & 0xFF));
    v >>= 8;
  }
}

void put_double(std::string* out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_linear(std::string* out, const stats::LinearFit& f) {
  put_double(out, f.slope);
  put_double(out, f.intercept);
  put_double(out, f.r_squared);
  put_double(out, f.slope_stderr);
  put_double(out, f.intercept_stderr);
}

void put_power(std::string* out, const stats::PowerFit& f) {
  put_double(out, f.coeff);
  put_double(out, f.exponent);
  put_double(out, f.r_squared);
  put_double(out, f.exponent_stderr);
}

/// Sequential reader over the encoded bytes; `ok` latches false on any
/// out-of-bounds read and every get_* then returns zeroes.
struct Reader {
  std::string_view bytes;
  std::size_t off = 0;
  bool ok = true;

  std::uint8_t get_u8() {
    if (!ok || bytes.size() - off < 1) {
      ok = false;
      return 0;
    }
    return static_cast<std::uint8_t>(bytes[off++]);
  }

  std::uint64_t get_u64() {
    if (!ok || bytes.size() - off < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) |
          static_cast<unsigned char>(bytes[off + static_cast<std::size_t>(i)]);
    }
    off += 8;
    return v;
  }

  double get_double() { return std::bit_cast<double>(get_u64()); }

  stats::LinearFit get_linear() {
    stats::LinearFit f;
    f.slope = get_double();
    f.intercept = get_double();
    f.r_squared = get_double();
    f.slope_stderr = get_double();
    f.intercept_stderr = get_double();
    return f;
  }

  stats::PowerFit get_power() {
    stats::PowerFit f;
    f.coeff = get_double();
    f.exponent = get_double();
    f.r_squared = get_double();
    f.exponent_stderr = get_double();
    return f;
  }
};

template <typename T, typename PutFn>
void put_expected(std::string* out, const Expected<T>& e, PutFn put_value) {
  if (e.has_value()) {
    out->push_back(static_cast<char>(kTagValue));
    put_value(out, *e);
  } else {
    out->push_back(static_cast<char>(kTagError));
    out->push_back(static_cast<char>(e.error()));
  }
}

/// Reads one Expected<T>; returns nullopt-equivalent by flipping r->ok.
template <typename T, typename GetFn>
Expected<T> get_expected(Reader* r, GetFn get_value) {
  const std::uint8_t tag = r->get_u8();
  if (tag == kTagValue) return get_value(r);
  if (tag != kTagError) {
    r->ok = false;
    return FitError::kFitFailed;
  }
  const std::uint8_t err = r->get_u8();
  if (err > kMaxFitError) {
    r->ok = false;
    return FitError::kFitFailed;
  }
  return static_cast<FitError>(err);
}

}  // namespace

std::string encode_factor_fits(const FactorFits& fits) {
  std::string out;
  out.reserve(2 + 1 + 9 * 8 + 3 * (1 + 12 * 8));
  out.push_back(static_cast<char>(kFitCodecVersion));
  out.push_back(static_cast<char>(fits.params.type));
  out.push_back(static_cast<char>(fits.in_has_changepoint ? 1 : 0));
  put_double(&out, fits.params.eta);
  put_double(&out, fits.params.alpha);
  put_double(&out, fits.params.delta);
  put_double(&out, fits.params.beta);
  put_double(&out, fits.params.gamma);
  put_power(&out, fits.epsilon_fit);
  put_expected(&out, fits.q_fit, [](std::string* o, const stats::PowerFit& f) {
    put_power(o, f);
  });
  put_expected(&out, fits.in_linear,
               [](std::string* o, const stats::LinearFit& f) {
                 put_linear(o, f);
               });
  put_expected(&out, fits.in_segmented,
               [](std::string* o, const stats::SegmentedFit& f) {
                 put_linear(o, f.left);
                 put_linear(o, f.right);
                 put_double(o, f.knot);
                 put_double(o, f.sse);
               });
  return out;
}

std::optional<FactorFits> decode_factor_fits(std::string_view bytes) {
  Reader r{bytes};
  if (r.get_u8() != kFitCodecVersion) return std::nullopt;
  const std::uint8_t type = r.get_u8();
  if (type > kMaxWorkloadType) return std::nullopt;
  const std::uint8_t changepoint = r.get_u8();
  if (changepoint > 1) return std::nullopt;

  FactorFits fits;
  fits.params.type = static_cast<WorkloadType>(type);
  fits.in_has_changepoint = changepoint == 1;
  fits.params.eta = r.get_double();
  fits.params.alpha = r.get_double();
  fits.params.delta = r.get_double();
  fits.params.beta = r.get_double();
  fits.params.gamma = r.get_double();
  fits.epsilon_fit = r.get_power();
  fits.q_fit = get_expected<stats::PowerFit>(
      &r, [](Reader* rr) { return rr->get_power(); });
  fits.in_linear = get_expected<stats::LinearFit>(
      &r, [](Reader* rr) { return rr->get_linear(); });
  fits.in_segmented =
      get_expected<stats::SegmentedFit>(&r, [](Reader* rr) {
        stats::SegmentedFit f;
        f.left = rr->get_linear();
        f.right = rr->get_linear();
        f.knot = rr->get_double();
        f.sse = rr->get_double();
        return f;
      });
  if (!r.ok || r.off != bytes.size()) return std::nullopt;
  return fits;
}

}  // namespace ipso::store
