#include "store/fit_cache.h"

#include <algorithm>
#include <bit>
#include <cstdint>

namespace ipso::store {

namespace {

void append_u64(std::string* key, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    key->push_back(static_cast<char>(v & 0xFF));
    v >>= 8;
  }
}

void append_double(std::string* key, double v) {
  append_u64(key, std::bit_cast<std::uint64_t>(v));
}

void append_series(std::string* key, char tag, const stats::Series& s) {
  key->push_back(tag);
  append_u64(key, s.size());
  for (const auto& p : s) {
    append_double(key, p.x);
    append_double(key, p.y);
  }
}

}  // namespace

std::string canonical_fit_key(WorkloadType type, Eta eta,
                              const stats::Series& ex,
                              const stats::Series& in,
                              const stats::Series& q) {
  std::string key;
  key.reserve(2 + 8 + 3 * 9 + 16 * (ex.size() + in.size() + q.size()));
  key.push_back('F');  // key-format version
  key.push_back(static_cast<char>(type));
  append_double(&key, eta);
  append_series(&key, 'E', ex);
  append_series(&key, 'I', in);
  append_series(&key, 'Q', q);
  return key;
}

FitCache::FitCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

FitCache::Result FitCache::get_or_compute(
    const std::string& key, const std::function<FitOutcome()>& compute) {
  std::shared_ptr<Entry> entry;
  {
    sync::MutexLock lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      entry = it->second;
      if (entry->ready) {
        // Hit: refresh LRU position.
        lru_.splice(lru_.begin(), lru_, entry->lru_it);
        ++stats_.hits;
        return {entry->outcome, true, false};
      }
      // Coalesce: another request is fitting this key right now.
      ++stats_.coalesced;
      ready_cv_.wait(mu_, [&]() IPSO_REQUIRES(mu_) { return entry->ready; });
      const FitOutcomePtr outcome = entry->outcome;
      // The hook may call back into the cache, so it runs unlocked; the
      // copy keeps the hook itself from racing its setter.
      const std::function<void()> wake_hook = coalesce_wake_hook_;
      if (wake_hook) {
        lock.unlock();
        wake_hook();
        lock.lock();
      }
      // A follower is a consumer too: refresh the key's LRU recency so a
      // key kept hot purely by coalesced waiters doesn't age as untouched
      // and get evicted mid-demand. Re-find the key — clear() or eviction
      // may have dropped it while we waited (or while the hook ran), and
      // only a READY mapped entry has a valid lru_it.
      const auto again = entries_.find(key);
      if (again != entries_.end() && again->second->ready) {
        lru_.splice(lru_.begin(), lru_, again->second->lru_it);
      }
      return {outcome, false, true};
    }
    entry = std::make_shared<Entry>();
    entries_.emplace(key, entry);
    ++stats_.misses;
  }

  // Leader path: compute with no lock held. The callback must not throw
  // (fit errors travel inside Expected); if it somehow does, publish a
  // kFitFailed outcome so followers are never stranded on the cv.
  FitOutcomePtr outcome;
  try {
    outcome = std::make_shared<const FitOutcome>(compute());
  } catch (...) {
    outcome = std::make_shared<const FitOutcome>(
        FitOutcome{FitError::kFitFailed});
  }

  // Demotions are collected under the lock and delivered after it (the
  // hook may spill to disk; a slow spill must not block lookups). The hook
  // itself is copied under the lock: set_evict_hook may race the publish.
  std::vector<std::pair<std::string, FitOutcomePtr>> evicted;
  std::function<void(const std::string&, FitOutcomePtr)> evict_hook;
  {
    sync::MutexLock lock(mu_);
    evict_hook = evict_hook_;
    entry->outcome = outcome;
    entry->ready = true;
    // clear() may have dropped the map entry while we computed; only a key
    // still present joins the LRU.
    const auto it = entries_.find(key);
    if (it != entries_.end() && it->second == entry) {
      lru_.push_front(key);
      entry->lru_it = lru_.begin();
      while (lru_.size() > capacity_) {
        std::string victim = lru_.back();
        // Frequency-driven admission: on the first overflow caused by this
        // publication, the filter may judge the newcomer colder than the
        // coldest resident — then the newcomer is the one demoted and the
        // warm set stays intact (scan resistance).
        if (admission_filter_ && victim != key &&
            lru_.size() == capacity_ + 1 && !admission_filter_(key, victim)) {
          victim = key;
        }
        const auto vit = entries_.find(victim);
        if (vit != entries_.end()) {
          evicted.emplace_back(victim, vit->second->outcome);
          lru_.erase(vit->second->lru_it);
          entries_.erase(vit);
        }
        ++stats_.evictions;
      }
    }
    stats_.size = lru_.size();
  }
  ready_cv_.notify_all();
  if (evict_hook) {
    for (const auto& [victim_key, victim_outcome] : evicted) {
      evict_hook(victim_key, victim_outcome);
    }
  }
  return {outcome, false, false};
}

FitCache::Stats FitCache::stats() const {
  sync::MutexLock lock(mu_);
  Stats s = stats_;
  s.size = lru_.size();
  return s;
}

std::vector<std::pair<std::string, FitOutcomePtr>> FitCache::snapshot_ready()
    const {
  sync::MutexLock lock(mu_);
  std::vector<std::pair<std::string, FitOutcomePtr>> out;
  out.reserve(lru_.size());
  for (const std::string& key : lru_) {
    const auto it = entries_.find(key);
    if (it != entries_.end() && it->second->ready) {
      out.emplace_back(key, it->second->outcome);
    }
  }
  return out;
}

void FitCache::set_evict_hook(
    std::function<void(const std::string&, FitOutcomePtr)> hook) {
  sync::MutexLock lock(mu_);
  evict_hook_ = std::move(hook);
}

void FitCache::set_admission_filter(
    std::function<bool(const std::string&, const std::string&)> filter) {
  sync::MutexLock lock(mu_);
  admission_filter_ = std::move(filter);
}

void FitCache::set_coalesce_wake_hook(std::function<void()> hook) {
  sync::MutexLock lock(mu_);
  coalesce_wake_hook_ = std::move(hook);
}

bool FitCache::erase(const std::string& key) {
  sync::MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || !it->second->ready) return false;
  lru_.erase(it->second->lru_it);
  entries_.erase(it);
  stats_.size = lru_.size();
  return true;
}

void FitCache::clear() {
  sync::MutexLock lock(mu_);
  // Pending entries stay in the map (their leaders will publish and then
  // find themselves evicted-on-arrival if clear ran in between); ready
  // entries drop now.
  for (const auto& key : lru_) entries_.erase(key);
  lru_.clear();
  stats_.size = 0;
}

}  // namespace ipso::store
