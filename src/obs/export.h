#pragma once

#include "obs/metrics.h"
#include "obs/span.h"

#include <string>

/// \file export.h
/// Exporters for the obs subsystem.
///
///  * chrome_trace_json(): the global tracer's spans as Chrome trace_event
///    JSON (B/E pairs, sorted so timestamps are monotone per track), with
///    the metrics snapshot embedded under a top-level "metrics" key. Loads
///    directly in chrome://tracing and https://ui.perfetto.dev. Real-time
///    tracks live under pid 1 ("wall-clock"), simulated-time tracks under
///    pid 2 ("simulated").
///  * metrics_json() / metrics_csv(): flat dumps of a MetricsSnapshot.
///  * TraceSession: the RAII hook for CLIs — constructing with a non-empty
///    path enables tracing, destruction writes the trace file (and notes it
///    on stderr, never stdout: traced runs keep byte-identical stdout).

namespace ipso::obs {

/// Full Chrome trace JSON from the global tracer + global registry.
std::string chrome_trace_json();

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// mean, p50, p90, p99}}}
std::string metrics_json(const MetricsSnapshot& snap);

/// kind,name,value,count,mean,p50,p90,p99 rows.
std::string metrics_csv(const MetricsSnapshot& snap);

/// Writes chrome_trace_json() to `path`. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// Scope guard for `--trace-out=<file>` / `IPSO_TRACE`: an empty path is
/// inert; a non-empty path enables obs for the scope's lifetime and writes
/// the Chrome trace on destruction.
class TraceSession {
 public:
  explicit TraceSession(std::string path);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const noexcept { return !path_.empty(); }

 private:
  std::string path_;
};

}  // namespace ipso::obs
