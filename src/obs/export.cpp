#include "obs/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

namespace ipso::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Microsecond timestamps with fixed sub-us precision (Chrome expects us).
std::string json_ts(double us) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

struct Event {
  const SpanRecord* span;
  bool begin;
  int pid;
  double ts;
};

/// Class of an event among the events sharing its timestamp: closing Es of
/// earlier-started spans come first, then zero-width spans (each B paired
/// immediately with its own E), then Bs of spans that end later.
int event_class(const Event& e) {
  if (e.span->start_us == e.span->end_us) return 1;
  return e.begin ? 2 : 0;
}

/// Sorted so each (pid, tid) stream is monotone and properly nested: at
/// equal timestamps an enclosing B precedes its child's B and a child's E
/// precedes its parent's E; ties between identical intervals fall back to
/// the span's ring position (mirrored between B and E so the pairs still
/// nest), which keeps the order deterministic.
bool event_less(const Event& a, const Event& b) {
  if (a.pid != b.pid) return a.pid < b.pid;
  if (a.span->track != b.span->track) return a.span->track < b.span->track;
  if (a.ts != b.ts) return a.ts < b.ts;
  const int ca = event_class(a);
  const int cb = event_class(b);
  if (ca != cb) return ca < cb;
  switch (ca) {
    case 0:  // inner (later-started) E first
      if (a.span->start_us != b.span->start_us) {
        return a.span->start_us > b.span->start_us;
      }
      return a.span > b.span;
    case 1:  // zero-width pairs: group by span, B before its E
      if (a.span != b.span) return a.span < b.span;
      return a.begin && !b.begin;
    default:  // outer (later-ending) B first
      if (a.span->end_us != b.span->end_us) {
        return a.span->end_us > b.span->end_us;
      }
      return a.span < b.span;
  }
}

void append_event(std::ostringstream* os, const Event& e) {
  const SpanRecord& s = *e.span;
  *os << "{\"name\":\"" << json_escape(s.name) << "\",\"cat\":\""
      << json_escape(s.category.empty() ? "ipso" : s.category)
      << "\",\"ph\":\"" << (e.begin ? 'B' : 'E') << "\",\"ts\":"
      << json_ts(e.ts) << ",\"pid\":" << e.pid << ",\"tid\":" << s.track;
  if (e.begin && !s.args.empty()) *os << ",\"args\":{" << s.args << "}";
  *os << "}";
}

void append_metadata(std::ostringstream* os, const char* kind, int pid,
                     std::uint32_t tid, const std::string& name, bool first) {
  if (!first) *os << ",\n";
  *os << "{\"name\":\"" << kind << "\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << json_escape(name)
      << "\"}}";
}

void append_metrics_body(std::ostringstream* os, const MetricsSnapshot& snap) {
  *os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) *os << ",";
    first = false;
    *os << "\"" << json_escape(name) << "\":" << json_number(value);
  }
  *os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) *os << ",";
    first = false;
    *os << "\"" << json_escape(name) << "\":" << json_number(value);
  }
  *os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) *os << ",";
    first = false;
    *os << "\"" << json_escape(name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << json_number(h.sum)
        << ",\"mean\":" << json_number(h.mean())
        << ",\"p50\":" << json_number(h.quantile(0.5))
        << ",\"p90\":" << json_number(h.quantile(0.9))
        << ",\"p99\":" << json_number(h.quantile(0.99)) << "}";
  }
  *os << "}}";
}

}  // namespace

std::string chrome_trace_json() {
  const Tracer& tracer = Tracer::global();
  const std::vector<SpanRecord> spans = tracer.spans();
  const std::vector<Tracer::TrackInfo> tracks = tracer.tracks();

  std::vector<Event> events;
  events.reserve(spans.size() * 2);
  for (const SpanRecord& s : spans) {
    const bool simulated =
        s.track < tracks.size() && tracks[s.track].simulated;
    const int pid = simulated ? 2 : 1;
    events.push_back({&s, true, pid, s.start_us});
    events.push_back({&s, false, pid, s.end_us});
  }
  std::sort(events.begin(), events.end(), event_less);

  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  append_metadata(&os, "process_name", 1, 0, "wall-clock", /*first=*/true);
  append_metadata(&os, "process_name", 2, 0, "simulated", /*first=*/false);
  for (std::uint32_t t = 0; t < tracks.size(); ++t) {
    append_metadata(&os, "thread_name", tracks[t].simulated ? 2 : 1, t,
                    tracks[t].label, /*first=*/false);
  }
  for (const Event& e : events) {
    os << ",\n";
    append_event(&os, e);
  }
  os << "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{\"dropped_spans\":"
     << tracer.dropped() << ",\"span_count\":" << spans.size() << "},\n";
  os << "\"metrics\":";
  append_metrics_body(&os, MetricsRegistry::global().snapshot());
  os << "}\n";
  return os.str();
}

std::string metrics_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  append_metrics_body(&os, snap);
  os << "\n";
  return os.str();
}

std::string metrics_csv(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "kind,name,value,count,mean,p50,p90,p99\n";
  for (const auto& [name, value] : snap.counters) {
    os << "counter," << name << "," << json_number(value) << ",,,,,\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    os << "gauge," << name << "," << json_number(value) << ",,,,,\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    os << "histogram," << name << "," << json_number(h.sum) << "," << h.count
       << "," << json_number(h.mean()) << "," << json_number(h.quantile(0.5))
       << "," << json_number(h.quantile(0.9)) << ","
       << json_number(h.quantile(0.99)) << "\n";
  }
  return os.str();
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json();
  return static_cast<bool>(out);
}

TraceSession::TraceSession(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  set_enabled(true);
}

TraceSession::~TraceSession() {
  if (path_.empty()) return;
  set_enabled(false);
  if (write_chrome_trace(path_)) {
    std::cerr << "[ipso::obs] trace written to " << path_
              << " (open in chrome://tracing or https://ui.perfetto.dev)\n";
  } else {
    std::cerr << "[ipso::obs] FAILED to write trace to " << path_ << "\n";
  }
}

}  // namespace ipso::obs
