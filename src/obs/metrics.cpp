#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace ipso::obs {

namespace {

#if !defined(IPSO_OBS_DISABLED)
std::atomic<bool> g_enabled{false};
#endif

/// Log-2 bucket index: bucket 0 for v <= 0 (or non-finite), otherwise
/// floor(log2(v)) shifted so seconds-scale values land mid-range.
std::size_t bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;
  const int e = std::ilogb(v);
  const long idx = static_cast<long>(e) + 32;
  if (idx < 1) return 1;
  if (idx >= static_cast<long>(kHistogramBuckets)) {
    return kHistogramBuckets - 1;
  }
  return static_cast<std::size_t>(idx);
}

/// Geometric midpoint of bucket b (the inverse of bucket_index).
double bucket_mid(std::size_t b) noexcept {
  if (b == 0) return 0.0;
  return std::ldexp(1.5, static_cast<int>(b) - 32);  // 1.5 * 2^(b-32)
}

}  // namespace

#if !defined(IPSO_OBS_DISABLED)
bool enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}
#endif

double HistogramStats::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= target && buckets[b] > 0) return bucket_mid(b);
  }
  return bucket_mid(buckets.size() - 1);
}

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() noexcept {
  static MetricsRegistry instance;
  return instance;
}

std::size_t MetricsRegistry::register_name(
    std::unordered_map<std::string, std::size_t>* map,
    std::vector<std::string>* names, const std::string& name,
    std::size_t cap) {
  sync::MutexLock lk(mu_);
  const auto it = map->find(name);
  if (it != map->end()) return it->second;
  if (names->size() >= cap) return kInvalidInstrument;
  const std::size_t id = names->size();
  names->push_back(name);
  map->emplace(name, id);
  return id;
}

std::size_t MetricsRegistry::counter_id(const std::string& name) {
  return register_name(&counter_ids_, &counter_names_, name, kMaxCounters);
}

std::size_t MetricsRegistry::gauge_id(const std::string& name) {
  return register_name(&gauge_ids_, &gauge_names_, name, kMaxGauges);
}

std::size_t MetricsRegistry::histogram_id(const std::string& name) {
  return register_name(&histogram_ids_, &histogram_names_, name,
                       kMaxHistograms);
}

MetricsRegistry::Shard& MetricsRegistry::find_or_create_shard() {
  const std::thread::id me = std::this_thread::get_id();
  sync::MutexLock lk(mu_);
  for (const auto& s : shards_) {
    if (s->owner == me) return *s;
  }
  shards_.push_back(std::make_unique<Shard>());
  shards_.back()->owner = me;
  return *shards_.back();
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() noexcept {
  // Fast path: a one-entry thread-local cache for the global registry (the
  // only one on hot paths). Other instances (unit tests) take the lock.
  thread_local Shard* cached = nullptr;
  if (this == &global()) {
    if (cached == nullptr) cached = &find_or_create_shard();
    return *cached;
  }
  return find_or_create_shard();
}

void MetricsRegistry::add(std::size_t counter, double delta) noexcept {
  if (counter >= kMaxCounters) return;
  local_shard().counters[counter].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(std::size_t gauge, double value) noexcept {
  if (gauge >= kMaxGauges) return;
  gauges_[gauge].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::observe(std::size_t histogram, double value) noexcept {
  if (histogram >= kMaxHistograms) return;
  Shard& s = local_shard();
  s.hist_sum[histogram].fetch_add(value, std::memory_order_relaxed);
  s.hist_count[histogram].fetch_add(1, std::memory_order_relaxed);
  s.hist_buckets[histogram * kHistogramBuckets + bucket_index(value)]
      .fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  sync::MutexLock lk(mu_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    double total = 0.0;
    for (const auto& s : shards_) {
      total += s->counters[i].load(std::memory_order_relaxed);
    }
    out.counters[counter_names_[i]] = total;
  }
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    out.gauges[gauge_names_[i]] = gauges_[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    HistogramStats h;
    for (const auto& s : shards_) {
      h.sum += s->hist_sum[i].load(std::memory_order_relaxed);
      h.count += s->hist_count[i].load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[b] += s->hist_buckets[i * kHistogramBuckets + b].load(
            std::memory_order_relaxed);
      }
    }
    out.histograms[histogram_names_[i]] = h;
  }
  return out;
}

void MetricsRegistry::reset() noexcept {
  sync::MutexLock lk(mu_);
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
  for (const auto& s : shards_) {
    for (auto& c : s->counters) c.store(0.0, std::memory_order_relaxed);
    for (auto& v : s->hist_sum) v.store(0.0, std::memory_order_relaxed);
    for (auto& v : s->hist_count) v.store(0, std::memory_order_relaxed);
    for (auto& v : s->hist_buckets) v.store(0, std::memory_order_relaxed);
  }
}

}  // namespace ipso::obs
