#pragma once

#include "obs/metrics.h"  // obs::enabled()

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/sync.h"

/// \file span.h
/// Structured span tracing (ipso::obs). Spans land in a bounded ring buffer
/// and export as Chrome trace_event JSON (obs/export.h), loadable in
/// chrome://tracing and Perfetto.
///
/// Two clock domains, kept strictly apart:
///
///  * **Real-time spans** (ScopedSpan): RAII, timestamped with
///    steady_clock relative to the tracer epoch, emitted on the calling
///    thread's track (or an explicit parent's track). Used by the runner
///    and the thread pool.
///  * **Simulated-time spans** (record_span): the caller passes
///    (t_start, t_end) taken from the discrete-event clock — the sim never
///    reads a wall clock, so tracing cannot perturb determinism. Each
///    simulated job gets its own track (sim time restarts at 0 per job).
///
/// The ring is bounded: when full, new spans are dropped and counted (the
/// exporter reports the number). Everything is gated on obs::enabled() and
/// compiles to nothing under -DIPSO_OBS_DISABLED.

namespace ipso::obs {

/// One completed span. `args` is a raw JSON object body (no braces), e.g.
/// `"attr":"Wp","seconds":1.25` — empty for no args.
struct SpanRecord {
  std::string name;
  std::string category;
  std::string args;
  std::uint32_t track = 0;
  double start_us = 0.0;
  double end_us = 0.0;
};

/// Track registry + bounded span ring. Thread-safe; push is a short
/// critical section (spans are coarse: stages, sweep points, pool tasks).
class Tracer {
 public:
  struct TrackInfo {
    std::string label;
    bool simulated = false;
  };

  explicit Tracer(std::size_t capacity = 1 << 16);

  static Tracer& global() noexcept;

  /// Registers a track. Simulated tracks are capped (kMaxTracks): a sweep
  /// can run a job per track, and an unbounded trace would not load; past
  /// the cap an invalid track is returned and its spans are dropped.
  std::uint32_t make_track(const std::string& label, bool simulated)
      IPSO_EXCLUDES(mu_);

  /// The calling thread's real-time track (created on first use).
  std::uint32_t thread_track();

  /// Names the calling thread's track (e.g. "pool-worker-3").
  void name_thread_track(const std::string& label) IPSO_EXCLUDES(mu_);

  /// Appends to the ring; drops (and counts) when full or the track is
  /// invalid. No-op while obs is disabled.
  void record(SpanRecord rec) noexcept IPSO_EXCLUDES(mu_);

  /// Microseconds since the tracer epoch (process start), steady clock.
  double now_us() const noexcept;

  std::vector<SpanRecord> spans() const IPSO_EXCLUDES(mu_);
  std::vector<TrackInfo> tracks() const IPSO_EXCLUDES(mu_);
  std::uint64_t dropped() const noexcept IPSO_EXCLUDES(mu_);
  std::size_t capacity() const noexcept { return capacity_; }

  /// Empties the ring and resets the drop counter (tracks survive).
  void clear() noexcept IPSO_EXCLUDES(mu_);

  static constexpr std::size_t kMaxTracks = 4096;
  static constexpr std::uint32_t kInvalidTrack =
      static_cast<std::uint32_t>(-1);

 private:
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  /// DESIGN.md §13, capability "obs.tracer" — a leaf held only over ring
  /// pushes and snapshots.
  mutable sync::Mutex mu_;
  /// Insertion order; bounded by capacity_.
  std::vector<SpanRecord> ring_ IPSO_GUARDED_BY(mu_);
  std::size_t next_ IPSO_GUARDED_BY(mu_) = 0;  ///< overwrite cursor once full
  std::uint64_t dropped_ IPSO_GUARDED_BY(mu_) = 0;
  std::vector<TrackInfo> tracks_ IPSO_GUARDED_BY(mu_);
};

#if defined(IPSO_OBS_DISABLED)

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string, const char* = "", std::string = {}) {}
  ScopedSpan(std::string, const char*, const ScopedSpan&, std::string = {}) {}
  std::uint32_t track() const noexcept { return 0; }
};

inline void record_span(std::uint32_t, std::string, const char*, double,
                        double, std::string = {}) {}
inline std::uint32_t make_sim_track(const std::string&) {
  return Tracer::kInvalidTrack;
}

#else

/// RAII real-time span on the current thread's track; the parent overload
/// places the span on the parent's track instead (explicit parent handle
/// for work that logically nests under a span from another thread).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, const char* category = "",
                      std::string args = {});
  ScopedSpan(std::string name, const char* category, const ScopedSpan& parent,
             std::string args = {});
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::uint32_t track() const noexcept { return track_; }

 private:
  bool active_ = false;
  std::uint32_t track_ = 0;
  double start_us_ = 0.0;
  std::string name_;
  const char* category_ = "";
  std::string args_;
};

/// Records one simulated-time span with explicit (t_start, t_end) in
/// simulated seconds; timestamps are exported as microseconds.
void record_span(std::uint32_t track, std::string name, const char* category,
                 double t_start_seconds, double t_end_seconds,
                 std::string args = {});

/// Registers a simulated-time track on the global tracer; returns
/// Tracer::kInvalidTrack while disabled or past the track cap.
std::uint32_t make_sim_track(const std::string& label);

#endif  // IPSO_OBS_DISABLED

}  // namespace ipso::obs
