#include "obs/span.h"

#include <utility>

namespace ipso::obs {

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() noexcept {
  static Tracer instance;
  return instance;
}

std::uint32_t Tracer::make_track(const std::string& label, bool simulated) {
  sync::MutexLock lk(mu_);
  if (tracks_.size() >= kMaxTracks) {
    ++dropped_;  // spans for this would-be track count as dropped below too
    return kInvalidTrack;
  }
  tracks_.push_back({label, simulated});
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

std::uint32_t Tracer::thread_track() {
  // One-entry thread-local cache; only the global tracer sits on hot paths,
  // a different owner (unit tests) just re-registers.
  thread_local Tracer* owner = nullptr;
  thread_local std::uint32_t cached = kInvalidTrack;
  if (owner != this || cached == kInvalidTrack) {
    cached = make_track("thread", /*simulated=*/false);
    owner = this;
  }
  return cached;
}

void Tracer::name_thread_track(const std::string& label) {
  const std::uint32_t id = thread_track();
  sync::MutexLock lk(mu_);
  if (id < tracks_.size()) tracks_[id].label = label;
}

void Tracer::record(SpanRecord rec) noexcept {
  if (!enabled() || rec.track == kInvalidTrack) {
    if (rec.track == kInvalidTrack) {
      sync::MutexLock lk(mu_);
      ++dropped_;
    }
    return;
  }
  sync::MutexLock lk(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
    return;
  }
  // Full: overwrite the oldest span (classic ring) and count the loss.
  ring_[next_] = std::move(rec);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

double Tracer::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<SpanRecord> Tracer::spans() const {
  sync::MutexLock lk(mu_);
  if (ring_.size() < capacity_ || next_ == 0) return ring_;
  // Rotate so the result is in insertion order.
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  return out;
}

std::vector<Tracer::TrackInfo> Tracer::tracks() const {
  sync::MutexLock lk(mu_);
  return tracks_;
}

std::uint64_t Tracer::dropped() const noexcept {
  sync::MutexLock lk(mu_);
  return dropped_;
}

void Tracer::clear() noexcept {
  sync::MutexLock lk(mu_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

#if !defined(IPSO_OBS_DISABLED)

ScopedSpan::ScopedSpan(std::string name, const char* category,
                       std::string args) {
  if (!enabled()) return;
  active_ = true;
  track_ = Tracer::global().thread_track();
  start_us_ = Tracer::global().now_us();
  name_ = std::move(name);
  category_ = category;
  args_ = std::move(args);
}

ScopedSpan::ScopedSpan(std::string name, const char* category,
                       const ScopedSpan& parent, std::string args) {
  if (!enabled()) return;
  active_ = true;
  track_ = parent.active_ ? parent.track_ : Tracer::global().thread_track();
  start_us_ = Tracer::global().now_us();
  name_ = std::move(name);
  category_ = category;
  args_ = std::move(args);
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tracer::global().record({std::move(name_), category_, std::move(args_),
                           track_, start_us_, Tracer::global().now_us()});
}

void record_span(std::uint32_t track, std::string name, const char* category,
                 double t_start_seconds, double t_end_seconds,
                 std::string args) {
  if (!enabled()) return;
  Tracer::global().record({std::move(name), category, std::move(args), track,
                           t_start_seconds * 1e6, t_end_seconds * 1e6});
}

std::uint32_t make_sim_track(const std::string& label) {
  if (!enabled()) return Tracer::kInvalidTrack;
  return Tracer::global().make_track(label, /*simulated=*/true);
}

#endif  // IPSO_OBS_DISABLED

}  // namespace ipso::obs
