#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/sync.h"

/// \file metrics.h
/// Lock-cheap metrics for the always-on telemetry layer (ipso::obs).
///
/// A MetricsRegistry holds named counters, gauges, and log-scale histograms.
/// Counter and histogram updates go to a *thread-local shard* — the hot path
/// is one (for counters) or three (for histograms) relaxed atomic adds with
/// no lock and no sharing between writer threads. snapshot() merges the
/// shards under the registry mutex. Gauges are last-write-wins and live as
/// single atomics in the registry itself.
///
/// Instrument handles (Counter / Gauge / Histogram) resolve the name to a
/// stable id once and gate every update on obs::enabled(), so a
/// runtime-disabled binary pays one relaxed load per call site. Compiling
/// with -DIPSO_OBS_DISABLED turns the handles into empty no-ops (the
/// compile-time zero-cost path).

namespace ipso::obs {

/// Global runtime switch for the whole obs subsystem (metrics + spans).
/// One relaxed atomic load; false by default so untraced runs pay nothing.
/// Under -DIPSO_OBS_DISABLED this is constexpr false, so every
/// `if (obs::enabled())` guard in the engines is dead code.
#if defined(IPSO_OBS_DISABLED)
constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
#else
bool enabled() noexcept;
void set_enabled(bool on) noexcept;
#endif

/// Fixed instrument capacities: shards are flat atomic arrays so they can be
/// read by the snapshotting thread while owners keep writing (relaxed).
inline constexpr std::size_t kMaxCounters = 256;
inline constexpr std::size_t kMaxGauges = 64;
inline constexpr std::size_t kMaxHistograms = 64;
/// Histogram buckets are powers of two: bucket b (b >= 1) covers
/// [2^(b-32), 2^(b-31)), i.e. ~2.3e-10 .. 4.3e9 for seconds-scale values;
/// bucket 0 collects v <= 0. One relaxed add per observation.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Registration beyond an instrument-kind capacity returns this id; updates
/// against it are silently dropped (a 1024-worker pool must not crash the
/// telemetry layer).
inline constexpr std::size_t kInvalidInstrument =
    static_cast<std::size_t>(-1);

/// Merged view of one histogram.
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// Bucket-resolution quantile estimate (geometric bucket midpoint);
  /// q in [0, 1]. Returns 0 for an empty histogram.
  double quantile(double q) const noexcept;
};

/// Point-in-time merge of every shard, keyed by instrument name.
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
};

/// Named-instrument registry with thread-local shards. Intended use is the
/// process-global instance (global()); independent instances work too (unit
/// tests) but take a short lock to find their shard where the global
/// registry uses a thread-local cache.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-global registry every instrument handle defaults to.
  static MetricsRegistry& global() noexcept;

  /// Name -> stable id; the same name always yields the same id. Returns
  /// kInvalidInstrument when the capacity for that kind is exhausted.
  std::size_t counter_id(const std::string& name) IPSO_EXCLUDES(mu_);
  std::size_t gauge_id(const std::string& name) IPSO_EXCLUDES(mu_);
  std::size_t histogram_id(const std::string& name) IPSO_EXCLUDES(mu_);

  /// Hot-path updates (relaxed atomics; invalid ids are ignored).
  void add(std::size_t counter, double delta) noexcept;
  void gauge_set(std::size_t gauge, double value) noexcept;
  void observe(std::size_t histogram, double value) noexcept;

  /// Merges every shard. Relaxed reads: a snapshot taken while writers run
  /// is a consistent-enough point-in-time view, not a barrier.
  MetricsSnapshot snapshot() const IPSO_EXCLUDES(mu_);

  /// Zeroes every counter/gauge/histogram cell (names and ids survive).
  void reset() noexcept IPSO_EXCLUDES(mu_);

 private:
  struct Shard {
    std::thread::id owner;
    std::array<std::atomic<double>, kMaxCounters> counters{};
    std::array<std::atomic<double>, kMaxHistograms> hist_sum{};
    std::array<std::atomic<std::uint64_t>, kMaxHistograms> hist_count{};
    std::array<std::atomic<std::uint64_t>,
               kMaxHistograms * kHistogramBuckets>
        hist_buckets{};
  };

  Shard& local_shard() noexcept IPSO_EXCLUDES(mu_);
  Shard& find_or_create_shard() IPSO_EXCLUDES(mu_);
  std::size_t register_name(std::unordered_map<std::string, std::size_t>* map,
                            std::vector<std::string>* names,
                            const std::string& name, std::size_t cap)
      IPSO_EXCLUDES(mu_);

  /// Guards the name maps and the shard list (DESIGN.md §13, capability
  /// "obs.registry" — a leaf: the engine increments instruments while
  /// holding its own mutex, so nothing here may call back out). Shard
  /// *contents* are relaxed atomics read while writers run; only the list
  /// and the name tables need the lock.
  mutable sync::Mutex mu_;
  std::unordered_map<std::string, std::size_t> counter_ids_
      IPSO_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::size_t> gauge_ids_
      IPSO_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::size_t> histogram_ids_
      IPSO_GUARDED_BY(mu_);
  std::vector<std::string> counter_names_ IPSO_GUARDED_BY(mu_);
  std::vector<std::string> gauge_names_ IPSO_GUARDED_BY(mu_);
  std::vector<std::string> histogram_names_ IPSO_GUARDED_BY(mu_);
  std::array<std::atomic<double>, kMaxGauges> gauges_{};
  /// Shards live until the registry dies: a worker thread that exits simply
  /// stops writing, and its totals keep contributing to snapshots.
  std::vector<std::unique_ptr<Shard>> shards_ IPSO_GUARDED_BY(mu_);
};

#if defined(IPSO_OBS_DISABLED)

/// Compile-time no-op instrument handles: every call site vanishes.
class Counter {
 public:
  explicit Counter(const std::string&) {}
  void add(double = 1.0) const noexcept {}
};
class Gauge {
 public:
  explicit Gauge(const std::string&) {}
  void set(double) const noexcept {}
};
class Histogram {
 public:
  explicit Histogram(const std::string&) {}
  void observe(double) const noexcept {}
};

#else

/// Cached-id counter handle. Construct once (e.g. function-local static) and
/// add() from any thread; updates are dropped while obs is disabled.
class Counter {
 public:
  explicit Counter(const std::string& name)
      : id_(MetricsRegistry::global().counter_id(name)) {}
  void add(double delta = 1.0) const noexcept {
    if (enabled()) MetricsRegistry::global().add(id_, delta);
  }

 private:
  std::size_t id_;
};

/// Last-write-wins gauge handle.
class Gauge {
 public:
  explicit Gauge(const std::string& name)
      : id_(MetricsRegistry::global().gauge_id(name)) {}
  void set(double value) const noexcept {
    if (enabled()) MetricsRegistry::global().gauge_set(id_, value);
  }

 private:
  std::size_t id_;
};

/// Log-scale histogram handle.
class Histogram {
 public:
  explicit Histogram(const std::string& name)
      : id_(MetricsRegistry::global().histogram_id(name)) {}
  void observe(double value) const noexcept {
    if (enabled()) MetricsRegistry::global().observe(id_, value);
  }

 private:
  std::size_t id_;
};

#endif  // IPSO_OBS_DISABLED

}  // namespace ipso::obs
