#include "trace/runner.h"

#include "core/model.h"
#include "obs/metrics.h"
#include "obs/span.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ipso::trace {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Unique sweep values in first-seen order, with the n = 1 baseline always
/// present (the factor series are normalized against it). Uniqueness keys
/// on the exact double: duplicate grid entries are deterministic replays of
/// the same task, so one computation serves them all.
std::vector<double> unique_grid_with_base(const std::vector<double>& values) {
  std::vector<double> grid{1.0};
  for (double v : values) {
    if (std::find(grid.begin(), grid.end(), v) == grid.end()) {
      grid.push_back(v);
    }
  }
  return grid;
}

std::size_t index_of(const std::vector<double>& grid, double v) {
  return static_cast<std::size_t>(
      std::find(grid.begin(), grid.end(), v) - grid.begin());
}

/// One (n, rep) MapReduce task: a paired parallel/sequential simulator run.
struct MrRep {
  mr::MrJobResult par;
  mr::MrJobResult seq;
};

mr::MrJobConfig mr_job_for(const MrSweepConfig& sweep, std::size_t n) {
  mr::MrJobConfig job;
  job.num_tasks = n;
  job.measurement_precision = sweep.measurement_precision;
  job.faults = sweep.faults;
  switch (sweep.type) {
    case WorkloadType::kFixedSize:
      job.shard_bytes = sweep.bytes / static_cast<double>(n);
      break;
    case WorkloadType::kFixedTime:
      job.shard_bytes = sweep.bytes;
      break;
    case WorkloadType::kMemoryBounded:
      // Sun-Ni's regime: each unit takes as much of the working set as one
      // memory block allows (the paper's 128 MB HDFS block), so the total
      // parallelizable workload g(n) tracks n until the data runs out.
      job.shard_bytes = std::min(sweep.bytes / static_cast<double>(n),
                                 kMemoryBlockBytes);
      break;
  }
  return job;
}

/// Runs one repetition at one sweep point. The seed depends only on
/// (sweep.seed, n, rep) — the determinism contract that makes the parallel
/// schedule irrelevant to the results.
MrRep run_mr_rep(const mr::MrWorkloadSpec& workload,
                 const sim::ClusterConfig& base, const MrSweepConfig& sweep,
                 double n_value, std::size_t rep) {
  const auto n = static_cast<std::size_t>(std::llround(n_value));
  sim::ClusterConfig cfg = base;
  cfg.workers = n;
  mr::MrEngine engine(cfg);
  mr::MrJobConfig job = mr_job_for(sweep, n);
  job.seed = sweep.seed + rep * 7919 + n;
  MrRep out;
  out.par = engine.run_parallel(workload, job);
  out.seq = engine.run_sequential(workload, job);
  return out;
}

/// Averages the repetitions of one point in repetition order — the exact
/// accumulation sequence of the historical serial harness, so the floating
/// point results are bit-identical.
MrSweepPoint reduce_mr_point(double n_value, const std::vector<MrRep>& reps) {
  MrSweepPoint point;
  point.n = n_value;
  for (const MrRep& r : reps) {
    point.parallel_time += r.par.makespan;
    point.sequential_time += r.seq.makespan;
    point.components.wp += r.par.components.wp;
    point.components.ws += r.par.components.ws;
    point.components.wo += r.par.components.wo;
    point.components.max_tp += r.par.components.max_tp;
    point.spilled = point.spilled || r.par.spilled;
    point.faults.merge(r.par.faults);
  }
  const auto n_reps = static_cast<double>(reps.size());
  point.parallel_time /= n_reps;
  point.sequential_time /= n_reps;
  point.components.n = n_value;
  point.components.wp /= n_reps;
  point.components.ws /= n_reps;
  point.components.wo /= n_reps;
  point.components.max_tp /= n_reps;
  point.speedup = point.parallel_time > 0.0
                      ? point.sequential_time / point.parallel_time
                      : 0.0;
  return point;
}

/// One Spark sweep point (single run; the Spark engine averages internally
/// over tasks). Identical to the historical serial implementation.
SparkSweepPoint run_spark_point(
    const std::function<spark::SparkAppSpec(std::size_t)>& app_for,
    const sim::ClusterConfig& base, const SparkSweepConfig& sweep, double m) {
  const auto executors = static_cast<std::size_t>(std::llround(m));
  const std::size_t total_tasks =
      sweep.type == WorkloadType::kFixedSize
          ? sweep.total_tasks
          : executors * sweep.tasks_per_executor;

  sim::ClusterConfig cfg = base;
  cfg.workers = executors;
  spark::SparkEngine engine(cfg, sweep.params);
  const spark::SparkAppSpec app = app_for(total_tasks);

  spark::SparkJobConfig job;
  job.total_tasks = total_tasks;
  job.executors = executors;
  job.seed = sweep.seed + executors;

  const spark::SparkJobResult par = engine.run(app, job);
  const spark::SparkJobResult seq = engine.run_sequential(app, job);

  SparkSweepPoint point;
  point.m = m;
  point.total_tasks = total_tasks;
  point.parallel_time = par.makespan;
  point.sequential_time = seq.makespan;
  point.speedup = par.makespan > 0.0 ? seq.makespan / par.makespan : 0.0;
  point.components = par.components;
  point.spilled = par.any_spill;
  point.faults = par.faults;
  return point;
}

}  // namespace

ExperimentRunner::ExperimentRunner(RunnerConfig cfg) : pool_(cfg.threads) {}

void ExperimentRunner::on_progress(ProgressCallback cb) {
  sync::MutexLock lk(mu_);
  progress_ = std::move(cb);
}

RunnerMetrics ExperimentRunner::metrics() const {
  sync::MutexLock lk(mu_);
  return metrics_;
}

void ExperimentRunner::record_task(const std::string& sweep_label, double n,
                                   std::size_t rep, std::size_t total,
                                   std::size_t* completed,
                                   double wall_seconds) {
  // progress_mu_ serializes the whole update+deliver sequence, so the event
  // stream observes `completed` (and the metrics snapshot) strictly
  // increasing; mu_ is only held for the counter update, so the callback is
  // free to call metrics() without self-deadlocking.
  sync::MutexLock progress_lk(progress_mu_);
  TaskEvent ev{sweep_label, n, rep, 0, total, wall_seconds, {}};
  ProgressCallback cb;
  {
    sync::MutexLock lk(mu_);
    ++metrics_.tasks_completed;
    metrics_.busy_seconds += wall_seconds;
    ++*completed;
    ev.completed = *completed;
    ev.metrics = metrics_;
    cb = progress_;
  }
  if (cb) cb(ev);
}

MrSweepResult ExperimentRunner::run_mr_sweep(const mr::MrWorkloadSpec& workload,
                                             const sim::ClusterConfig& base,
                                             const MrSweepConfig& sweep) {
  if (sweep.ns.empty()) {
    throw std::invalid_argument("run_mr_sweep: empty sweep");
  }
  if (sweep.repetitions == 0) {
    throw std::invalid_argument("run_mr_sweep: repetitions must be >= 1");
  }
  for (double n : sweep.ns) {
    if (std::llround(n) < 1) {
      throw std::invalid_argument("run_mr_sweep: n must be >= 1");
    }
  }
  const auto sweep_t0 = Clock::now();

  // Dispatch the (n, rep) grid as independent tasks; collect per-rep results
  // indexed by (grid point, rep) so reduction order matches serial execution.
  const std::vector<double> grid = unique_grid_with_base(sweep.ns);
  const std::size_t reps = sweep.repetitions;
  std::vector<std::vector<MrRep>> raw(grid.size(), std::vector<MrRep>(reps));
  const std::size_t total = grid.size() * reps;
  std::size_t completed = 0;

  std::optional<obs::ScopedSpan> sweep_span;
  if (obs::enabled()) {
    sweep_span.emplace("mr sweep " + workload.name, "runner",
                       "\"points\":" + std::to_string(grid.size()) +
                           ",\"reps\":" + std::to_string(reps));
  }

  pool_.parallel_for(total, [&](std::size_t task) {
    const std::size_t gi = task / reps;
    const std::size_t rep = task % reps;
    std::optional<obs::ScopedSpan> span;
    if (obs::enabled()) {
      span.emplace("mr point " + workload.name, "runner",
                   "\"n\":" + std::to_string(grid[gi]) +
                       ",\"rep\":" + std::to_string(rep));
    }
    const auto t0 = Clock::now();
    raw[gi][rep] = run_mr_rep(workload, base, sweep, grid[gi], rep);
    record_task(workload.name, grid[gi], rep, total, &completed,
                seconds_since(t0));
  });

  // Serial reduction and assembly, identical to the historical harness.
  MrSweepResult result;
  result.speedup.set_name(workload.name + " S(n)");
  result.factors.ex.set_name(workload.name + " EX(n)");
  result.factors.in.set_name(workload.name + " IN(n)");
  result.factors.q.set_name(workload.name + " q(n)");

  // Baseline decomposition at n = 1 normalizes the factor series.
  const MrSweepPoint base_point = reduce_mr_point(1.0, raw[0]);
  result.tp1 = base_point.components.wp;
  result.ts1 = base_point.components.ws;
  result.factors.eta = eta_from_times(result.tp1, result.ts1);

  for (double n : sweep.ns) {
    const MrSweepPoint point =
        n == 1.0 ? base_point : reduce_mr_point(n, raw[index_of(grid, n)]);
    result.points.push_back(point);
    result.speedup.add(n, point.speedup);
    result.factors.ex.add(n, point.components.wp / result.tp1);
    if (result.ts1 > 0.0) {
      result.factors.in.add(n, point.components.ws / result.ts1);
    }
    result.factors.q.add(
        n, point.components.wp > 0.0
               ? point.components.wo * n / point.components.wp
               : 0.0);
  }

  {
    sync::MutexLock lk(mu_);
    ++metrics_.sweeps_run;
    metrics_.wall_seconds += seconds_since(sweep_t0);
  }
  return result;
}

SparkSweepResult ExperimentRunner::run_spark_sweep(
    const std::function<spark::SparkAppSpec(std::size_t)>& app_for,
    const sim::ClusterConfig& base, const SparkSweepConfig& sweep) {
  if (sweep.ms.empty()) {
    throw std::invalid_argument("run_spark_sweep: empty sweep");
  }
  for (double m : sweep.ms) {
    if (std::llround(m) < 1) {
      throw std::invalid_argument("run_spark_sweep: m must be >= 1");
    }
  }
  const auto sweep_t0 = Clock::now();

  const std::vector<double> grid = unique_grid_with_base(sweep.ms);
  std::vector<SparkSweepPoint> raw(grid.size());
  const std::size_t total = grid.size();
  std::size_t completed = 0;

  std::optional<obs::ScopedSpan> sweep_span;
  if (obs::enabled()) {
    sweep_span.emplace("spark sweep", "runner",
                       "\"points\":" + std::to_string(grid.size()));
  }

  pool_.parallel_for(total, [&](std::size_t gi) {
    std::optional<obs::ScopedSpan> span;
    if (obs::enabled()) {
      span.emplace("spark point", "runner",
                   "\"m\":" + std::to_string(grid[gi]));
    }
    const auto t0 = Clock::now();
    raw[gi] = run_spark_point(app_for, base, sweep, grid[gi]);
    record_task("spark", grid[gi], 0, total, &completed, seconds_since(t0));
  });

  SparkSweepResult result;
  const SparkSweepPoint& base_point = raw[0];
  result.tp1 = base_point.components.wp;
  result.ts1 = base_point.components.ws;
  result.factors.eta = eta_from_times(result.tp1, result.ts1);

  for (double m : sweep.ms) {
    const SparkSweepPoint& point =
        m == 1.0 ? base_point : raw[index_of(grid, m)];
    result.points.push_back(point);
    result.speedup.add(m, point.speedup);
    if (result.tp1 > 0.0) {
      result.factors.ex.add(m, point.components.wp / result.tp1);
    }
    if (result.ts1 > 0.0) {
      result.factors.in.add(m, point.components.ws / result.ts1);
    }
    result.factors.q.add(
        m, point.components.wp > 0.0
               ? point.components.wo * m / point.components.wp
               : 0.0);
  }

  {
    sync::MutexLock lk(mu_);
    ++metrics_.sweeps_run;
    metrics_.wall_seconds += seconds_since(sweep_t0);
  }
  return result;
}

}  // namespace ipso::trace
