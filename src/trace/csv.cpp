#include "trace/csv.h"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

namespace ipso::trace {

namespace {

std::vector<std::string> split_commas(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) {
    // Trim surrounding whitespace.
    const auto b = cell.find_first_not_of(" \t\r");
    const auto e = cell.find_last_not_of(" \t\r");
    cells.push_back(b == std::string::npos ? ""
                                           : cell.substr(b, e - b + 1));
  }
  return cells;
}

bool is_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool skippable(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;  // all whitespace
}

CsvError make_error(ParseError code, std::size_t line_no,
                    std::string content) {
  CsvError e;
  e.code = code;
  e.line = line_no;
  e.content = std::move(content);
  return e;
}

}  // namespace

std::string CsvError::message() const {
  std::string out = to_string(code);
  if (line > 0) out += " at line " + std::to_string(line);
  if (!content.empty()) out += ": " + content;
  return out;
}

void write_csv(std::ostream& os, const std::string& x_label,
               const std::vector<stats::Series>& series, int precision) {
  std::set<double> grid;
  for (const auto& s : series) {
    for (const auto& p : s) grid.insert(p.x);
  }
  os << x_label;
  for (const auto& s : series) os << "," << s.name();
  os << "\n";
  os << std::setprecision(precision);
  for (double x : grid) {
    os << x;
    for (const auto& s : series) os << "," << s.interpolate(x);
    os << "\n";
  }
}

Expected<stats::Series, CsvError> read_series_csv(std::istream& is,
                                                  std::string name) {
  stats::Series out(std::move(name));
  std::string line;
  std::size_t line_no = 0;
  bool first_content = true;
  while (std::getline(is, line)) {
    ++line_no;
    if (skippable(line)) continue;
    const auto cells = split_commas(line);
    if (cells.size() < 2) {
      return make_error(ParseError::kTooFewColumns, line_no, line);
    }
    if (first_content && (!is_numeric(cells[0]) || !is_numeric(cells[1]))) {
      first_content = false;  // header line
      continue;
    }
    first_content = false;
    if (!is_numeric(cells[0]) || !is_numeric(cells[1])) {
      return make_error(ParseError::kMalformedNumber, line_no, line);
    }
    out.add(std::stod(cells[0]), std::stod(cells[1]));
  }
  return out;
}

Expected<std::vector<stats::Series>, CsvError> read_table_csv(
    std::istream& is) {
  std::vector<stats::Series> out;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (skippable(line)) continue;
    const auto cells = split_commas(line);
    if (cells.size() < 2) {
      return make_error(ParseError::kTooFewColumns, line_no, line);
    }
    if (out.empty()) {
      // First content line: header or data.
      if (!is_numeric(cells[0])) {
        saw_header = true;
        for (std::size_t c = 1; c < cells.size(); ++c) {
          out.emplace_back(cells[c]);
        }
        continue;
      }
      for (std::size_t c = 1; c < cells.size(); ++c) {
        out.emplace_back("col" + std::to_string(c));
      }
    }
    if (cells.size() != out.size() + 1) {
      return make_error(ParseError::kRaggedRow, line_no, line);
    }
    if (!is_numeric(cells[0])) {
      if (saw_header) {
        return make_error(ParseError::kMalformedNumber, line_no, line);
      }
      continue;
    }
    const double x = std::stod(cells[0]);
    for (std::size_t c = 1; c < cells.size(); ++c) {
      if (!is_numeric(cells[c])) {
        return make_error(ParseError::kMalformedNumber, line_no, cells[c]);
      }
      out[c - 1].add(x, std::stod(cells[c]));
    }
  }
  return out;
}

}  // namespace ipso::trace
