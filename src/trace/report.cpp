#include "trace/report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <set>
#include <sstream>

namespace ipso::trace {

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n==== " << title << " ====\n";
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void print_table(std::ostream& os, const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      os << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    os << "\n";
  };
  print_row(header);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows) print_row(row);
}

void print_series_table(std::ostream& os, const std::string& x_label,
                        const std::vector<stats::Series>& series,
                        int precision) {
  std::set<double> grid;
  for (const auto& s : series) {
    for (const auto& p : s) grid.insert(p.x);
  }
  std::vector<std::string> header{x_label};
  for (const auto& s : series) header.push_back(s.name());

  std::vector<std::vector<std::string>> rows;
  for (double x : grid) {
    std::vector<std::string> row{fmt(x, x == std::floor(x) ? 0 : 2)};
    for (const auto& s : series) row.push_back(fmt(s.interpolate(x), precision));
    rows.push_back(std::move(row));
  }
  print_table(os, header, rows);
}

}  // namespace ipso::trace
