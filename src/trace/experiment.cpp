#include "trace/experiment.h"

#include "core/laws.h"
#include "core/model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ipso::trace {

namespace {

/// Averages `reps` paired parallel/sequential runs at one sweep point.
MrSweepPoint run_point(const mr::MrWorkloadSpec& workload,
                       const sim::ClusterConfig& base,
                       const MrSweepConfig& sweep, double n_value) {
  const auto n = static_cast<std::size_t>(std::llround(n_value));
  if (n == 0) throw std::invalid_argument("run_mr_sweep: n must be >= 1");

  sim::ClusterConfig cfg = base;
  cfg.workers = n;
  mr::MrEngine engine(cfg);

  mr::MrJobConfig job;
  job.num_tasks = n;
  job.measurement_precision = sweep.measurement_precision;
  switch (sweep.type) {
    case WorkloadType::kFixedSize:
      job.shard_bytes = sweep.bytes / static_cast<double>(n);
      break;
    case WorkloadType::kFixedTime:
      job.shard_bytes = sweep.bytes;
      break;
    case WorkloadType::kMemoryBounded:
      // Sun-Ni's regime: each unit takes as much of the working set as one
      // memory block allows (the paper's 128 MB HDFS block), so the total
      // parallelizable workload g(n) tracks n until the data runs out.
      job.shard_bytes = std::min(sweep.bytes / static_cast<double>(n),
                                 kMemoryBlockBytes);
      break;
  }

  MrSweepPoint point;
  point.n = n_value;
  for (std::size_t rep = 0; rep < sweep.repetitions; ++rep) {
    job.seed = sweep.seed + rep * 7919 + n;
    const mr::MrJobResult par = engine.run_parallel(workload, job);
    const mr::MrJobResult seq = engine.run_sequential(workload, job);
    point.parallel_time += par.makespan;
    point.sequential_time += seq.makespan;
    point.components.wp += par.components.wp;
    point.components.ws += par.components.ws;
    point.components.wo += par.components.wo;
    point.components.max_tp += par.components.max_tp;
    point.spilled = point.spilled || par.spilled;
  }
  const auto reps = static_cast<double>(sweep.repetitions);
  point.parallel_time /= reps;
  point.sequential_time /= reps;
  point.components.n = n_value;
  point.components.wp /= reps;
  point.components.ws /= reps;
  point.components.wo /= reps;
  point.components.max_tp /= reps;
  point.speedup = point.parallel_time > 0.0
                      ? point.sequential_time / point.parallel_time
                      : 0.0;
  return point;
}

}  // namespace

MrSweepResult run_mr_sweep(const mr::MrWorkloadSpec& workload,
                           const sim::ClusterConfig& base,
                           const MrSweepConfig& sweep) {
  if (sweep.ns.empty()) {
    throw std::invalid_argument("run_mr_sweep: empty sweep");
  }
  if (sweep.repetitions == 0) {
    throw std::invalid_argument("run_mr_sweep: repetitions must be >= 1");
  }

  MrSweepResult result;
  result.speedup.set_name(workload.name + " S(n)");
  result.factors.ex.set_name(workload.name + " EX(n)");
  result.factors.in.set_name(workload.name + " IN(n)");
  result.factors.q.set_name(workload.name + " q(n)");

  // Baseline decomposition at n = 1 normalizes the factor series.
  const MrSweepPoint base_point = run_point(workload, base, sweep, 1.0);
  result.tp1 = base_point.components.wp;
  result.ts1 = base_point.components.ws;
  result.factors.eta = eta_from_times(result.tp1, result.ts1);

  for (double n : sweep.ns) {
    const MrSweepPoint point =
        n == 1.0 ? base_point : run_point(workload, base, sweep, n);
    result.points.push_back(point);
    result.speedup.add(n, point.speedup);
    result.factors.ex.add(n, point.components.wp / result.tp1);
    if (result.ts1 > 0.0) {
      result.factors.in.add(n, point.components.ws / result.ts1);
    }
    result.factors.q.add(
        n, point.components.wp > 0.0
               ? point.components.wo * n / point.components.wp
               : 0.0);
  }
  return result;
}

stats::Series law_baseline(const MrSweepResult& result, WorkloadType type) {
  const double eta = result.factors.eta;
  stats::Series out(type == WorkloadType::kFixedSize ? "Amdahl" : "Gustafson");
  for (const auto& p : result.points) {
    out.add(p.n, type == WorkloadType::kFixedSize
                     ? laws::amdahl(eta, p.n)
                     : laws::gustafson(eta, p.n));
  }
  return out;
}

namespace {

SparkSweepPoint run_spark_point(
    const std::function<spark::SparkAppSpec(std::size_t)>& app_for,
    const sim::ClusterConfig& base, const SparkSweepConfig& sweep, double m) {
  const auto executors = static_cast<std::size_t>(std::llround(m));
  if (executors == 0) {
    throw std::invalid_argument("run_spark_sweep: m must be >= 1");
  }
  const std::size_t total_tasks =
      sweep.type == WorkloadType::kFixedSize
          ? sweep.total_tasks
          : executors * sweep.tasks_per_executor;

  sim::ClusterConfig cfg = base;
  cfg.workers = executors;
  spark::SparkEngine engine(cfg, sweep.params);
  const spark::SparkAppSpec app = app_for(total_tasks);

  spark::SparkJobConfig job;
  job.total_tasks = total_tasks;
  job.executors = executors;
  job.seed = sweep.seed + executors;

  const spark::SparkJobResult par = engine.run(app, job);
  const spark::SparkJobResult seq = engine.run_sequential(app, job);

  SparkSweepPoint point;
  point.m = m;
  point.total_tasks = total_tasks;
  point.parallel_time = par.makespan;
  point.sequential_time = seq.makespan;
  point.speedup =
      par.makespan > 0.0 ? seq.makespan / par.makespan : 0.0;
  point.components = par.components;
  point.spilled = par.any_spill;
  return point;
}

}  // namespace

SparkSweepResult run_spark_sweep(
    const std::function<spark::SparkAppSpec(std::size_t)>& app_for,
    const sim::ClusterConfig& base, const SparkSweepConfig& sweep) {
  if (sweep.ms.empty()) {
    throw std::invalid_argument("run_spark_sweep: empty sweep");
  }
  SparkSweepResult result;

  const SparkSweepPoint base_point =
      run_spark_point(app_for, base, sweep, 1.0);
  result.tp1 = base_point.components.wp;
  result.ts1 = base_point.components.ws;
  result.factors.eta = eta_from_times(result.tp1, result.ts1);

  for (double m : sweep.ms) {
    const SparkSweepPoint point =
        m == 1.0 ? base_point : run_spark_point(app_for, base, sweep, m);
    result.points.push_back(point);
    result.speedup.add(m, point.speedup);
    if (result.tp1 > 0.0) {
      result.factors.ex.add(m, point.components.wp / result.tp1);
    }
    if (result.ts1 > 0.0) {
      result.factors.in.add(m, point.components.ws / result.ts1);
    }
    result.factors.q.add(
        m, point.components.wp > 0.0
               ? point.components.wo * m / point.components.wp
               : 0.0);
  }
  return result;
}

}  // namespace ipso::trace
