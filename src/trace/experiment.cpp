#include "trace/experiment.h"

#include "core/laws.h"
#include "trace/runner.h"

namespace ipso::trace {

// The sweep implementations live in runner.cpp: ExperimentRunner dispatches
// the (workload, n, repetition) grid across a thread pool with per-task
// seeding, and these wrappers preserve the historical serial API. Results
// are bit-identical to the old serial loop at any thread count, so every
// existing caller gets the parallel engine transparently.

MrSweepResult run_mr_sweep(const mr::MrWorkloadSpec& workload,
                           const sim::ClusterConfig& base,
                           const MrSweepConfig& sweep) {
  ExperimentRunner runner;
  return runner.run_mr_sweep(workload, base, sweep);
}

SparkSweepResult run_spark_sweep(
    const std::function<spark::SparkAppSpec(std::size_t)>& app_for,
    const sim::ClusterConfig& base, const SparkSweepConfig& sweep) {
  ExperimentRunner runner;
  return runner.run_spark_sweep(app_for, base, sweep);
}

stats::Series law_baseline(const MrSweepResult& result, WorkloadType type) {
  const double eta = result.factors.eta;
  stats::Series out(type == WorkloadType::kFixedSize ? "Amdahl" : "Gustafson");
  for (const auto& p : result.points) {
    out.add(p.n, type == WorkloadType::kFixedSize
                     ? laws::amdahl(eta, p.n)
                     : laws::gustafson(eta, p.n));
  }
  return out;
}

}  // namespace ipso::trace
