#pragma once

#include "stats/series.h"

#include <iosfwd>
#include <string>
#include <vector>

/// \file csv.h
/// CSV import/export for measurement series, so the diagnostic pipeline can
/// consume speedup curves measured on real clusters (the intended
/// downstream use of IPSO) and benches can emit plot-ready data.

namespace ipso::trace {

/// Writes series sharing an x grid as CSV: header "x,<name1>,<name2>,...",
/// one row per x in the union grid (linear interpolation for gaps).
void write_csv(std::ostream& os, const std::string& x_label,
               const std::vector<stats::Series>& series, int precision = 6);

/// Parses a two-column CSV ("n,value"; a header line is auto-detected and
/// skipped; blank lines and '#' comments ignored). Throws
/// std::invalid_argument on malformed numeric rows.
stats::Series read_series_csv(std::istream& is, std::string name = "csv");

/// Parses a multi-column CSV into one series per column (first column is
/// x). Column names come from the header when present, else "col<i>".
std::vector<stats::Series> read_table_csv(std::istream& is);

}  // namespace ipso::trace
