#pragma once

#include "core/expected.h"
#include "stats/series.h"

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

/// \file csv.h
/// CSV import/export for measurement series, so the diagnostic pipeline can
/// consume speedup curves measured on real clusters (the intended
/// downstream use of IPSO) and benches can emit plot-ready data.
///
/// The readers return Expected instead of throwing: a malformed row in user
/// input is an expected condition the CLIs must report by name and exit 1
/// on, not an uncaught std::invalid_argument (the completion of PR 1's
/// Expected<T, ...> migration).

namespace ipso::trace {

/// Why a CSV parse failed.
enum class ParseError {
  kTooFewColumns,   ///< a row has fewer columns than the format requires
  kRaggedRow,       ///< a row's column count differs from the header's
  kMalformedNumber, ///< a cell that must be numeric is not
};

/// Human-readable error name (for CLI messages).
constexpr const char* to_string(ParseError e) noexcept {
  switch (e) {
    case ParseError::kTooFewColumns: return "too few columns";
    case ParseError::kRaggedRow: return "ragged row";
    case ParseError::kMalformedNumber: return "malformed number";
  }
  return "unknown";
}

/// A parse failure with its location: the 1-based input line number and the
/// offending content, so a CLI can point the user at the exact row.
struct CsvError {
  ParseError code = ParseError::kMalformedNumber;
  std::size_t line = 0;  ///< 1-based line number in the input stream
  std::string content;   ///< the offending line (or cell)

  /// "malformed number at line 7: 3,abc"
  std::string message() const;
};

/// Writes series sharing an x grid as CSV: header "x,<name1>,<name2>,...",
/// one row per x in the union grid (linear interpolation for gaps).
void write_csv(std::ostream& os, const std::string& x_label,
               const std::vector<stats::Series>& series, int precision = 6);

/// Parses a two-column CSV ("n,value"; a header line is auto-detected and
/// skipped; blank lines and '#' comments ignored). Returns the series or a
/// CsvError naming the malformed row.
Expected<stats::Series, CsvError> read_series_csv(std::istream& is,
                                                  std::string name = "csv");

/// Parses a multi-column CSV into one series per column (first column is
/// x). Column names come from the header when present, else "col<i>".
Expected<std::vector<stats::Series>, CsvError> read_table_csv(
    std::istream& is);

}  // namespace ipso::trace
