#pragma once

#include "stats/series.h"

#include <iosfwd>
#include <string>
#include <vector>

/// \file report.h
/// Plain-text table and series printers used by every bench binary to emit
/// the paper's tables and figure data as aligned columns (one row per n,
/// one column per curve).

namespace ipso::trace {

/// Prints a banner like "==== Fig. 4: ... ====".
void print_banner(std::ostream& os, const std::string& title);

/// Prints several series sharing the same x grid as one aligned table. The
/// first column is x (labelled `x_label`); each series contributes a column
/// titled with its name. Series are sampled at the union of all x values
/// (linear interpolation for missing points).
void print_series_table(std::ostream& os, const std::string& x_label,
                        const std::vector<stats::Series>& series,
                        int precision = 3);

/// Prints a generic table: `header` cells, then rows. Column widths adapt.
void print_table(std::ostream& os, const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

/// Formats a double with fixed precision.
std::string fmt(double v, int precision = 3);

}  // namespace ipso::trace
