#include "trace/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <optional>
#include <sstream>

namespace ipso::trace {

std::string json_double(double v) {
  // JSON has no literal for non-finite numbers; null is the conventional
  // spelling (and what the parser on the other end round-trips to).
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

void append_series(std::ostringstream& os, const stats::Series& s) {
  os << "{\"name\":\"" << json_escape(s.name()) << "\",\"points\":[";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << ",";
    os << "[" << s[i].x << "," << s[i].y << "]";
  }
  os << "]}";
}

void append_components(std::ostringstream& os, const WorkloadComponents& c) {
  os << "{\"n\":" << c.n << ",\"wp\":" << c.wp << ",\"ws\":" << c.ws
     << ",\"wo\":" << c.wo << ",\"max_tp\":" << c.max_tp << "}";
}

/// Full round-trip precision: setprecision(12) used to truncate doubles, so
/// parse(serialize(x)) drifted from x (satellite fix, ISSUE 4).
std::ostringstream exact_stream() {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  return os;
}

}  // namespace

std::string to_json(const stats::Series& series) {
  std::ostringstream os = exact_stream();
  append_series(os, series);
  return os.str();
}

std::string to_json(const MrSweepResult& result) {
  std::ostringstream os = exact_stream();
  os << "{\"kind\":\"mr_sweep\",\"eta\":" << result.factors.eta
     << ",\"tp1\":" << result.tp1 << ",\"ts1\":" << result.ts1
     << ",\"speedup\":";
  append_series(os, result.speedup);
  os << ",\"ex\":";
  append_series(os, result.factors.ex);
  os << ",\"in\":";
  append_series(os, result.factors.in);
  os << ",\"q\":";
  append_series(os, result.factors.q);
  os << ",\"points\":[";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    if (i) os << ",";
    const auto& p = result.points[i];
    os << "{\"n\":" << p.n << ",\"parallel_time\":" << p.parallel_time
       << ",\"sequential_time\":" << p.sequential_time
       << ",\"speedup\":" << p.speedup
       << ",\"spilled\":" << (p.spilled ? "true" : "false")
       << ",\"components\":";
    append_components(os, p.components);
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string to_json(const SparkSweepResult& result) {
  std::ostringstream os = exact_stream();
  os << "{\"kind\":\"spark_sweep\",\"eta\":" << result.factors.eta
     << ",\"tp1\":" << result.tp1 << ",\"ts1\":" << result.ts1
     << ",\"speedup\":";
  append_series(os, result.speedup);
  os << ",\"q\":";
  append_series(os, result.factors.q);
  os << ",\"points\":[";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    if (i) os << ",";
    const auto& p = result.points[i];
    os << "{\"m\":" << p.m << ",\"total_tasks\":" << p.total_tasks
       << ",\"parallel_time\":" << p.parallel_time
       << ",\"sequential_time\":" << p.sequential_time
       << ",\"speedup\":" << p.speedup
       << ",\"spilled\":" << (p.spilled ? "true" : "false")
       << ",\"components\":";
    append_components(os, p.components);
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string JsonParseError::to_string() const {
  return message + " at offset " + std::to_string(offset);
}

const JsonValue* JsonValue::get(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

std::string JsonValue::dump() const {
  switch (kind_) {
    case Kind::kNull: return "null";
    case Kind::kBool: return bool_ ? "true" : "false";
    case Kind::kNumber: return json_double(num_);
    case Kind::kString: {
      std::string out = "\"";
      out += json_escape(str_);
      out += '"';
      return out;
    }
    case Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ",";
        out += arr_[i].dump();
      }
      return out + "]";
    }
    case Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ",";
        first = false;
        out += '"';
        out += json_escape(k);
        out += "\":";
        out += v.dump();
      }
      return out + "}";
    }
  }
  return "null";
}

namespace {

/// Recursive-descent JSON reader. Depth is bounded so adversarial input
/// ("[[[[...") cannot blow the stack of a serving thread.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  Expected<JsonValue, JsonParseError> parse() {
    JsonValue v;
    if (auto err = parse_value(&v, 0)) return *err;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  JsonParseError fail(std::string message) const {
    return JsonParseError{pos_, std::move(message)};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  /// Returns an error, or std::nullopt on success (value written to *out).
  std::optional<JsonParseError> parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      std::string s;
      if (auto err = parse_string(&s)) return err;
      *out = JsonValue(std::move(s));
      return std::nullopt;
    }
    if (consume_word("true")) {
      *out = JsonValue(true);
      return std::nullopt;
    }
    if (consume_word("false")) {
      *out = JsonValue(false);
      return std::nullopt;
    }
    if (consume_word("null")) {
      *out = JsonValue();
      return std::nullopt;
    }
    return parse_number(out);
  }

  std::optional<JsonParseError> parse_object(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonValue::Object obj;
    skip_ws();
    if (consume('}')) {
      *out = JsonValue(std::move(obj));
      return std::nullopt;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (auto err = parse_string(&key)) return err;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      JsonValue v;
      if (auto err = parse_value(&v, depth + 1)) return err;
      obj.insert_or_assign(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}' in object");
    }
    *out = JsonValue(std::move(obj));
    return std::nullopt;
  }

  std::optional<JsonParseError> parse_array(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonValue::Array arr;
    skip_ws();
    if (consume(']')) {
      *out = JsonValue(std::move(arr));
      return std::nullopt;
    }
    while (true) {
      JsonValue v;
      if (auto err = parse_value(&v, depth + 1)) return err;
      arr.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']' in array");
    }
    *out = JsonValue(std::move(arr));
    return std::nullopt;
  }

  std::optional<JsonParseError> parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = std::move(s);
        return std::nullopt;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': s.push_back('"'); break;
          case '\\': s.push_back('\\'); break;
          case '/': s.push_back('/'); break;
          case 'n': s.push_back('\n'); break;
          case 't': s.push_back('\t'); break;
          case 'r': s.push_back('\r'); break;
          case 'b': s.push_back('\b'); break;
          case 'f': s.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape digit");
            }
            // The protocol is ASCII; non-ASCII escapes encode as UTF-8.
            if (code < 0x80) {
              s.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              s.push_back(static_cast<char>(0xC0 | (code >> 6)));
              s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              s.push_back(static_cast<char>(0xE0 | (code >> 12)));
              s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      s.push_back(c);
    }
    return fail("unterminated string");
  }

  std::optional<JsonParseError> parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      return fail("malformed number");
    }
    if (!std::isfinite(v)) {
      pos_ = start;
      return fail("number out of double range");
    }
    *out = JsonValue(v);
    return std::nullopt;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Expected<JsonValue, JsonParseError> parse_json(std::string_view text) {
  return JsonReader(text).parse();
}

}  // namespace ipso::trace
