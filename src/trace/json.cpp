#include "trace/json.h"

#include <iomanip>
#include <sstream>

namespace ipso::trace {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void append_series(std::ostringstream& os, const stats::Series& s) {
  os << "{\"name\":\"" << escape(s.name()) << "\",\"points\":[";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << ",";
    os << "[" << s[i].x << "," << s[i].y << "]";
  }
  os << "]}";
}

void append_components(std::ostringstream& os, const WorkloadComponents& c) {
  os << "{\"n\":" << c.n << ",\"wp\":" << c.wp << ",\"ws\":" << c.ws
     << ",\"wo\":" << c.wo << ",\"max_tp\":" << c.max_tp << "}";
}

}  // namespace

std::string to_json(const stats::Series& series) {
  std::ostringstream os;
  os << std::setprecision(12);
  append_series(os, series);
  return os.str();
}

std::string to_json(const MrSweepResult& result) {
  std::ostringstream os;
  os << std::setprecision(12);
  os << "{\"kind\":\"mr_sweep\",\"eta\":" << result.factors.eta
     << ",\"tp1\":" << result.tp1 << ",\"ts1\":" << result.ts1
     << ",\"speedup\":";
  append_series(os, result.speedup);
  os << ",\"ex\":";
  append_series(os, result.factors.ex);
  os << ",\"in\":";
  append_series(os, result.factors.in);
  os << ",\"q\":";
  append_series(os, result.factors.q);
  os << ",\"points\":[";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    if (i) os << ",";
    const auto& p = result.points[i];
    os << "{\"n\":" << p.n << ",\"parallel_time\":" << p.parallel_time
       << ",\"sequential_time\":" << p.sequential_time
       << ",\"speedup\":" << p.speedup
       << ",\"spilled\":" << (p.spilled ? "true" : "false")
       << ",\"components\":";
    append_components(os, p.components);
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string to_json(const SparkSweepResult& result) {
  std::ostringstream os;
  os << std::setprecision(12);
  os << "{\"kind\":\"spark_sweep\",\"eta\":" << result.factors.eta
     << ",\"tp1\":" << result.tp1 << ",\"ts1\":" << result.ts1
     << ",\"speedup\":";
  append_series(os, result.speedup);
  os << ",\"q\":";
  append_series(os, result.factors.q);
  os << ",\"points\":[";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    if (i) os << ",";
    const auto& p = result.points[i];
    os << "{\"m\":" << p.m << ",\"total_tasks\":" << p.total_tasks
       << ",\"parallel_time\":" << p.parallel_time
       << ",\"sequential_time\":" << p.sequential_time
       << ",\"speedup\":" << p.speedup
       << ",\"spilled\":" << (p.spilled ? "true" : "false")
       << ",\"components\":";
    append_components(os, p.components);
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace ipso::trace
