#include "trace/cli_opts.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ipso::trace {

/// Bumped when the library surface grows; --version prints it so a bug
/// report pins the build without needing the git hash.
#define IPSO_VERSION_STRING "0.5.0"

namespace {

/// "--flag value" / "--flag=value" scan; returns nullptr when absent.
const char* arg_value(int argc, char** argv, const std::string& flag) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(prefix, 0) == 0) return argv[i] + prefix.size();
  }
  return nullptr;
}

bool parse_double(const char* s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

/// Strict flag lookup: distinguishes absent from present-without-a-value
/// (arg_value treats both as absent, which is right for the degrade-to-
/// default scans above but wrong for named errors).
enum class FlagState { kAbsent, kMissingValue, kHasValue };

FlagState find_flag(int argc, char** argv, const std::string& flag,
                    const char** value) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag) {
      if (i + 1 >= argc) return FlagState::kMissingValue;
      *value = argv[i + 1];
      return FlagState::kHasValue;
    }
    if (arg.rfind(prefix, 0) == 0) {
      *value = argv[i] + prefix.size();
      return FlagState::kHasValue;
    }
  }
  return FlagState::kAbsent;
}

}  // namespace

std::string flag_help() {
  return
      "  --threads N        worker threads (0/absent = default; "
      "IPSO_THREADS env)\n"
      "  --fail-prob P      per-attempt task failure probability in [0, 1)\n"
      "  --speculate [F]    speculative execution (optional fraction F)\n"
      "  --max-retries K    retry budget before stage rollback\n"
      "  --trace-out FILE   write a Chrome trace JSON on exit "
      "(IPSO_TRACE env)\n"
      "  --help, -h         print this flag table and exit\n"
      "  --version          print the build-info string and exit\n";
}

std::string version_string() {
  std::string out = "ipso " IPSO_VERSION_STRING " (C++";
  out += std::to_string(__cplusplus / 100 % 100);
#if defined(__clang__)
  out += ", clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  out += ", gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__);
#endif
#if defined(NDEBUG)
  out += ", optimized";
#else
  out += ", debug";
#endif
  return out + ")";
}

bool handle_info_flags(int argc, char** argv, std::string_view description) {
  bool help = false;
  bool version = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") help = true;
    if (arg == "--version") version = true;
  }
  if (help) {
    const char* prog = argc > 0 && argv[0] != nullptr ? argv[0] : "ipso";
    if (!description.empty()) {
      std::printf("%.*s\n\n", static_cast<int>(description.size()),
                  description.data());
    }
    std::printf("usage: %s [flags]\n\nflags:\n%s", prog, flag_help().c_str());
    return true;
  }
  if (version) {
    std::printf("%s\n", version_string().c_str());
    return true;
  }
  return false;
}

RunnerConfig runner_config_from_args(int argc, char** argv) {
  RunnerConfig cfg;
  if (const char* v = arg_value(argc, argv, "--threads")) {
    char* end = nullptr;
    const unsigned long t = std::strtoul(v, &end, 10);
    if (end != v && *end == '\0' && t > 0 && t <= 1024) cfg.threads = t;
  }
  return cfg;
}

sim::FaultModelParams fault_params_from_args(int argc, char** argv,
                                             sim::FaultModelParams base) {
  if (const char* v = arg_value(argc, argv, "--fail-prob")) {
    double p = 0.0;
    if (parse_double(v, &p) && p >= 0.0 && p < 1.0) {
      base.task_failure_prob = p;
    }
  }
  if (const char* v = arg_value(argc, argv, "--max-retries")) {
    char* end = nullptr;
    const unsigned long k = std::strtoul(v, &end, 10);
    if (end != v && *end == '\0' && k <= 1000) base.max_task_retries = k;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--speculate") {
      base.speculation = true;
      // An optional numeric value right after the flag is the fraction.
      double f = 0.0;
      if (i + 1 < argc && parse_double(argv[i + 1], &f) && f >= 0.0 &&
          f <= 1.0) {
        base.speculation_fraction = f;
      }
    } else if (arg.rfind("--speculate=", 0) == 0) {
      base.speculation = true;
      double f = 0.0;
      if (parse_double(arg.c_str() + 12, &f) && f >= 0.0 && f <= 1.0) {
        base.speculation_fraction = f;
      }
    }
  }
  return base;
}

std::string trace_out_from_args(int argc, char** argv) {
  if (const char* v = arg_value(argc, argv, "--trace-out")) return v;
  if (const char* env = std::getenv("IPSO_TRACE")) return env;
  return {};
}

CliOptions parse_cli_options(int argc, char** argv,
                             sim::FaultModelParams fault_base) {
  CliOptions opts;
  opts.runner = runner_config_from_args(argc, argv);
  opts.faults = fault_params_from_args(argc, argv, fault_base);
  opts.trace_out = trace_out_from_args(argc, argv);
  return opts;
}

std::string FlagError::to_string() const { return flag + ": " + message; }

Expected<std::size_t, FlagError> size_flag_from_args(
    int argc, char** argv, const std::string& flag, std::size_t fallback,
    std::size_t min_value, std::size_t max_value) {
  const char* v = nullptr;
  switch (find_flag(argc, argv, flag, &v)) {
    case FlagState::kAbsent:
      return fallback;
    case FlagState::kMissingValue:
      return FlagError{flag, "missing a value"};
    case FlagState::kHasValue:
      break;
  }
  // strtoull happily wraps "-5" into a huge value; reject signs up front.
  if (*v == '\0' || *v == '-' || *v == '+') {
    return FlagError{flag, "expected an unsigned integer, got '" +
                               std::string(v) + "'"};
  }
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') {
    return FlagError{flag, "expected an unsigned integer, got '" +
                               std::string(v) + "'"};
  }
  if (n < min_value || n > max_value) {
    std::string range = "[" + std::to_string(min_value) + ", " +
                        (max_value == std::numeric_limits<std::size_t>::max()
                             ? std::string("inf")
                             : std::to_string(max_value)) +
                        "]";
    return FlagError{flag,
                     "value " + std::to_string(n) + " outside " + range};
  }
  return static_cast<std::size_t>(n);
}

Expected<double, FlagError> double_flag_from_args(
    int argc, char** argv, const std::string& flag, double fallback,
    double min_value, double max_value) {
  const char* v = nullptr;
  switch (find_flag(argc, argv, flag, &v)) {
    case FlagState::kAbsent:
      return fallback;
    case FlagState::kMissingValue:
      return FlagError{flag, "missing a value"};
    case FlagState::kHasValue:
      break;
  }
  double d = 0.0;
  if (!parse_double(v, &d)) {
    return FlagError{flag,
                     "expected a number, got '" + std::string(v) + "'"};
  }
  if (!(d >= min_value && d <= max_value)) {  // NaN fails too
    return FlagError{flag, "value " + std::to_string(d) + " outside [" +
                               std::to_string(min_value) + ", " +
                               std::to_string(max_value) + "]"};
  }
  return d;
}

Expected<std::string, FlagError> string_flag_from_args(
    int argc, char** argv, const std::string& flag, std::string fallback) {
  const char* v = nullptr;
  switch (find_flag(argc, argv, flag, &v)) {
    case FlagState::kAbsent:
      return fallback;
    case FlagState::kMissingValue:
      return FlagError{flag, "missing a value"};
    case FlagState::kHasValue:
      break;
  }
  if (*v == '\0') return FlagError{flag, "expected a non-empty value"};
  return std::string(v);
}

}  // namespace ipso::trace
