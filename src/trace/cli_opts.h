#pragma once

#include "core/expected.h"
#include "sim/fault.h"
#include "trace/runner.h"

#include <cstddef>
#include <limits>
#include <string>
#include <string_view>

/// \file cli_opts.h
/// Shared CLI flag parsing for the bench/example executables. Every binary
/// historically re-declared the same `--threads` / fault-flag scan; this is
/// the one place those flags (and `--trace-out`) are defined.
///
/// Flags:
///   --threads N            worker threads (0/absent = default)
///   --fail-prob P          per-attempt task failure probability
///   --speculate [F]        speculative execution (optional fraction F)
///   --max-retries K        retry budget before stage rollback
///   --trace-out FILE       enable obs tracing, write Chrome trace JSON to
///                          FILE on exit (IPSO_TRACE env is the fallback)
///   --help / -h            print the flag table and exit
///   --version              print a build-info string and exit
///
/// Malformed or out-of-range values are ignored (the flag keeps its base
/// value) so a typo degrades to defaults instead of aborting a long sweep;
/// --help is how a user discovers the table instead of guessing.
///
/// Long-running daemons want the opposite policy: a typo'd --cache-cap
/// silently running with the default is worse than refusing to start. The
/// *_flag_from_args family below parses a single flag strictly and returns
/// a named FlagError (which flag, what was wrong) instead of degrading;
/// absent flags still yield the fallback.

namespace ipso::trace {

/// The shared flag table, one flag per line (what --help prints).
std::string flag_help();

/// Build-info string, e.g. "ipso 0.5.0 (C++20, gcc 12.2.0)".
std::string version_string();

/// Handles the informational flags every main supports: when argv contains
/// --help/-h the program description (if any), usage line, and flag table
/// are printed to stdout; when it contains --version the build-info string
/// is printed. Returns true when either flag was seen — the caller should
/// then exit 0 immediately.
bool handle_info_flags(int argc, char** argv,
                       std::string_view description = {});

/// Scans argv for "--threads N" / "--threads=N" and returns a RunnerConfig
/// (0 = default when the flag is absent).
RunnerConfig runner_config_from_args(int argc, char** argv);

/// Scans argv for the fault-injection flags and overlays them onto `base`.
sim::FaultModelParams fault_params_from_args(
    int argc, char** argv, sim::FaultModelParams base = {});

/// Resolves the trace output path: "--trace-out FILE" / "--trace-out=FILE",
/// falling back to the IPSO_TRACE environment variable. Empty = tracing
/// stays disabled (pass the result straight to obs::TraceSession).
std::string trace_out_from_args(int argc, char** argv);

/// Everything the shared flags configure, parsed in one call.
struct CliOptions {
  RunnerConfig runner;
  sim::FaultModelParams faults;
  std::string trace_out;
};

/// One-call parse of every shared flag; `fault_base` seeds the fault params
/// the same way fault_params_from_args' `base` does.
CliOptions parse_cli_options(int argc, char** argv,
                             sim::FaultModelParams fault_base = {});

/// Named flag-parse failure: which flag was wrong and why. to_string()
/// renders e.g. `--cache-cap: expected an unsigned integer, got 'lots'`.
struct FlagError {
  std::string flag;
  std::string message;
  [[nodiscard]] std::string to_string() const;
};

/// Strict "--flag N" / "--flag=N" parse. Absent => `fallback`; present
/// with a malformed, negative, or out-of-[min,max] value => FlagError
/// (including a flag with no value at all).
[[nodiscard]] Expected<std::size_t, FlagError> size_flag_from_args(
    int argc, char** argv, const std::string& flag, std::size_t fallback,
    std::size_t min_value = 0,
    std::size_t max_value = std::numeric_limits<std::size_t>::max());

/// Strict double flag, same contract as size_flag_from_args.
[[nodiscard]] Expected<double, FlagError> double_flag_from_args(
    int argc, char** argv, const std::string& flag, double fallback,
    double min_value, double max_value);

/// Strict string flag: absent => `fallback`; present but empty (or with no
/// value) => FlagError.
[[nodiscard]] Expected<std::string, FlagError> string_flag_from_args(
    int argc, char** argv, const std::string& flag, std::string fallback);

}  // namespace ipso::trace
