#pragma once

#include "stats/series.h"

/// \file reference_data.h
/// Measurement data published in the paper, embedded as reference datasets.
/// Used (a) to run IPSO's fitting pipeline on the exact numbers the authors
/// used, and (b) as pass/fail anchors for the reproduction benches.

namespace ipso::trace::reference {

/// Paper Table I: Collaborative Filtering (from Orchestra [12]).
/// Columns: n, E[max Tp,i(n)] seconds, Wo(n) seconds.
struct CfRow {
  double n;
  double e_max_tp;
  double wo;
};

/// The four published rows of Table I.
inline constexpr CfRow kCollabFilteringTable[] = {
    {10.0, 209.0, 5.5},
    {30.0, 79.3, 17.7},
    {60.0, 43.7, 36.0},
    {90.0, 31.1, 54.3},
};

/// E[Tp,1(1)] the paper extrapolates from the matched curve (Section V).
inline constexpr double kCfTp1 = 1602.5;

/// The paper's peak speedup observation for CF ("the dismal speedup, 21,
/// at its peak") and the scale-out degree beyond which scaling only hurts.
inline constexpr double kCfPeakSpeedup = 21.0;
inline constexpr double kCfPeakN = 60.0;

/// E[max Tp,i(n)] as a series.
stats::Series cf_max_tp_series();

/// Wo(n) as a series.
stats::Series cf_wo_series();

/// Paper Fig. 6 linear fits of the internal scaling factor.
inline constexpr double kSortInSlope = 0.36;
inline constexpr double kSortInIntercept = -0.11;
inline constexpr double kTeraSortInSlope = 0.23;     // n > 16
inline constexpr double kTeraSortInIntercept = 2.72;
inline constexpr double kTeraSortPreSpillSlope = 0.15;   // Fig. 5 IN'(n)
inline constexpr double kTeraSortPostSpillSlope = 0.25;  // Fig. 5 IN(n)
inline constexpr double kTeraSortSpillOnsetN = 15.0;

/// Paper's in-proportion ratio and speedup bound for TeraSort (Section V).
inline constexpr double kTeraSortEpsilon = 4.3;
inline constexpr double kTeraSortSpeedupBound = 3.0;

}  // namespace ipso::trace::reference
