#pragma once

#include "core/fit.h"
#include "core/workload.h"
#include "mapreduce/engine.h"
#include "sim/cluster.h"
#include "spark/engine.h"
#include "stats/series.h"

#include <functional>
#include <vector>

/// \file experiment.h
/// Experiment harness: sweeps a MapReduce workload over scale-out degrees,
/// runs both the parallel and the sequential execution model at each point,
/// and extracts the measured speedup plus the normalized scaling factors —
/// exactly the measurement procedure of paper Section V. Results are
/// averages over repetitions ("the data presented are average results of
/// multiple experimental runs").

namespace ipso::trace {

/// The HDFS-block memory budget per processing unit used by the
/// memory-bounded (Sun-Ni) sweep mode (paper: "e.g., 128 MB").
inline constexpr double kMemoryBlockBytes = 128e6;

/// Sweep parameters.
struct MrSweepConfig {
  WorkloadType type = WorkloadType::kFixedTime;
  std::vector<double> ns;      ///< scale-out degrees to sweep
  /// Fixed-time: input bytes per map task (a 128 MB block by default).
  /// Fixed-size: total working-set bytes, split across the n tasks.
  /// Memory-bounded: total working-set bytes; each unit takes at most one
  /// 128 MB block, so EX(n) = g(n) grows ~n until the data is exhausted.
  double bytes = 128e6;
  std::size_t repetitions = 3;  ///< averaged runs per point
  std::uint64_t seed = 1;
  double measurement_precision = 0.0;  ///< 1.0 reproduces the paper's clock
  /// Fault injection applied to every job of the sweep (sim::FaultModel);
  /// inactive by default. Failure draws are deterministic per
  /// (seed, n, task, attempt), so sweep results stay bit-identical at any
  /// runner thread count.
  sim::FaultModelParams faults{};
};

/// One sweep point, averaged over repetitions.
struct MrSweepPoint {
  double n = 1.0;
  double parallel_time = 0.0;    ///< mean parallel makespan
  double sequential_time = 0.0;  ///< mean sequential-model makespan
  double speedup = 0.0;          ///< sequential / parallel
  WorkloadComponents components; ///< mean Wp/Ws/Wo/maxTp attribution
  bool spilled = false;          ///< reducer memory overflowed
  sim::FaultStats faults;        ///< fault counters summed over repetitions
};

/// Full sweep result with derived factor series.
struct MrSweepResult {
  std::vector<MrSweepPoint> points;
  stats::Series speedup;   ///< measured S(n)
  FactorMeasurements factors;  ///< normalized EX/IN/q and eta (Section V)
  double tp1 = 0.0;  ///< E[Tp,1(1)]: parallel workload at n = 1, time units
  double ts1 = 0.0;  ///< E[Ts(1)]: serial workload at n = 1
};

/// Runs the sweep. `base` supplies every cluster parameter except the
/// worker count, which is overridden per point. Throws on an empty sweep.
/// This is a convenience wrapper over a default-configured ExperimentRunner
/// (see trace/runner.h): the grid executes in parallel across
/// IPSO_THREADS-or-hardware-concurrency threads, with results bit-identical
/// to serial execution.
MrSweepResult run_mr_sweep(const mr::MrWorkloadSpec& workload,
                           const sim::ClusterConfig& base,
                           const MrSweepConfig& sweep);

/// Gustafson / Amdahl baseline curve over the sweep's n values, using the
/// sweep's measured eta (for side-by-side tables as in Figs. 4, 7, 8).
stats::Series law_baseline(const MrSweepResult& result, WorkloadType type);

/// Spark sweep parameters (paper Section V.B): scale the parallel degree m
/// while either keeping N/m fixed (fixed-time dimension, Fig. 9) or keeping
/// N fixed (fixed-size dimension, Fig. 10).
struct SparkSweepConfig {
  WorkloadType type = WorkloadType::kFixedTime;
  std::vector<double> ms;  ///< parallel degrees to sweep
  std::size_t tasks_per_executor = 4;  ///< N/m for the fixed-time dimension
  std::size_t total_tasks = 96;        ///< N for the fixed-size dimension
  std::uint64_t seed = 1;
  spark::SparkEngineParams params{};
};

/// One Spark sweep point.
struct SparkSweepPoint {
  double m = 1.0;
  std::size_t total_tasks = 1;
  double parallel_time = 0.0;
  double sequential_time = 0.0;
  double speedup = 0.0;
  WorkloadComponents components;
  bool spilled = false;
  sim::FaultStats faults;  ///< fault counters of the parallel run
};

/// Spark sweep result.
struct SparkSweepResult {
  std::vector<SparkSweepPoint> points;
  stats::Series speedup;       ///< measured S(m)
  FactorMeasurements factors;  ///< EX/IN/q normalized; eta from m = 1
  double tp1 = 0.0;
  double ts1 = 0.0;
};

/// Runs a Spark sweep. `app_for` builds the application for a given N (CF
/// divides a fixed total workload across N tasks; the ML apps ignore N in
/// their per-task costs) and must be thread-safe — sweep points run on an
/// ExperimentRunner's pool (trace/runner.h). `base` supplies cluster
/// parameters; workers are overridden with m at each point.
SparkSweepResult run_spark_sweep(
    const std::function<spark::SparkAppSpec(std::size_t)>& app_for,
    const sim::ClusterConfig& base, const SparkSweepConfig& sweep);

}  // namespace ipso::trace
