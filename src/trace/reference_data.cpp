#include "trace/reference_data.h"

namespace ipso::trace::reference {

stats::Series cf_max_tp_series() {
  stats::Series s("CF E[max Tp,i(n)]");
  for (const auto& row : kCollabFilteringTable) s.add(row.n, row.e_max_tp);
  return s;
}

stats::Series cf_wo_series() {
  stats::Series s("CF Wo(n)");
  for (const auto& row : kCollabFilteringTable) s.add(row.n, row.wo);
  return s;
}

}  // namespace ipso::trace::reference
