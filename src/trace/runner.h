#pragma once

#include "runtime/exec_pool.h"
#include "trace/experiment.h"

#include <cstddef>
#include <functional>
#include <string>

#include "core/sync.h"

/// \file runner.h
/// ExperimentRunner: the parallel sweep engine behind every experiment in
/// this repository. A sweep's (workload, n, repetition) grid decomposes
/// into independent simulator runs — each task's RNG seed is derived only
/// from (base seed, n, rep), and repetition averages are reduced in
/// repetition order — so results are bit-identical to the historical serial
/// harness at any thread count.
///
/// The free functions run_mr_sweep / run_spark_sweep in experiment.h remain
/// as thin wrappers over a default-configured runner; construct a runner
/// explicitly to pin the thread count, observe per-task progress, or read
/// aggregate metrics.

namespace ipso::trace {

/// Runner configuration.
struct RunnerConfig {
  /// Worker threads. 0 = IPSO_THREADS environment variable if set,
  /// otherwise the hardware concurrency.
  std::size_t threads = 0;
};

/// Aggregate counters across every sweep a runner has executed.
struct RunnerMetrics {
  std::size_t sweeps_run = 0;       ///< completed sweep calls
  std::size_t tasks_completed = 0;  ///< simulator tasks executed
  double busy_seconds = 0.0;        ///< summed per-task wall time
  double wall_seconds = 0.0;        ///< summed per-sweep wall time
};

/// One completed sweep task, reported through the progress callback.
struct TaskEvent {
  std::string sweep;           ///< sweep label (workload name or "spark")
  double n = 1.0;              ///< scale-out degree of the task
  std::size_t rep = 0;         ///< repetition index (0 for Spark points)
  std::size_t completed = 0;   ///< tasks finished so far in this sweep
  std::size_t total = 0;       ///< total tasks in this sweep
  double wall_seconds = 0.0;   ///< wall time of this task
  /// Aggregate counters snapshotted atomically with `completed`: the event
  /// stream observes metrics.tasks_completed strictly increasing.
  RunnerMetrics metrics;
};

/// Owns the thread pool, the progress callback, and the metrics. Safe to
/// reuse across many sweeps; a single sweep call uses the whole pool.
class ExperimentRunner {
 public:
  using ProgressCallback = std::function<void(const TaskEvent&)>;

  explicit ExperimentRunner(RunnerConfig cfg = {});

  /// Installs a progress callback, invoked once per finished task. Called
  /// from worker threads, but never concurrently (an internal mutex
  /// serializes invocations), and delivered in counter order: successive
  /// events carry strictly increasing `completed` and metrics snapshots.
  /// The callback may call metrics() — the counters are guarded by a
  /// different mutex than the one serializing delivery.
  void on_progress(ProgressCallback cb) IPSO_EXCLUDES(mu_);

  /// Resolved worker-thread count.
  std::size_t threads() const noexcept { return pool_.size(); }

  /// Parallel MapReduce sweep; bit-identical to the serial procedure of
  /// paper Section V (see experiment.h for the semantics of `sweep`).
  MrSweepResult run_mr_sweep(const mr::MrWorkloadSpec& workload,
                             const sim::ClusterConfig& base,
                             const MrSweepConfig& sweep);

  /// Parallel Spark sweep (paper Section V.B). `app_for` is invoked from
  /// worker threads and must be thread-safe; the bundled Spark app builders
  /// are pure functions of their argument.
  SparkSweepResult run_spark_sweep(
      const std::function<spark::SparkAppSpec(std::size_t)>& app_for,
      const sim::ClusterConfig& base, const SparkSweepConfig& sweep);

  /// Snapshot of the aggregate counters.
  RunnerMetrics metrics() const IPSO_EXCLUDES(mu_);

 private:
  void record_task(const std::string& sweep_label, double n, std::size_t rep,
                   std::size_t total, std::size_t* completed,
                   double wall_seconds) IPSO_EXCLUDES(progress_mu_, mu_);

  runtime::ExecPool pool_;
  /// Outer delivery lock: held across counter update + snapshot + callback,
  /// so events arrive serialized and in counter order. Guards no fields by
  /// design — it exists purely to order deliveries, so the guarded-by audit
  /// is waived for it. DESIGN.md §13, capability "trace.progress", acquired
  /// strictly before mu_.
  sync::Mutex progress_mu_  // NOLINT(guarded-by-audit): pure delivery-ordering lock; state lives under mu_
      IPSO_ACQUIRED_BEFORE(mu_);
  /// Inner state lock (metrics_ and progress_). Never held while the user
  /// callback runs, so a callback may call metrics() without deadlocking.
  /// DESIGN.md §13, capability "trace.runner".
  mutable sync::Mutex mu_;
  ProgressCallback progress_ IPSO_GUARDED_BY(mu_);
  RunnerMetrics metrics_ IPSO_GUARDED_BY(mu_);
};

}  // namespace ipso::trace
