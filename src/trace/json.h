#pragma once

#include "core/expected.h"
#include "trace/experiment.h"

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

/// \file json.h
/// JSON support for the experiment harness and the serving layer:
///
///  * to_json() exporters turn sweep results into JSON for downstream
///    plotting/analysis tooling (the usual notebook).
///  * JsonValue + parse_json() is a minimal recursive-descent reader for
///    the newline-delimited JSON the serving protocol speaks (serve/proto).
///
/// Doubles are always emitted with max_digits10 (17 significant digits), so
/// a parse -> serialize -> parse round trip reproduces every double
/// bit-exactly; 12-digit output used to truncate values like 1/3.

namespace ipso::trace {

/// Serializes one double exactly (max_digits10); "1" for 1.0, like
/// operator<<. Shared by every JSON writer in the repository.
std::string json_double(double v);

/// Escapes a string for embedding in a JSON string literal: quotes,
/// backslashes, and control characters (\n, \t, ... as \uXXXX or the short
/// forms). Returns the escaped body without surrounding quotes.
std::string json_escape(std::string_view s);

/// One series as {"name": "...", "points": [[x, y], ...]}.
std::string to_json(const stats::Series& series);

/// A MapReduce sweep: speedup + factor series + eta/tp1/ts1 + per-point
/// component attribution.
std::string to_json(const MrSweepResult& result);

/// A Spark sweep: speedup + factor series + per-point attribution.
std::string to_json(const SparkSweepResult& result);

/// Where and why a JSON parse failed.
struct JsonParseError {
  std::size_t offset = 0;   ///< byte offset into the input
  std::string message;      ///< e.g. "expected ':' after object key"

  std::string to_string() const;
};

/// A parsed JSON document node. Objects are ordered maps (deterministic
/// iteration, which the serving layer's canonical hashing relies on).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;  // null
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), str_(std::move(s)) {}
  explicit JsonValue(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}
  explicit JsonValue(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed accessors; wrong-kind access returns the default.
  bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const noexcept {
    return is_number() ? num_ : fallback;
  }
  const std::string& as_string() const noexcept { return str_; }
  const Array& as_array() const noexcept { return arr_; }
  const Object& as_object() const noexcept { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const;

  /// Serializes back to compact JSON (max_digits10 doubles, sorted object
  /// keys — the parse order). parse(dump(v)) == v for every finite value.
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// is an error). Numbers must be finite doubles.
Expected<JsonValue, JsonParseError> parse_json(std::string_view text);

}  // namespace ipso::trace
