#pragma once

#include "trace/experiment.h"

#include <string>

/// \file json.h
/// JSON export of experiment results, so downstream plotting/analysis
/// tooling (the usual notebook) can consume sweeps without parsing the
/// human-readable tables.

namespace ipso::trace {

/// One series as {"name": "...", "points": [[x, y], ...]}.
std::string to_json(const stats::Series& series);

/// A MapReduce sweep: speedup + factor series + eta/tp1/ts1 + per-point
/// component attribution.
std::string to_json(const MrSweepResult& result);

/// A Spark sweep: speedup + factor series + per-point attribution.
std::string to_json(const SparkSweepResult& result);

}  // namespace ipso::trace
