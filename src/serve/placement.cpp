#include "serve/placement.h"

#include <algorithm>

namespace ipso::serve {

std::uint64_t placement_hash(std::string_view bytes) noexcept {
  // FNV-1a 64. Chosen over std::hash for a pinned, documented algorithm:
  // the routing table must not change across standard libraries.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

/// Hash of a small composite label without allocating.
std::uint64_t label_hash(std::string_view prefix, std::uint64_t a,
                         std::uint64_t b) {
  char buf[48];
  std::size_t n = 0;
  for (const char c : prefix) buf[n++] = c;
  for (int i = 0; i < 8; ++i) buf[n++] = static_cast<char>((a >> (8 * i)));
  for (int i = 0; i < 8; ++i) buf[n++] = static_cast<char>((b >> (8 * i)));
  return placement_hash(std::string_view(buf, n));
}

}  // namespace

PlacementPolicy::PlacementPolicy(std::size_t replicas)
    : replicas_(std::max<std::size_t>(1, replicas)) {}

ConsistentHashPlacement::ConsistentHashPlacement(std::size_t replicas,
                                                 std::size_t vnodes)
    : PlacementPolicy(replicas) {
  const std::size_t v = std::max<std::size_t>(1, vnodes);
  ring_.reserve(replicas_ * v);
  for (std::size_t r = 0; r < replicas_; ++r) {
    for (std::size_t k = 0; k < v; ++k) {
      ring_.push_back(VNode{label_hash("vnode:", r, k),
                            static_cast<std::uint32_t>(r)});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const VNode& a, const VNode& b) {
              // Tie-break on replica index so equal points (vanishingly
              // rare) still sort deterministically.
              return a.point != b.point ? a.point < b.point
                                        : a.replica < b.replica;
            });
}

std::size_t ConsistentHashPlacement::replica_for(std::string_view key) {
  const std::uint64_t h = placement_hash(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const VNode& v, std::uint64_t point) { return v.point < point; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->replica;
}

RangePlacement::RangePlacement(std::size_t replicas)
    : PlacementPolicy(replicas) {}

std::size_t RangePlacement::replica_for(std::string_view key) {
  // floor(hash * N / 2^64) via the 128-bit multiply trick: block i owns
  // the contiguous hash range [i*2^64/N, (i+1)*2^64/N).
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(placement_hash(key)) * replicas_;
  return static_cast<std::size_t>(wide >> 64);
}

AffinityPlacement::AffinityPlacement(std::size_t replicas,
                                     std::size_t max_pins)
    : PlacementPolicy(replicas),
      max_pins_(max_pins == 0 ? 64 * 1024 : max_pins) {}

std::size_t AffinityPlacement::replica_for(std::string_view key) {
  sync::MutexLock lock(mu_);
  const auto it = pins_.find(std::string(key));
  if (it != pins_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.replica;
  }
  const std::size_t replica = next_replica_;
  next_replica_ = (next_replica_ + 1) % replicas_;
  lru_.emplace_front(key);
  pins_.emplace(std::string(key), Pin{replica, lru_.begin()});
  while (pins_.size() > max_pins_) {
    pins_.erase(lru_.back());
    lru_.pop_back();
  }
  return replica;
}

std::size_t AffinityPlacement::pins() const {
  sync::MutexLock lock(mu_);
  return pins_.size();
}

std::unique_ptr<PlacementPolicy> make_placement(std::string_view name,
                                                std::size_t replicas) {
  if (name == "hash") {
    return std::make_unique<ConsistentHashPlacement>(replicas);
  }
  if (name == "range") return std::make_unique<RangePlacement>(replicas);
  if (name == "affinity") {
    return std::make_unique<AffinityPlacement>(replicas);
  }
  return nullptr;
}

}  // namespace ipso::serve
