#include "serve/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

/// \file transport.cpp
/// The one translation unit allowed to issue raw socket syscalls (see the
/// raw-socket-io rule in tools/lint/run_lint.py). Everything here is a thin
/// errno-faithful wrapper; policy (framing, batching, backpressure) lives a
/// layer up.

namespace ipso::serve::net {

namespace {

bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) noexcept {
  // Both wire protocols batch application-side; Nagle on top of that only
  // adds delayed-ACK interactions, so it is disabled unconditionally.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

Expected<sockaddr_in, NetError> resolve(const std::string& host,
                                        std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return NetError{"inet_pton: invalid address '" + host + "'"};
  }
  return addr;
}

}  // namespace

std::string errno_text(const char* syscall_name) {
  return std::string(syscall_name) + ": " + std::strerror(errno);
}

Expected<int, NetError> listen_tcp(const std::string& host,
                                   std::uint16_t port, int backlog) {
  auto addr = resolve(host, port);
  if (!addr.has_value()) return addr.error();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return NetError{errno_text("socket")};
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&*addr), sizeof *addr) < 0) {
    const NetError err{errno_text("bind")};
    ::close(fd);
    return err;
  }
  if (::listen(fd, backlog) < 0) {
    const NetError err{errno_text("listen")};
    ::close(fd);
    return err;
  }
  if (!set_nonblocking(fd)) {
    const NetError err{errno_text("fcntl")};
    ::close(fd);
    return err;
  }
  return fd;
}

Expected<int, NetError> connect_tcp(const std::string& host,
                                    std::uint16_t port) {
  auto addr = resolve(host, port);
  if (!addr.has_value()) return addr.error();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return NetError{errno_text("socket")};
  if (::connect(fd, reinterpret_cast<sockaddr*>(&*addr), sizeof *addr) < 0) {
    const NetError err{errno_text("connect")};
    ::close(fd);
    return err;
  }
  set_nodelay(fd);
  return fd;
}

int accept_nonblocking(int listen_fd) {
  const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
  if (fd >= 0) {
    set_nodelay(fd);
    return fd;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
      errno == ECONNABORTED) {
    return -1;
  }
  return -2;
}

std::uint16_t local_port(int fd) noexcept {
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return 0;
  }
  return ntohs(bound.sin_port);
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

IoResult recv_some(int fd, char* buf, std::size_t cap) {
  while (true) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::kClosed, 0};
    if (errno == EINTR) continue;
    return {IoStatus::kError, 0};
  }
}

IoResult send_nonblocking(int fd, const char* data, std::size_t len) {
  while (true) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

IoResult recv_nonblocking(int fd, char* buf, std::size_t cap) {
  while (true) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::kClosed, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

void close_fd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

}  // namespace ipso::serve::net
