#pragma once

#include "core/expected.h"
#include "serve/client.h"
#include "serve/event_loop.h"
#include "serve/placement.h"
#include "serve/proto.h"
#include "serve/transport.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sync.h"

/// \file router.h
/// ipso::serve::Router — the sharded serving tier's front door. A thin
/// routing daemon that speaks the same dual JSON/binary protocol as
/// ipso_serve on its front (the EventLoopServer, via the RequestHandler
/// seam) and fans each request out to one of N ipso_serve replicas over
/// pooled binary Client connections on its back.
///
/// Routing: requests that carry factor observations are keyed by the same
/// canonical fit key the replicas' caches use, so a key always lands on the
/// replica whose cache is warm for it — which replica is the
/// PlacementPolicy's call (placement.h). Keyless deterministic requests
/// (ping, explicit-params predict/classify/recommend, diagnose-from-speedup)
/// round-robin, and unparseable records are forwarded verbatim so the
/// replica's parse-error response is byte-identical to a single node's.
/// `stats` is answered locally with router-level counters (a replica's
/// counters would describe one shard, not the tier).
///
/// Ordering: each upstream connection is a FIFO — batches are sent and
/// their response frames consumed strictly in order, so responses match
/// requests positionally with no per-request ids on the wire.
///
/// Failure: when a replica cannot be reached (or drops mid-batch) every
/// affected request is answered with an "upstream_unavailable" error
/// response, the poisoned connection is closed, and the next batch for that
/// replica reconnects. The router itself never crashes or hangs on a dead
/// replica.
///
/// Shutdown mirrors TcpServer: begin front-end drain, flush every queued
/// upstream request (each gets a real or error response), then close.

namespace ipso::serve {

/// One backend replica address.
struct ReplicaEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Router construction parameters.
struct RouterConfig {
  std::string host = "127.0.0.1";  ///< front-end bind address
  std::uint16_t port = 0;          ///< 0 = ephemeral (read back via port())
  std::size_t shards = 1;          ///< front-end epoll loop threads
  std::vector<ReplicaEndpoint> replicas;
  std::string placement = "hash";  ///< "hash" | "range" | "affinity"
  std::size_t connections_per_replica = 2;
  std::size_t max_upstream_batch = 64;  ///< records per upstream frame
  std::size_t max_frame_bytes = 16u << 20;
  std::size_t write_high_watermark = 4u << 20;
  std::size_t write_low_watermark = 1u << 20;
  int listen_backlog = 1024;
};

/// Monotonic router counters; snapshot via Router::stats().
struct RouterStats {
  std::size_t received = 0;         ///< records entering route()
  std::size_t routed_keyed = 0;     ///< placed by canonical fit key
  std::size_t routed_keyless = 0;   ///< round-robined (incl. parse errors)
  std::size_t answered_local = 0;   ///< stats ops answered by the router
  std::size_t rejected_draining = 0;  ///< answered "draining" at shutdown
  std::size_t upstream_batches = 0;   ///< frames sent to replicas
  std::size_t upstream_errors = 0;    ///< records answered upstream_unavailable
  std::size_t reconnects = 0;         ///< upstream connects (incl. first)
  std::vector<std::size_t> per_replica;  ///< records forwarded per replica
};

class Router {
 public:
  explicit Router(RouterConfig cfg);

  /// Implicit shutdown().
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Validates the config (>= 1 replica, known placement), spawns the
  /// upstream workers, binds the front end. Replicas are connected lazily
  /// on first use — a replica that is down at start() costs nothing until
  /// a request routes to it.
  [[nodiscard]] Expected<bool, NetError> start();

  /// The bound front-end port (resolves ephemeral port 0); 0 before
  /// start().
  [[nodiscard]] std::uint16_t port() const noexcept { return loop_.port(); }

  /// Stops the front end, answers every queued upstream request, joins all
  /// threads. Idempotent.
  void shutdown();

  [[nodiscard]] RouterStats stats() const IPSO_EXCLUDES(stats_mu_);

  /// Front-end event-loop counters.
  [[nodiscard]] NetStats net_stats() const noexcept { return loop_.stats(); }

  /// The active placement policy's name ("hash"/"range"/"affinity").
  [[nodiscard]] const char* placement_name() const noexcept;

 private:
  /// One pooled upstream connection: a binary Client owned by a dedicated
  /// worker thread that drains a FIFO of pending records in batches.
  struct Upstream {
    std::size_t replica = 0;  ///< index into cfg_.replicas
    Client client{Proto::kBinary};  ///< worker-thread-only (no lock needed)
    /// DESIGN.md §13, capability "serve.router.upstream" — a leaf guarding
    /// one connection's FIFO; never held across the socket write.
    sync::Mutex mu;
    sync::CondVar cv;
    struct Pending {
      std::string record;
      std::string id;          ///< parsed request id (for error responses)
      Op op = Op::kUnknown;    ///< parsed op (ditto)
      std::function<void(std::string)> done;
    };
    std::deque<Pending> queue IPSO_GUARDED_BY(mu);
    bool stop IPSO_GUARDED_BY(mu) = false;
    std::thread worker;
  };

  /// The front end's RequestHandler: parse, place, enqueue (or answer
  /// locally).
  void route(std::string record, std::function<void(std::string)> done)
      IPSO_EXCLUDES(stats_mu_);

  /// Worker-thread body for one upstream connection.
  void upstream_loop(Upstream& up);

  /// Local `stats` answer (router-level counters + placement name).
  [[nodiscard]] std::string local_stats_response(const std::string& id) const;

  RouterConfig cfg_;
  std::unique_ptr<PlacementPolicy> placement_;
  std::vector<std::unique_ptr<Upstream>> upstreams_;
  std::atomic<std::size_t> round_robin_{0};  ///< keyless replica cursor
  std::vector<std::unique_ptr<std::atomic<std::size_t>>> conn_cursor_;
  EventLoopServer loop_;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shut_down_{false};

  /// DESIGN.md §13, capability "serve.router.stats" — a leaf held only
  /// over counter bumps and snapshots.
  mutable sync::Mutex stats_mu_{"serve.router.stats"};
  RouterStats stats_ IPSO_GUARDED_BY(stats_mu_);
};

}  // namespace ipso::serve
