#pragma once

#include "core/expected.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

/// \file transport.h
/// The socket seam of ipso::serve. Every raw socket syscall in the repo
/// lives behind these helpers (transport.cpp) — the lint wall's
/// raw-socket-io rule forbids `::send` / `::recv` anywhere else — so the
/// event loop, the client library, and the tests all share one audited
/// short-write/EINTR/SIGPIPE treatment.

namespace ipso::serve {

/// Socket-layer failure: the failing syscall plus the errno text.
struct NetError {
  std::string message;
};

namespace net {

/// Non-blocking I/O outcome.
enum class IoStatus {
  kOk,          ///< made progress (`bytes` > 0)
  kWouldBlock,  ///< EAGAIN/EWOULDBLOCK: retry on next readiness
  kClosed,      ///< orderly peer close (reads only)
  kError,       ///< hard error; close the connection
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
};

/// errno formatted after the failing syscall name.
[[nodiscard]] std::string errno_text(const char* syscall_name);

/// Binds and listens on host:port (port 0 = ephemeral); the fd is
/// non-blocking. The error string names the failing syscall + errno text.
[[nodiscard]] Expected<int, NetError> listen_tcp(const std::string& host,
                                                 std::uint16_t port,
                                                 int backlog);

/// Blocking connect to host:port with TCP_NODELAY set.
[[nodiscard]] Expected<int, NetError> connect_tcp(const std::string& host,
                                                  std::uint16_t port);

/// Accepts one pending connection as a non-blocking, TCP_NODELAY fd.
/// Returns kWouldBlock status via fd -1 when the backlog is empty; -2 on a
/// hard accept error.
[[nodiscard]] int accept_nonblocking(int listen_fd);

/// The locally bound port of `fd` (resolves ephemeral port 0); 0 on error.
[[nodiscard]] std::uint16_t local_port(int fd) noexcept;

/// Blocking full-buffer send (handles short writes + EINTR; MSG_NOSIGNAL
/// keeps a hung-up peer from raising SIGPIPE).
[[nodiscard]] bool send_all(int fd, std::string_view data);

/// Blocking single recv; bytes == 0 with kClosed on EOF.
[[nodiscard]] IoResult recv_some(int fd, char* buf, std::size_t cap);

/// Non-blocking send of as much of `data` as the socket accepts.
[[nodiscard]] IoResult send_nonblocking(int fd, const char* data,
                                        std::size_t len);

/// Non-blocking recv into `buf`.
[[nodiscard]] IoResult recv_nonblocking(int fd, char* buf, std::size_t cap);

void close_fd(int fd) noexcept;

}  // namespace net
}  // namespace ipso::serve
