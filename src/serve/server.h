#pragma once

#include "core/expected.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/event_loop.h"
#include "serve/transport.h"

#include <atomic>
#include <cstdint>
#include <string>

/// \file server.h
/// The TCP front end of ipso::serve. Since PR 6 the listener is an epoll
/// event loop (event_loop.h): a fixed number of shard threads multiplex all
/// connections over non-blocking sockets, and two wire protocols are
/// negotiated per connection from the first byte — newline-delimited JSON
/// (compatibility mode, byte-identical to the PR 4/5 protocol) and the
/// length-prefixed binary batched format (framing.h). TcpServer keeps its
/// original surface: construct with an engine, start(), port(),
/// connections_accepted(), shutdown().
///
/// Shutdown semantics (the CI smoke test's contract): shutdown() stops
/// accepting and reading immediately (eventfd wakeup, no poll tick), drains
/// the engine — every admitted request is answered, new ones are rejected
/// with "draining" — then flushes the remaining responses and closes every
/// connection.

namespace ipso::serve {

/// Listener configuration. The first two fields keep their PR-4 order so
/// `ServerConfig{host, port}` aggregate initialization stays valid; the
/// rest tune the event loop and default sensibly.
struct ServerConfig {
  std::string host = "127.0.0.1";  ///< bind address
  std::uint16_t port = 0;          ///< 0 = ephemeral (read back via port())
  std::size_t shards = 1;          ///< epoll loop threads
  std::size_t max_frame_bytes = 16u << 20;      ///< frame/line size bound
  std::size_t write_high_watermark = 4u << 20;  ///< pause reads above
  std::size_t write_low_watermark = 1u << 20;   ///< resume reads below
  int listen_backlog = 1024;
};

class TcpServer {
 public:
  /// The engine must outlive the server. Construction does not bind;
  /// call start().
  TcpServer(ServeEngine& engine, ServerConfig cfg = {});

  /// Joins every thread and closes every socket (implicit shutdown()).
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the shard loops. The error string names
  /// the failing syscall and errno text.
  Expected<bool, NetError> start();

  /// The bound port (resolves ephemeral port 0); 0 before start().
  std::uint16_t port() const noexcept { return loop_.port(); }

  /// Stops accepting, finishes in-flight requests, drains the engine,
  /// flushes and closes every connection, joins all threads. Idempotent.
  void shutdown();

  /// Connections accepted so far.
  std::size_t connections_accepted() const noexcept {
    return loop_.connections_accepted();
  }

  /// Event-loop counter snapshot (wakeups, frames, bytes, stalls).
  NetStats net_stats() const noexcept { return loop_.stats(); }

 private:
  ServeEngine& engine_;
  EventLoopServer loop_;
  std::atomic<bool> shut_down_{false};
};

/// Minimal blocking JSON-lines client, kept for source compatibility with
/// the PR 4/5 surface; new code should use serve::Client (client.h), which
/// this wraps.
class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient() = default;

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Connects to host:port; error string names syscall + errno text.
  Expected<bool, NetError> connect(const std::string& host,
                                      std::uint16_t port);

  /// Sends one request line (terminating '\n' appended) and reads one
  /// response line.
  Expected<std::string, NetError> roundtrip(const std::string& line);

  void close() { client_.close(); }
  bool connected() const noexcept { return client_.connected(); }

 private:
  Client client_{Proto::kJson};
};

}  // namespace ipso::serve
