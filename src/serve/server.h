#pragma once

#include "core/expected.h"
#include "serve/engine.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

/// \file server.h
/// The TCP front end of ipso::serve: newline-delimited JSON over a loopback
/// (or any) TCP socket. One accept thread plus one thread per connection;
/// each connection processes its requests in order (responses come back in
/// request order), and cross-connection concurrency exercises the engine's
/// pool, cache, and coalescing.
///
/// Shutdown semantics (the CI smoke test's contract): shutdown() stops the
/// accept loop, tells every connection to finish its in-flight request and
/// close, then drains the engine — every admitted request is answered, new
/// ones are rejected with "draining".

namespace ipso::serve {

/// Socket-layer failure: the failing syscall plus the errno text.
struct NetError {
  std::string message;
};

/// Listener configuration.
struct ServerConfig {
  std::string host = "127.0.0.1";  ///< bind address
  std::uint16_t port = 0;          ///< 0 = ephemeral (read back via port())
};

class TcpServer {
 public:
  /// The engine must outlive the server. Construction does not bind;
  /// call start().
  TcpServer(ServeEngine& engine, ServerConfig cfg = {});

  /// Joins every thread and closes every socket (implicit shutdown()).
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the accept loop. The error string names
  /// the failing syscall and errno text.
  Expected<bool, NetError> start();

  /// The bound port (resolves ephemeral port 0); 0 before start().
  std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting, finishes in-flight requests, drains the engine,
  /// joins all threads. Idempotent.
  void shutdown();

  /// Connections accepted so far.
  std::size_t connections_accepted() const noexcept {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  ServeEngine& engine_;
  ServerConfig cfg_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> connections_accepted_{0};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  bool shut_down_ = false;
};

/// Minimal blocking client for the protocol (the CLI tool and the tests).
class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Connects to host:port; error string names syscall + errno text.
  Expected<bool, NetError> connect(const std::string& host,
                                      std::uint16_t port);

  /// Sends one request line (terminating '\n' appended) and reads one
  /// response line.
  Expected<std::string, NetError> roundtrip(const std::string& line);

  void close();
  bool connected() const noexcept { return fd_ >= 0; }

 private:
  Expected<bool, NetError> send_line(const std::string& line);
  Expected<std::string, NetError> recv_line();

  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace ipso::serve
