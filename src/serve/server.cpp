#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ipso::serve {

namespace {

std::string errno_text(const char* syscall_name) {
  return std::string(syscall_name) + ": " + std::strerror(errno);
}

/// Sends the whole buffer, handling short writes. MSG_NOSIGNAL keeps a
/// client that hung up from killing the server with SIGPIPE.
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(ServeEngine& engine, ServerConfig cfg)
    : engine_(engine), cfg_(std::move(cfg)) {}

TcpServer::~TcpServer() { shutdown(); }

Expected<bool, NetError> TcpServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return NetError{errno_text("socket")};
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return NetError{"inet_pton: invalid address '" + cfg_.host + "'"};
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const NetError err{errno_text("bind")};
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }
  if (::listen(listen_fd_, 64) < 0) {
    const NetError err{errno_text("listen")};
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void TcpServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // Short poll timeout so the stop flag is observed promptly; the cost is
    // one syscall per 100 ms on an idle server.
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void TcpServer::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;  // peer closed or error
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    std::size_t nl;
    while ((nl = buffer.find('\n', start)) != std::string::npos) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      // Sequential per connection: responses return in request order.
      std::string response = engine_.handle(line);
      response.push_back('\n');
      if (!send_all(fd, response)) {
        ::close(fd);
        return;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

void TcpServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Connections observe stop_, finish the request they are writing, and
  // exit; after the joins no new work can reach the engine, so the drain
  // below answers everything that was admitted.
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
  }
  for (auto& t : conns) {
    if (t.joinable()) t.join();
  }
  engine_.drain();
}

TcpClient::~TcpClient() { close(); }

Expected<bool, NetError> TcpClient::connect(const std::string& host,
                                               std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return NetError{errno_text("socket")};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    return NetError{"inet_pton: invalid address '" + host + "'"};
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const NetError err{errno_text("connect")};
    close();
    return err;
  }
  return true;
}

Expected<std::string, NetError> TcpClient::roundtrip(
    const std::string& line) {
  if (auto sent = send_line(line); !sent) return sent.error();
  return recv_line();
}

void TcpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Expected<bool, NetError> TcpClient::send_line(const std::string& line) {
  if (fd_ < 0) return NetError{"not connected"};
  if (!send_all(fd_, line + "\n")) return NetError{errno_text("send")};
  return true;
}

Expected<std::string, NetError> TcpClient::recv_line() {
  if (fd_ < 0) return NetError{"not connected"};
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return NetError{errno_text("recv")};
    }
    if (n == 0) return NetError{"connection closed by server"};
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace ipso::serve
