#include "serve/server.h"

#include <utility>

namespace ipso::serve {

namespace {

EventLoopConfig loop_config(const ServerConfig& cfg) {
  EventLoopConfig out;
  out.host = cfg.host;
  out.port = cfg.port;
  out.shards = cfg.shards;
  out.max_frame_bytes = cfg.max_frame_bytes;
  out.write_high_watermark = cfg.write_high_watermark;
  out.write_low_watermark = cfg.write_low_watermark;
  out.listen_backlog = cfg.listen_backlog;
  return out;
}

}  // namespace

TcpServer::TcpServer(ServeEngine& engine, ServerConfig cfg)
    : engine_(engine),
      loop_(
          [&engine](std::string line, std::function<void(std::string)> done) {
            engine.submit_async(std::move(line), std::move(done));
          },
          loop_config(cfg)) {}

TcpServer::~TcpServer() { shutdown(); }

Expected<bool, NetError> TcpServer::start() { return loop_.start(); }

void TcpServer::shutdown() {
  if (shut_down_.exchange(true)) return;
  // Order matters: stop intake first so the engine drain below sees the
  // final set of admitted requests, drain so every response exists, then
  // flush and close. finish() returns only after the shard threads join.
  loop_.begin_drain();
  engine_.drain();
  loop_.finish();
}

Expected<bool, NetError> TcpClient::connect(const std::string& host,
                                               std::uint16_t port) {
  return client_.connect(host, port);
}

Expected<std::string, NetError> TcpClient::roundtrip(
    const std::string& line) {
  return client_.call(line);
}

}  // namespace ipso::serve
