#pragma once

#include "store/fit_cache.h"

/// \file fit_cache.h
/// Compatibility shim: the fit cache moved into the store subsystem when
/// it became tier 0 of the tiered persistent store (store/fit_cache.h,
/// store/tiered_store.h). Serve-layer code keeps its spelling; new code
/// should include the store header directly.

namespace ipso::serve {

using store::FitOutcome;
using store::FitOutcomePtr;
using store::FitCache;
using store::canonical_fit_key;

}  // namespace ipso::serve
