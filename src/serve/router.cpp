#include "serve/router.h"

#include "serve/fit_cache.h"

#include <sstream>
#include <utility>

namespace ipso::serve {

namespace {

EventLoopConfig loop_config(const RouterConfig& cfg) {
  EventLoopConfig out;
  out.host = cfg.host;
  out.port = cfg.port;
  out.shards = cfg.shards;
  out.max_frame_bytes = cfg.max_frame_bytes;
  out.write_high_watermark = cfg.write_high_watermark;
  out.write_low_watermark = cfg.write_low_watermark;
  out.listen_backlog = cfg.listen_backlog;
  return out;
}

}  // namespace

Router::Router(RouterConfig cfg)
    : cfg_(std::move(cfg)),
      loop_(
          [this](std::string record, std::function<void(std::string)> done) {
            route(std::move(record), std::move(done));
          },
          loop_config(cfg_)) {
  if (cfg_.connections_per_replica == 0) cfg_.connections_per_replica = 1;
  if (cfg_.max_upstream_batch == 0) cfg_.max_upstream_batch = 1;
}

Router::~Router() { shutdown(); }

Expected<bool, NetError> Router::start() {
  if (cfg_.replicas.empty()) {
    return NetError{"router needs at least one replica endpoint"};
  }
  placement_ = make_placement(cfg_.placement, cfg_.replicas.size());
  if (!placement_) {
    return NetError{"unknown placement '" + cfg_.placement +
                    "' (expected hash, range, or affinity)"};
  }
  {
    sync::MutexLock lock(stats_mu_);
    stats_.per_replica.assign(cfg_.replicas.size(), 0);
  }
  conn_cursor_.clear();
  for (std::size_t r = 0; r < cfg_.replicas.size(); ++r) {
    conn_cursor_.push_back(std::make_unique<std::atomic<std::size_t>>(0));
    for (std::size_t c = 0; c < cfg_.connections_per_replica; ++c) {
      auto up = std::make_unique<Upstream>();
      up->replica = r;
      upstreams_.push_back(std::move(up));
    }
  }
  for (auto& up : upstreams_) {
    up->worker = std::thread([this, raw = up.get()] { upstream_loop(*raw); });
  }
  auto started = loop_.start();
  if (!started.has_value()) {
    for (auto& up : upstreams_) {
      {
        sync::MutexLock lock(up->mu);
        up->stop = true;
      }
      up->cv.notify_all();
      if (up->worker.joinable()) up->worker.join();
    }
    upstreams_.clear();
    return started.error();
  }
  started_ = true;
  return true;
}

void Router::shutdown() {
  if (shut_down_.exchange(true)) return;
  // Mirror TcpServer::shutdown(): stop intake first so the set of pending
  // upstream records is final, answer all of them (workers drain their
  // queues before exiting), then flush and close the front end.
  loop_.begin_drain();
  stopping_.store(true, std::memory_order_release);
  for (auto& up : upstreams_) {
    {
      sync::MutexLock lock(up->mu);
      up->stop = true;
    }
    up->cv.notify_all();
  }
  for (auto& up : upstreams_) {
    if (up->worker.joinable()) up->worker.join();
  }
  loop_.finish();
}

const char* Router::placement_name() const noexcept {
  return placement_ ? placement_->name() : cfg_.placement.c_str();
}

RouterStats Router::stats() const {
  sync::MutexLock lock(stats_mu_);
  return stats_;
}

void Router::route(std::string record,
                   std::function<void(std::string)> done) {
  {
    sync::MutexLock lock(stats_mu_);
    ++stats_.received;
  }

  // Parse locally only to route; the record itself is forwarded verbatim so
  // a replica sees exactly the bytes a directly-connected client would have
  // sent and produces byte-identical responses.
  auto parsed = parse_request(record);
  if (!parsed.has_value()) {
    // Unparseable records round-robin like other keyless traffic: the
    // replica's parse_error response matches a single node's bytes (the
    // router deliberately does not answer parse errors itself, so error
    // text never forks between tiers).
    if (stopping_.load(std::memory_order_acquire)) {
      {
        sync::MutexLock lock(stats_mu_);
        ++stats_.rejected_draining;
      }
      done(error_response({}, Op::kUnknown, "parse_error", parsed.error()));
      return;
    }
  } else if (parsed->op == Op::kStats) {
    // Answered locally: a single replica's counters would describe one
    // shard of the tier, not the tier.
    std::string response = local_stats_response(parsed->id);
    {
      sync::MutexLock lock(stats_mu_);
      ++stats_.answered_local;
    }
    done(std::move(response));
    return;
  } else if (stopping_.load(std::memory_order_acquire)) {
    {
      sync::MutexLock lock(stats_mu_);
      ++stats_.rejected_draining;
    }
    done(error_response(parsed->id, parsed->op, "draining",
                        "server is draining; not accepting new requests"));
    return;
  }

  std::size_t replica = 0;
  std::string id;
  Op op = Op::kUnknown;
  const bool window_keyed =
      parsed.has_value() && !parsed->workload_key.empty() &&
      (parsed->op == Op::kObserve || parsed->op == Op::kCompare);
  if (window_keyed) {
    // Observation-window traffic is sticky by workload key: every observe
    // and keyed compare for one key must land on the replica that holds
    // that key's window, or the window (and the responses derived from it)
    // would fragment across the tier. The "W:" namespace keeps these
    // placement keys disjoint from canonical fit keys, whose first byte is
    // a format version.
    replica = placement_->replica_for("W:" + parsed->workload_key);
    id = parsed->id;
    op = parsed->op;
    sync::MutexLock lock(stats_mu_);
    ++stats_.routed_keyed;
    ++stats_.per_replica[replica];
  } else if (parsed.has_value() && parsed->has_observations()) {
    // Keyed: the same canonical bytes the replica's fit cache will key on,
    // so placement and caching agree about key identity by construction.
    const std::string key = canonical_fit_key(
        parsed->workload, parsed->eta, parsed->ex, parsed->in, parsed->q);
    replica = placement_->replica_for(key);
    id = parsed->id;
    op = parsed->op;
    sync::MutexLock lock(stats_mu_);
    ++stats_.routed_keyed;
    ++stats_.per_replica[replica];
  } else {
    replica = round_robin_.fetch_add(1, std::memory_order_relaxed) %
              cfg_.replicas.size();
    if (parsed.has_value()) {
      id = parsed->id;
      op = parsed->op;
    }
    sync::MutexLock lock(stats_mu_);
    ++stats_.routed_keyless;
    ++stats_.per_replica[replica];
  }

  const std::size_t conn =
      conn_cursor_[replica]->fetch_add(1, std::memory_order_relaxed) %
      cfg_.connections_per_replica;
  Upstream& up = *upstreams_[replica * cfg_.connections_per_replica + conn];
  bool enqueued = false;
  {
    sync::MutexLock lock(up.mu);
    if (!up.stop) {
      up.queue.push_back(
          Upstream::Pending{std::move(record), id, op, std::move(done)});
      enqueued = true;
    }
  }
  if (enqueued) {
    up.cv.notify_one();
    return;
  }
  // The worker may already have drained and exited; answering here keeps
  // the "every record gets a response" invariant.
  {
    sync::MutexLock lock(stats_mu_);
    ++stats_.rejected_draining;
  }
  done(error_response(id, op, "draining",
                      "server is draining; not accepting new requests"));
}

void Router::upstream_loop(Upstream& up) {
  const ReplicaEndpoint& endpoint = cfg_.replicas[up.replica];
  for (;;) {
    std::vector<Upstream::Pending> batch;
    {
      sync::MutexLock lock(up.mu);
      up.cv.wait(up.mu,
                 [&]() IPSO_REQUIRES(up.mu) {
                   return up.stop || !up.queue.empty();
                 });
      if (up.queue.empty()) return;  // stop && drained
      while (!up.queue.empty() && batch.size() < cfg_.max_upstream_batch) {
        batch.push_back(std::move(up.queue.front()));
        up.queue.pop_front();
      }
    }

    bool ok = up.client.connected();
    if (!ok) {
      auto connected = up.client.connect(endpoint.host, endpoint.port);
      ok = connected.has_value();
      if (ok) {
        sync::MutexLock lock(stats_mu_);
        ++stats_.reconnects;
      }
    }
    if (ok) {
      std::vector<std::string> records;
      records.reserve(batch.size());
      for (const Upstream::Pending& p : batch) records.push_back(p.record);
      auto responses = up.client.call_batch(records);
      // A short frame can only be a server-side error frame (recv_batch
      // verifies the count otherwise); either way the positional request →
      // response match is broken, so the whole batch fails over to error
      // responses and the connection is abandoned.
      if (responses.has_value() && responses->size() == batch.size()) {
        {
          sync::MutexLock lock(stats_mu_);
          ++stats_.upstream_batches;
        }
        for (std::size_t i = 0; i < batch.size(); ++i) {
          batch[i].done(std::move((*responses)[i]));
        }
        continue;
      }
      up.client.close();
    }

    {
      sync::MutexLock lock(stats_mu_);
      stats_.upstream_errors += batch.size();
    }
    const std::string detail = "replica " + endpoint.host + ":" +
                               std::to_string(endpoint.port) +
                               " unreachable or dropped mid-batch";
    for (Upstream::Pending& p : batch) {
      p.done(error_response(p.id, p.op, "upstream_unavailable", detail));
    }
  }
}

std::string Router::local_stats_response(const std::string& id) const {
  RouterStats s = stats();
  Request req;
  req.op = Op::kStats;
  req.id = id;
  std::ostringstream os;
  os << "{\"router\":true,\"placement\":\"" << placement_name()
     << "\",\"replicas\":" << cfg_.replicas.size()
     << ",\"connections_per_replica\":" << cfg_.connections_per_replica
     << ",\"received\":" << s.received
     << ",\"routed_keyed\":" << s.routed_keyed
     << ",\"routed_keyless\":" << s.routed_keyless
     << ",\"answered_local\":" << s.answered_local
     << ",\"rejected_draining\":" << s.rejected_draining
     << ",\"upstream_batches\":" << s.upstream_batches
     << ",\"upstream_errors\":" << s.upstream_errors
     << ",\"reconnects\":" << s.reconnects << ",\"per_replica\":[";
  for (std::size_t i = 0; i < s.per_replica.size(); ++i) {
    if (i != 0) os << ",";
    os << s.per_replica[i];
  }
  os << "]}";
  return ok_response(req, os.str());
}

}  // namespace ipso::serve
