#include "serve/client.h"

#include <utility>

namespace ipso::serve {

namespace {

constexpr std::size_t kRecvChunk = 64 * 1024;

std::unique_ptr<FrameCodec> codec_for(Proto proto) {
  return make_codec(
      proto == Proto::kBinary ? WireProto::kBinary : WireProto::kJson,
      16u << 20);
}

}  // namespace

Client::Client(Proto proto) : proto_(proto), codec_(codec_for(proto)) {}

Client::~Client() { close(); }

Expected<bool, NetError> Client::connect(const std::string& host,
                                         std::uint16_t port) {
  close();
  auto fd = net::connect_tcp(host, port);
  if (!fd.has_value()) return fd.error();
  fd_ = *fd;
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    net::close_fd(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
  decoded_.clear();
}

Expected<std::string, NetError> Client::call(const std::string& record) {
  auto batch = call_batch({record});
  if (!batch.has_value()) return batch.error();
  if (batch->size() != 1) {
    return NetError{"expected 1 response record, got " +
                    std::to_string(batch->size())};
  }
  return std::move(batch->front());
}

Expected<std::vector<std::string>, NetError> Client::call_batch(
    const std::vector<std::string>& records) {
  if (auto sent = send_batch(records); !sent.has_value()) {
    return sent.error();
  }
  return recv_batch(records.size());
}

Expected<bool, NetError> Client::send_batch(
    const std::vector<std::string>& records) {
  if (fd_ < 0) return NetError{"not connected"};
  // An empty batch is a no-op, not a zero-count frame: the matching
  // recv_batch(0) returns no records, so putting bytes on the wire would
  // desynchronize the send/recv pairing (and used to hang call_batch({})
  // waiting for records a zero-count response never carries).
  if (records.empty()) return true;
  if (!net::send_all(fd_, codec_->encode(records))) {
    return NetError{net::errno_text("send")};
  }
  return true;
}

Expected<std::vector<std::string>, NetError> Client::recv_batch(
    std::size_t expected_records) {
  if (fd_ < 0) return NetError{"not connected"};
  // Mirror of the send_batch() no-op: nothing was sent, nothing to read.
  // Without this, a JSON-mode recv_batch(0) with pipelined data already
  // decoded would steal records from the next batch, and a binary-mode one
  // would block on a response that never comes.
  if (expected_records == 0) return std::vector<std::string>{};
  std::vector<std::string> out;
  out.reserve(expected_records);
  while (true) {
    // Consume already-decoded batches first. Binary: one wire frame is one
    // batch. JSON: every line is a batch of one, so keep taking lines until
    // the expected count is reached.
    while (!decoded_.empty()) {
      WireBatch batch = std::move(decoded_.front());
      decoded_.erase(decoded_.begin());
      if (proto_ == Proto::kBinary) {
        // An error frame carries the server's error response record(s)
        // regardless of the request count (the server answers a framing
        // violation with one record and closes).
        if (batch.error_frame) return std::move(batch.records);
        if (batch.records.size() != expected_records) {
          return NetError{"response frame carries " +
                          std::to_string(batch.records.size()) +
                          " records, expected " +
                          std::to_string(expected_records)};
        }
        return std::move(batch.records);
      }
      for (std::string& record : batch.records) {
        out.push_back(std::move(record));
        if (out.size() == expected_records) return out;
      }
    }
    if (proto_ == Proto::kJson && out.size() == expected_records) return out;

    const std::size_t old_size = rbuf_.size();
    rbuf_.resize(old_size + kRecvChunk);
    const net::IoResult r =
        net::recv_some(fd_, rbuf_.data() + old_size, kRecvChunk);
    rbuf_.resize(old_size + (r.status == net::IoStatus::kOk ? r.bytes : 0));
    if (r.status == net::IoStatus::kClosed) {
      return NetError{"connection closed by server"};
    }
    if (r.status != net::IoStatus::kOk) {
      return NetError{net::errno_text("recv")};
    }
    auto ok = codec_->decode(rbuf_, decoded_);
    if (!ok.has_value()) {
      return NetError{"malformed response: " + ok.error().message};
    }
  }
}

}  // namespace ipso::serve
