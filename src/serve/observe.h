#pragma once

#include "stats/series.h"

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/sync.h"

/// \file observe.h
/// Streaming observation windows — the state behind the serve `observe` op.
/// A long-lived engine accepts incremental `(workload_key, n, speedup)`
/// points; each workload key owns a bounded window of the latest value per
/// scale-out degree n, and the `compare` op runs the model zoo over a
/// window snapshot. This is the paper's proposed measurement-based online
/// provisioner, generalized to a model portfolio (ROADMAP).
///
/// Windows are **value-deterministic**: the window after a sequence of
/// observes is a pure function of the multiset of points seen (ordered
/// only by per-n recency for repeated n), not of arrival interleaving —
/// points live in a map ordered by n, and capacity overflow always evicts
/// the smallest n (asymptotic fits weight the tail; the small-n regime is
/// the first to age out). The serve tier's byte-identity contract (routed
/// vs standalone, JSON vs binary) holds for any replica that saw the same
/// observe sequence — the router keeps a workload key sticky to one
/// replica for exactly this reason.
///
/// **Materiality**: a point changes the window only when it adds a new n
/// or moves an existing n's value by more than a relative threshold.
/// Sub-threshold repeats are absorbed — the stored value is kept, so the
/// window bytes (and therefore the content-derived fit-store key) are
/// unchanged and cached zoo fits stay valid. A material change bumps the
/// window version and surrenders the previously recorded fit-store key so
/// the engine can invalidate the superseded fit in every tier.
///
/// Thread-safe; one mutex, no I/O, no system clock.

namespace ipso::serve {

/// Observation-window tuning (ServeConfig carries these through).
struct ObserveConfig {
  /// Max distinct n per workload window; overflow evicts the smallest n.
  std::size_t window_capacity = 64;
  /// Max workload keys held; overflow evicts the least-recently-observed.
  std::size_t max_keys = 4096;
  /// Relative value change at an existing n below which a point is
  /// absorbed (the window is byte-unchanged and no refit is triggered).
  double material_threshold = 0.01;
};

class ObservationStore {
 public:
  explicit ObservationStore(ObserveConfig cfg = {});

  struct ObserveResult {
    stats::Series window{"S(n)"};  ///< snapshot after the point was applied
    std::uint64_t version = 0;     ///< bumped once per material change
    bool material = false;         ///< this point changed the window
    bool absorbed = false;         ///< sub-threshold repeat of an existing n
    bool dropped = false;          ///< full window, n smaller than all kept
    /// Fit-store key recorded by note_fit for the superseded window, handed
    /// back exactly once so the caller invalidates it in the TieredStore.
    std::string superseded_fit_key;
  };

  /// Applies one point to `key`'s window (creating the window if needed).
  ObserveResult observe(const std::string& key, double n, double value)
      IPSO_EXCLUDES(mu_);

  struct WindowSnapshot {
    stats::Series window{"S(n)"};
    std::uint64_t version = 0;
  };

  /// Point-in-time copy of a window; nullopt for an unknown key. Refreshes
  /// the key's recency (a compared key is a live key).
  std::optional<WindowSnapshot> snapshot(const std::string& key)
      IPSO_EXCLUDES(mu_);

  /// Records the fit-store key of a zoo fit computed over `key`'s window
  /// at `version`, so the next material observe can invalidate it. Ignored
  /// when the window has already moved past `version` (the fit is stale on
  /// arrival; content-derived store keys make it unreachable anyway).
  void note_fit(const std::string& key, std::uint64_t version,
                std::string fit_key) IPSO_EXCLUDES(mu_);

  struct Stats {
    std::size_t keys = 0;          ///< windows currently held
    std::size_t points = 0;        ///< observation points currently held
    std::size_t observed = 0;      ///< observe() calls
    std::size_t material = 0;      ///< window-changing observes
    std::size_t absorbed = 0;      ///< sub-threshold repeats
    std::size_t evicted_keys = 0;  ///< windows evicted by max_keys pressure
  };
  [[nodiscard]] Stats stats() const IPSO_EXCLUDES(mu_);

 private:
  struct Window {
    std::map<double, double> points;  ///< n -> latest value, ordered by n
    std::uint64_t version = 0;
    std::uint64_t fit_version = 0;  ///< version fit_key was recorded at
    std::string fit_key;            ///< store key of the last zoo fit
    std::list<std::string>::iterator lru_it{};
  };

  /// Touches (or creates) `key`'s window and refreshes its LRU recency.
  /// May evict the least-recently-observed other key.
  Window& touch(const std::string& key) IPSO_REQUIRES(mu_);

  ObserveConfig cfg_;
  /// DESIGN.md §13, capability "serve.observe" — a leaf: observe/compare
  /// hold it only over in-memory window mutation, never across store or
  /// engine calls.
  mutable sync::Mutex mu_{"serve.observe"};
  std::list<std::string> lru_ IPSO_GUARDED_BY(mu_);  ///< most recent first
  std::unordered_map<std::string, Window> windows_ IPSO_GUARDED_BY(mu_);
  Stats stats_ IPSO_GUARDED_BY(mu_);
};

}  // namespace ipso::serve
