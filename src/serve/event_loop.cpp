#include "serve/event_loop.h"

#include "obs/metrics.h"
#include "serve/proto.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <deque>
#include <thread>
#include <unordered_map>
#include <utility>

namespace ipso::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// epoll user-data tags for the two non-connection fds.
constexpr std::uint64_t kWakeTag = 0;
constexpr std::uint64_t kListenTag = 1;

/// Read chunk appended to a connection's read buffer per recv call.
constexpr std::size_t kReadChunk = 64 * 1024;

/// Compact a partially-flushed write buffer once the dead prefix passes
/// this size (erase-from-front is O(live bytes), so amortize it).
constexpr std::size_t kWriteCompactBytes = 1u << 20;

/// Shrink an idle read buffer whose capacity ballooned past this.
constexpr std::size_t kReadShrinkBytes = 1u << 20;

/// How long finish() keeps flushing responses toward peers that stopped
/// reading before force-closing them.
constexpr std::chrono::seconds kFinishFlushDeadline{2};

struct Instruments {
  obs::Counter wakeups{"serve.net.loop_wakeups"};
  obs::Counter frames_in{"serve.net.frames_in"};
  obs::Counter frames_out{"serve.net.frames_out"};
  obs::Counter requests_in{"serve.net.requests_in"};
  obs::Counter bytes_in{"serve.net.bytes_in"};
  obs::Counter bytes_out{"serve.net.bytes_out"};
  obs::Counter stalls{"serve.net.backpressure_stalls"};
  obs::Counter protocol_errors{"serve.net.protocol_errors"};
  obs::Counter accepted{"serve.net.connections_accepted"};
  obs::Gauge connections{"serve.net.connections"};
  obs::Histogram batch_records{"serve.net.batch_records"};
};

Instruments& instruments() {
  static Instruments i;
  return i;
}

}  // namespace

/// One request batch in flight: pre-sized response slots filled by worker
/// threads (each writes only its own index), an atomic countdown, and the
/// codec mode it must be encoded back with. Kept alive by shared_ptr even
/// if its connection dies first.
struct EventLoopServer::Batch {
  std::vector<std::string> responses;
  std::atomic<std::size_t> remaining{0};
};

struct EventLoopServer::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  std::string rbuf;
  std::string wbuf;
  std::size_t woff = 0;  ///< flushed prefix of wbuf
  std::unique_ptr<FrameCodec> codec;  ///< null until first byte sniffed
  std::deque<std::shared_ptr<Batch>> pending;  ///< FIFO: response order
  bool want_write = false;  ///< EPOLLOUT armed
  bool reading = true;      ///< EPOLLIN armed (false: paused or draining)
  bool paused = false;      ///< reads stopped on the write watermark
  bool closing = false;     ///< close once wbuf and pending empty
};

struct EventLoopServer::Shard {
  std::size_t index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;

  // Inbox: filled by other threads (acceptor shard, engine workers,
  // begin_drain/finish), drained by this shard's loop. DESIGN.md §13,
  // capability "serve.net.shard" — a leaf held only over vector swaps and
  // flag flips.
  sync::Mutex inbox_mu;
  std::vector<int> pending_accepts IPSO_GUARDED_BY(inbox_mu);
  std::vector<std::uint64_t> completions IPSO_GUARDED_BY(inbox_mu);
  bool drain_requested IPSO_GUARDED_BY(inbox_mu) = false;
  bool finish_requested IPSO_GUARDED_BY(inbox_mu) = false;

  // Loop-thread-only state below: owned by this shard's thread for the
  // thread's whole lifetime (thread confinement, not locking), so it is
  // deliberately unannotated.

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  bool draining = false;
  bool finishing = false;
  Clock::time_point finish_deadline{};
};

EventLoopServer::EventLoopServer(RequestHandler handler, EventLoopConfig cfg)
    : handler_(std::move(handler)), cfg_(std::move(cfg)) {
  if (cfg_.shards == 0) cfg_.shards = 1;
  if (cfg_.write_low_watermark > cfg_.write_high_watermark) {
    cfg_.write_low_watermark = cfg_.write_high_watermark / 2;
  }
}

EventLoopServer::~EventLoopServer() {
  begin_drain();
  finish();
}

Expected<bool, NetError> EventLoopServer::start() {
  auto listening =
      net::listen_tcp(cfg_.host, cfg_.port, cfg_.listen_backlog);
  if (!listening.has_value()) return listening.error();
  listen_fd_ = *listening;
  port_ = net::local_port(listen_fd_);

  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->epoll_fd = ::epoll_create1(0);
    if (shard->epoll_fd < 0) return NetError{net::errno_text("epoll_create1")};
    shard->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (shard->wake_fd < 0) return NetError{net::errno_text("eventfd")};
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->wake_fd, &ev) <
        0) {
      return NetError{net::errno_text("epoll_ctl")};
    }
    shards_.push_back(std::move(shard));
  }
  // The listener lives in shard 0 only, level-triggered so an unfinished
  // accept backlog re-reports; accepted fds are dealt round-robin.
  epoll_event lev{};
  lev.events = EPOLLIN;
  lev.data.u64 = kListenTag;
  if (::epoll_ctl(shards_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &lev) <
      0) {
    return NetError{net::errno_text("epoll_ctl")};
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, s = shard.get()] { shard_loop(*s); });
  }
  started_.store(true, std::memory_order_release);
  return true;
}

NetStats EventLoopServer::stats() const noexcept {
  NetStats out;
  out.wakeups = stats_.wakeups.load(std::memory_order_relaxed);
  out.frames_in = stats_.frames_in.load(std::memory_order_relaxed);
  out.frames_out = stats_.frames_out.load(std::memory_order_relaxed);
  out.requests_in = stats_.requests_in.load(std::memory_order_relaxed);
  out.bytes_in = stats_.bytes_in.load(std::memory_order_relaxed);
  out.bytes_out = stats_.bytes_out.load(std::memory_order_relaxed);
  out.backpressure_stalls =
      stats_.backpressure_stalls.load(std::memory_order_relaxed);
  out.protocol_errors =
      stats_.protocol_errors.load(std::memory_order_relaxed);
  out.connections_accepted =
      stats_.connections_accepted.load(std::memory_order_relaxed);
  out.connections_open =
      stats_.connections_open.load(std::memory_order_relaxed);
  return out;
}

void EventLoopServer::begin_drain() {
  if (!started_.load(std::memory_order_acquire) ||
      drain_begun_.exchange(true)) {
    return;
  }
  for (auto& shard : shards_) {
    {
      sync::MutexLock lock(shard->inbox_mu);
      shard->drain_requested = true;
    }
    wake(*shard);
  }
}

void EventLoopServer::finish() {
  if (!started_.load(std::memory_order_acquire) ||
      finished_.exchange(true)) {
    return;
  }
  for (auto& shard : shards_) {
    {
      sync::MutexLock lock(shard->inbox_mu);
      shard->finish_requested = true;
    }
    wake(*shard);
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
    if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
    if (shard->wake_fd >= 0) ::close(shard->wake_fd);
  }
  if (listen_fd_ >= 0) {
    net::close_fd(listen_fd_);
    listen_fd_ = -1;
  }
}

void EventLoopServer::wake(Shard& s) {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the reader; EAGAIN is fine.
  [[maybe_unused]] const ssize_t n =
      ::write(s.wake_fd, &one, sizeof one);
}

void EventLoopServer::notify_completion(Shard& s, std::uint64_t conn_id) {
  bool need_wake;
  {
    sync::MutexLock lock(s.inbox_mu);
    // Only the push that makes the inbox non-empty must signal: the loop
    // drains the whole inbox per wakeup, so later pushes piggyback.
    need_wake = s.completions.empty();
    s.completions.push_back(conn_id);
  }
  if (need_wake) wake(s);
}

void EventLoopServer::shard_loop(Shard& s) {
  std::vector<epoll_event> events(256);
  std::vector<int> accepts;
  std::vector<std::uint64_t> completions;
  while (true) {
    const int timeout_ms = s.finishing ? 20 : -1;
    const int n = ::epoll_wait(s.epoll_fd, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    stats_.wakeups.fetch_add(1, std::memory_order_relaxed);
    instruments().wakeups.add();

    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[static_cast<std::size_t>(i)];
      if (ev.data.u64 == kWakeTag) {
        std::uint64_t drained;
        while (::read(s.wake_fd, &drained, sizeof drained) > 0) {
        }
        continue;
      }
      if (ev.data.u64 == kListenTag) {
        handle_accept(s);
        continue;
      }
      const auto it = s.conns.find(ev.data.u64);
      if (it == s.conns.end()) continue;  // closed earlier this iteration
      Conn& c = *it->second;
      if (ev.events & (EPOLLHUP | EPOLLERR)) {
        close_conn(s, c);
        continue;
      }
      if (ev.events & EPOLLOUT) {
        if (!try_flush(s, c)) continue;
      }
      if (ev.events & (EPOLLIN | EPOLLRDHUP)) {
        handle_readable(s, c);
      }
    }

    // Drain the inbox *after* clearing the eventfd: a producer that pushes
    // between the two will find a non-empty... empty inbox (we swap it out
    // below) and re-signal, so no completion can be stranded behind a
    // cleared counter.
    accepts.clear();
    completions.clear();
    bool drain_now = false;
    bool finish_now = false;
    {
      sync::MutexLock lock(s.inbox_mu);
      accepts.swap(s.pending_accepts);
      completions.swap(s.completions);
      drain_now = s.drain_requested;
      finish_now = s.finish_requested;
    }
    for (int fd : accepts) add_conn(s, fd);
    for (std::uint64_t id : completions) {
      const auto it = s.conns.find(id);
      if (it == s.conns.end()) continue;  // connection died first
      flush_completed(s, *it->second);
    }

    if (drain_now && !s.draining) {
      s.draining = true;
      if (s.index == 0 && listen_fd_ >= 0) {
        ::epoll_ctl(s.epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
      }
      for (auto& [id, conn] : s.conns) {
        if (conn->reading) {
          conn->reading = false;
          update_interest(s, *conn);
        }
      }
    }
    if (finish_now && !s.finishing) {
      s.finishing = true;
      s.finish_deadline = Clock::now() + kFinishFlushDeadline;
    }
    if (s.finishing) {
      // Every admitted request has been answered by now (TcpServer drains
      // the engine between begin_drain and finish); flush what remains and
      // leave once every connection is gone or the deadline passes.
      const bool overdue = Clock::now() >= s.finish_deadline;
      for (auto it = s.conns.begin(); it != s.conns.end();) {
        Conn& c = *it->second;
        ++it;  // close_conn erases; advance first
        flush_completed(s, c);
      }
      for (auto it = s.conns.begin(); it != s.conns.end();) {
        Conn& c = *it->second;
        ++it;
        if (overdue ||
            (c.pending.empty() && c.woff >= c.wbuf.size())) {
          close_conn(s, c);
        }
      }
      if (s.conns.empty()) break;
    }
  }
}

void EventLoopServer::handle_accept(Shard& s) {
  while (true) {
    const int fd = net::accept_nonblocking(listen_fd_);
    if (fd == -1) break;   // backlog empty
    if (fd == -2) break;   // hard error; retry on next readiness
    const std::size_t serial =
        stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    instruments().accepted.add();
    Shard& target = *shards_[serial % shards_.size()];
    if (&target == &s) {
      add_conn(s, fd);
    } else {
      bool need_wake;
      {
        sync::MutexLock lock(target.inbox_mu);
        need_wake = target.pending_accepts.empty();
        target.pending_accepts.push_back(fd);
      }
      if (need_wake) wake(target);
    }
  }
}

void EventLoopServer::add_conn(Shard& s, int fd) {
  if (s.draining) {
    net::close_fd(fd);  // accepted after drain began
    return;
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(s.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
    net::close_fd(fd);
    return;
  }
  stats_.connections_open.fetch_add(1, std::memory_order_relaxed);
  instruments().connections.set(static_cast<double>(
      stats_.connections_open.load(std::memory_order_relaxed)));
  s.conns.emplace(conn->id, std::move(conn));
}

void EventLoopServer::handle_readable(Shard& s, Conn& c) {
  if (!c.reading || c.closing) return;
  while (true) {
    const std::size_t old_size = c.rbuf.size();
    c.rbuf.resize(old_size + kReadChunk);
    const net::IoResult r =
        net::recv_nonblocking(c.fd, c.rbuf.data() + old_size, kReadChunk);
    c.rbuf.resize(old_size + (r.status == net::IoStatus::kOk ? r.bytes : 0));
    if (r.status == net::IoStatus::kOk) {
      stats_.bytes_in.fetch_add(r.bytes, std::memory_order_relaxed);
      instruments().bytes_in.add(static_cast<double>(r.bytes));
      // Parse per chunk so the read buffer stays near one frame's size
      // instead of absorbing a whole pipelined burst before decoding.
      if (!parse_input(s, c)) return;  // fatal framing error or conn gone
      if (!c.reading) return;          // paused on the write watermark
      continue;
    }
    if (r.status == net::IoStatus::kWouldBlock) break;
    close_conn(s, c);  // orderly close or hard error
    return;
  }
  // Edge-triggered read fully drained; reclaim a ballooned buffer.
  if (c.rbuf.capacity() > kReadShrinkBytes &&
      c.rbuf.size() < c.rbuf.capacity() / 4) {
    c.rbuf.shrink_to_fit();
  }
  flush_completed(s, c);
}

bool EventLoopServer::parse_input(Shard& s, Conn& c) {
  if (!c.codec) {
    const WireProto proto = sniff_protocol(c.rbuf);
    if (proto == WireProto::kUnknown) return true;  // need the first byte
    c.codec = make_codec(proto, cfg_.max_frame_bytes);
  }
  std::vector<WireBatch> batches;
  auto decoded = c.codec->decode(c.rbuf, batches);
  for (WireBatch& wire : batches) {
    dispatch_batch(s, c, std::move(wire));
  }
  if (!decoded.has_value()) {
    // Framing is unrecoverable (no resync point after a bad length
    // prefix): answer with a protocol_error and close once it flushes.
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    instruments().protocol_errors.add();
    c.wbuf += c.codec->encode_error(error_response(
        {}, Op::kUnknown, "protocol_error", decoded.error().message));
    c.closing = true;
    c.reading = false;
    c.rbuf.clear();
    update_interest(s, c);
    flush_completed(s, c);
    return false;
  }
  return true;
}

void EventLoopServer::dispatch_batch(Shard& s, Conn& c, WireBatch wire) {
  const std::size_t count = wire.records.size();
  stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
  stats_.requests_in.fetch_add(count, std::memory_order_relaxed);
  instruments().frames_in.add();
  instruments().requests_in.add(static_cast<double>(count));
  instruments().batch_records.observe(static_cast<double>(count));

  auto batch = std::make_shared<Batch>();
  batch->responses.resize(count);
  batch->remaining.store(count, std::memory_order_relaxed);
  c.pending.push_back(batch);
  if (count == 0) return;  // empty frame: answered by an empty frame

  Shard* shard = &s;
  const std::uint64_t conn_id = c.id;
  for (std::size_t i = 0; i < count; ++i) {
    handler_(
        std::move(wire.records[i]),
        [this, shard, conn_id, batch, i](std::string response) {
          // Each worker owns slot i exclusively; the final decrement
          // (acq_rel) publishes every slot to the shard thread's acquire
          // load in flush_completed().
          batch->responses[i] = std::move(response);
          if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
              1) {
            notify_completion(*shard, conn_id);
          }
        });
  }
}

void EventLoopServer::flush_completed(Shard& s, Conn& c) {
  if (c.fd < 0) return;
  bool encoded = false;
  while (!c.pending.empty() &&
         c.pending.front()->remaining.load(std::memory_order_acquire) == 0) {
    const std::shared_ptr<Batch> batch = std::move(c.pending.front());
    c.pending.pop_front();
    c.wbuf += c.codec->encode(batch->responses);
    stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
    instruments().frames_out.add();
    encoded = true;
  }
  if (encoded || c.woff < c.wbuf.size() || c.closing) {
    (void)try_flush(s, c);
  }
}

bool EventLoopServer::try_flush(Shard& s, Conn& c) {
  if (c.fd < 0) return false;
  while (c.woff < c.wbuf.size()) {
    const net::IoResult r = net::send_nonblocking(
        c.fd, c.wbuf.data() + c.woff, c.wbuf.size() - c.woff);
    if (r.status == net::IoStatus::kOk) {
      c.woff += r.bytes;
      stats_.bytes_out.fetch_add(r.bytes, std::memory_order_relaxed);
      instruments().bytes_out.add(static_cast<double>(r.bytes));
      continue;
    }
    if (r.status == net::IoStatus::kWouldBlock) break;
    close_conn(s, c);
    return false;
  }
  if (c.woff >= c.wbuf.size()) {
    c.wbuf.clear();
    c.woff = 0;
  } else if (c.woff >= kWriteCompactBytes) {
    c.wbuf.erase(0, c.woff);
    c.woff = 0;
  }
  const std::size_t backlog = c.wbuf.size() - c.woff;

  if (c.closing && backlog == 0 && c.pending.empty()) {
    close_conn(s, c);
    return false;
  }

  bool interest_changed = false;
  const bool need_write = backlog > 0;
  if (need_write != c.want_write) {
    c.want_write = need_write;
    interest_changed = true;
  }
  // Backpressure: a peer that sends faster than it reads gets its reads
  // paused at the high watermark instead of growing wbuf without bound.
  if (!c.paused && !c.closing && backlog > cfg_.write_high_watermark) {
    c.paused = true;
    c.reading = false;
    stats_.backpressure_stalls.fetch_add(1, std::memory_order_relaxed);
    instruments().stalls.add();
    interest_changed = true;
  } else if (c.paused && backlog <= cfg_.write_low_watermark) {
    c.paused = false;
    if (!s.draining && !c.closing) c.reading = true;
    // EPOLL_CTL_MOD re-reports current readiness as a fresh edge, so bytes
    // that arrived while paused surface on the next epoll_wait.
    interest_changed = true;
  }
  if (interest_changed) update_interest(s, c);
  return true;
}

void EventLoopServer::update_interest(Shard& s, Conn& c) {
  epoll_event ev{};
  ev.events = EPOLLET | EPOLLRDHUP;
  if (c.reading) ev.events |= EPOLLIN;
  if (c.want_write) ev.events |= EPOLLOUT;
  ev.data.u64 = c.id;
  ::epoll_ctl(s.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
}

void EventLoopServer::close_conn(Shard& s, Conn& c) {
  if (c.fd < 0) return;
  ::epoll_ctl(s.epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
  net::close_fd(c.fd);
  c.fd = -1;
  stats_.connections_open.fetch_sub(1, std::memory_order_relaxed);
  instruments().connections.set(static_cast<double>(
      stats_.connections_open.load(std::memory_order_relaxed)));
  // In-flight batches keep their shared_ptr state; completions for this id
  // simply miss the lookup and are dropped.
  s.conns.erase(c.id);
}

}  // namespace ipso::serve
