#pragma once

#include "serve/framing.h"
#include "serve/transport.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

/// \file client.h
/// ipso::serve::Client — the reusable client library for the serving
/// protocol. Speaks either wire mode over the same port:
///
///  * Proto::kJson   — newline-delimited JSON, one record per line
///                     (compatibility mode; what PR 4/5 clients spoke).
///  * Proto::kBinary — length-prefixed batched frames (framing.h); one
///                     frame of N request records yields one frame of N
///                     response records in request order.
///
/// The server negotiates per connection from the first byte received, so a
/// Client just starts talking in its configured mode.
///
/// Pipelining: send_batch() queues request batches without waiting;
/// recv_batch() collects responses in order. call()/call_batch() are the
/// synchronous one-round-trip conveniences. The CLI tool
/// (tools/ipso_client.cpp) and the load bench (bench/bench_serve_load.cpp)
/// are thin consumers of this class.

namespace ipso::serve {

/// Client-side wire mode.
enum class Proto { kJson, kBinary };

[[nodiscard]] constexpr const char* to_string(Proto p) noexcept {
  return p == Proto::kBinary ? "binary" : "json";
}

class Client {
 public:
  explicit Client(Proto proto = Proto::kJson);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (blocking socket, TCP_NODELAY). Error = syscall + errno text.
  [[nodiscard]] Expected<bool, NetError> connect(const std::string& host,
                                                 std::uint16_t port);

  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] Proto proto() const noexcept { return proto_; }

  /// One request record in, one response record out (batch of one).
  [[nodiscard]] Expected<std::string, NetError> call(
      const std::string& record);

  /// One batch in, one batch out: binary sends a single frame; JSON sends
  /// the records as consecutive lines. Responses come back in request
  /// order. An empty batch is a no-op returning an empty vector (nothing
  /// is put on the wire in either protocol).
  [[nodiscard]] Expected<std::vector<std::string>, NetError> call_batch(
      const std::vector<std::string>& records);

  /// Pipelining half 1: queue one request batch on the wire without
  /// reading. N send_batch() calls may be in flight before the first
  /// recv_batch().
  [[nodiscard]] Expected<bool, NetError> send_batch(
      const std::vector<std::string>& records);

  /// Pipelining half 2: read the next response batch, in send order.
  /// `expected_records` must match the size of the corresponding
  /// send_batch() — binary checks the frame against it, JSON (which has no
  /// frame boundary on the wire) reads exactly that many lines.
  [[nodiscard]] Expected<std::vector<std::string>, NetError> recv_batch(
      std::size_t expected_records);

 private:
  int fd_ = -1;
  Proto proto_;
  std::unique_ptr<FrameCodec> codec_;
  std::string rbuf_;                ///< bytes past the last decoded batch
  std::vector<WireBatch> decoded_;  ///< batches decoded but not returned
};

}  // namespace ipso::serve
