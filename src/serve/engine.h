#pragma once

#include "models/zoo.h"
#include "runtime/exec_pool.h"
#include "serve/fit_cache.h"
#include "serve/observe.h"
#include "serve/proto.h"
#include "store/tiered_store.h"

#include <cstddef>
#include <functional>
#include <future>
#include <string>

#include "core/sync.h"

/// \file engine.h
/// ServeEngine: the embeddable core of the model-serving subsystem. One
/// engine owns a runtime::ExecPool worker pool, the tiered fit store
/// (DRAM LRU cache with request coalescing, plus an optional persistent
/// disk tier — store/tiered_store.h), and a bounded admission queue, and
/// exposes the full IPSO pipeline — fit / predict / classify / diagnose /
/// recommend — as request lines in, response lines out.
///
/// Guarantees:
///  * **Determinism** — a response is a pure function of the request line;
///    cached, coalesced, and freshly-computed answers are byte-identical,
///    at any thread count.
///  * **Bounded memory** — at most `queue_capacity` requests are admitted
///    (queued + running); beyond that submit() resolves immediately with an
///    `overloaded` error response instead of queueing. Rejection is O(1)
///    and allocation-light, so saturation sheds load instead of amplifying
///    it.
///  * **Deadlines** — a request whose `deadline_ms` expired while it sat in
///    the queue is answered `deadline_exceeded` without running (work that
///    nobody is waiting for anymore is the first thing shed under load).
///  * **Graceful drain** — drain() stops admission ("draining" responses)
///    and returns once every admitted request has completed; the destructor
///    drains implicitly.
///
/// Everything is instrumented through ipso::obs: queue-depth gauge, cache
/// hit/miss/coalesce counters, per-request latency histograms, and a span
/// per request (visible in the Chrome trace when --trace-out is active).

namespace ipso::serve {

/// Engine construction parameters.
struct ServeConfig {
  /// Worker threads; 0 = runtime::default_thread_count() (IPSO_THREADS).
  std::size_t threads = 0;
  /// Admitted-but-unfinished request bound (queued + running).
  std::size_t queue_capacity = 256;
  /// READY fit outcomes retained by the DRAM tier of the fit store.
  std::size_t cache_capacity = 128;
  /// Directory for the persistent fit tier; empty = DRAM-only. When set,
  /// fits evicted from DRAM spill to versioned checksummed segments and a
  /// restarted engine serves them back without re-fitting (warm restart).
  std::string store_dir;
  /// Active segment roll-over size for the persistent tier.
  std::uint64_t store_segment_bytes = 4ull << 20;
  /// Deadline applied when a request carries none; 0 = no deadline.
  double default_deadline_ms = 0.0;
  /// Streaming observation windows behind the observe/compare ops:
  /// per-workload window capacity, key bound, materiality threshold.
  ObserveConfig observe;
  /// Test hook: runs inside every *real* (non-cached, non-coalesced) fit
  /// computation, on the worker thread. Lets tests hold a fit in flight to
  /// prove coalescing; never set in production.
  std::function<void()> fit_hook;
};

/// Monotonic counters; snapshot via ServeEngine::stats().
///
/// Conservation identity: every arrival is counted in `received` and ends
/// up in exactly one outcome bucket, so at all times
///
///   received == completed + deadline_expired + overloaded
///             + rejected_draining + parse_errors + queue_depth
///
/// and once the engine is drained (queue_depth == 0) the five outcome
/// counters partition `received` exactly. test_serve asserts this.
struct ServeStats {
  std::size_t received = 0;          ///< every arrival, admitted or not
  std::size_t completed = 0;         ///< answered with a computed response
  std::size_t overloaded = 0;        ///< rejected: queue full
  std::size_t rejected_draining = 0; ///< rejected: drain in progress
  std::size_t deadline_expired = 0;  ///< answered deadline_exceeded
  std::size_t parse_errors = 0;      ///< rejected before admission
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;      ///< DRAM misses (disk hit or real fit)
  std::size_t coalesced = 0;         ///< fits shared with an in-flight one
  std::size_t disk_hits = 0;         ///< misses served from the disk tier
  std::size_t queue_depth = 0;       ///< admitted right now
  std::size_t peak_queue_depth = 0;  ///< high-water mark of queue_depth
};

class ServeEngine {
 public:
  explicit ServeEngine(ServeConfig cfg = {});

  /// Drains: every admitted request completes before destruction returns.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Submits one request line. The future always resolves to exactly one
  /// response line (success, error, or rejection) — never throws, never
  /// hangs. Rejections (parse error, overloaded, draining) resolve
  /// immediately on the calling thread.
  std::future<std::string> submit(std::string line) IPSO_EXCLUDES(mu_);

  /// Callback flavor of submit() for the event-loop front end, which cannot
  /// block on futures. `done` is invoked exactly once with the response
  /// line: inline on the calling thread for rejections (parse error,
  /// overloaded, draining), on a worker thread otherwise. The callback must
  /// be cheap and must not re-enter the engine. Every callback for work
  /// admitted before drain() has completed by the time drain() returns.
  void submit_async(std::string line,
                    std::function<void(std::string)> done)
      IPSO_EXCLUDES(mu_);

  /// Synchronous convenience: submit(line).get().
  std::string handle(const std::string& line);

  /// Stops admission, blocks until every admitted request has been
  /// answered, then flushes the fit store (READY outcomes persist and the
  /// active segment is synced). Idempotent; submits during/after drain get
  /// "draining".
  void drain() IPSO_EXCLUDES(mu_);

  /// True once drain() has begun.
  bool draining() const IPSO_EXCLUDES(mu_);

  /// Counter snapshot (includes live cache stats).
  ServeStats stats() const IPSO_EXCLUDES(mu_);

  /// Full tiered-store snapshot (DRAM + tier-crossing + disk counters).
  store::TieredStore::Stats store_stats() const { return store_.stats(); }

  /// Observation-window counters (keys, points, material/absorbed splits).
  ObservationStore::Stats observe_stats() const {
    return observations_.stats();
  }

  /// Outcome of opening the persistent tier (trivially ok when
  /// store_dir is empty). A failed open degrades the engine to DRAM-only
  /// rather than refusing to serve; the daemon reports the message.
  const store::IoStatus& store_status() const noexcept {
    return store_status_;
  }

  /// Underlying fit computations actually performed: DRAM misses minus
  /// misses absorbed by the persistent tier (a promote decodes stored
  /// bits, it does not re-fit). The coalescing, caching, and warm-restart
  /// acceptance tests key off this.
  std::size_t fits_performed() const;

  /// Resolved worker-thread count.
  std::size_t threads() const noexcept { return pool_.size(); }

  /// Drops DRAM-cached fit outcomes (bench cold/hot phases). Persisted
  /// records survive.
  void clear_cache() { store_.clear_memory(); }

 private:
  /// Runs one admitted request; maps ContractViolation escapes to a
  /// "contract_violation" error response (and any other exception to
  /// "internal") so a worker thread can never die on a bad request.
  std::string process(const Request& req);

  /// Dispatches one admitted request; returns the response line. May throw.
  std::string dispatch(const Request& req);

  /// Fit (through the tiered store) for ops that need fitted factors.
  store::TieredStore::Result cached_fit(const Request& req);

  /// The observe/compare ops (split out of dispatch for readability).
  std::string dispatch_observe(const Request& req);
  std::string dispatch_compare(const Request& req);

  ServeConfig cfg_;
  store::TieredStore store_;
  store::IoStatus store_status_;
  ObservationStore observations_;
  models::ModelZoo zoo_;
  runtime::ExecPool pool_;

  /// Admission state + stats (DESIGN.md §13, capability "serve.engine").
  /// Order rank 1: held while calling pool_.submit() (engine → pool edge);
  /// never taken by store, observe, or obs code.
  mutable sync::Mutex mu_{"serve.engine"};
  bool draining_ IPSO_GUARDED_BY(mu_) = false;
  ServeStats stats_ IPSO_GUARDED_BY(mu_);
};

}  // namespace ipso::serve
