#include "serve/proto.h"

#include "core/domain.h"
#include "trace/json.h"

#include <cmath>
#include <sstream>

namespace ipso::serve {

using trace::json_double;
using trace::json_escape;

std::string_view to_string(Op op) noexcept {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kFit: return "fit";
    case Op::kPredict: return "predict";
    case Op::kClassify: return "classify";
    case Op::kDiagnose: return "diagnose";
    case Op::kRecommend: return "recommend";
    case Op::kObserve: return "observe";
    case Op::kCompare: return "compare";
    case Op::kStats: return "stats";
    case Op::kUnknown: return "unknown";
  }
  return "unknown";
}

Op op_from_string(std::string_view name) noexcept {
  if (name == "ping") return Op::kPing;
  if (name == "fit") return Op::kFit;
  if (name == "predict") return Op::kPredict;
  if (name == "classify") return Op::kClassify;
  if (name == "diagnose") return Op::kDiagnose;
  if (name == "recommend") return Op::kRecommend;
  if (name == "observe") return Op::kObserve;
  if (name == "compare") return Op::kCompare;
  if (name == "stats") return Op::kStats;
  return Op::kUnknown;
}

std::vector<double> Request::grid() const {
  if (!ns.empty()) return ns;
  std::vector<double> out;
  for (double n = 1.0; n <= 1024.0; n *= 2.0) out.push_back(n);
  return out;
}

FactorMeasurements Request::measurements() const {
  FactorMeasurements m;
  m.eta = eta;
  m.ex = ex;
  m.in = in;
  m.q = q;
  return m;
}

namespace {

const char* shape_name(GrowthShape s) noexcept {
  switch (s) {
    case GrowthShape::kLinear: return "linear";
    case GrowthShape::kSublinear: return "sublinear";
    case GrowthShape::kBounded: return "bounded";
    case GrowthShape::kPeaked: return "peaked";
  }
  return "unknown";
}

std::optional<WorkloadType> workload_from_string(std::string_view name) {
  if (name == "fixed-time") return WorkloadType::kFixedTime;
  if (name == "fixed-size") return WorkloadType::kFixedSize;
  if (name == "memory-bounded") return WorkloadType::kMemoryBounded;
  return std::nullopt;
}

const char* workload_name(WorkloadType t) noexcept {
  switch (t) {
    case WorkloadType::kFixedSize: return "fixed-size";
    case WorkloadType::kFixedTime: return "fixed-time";
    case WorkloadType::kMemoryBounded: return "memory-bounded";
  }
  return "unknown";
}

/// Reads an array of [x, y] pairs into a named series.
bool read_series(const trace::JsonValue& v, stats::Series* out,
                 std::string* error, const char* key) {
  if (!v.is_array()) {
    *error = std::string("expected array of [n,v] pairs for '") + key + "'";
    return false;
  }
  for (const auto& pair : v.as_array()) {
    if (!pair.is_array() || pair.as_array().size() != 2 ||
        !pair.as_array()[0].is_number() || !pair.as_array()[1].is_number()) {
      *error = std::string("expected array of [n,v] pairs for '") + key + "'";
      return false;
    }
    out->add(pair.as_array()[0].as_number(), pair.as_array()[1].as_number());
  }
  return true;
}

bool read_params(const trace::JsonValue& v, AsymptoticParams* out,
                 std::string* error) {
  if (!v.is_object()) {
    *error = "'params' must be an object";
    return false;
  }
  if (const auto* w = v.get("workload")) {
    const auto type = workload_from_string(w->as_string());
    if (!type) {
      *error = "unknown workload '" + w->as_string() + "' in params";
      return false;
    }
    out->type = *type;
  }
  if (const auto* e = v.get("eta")) out->eta = e->as_number(1.0);
  if (const auto* a = v.get("alpha")) out->alpha = a->as_number(1.0);
  if (const auto* d = v.get("delta")) out->delta = d->as_number(1.0);
  if (const auto* b = v.get("beta")) out->beta = b->as_number(0.0);
  if (const auto* g = v.get("gamma")) out->gamma = g->as_number(0.0);
  // Domain validation at the protocol boundary (core/domain.h): values that
  // would violate a core-type precondition are rejected here with a named,
  // per-field error instead of tripping a contract deep in a worker.
  if (out->eta <= 0.0 || !Eta::valid(out->eta)) {
    *error = "params.eta out of domain: serve requires eta in (0, 1]";
    return false;
  }
  if (!Alpha::valid(out->alpha)) {
    *error = "params.alpha out of domain: alpha must be finite and > 0";
    return false;
  }
  if (!Delta::valid(out->delta)) {
    *error = "params.delta out of domain: delta must be in [0, 1]";
    return false;
  }
  if (!Beta::valid(out->beta)) {
    *error = "params.beta out of domain: beta must be finite and >= 0";
    return false;
  }
  if (!Gamma::valid(out->gamma)) {
    *error = "params.gamma out of domain: gamma must be finite and >= 0";
    return false;
  }
  return true;
}

void append_series_points(std::ostringstream& os, const stats::Series& s) {
  os << "[";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << ",";
    os << "[" << json_double(s[i].x) << "," << json_double(s[i].y) << "]";
  }
  os << "]";
}

void append_power_fit(std::ostringstream& os, const stats::PowerFit& f) {
  os << "{\"coeff\":" << json_double(f.coeff)
     << ",\"exponent\":" << json_double(f.exponent)
     << ",\"r_squared\":" << json_double(f.r_squared) << "}";
}

void append_linear_fit(std::ostringstream& os, const stats::LinearFit& f) {
  os << "{\"slope\":" << json_double(f.slope)
     << ",\"intercept\":" << json_double(f.intercept)
     << ",\"r_squared\":" << json_double(f.r_squared) << "}";
}

}  // namespace

Expected<Request, std::string> parse_request(const std::string& line) {
  const auto doc = trace::parse_json(line);
  if (!doc) return doc.error().to_string();
  // Dereference exactly once, behind the has_value branch above; every later
  // access goes through this checked reference (lint: expected-unchecked-value).
  const trace::JsonValue& root = *doc;
  if (!root.is_object()) return std::string("request must be a JSON object");

  Request req;
  const auto* op = root.get("op");
  if (op == nullptr || !op->is_string()) {
    return std::string("missing required string field 'op'");
  }
  req.op = op_from_string(op->as_string());
  if (req.op == Op::kUnknown) {
    return "unknown op '" + op->as_string() + "'";
  }

  if (const auto* id = root.get("id")) {
    if (id->is_string()) {
      req.id = id->as_string();
    } else if (id->is_number()) {
      req.id = json_double(id->as_number());
    } else {
      return std::string("'id' must be a string or number");
    }
  }

  if (const auto* w = root.get("workload")) {
    const auto type = workload_from_string(w->as_string());
    if (!type) return "unknown workload '" + w->as_string() + "'";
    req.workload = *type;
  }
  std::string error;
  if (const auto* eta = root.get("eta")) {
    req.eta = eta->as_number(-1.0);
    if (req.eta <= 0.0 || !Eta::valid(req.eta)) {
      return std::string("'eta' must be a number in (0, 1]");
    }
  }
  if (const auto* v = root.get("ex")) {
    if (!read_series(*v, &req.ex, &error, "ex")) return error;
  }
  if (const auto* v = root.get("in")) {
    if (!read_series(*v, &req.in, &error, "in")) return error;
  }
  if (const auto* v = root.get("q")) {
    if (!read_series(*v, &req.q, &error, "q")) return error;
  }
  if (const auto* v = root.get("speedup")) {
    if (!read_series(*v, &req.speedup, &error, "speedup")) return error;
  }
  if (const auto* v = root.get("params")) {
    AsymptoticParams p;
    p.type = req.workload;
    if (!read_params(*v, &p, &error)) return error;
    req.params = p;
  }
  if (const auto* v = root.get("ns")) {
    if (!v->is_array()) return std::string("'ns' must be an array of numbers");
    for (const auto& n : v->as_array()) {
      if (!n.is_number() || n.as_number() < 1.0) {
        return std::string("'ns' entries must be numbers >= 1");
      }
      req.ns.push_back(n.as_number());
    }
  }
  if (const auto* v = root.get("key")) {
    if (!v->is_string()) return std::string("'key' must be a string");
    req.workload_key = v->as_string();
  }
  if (const auto* v = root.get("n")) {
    req.observe_n = v->as_number(0.0);
    if (!std::isfinite(req.observe_n) || req.observe_n < 1.0) {
      return std::string("'n' must be a finite number >= 1");
    }
  }
  if (const auto* v = root.get("value")) {
    req.observe_value = v->as_number(0.0);
    if (!std::isfinite(req.observe_value) || req.observe_value <= 0.0) {
      return std::string("'value' must be a finite number > 0");
    }
  }
  if (const auto* v = root.get("observations")) {
    if (!read_series(*v, &req.observations, &error, "observations")) {
      return error;
    }
    for (const auto& p : req.observations.points()) {
      if (!std::isfinite(p.x) || p.x < 1.0 || !std::isfinite(p.y) ||
          p.y <= 0.0) {
        return std::string(
            "'observations' entries must have n >= 1 and speedup > 0");
      }
    }
  }
  if (const auto* v = root.get("knee_frac")) {
    req.knee_frac = v->as_number(0.9);
    if (req.knee_frac <= 0.0 || req.knee_frac > 1.0) {
      return std::string("'knee_frac' must be in (0, 1]");
    }
  }
  if (const auto* v = root.get("deadline_ms")) {
    req.deadline_ms = v->as_number(0.0);
    if (req.deadline_ms < 0.0) {
      return std::string("'deadline_ms' must be >= 0");
    }
  }

  // Per-op input requirements, rejected at admission rather than deep in a
  // worker so a malformed request never occupies a queue slot.
  switch (req.op) {
    case Op::kFit:
      if (!req.has_observations()) {
        return std::string("'fit' requires 'ex' observations");
      }
      break;
    case Op::kPredict:
    case Op::kClassify:
    case Op::kRecommend:
      if (!req.params && !req.has_observations()) {
        return "'" + std::string(to_string(req.op)) +
               "' requires 'params' or 'ex' observations";
      }
      break;
    case Op::kDiagnose:
      if (req.speedup.size() < 3) {
        return std::string("'diagnose' requires >= 3 'speedup' points");
      }
      break;
    case Op::kObserve:
      if (req.workload_key.empty()) {
        return std::string("'observe' requires a non-empty 'key'");
      }
      if (req.observe_n < 1.0) {
        return std::string("'observe' requires 'n' >= 1");
      }
      if (req.observe_value <= 0.0) {
        return std::string("'observe' requires 'value' > 0");
      }
      break;
    case Op::kCompare:
      if (req.workload_key.empty() == req.observations.empty()) {
        return std::string(
            "'compare' requires exactly one of 'key' or 'observations'");
      }
      if (!req.observations.empty() && req.observations.size() < 2) {
        return std::string("'compare' requires >= 2 'observations' points");
      }
      break;
    case Op::kPing:
    case Op::kStats:
    case Op::kUnknown:
      break;
  }
  return req;
}

std::string ok_response(const Request& req, const std::string& result) {
  std::ostringstream os;
  os << "{";
  if (!req.id.empty()) os << "\"id\":\"" << json_escape(req.id) << "\",";
  os << "\"op\":\"" << to_string(req.op) << "\",\"ok\":true,\"result\":"
     << result << "}";
  return os.str();
}

std::string error_response(const std::string& id, Op op,
                           std::string_view code, std::string_view message) {
  std::ostringstream os;
  os << "{";
  if (!id.empty()) os << "\"id\":\"" << json_escape(id) << "\",";
  os << "\"op\":\"" << to_string(op) << "\",\"ok\":false,\"error\":\"" << code
     << "\",\"message\":\"" << json_escape(message) << "\"}";
  return os.str();
}

std::string params_json(const AsymptoticParams& p) {
  std::ostringstream os;
  os << "{\"workload\":\"" << workload_name(p.type)
     << "\",\"eta\":" << json_double(p.eta)
     << ",\"alpha\":" << json_double(p.alpha)
     << ",\"delta\":" << json_double(p.delta)
     << ",\"beta\":" << json_double(p.beta)
     << ",\"gamma\":" << json_double(p.gamma) << "}";
  return os.str();
}

std::string classification_json(const Classification& c) {
  std::ostringstream os;
  os << "{\"type\":\"" << to_string(c.type) << "\",\"shape\":\""
     << shape_name(c.shape) << "\",\"bound\":" << json_double(c.bound)
     << ",\"slope\":" << json_double(c.slope)
     << ",\"peak_n\":" << json_double(c.peak_n)
     << ",\"peak_speedup\":" << json_double(c.peak_speedup)
     << ",\"rationale\":\"" << json_escape(c.rationale) << "\"}";
  return os.str();
}

std::string fit_result_json(const FactorFits& fits) {
  std::ostringstream os;
  os << "{\"params\":" << params_json(fits.params) << ",\"epsilon_fit\":";
  append_power_fit(os, fits.epsilon_fit);
  os << ",\"q_fit\":";
  if (fits.q_fit.has_value()) {
    append_power_fit(os, *fits.q_fit);
  } else {
    os << "{\"absent\":\"" << to_string(fits.q_fit.error()) << "\"}";
  }
  os << ",\"in\":";
  if (fits.in_has_changepoint && fits.in_segmented.has_value()) {
    const auto& seg = *fits.in_segmented;
    os << "{\"kind\":\"segmented\",\"knot\":" << json_double(seg.knot)
       << ",\"left\":";
    append_linear_fit(os, seg.left);
    os << ",\"right\":";
    append_linear_fit(os, seg.right);
    os << "}";
  } else if (fits.in_linear.has_value()) {
    os << "{\"kind\":\"linear\",\"fit\":";
    append_linear_fit(os, *fits.in_linear);
    os << "}";
  } else {
    os << "{\"kind\":\"none\",\"reason\":\""
       << to_string(fits.in_linear.error()) << "\"}";
  }
  os << ",\"classification\":" << classification_json(classify(fits.params))
     << "}";
  return os.str();
}

std::string predict_result_json(const AsymptoticParams& p,
                                const stats::Series& curve) {
  std::ostringstream os;
  os << "{\"params\":" << params_json(p) << ",\"speedup\":{\"name\":\""
     << json_escape(curve.name()) << "\",\"points\":";
  append_series_points(os, curve);
  os << "}}";
  return os.str();
}

std::string recommend_result_json(const AsymptoticParams& p,
                                  const ProvisioningPlan& plan) {
  std::ostringstream os;
  os << "{\"params\":" << params_json(p)
     << ",\"plan\":{\"best_speedup_n\":" << json_double(plan.best_speedup_n)
     << ",\"best_value_n\":" << json_double(plan.best_value_n)
     << ",\"knee_n\":" << json_double(plan.knee_n) << ",\"options\":[";
  for (std::size_t i = 0; i < plan.options.size(); ++i) {
    if (i) os << ",";
    const auto& o = plan.options[i];
    os << "{\"n\":" << json_double(o.n)
       << ",\"speedup\":" << json_double(o.speedup)
       << ",\"cost\":" << json_double(o.cost)
       << ",\"efficiency\":" << json_double(o.efficiency)
       << ",\"value\":" << json_double(o.value) << "}";
  }
  os << "]}}";
  return os.str();
}

std::string diagnose_result_json(const DiagnosticReport& report) {
  std::ostringstream os;
  os << "{\"workload\":\"" << workload_name(report.workload)
     << "\",\"best_guess\":\"" << to_string(report.best_guess)
     << "\",\"shape\":\"" << shape_name(report.empirical.shape)
     << "\",\"tail_exponent\":" << json_double(report.empirical.tail_exponent)
     << ",\"monotone\":" << (report.empirical.monotone ? "true" : "false")
     << ",\"peaked\":" << (report.empirical.peaked ? "true" : "false");
  os << ",\"matched\":";
  if (report.matched.has_value()) {
    os << classification_json(*report.matched);
  } else {
    os << "{\"absent\":\"" << to_string(report.matched.error()) << "\"}";
  }
  os << ",\"summary\":\"" << json_escape(report.summary) << "\"}";
  return os.str();
}

std::string observe_result_json(const std::string& key,
                                const ObservationStore::ObserveResult& r) {
  std::ostringstream os;
  os << "{\"key\":\"" << json_escape(key) << "\",\"material\":"
     << (r.material ? "true" : "false")
     << ",\"absorbed\":" << (r.absorbed ? "true" : "false")
     << ",\"dropped\":" << (r.dropped ? "true" : "false")
     << ",\"version\":" << r.version << ",\"points\":" << r.window.size()
     << ",\"window\":";
  append_series_points(os, r.window);
  os << "}";
  return os.str();
}

std::string compare_result_json(const models::ZooResult& zoo,
                                const std::string& key,
                                const stats::Series& window) {
  std::ostringstream os;
  os << "{";
  if (!key.empty()) os << "\"key\":\"" << json_escape(key) << "\",";
  os << "\"observations\":";
  append_series_points(os, window);
  os << ",\"models\":[";
  for (std::size_t i = 0; i < zoo.scores.size(); ++i) {
    if (i) os << ",";
    const models::ModelScore& s = zoo.scores[i];
    os << "{\"model\":\"" << s.model << "\",\"ok\":"
       << (s.ok ? "true" : "false");
    if (!s.ok) {
      os << ",\"error\":\"" << json_escape(s.error) << "\"}";
      continue;
    }
    os << ",\"k\":" << s.param_count << ",\"params\":{";
    for (std::size_t j = 0; j < s.params.size(); ++j) {
      if (j) os << ",";
      os << "\"" << s.params[j].first
         << "\":" << json_double(s.params[j].second);
    }
    os << "},\"rss\":" << json_double(s.rss)
       << ",\"aic\":" << json_double(s.aic) << ",\"cv\":" << json_double(s.cv)
       << "}";
  }
  os << "],\"winner\":\"" << zoo.winner_name << "\"}";
  return os.str();
}

}  // namespace ipso::serve
