#include "serve/engine.h"

#include "core/contracts.h"
#include "models/ipso_model.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "trace/json.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

namespace ipso::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Cached-id obs instruments (one relaxed load per site when disabled).
struct Instruments {
  obs::Counter received{"serve.requests_received"};
  obs::Counter completed{"serve.requests_completed"};
  obs::Counter overloaded{"serve.requests_overloaded"};
  obs::Counter draining{"serve.requests_rejected_draining"};
  obs::Counter deadline{"serve.requests_deadline_exceeded"};
  obs::Counter parse_errors{"serve.requests_parse_error"};
  obs::Counter cache_hits{"serve.fit_cache_hits"};
  obs::Counter cache_misses{"serve.fit_cache_misses"};
  obs::Counter coalesced{"serve.fit_coalesced"};
  obs::Gauge queue_depth{"serve.queue_depth"};
  obs::Histogram latency{"serve.request_latency_seconds"};
  obs::Histogram queue_wait{"serve.queue_wait_seconds"};
};

Instruments& instruments() {
  static Instruments i;
  return i;
}

/// Predictor for a request that carried explicit asymptotic params: the
/// materialized exact factor curves under those asymptotics.
SpeedupPredictor predictor_from_params(const AsymptoticParams& p) {
  return SpeedupPredictor(p.materialize(), p.eta);
}

}  // namespace

ServeEngine::ServeEngine(ServeConfig cfg)
    : cfg_(std::move(cfg)),
      store_(store::TieredStoreConfig{cfg_.cache_capacity, cfg_.store_dir,
                                      cfg_.store_segment_bytes}),
      store_status_(store_.open()),
      observations_(cfg_.observe),
      pool_(cfg_.threads) {}

ServeEngine::~ServeEngine() { drain(); }

std::future<std::string> ServeEngine::submit(std::string line) {
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  submit_async(std::move(line), [promise](std::string response) {
    promise->set_value(std::move(response));
  });
  return future;
}

void ServeEngine::submit_async(std::string line,
                               std::function<void(std::string)> done) {
  auto parsed = parse_request(line);
  if (!parsed) {
    {
      sync::MutexLock lock(mu_);
      ++stats_.received;  // every arrival counts, rejected or not
      ++stats_.parse_errors;
    }
    instruments().received.add();
    instruments().parse_errors.add();
    done(error_response({}, Op::kUnknown, "parse_error", parsed.error()));
    return;
  }
  Request req = std::move(*parsed);
  const double deadline_ms =
      req.deadline_ms > 0.0 ? req.deadline_ms : cfg_.default_deadline_ms;
  const Clock::time_point admitted_at = Clock::now();

  {
    sync::MutexLock lock(mu_);
    if (draining_) {
      ++stats_.received;
      ++stats_.rejected_draining;
      instruments().received.add();
      instruments().draining.add();
      lock.unlock();
      done(error_response(req.id, req.op, "draining",
                          "server is draining; not accepting "
                          "new requests"));
      return;
    }
    if (stats_.queue_depth >= cfg_.queue_capacity) {
      ++stats_.received;
      ++stats_.overloaded;
      instruments().received.add();
      instruments().overloaded.add();
      lock.unlock();
      done(error_response(
          req.id, req.op, "overloaded",
          "admission queue full (" + std::to_string(cfg_.queue_capacity) +
              " requests in flight); retry with backoff"));
      return;
    }
    ++stats_.received;
    ++stats_.queue_depth;
    stats_.peak_queue_depth =
        std::max(stats_.peak_queue_depth, stats_.queue_depth);
    instruments().received.add();
    instruments().queue_depth.set(static_cast<double>(stats_.queue_depth));

    // Enqueue while still holding mu_: once drain() observes draining_ set,
    // every admitted request is already in the pool queue, so wait_idle()
    // cannot return before it runs.
    pool_.submit([this, done = std::move(done), admitted_at, deadline_ms,
                  req = std::move(req)]() mutable {
      const double waited =
          std::chrono::duration<double>(Clock::now() - admitted_at).count();
      instruments().queue_wait.observe(waited);
      std::string response;
      const bool expired = deadline_ms > 0.0 && waited * 1e3 > deadline_ms;
      if (expired) {
        // Expired in the queue: shedding it now is cheaper than computing
        // an answer nobody is waiting for. Counted as deadline_expired,
        // not completed — each arrival lands in exactly one outcome bucket
        // (the ServeStats conservation identity).
        {
          sync::MutexLock lock(mu_);
          ++stats_.deadline_expired;
        }
        instruments().deadline.add();
        response = error_response(
            req.id, req.op, "deadline_exceeded",
            "request spent longer than its deadline in the queue");
      } else {
        obs::ScopedSpan span(
            "serve " + std::string(to_string(req.op)), "serve",
            req.id.empty() ? std::string()
                           : "\"id\":\"" + trace::json_escape(req.id) + "\"");
        response = process(req);
      }
      instruments().latency.observe(
          std::chrono::duration<double>(Clock::now() - admitted_at).count());
      {
        sync::MutexLock lock(mu_);
        if (!expired) ++stats_.completed;
        --stats_.queue_depth;
        instruments().queue_depth.set(static_cast<double>(stats_.queue_depth));
      }
      if (!expired) instruments().completed.add();
      done(std::move(response));
    });
  }
}

std::string ServeEngine::handle(const std::string& line) {
  return submit(line).get();
}

void ServeEngine::drain() {
  {
    sync::MutexLock lock(mu_);
    draining_ = true;
  }
  pool_.wait_idle();
  // All admitted fits have published; persist the warm set before the
  // process can exit (SIGTERM path of the daemon runs exactly this).
  store_.flush();
}

bool ServeEngine::draining() const {
  sync::MutexLock lock(mu_);
  return draining_;
}

ServeStats ServeEngine::stats() const {
  ServeStats out;
  {
    sync::MutexLock lock(mu_);
    out = stats_;
  }
  const store::TieredStore::Stats store = store_.stats();
  out.cache_hits = store.cache.hits;
  out.cache_misses = store.cache.misses;
  out.coalesced = store.cache.coalesced;
  out.disk_hits = store.tier.disk_hits;
  return out;
}

std::size_t ServeEngine::fits_performed() const {
  return store_.fits_performed();
}

store::TieredStore::Result ServeEngine::cached_fit(const Request& req) {
  const std::string key =
      canonical_fit_key(req.workload, req.eta, req.ex, req.in, req.q);
  store::TieredStore::Result result =
      store_.get_or_compute(key, [this, &req] {
        if (cfg_.fit_hook) cfg_.fit_hook();
        return FitOutcome{fit_factors(req.workload, req.measurements())};
      });
  if (result.hit) {
    instruments().cache_hits.add();
  } else if (result.coalesced) {
    instruments().coalesced.add();
  } else {
    instruments().cache_misses.add();
  }
  return result;
}

std::string ServeEngine::process(const Request& req) {
  // The serve daemon must not abort on a contract violation: the protocol
  // boundary validates every field, so a violation here means a bug or an
  // input combination the validators missed — either way the right behavior
  // for a long-running server is a structured error response, not a dead
  // worker. The violation handler stays the throwing default (contracts.h);
  // this is the catch side of that policy.
  try {
    return dispatch(req);
  } catch (const contracts::ContractViolation& v) {
    return error_response(req.id, req.op, "contract_violation", v.what());
  } catch (const std::exception& e) {
    return error_response(req.id, req.op, "internal", e.what());
  }
}

std::string ServeEngine::dispatch(const Request& req) {
  switch (req.op) {
    case Op::kPing:
      return ok_response(req, "{\"pong\":true}");

    case Op::kStats: {
      const ServeStats s = stats();
      const store::TieredStore::Stats st = store_.stats();
      const store::FitCache::Stats& c = st.cache;
      std::ostringstream os;
      os << "{\"threads\":" << pool_.size()
         << ",\"queue_capacity\":" << cfg_.queue_capacity
         << ",\"received\":" << s.received
         << ",\"completed\":" << s.completed
         << ",\"overloaded\":" << s.overloaded
         << ",\"rejected_draining\":" << s.rejected_draining
         << ",\"deadline_exceeded\":" << s.deadline_expired
         << ",\"parse_errors\":" << s.parse_errors
         << ",\"queue_depth\":" << s.queue_depth
         << ",\"peak_queue_depth\":" << s.peak_queue_depth
         << ",\"cache\":{\"capacity\":" << store_.cache_capacity()
         << ",\"size\":" << c.size << ",\"hits\":" << c.hits
         << ",\"misses\":" << c.misses << ",\"coalesced\":" << c.coalesced
         << ",\"evictions\":" << c.evictions
         << "},\"store\":{\"persistent\":"
         << (st.persistent ? "true" : "false")
         << ",\"disk_hits\":" << st.tier.disk_hits
         << ",\"spilled\":" << st.tier.spilled
         << ",\"spill_rejected\":" << st.tier.spill_rejected
         << ",\"spill_errors\":" << st.tier.spill_errors
         << ",\"decode_failures\":" << st.tier.decode_failures
         << ",\"records\":" << st.disk.records
         << ",\"segments\":" << st.disk.segments
         << ",\"bytes\":" << st.disk.bytes
         << ",\"recovered\":" << st.disk.recovered
         << ",\"skipped\":" << st.disk.skipped_total()
         << ",\"invalidations\":" << st.tier.invalidations << "}";
      const ObservationStore::Stats ob = observations_.stats();
      os << ",\"observe\":{\"keys\":" << ob.keys
         << ",\"points\":" << ob.points << ",\"observed\":" << ob.observed
         << ",\"material\":" << ob.material
         << ",\"absorbed\":" << ob.absorbed
         << ",\"evicted_keys\":" << ob.evicted_keys
         << "},\"fits_performed\":" << fits_performed() << "}";
      return ok_response(req, os.str());
    }

    case Op::kFit: {
      const store::TieredStore::Result fit = cached_fit(req);
      if (!fit.outcome->fits) {
        return error_response(req.id, req.op, "fit_failed",
                              to_string(fit.outcome->fits.error()));
      }
      return ok_response(req, fit_result_json(*fit.outcome->fits));
    }

    case Op::kClassify: {
      if (req.params) {
        std::ostringstream os;
        os << "{\"params\":" << params_json(*req.params)
           << ",\"classification\":"
           << classification_json(classify(*req.params)) << "}";
        return ok_response(req, os.str());
      }
      const store::TieredStore::Result fit = cached_fit(req);
      if (!fit.outcome->fits) {
        return error_response(req.id, req.op, "fit_failed",
                              to_string(fit.outcome->fits.error()));
      }
      const AsymptoticParams& p = fit.outcome->fits->params;
      std::ostringstream os;
      os << "{\"params\":" << params_json(p)
         << ",\"classification\":" << classification_json(classify(p)) << "}";
      return ok_response(req, os.str());
    }

    case Op::kPredict:
    case Op::kRecommend: {
      AsymptoticParams params;
      std::optional<SpeedupPredictor> predictor;
      if (req.params) {
        params = *req.params;
        predictor.emplace(predictor_from_params(params));
      } else {
        const store::TieredStore::Result fit = cached_fit(req);
        if (!fit.outcome->fits) {
          return error_response(req.id, req.op, "fit_failed",
                                to_string(fit.outcome->fits.error()));
        }
        params = fit.outcome->fits->params;
        predictor.emplace(SpeedupPredictor::from_fits(*fit.outcome->fits));
      }
      const std::vector<double> grid = req.grid();
      if (req.op == Op::kPredict) {
        return ok_response(
            req, predict_result_json(params, predictor->curve(grid)));
      }
      const ProvisioningPlan plan =
          plan_provisioning(*predictor, grid, req.knee_frac);
      return ok_response(req, recommend_result_json(params, plan));
    }

    case Op::kDiagnose: {
      const auto report =
          req.has_observations()
              ? diagnose(req.workload, req.speedup, req.measurements())
              : diagnose(req.workload, req.speedup);
      if (!report) {
        return error_response(req.id, req.op, "fit_failed",
                              to_string(report.error()));
      }
      return ok_response(req, diagnose_result_json(*report));
    }

    case Op::kObserve:
      return dispatch_observe(req);

    case Op::kCompare:
      return dispatch_compare(req);

    case Op::kUnknown:
      break;
  }
  return error_response(req.id, req.op, "internal", "unhandled op");
}

std::string ServeEngine::dispatch_observe(const Request& req) {
  ObservationStore::ObserveResult r = observations_.observe(
      req.workload_key, req.observe_n, req.observe_value);
  // A material change supersedes the window's recorded zoo fit: drop it
  // from every store tier so the next compare is a genuine refit (the
  // fits_performed delta the acceptance test keys off).
  if (!r.superseded_fit_key.empty()) store_.invalidate(r.superseded_fit_key);
  return ok_response(req, observe_result_json(req.workload_key, r));
}

std::string ServeEngine::dispatch_compare(const Request& req) {
  models::Observations obs;
  obs.type = req.workload;
  obs.eta = req.eta;
  std::uint64_t version = 0;
  const bool keyed = !req.workload_key.empty();
  if (keyed) {
    auto snap = observations_.snapshot(req.workload_key);
    if (!snap) {
      return error_response(
          req.id, req.op, "bad_request",
          "unknown workload key '" + req.workload_key + "'");
    }
    obs.speedup = std::move(snap->window);
    version = snap->version;
  } else {
    obs.speedup = req.observations;
  }

  // The IPSO member's factor fit routes through the tiered store under a
  // zoo-namespaced content key ('Z' + the fit-op key encoding, so it can
  // never collide with an 'F' fit-op key), which makes compare refits
  // count in fits_performed, coalesce across concurrent compares of the
  // same window, and survive a --store-dir warm restart byte-identically.
  std::string fit_key = store::canonical_fit_key(
      obs.type, obs.eta, obs.speedup, stats::Series(), stats::Series());
  fit_key[0] = 'Z';
  const models::IpsoFitHook hook =
      [this, &fit_key](
          const models::Observations& o) -> Expected<FactorFits> {
    const store::TieredStore::Result r =
        store_.get_or_compute(fit_key, [this, &o] {
          if (cfg_.fit_hook) cfg_.fit_hook();
          return store::FitOutcome{models::IpsoModel::fit_observations(o)};
        });
    if (r.hit) {
      instruments().cache_hits.add();
    } else if (r.coalesced) {
      instruments().coalesced.add();
    } else {
      instruments().cache_misses.add();
    }
    return r.outcome->fits;
  };
  const Expected<models::ZooResult> zoo = zoo_.compare(obs, hook);
  if (!zoo.has_value()) {
    return error_response(req.id, req.op, "fit_failed",
                          to_string(zoo.error()));
  }
  // Remember which store key this window's fit lives under, so a future
  // material observe can invalidate it (no-op if the window already moved).
  if (keyed) observations_.note_fit(req.workload_key, version, fit_key);
  return ok_response(
      req, compare_result_json(*zoo, keyed ? req.workload_key : std::string(),
                               obs.speedup));
}

}  // namespace ipso::serve
