#pragma once

#include "core/expected.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

/// \file framing.h
/// The serving layer's wire framing, factored out of the connection path so
/// JSON-lines and the binary batched format are two FrameCodec
/// implementations behind one dispatch loop (event_loop.cpp) and one client
/// (client.cpp). A codec is pure byte manipulation — no sockets — so the
/// adversarial tests (truncated frames, oversized prefixes, wrong magic)
/// run against in-memory buffers.
///
/// Binary frame layout (all integers little-endian):
///
///   offset 0   u8[4]  magic        AB 49 50 53  ("\xAB" "IPS")
///          4   u8     version      1
///          5   u8     flags        bit 0: protocol-error frame
///          6   u16    count        records in the payload
///          8   u32    payload_len  payload bytes following the header
///         12   payload: count x ( u32 len | len bytes )
///
/// Each record is one proto.h request (client -> server) or response
/// (server -> client) line, *without* a trailing newline — the framing
/// carries what the newline used to. A frame is the batching unit: one
/// request frame of N records yields exactly one response frame of N
/// records in request order. A zero-count frame is valid and answered with
/// a zero-count frame (cheap liveness probe). The byte-identical-response
/// contract carries over unchanged: record payloads are the same bytes the
/// JSON-lines protocol would carry.

namespace ipso::serve {

/// First magic byte. 0xAB is not valid UTF-8 text start, so a JSON-lines
/// peer can never be mistaken for a binary one (JSON requests start '{').
inline constexpr unsigned char kFrameMagic[4] = {0xAB, 'I', 'P', 'S'};
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;

/// Frame flag bits.
inline constexpr std::uint8_t kFrameFlagError = 0x1;

/// What a codec found wrong with the byte stream. Every framing error is
/// fatal for its connection: after a bad length prefix there is no
/// resynchronization point, so the server answers with an error frame (or
/// line) and closes.
struct CodecError {
  std::string message;
};

/// One decoded batch: the records of a single binary frame, or a single
/// JSON line (the JSON protocol has no batch boundary, so every line is a
/// batch of one). `error_frame` is set when the peer sent a frame flagged
/// kFrameFlagError (clients surface it instead of dispatching).
struct WireBatch {
  std::vector<std::string> records;
  bool error_frame = false;
};

/// Codec seam: byte stream <-> batches of protocol records.
class FrameCodec {
 public:
  virtual ~FrameCodec() = default;

  /// Extracts every *complete* batch from the front of `buf`, erasing the
  /// consumed bytes and appending to `out`. Returns false-equivalent error
  /// on malformed input; remaining partial data stays in `buf` awaiting
  /// more bytes.
  [[nodiscard]] virtual Expected<bool, CodecError> decode(
      std::string& buf, std::vector<WireBatch>& out) = 0;

  /// Encodes one batch of records (a frame, or newline-joined lines).
  [[nodiscard]] virtual std::string encode(
      const std::vector<std::string>& records) const = 0;

  /// Encodes a protocol-level error carrying one record; binary marks the
  /// frame kFrameFlagError, JSON just emits the line.
  [[nodiscard]] virtual std::string encode_error(
      const std::string& record) const = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Newline-delimited JSON: every line is a batch of one record. CR before
/// LF is stripped; empty lines are skipped. A line longer than
/// `max_record_bytes` is a framing error (unbounded buffer growth
/// otherwise).
class JsonLineCodec final : public FrameCodec {
 public:
  explicit JsonLineCodec(std::size_t max_record_bytes = 16u << 20)
      : max_record_bytes_(max_record_bytes) {}

  Expected<bool, CodecError> decode(std::string& buf,
                                    std::vector<WireBatch>& out) override;
  std::string encode(const std::vector<std::string>& records) const override;
  std::string encode_error(const std::string& record) const override;
  std::string_view name() const noexcept override { return "json"; }

 private:
  std::size_t max_record_bytes_;
};

/// The length-prefixed binary batched format documented above.
class BinaryFrameCodec final : public FrameCodec {
 public:
  explicit BinaryFrameCodec(std::size_t max_frame_bytes = 16u << 20)
      : max_frame_bytes_(max_frame_bytes) {}

  Expected<bool, CodecError> decode(std::string& buf,
                                    std::vector<WireBatch>& out) override;
  std::string encode(const std::vector<std::string>& records) const override;
  std::string encode_error(const std::string& record) const override;
  std::string_view name() const noexcept override { return "binary"; }

  /// encode() with explicit flags (clients never need this; the server's
  /// error path does).
  [[nodiscard]] std::string encode_with_flags(
      const std::vector<std::string>& records, std::uint8_t flags) const;

 private:
  std::size_t max_frame_bytes_;
};

/// Protocol sniffed from the first byte a connection sends: kFrameMagic[0]
/// selects binary, anything else (JSON objects start '{') selects JSON.
/// kUnknown means the buffer is still empty.
enum class WireProto { kUnknown, kJson, kBinary };

[[nodiscard]] WireProto sniff_protocol(std::string_view buf) noexcept;

/// Factory for the sniffed protocol (never called with kUnknown).
[[nodiscard]] std::unique_ptr<FrameCodec> make_codec(
    WireProto proto, std::size_t max_frame_bytes);

}  // namespace ipso::serve
