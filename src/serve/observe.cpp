#include "serve/observe.h"

#include <algorithm>
#include <cmath>

namespace ipso::serve {

ObservationStore::ObservationStore(ObserveConfig cfg) : cfg_(cfg) {
  cfg_.window_capacity = std::max<std::size_t>(1, cfg_.window_capacity);
  cfg_.max_keys = std::max<std::size_t>(1, cfg_.max_keys);
}

ObservationStore::Window& ObservationStore::touch(const std::string& key) {
  const auto it = windows_.find(key);
  if (it != windows_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second;
  }
  while (windows_.size() >= cfg_.max_keys && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto vit = windows_.find(victim);
    if (vit != windows_.end()) {
      stats_.points -= std::min(stats_.points, vit->second.points.size());
      windows_.erase(vit);
      ++stats_.evicted_keys;
    }
  }
  lru_.push_front(key);
  Window& w = windows_[key];
  w.lru_it = lru_.begin();
  return w;
}

ObservationStore::ObserveResult ObservationStore::observe(
    const std::string& key, double n, double value) {
  sync::MutexLock lock(mu_);
  ++stats_.observed;
  Window& w = touch(key);
  ObserveResult result;

  const auto existing = w.points.find(n);
  if (existing != w.points.end()) {
    const double rel = std::abs(value - existing->second) /
                       std::max(std::abs(existing->second), 1e-12);
    if (rel <= cfg_.material_threshold) {
      // Absorbed: keep the stored value, so the window bytes — and the
      // content-derived fit-store key — are unchanged and cached zoo fits
      // stay valid.
      result.absorbed = true;
      ++stats_.absorbed;
    } else {
      existing->second = value;
      result.material = true;
    }
  } else {
    w.points.emplace(n, value);
    ++stats_.points;
    if (w.points.size() > cfg_.window_capacity) {
      // Evict the smallest n: asymptotic fits weight the tail, and this
      // keeps the window a pure function of the point set, independent of
      // arrival order.
      stats_.points -= 1;
      const bool dropped_self = w.points.begin()->first == n;
      w.points.erase(w.points.begin());
      if (dropped_self) {
        result.dropped = true;  // the incoming point itself fell off
      } else {
        result.material = true;
      }
    } else {
      result.material = true;
    }
  }

  if (result.material) {
    ++w.version;
    ++stats_.material;
    if (!w.fit_key.empty()) {
      result.superseded_fit_key = std::move(w.fit_key);
      w.fit_key.clear();
    }
  }
  result.version = w.version;
  for (const auto& [x, y] : w.points) result.window.add(x, y);
  return result;
}

std::optional<ObservationStore::WindowSnapshot> ObservationStore::snapshot(
    const std::string& key) {
  sync::MutexLock lock(mu_);
  const auto it = windows_.find(key);
  if (it == windows_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  WindowSnapshot snap;
  snap.version = it->second.version;
  for (const auto& [x, y] : it->second.points) snap.window.add(x, y);
  return snap;
}

void ObservationStore::note_fit(const std::string& key, std::uint64_t version,
                                std::string fit_key) {
  sync::MutexLock lock(mu_);
  const auto it = windows_.find(key);
  if (it == windows_.end() || it->second.version != version) return;
  it->second.fit_key = std::move(fit_key);
  it->second.fit_version = version;
}

ObservationStore::Stats ObservationStore::stats() const {
  sync::MutexLock lock(mu_);
  Stats s = stats_;
  s.keys = windows_.size();
  return s;
}

}  // namespace ipso::serve
