#pragma once

#include "core/classify.h"
#include "core/diagnose.h"
#include "core/fit.h"
#include "core/predict.h"
#include "models/zoo.h"
#include "serve/observe.h"
#include "stats/series.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file proto.h
/// The ipso::serve wire protocol: newline-delimited JSON request/response
/// (one object per line), reusing trace/json for parsing and the repo-wide
/// max_digits10 double formatting so responses round-trip bit-exactly.
///
/// Request grammar (field order free; unknown fields ignored):
///
///   {"op":"fit"|"predict"|"classify"|"diagnose"|"recommend"
///         |"observe"|"compare"|"ping"|"stats",
///    "id":"r1",                       // optional, echoed back verbatim
///    "workload":"fixed-time"|"fixed-size"|"memory-bounded",
///    "eta":0.59,                      // parallelizable fraction at n = 1
///    "ex":[[n,EX(n)],...],            // factor observations (fit inputs)
///    "in":[[n,IN(n)],...],
///    "q":[[n,q(n)],...],
///    "params":{"workload":...,"eta":..,"alpha":..,"delta":..,
///              "beta":..,"gamma":..}, // skips the fit (predict/classify/
///                                     // recommend only)
///    "speedup":[[n,S(n)],...],        // diagnose input
///    "ns":[1,2,4,...],                // predict/recommend grid
///    "knee_frac":0.9,                 // recommend knee threshold
///    "key":"etl-hourly",              // workload window key (observe/compare)
///    "n":8, "value":5.2,              // one streamed point (observe)
///    "observations":[[n,S(n)],...],   // inline list (compare without a key)
///    "deadline_ms":500}               // per-request deadline (0 = none)
///
/// Response: {"id":...,"op":"...","ok":true,"result":{...}} on success,
/// {"id":...,"op":"...","ok":false,"error":"<code>","message":"..."} on
/// failure. Error codes: parse_error, bad_request, fit_failed, overloaded,
/// draining, deadline_exceeded, contract_violation, internal. A response is a pure function of
/// the request (no timestamps, no cache markers), so cached, coalesced and
/// recomputed answers are byte-identical.

namespace ipso::serve {

/// Protocol operations.
enum class Op {
  kPing,       ///< liveness probe
  kFit,        ///< fit factor observations -> params + classification
  kPredict,    ///< fit (or take params) -> S(n) over a grid
  kClassify,   ///< fit (or take params) -> scaling-type classification
  kDiagnose,   ///< speedup curve (+ optional factors) -> diagnostic report
  kRecommend,  ///< fit (or take params) -> provisioning plan (n*, knee)
  kObserve,    ///< stream one (key, n, S) point into a workload window
  kCompare,    ///< model zoo over a window (or inline list) -> scoreboard
  kStats,      ///< server counters (not deterministic, never cached)
  kUnknown,
};

std::string_view to_string(Op op) noexcept;
Op op_from_string(std::string_view name) noexcept;

/// One parsed request.
struct Request {
  Op op = Op::kUnknown;
  std::string id;                        ///< echoed back; may be empty
  WorkloadType workload = WorkloadType::kFixedTime;
  double eta = 1.0;
  stats::Series ex{"EX(n)"};
  stats::Series in{"IN(n)"};
  stats::Series q{"q(n)"};
  stats::Series speedup{"S(n)"};
  std::optional<AsymptoticParams> params;  ///< explicit-params fast path
  std::vector<double> ns;                  ///< empty = default grid
  double knee_frac = 0.9;
  std::string workload_key;                ///< observe/compare window key
  double observe_n = 0.0;                  ///< observe: scale-out degree
  double observe_value = 0.0;              ///< observe: measured speedup
  stats::Series observations{"S(n)"};      ///< compare: inline point list
  double deadline_ms = 0.0;                ///< 0 = no deadline

  /// True when factor observations were supplied (the fit path).
  [[nodiscard]] bool has_observations() const noexcept { return !ex.empty(); }

  /// The prediction grid: `ns` or the default geometric 1..1024.
  [[nodiscard]] std::vector<double> grid() const;

  /// Factor observations bundled for fit_factors().
  [[nodiscard]] FactorMeasurements measurements() const;
};

/// Parses one request line. The error string is a human-readable reason
/// ("expected array of [n,v] pairs for 'ex'", ...).
[[nodiscard]] Expected<Request, std::string> parse_request(
    const std::string& line);

/// {"id":...,"op":"...","ok":true,"result":<result>}; id omitted if empty.
[[nodiscard]] std::string ok_response(const Request& req,
                                      const std::string& result);

/// {"id":...,"op":"...","ok":false,"error":"<code>","message":"..."}.
[[nodiscard]] std::string error_response(const std::string& id, Op op,
                                         std::string_view code,
                                         std::string_view message);

/// Result-body builders (deterministic field order, max_digits10 doubles).
[[nodiscard]] std::string params_json(const AsymptoticParams& p);
[[nodiscard]] std::string classification_json(const Classification& c);
[[nodiscard]] std::string fit_result_json(const FactorFits& fits);
[[nodiscard]] std::string predict_result_json(const AsymptoticParams& p,
                                              const stats::Series& curve);
[[nodiscard]] std::string recommend_result_json(const AsymptoticParams& p,
                                                const ProvisioningPlan& plan);
[[nodiscard]] std::string diagnose_result_json(const DiagnosticReport& report);
/// {"key":...,"material":...,"absorbed":...,"dropped":...,"version":...,
///  "points":N,"window":[[n,S],...]} — a pure function of the observe
/// sequence for the key, so replicas that saw the same stream answer
/// byte-identically.
[[nodiscard]] std::string observe_result_json(
    const std::string& key, const ObservationStore::ObserveResult& r);
/// {"key":...(omitted when inline),"observations":[[n,S],...],"models":
///  [{"model":...,"ok":...,...}],"winner":"..."} — deterministic field
/// order, max_digits10 doubles; carries no engine state, so JSON/binary,
/// routed/standalone, and cold/warm-restart answers are byte-identical.
[[nodiscard]] std::string compare_result_json(const models::ZooResult& zoo,
                                              const std::string& key,
                                              const stats::Series& window);

}  // namespace ipso::serve
