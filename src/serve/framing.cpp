#include "serve/framing.h"

#include <cstring>

namespace ipso::serve {

namespace {

std::uint16_t load_u16(const char* p) noexcept {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t load_u32(const char* p) noexcept {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

void append_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void append_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

}  // namespace

// --------------------------------------------------------------- JSON lines

Expected<bool, CodecError> JsonLineCodec::decode(std::string& buf,
                                                 std::vector<WireBatch>& out) {
  std::size_t start = 0;
  std::size_t nl;
  while ((nl = buf.find('\n', start)) != std::string::npos) {
    std::string line = buf.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    WireBatch batch;
    batch.records.push_back(std::move(line));
    out.push_back(std::move(batch));
  }
  buf.erase(0, start);
  if (buf.size() > max_record_bytes_) {
    return CodecError{"line exceeds " + std::to_string(max_record_bytes_) +
                      " bytes without a newline"};
  }
  return true;
}

std::string JsonLineCodec::encode(
    const std::vector<std::string>& records) const {
  std::string out;
  std::size_t total = 0;
  for (const std::string& r : records) total += r.size() + 1;
  out.reserve(total);
  for (const std::string& r : records) {
    out += r;
    out.push_back('\n');
  }
  return out;
}

std::string JsonLineCodec::encode_error(const std::string& record) const {
  return record + "\n";
}

// ------------------------------------------------------------ binary frames

Expected<bool, CodecError> BinaryFrameCodec::decode(
    std::string& buf, std::vector<WireBatch>& out) {
  std::size_t start = 0;
  while (buf.size() - start >= kFrameHeaderBytes) {
    const char* h = buf.data() + start;
    if (std::memcmp(h, kFrameMagic, sizeof kFrameMagic) != 0) {
      return CodecError{"bad frame magic"};
    }
    const auto version = static_cast<std::uint8_t>(h[4]);
    if (version != kFrameVersion) {
      return CodecError{"unsupported frame version " +
                        std::to_string(version) + " (speak version " +
                        std::to_string(kFrameVersion) + ")"};
    }
    const auto flags = static_cast<std::uint8_t>(h[5]);
    const std::uint16_t count = load_u16(h + 6);
    const std::uint32_t payload_len = load_u32(h + 8);
    if (payload_len > max_frame_bytes_) {
      return CodecError{"frame payload " + std::to_string(payload_len) +
                        " exceeds the " + std::to_string(max_frame_bytes_) +
                        "-byte limit"};
    }
    // A record costs at least its 4-byte length prefix, so `count` records
    // cannot fit in fewer than 4*count payload bytes — reject before
    // allocating anything on a frame that cannot possibly be well-formed.
    if (static_cast<std::uint64_t>(count) * 4 > payload_len) {
      return CodecError{"frame count " + std::to_string(count) +
                        " cannot fit in payload of " +
                        std::to_string(payload_len) + " bytes"};
    }
    if (buf.size() - start - kFrameHeaderBytes < payload_len) break;

    WireBatch batch;
    batch.error_frame = (flags & kFrameFlagError) != 0;
    batch.records.reserve(count);
    std::size_t off = start + kFrameHeaderBytes;
    const std::size_t payload_end = off + payload_len;
    for (std::uint16_t i = 0; i < count; ++i) {
      if (payload_end - off < 4) {
        return CodecError{"record " + std::to_string(i) +
                          " length prefix truncated"};
      }
      const std::uint32_t len = load_u32(buf.data() + off);
      off += 4;
      if (payload_end - off < len) {
        return CodecError{"record " + std::to_string(i) + " length " +
                          std::to_string(len) + " overruns the payload"};
      }
      batch.records.emplace_back(buf, off, len);
      off += len;
    }
    if (off != payload_end) {
      return CodecError{
          "payload has " + std::to_string(payload_end - off) +
          " trailing bytes beyond its " + std::to_string(count) + " records"};
    }
    out.push_back(std::move(batch));
    start = payload_end;
  }
  buf.erase(0, start);
  return true;
}

std::string BinaryFrameCodec::encode_with_flags(
    const std::vector<std::string>& records, std::uint8_t flags) const {
  std::size_t payload = 0;
  for (const std::string& r : records) payload += 4 + r.size();
  std::string out;
  out.reserve(kFrameHeaderBytes + payload);
  out.append(reinterpret_cast<const char*>(kFrameMagic), sizeof kFrameMagic);
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(flags));
  append_u16(out, static_cast<std::uint16_t>(records.size()));
  append_u32(out, static_cast<std::uint32_t>(payload));
  for (const std::string& r : records) {
    append_u32(out, static_cast<std::uint32_t>(r.size()));
    out += r;
  }
  return out;
}

std::string BinaryFrameCodec::encode(
    const std::vector<std::string>& records) const {
  return encode_with_flags(records, 0);
}

std::string BinaryFrameCodec::encode_error(const std::string& record) const {
  return encode_with_flags({record}, kFrameFlagError);
}

// ------------------------------------------------------------- negotiation

WireProto sniff_protocol(std::string_view buf) noexcept {
  if (buf.empty()) return WireProto::kUnknown;
  return static_cast<unsigned char>(buf.front()) == kFrameMagic[0]
             ? WireProto::kBinary
             : WireProto::kJson;
}

std::unique_ptr<FrameCodec> make_codec(WireProto proto,
                                       std::size_t max_frame_bytes) {
  if (proto == WireProto::kBinary) {
    return std::make_unique<BinaryFrameCodec>(max_frame_bytes);
  }
  return std::make_unique<JsonLineCodec>(max_frame_bytes);
}

}  // namespace ipso::serve
