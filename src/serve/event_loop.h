#pragma once

#include "serve/framing.h"
#include "serve/transport.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/sync.h"

/// \file event_loop.h
/// The epoll front end of ipso::serve: N shard threads, each running one
/// epoll readiness loop over non-blocking sockets. Replaces the PR-4
/// thread-per-connection design — thread count is fixed at `shards`
/// regardless of connection count, and stop/drain is signalled through a
/// per-shard eventfd instead of a 100 ms poll tick.
///
/// Per connection: a reusable read buffer (bounded by the max frame size),
/// a reusable write buffer with a backpressure watermark (reads pause while
/// a slow consumer's responses pile up past `write_high_watermark`, resume
/// below `write_low_watermark`), and a FrameCodec negotiated from the first
/// byte received (framing.h): binary batched frames or newline-JSON
/// compatibility mode on the same port.
///
/// Batching: one request frame of N records dispatches N handler
/// invocations and yields exactly one response frame in request order. JSON
/// lines are batches of one; consecutive completed responses still coalesce
/// into a single send when the loop flushes.
///
/// Threading: each connection belongs to exactly one shard and all its
/// state is touched only by that shard's thread. Handler completion
/// callbacks (any thread) write into their own pre-sized response slot,
/// decrement the batch's atomic remaining-count, and post the connection id
/// to the shard's inbox + eventfd; the shard thread alone encodes and
/// writes.

namespace ipso::serve {

/// Event-loop configuration (TcpServer translates ServerConfig into this).
struct EventLoopConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;          ///< 0 = ephemeral
  std::size_t shards = 1;          ///< epoll loops (and loop threads)
  std::size_t max_frame_bytes = 16u << 20;   ///< frame payload / line bound
  std::size_t write_high_watermark = 4u << 20;  ///< pause reads above this
  std::size_t write_low_watermark = 1u << 20;   ///< resume reads below this
  int listen_backlog = 1024;
};

/// Monotonic front-end counters (sum over shards).
struct NetStats {
  std::size_t wakeups = 0;            ///< epoll_wait returns
  std::size_t frames_in = 0;          ///< decoded batches (frames or lines)
  std::size_t frames_out = 0;         ///< encoded response batches
  std::size_t requests_in = 0;        ///< records dispatched to the engine
  std::size_t bytes_in = 0;
  std::size_t bytes_out = 0;
  std::size_t backpressure_stalls = 0;  ///< reads paused on the watermark
  std::size_t protocol_errors = 0;      ///< malformed framing (fatal/conn)
  std::size_t connections_accepted = 0;
  std::size_t connections_open = 0;
};

/// What the loop does with each decoded request record: `handler(record,
/// done)` must eventually invoke `done(response)` exactly once — inline or
/// from any thread — with the single response record. This seam is how the
/// same front end serves both a local ServeEngine (TcpServer) and the
/// fan-out router (router.h), which completes records via upstream replies.
using RequestHandler =
    std::function<void(std::string, std::function<void(std::string)>)>;

class EventLoopServer {
 public:
  /// Everything `handler` captures must outlive the server. Construction
  /// does not bind.
  EventLoopServer(RequestHandler handler, EventLoopConfig cfg);

  /// Implicit begin_drain() + finish() (without the backend drain — callers
  /// that want the full answered-before-exit contract go through
  /// TcpServer::shutdown() or Router::shutdown()).
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  /// Binds, listens, spawns the shard threads.
  [[nodiscard]] Expected<bool, NetError> start();

  /// The bound port (resolves ephemeral port 0); 0 before start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] std::size_t connections_accepted() const noexcept {
    return stats_.connections_accepted.load(std::memory_order_relaxed);
  }

  [[nodiscard]] NetStats stats() const noexcept;

  /// Phase 1 of shutdown: stop accepting and stop reading, immediately
  /// (eventfd wakeup, no poll tick). In-flight requests keep completing
  /// and their responses keep flushing. Idempotent.
  void begin_drain();

  /// Phase 2: flush every remaining completed response (bounded by a small
  /// deadline for peers that stopped reading), close all connections, join
  /// the shard threads. Idempotent.
  void finish();

 private:
  struct Shard;
  struct Conn;
  struct Batch;

  void shard_loop(Shard& s);
  void handle_accept(Shard& s);
  void add_conn(Shard& s, int fd);
  void handle_readable(Shard& s, Conn& c);
  bool parse_input(Shard& s, Conn& c);
  void dispatch_batch(Shard& s, Conn& c, WireBatch wire);
  void flush_completed(Shard& s, Conn& c);
  bool try_flush(Shard& s, Conn& c);
  void update_interest(Shard& s, Conn& c);
  void close_conn(Shard& s, Conn& c);
  void notify_completion(Shard& s, std::uint64_t conn_id);
  static void wake(Shard& s);

  RequestHandler handler_;
  EventLoopConfig cfg_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_conn_id_{2};  ///< 0/1 = wake/listen tags
  /// Atomic, not plain: start() runs on the owning thread but begin_drain()
  /// and finish() are fair game from any thread (Router::shutdown, signal
  /// paths), and the old unsynchronized bool was a data race the
  /// thread-safety migration flagged (see test_serve_framing's
  /// CrossThreadDrain regression).
  std::atomic<bool> started_{false};
  std::atomic<bool> drain_begun_{false};
  std::atomic<bool> finished_{false};

  struct AtomicStats {
    std::atomic<std::size_t> wakeups{0};
    std::atomic<std::size_t> frames_in{0};
    std::atomic<std::size_t> frames_out{0};
    std::atomic<std::size_t> requests_in{0};
    std::atomic<std::size_t> bytes_in{0};
    std::atomic<std::size_t> bytes_out{0};
    std::atomic<std::size_t> backpressure_stalls{0};
    std::atomic<std::size_t> protocol_errors{0};
    std::atomic<std::size_t> connections_accepted{0};
    std::atomic<std::size_t> connections_open{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace ipso::serve
