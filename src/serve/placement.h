#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/sync.h"

/// \file placement.h
/// Placement policies for the sharded serving tier: given a routing key
/// (the canonical fit key from fit_cache.h), pick which replica serves it.
/// The policy is a first-class, swappable object behind a small virtual
/// interface so the router can be configured at startup (--placement) and
/// benchmarks can compare strategies head to head. Three built-ins mirror
/// the classic partitioner families:
///
///  * "hash"     — consistent hashing over a virtual-node ring. Adding or
///                 removing one replica moves only ~1/N of the key space.
///  * "range"    — static block partitioning: the 64-bit key hash space is
///                 split into `replicas` equal contiguous blocks.
///  * "affinity" — sticky-first-touch: a key is pinned to the replica that
///                 first serves it (assigned round-robin), so a hot key's
///                 fit stays cached on exactly one replica regardless of
///                 how the hash would scatter its neighbors.
///
/// Correctness note: any replica can serve any key (the canonical fit key
/// makes replies interchangeable), so placement is purely a cache-locality
/// and load-spreading decision — a "wrong" pick is never an incorrect
/// response, only a colder cache.

namespace ipso::serve {

/// FNV-1a 64-bit — deterministic across processes/platforms, which keeps
/// key→replica maps stable between router restarts (same config → same
/// routing table).
[[nodiscard]] std::uint64_t placement_hash(std::string_view bytes) noexcept;

/// Key→replica mapping strategy. Implementations must be thread-safe:
/// replica_for() is called concurrently from every event-loop shard.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Replica index in [0, replicas()) for this routing key. Non-const
  /// because stateful policies (affinity) record first-touch pins.
  [[nodiscard]] virtual std::size_t replica_for(std::string_view key) = 0;

  /// Number of replicas this policy distributes over.
  [[nodiscard]] std::size_t replicas() const noexcept { return replicas_; }

  /// Policy name as accepted by make_placement() and reported in `stats`.
  [[nodiscard]] virtual const char* name() const noexcept = 0;

 protected:
  explicit PlacementPolicy(std::size_t replicas);
  const std::size_t replicas_;
};

/// Consistent hashing: each replica owns `vnodes` points on a 64-bit ring;
/// a key maps to the first vnode clockwise from its hash. Immutable after
/// construction (lock-free lookups).
class ConsistentHashPlacement final : public PlacementPolicy {
 public:
  explicit ConsistentHashPlacement(std::size_t replicas,
                                   std::size_t vnodes = 128);
  [[nodiscard]] std::size_t replica_for(std::string_view key) override;
  [[nodiscard]] const char* name() const noexcept override { return "hash"; }

 private:
  struct VNode {
    std::uint64_t point;
    std::uint32_t replica;
  };
  std::vector<VNode> ring_;  ///< sorted by point
};

/// Static range/block partitioning: replica = floor(hash * N / 2^64).
/// Stateless and lock-free; redistribution on resize is near-total (the
/// price of the simplest possible routing table).
class RangePlacement final : public PlacementPolicy {
 public:
  explicit RangePlacement(std::size_t replicas);
  [[nodiscard]] std::size_t replica_for(std::string_view key) override;
  [[nodiscard]] const char* name() const noexcept override { return "range"; }
};

/// Sticky-first-touch affinity: the first time a key is seen it is pinned
/// to the next replica in round-robin order; every later lookup returns the
/// pin and refreshes its recency. The pin table is bounded (LRU over pins)
/// so an adversarial key stream cannot grow it without limit — a cold key
/// evicted from the table is simply re-pinned on its next appearance, while
/// hot keys stay resident and therefore stay stuck to one replica's warm
/// cache.
class AffinityPlacement final : public PlacementPolicy {
 public:
  /// `max_pins` bounds the pin table; 0 picks a generous default.
  explicit AffinityPlacement(std::size_t replicas, std::size_t max_pins = 0);
  [[nodiscard]] std::size_t replica_for(std::string_view key) override
      IPSO_EXCLUDES(mu_);
  [[nodiscard]] const char* name() const noexcept override {
    return "affinity";
  }

  /// Current pin-table size (tests assert the bound holds).
  [[nodiscard]] std::size_t pins() const IPSO_EXCLUDES(mu_);

 private:
  /// DESIGN.md §13, capability "serve.placement" — a leaf held only over
  /// the pin-table lookup/update.
  mutable sync::Mutex mu_;
  const std::size_t max_pins_;
  /// Round-robin cursor for fresh pins.
  std::size_t next_replica_ IPSO_GUARDED_BY(mu_) = 0;
  /// Most-recently-pinned first.
  std::list<std::string> lru_ IPSO_GUARDED_BY(mu_);
  struct Pin {
    std::size_t replica;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Pin> pins_ IPSO_GUARDED_BY(mu_);
};

/// Factory for --placement: "hash", "range", or "affinity". Returns null
/// for an unknown name (callers print the accepted set).
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_placement(
    std::string_view name, std::size_t replicas);

}  // namespace ipso::serve
