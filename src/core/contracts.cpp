#include "core/contracts.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ipso::contracts {

std::string Violation::to_string() const {
  std::ostringstream os;
  os << contracts::to_string(kind) << " violated";
  if (file != nullptr && *file != '\0') {
    os << " at " << file << ":" << line;
  }
  if (function != nullptr && *function != '\0') {
    os << " in " << function;
  }
  os << ": " << message;
  if (condition != nullptr && *condition != '\0') {
    os << " (" << condition << ")";
  }
  return os.str();
}

ContractViolation::ContractViolation(const Violation& v)
    : std::invalid_argument(v.to_string()),
      kind_(v.kind),
      file_(v.file),
      line_(v.line) {}

void throw_handler(const Violation& v) { throw ContractViolation(v); }

[[noreturn]] void abort_handler_impl(const Violation& v) {
  std::fprintf(stderr, "ipso: %s\n", v.to_string().c_str());
  std::abort();
}

void log_handler(const Violation& v) {
  std::fprintf(stderr, "ipso: %s (continuing)\n", v.to_string().c_str());
}

namespace {

std::atomic<Handler>& handler_slot() noexcept {
  static std::atomic<Handler> slot{&throw_handler};
  return slot;
}

}  // namespace

Handler set_violation_handler(Handler h) noexcept {
  return handler_slot().exchange(h != nullptr ? h : &throw_handler,
                                 std::memory_order_acq_rel);
}

Handler violation_handler() noexcept {
  return handler_slot().load(std::memory_order_acquire);
}

void violate(Kind kind, const char* condition, const char* message,
             const char* file, int line, const char* function) {
  const Violation v{kind, condition, message, file, line, function};
  violation_handler()(v);
}

}  // namespace ipso::contracts
