#include "core/diagnose.h"

#include "core/sensitivity.h"

#include <sstream>

namespace ipso {

namespace {

ScalingType shape_to_type(WorkloadType wt, GrowthShape shape) {
  const bool fs = wt == WorkloadType::kFixedSize;
  switch (shape) {
    case GrowthShape::kLinear:
      return fs ? ScalingType::kIs : ScalingType::kIt;
    case GrowthShape::kSublinear:
      return fs ? ScalingType::kIIs : ScalingType::kIIt;
    case GrowthShape::kBounded:
      // Sub-type (1 vs 2) needs factor measurements; default to ,1.
      return fs ? ScalingType::kIIIs1 : ScalingType::kIIIt1;
    case GrowthShape::kPeaked:
      return fs ? ScalingType::kIVs : ScalingType::kIVt;
  }
  return ScalingType::kIt;
}

Expected<DiagnosticReport> diagnose_impl(WorkloadType workload,
                                         const stats::Series& speedup,
                                         const FactorMeasurements* factors) {
  DiagnosticReport report;
  report.workload = workload;

  // Steps 1-4: workload type is given; judge the measured curve's shape.
  const Expected<EmpiricalShape> shape = judge_shape(speedup);
  if (!shape) return shape.error();
  report.empirical = *shape;
  report.best_guess = shape_to_type(workload, report.empirical.shape);

  // Steps 5-6: with factor measurements, fit (η, α, δ, β, γ) and classify
  // exactly, which also pins down III sub-types. A failed fit leaves the
  // shape-based guess in place and records the reason in report.fits.
  if (factors != nullptr) {
    report.fits = fit_factors(workload, *factors);
    if (report.fits) {
      report.matched = classify(report.fits->params);
      report.best_guess = report.matched->type;
    } else {
      report.matched = report.fits.error();
    }
  }

  std::ostringstream os;
  os << "IPSO diagnosis (" << to_string(workload) << " workload, "
     << speedup.size() << " measured points: n in ["
     << (speedup.empty() ? 0.0 : speedup[0].x) << ", "
     << (speedup.empty() ? 0.0 : speedup[speedup.size() - 1].x) << "])\n";
  os << "  curve: " << (report.empirical.monotone ? "monotone" : "non-monotone")
     << (report.empirical.peaked ? ", PEAKED" : "")
     << ", tail growth exponent " << report.empirical.tail_exponent << "\n";
  os << "  empirical note: " << report.empirical.note << "\n";
  if (report.matched) {
    const auto& p = report.fits->params;
    os << "  fitted factors: eta=" << p.eta << " alpha=" << p.alpha
       << " delta=" << p.delta << " beta=" << p.beta << " gamma=" << p.gamma
       << (report.fits->in_has_changepoint
               ? " (IN(n) has a step-wise changepoint)"
               : "")
       << "\n";
    os << "  matched type: " << to_string(report.matched->type) << "\n";
    os << "  root cause: " << report.matched->rationale << "\n";
    if (!speedup.empty()) {
      os << "  "
         << improvement_advice(report.fits->params,
                               speedup[speedup.size() - 1].x)
         << "\n";
    }
  } else {
    if (factors != nullptr) {
      os << "  factor fit unavailable: " << to_string(report.fits.error())
         << "\n";
    }
    os << "  best guess from shape alone: " << to_string(report.best_guess)
       << " (run factor measurements to confirm sub-type)\n";
  }
  report.summary = os.str();
  return report;
}

}  // namespace

Expected<EmpiricalShape> judge_shape(const stats::Series& speedup,
                                     double linear_min, double bounded_max) {
  EmpiricalShape out;
  out.monotone = stats::is_monotone_nondecreasing(speedup, /*tol=*/0.02);
  out.peaked = stats::is_peaked(speedup);
  if (out.peaked) {
    out.shape = GrowthShape::kPeaked;
    out.tail_exponent = 0.0;
    out.note = "speedup peaks and falls: superlinear scale-out-induced "
               "workload (gamma > 1) is the only cause in the IPSO space";
    return out;
  }
  const Expected<stats::PowerFit> tail = fit_tail_growth(speedup);
  if (!tail) return tail.error();
  out.tail_exponent = tail->exponent;
  if (tail->exponent >= linear_min) {
    out.shape = GrowthShape::kLinear;
    out.note = "near-linear growth; more data at larger n would separate "
               "type I from type II (paper, WordCount discussion)";
  } else if (tail->exponent <= bounded_max) {
    out.shape = GrowthShape::kBounded;
    out.note = "growth has saturated: upper-bounded speedup";
  } else {
    out.shape = GrowthShape::kSublinear;
    out.note = "sublinear but still growing; could be type II or the rise "
               "of a type III curve - factor measurements would decide";
  }
  return out;
}

Expected<DiagnosticReport> diagnose(WorkloadType workload,
                                    const stats::Series& speedup) {
  return diagnose_impl(workload, speedup, nullptr);
}

Expected<DiagnosticReport> diagnose(WorkloadType workload,
                                    const stats::Series& speedup,
                                    const FactorMeasurements& factors) {
  return diagnose_impl(workload, speedup, &factors);
}

}  // namespace ipso
