#pragma once

#include "core/scaling_factors.h"

/// \file laws.h
/// The three classical speedup laws in the paper's notation (Eq. 12). These
/// are both baselines for every experiment and special cases of IPSO
/// (IN(n) = 1, q(n) = 0, EX(n) per Eq. 13) — a relation the test suite
/// verifies exhaustively.

namespace ipso::laws {

/// Amdahl's law: S(n) = 1 / (η/n + (1-η)). `eta` is the parallelizable
/// fraction at n = 1, `n` the scale-out degree (n >= 1).
double amdahl(double eta, double n) noexcept;

/// Gustafson's law: S(n) = η·n + (1-η).
double gustafson(double eta, double n) noexcept;

/// Sun-Ni's law: S(n) = (η·g(n) + (1-η)) / (η·g(n)/n + (1-η)) where g is the
/// memory-bound external scaling function.
double sun_ni(double eta, double n, const ScalingFn& g);

/// Sun-Ni with the data-intensive approximation g(n) = n, which makes it
/// coincide with Gustafson's law (paper Section IV).
double sun_ni(double eta, double n) noexcept;

/// Asymptotic upper bound of Amdahl's law, 1/(1-η); +inf at η = 1.
double amdahl_bound(double eta) noexcept;

}  // namespace ipso::laws
