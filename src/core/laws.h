#pragma once

#include "core/domain.h"
#include "core/scaling_factors.h"

/// \file laws.h
/// The three classical speedup laws in the paper's notation (Eq. 12). These
/// are both baselines for every experiment and special cases of IPSO
/// (IN(n) = 1, q(n) = 0, EX(n) per Eq. 13) — a relation the test suite
/// verifies exhaustively.
///
/// Parameters are domain-typed (domain.h): η ∈ [0,1] and n ≥ 1 are validated
/// when the caller's doubles convert at the call boundary, so the functions
/// themselves stay noexcept pure arithmetic.

namespace ipso::laws {

/// Amdahl's law: S(n) = 1 / (η/n + (1-η)). `eta` is the parallelizable
/// fraction at n = 1, `n` the scale-out degree (n >= 1).
[[nodiscard]] double amdahl(Eta eta, NodeCount n) noexcept;

/// Gustafson's law: S(n) = η·n + (1-η).
[[nodiscard]] double gustafson(Eta eta, NodeCount n) noexcept;

/// Sun-Ni's law: S(n) = (η·g(n) + (1-η)) / (η·g(n)/n + (1-η)) where g is the
/// memory-bound external scaling function.
[[nodiscard]] double sun_ni(Eta eta, NodeCount n, const ScalingFn& g);

/// Sun-Ni with the data-intensive approximation g(n) = n, which makes it
/// coincide with Gustafson's law (paper Section IV).
[[nodiscard]] double sun_ni(Eta eta, NodeCount n) noexcept;

/// Asymptotic upper bound of Amdahl's law, 1/(1-η); +inf at η = 1.
[[nodiscard]] double amdahl_bound(Eta eta) noexcept;

}  // namespace ipso::laws
